// k-nearest-neighbour queries on top of the paper's range-query machinery:
// "which vehicles were closest to this incident, around that time?" — a
// dispatcher's question answered with expanding-ring searches over the
// Hilbert-sharded store.
//
//   build/examples/nearest_vehicles

#include <cstdio>

#include "common/strings.h"
#include "st/knn.h"
#include "workload/trajectory_generator.h"

int main() {
  stix::st::StStoreOptions options;
  options.approach.kind = stix::st::ApproachKind::kHil;
  options.cluster.num_shards = 6;
  stix::st::StStore store(options);
  if (stix::Status s = store.Setup(); !s.ok()) {
    fprintf(stderr, "setup: %s\n", s.ToString().c_str());
    return 1;
  }

  stix::workload::TrajectoryOptions traj;
  traj.num_records = 60000;
  traj.num_vehicles = 200;
  stix::workload::TrajectoryGenerator gen(traj);
  stix::bson::Document doc;
  while (gen.Next(&doc)) {
    if (stix::Status s = store.Insert(std::move(doc)); !s.ok()) {
      fprintf(stderr, "insert: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  (void)store.FinishLoad();

  // The incident: Syntagma square, one evening in September; who was near
  // within the surrounding hour?
  const stix::geo::Point incident{23.7349, 37.9757};
  int64_t t = 0;
  stix::ParseIsoDate("2018-09-10T19:30:00", &t);
  const int64_t t0 = t - 30LL * 60 * 1000;
  const int64_t t1 = t + 30LL * 60 * 1000;

  stix::st::KnnOptions knn;
  knn.k = 8;
  const stix::st::KnnResult result =
      stix::st::KnnQuery(store, incident, t0, t1, knn);

  printf("8 nearest GPS fixes to Syntagma, 19:00-20:00 on Sep 10:\n");
  for (const stix::st::Neighbor& n : result.neighbors) {
    printf("  vehicle %4d at %7.1f m  (%s)\n",
           n.doc.Get("vehicleId")->AsInt32(), n.distance_m,
           stix::FormatIsoDate(n.doc.Get("date")->AsDateTime()).c_str());
  }
  printf("\nsearch cost: %d ring queries (%d expansions), %s index keys "
         "examined in total\n",
         result.queries_issued, result.expansions,
         stix::WithThousands(
             static_cast<int64_t>(result.total_keys_examined))
             .c_str());
  printf("A full scan would have touched all %s documents instead.\n",
         stix::WithThousands(static_cast<int64_t>(
                                 store.cluster().total_documents()))
             .c_str());
  return 0;
}
