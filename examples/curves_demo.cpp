// Renders the paper's Figure 1: the Hilbert and Z-order space-filling
// curves on a small grid (as ASCII), shows the GeoHash of Athens from
// Section 2.1, and demonstrates how a query rectangle becomes 1D ranges —
// the heart of the hil approach.
//
//   build/examples/curves_demo

#include <cstdio>
#include <vector>

#include "geo/covering.h"
#include "geo/geohash.h"
#include "geo/hilbert.h"
#include "geo/zorder.h"

namespace {

void DrawCurve(const stix::geo::Curve2D& curve) {
  const uint32_t n = curve.grid().grid_size();
  printf("\n%s curve, order %d (numbers are d in visit order):\n",
         curve.name(), curve.order());
  for (int32_t y = static_cast<int32_t>(n) - 1; y >= 0; --y) {
    printf("  ");
    for (uint32_t x = 0; x < n; ++x) {
      printf("%4llu",
             static_cast<unsigned long long>(
                 curve.XyToD(x, static_cast<uint32_t>(y))));
    }
    printf("\n");
  }
}

}  // namespace

int main() {
  const stix::geo::Rect unit{{0, 0}, {1, 1}};
  const stix::geo::HilbertCurve hilbert(3, unit);
  const stix::geo::ZOrderCurve zorder(3, unit);
  printf("Figure 1 — illustration of the Hilbert and z-order space filling "
         "curves\n");
  DrawCurve(hilbert);
  DrawCurve(zorder);

  printf("\nGeoHash (Section 2.1): Athens (37.983810, 23.727539)\n");
  printf("  precision 10: %s\n",
         stix::geo::GeoHashBase32(23.727539, 37.983810, 10).c_str());
  printf("  precision 5:  %s\n",
         stix::geo::GeoHashBase32(23.727539, 37.983810, 5).c_str());
  const stix::geo::GeoHash gh(26);
  printf("  26-bit cell value (what the 2dsphere B-tree stores): %llu\n",
         static_cast<unsigned long long>(gh.Encode(23.727539, 37.983810)));

  // How the paper's big query rectangle turns into hilbertIndex ranges.
  const stix::geo::HilbertCurve hil13(13, stix::geo::GlobeRect());
  const stix::geo::Rect big{{23.606039, 38.023982}, {24.032754, 38.353926}};
  const stix::geo::Covering covering = stix::geo::CoverRect(hil13, big);
  printf("\nCovering of the paper's big query rect on the 13-bit Hilbert "
         "curve:\n");
  printf("  %zu ranges (%zu single cells), %llu cells total\n",
         covering.ranges.size(), covering.NumSingletons(),
         static_cast<unsigned long long>(covering.num_cells));
  printf("  first ranges:");
  for (size_t i = 0; i < covering.ranges.size() && i < 5; ++i) {
    printf(" [%llu..%llu]",
           static_cast<unsigned long long>(covering.ranges[i].lo),
           static_cast<unsigned long long>(covering.ranges[i].hi));
  }
  printf(" ...\n");
  printf("\nThese become the query's $or of {hilbertIndex: {$gte, $lte}} "
         "arms plus one $in of the single cells (paper Section 4.2.2).\n");
  return 0;
}
