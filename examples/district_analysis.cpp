// Complex-geometry queries (the paper's Section 6 future-work item) over
// data loaded from CSV, the way an adopter would feed their own records:
// write a CSV, load it, then ask for everything inside a *polygonal* city
// district instead of a bounding box.
//
//   build/examples/district_analysis

#include <cstdio>
#include <fstream>

#include "common/strings.h"
#include "geo/region.h"
#include "st/st_store.h"
#include "workload/csv_loader.h"
#include "workload/trajectory_generator.h"

namespace {

// Writes a CSV of synthetic fleet records (id, lon, lat, date) — standing in
// for the operator's own export.
std::string WriteFleetCsv(size_t records) {
  const std::string path = "/tmp/stix_district_analysis.csv";
  std::ofstream out(path);
  stix::workload::TrajectoryOptions options;
  options.num_records = records;
  options.num_vehicles = 120;
  options.payload_bytes = 0;
  stix::workload::TrajectoryGenerator gen(options);
  stix::bson::Document doc;
  while (gen.Next(&doc)) {
    double lon, lat;
    stix::bson::ExtractGeoJsonPoint(*doc.Get("location"), &lon, &lat);
    out << "v" << doc.Get("vehicleId")->AsInt32() << ","
        << stix::FormatDouble(lon) << "," << stix::FormatDouble(lat) << ","
        << doc.Get("date")->AsDateTime() << "\n";
  }
  return path;
}

}  // namespace

int main() {
  // hil* (curve over the data-set MBR): its fine cells make the polygon-vs-
  // bounding-box difference visible at city-district granularity.
  stix::st::StStoreOptions options;
  options.approach.kind = stix::st::ApproachKind::kHilStar;
  options.approach.dataset_mbr =
      stix::workload::TrajectoryGenerator::GreeceMbr();
  options.cluster.num_shards = 4;
  stix::st::StStore store(options);
  if (stix::Status s = store.Setup(); !s.ok()) {
    fprintf(stderr, "setup: %s\n", s.ToString().c_str());
    return 1;
  }

  const std::string csv = WriteFleetCsv(40000);
  const stix::Result<uint64_t> loaded =
      stix::workload::LoadCsvFile(csv, stix::workload::CsvSchema{}, &store);
  if (!loaded.ok()) {
    fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  (void)store.FinishLoad();
  printf("loaded %llu CSV records\n\n",
         static_cast<unsigned long long>(*loaded));

  // A polygonal "downtown Athens" district (roughly the triangle between
  // Omonia, the Acropolis and the Panathenaic stadium) — no bounding box
  // could trace this.
  const stix::geo::Polygon district({{23.7280, 38.0005},
                                     {23.7190, 37.9760},
                                     {23.7420, 37.9660},
                                     {23.7580, 37.9800},
                                     {23.7450, 38.0010}});

  int64_t t0 = 0, t1 = 0;
  stix::ParseIsoDate("2018-08-01T00:00:00", &t0);
  stix::ParseIsoDate("2018-09-01T00:00:00", &t1);
  const stix::st::StQueryResult in_district =
      store.QueryPolygon(district, t0, t1);

  // Compare with the bounding-box query an API without polygon support
  // would have to issue (and then post-filter).
  const stix::st::StQueryResult in_bbox =
      store.Query(district.BoundingBox(), t0, t1);

  printf("August, downtown-Athens district polygon:\n");
  printf("  polygon query:      %5zu matches, %llu keys examined "
         "(busiest node)\n",
         in_district.cluster.docs.size(),
         static_cast<unsigned long long>(
             in_district.cluster.max_keys_examined));
  printf("  bounding-box query: %5zu matches, %llu keys examined "
         "(busiest node)\n",
         in_bbox.cluster.docs.size(),
         static_cast<unsigned long long>(in_bbox.cluster.max_keys_examined));
  printf("\nThe polygon covering prunes the curve ranges outside the "
         "district, so the exact answer costs no post-filtering and no "
         "extra index work.\n");
  return 0;
}
