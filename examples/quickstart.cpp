// Quickstart: stand up a sharded spatio-temporal store with the paper's
// Hilbert approach, insert a handful of GPS points, and run a
// spatio-temporal range query.
//
//   build/examples/quickstart

#include <cstdio>

#include "bson/json_writer.h"
#include "common/strings.h"
#include "st/st_store.h"

using stix::bson::DocBuilder;
using stix::bson::GeoJsonPoint;
using stix::bson::Value;

int main() {
  // 1. Configure: the hil approach (hilbertIndex + date shard key) on a
  //    4-shard cluster.
  stix::st::StStoreOptions options;
  options.approach.kind = stix::st::ApproachKind::kHil;
  options.cluster.num_shards = 4;

  stix::st::StStore store(options);
  stix::Status s = store.Setup();
  if (!s.ok()) {
    fprintf(stderr, "setup: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. Insert documents shaped like the paper's example: a GeoJSON point
  //    plus an ISODate. _id and hilbertIndex are added automatically.
  struct Fix {
    const char* label;
    double lon, lat;
    const char* when;
  };
  const Fix fixes[] = {
      {"athens-acropolis", 23.726245, 37.971532, "2018-10-01T08:34:40"},
      {"athens-syntagma", 23.735658, 37.975537, "2018-10-01T09:10:05"},
      {"piraeus-port", 23.633460, 37.942345, "2018-10-01T10:02:11"},
      {"thessaloniki", 22.944419, 40.640063, "2018-10-02T11:45:00"},
      {"patras", 21.734574, 38.246639, "2018-10-03T07:20:30"},
  };
  for (const Fix& fix : fixes) {
    int64_t millis = 0;
    stix::ParseIsoDate(fix.when, &millis);
    auto doc = DocBuilder()
                   .Field("label", fix.label)
                   .Field("location", GeoJsonPoint(fix.lon, fix.lat))
                   .Field("date", Value::DateTime(millis))
                   .Build();
    s = store.Insert(std::move(doc));
    if (!s.ok()) {
      fprintf(stderr, "insert: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  (void)store.FinishLoad();

  // 3. Query: everything inside central Athens on Oct 1st.
  const stix::geo::Rect athens{{23.70, 37.95}, {23.76, 37.99}};
  int64_t t0 = 0, t1 = 0;
  stix::ParseIsoDate("2018-10-01T00:00:00", &t0);
  stix::ParseIsoDate("2018-10-01T23:59:59", &t1);

  const stix::st::StQueryResult result = store.Query(athens, t0, t1);
  printf("query translated to: %s\n\n",
         result.translated.expr->DebugString().c_str());
  printf("%zu documents matched (nodes contacted: %d, keys examined: %llu)\n",
         result.cluster.docs.size(), result.cluster.nodes_contacted,
         static_cast<unsigned long long>(result.cluster.max_keys_examined));
  for (const stix::bson::Document& doc : result.cluster.docs) {
    printf("  %s\n", stix::bson::ToJson(doc).c_str());
  }
  return 0;
}
