// Operator-facing walkthrough of the paper's zones mechanism (Sections
// 4.1.3 / 4.2.3): load one data set twice — baseline sharding on date and
// Hilbert sharding — then define $bucketAuto zones and watch how many
// cluster nodes serve the same queries before and after. This is the
// knob an operator turns when "every query hits every node" becomes the
// scalability bottleneck (paper Section 5.2, Discussion).
//
//   build/examples/zone_tuning [--docs=N]

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "st/st_store.h"
#include "workload/query_workload.h"
#include "workload/trajectory_generator.h"

namespace {

std::unique_ptr<stix::st::StStore> BuildStore(stix::st::ApproachKind kind,
                                              uint64_t num_docs) {
  stix::st::StStoreOptions options;
  options.approach.kind = kind;
  options.approach.dataset_mbr =
      stix::workload::TrajectoryGenerator::GreeceMbr();
  options.cluster.num_shards = 8;
  auto store = std::make_unique<stix::st::StStore>(options);
  if (stix::Status s = store->Setup(); !s.ok()) {
    fprintf(stderr, "setup: %s\n", s.ToString().c_str());
    exit(1);
  }
  stix::workload::TrajectoryOptions traj;
  traj.num_records = num_docs;
  stix::workload::TrajectoryGenerator gen(traj);
  stix::bson::Document doc;
  while (gen.Next(&doc)) {
    if (stix::Status s = store->Insert(std::move(doc)); !s.ok()) {
      fprintf(stderr, "insert: %s\n", s.ToString().c_str());
      exit(1);
    }
  }
  (void)store->FinishLoad();
  return store;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t num_docs = 80000;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--docs=", 7) == 0) {
      num_docs = strtoull(argv[i] + 7, nullptr, 10);
    }
  }

  stix::workload::TrajectoryOptions traj_defaults;
  const auto queries = stix::workload::MakeQuerySet(
      /*big=*/true, traj_defaults.t_begin_ms, traj_defaults.t_end_ms);

  for (const auto kind : {stix::st::ApproachKind::kBslST,
                          stix::st::ApproachKind::kHil}) {
    auto store = BuildStore(kind, num_docs);
    printf("=== approach %s (shard key %s) ===\n",
           store->approach().name(),
           store->approach().shard_key().DebugString().c_str());

    printf("%-6s %22s", "query", "nodes (default)");
    printf(" %22s\n", "nodes (zones)");
    // Measure node counts with the default chunk placement...
    std::vector<int> default_nodes;
    for (const auto& q : queries) {
      default_nodes.push_back(
          store->Query(q.rect, q.t_begin_ms, q.t_end_ms)
              .cluster.nodes_contacted);
    }
    // ...then pin $bucketAuto zones (one per shard) and re-measure.
    if (stix::Status s = store->ConfigureZones(); !s.ok()) {
      fprintf(stderr, "zones: %s\n", s.ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      const auto r =
          store->Query(queries[i].rect, queries[i].t_begin_ms,
                       queries[i].t_end_ms);
      printf("%-6s %22d %22d\n", queries[i].name.c_str(), default_nodes[i],
             r.cluster.nodes_contacted);
    }
    printf("zones defined on '%s': %zu ranges, one per shard\n\n",
           store->approach().zone_path().c_str(),
           store->cluster().zones().size());
  }

  printf("Reading the result: with zones, contiguous shard-key ranges live "
         "on one node, so fewer nodes serve each query — the paper's data-"
         "locality argument. The flip side (paper Section 5.3): fewer nodes "
         "also means less parallelism for large result sets.\n");
  return 0;
}
