// The paper's motivating use case (Section 1): a fleet-management operator
// exploring historical routes with spatio-temporal queries of varying
// granularity — here, analysing speed and fuel consumption of vehicles that
// crossed central Athens, then drilling into one morning rush hour.
//
//   build/examples/fleet_analytics [--docs=N]

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

#include "common/strings.h"
#include "st/st_store.h"
#include "workload/trajectory_generator.h"

namespace {

struct WindowStats {
  uint64_t points = 0;
  std::map<int, uint64_t> per_vehicle;
  double speed_sum = 0;
  double fuel_min = 1e9, fuel_max = -1e9;
};

WindowStats Summarize(const std::vector<stix::bson::Document>& docs) {
  WindowStats stats;
  for (const stix::bson::Document& doc : docs) {
    ++stats.points;
    stats.per_vehicle[doc.Get("vehicleId")->AsInt32()]++;
    stats.speed_sum += doc.Get("speed")->AsDouble();
    const double fuel = doc.Get("fuelLevel")->AsDouble();
    stats.fuel_min = std::min(stats.fuel_min, fuel);
    stats.fuel_max = std::max(stats.fuel_max, fuel);
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t num_docs = 120000;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--docs=", 7) == 0) {
      num_docs = strtoull(argv[i] + 7, nullptr, 10);
    }
  }

  // A 6-shard cluster with the paper's hil approach.
  stix::st::StStoreOptions options;
  options.approach.kind = stix::st::ApproachKind::kHil;
  options.cluster.num_shards = 6;
  stix::st::StStore store(options);
  if (stix::Status s = store.Setup(); !s.ok()) {
    fprintf(stderr, "setup: %s\n", s.ToString().c_str());
    return 1;
  }

  // Load five months of synthetic fleet telemetry (the R-set substitute).
  stix::workload::TrajectoryOptions traj;
  traj.num_records = num_docs;
  traj.num_vehicles = 300;
  stix::workload::TrajectoryGenerator gen(traj);
  stix::bson::Document doc;
  while (gen.Next(&doc)) {
    if (stix::Status s = store.Insert(std::move(doc)); !s.ok()) {
      fprintf(stderr, "insert: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  (void)store.FinishLoad();
  printf("loaded %" PRIu64 " GPS points across %d shards (%zu chunks)\n\n",
         num_docs, store.cluster().num_shards(),
         store.cluster().chunks().num_chunks());

  // Exploratory query 1: central Athens, one full week in September.
  const stix::geo::Rect central_athens{{23.70, 37.95}, {23.78, 38.01}};
  int64_t week_start = 0;
  stix::ParseIsoDate("2018-09-03T00:00:00", &week_start);
  const int64_t week_end = week_start + 7LL * 24 * 3600 * 1000;

  stix::st::StQueryResult week =
      store.Query(central_athens, week_start, week_end);
  WindowStats ws = Summarize(week.cluster.docs);
  printf("[week of Sep 3, central Athens]\n");
  printf("  %" PRIu64 " points from %zu vehicles; avg speed %.1f km/h, "
         "fuel range %.0f%%..%.0f%%\n",
         ws.points, ws.per_vehicle.size(),
         ws.points ? ws.speed_sum / static_cast<double>(ws.points) : 0.0,
         ws.fuel_min, ws.fuel_max);
  printf("  served by %d node(s), %s keys examined on the busiest node, "
         "%.2f ms\n\n",
         week.cluster.nodes_contacted,
         stix::WithThousands(
             static_cast<int64_t>(week.cluster.max_keys_examined))
             .c_str(),
         week.cluster.modeled_millis);

  // Exploratory query 2: drill into the Tuesday morning rush hour.
  int64_t rush_start = 0;
  stix::ParseIsoDate("2018-09-04T07:30:00", &rush_start);
  const int64_t rush_end = rush_start + 2LL * 3600 * 1000;
  stix::st::StQueryResult rush =
      store.Query(central_athens, rush_start, rush_end);
  ws = Summarize(rush.cluster.docs);
  printf("[Tue Sep 4, 07:30-09:30, central Athens]\n");
  printf("  %" PRIu64 " points from %zu vehicles; avg speed %.1f km/h\n",
         ws.points, ws.per_vehicle.size(),
         ws.points ? ws.speed_sum / static_cast<double>(ws.points) : 0.0);
  printf("  served by %d node(s), %.2f ms\n\n",
         rush.cluster.nodes_contacted, rush.cluster.modeled_millis);

  // Exploratory query 3: the busiest vehicle's footprint that morning —
  // top vehicles by point count.
  printf("[top vehicles that morning]\n");
  std::vector<std::pair<uint64_t, int>> ranked;
  for (const auto& [vehicle, count] : ws.per_vehicle) {
    ranked.emplace_back(count, vehicle);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (size_t i = 0; i < ranked.size() && i < 3; ++i) {
    printf("  vehicle %d: %" PRIu64 " points\n", ranked[i].second,
           ranked[i].first);
  }

  // Exploratory query 4: the same per-vehicle statistics as an aggregation
  // pipeline — $match (index-assisted on the shards) then $group/$sort at
  // the router. This is the API an analytics job would use.
  stix::query::GroupStage group;
  group.key_path = "vehicleId";
  group.accumulators = {
      {"points", stix::query::AccumulatorOp::kCount, ""},
      {"avg_speed", stix::query::AccumulatorOp::kAvg, "speed"},
      {"min_fuel", stix::query::AccumulatorOp::kMin, "fuelLevel"},
  };
  const auto match_expr =
      store.approach()
          .TranslateQuery(central_athens, rush_start, rush_end)
          .expr;
  const auto aggregated = store.cluster().Aggregate(
      stix::query::Pipeline()
          .Match(match_expr)
          .Group(std::move(group))
          .Sort("points", /*ascending=*/false)
          .Limit(3));
  if (!aggregated.ok()) {
    fprintf(stderr, "aggregate: %s\n",
            aggregated.status().ToString().c_str());
    return 1;
  }
  printf("\n[same, via aggregation pipeline: $match | $group | $sort | "
         "$limit]\n");
  for (const stix::bson::Document& g : *aggregated) {
    printf("  vehicle %4d: %3lld points, avg %.1f km/h, min fuel %.0f%%\n",
           g.Get("_id")->AsInt32(),
           static_cast<long long>(g.Get("points")->AsInt64()),
           g.Get("avg_speed")->AsDouble(), g.Get("min_fuel")->AsDouble());
  }
  return 0;
}
