# Empty dependencies file for stix_tests.
# This may be replaced when dependencies are built.
