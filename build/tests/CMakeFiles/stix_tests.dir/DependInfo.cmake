
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aggregate_test.cc" "tests/CMakeFiles/stix_tests.dir/aggregate_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/aggregate_test.cc.o.d"
  "/root/repo/tests/bson_test.cc" "tests/CMakeFiles/stix_tests.dir/bson_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/bson_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/stix_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/stix_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/csv_loader_test.cc" "tests/CMakeFiles/stix_tests.dir/csv_loader_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/csv_loader_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/stix_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/geo_test.cc" "tests/CMakeFiles/stix_tests.dir/geo_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/geo_test.cc.o.d"
  "/root/repo/tests/index_test.cc" "tests/CMakeFiles/stix_tests.dir/index_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/index_test.cc.o.d"
  "/root/repo/tests/keystring_test.cc" "tests/CMakeFiles/stix_tests.dir/keystring_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/keystring_test.cc.o.d"
  "/root/repo/tests/multikey_test.cc" "tests/CMakeFiles/stix_tests.dir/multikey_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/multikey_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/stix_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/region_test.cc" "tests/CMakeFiles/stix_tests.dir/region_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/region_test.cc.o.d"
  "/root/repo/tests/snapshot_test.cc" "tests/CMakeFiles/stix_tests.dir/snapshot_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/snapshot_test.cc.o.d"
  "/root/repo/tests/st_test.cc" "tests/CMakeFiles/stix_tests.dir/st_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/st_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/stix_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/stix_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/stix_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
