# Empty dependencies file for bench_hilbert_cover.
# This may be replaced when dependencies are built.
