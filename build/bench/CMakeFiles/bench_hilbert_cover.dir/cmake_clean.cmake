file(REMOVE_RECURSE
  "CMakeFiles/bench_hilbert_cover.dir/bench_hilbert_cover.cc.o"
  "CMakeFiles/bench_hilbert_cover.dir/bench_hilbert_cover.cc.o.d"
  "bench_hilbert_cover"
  "bench_hilbert_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hilbert_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
