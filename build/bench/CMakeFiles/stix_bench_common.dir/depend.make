# Empty dependencies file for stix_bench_common.
# This may be replaced when dependencies are built.
