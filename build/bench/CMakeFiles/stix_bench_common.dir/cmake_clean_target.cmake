file(REMOVE_RECURSE
  "libstix_bench_common.a"
)
