file(REMOVE_RECURSE
  "CMakeFiles/stix_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/stix_bench_common.dir/bench_common.cc.o.d"
  "libstix_bench_common.a"
  "libstix_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stix_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
