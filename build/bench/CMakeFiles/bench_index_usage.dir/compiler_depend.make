# Empty compiler generated dependencies file for bench_index_usage.
# This may be replaced when dependencies are built.
