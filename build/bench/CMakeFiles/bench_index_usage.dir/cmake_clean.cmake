file(REMOVE_RECURSE
  "CMakeFiles/bench_index_usage.dir/bench_index_usage.cc.o"
  "CMakeFiles/bench_index_usage.dir/bench_index_usage.cc.o.d"
  "bench_index_usage"
  "bench_index_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
