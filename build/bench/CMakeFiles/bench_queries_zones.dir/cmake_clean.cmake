file(REMOVE_RECURSE
  "CMakeFiles/bench_queries_zones.dir/bench_queries_zones.cc.o"
  "CMakeFiles/bench_queries_zones.dir/bench_queries_zones.cc.o.d"
  "bench_queries_zones"
  "bench_queries_zones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queries_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
