# Empty compiler generated dependencies file for bench_queries_zones.
# This may be replaced when dependencies are built.
