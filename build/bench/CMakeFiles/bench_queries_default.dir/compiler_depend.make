# Empty compiler generated dependencies file for bench_queries_default.
# This may be replaced when dependencies are built.
