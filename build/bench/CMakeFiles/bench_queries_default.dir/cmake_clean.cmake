file(REMOVE_RECURSE
  "CMakeFiles/bench_queries_default.dir/bench_queries_default.cc.o"
  "CMakeFiles/bench_queries_default.dir/bench_queries_default.cc.o.d"
  "bench_queries_default"
  "bench_queries_default.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queries_default.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
