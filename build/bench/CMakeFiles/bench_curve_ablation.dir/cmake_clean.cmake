file(REMOVE_RECURSE
  "CMakeFiles/bench_curve_ablation.dir/bench_curve_ablation.cc.o"
  "CMakeFiles/bench_curve_ablation.dir/bench_curve_ablation.cc.o.d"
  "bench_curve_ablation"
  "bench_curve_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_curve_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
