# Empty dependencies file for bench_curve_ablation.
# This may be replaced when dependencies are built.
