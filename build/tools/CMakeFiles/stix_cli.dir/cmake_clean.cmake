file(REMOVE_RECURSE
  "CMakeFiles/stix_cli.dir/stix_cli.cc.o"
  "CMakeFiles/stix_cli.dir/stix_cli.cc.o.d"
  "stix_cli"
  "stix_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stix_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
