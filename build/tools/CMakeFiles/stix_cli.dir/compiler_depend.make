# Empty compiler generated dependencies file for stix_cli.
# This may be replaced when dependencies are built.
