# Empty compiler generated dependencies file for curves_demo.
# This may be replaced when dependencies are built.
