file(REMOVE_RECURSE
  "CMakeFiles/curves_demo.dir/curves_demo.cpp.o"
  "CMakeFiles/curves_demo.dir/curves_demo.cpp.o.d"
  "curves_demo"
  "curves_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curves_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
