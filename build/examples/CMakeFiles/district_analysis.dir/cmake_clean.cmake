file(REMOVE_RECURSE
  "CMakeFiles/district_analysis.dir/district_analysis.cpp.o"
  "CMakeFiles/district_analysis.dir/district_analysis.cpp.o.d"
  "district_analysis"
  "district_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/district_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
