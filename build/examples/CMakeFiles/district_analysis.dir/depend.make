# Empty dependencies file for district_analysis.
# This may be replaced when dependencies are built.
