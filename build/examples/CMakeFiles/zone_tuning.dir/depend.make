# Empty dependencies file for zone_tuning.
# This may be replaced when dependencies are built.
