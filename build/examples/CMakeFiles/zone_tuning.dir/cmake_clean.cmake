file(REMOVE_RECURSE
  "CMakeFiles/zone_tuning.dir/zone_tuning.cpp.o"
  "CMakeFiles/zone_tuning.dir/zone_tuning.cpp.o.d"
  "zone_tuning"
  "zone_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zone_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
