# Empty compiler generated dependencies file for nearest_vehicles.
# This may be replaced when dependencies are built.
