file(REMOVE_RECURSE
  "CMakeFiles/nearest_vehicles.dir/nearest_vehicles.cpp.o"
  "CMakeFiles/nearest_vehicles.dir/nearest_vehicles.cpp.o.d"
  "nearest_vehicles"
  "nearest_vehicles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearest_vehicles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
