# Empty compiler generated dependencies file for stix.
# This may be replaced when dependencies are built.
