file(REMOVE_RECURSE
  "libstix.a"
)
