
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bson/codec.cc" "src/CMakeFiles/stix.dir/bson/codec.cc.o" "gcc" "src/CMakeFiles/stix.dir/bson/codec.cc.o.d"
  "/root/repo/src/bson/document.cc" "src/CMakeFiles/stix.dir/bson/document.cc.o" "gcc" "src/CMakeFiles/stix.dir/bson/document.cc.o.d"
  "/root/repo/src/bson/json_writer.cc" "src/CMakeFiles/stix.dir/bson/json_writer.cc.o" "gcc" "src/CMakeFiles/stix.dir/bson/json_writer.cc.o.d"
  "/root/repo/src/bson/object_id.cc" "src/CMakeFiles/stix.dir/bson/object_id.cc.o" "gcc" "src/CMakeFiles/stix.dir/bson/object_id.cc.o.d"
  "/root/repo/src/bson/value.cc" "src/CMakeFiles/stix.dir/bson/value.cc.o" "gcc" "src/CMakeFiles/stix.dir/bson/value.cc.o.d"
  "/root/repo/src/cluster/balancer.cc" "src/CMakeFiles/stix.dir/cluster/balancer.cc.o" "gcc" "src/CMakeFiles/stix.dir/cluster/balancer.cc.o.d"
  "/root/repo/src/cluster/chunk.cc" "src/CMakeFiles/stix.dir/cluster/chunk.cc.o" "gcc" "src/CMakeFiles/stix.dir/cluster/chunk.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/stix.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/stix.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/router.cc" "src/CMakeFiles/stix.dir/cluster/router.cc.o" "gcc" "src/CMakeFiles/stix.dir/cluster/router.cc.o.d"
  "/root/repo/src/cluster/shard.cc" "src/CMakeFiles/stix.dir/cluster/shard.cc.o" "gcc" "src/CMakeFiles/stix.dir/cluster/shard.cc.o.d"
  "/root/repo/src/cluster/snapshot.cc" "src/CMakeFiles/stix.dir/cluster/snapshot.cc.o" "gcc" "src/CMakeFiles/stix.dir/cluster/snapshot.cc.o.d"
  "/root/repo/src/cluster/zones.cc" "src/CMakeFiles/stix.dir/cluster/zones.cc.o" "gcc" "src/CMakeFiles/stix.dir/cluster/zones.cc.o.d"
  "/root/repo/src/common/lz.cc" "src/CMakeFiles/stix.dir/common/lz.cc.o" "gcc" "src/CMakeFiles/stix.dir/common/lz.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/stix.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/stix.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/stix.dir/common/status.cc.o" "gcc" "src/CMakeFiles/stix.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/stix.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/stix.dir/common/strings.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/stix.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/stix.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/geo/covering.cc" "src/CMakeFiles/stix.dir/geo/covering.cc.o" "gcc" "src/CMakeFiles/stix.dir/geo/covering.cc.o.d"
  "/root/repo/src/geo/curve.cc" "src/CMakeFiles/stix.dir/geo/curve.cc.o" "gcc" "src/CMakeFiles/stix.dir/geo/curve.cc.o.d"
  "/root/repo/src/geo/geo.cc" "src/CMakeFiles/stix.dir/geo/geo.cc.o" "gcc" "src/CMakeFiles/stix.dir/geo/geo.cc.o.d"
  "/root/repo/src/geo/geohash.cc" "src/CMakeFiles/stix.dir/geo/geohash.cc.o" "gcc" "src/CMakeFiles/stix.dir/geo/geohash.cc.o.d"
  "/root/repo/src/geo/hilbert.cc" "src/CMakeFiles/stix.dir/geo/hilbert.cc.o" "gcc" "src/CMakeFiles/stix.dir/geo/hilbert.cc.o.d"
  "/root/repo/src/geo/region.cc" "src/CMakeFiles/stix.dir/geo/region.cc.o" "gcc" "src/CMakeFiles/stix.dir/geo/region.cc.o.d"
  "/root/repo/src/geo/zorder.cc" "src/CMakeFiles/stix.dir/geo/zorder.cc.o" "gcc" "src/CMakeFiles/stix.dir/geo/zorder.cc.o.d"
  "/root/repo/src/index/index_bounds.cc" "src/CMakeFiles/stix.dir/index/index_bounds.cc.o" "gcc" "src/CMakeFiles/stix.dir/index/index_bounds.cc.o.d"
  "/root/repo/src/index/index_catalog.cc" "src/CMakeFiles/stix.dir/index/index_catalog.cc.o" "gcc" "src/CMakeFiles/stix.dir/index/index_catalog.cc.o.d"
  "/root/repo/src/index/index_descriptor.cc" "src/CMakeFiles/stix.dir/index/index_descriptor.cc.o" "gcc" "src/CMakeFiles/stix.dir/index/index_descriptor.cc.o.d"
  "/root/repo/src/index/key_generator.cc" "src/CMakeFiles/stix.dir/index/key_generator.cc.o" "gcc" "src/CMakeFiles/stix.dir/index/key_generator.cc.o.d"
  "/root/repo/src/keystring/keystring.cc" "src/CMakeFiles/stix.dir/keystring/keystring.cc.o" "gcc" "src/CMakeFiles/stix.dir/keystring/keystring.cc.o.d"
  "/root/repo/src/query/aggregate.cc" "src/CMakeFiles/stix.dir/query/aggregate.cc.o" "gcc" "src/CMakeFiles/stix.dir/query/aggregate.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/stix.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/stix.dir/query/executor.cc.o.d"
  "/root/repo/src/query/expression.cc" "src/CMakeFiles/stix.dir/query/expression.cc.o" "gcc" "src/CMakeFiles/stix.dir/query/expression.cc.o.d"
  "/root/repo/src/query/plan_cache.cc" "src/CMakeFiles/stix.dir/query/plan_cache.cc.o" "gcc" "src/CMakeFiles/stix.dir/query/plan_cache.cc.o.d"
  "/root/repo/src/query/plan_stage.cc" "src/CMakeFiles/stix.dir/query/plan_stage.cc.o" "gcc" "src/CMakeFiles/stix.dir/query/plan_stage.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/CMakeFiles/stix.dir/query/planner.cc.o" "gcc" "src/CMakeFiles/stix.dir/query/planner.cc.o.d"
  "/root/repo/src/query/query_analysis.cc" "src/CMakeFiles/stix.dir/query/query_analysis.cc.o" "gcc" "src/CMakeFiles/stix.dir/query/query_analysis.cc.o.d"
  "/root/repo/src/st/adaptive.cc" "src/CMakeFiles/stix.dir/st/adaptive.cc.o" "gcc" "src/CMakeFiles/stix.dir/st/adaptive.cc.o.d"
  "/root/repo/src/st/approach.cc" "src/CMakeFiles/stix.dir/st/approach.cc.o" "gcc" "src/CMakeFiles/stix.dir/st/approach.cc.o.d"
  "/root/repo/src/st/knn.cc" "src/CMakeFiles/stix.dir/st/knn.cc.o" "gcc" "src/CMakeFiles/stix.dir/st/knn.cc.o.d"
  "/root/repo/src/st/st_store.cc" "src/CMakeFiles/stix.dir/st/st_store.cc.o" "gcc" "src/CMakeFiles/stix.dir/st/st_store.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/stix.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/stix.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/collection.cc" "src/CMakeFiles/stix.dir/storage/collection.cc.o" "gcc" "src/CMakeFiles/stix.dir/storage/collection.cc.o.d"
  "/root/repo/src/storage/record_store.cc" "src/CMakeFiles/stix.dir/storage/record_store.cc.o" "gcc" "src/CMakeFiles/stix.dir/storage/record_store.cc.o.d"
  "/root/repo/src/workload/csv_loader.cc" "src/CMakeFiles/stix.dir/workload/csv_loader.cc.o" "gcc" "src/CMakeFiles/stix.dir/workload/csv_loader.cc.o.d"
  "/root/repo/src/workload/query_workload.cc" "src/CMakeFiles/stix.dir/workload/query_workload.cc.o" "gcc" "src/CMakeFiles/stix.dir/workload/query_workload.cc.o.d"
  "/root/repo/src/workload/trajectory_generator.cc" "src/CMakeFiles/stix.dir/workload/trajectory_generator.cc.o" "gcc" "src/CMakeFiles/stix.dir/workload/trajectory_generator.cc.o.d"
  "/root/repo/src/workload/uniform_generator.cc" "src/CMakeFiles/stix.dir/workload/uniform_generator.cc.o" "gcc" "src/CMakeFiles/stix.dir/workload/uniform_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
