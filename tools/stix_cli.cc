// stix_cli — operate the store from the command line: load CSV data, save /
// restore snapshots, run spatio-temporal queries, inspect plans and sizes.
//
// Usage:
//   stix_cli load   --csv=FILE [--approach=hil|hil*|bslST|bslTS]
//                   [--shards=N] [--zones] --out=SNAPSHOT
//   stix_cli query  --snap=SNAPSHOT --rect=lon1,lat1,lon2,lat2
//                   --from=ISO --to=ISO [--limit=N]
//   stix_cli explain --snap=SNAPSHOT --rect=... --from=... --to=...
//   stix_cli stats  --snap=SNAPSHOT
//
// The snapshot file preserves sharding/zones/indexes, so `query` and
// `explain` see exactly the cluster `load` built.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "bson/json_writer.h"
#include "cluster/snapshot.h"
#include "common/strings.h"
#include "st/approach.h"
#include "st/st_store.h"
#include "workload/csv_loader.h"

namespace {

using stix::Status;

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "true";
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

int Fail(const std::string& message) {
  fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  fprintf(stderr,
          "usage: stix_cli <load|query|explain|stats> [--flags]\n"
          "  load    --csv=FILE --out=SNAP [--approach=hil] [--shards=12] "
          "[--zones]\n"
          "  query   --snap=SNAP --rect=lon1,lat1,lon2,lat2 --from=ISO "
          "--to=ISO [--limit=N]\n"
          "  explain --snap=SNAP --rect=... --from=... --to=...\n"
          "  stats   --snap=SNAP\n");
  return 2;
}

bool ParseRect(const std::string& text, stix::geo::Rect* rect) {
  const auto parts = stix::Split(text, ',');
  if (parts.size() != 4) return false;
  char* end = nullptr;
  const double v[4] = {
      strtod(parts[0].c_str(), &end), strtod(parts[1].c_str(), &end),
      strtod(parts[2].c_str(), &end), strtod(parts[3].c_str(), &end)};
  rect->lo = {std::min(v[0], v[2]), std::min(v[1], v[3])};
  rect->hi = {std::max(v[0], v[2]), std::max(v[1], v[3])};
  return true;
}

stix::Result<stix::st::ApproachKind> ParseApproach(const std::string& name) {
  if (name == "hil" || name.empty()) return stix::st::ApproachKind::kHil;
  if (name == "hil*" || name == "hilstar") {
    // hil*'s curve spans the data-set MBR, which snapshots do not record;
    // a later `query` could not rebuild the same hilbertIndex mapping.
    return Status::NotSupported(
        "hil* snapshots are not queryable from the CLI; use hil");
  }
  if (name == "bslST") return stix::st::ApproachKind::kBslST;
  if (name == "bslTS") return stix::st::ApproachKind::kBslTS;
  return Status::InvalidArgument("unknown approach: " + name);
}

int CmdLoad(const std::map<std::string, std::string>& flags) {
  const auto csv = flags.find("csv");
  const auto out = flags.find("out");
  if (csv == flags.end() || out == flags.end()) return Usage();

  const auto approach_flag = flags.count("approach")
                                 ? flags.at("approach")
                                 : std::string("hil");
  const stix::Result<stix::st::ApproachKind> kind =
      ParseApproach(approach_flag);
  if (!kind.ok()) return Fail(kind.status().ToString());

  stix::st::StStoreOptions options;
  options.approach.kind = *kind;
  if (flags.count("shards")) {
    options.cluster.num_shards = atoi(flags.at("shards").c_str());
  }
  stix::st::StStore store(options);
  if (Status s = store.Setup(); !s.ok()) return Fail(s.ToString());

  const stix::Result<uint64_t> loaded = stix::workload::LoadCsvFile(
      csv->second, stix::workload::CsvSchema{}, &store);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  (void)store.FinishLoad();
  if (flags.count("zones")) {
    if (Status s = store.ConfigureZones(); !s.ok()) {
      return Fail(s.ToString());
    }
  }
  if (Status s = stix::cluster::SaveSnapshot(store.cluster(), out->second);
      !s.ok()) {
    return Fail(s.ToString());
  }
  printf("loaded %" PRIu64 " documents (%s, %d shards, %zu chunks%s) -> %s\n",
         *loaded, store.approach().name(), store.cluster().num_shards(),
         store.cluster().chunks().num_chunks(),
         flags.count("zones") ? ", zoned" : "", out->second.c_str());
  return 0;
}

// Restores a cluster and rebuilds the query expression the same way the
// approach would. The snapshot stores the shard key, from which the
// approach kind is inferred (hilbertIndex -> Hilbert).
struct RestoredStore {
  std::unique_ptr<stix::cluster::Cluster> cluster;
  std::unique_ptr<stix::st::Approach> approach;
};

stix::Result<RestoredStore> Restore(
    const std::map<std::string, std::string>& flags) {
  const auto snap = flags.find("snap");
  if (snap == flags.end()) {
    return Status::InvalidArgument("--snap is required");
  }
  stix::Result<std::unique_ptr<stix::cluster::Cluster>> cluster =
      stix::cluster::LoadSnapshot(snap->second, stix::cluster::ClusterOptions{});
  if (!cluster.ok()) return cluster.status();

  stix::st::ApproachConfig config;
  const auto& paths = (*cluster)->shard_key().paths();
  const bool is_hilbert =
      !paths.empty() && paths.front() == stix::st::kHilbertField;
  config.kind = is_hilbert ? stix::st::ApproachKind::kHil
                           : stix::st::ApproachKind::kBslST;
  RestoredStore out;
  out.cluster = std::move(*cluster);
  out.approach = std::make_unique<stix::st::Approach>(config);
  return out;
}

bool ParseWindow(const std::map<std::string, std::string>& flags,
                 int64_t* t0, int64_t* t1) {
  const auto from = flags.find("from");
  const auto to = flags.find("to");
  return from != flags.end() && to != flags.end() &&
         stix::ParseIsoDate(from->second, t0) &&
         stix::ParseIsoDate(to->second, t1);
}

int CmdQuery(const std::map<std::string, std::string>& flags) {
  stix::Result<RestoredStore> store = Restore(flags);
  if (!store.ok()) return Fail(store.status().ToString());
  stix::geo::Rect rect;
  int64_t t0, t1;
  if (!flags.count("rect") || !ParseRect(flags.at("rect"), &rect) ||
      !ParseWindow(flags, &t0, &t1)) {
    return Usage();
  }
  const auto translated = store->approach->TranslateQuery(rect, t0, t1);
  const stix::cluster::ClusterQueryResult r =
      store->cluster->Query(translated.expr);

  size_t limit = 10;
  if (flags.count("limit")) limit = strtoull(flags.at("limit").c_str(),
                                             nullptr, 10);
  printf("%zu documents, %d node(s), max keys %s, %.2f ms\n", r.docs.size(),
         r.nodes_contacted,
         stix::WithThousands(static_cast<int64_t>(r.max_keys_examined))
             .c_str(),
         r.modeled_millis);
  for (size_t i = 0; i < r.docs.size() && i < limit; ++i) {
    printf("  %s\n", stix::bson::ToJson(r.docs[i]).c_str());
  }
  if (r.docs.size() > limit) {
    printf("  ... %zu more (use --limit=)\n", r.docs.size() - limit);
  }
  return 0;
}

int CmdExplain(const std::map<std::string, std::string>& flags) {
  stix::Result<RestoredStore> store = Restore(flags);
  if (!store.ok()) return Fail(store.status().ToString());
  stix::geo::Rect rect;
  int64_t t0, t1;
  if (!flags.count("rect") || !ParseRect(flags.at("rect"), &rect) ||
      !ParseWindow(flags, &t0, &t1)) {
    return Usage();
  }
  const auto translated = store->approach->TranslateQuery(rect, t0, t1);
  printf("%s", store->cluster->Explain(translated.expr).c_str());
  return 0;
}

int CmdStats(const std::map<std::string, std::string>& flags) {
  stix::Result<RestoredStore> store = Restore(flags);
  if (!store.ok()) return Fail(store.status().ToString());
  const stix::cluster::Cluster& cluster = *store->cluster;
  printf("shard key: %s\n", cluster.shard_key().DebugString().c_str());
  printf("documents: %s in %zu chunks on %d shards (%zu zones)\n",
         stix::WithThousands(
             static_cast<int64_t>(cluster.total_documents()))
             .c_str(),
         cluster.chunks().num_chunks(), cluster.num_shards(),
         cluster.zones().size());
  const stix::storage::CollectionStats data = cluster.ComputeDataStats();
  printf("data: %s BSON, %s block-compressed\n",
         stix::HumanBytes(data.logical_bytes).c_str(),
         stix::HumanBytes(data.compressed_bytes).c_str());
  for (const auto& [name, bytes] : cluster.ComputeIndexSizes()) {
    printf("index %-28s %s\n", name.c_str(),
           stix::HumanBytes(bytes).c_str());
  }
  for (const auto& shard : cluster.shards()) {
    printf("shard %d: %s docs\n", shard->id(),
           stix::WithThousands(
               static_cast<int64_t>(shard->num_documents()))
               .c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv);
  if (command == "load") return CmdLoad(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "explain") return CmdExplain(flags);
  if (command == "stats") return CmdStats(flags);
  return Usage();
}
