// stix_traffic — open-loop traffic harness over one StStore deployment.
//
// From a single 64-bit seed, generates a deterministic plan of thousands of
// simulated user sessions — mixed rectangle / polygon / kNN queries,
// inserts and updates, Zipfian session activity and query hotspots, Poisson
// arrivals — and drives it open-loop: every op is dispatched at its
// scheduled arrival time and its latency is measured from that schedule, so
// queueing delay behind a saturated store is charged to the op (the
// coordinated-omission-free convention). Per-op-class p50/p95/p99 come out
// nearest-rank, plus an offered-rate sweep whose peak achieved throughput
// is the saturation figure.
//
// Each session owns a private micro-cell of the region that all its inserts
// land in; after the run quiesces, querying every cell and comparing
// against the plan's ground truth is an *exact* parity oracle — the same
// oracle discipline as stix_fuzz, here under full concurrency.
//
// --reshard-midway fires StStore::Reshard (bsl* <-> hil*) from a controller
// thread once half the ops have completed, so the shard-key migration runs
// under live mixed traffic; the parity oracle then also proves the reshard
// lost, duplicated and misrouted nothing.
//
// --check turns the run into a CI gate: non-zero parity divergences, any
// op errors, a failed reshard, or a per-class p99 above --p99-gate-ms fail
// the process with exit status 1.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "st/st_store.h"
#include "workload/traffic.h"

namespace stix {
namespace {

using st::ApproachKind;
using st::StStore;
using st::StStoreOptions;
using workload::TrafficConfig;
using workload::TrafficPlan;
using workload::TrafficReport;
using workload::TrafficRunOptions;

struct ToolConfig {
  TrafficConfig traffic;
  int threads = 8;
  int shards = 8;
  ApproachKind approach = ApproachKind::kHil;
  bool reshard_midway = false;
  std::vector<double> sweep;  ///< time_scale multipliers; empty = no sweep.
  std::string json_path;
  bool check = false;
  double p99_gate_ms = 750.0;
  bool verbose = false;
};

bool ParseApproach(const char* name, ApproachKind* out) {
  if (std::strcmp(name, "bslST") == 0) *out = ApproachKind::kBslST;
  else if (std::strcmp(name, "bslTS") == 0) *out = ApproachKind::kBslTS;
  else if (std::strcmp(name, "hil") == 0) *out = ApproachKind::kHil;
  else if (std::strcmp(name, "hilStar") == 0 || std::strcmp(name, "hil*") == 0)
    *out = ApproachKind::kHilStar;
  else return false;
  return true;
}

// The reshard target: always the opposite shard-key family, so the shard
// keys genuinely differ (bslST <-> bslTS share {date} and would be
// rejected).
ApproachKind ReshardTarget(ApproachKind from) {
  return (from == ApproachKind::kHil || from == ApproachKind::kHilStar)
             ? ApproachKind::kBslTS
             : ApproachKind::kHil;
}

std::unique_ptr<StStore> BuildStore(const ToolConfig& config) {
  StStoreOptions options;
  options.approach.kind = config.approach;
  options.approach.dataset_mbr = config.traffic.region;
  options.cluster.num_shards = config.shards;
  options.cluster.seed = config.traffic.seed;
  auto store = std::make_unique<StStore>(options);
  if (!store->Setup().ok()) return nullptr;
  return store;
}

int TrafficMain(int argc, char** argv) {
  ToolConfig config;
  config.traffic.num_sessions = 1000;
  config.traffic.total_ops = 20000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--seed=", 0) == 0) {
      config.traffic.seed = std::strtoull(value("--seed="), nullptr, 10);
    } else if (arg.rfind("--sessions=", 0) == 0) {
      config.traffic.num_sessions = std::atoi(value("--sessions="));
    } else if (arg.rfind("--ops=", 0) == 0) {
      config.traffic.total_ops = std::atoi(value("--ops="));
    } else if (arg.rfind("--preload=", 0) == 0) {
      config.traffic.preload_per_session = std::atoi(value("--preload="));
    } else if (arg.rfind("--rate=", 0) == 0) {
      config.traffic.arrivals_per_sec = std::atof(value("--rate="));
    } else if (arg.rfind("--zipf=", 0) == 0) {
      config.traffic.zipf_s = std::atof(value("--zipf="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      config.threads = std::atoi(value("--threads="));
    } else if (arg.rfind("--shards=", 0) == 0) {
      config.shards = std::atoi(value("--shards="));
    } else if (arg.rfind("--approach=", 0) == 0) {
      if (!ParseApproach(value("--approach="), &config.approach)) {
        std::fprintf(stderr, "--approach must be bslST|bslTS|hil|hilStar\n");
        return 2;
      }
    } else if (arg == "--reshard-midway") {
      config.reshard_midway = true;
    } else if (arg.rfind("--sweep=", 0) == 0) {
      std::stringstream ss(value("--sweep="));
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        if (!tok.empty()) config.sweep.push_back(std::atof(tok.c_str()));
      }
    } else if (arg.rfind("--json=", 0) == 0) {
      config.json_path = value("--json=");
    } else if (arg == "--check") {
      config.check = true;
    } else if (arg.rfind("--p99-gate-ms=", 0) == 0) {
      config.p99_gate_ms = std::atof(value("--p99-gate-ms="));
    } else if (arg == "--verbose" || arg == "-v") {
      config.verbose = true;
    } else {
      std::fprintf(
          stderr,
          "usage: stix_traffic [--seed=N] [--sessions=N] [--ops=N] "
          "[--preload=N] [--rate=OPS_PER_SEC] [--zipf=S] [--threads=N] "
          "[--shards=N] [--approach=bslST|bslTS|hil|hilStar] "
          "[--reshard-midway] [--sweep=M1,M2,...] [--json=PATH] [--check] "
          "[--p99-gate-ms=MS] [--verbose]\n");
      return 2;
    }
  }

  const TrafficPlan plan = workload::GenerateTrafficPlan(config.traffic);
  if (config.verbose) {
    std::printf("plan: %zu preload + %zu ops, fingerprint %s\n",
                plan.preload.size(), plan.ops.size(),
                plan.Fingerprint().c_str());
  }

  // Saturation sweep: a fresh store per offered-rate multiplier (so one
  // point's backlog never warms the next), no reshard, no parity walk.
  struct SweepPoint {
    double offered, achieved, p99_rect_ms;
  };
  std::vector<SweepPoint> sweep_points;
  for (const double multiplier : config.sweep) {
    std::unique_ptr<StStore> store = BuildStore(config);
    if (store == nullptr || !workload::PreloadTraffic(store.get(), plan).ok()) {
      std::fprintf(stderr, "FATAL: sweep store setup/preload failed\n");
      return 1;
    }
    TrafficRunOptions run;
    run.threads = config.threads;
    run.time_scale = multiplier;
    const TrafficReport r = RunTraffic(store.get(), plan, run);
    sweep_points.push_back(SweepPoint{
        r.offered_ops_per_sec, r.achieved_ops_per_sec,
        r.per_class.empty() ? 0.0 : r.per_class[0].p99_ms});
    if (config.verbose) {
      std::printf("sweep x%.2f: offered %.0f/s achieved %.0f/s "
                  "rect p99 %.2f ms\n",
                  multiplier, r.offered_ops_per_sec, r.achieved_ops_per_sec,
                  sweep_points.back().p99_rect_ms);
    }
  }
  double saturation = 0.0;
  for (const SweepPoint& p : sweep_points) {
    saturation = std::max(saturation, p.achieved);
  }

  // Main run: the gated measurement, optionally with the mid-run reshard.
  std::unique_ptr<StStore> store = BuildStore(config);
  if (store == nullptr || !workload::PreloadTraffic(store.get(), plan).ok()) {
    std::fprintf(stderr, "FATAL: store setup/preload failed\n");
    return 1;
  }
  TrafficRunOptions run;
  run.threads = config.threads;
  run.reshard_midway = config.reshard_midway;
  run.reshard_to = ReshardTarget(config.approach);
  const TrafficReport report = RunTraffic(store.get(), plan, run);
  const uint64_t divergences = workload::VerifyTrafficParity(*store, plan);

  std::ostringstream json;
  json << "{\n  \"bench\": \"stix_traffic\",\n  \"config\": {"
       << "\"seed\": " << config.traffic.seed
       << ", \"sessions\": " << config.traffic.num_sessions
       << ", \"ops\": " << config.traffic.total_ops
       << ", \"preload_per_session\": " << config.traffic.preload_per_session
       << ", \"rate\": " << config.traffic.arrivals_per_sec
       << ", \"zipf_s\": " << config.traffic.zipf_s
       << ", \"threads\": " << config.threads
       << ", \"shards\": " << config.shards << ", \"approach\": \""
       << st::ApproachName(config.approach) << "\""
       << ", \"reshard_midway\": "
       << (config.reshard_midway ? "true" : "false")
       << ", \"fingerprint\": \"" << plan.Fingerprint() << "\"},\n";
  json << "  \"op_classes\": [";
  for (size_t i = 0; i < report.per_class.size(); ++i) {
    const workload::TrafficClassStats& cls = report.per_class[i];
    if (i != 0) json << ", ";
    json << "\n    {\"op\": \"" << TrafficOpClassName(cls.op_class)
         << "\", \"count\": " << cls.count << ", \"errors\": " << cls.errors
         << ", \"p50_ms\": " << cls.p50_ms << ", \"p95_ms\": " << cls.p95_ms
         << ", \"p99_ms\": " << cls.p99_ms << ", \"max_ms\": " << cls.max_ms
         << "}";
  }
  json << "\n  ],\n  \"saturation\": [";
  for (size_t i = 0; i < sweep_points.size(); ++i) {
    if (i != 0) json << ", ";
    json << "\n    {\"offered_ops_per_sec\": " << sweep_points[i].offered
         << ", \"achieved_ops_per_sec\": " << sweep_points[i].achieved
         << ", \"rect_p99_ms\": " << sweep_points[i].p99_rect_ms << "}";
  }
  json << "\n  ],\n  \"saturation_ops_per_sec\": " << saturation
       << ",\n  \"achieved_ops_per_sec\": " << report.achieved_ops_per_sec
       << ",\n  \"duration_sec\": " << report.duration_sec
       << ",\n  \"total_errors\": " << report.total_errors
       << ",\n  \"parity_divergences\": " << divergences;
  if (report.reshard_ran) {
    json << ",\n  \"reshard\": {\"status\": \""
         << (report.reshard_status.ok() ? "OK"
                                        : report.reshard_status.ToString())
         << "\", \"millis\": " << report.reshard_millis << "}";
  }
  json << "\n}\n";

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    out << json.str();
  }
  std::printf("%s", json.str().c_str());

  int gate_failures = 0;
  if (config.check) {
    if (divergences != 0) {
      std::fprintf(stderr,
                   "GATE: %" PRIu64 " session parity divergences (want 0)\n",
                   divergences);
      ++gate_failures;
    }
    if (report.total_errors != 0) {
      std::fprintf(stderr, "GATE: %" PRIu64 " op errors (want 0)\n",
                   report.total_errors);
      ++gate_failures;
    }
    if (config.reshard_midway &&
        (!report.reshard_ran || !report.reshard_status.ok())) {
      std::fprintf(stderr, "GATE: reshard did not complete cleanly: %s\n",
                   report.reshard_status.ToString().c_str());
      ++gate_failures;
    }
    for (const workload::TrafficClassStats& cls : report.per_class) {
      if (cls.count > 0 && cls.p99_ms > config.p99_gate_ms) {
        std::fprintf(stderr, "GATE: %s p99 %.2f ms exceeds %.2f ms\n",
                     TrafficOpClassName(cls.op_class), cls.p99_ms,
                     config.p99_gate_ms);
        ++gate_failures;
      }
    }
    if (gate_failures != 0) {
      std::fprintf(stderr,
                   "REPRO: stix_traffic --seed=%" PRIu64
                   " --sessions=%d --ops=%d --rate=%.0f --threads=%d "
                   "--shards=%d --approach=%s%s --check\n",
                   config.traffic.seed, config.traffic.num_sessions,
                   config.traffic.total_ops,
                   config.traffic.arrivals_per_sec, config.threads,
                   config.shards, st::ApproachName(config.approach),
                   config.reshard_midway ? " --reshard-midway" : "");
    }
  }
  return gate_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stix

int main(int argc, char** argv) { return stix::TrafficMain(argc, argv); }
