// stix_fuzz — deterministic differential fuzzing of the query stack.
//
// From a single 64-bit seed, generates a randomized workload (skewed + uniform
// documents, rect+time queries, limits, batch sizes, mid-run chunk
// splits/migrations) and checks all four approaches (bslST, bslTS, hil, hil*)
// — under either plan-selection mode (--planner=race|cost|both; "both" also
// cross-checks race vs cost results byte-for-byte) — against a brute-force
// oracle, plus metamorphic invariants:
//
//   * batch-size invariance     — any getMore batch size yields the same set
//   * cursor-drain parity       — OpenQuery+drain == Query()
//   * limit-prefix property     — limit k returns min(k, |full|) docs, all
//                                 drawn from the full result set
//   * explain consistency       — explain()'s per-stage counters summed over
//                                 shards equal that execution's totals
//   * rect-splitting additivity — partitioning the query rectangle partitions
//                                 the result set
//
// A final fail-point phase proves injected faults are either tolerated
// (delay / forced replan: identical results) or surfaced (error: non-OK
// status), and that the system recovers once the fault is cleared.
//
// With --threads=N a concurrent phase follows: N writer threads insert
// extra documents into every store while the online balancer migrates
// chunks and the main thread streams queries. During the storm results are
// bounds-checked (duplicate-free, superset of the pre-storm oracle, subset
// of the final oracle); after the writers join and the balancer stops,
// exact oracle equality must hold again. Run it under TSAN and the phase
// doubles as a data-race hunt.
//
// Any divergence prints a one-line REPRO command carrying the failing seed.
// Exit status: 0 = all seeds clean, 1 = at least one divergence.

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bson/codec.h"
#include "common/failpoint.h"
#include "common/fs.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "geo/curve_registry.h"
#include "st/st_store.h"

namespace stix {
namespace {

using st::ApproachKind;
using st::StStore;
using st::StStoreOptions;

constexpr ApproachKind kApproaches[] = {ApproachKind::kBslST,
                                        ApproachKind::kBslTS,
                                        ApproachKind::kHil,
                                        ApproachKind::kHilStar};

struct FuzzConfig {
  uint64_t seed_base = 1;
  int num_seeds = 1;
  int docs = 1000;
  int queries = 10;
  bool failpoints = true;
  bool verbose = false;
  /// Record every op in each store's slow-op profiler (slow_millis = 0).
  bool profile = false;
  /// Print the last store's ServerStatus() JSON after the run.
  bool server_status = false;
  /// After all seeds, fail if any core counter never moved — catches
  /// instrumentation that silently went dead (the nightly CI guard).
  bool check_counters = false;
  /// Writer threads for the concurrent phase; 0 disables it.
  int threads = 0;
  /// Reshard phase: live shard-key migrations (bsl* <-> hil*) under a
  /// writer storm, then the exact-oracle battery over the migrated stores.
  /// Replaces the plain concurrent phase (threads picks the storm size).
  bool reshard = false;
  /// Crash-recovery mode: each seed runs a durable store in a scratch
  /// directory, kills it at a sampled crash point mid-workload, recovers
  /// from disk (twice — replay must be idempotent), and asserts the
  /// acked-durable / unacked-atomic oracle over the recovered state. The
  /// scratch directory is kept as a repro artifact when a seed diverges.
  bool crash = false;
  /// Collection layout(s) under test: "row" (one document per point),
  /// "bucket" (compressed bucket documents), or "both" — which runs every
  /// check against both layouts *and* cross-checks them byte-for-byte.
  std::string layout = "row";
  /// Plan-selection mode(s) under test: "race" (always trial-race), "cost"
  /// (estimate from histograms, race only on fallback), or "both" — which
  /// runs every check under both modes *and* cross-checks their result
  /// sets byte-for-byte (cost-based selection must never change results,
  /// only how the winning plan is chosen).
  std::string planner = "cost";
  /// Curve(s) behind hilbertIndex on the hil/hil* stores:
  /// "hilbert" | "zorder" | "onion" | "egeohash", or "all" — which builds
  /// one hil + hil* store *per registered curve* and runs every one against
  /// the same brute-force oracle. The egeohash stores fit their equi-depth
  /// boundaries from a deterministic sample of the generated documents.
  std::string curve = "hilbert";
};

// Ground-truth record of one generated document.
struct FuzzDoc {
  double lon;
  double lat;
  int64_t t_ms;
  int32_t fid;
};

struct FuzzQuery {
  geo::Rect rect;
  int64_t t_begin_ms;
  int64_t t_end_ms;
};

std::vector<int32_t> OracleFids(const std::vector<FuzzDoc>& docs,
                                const FuzzQuery& q) {
  std::vector<int32_t> fids;
  for (const FuzzDoc& d : docs) {
    if (q.rect.Contains({d.lon, d.lat}) && d.t_ms >= q.t_begin_ms &&
        d.t_ms <= q.t_end_ms) {
      fids.push_back(d.fid);
    }
  }
  std::sort(fids.begin(), fids.end());
  return fids;
}

std::vector<int32_t> SortedFids(const std::vector<bson::Document>& docs) {
  std::vector<int32_t> fids;
  fids.reserve(docs.size());
  for (const bson::Document& doc : docs) {
    const bson::Value* v = doc.Get("fid");
    fids.push_back(v == nullptr ? -1 : v->AsInt32());
  }
  std::sort(fids.begin(), fids.end());
  return fids;
}

bool HasDuplicates(const std::vector<int32_t>& sorted) {
  return std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end();
}

// Divergence reporting: context for the one-line repro.
struct SeedContext {
  uint64_t seed;
  const FuzzConfig* config;
  int divergences = 0;

  void Report(const char* approach, const char* check, const FuzzQuery& q,
              size_t expected, size_t got) {
    ++divergences;
    std::fprintf(stderr,
                 "DIVERGENCE seed=%" PRIu64
                 " approach=%s check=%s rect=[(%.6f,%.6f)-(%.6f,%.6f)] "
                 "t=[%" PRId64 ",%" PRId64 "] expected=%zu got=%zu\n",
                 seed, approach, check, q.rect.lo.lon, q.rect.lo.lat,
                 q.rect.hi.lon, q.rect.hi.lat, q.t_begin_ms, q.t_end_ms,
                 expected, got);
    char threads_arg[32] = "";
    if (config->threads > 0) {
      std::snprintf(threads_arg, sizeof(threads_arg), " --threads=%d",
                    config->threads);
    }
    char curve_arg[32] = "";
    if (config->curve != "hilbert") {
      std::snprintf(curve_arg, sizeof(curve_arg), " --curve=%s",
                    config->curve.c_str());
    }
    std::fprintf(stderr,
                 "REPRO: stix_fuzz --seed=%" PRIu64
                 " --docs=%d --queries=%d --layout=%s --planner=%s%s%s%s%s\n",
                 seed, config->docs, config->queries, config->layout.c_str(),
                 config->planner.c_str(), threads_arg, curve_arg,
                 config->crash ? " --crash" : "",
                 config->reshard ? " --reshard" : "");
  }
};

// Curve kinds a --curve value selects for the hil/hil* stores ("all" runs
// every registered curve against the same oracle).
std::vector<geo::CurveKind> CurveKindsFor(const std::string& curve) {
  if (curve == "all") return geo::AllCurveKinds();
  geo::CurveKind kind = geo::CurveKind::kHilbert;
  geo::CurveKindFromName(curve.c_str(), &kind);  // validated at arg parse
  return {kind};
}

// Deterministic fit sample for egeohash stores: every k-th generated point,
// capped so the equi-depth fit stays cheap at any --docs.
std::vector<geo::Point> FitSampleFor(const std::vector<FuzzDoc>& docs) {
  constexpr size_t kMaxSample = 1024;
  const size_t stride =
      docs.size() > kMaxSample ? docs.size() / kMaxSample : 1;
  std::vector<geo::Point> sample;
  sample.reserve(kMaxSample + 1);
  for (size_t i = 0; i < docs.size(); i += stride) {
    sample.push_back({docs[i].lon, docs[i].lat});
  }
  return sample;
}

// Generates the per-seed document workload: a few Gaussian hot spots over a
// random MBR plus uniform background, all timestamps within a random span.
std::vector<FuzzDoc> GenerateDocs(Rng* rng, int count, geo::Rect* mbr_out,
                                  int64_t* t0_out, int64_t* span_out) {
  const double center_lon = rng->NextDouble(-170.0, 170.0);
  const double center_lat = rng->NextDouble(-80.0, 80.0);
  const double extent_lon = rng->NextDouble(0.5, 20.0);
  const double extent_lat = rng->NextDouble(0.5, 20.0);
  const geo::Rect mbr{
      {std::max(-180.0, center_lon - extent_lon),
       std::max(-90.0, center_lat - extent_lat)},
      {std::min(180.0, center_lon + extent_lon),
       std::min(90.0, center_lat + extent_lat)}};
  *mbr_out = mbr;

  const int64_t t0 = 1538352000000;  // 2018-10-01T00:00:00Z
  const int64_t span =
      3600000 + static_cast<int64_t>(rng->NextBounded(90ull * 24 * 3600000));
  *t0_out = t0;
  *span_out = span;

  const int num_clusters = 1 + static_cast<int>(rng->NextBounded(3));
  struct Hot {
    double lon, lat, sigma_lon, sigma_lat;
  };
  std::vector<Hot> hots;
  for (int i = 0; i < num_clusters; ++i) {
    hots.push_back(Hot{rng->NextDouble(mbr.lo.lon, mbr.hi.lon),
                       rng->NextDouble(mbr.lo.lat, mbr.hi.lat),
                       mbr.width() * rng->NextDouble(0.01, 0.15),
                       mbr.height() * rng->NextDouble(0.01, 0.15)});
  }

  std::vector<FuzzDoc> docs;
  docs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    FuzzDoc d;
    if (!docs.empty() && rng->NextBool(0.02)) {
      // Exact duplicate position+time under a fresh fid: stresses duplicate
      // keys through every index and the merge.
      const FuzzDoc& src = docs[rng->NextBounded(docs.size())];
      d = src;
    } else if (rng->NextBool(0.25)) {
      d.lon = rng->NextDouble(mbr.lo.lon, mbr.hi.lon);
      d.lat = rng->NextDouble(mbr.lo.lat, mbr.hi.lat);
      d.t_ms = t0 + static_cast<int64_t>(
                        rng->NextBounded(static_cast<uint64_t>(span) + 1));
    } else {
      const Hot& hot = hots[rng->NextBounded(hots.size())];
      d.lon = std::min(mbr.hi.lon,
                       std::max(mbr.lo.lon,
                                hot.lon + rng->NextGaussian() * hot.sigma_lon));
      d.lat = std::min(mbr.hi.lat,
                       std::max(mbr.lo.lat,
                                hot.lat + rng->NextGaussian() * hot.sigma_lat));
      d.t_ms = t0 + static_cast<int64_t>(
                        rng->NextBounded(static_cast<uint64_t>(span) + 1));
    }
    d.fid = i;
    docs.push_back(d);
  }
  return docs;
}

FuzzQuery GenerateQuery(Rng* rng, const geo::Rect& mbr, int64_t t0,
                        int64_t span) {
  FuzzQuery q;
  // Center mostly inside the MBR, occasionally outside (empty-ish results).
  const double margin = rng->NextBool(0.1) ? 0.3 : 0.0;
  const double cx = rng->NextDouble(mbr.lo.lon - margin * mbr.width(),
                                    mbr.hi.lon + margin * mbr.width());
  const double cy = rng->NextDouble(mbr.lo.lat - margin * mbr.height(),
                                    mbr.hi.lat + margin * mbr.height());
  // Width spans ~3 decades: tiny cells up to most of the MBR.
  const double w =
      mbr.width() * std::pow(10.0, rng->NextDouble(-2.5, 0.0));
  const double h =
      mbr.height() * std::pow(10.0, rng->NextDouble(-2.5, 0.0));
  q.rect = geo::Rect{{cx - w / 2, cy - h / 2}, {cx + w / 2, cy + h / 2}};

  if (rng->NextBool(0.2)) {
    q.t_begin_ms = t0;
    q.t_end_ms = t0 + span;
  } else {
    const int64_t lo =
        t0 + static_cast<int64_t>(rng->NextBounded(static_cast<uint64_t>(span)));
    const int64_t len = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(span) *
                                rng->NextDouble(0.001, 1.0)));
    q.t_begin_ms = lo;
    q.t_end_ms = std::min(t0 + span, lo + len);
  }
  return q;
}

bson::Document MakeDoc(const FuzzDoc& d) {
  bson::Document doc;
  doc.Append(st::kLocationField,
             bson::Value::MakeDocument(bson::GeoJsonPoint(d.lon, d.lat)));
  doc.Append(st::kDateField, bson::Value::DateTime(d.t_ms));
  doc.Append("fid", bson::Value::Int32(d.fid));
  return doc;
}

// Drains a streaming cursor fully; sets *status_out from the cursor summary.
std::vector<int32_t> DrainFids(st::StCursor cursor, Status* status_out) {
  std::vector<bson::Document> all;
  while (!cursor.exhausted()) {
    std::vector<bson::Document> batch = cursor.NextBatch();
    all.insert(all.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  if (status_out != nullptr) *status_out = cursor.Summary().cluster.status;
  return SortedFids(all);
}

// Runs the differential + metamorphic checks for one query against every
// store. Returns false (after reporting) on the first divergence.
bool CheckQuery(const std::vector<StStore*>& stores,
                const std::vector<FuzzDoc>& docs, const FuzzQuery& q,
                Rng* rng, SeedContext* ctx) {
  const std::vector<int32_t> oracle = OracleFids(docs, q);
  const std::set<int32_t> oracle_set(oracle.begin(), oracle.end());

  const size_t batch_sizes[] = {1, 3, 17, 101};
  const size_t batch = batch_sizes[rng->NextBounded(4)];
  const uint64_t limit = 1 + rng->NextBounded(oracle.size() + 3);
  const bool check_split = rng->NextBool(0.5);

  // Rectangle partition at a random longitude: [lo, x] and (x, hi] — the
  // nextafter gap keeps the two closed rects disjoint and exhaustive over
  // representable doubles.
  const double split_x =
      rng->NextDouble(q.rect.lo.lon, q.rect.hi.lon);
  FuzzQuery left = q, right = q;
  left.rect.hi.lon = split_x;
  right.rect.lo.lon = std::nextafter(split_x, 1e9);

  for (StStore* const store : stores) {
    const std::string label = std::string(store->approach().name()) +
                              (store->bucketed() ? "/bucket" : "");
    const char* name = label.c_str();

    // 1. Oracle equality via Query().
    const st::StQueryResult full = store->Query(q.rect, q.t_begin_ms,
                                                q.t_end_ms);
    if (!full.cluster.status.ok()) {
      ctx->Report(name, "query-status", q, 0, 1);
      return false;
    }
    const std::vector<int32_t> got = SortedFids(full.cluster.docs);
    if (HasDuplicates(got)) {
      ctx->Report(name, "duplicates", q, oracle.size(), got.size());
      return false;
    }
    if (got != oracle) {
      ctx->Report(name, "oracle", q, oracle.size(), got.size());
      return false;
    }

    // 2. Batch-size invariance + cursor-drain == Query() parity.
    st::StCursorOptions copts;
    copts.batch_size = batch;
    Status cursor_status;
    const std::vector<int32_t> streamed = DrainFids(
        store->OpenQuery(q.rect, q.t_begin_ms, q.t_end_ms, copts),
        &cursor_status);
    if (!cursor_status.ok() || streamed != oracle) {
      ctx->Report(name, "batch-invariance", q, oracle.size(), streamed.size());
      return false;
    }

    // 3. Limit-prefix property: min(k, |full|) results, all from the full
    // result set. (A set property, not an order prefix: limit pushdown may
    // legitimately change the winning plan and per-shard production order.)
    st::StCursorOptions lopts;
    lopts.batch_size = batch_sizes[rng->NextBounded(4)];
    lopts.limit = limit;
    const std::vector<int32_t> limited = DrainFids(
        store->OpenQuery(q.rect, q.t_begin_ms, q.t_end_ms, lopts), nullptr);
    const size_t want =
        std::min<size_t>(static_cast<size_t>(limit), oracle.size());
    bool limit_ok = limited.size() == want && !HasDuplicates(limited);
    for (const int32_t fid : limited) {
      if (oracle_set.count(fid) == 0) limit_ok = false;
    }
    if (!limit_ok) {
      ctx->Report(name, "limit-prefix", q, want, limited.size());
      return false;
    }

    // 4. Explain-tree consistency: explain executes the query once, and its
    // per-stage counters summed over shards must equal that execution's
    // totals exactly — and the execution must still match the oracle.
    const st::StExplain explain =
        store->Explain(q.rect, q.t_begin_ms, q.t_end_ms);
    const cluster::ClusterExplain& ce = explain.cluster;
    if (ce.SumStageKeysExamined() != ce.result.total_keys_examined ||
        ce.SumStageDocsExamined() != ce.result.total_docs_examined) {
      ctx->Report(name, "explain-stage-sums", q,
                  static_cast<size_t>(ce.result.total_keys_examined),
                  static_cast<size_t>(ce.SumStageKeysExamined()));
      return false;
    }
    if (ce.result.n_returned != oracle.size()) {
      ctx->Report(name, "explain-n-returned", q, oracle.size(),
                  static_cast<size_t>(ce.result.n_returned));
      return false;
    }

    // 5. Rectangle-splitting additivity: the two halves partition the set.
    if (check_split) {
      std::vector<int32_t> parts = SortedFids(
          store->Query(left.rect, left.t_begin_ms, left.t_end_ms)
              .cluster.docs);
      const std::vector<int32_t> right_fids = SortedFids(
          store->Query(right.rect, right.t_begin_ms, right.t_end_ms)
              .cluster.docs);
      parts.insert(parts.end(), right_fids.begin(), right_fids.end());
      std::sort(parts.begin(), parts.end());
      if (parts != oracle) {
        ctx->Report(name, "rect-split-additivity", q, oracle.size(),
                    parts.size());
        return false;
      }
    }
  }
  return true;
}

// Pairwise parity (--layout=both / --planner=both): the paired stores
// (row vs bucket of the same approach, or race vs cost of the same
// approach+layout) must return *byte-identical* document sets — the bucket
// codec's round trip preserves field order and value types, and plan
// selection never affects what a query matches, so after sorting by fid
// the BSON encodings must match exactly, not just the fids.
bool CheckPairParity(const std::vector<StStore*>& lhs,
                     const std::vector<StStore*>& rhs, const char* dimension,
                     const FuzzQuery& q, SeedContext* ctx) {
  const auto sorted_by_fid = [](std::vector<bson::Document> docs) {
    std::sort(docs.begin(), docs.end(),
              [](const bson::Document& a, const bson::Document& b) {
                const bson::Value* va = a.Get("fid");
                const bson::Value* vb = b.Get("fid");
                return (va == nullptr ? -1 : va->AsInt32()) <
                       (vb == nullptr ? -1 : vb->AsInt32());
              });
    return docs;
  };
  const std::string count_check = std::string(dimension) + "-parity-count";
  const std::string bytes_check = std::string(dimension) + "-parity-bytes";
  for (size_t i = 0; i < lhs.size(); ++i) {
    const std::string label =
        std::string(lhs[i]->approach().name()) + "/parity";
    const std::vector<bson::Document> a = sorted_by_fid(
        lhs[i]->Query(q.rect, q.t_begin_ms, q.t_end_ms).cluster.docs);
    const std::vector<bson::Document> b = sorted_by_fid(
        rhs[i]->Query(q.rect, q.t_begin_ms, q.t_end_ms).cluster.docs);
    if (a.size() != b.size()) {
      ctx->Report(label.c_str(), count_check.c_str(), q, a.size(), b.size());
      return false;
    }
    for (size_t d = 0; d < a.size(); ++d) {
      if (bson::EncodeBson(a[d]) != bson::EncodeBson(b[d])) {
        ctx->Report(label.c_str(), bytes_check.c_str(), q, a.size(), d);
        return false;
      }
    }
  }
  return true;
}

// The bucketCatalogFlush fail point, exercised on a small throwaway store
// (so the shared stores' document sets stay untouched): a failing flush must
// leave the points buffered (queries succeed over what *is* flushed, with no
// duplicates), a retry after the fault clears must make every point visible,
// and FlushBuckets must surface the injected error when buffered points
// exist.
bool CheckBucketFlushFailPoint(const geo::Rect& mbr, int64_t t0, int64_t span,
                               const storage::BucketLayout& bucket_layout,
                               Rng* rng, SeedContext* ctx) {
  FailPoint* fp = FailPointRegistry::Instance().Find("bucketCatalogFlush");
  if (fp == nullptr) {
    std::fprintf(stderr, "FATAL: fail point bucketCatalogFlush not registered\n");
    ctx->divergences++;
    return false;
  }

  StStoreOptions options;
  options.approach.kind = kApproaches[rng->NextBounded(4)];
  options.approach.dataset_mbr = mbr;
  options.cluster.num_shards = 2;
  options.cluster.seed = ctx->seed ^ 0xb0c4e7;
  options.bucket = bucket_layout;
  StStore store(options);
  if (!store.Setup().ok()) {
    std::fprintf(stderr, "FATAL: flush-failpoint store setup failed\n");
    ctx->divergences++;
    return false;
  }

  std::vector<FuzzDoc> docs;
  for (int i = 0; i < 24; ++i) {
    FuzzDoc d;
    d.lon = rng->NextDouble(mbr.lo.lon, mbr.hi.lon);
    d.lat = rng->NextDouble(mbr.lo.lat, mbr.hi.lat);
    d.t_ms = t0 + static_cast<int64_t>(
                      rng->NextBounded(static_cast<uint64_t>(span) + 1));
    d.fid = i;
    docs.push_back(d);
    if (!store.Insert(MakeDoc(d)).ok()) {
      std::fprintf(stderr, "FATAL: flush-failpoint insert failed\n");
      ctx->divergences++;
      return false;
    }
  }
  FuzzQuery q{mbr, t0, t0 + span};
  const std::vector<int32_t> oracle = OracleFids(docs, q);

  // Phase 1: a failing flush is tolerated by the read path — the query
  // still runs (over every bucket that did flush) and loses nothing twice.
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kTimes;
  config.count = 1;
  config.error_code = StatusCode::kInternal;
  config.error_message = "injected fault at bucketCatalogFlush";
  fp->Enable(config);
  const st::StQueryResult faulted =
      store.Query(q.rect, q.t_begin_ms, q.t_end_ms);
  fp->Disable();
  const std::vector<int32_t> faulted_fids = SortedFids(faulted.cluster.docs);
  const std::set<int32_t> oracle_set(oracle.begin(), oracle.end());
  bool subset_ok =
      faulted.cluster.status.ok() && !HasDuplicates(faulted_fids);
  for (const int32_t fid : faulted_fids) {
    if (oracle_set.count(fid) == 0) subset_ok = false;
  }
  if (!subset_ok) {
    ctx->Report("bucket", "failpoint-flush-subset", q, oracle.size(),
                faulted_fids.size());
    return false;
  }

  // Phase 2: with the fault cleared, the next query retries the flush and
  // every buffered point becomes visible — nothing was lost.
  const std::vector<int32_t> recovered =
      SortedFids(store.Query(q.rect, q.t_begin_ms, q.t_end_ms).cluster.docs);
  if (recovered != oracle) {
    ctx->Report("bucket", "failpoint-flush-recovery", q, oracle.size(),
                recovered.size());
    return false;
  }

  // Phase 3: an explicit flush of buffered points surfaces the injected
  // error instead of swallowing it.
  FuzzDoc extra;
  extra.lon = rng->NextDouble(mbr.lo.lon, mbr.hi.lon);
  extra.lat = rng->NextDouble(mbr.lo.lat, mbr.hi.lat);
  extra.t_ms = t0;
  extra.fid = static_cast<int32_t>(docs.size());
  docs.push_back(extra);
  if (!store.Insert(MakeDoc(extra)).ok()) {
    std::fprintf(stderr, "FATAL: flush-failpoint insert failed\n");
    ctx->divergences++;
    return false;
  }
  fp->Enable(config);
  const Status flush_status = store.FlushBuckets();
  fp->Disable();
  if (flush_status.ok() && store.bucket_catalog()->points_buffered() > 0) {
    ctx->Report("bucket", "failpoint-flush-surfaced", q, 1, 0);
    return false;
  }
  const std::vector<int32_t> final_fids =
      SortedFids(store.Query(q.rect, q.t_begin_ms, q.t_end_ms).cluster.docs);
  if (final_fids != OracleFids(docs, q)) {
    ctx->Report("bucket", "failpoint-flush-final", q, docs.size(),
                final_fids.size());
    return false;
  }
  return true;
}

// Fault phases: delays and forced replans must leave results identical;
// injected errors must surface as a non-OK status; clearing the fault must
// restore correct results.
bool CheckFailPoints(const std::vector<StStore*>& stores,
                     const std::vector<FuzzDoc>& docs, const FuzzQuery& q,
                     Rng* rng, SeedContext* ctx) {
  FailPointRegistry& registry = FailPointRegistry::Instance();
  const std::vector<int32_t> oracle = OracleFids(docs, q);
  StStore& victim = *stores[rng->NextBounded(stores.size())];
  const char* name = victim.approach().name();

  // Tolerated faults: results must not change.
  const char* tolerated[] = {"shardGetMore", "clusterMergeBatch",
                             "planExecutorReplan"};
  for (const char* site : tolerated) {
    FailPoint* fp = registry.Find(site);
    if (fp == nullptr) {
      std::fprintf(stderr, "FATAL: fail point %s not registered\n", site);
      ctx->divergences++;
      return false;
    }
    FailPoint::Config config;
    config.mode = FailPoint::Mode::kAlwaysOn;
    config.delay_ms = std::strcmp(site, "planExecutorReplan") == 0
                          ? 0.0    // pure branch-forcing, no sleep
                          : 0.02;  // slow shard / slow merge
    fp->Enable(config);
    const st::StQueryResult r = victim.Query(q.rect, q.t_begin_ms, q.t_end_ms);
    fp->Disable();
    const std::vector<int32_t> got = SortedFids(r.cluster.docs);
    if (!r.cluster.status.ok() || got != oracle) {
      ctx->Report(name, (std::string("failpoint-delay-") + site).c_str(), q,
                  oracle.size(), got.size());
      return false;
    }
  }

  // Surfaced faults: the stream dies with a non-OK status, then recovers.
  const char* fatal_sites[] = {"shardGetMore", "clusterMergeBatch"};
  for (const char* site : fatal_sites) {
    FailPoint* fp = registry.Find(site);
    FailPoint::Config config;
    config.mode = FailPoint::Mode::kTimes;
    config.count = 1;
    config.error_code = StatusCode::kInternal;
    config.error_message = std::string("injected fault at ") + site;
    fp->Enable(config);
    const st::StQueryResult r = victim.Query(q.rect, q.t_begin_ms, q.t_end_ms);
    fp->Disable();
    // shardGetMore only fires when at least one shard is contacted.
    const bool expect_error =
        std::strcmp(site, "shardGetMore") != 0 || r.cluster.nodes_contacted > 0;
    if (expect_error && r.cluster.status.ok()) {
      ctx->Report(name, (std::string("failpoint-error-") + site).c_str(), q, 1,
                  0);
      return false;
    }
    const std::vector<int32_t> after =
        SortedFids(victim.Query(q.rect, q.t_begin_ms, q.t_end_ms).cluster.docs);
    if (after != oracle) {
      ctx->Report(name, (std::string("failpoint-recovery-") + site).c_str(), q,
                  oracle.size(), after.size());
      return false;
    }
  }
  registry.DisableAll();
  return true;
}

// Concurrent phase (--threads=N): N writer threads insert fresh documents
// into every store while each cluster's online balancer migrates chunks and
// the main thread streams queries through yielding cursors. Mid-storm
// results cannot be compared for equality (writers race the scans), but
// three bounds always hold because documents are only ever added:
//
//   - no duplicate fids in any result;
//   - every pre-storm match appears (the result is a superset of the oracle
//     over the base documents);
//   - every returned fid is a possible match (subset of the oracle over
//     base + all extra documents).
//
// After the writers join and the balancers stop, the full CheckQuery
// battery must pass against the combined document set — the storm must
// leave no lasting damage.
bool CheckConcurrent(const std::vector<StStore*>& stores,
                     const std::vector<FuzzDoc>& base, const geo::Rect& mbr,
                     int64_t t0, int64_t span, const FuzzConfig& config,
                     Rng* rng, SeedContext* ctx) {
  const int num_writers = config.threads;
  const int extra_per_writer =
      std::max(1, config.docs / (4 * std::max(1, num_writers)));

  // Pre-generate the writers' documents deterministically on the main
  // thread; fids continue past the base range so every fid stays unique.
  std::vector<std::vector<FuzzDoc>> extra(static_cast<size_t>(num_writers));
  std::vector<FuzzDoc> all = base;
  int32_t next_fid = static_cast<int32_t>(base.size());
  for (std::vector<FuzzDoc>& bucket : extra) {
    bucket.reserve(static_cast<size_t>(extra_per_writer));
    for (int i = 0; i < extra_per_writer; ++i) {
      FuzzDoc d;
      d.lon = rng->NextDouble(mbr.lo.lon, mbr.hi.lon);
      d.lat = rng->NextDouble(mbr.lo.lat, mbr.hi.lat);
      d.t_ms = t0 + static_cast<int64_t>(
                        rng->NextBounded(static_cast<uint64_t>(span) + 1));
      d.fid = next_fid++;
      bucket.push_back(d);
      all.push_back(d);
    }
  }
  std::vector<FuzzQuery> queries;
  const int num_queries = std::max(4, config.queries);
  queries.reserve(static_cast<size_t>(num_queries));
  for (int i = 0; i < num_queries; ++i) {
    queries.push_back(GenerateQuery(rng, mbr, t0, span));
  }

  for (const auto& store : stores) store->cluster().StartBalancer();

  std::atomic<bool> write_failed{false};
  std::vector<std::thread> writers;
  writers.reserve(static_cast<size_t>(num_writers));
  for (int t = 0; t < num_writers; ++t) {
    writers.emplace_back([&stores, &extra, t, &write_failed] {
      for (const FuzzDoc& d : extra[static_cast<size_t>(t)]) {
        for (const auto& store : stores) {
          if (!store->Insert(MakeDoc(d)).ok()) {
            write_failed.store(true);
            return;
          }
        }
      }
    });
  }

  bool ok = true;
  for (const FuzzQuery& q : queries) {
    const std::vector<int32_t> lower = OracleFids(base, q);
    const std::vector<int32_t> upper = OracleFids(all, q);
    const std::set<int32_t> upper_set(upper.begin(), upper.end());
    for (const auto& store : stores) {
      const char* name = store->approach().name();
      st::StCursorOptions copts;
      copts.batch_size = 17;  // several getMore rounds → several yields
      Status status;
      const std::vector<int32_t> got = DrainFids(
          store->OpenQuery(q.rect, q.t_begin_ms, q.t_end_ms, copts), &status);
      if (!status.ok()) {
        ctx->Report(name, "concurrent-status", q, 0, 1);
        ok = false;
        break;
      }
      if (HasDuplicates(got)) {
        ctx->Report(name, "concurrent-duplicates", q, lower.size(),
                    got.size());
        ok = false;
        break;
      }
      bool bounds_ok =
          std::includes(got.begin(), got.end(), lower.begin(), lower.end());
      for (const int32_t fid : got) {
        if (upper_set.count(fid) == 0) bounds_ok = false;
      }
      if (!bounds_ok) {
        ctx->Report(name, "concurrent-bounds", q, lower.size(), got.size());
        ok = false;
        break;
      }
    }
    if (!ok) break;
  }

  for (std::thread& w : writers) w.join();
  for (const auto& store : stores) store->cluster().StopBalancer();
  if (write_failed.load()) {
    std::fprintf(stderr, "FATAL: concurrent insert failed (seed=%" PRIu64
                         ")\n",
                 ctx->seed);
    ++ctx->divergences;
    return false;
  }
  if (!ok) return false;

  // Quiesced: exact differential equality must hold again, over the
  // combined base + extra document set.
  for (int i = 0; i < 2; ++i) {
    const FuzzQuery q = GenerateQuery(rng, mbr, t0, span);
    if (!CheckQuery(stores, all, q, rng, ctx)) return false;
  }
  return true;
}

// Reshard phase (--reshard): live shard-key migrations under a writer
// storm. One baseline-keyed and one hilbert-keyed row store reshard onto
// the opposite family's shard key while writer threads insert fresh
// documents into every store, each cluster's online balancer runs, and the
// main thread streams queries with the monotone bounds checks (duplicate-
// free, superset of the pre-storm oracle, subset of the final oracle).
// After the storm quiesces the migrated stores must have swapped
// approaches, report the migration finished, and the full differential
// battery must pass over the combined document set — proving the reshard
// lost, duplicated and misrouted nothing.
bool CheckReshardPhase(const std::vector<StStore*>& stores,
                       const std::vector<StStore*>& row_stores,
                       const std::vector<FuzzDoc>& base, const geo::Rect& mbr,
                       int64_t t0, int64_t span, const FuzzConfig& config,
                       Rng* rng, SeedContext* ctx) {
  // Victims: the first baseline-keyed and the first hilbert-keyed row
  // store, migrated onto the opposite family (bslST <-> bslTS share {date}
  // and would be rejected as a same-key reshard).
  std::vector<std::pair<StStore*, ApproachKind>> migrations;
  bool have_baseline = false, have_hilbert = false;
  for (StStore* const store : row_stores) {
    const ApproachKind kind = store->approach().kind();
    const bool hilbert =
        kind == ApproachKind::kHil || kind == ApproachKind::kHilStar;
    if (hilbert && !have_hilbert) {
      migrations.emplace_back(store, ApproachKind::kBslTS);
      have_hilbert = true;
    } else if (!hilbert && !have_baseline) {
      migrations.emplace_back(store, ApproachKind::kHil);
      have_baseline = true;
    }
  }
  if (migrations.empty()) return true;

  const int num_writers = std::max(2, config.threads);
  const int extra_per_writer =
      std::max(1, config.docs / (4 * num_writers));
  std::vector<std::vector<FuzzDoc>> extra(static_cast<size_t>(num_writers));
  std::vector<FuzzDoc> all = base;
  int32_t next_fid = static_cast<int32_t>(base.size());
  for (std::vector<FuzzDoc>& bucket : extra) {
    bucket.reserve(static_cast<size_t>(extra_per_writer));
    for (int i = 0; i < extra_per_writer; ++i) {
      FuzzDoc d;
      d.lon = rng->NextDouble(mbr.lo.lon, mbr.hi.lon);
      d.lat = rng->NextDouble(mbr.lo.lat, mbr.hi.lat);
      d.t_ms = t0 + static_cast<int64_t>(
                        rng->NextBounded(static_cast<uint64_t>(span) + 1));
      d.fid = next_fid++;
      bucket.push_back(d);
      all.push_back(d);
    }
  }
  std::vector<FuzzQuery> queries;
  const int num_queries = std::max(4, config.queries);
  queries.reserve(static_cast<size_t>(num_queries));
  for (int i = 0; i < num_queries; ++i) {
    queries.push_back(GenerateQuery(rng, mbr, t0, span));
  }

  for (const auto& store : stores) store->cluster().StartBalancer();

  std::vector<Status> reshard_status(migrations.size());
  std::vector<std::thread> reshard_threads;
  reshard_threads.reserve(migrations.size());
  for (size_t m = 0; m < migrations.size(); ++m) {
    reshard_threads.emplace_back([&migrations, &reshard_status, m] {
      reshard_status[m] = migrations[m].first->Reshard(migrations[m].second);
    });
  }

  std::atomic<bool> write_failed{false};
  std::vector<std::thread> writers;
  writers.reserve(static_cast<size_t>(num_writers));
  for (int t = 0; t < num_writers; ++t) {
    writers.emplace_back([&stores, &extra, t, &write_failed] {
      for (const FuzzDoc& d : extra[static_cast<size_t>(t)]) {
        for (const auto& store : stores) {
          if (!store->Insert(MakeDoc(d)).ok()) {
            write_failed.store(true);
            return;
          }
        }
      }
    });
  }

  bool ok = true;
  for (const FuzzQuery& q : queries) {
    const std::vector<int32_t> lower = OracleFids(base, q);
    const std::vector<int32_t> upper = OracleFids(all, q);
    const std::set<int32_t> upper_set(upper.begin(), upper.end());
    for (const auto& store : stores) {
      const char* name = store->approach().name();
      st::StCursorOptions copts;
      copts.batch_size = 17;
      Status status;
      const std::vector<int32_t> got = DrainFids(
          store->OpenQuery(q.rect, q.t_begin_ms, q.t_end_ms, copts), &status);
      if (!status.ok()) {
        ctx->Report(name, "reshard-mid-status", q, 0, 1);
        ok = false;
        break;
      }
      if (HasDuplicates(got)) {
        ctx->Report(name, "reshard-mid-duplicates", q, lower.size(),
                    got.size());
        ok = false;
        break;
      }
      bool bounds_ok =
          std::includes(got.begin(), got.end(), lower.begin(), lower.end());
      for (const int32_t fid : got) {
        if (upper_set.count(fid) == 0) bounds_ok = false;
      }
      if (!bounds_ok) {
        ctx->Report(name, "reshard-mid-bounds", q, lower.size(), got.size());
        ok = false;
        break;
      }
    }
    if (!ok) break;
  }

  for (std::thread& w : writers) w.join();
  for (std::thread& r : reshard_threads) r.join();
  for (const auto& store : stores) store->cluster().StopBalancer();
  if (write_failed.load()) {
    std::fprintf(stderr,
                 "FATAL: reshard-phase insert failed (seed=%" PRIu64 ")\n",
                 ctx->seed);
    ++ctx->divergences;
    return false;
  }
  if (!ok) return false;

  const FuzzQuery full{mbr, t0, t0 + span};
  for (size_t m = 0; m < migrations.size(); ++m) {
    StStore* const store = migrations[m].first;
    if (!reshard_status[m].ok()) {
      std::fprintf(stderr, "reshard failed: %s\n",
                   reshard_status[m].ToString().c_str());
      ctx->Report(store->approach().name(), "reshard-status", full, 0, 1);
      return false;
    }
    if (store->approach().kind() != migrations[m].second ||
        store->resharding() || store->cluster().resharding()) {
      ctx->Report(store->approach().name(), "reshard-not-swapped", full, 1,
                  0);
      return false;
    }
  }

  // Quiesced: the migrated stores answer from the new layout; the full
  // battery (oracle, batch invariance, limits, explain sums, additivity)
  // must hold over base + extra.
  for (int i = 0; i < 2; ++i) {
    const FuzzQuery q = GenerateQuery(rng, mbr, t0, span);
    if (!CheckQuery(stores, all, q, rng, ctx)) return false;
  }
  return true;
}

// Crash-recovery phase (--crash): one durable store per seed, killed at a
// sampled crash point mid-load, then recovered from disk. The oracle is the
// durability contract rather than a query result:
//
//   acked ⊆ recovered ⊆ acked ∪ uncertain
//
// where `acked` is every insert that returned OK and `uncertain` is the
// insert in flight when the store died — its journal record may or may not
// have reached disk before the fault, so either outcome is legal; silently
// losing an *acked* write or resurrecting a never-written fid is not.
// Recovery must additionally be idempotent (a second recovery yields the
// identical set), produce no duplicate fids, answer sub-rectangle queries
// that agree with a brute-force oracle over the recovered set, and accept
// new writes afterwards (including a balancer pass). The scratch directory
// is deleted on success and kept as a repro artifact when the seed diverges.
bool RunCrashSeed(uint64_t seed, const FuzzConfig& config) {
  SeedContext ctx{seed, &config};
  Rng rng(seed);
  Rng data_rng = rng.Fork();
  Rng knob_rng = rng.Fork();
  Rng query_rng = rng.Fork();

  geo::Rect mbr;
  int64_t t0 = 0, span = 0;
  const std::vector<FuzzDoc> docs =
      GenerateDocs(&data_rng, config.docs, &mbr, &t0, &span);

  const Result<std::string> dir = MakeTempDir("stix_fuzz_crash");
  if (!dir.ok()) {
    std::fprintf(stderr, "FATAL: temp dir: %s (seed=%" PRIu64 ")\n",
                 dir.status().ToString().c_str(), seed);
    ++ctx.divergences;
    return false;
  }

  // Sampled deployment + crash site. Group commit (sync_every > 1) is fair
  // game: the simulated crash flushes the acknowledged tail first, exactly
  // like a process kill that lands after a successful fdatasync window.
  const char* const kCrashPoints[] = {"walBeforeCommit", "walTornTail",
                                      "walAfterCommitBeforeAck",
                                      "checkpointMidWrite"};
  const char* const crash_point = kCrashPoints[knob_rng.NextBounded(4)];
  const bool bucketed = config.layout == "bucket" ||
                        (config.layout == "both" && knob_rng.NextBool(0.5));

  StStoreOptions options;
  options.approach.kind = kApproaches[knob_rng.NextBounded(4)];
  options.approach.hilbert_order =
      4 + static_cast<int>(knob_rng.NextBounded(8));
  options.approach.dataset_mbr = mbr;
  // One curve per crash seed: the named one, or a sampled one for "all"
  // (the extra draw only happens under --curve=all, so default-seed
  // determinism is untouched).
  if (config.curve == "all") {
    const std::vector<geo::CurveKind> kinds = geo::AllCurveKinds();
    options.approach.curve_kind =
        kinds[knob_rng.NextBounded(static_cast<uint64_t>(kinds.size()))];
  } else {
    (void)geo::CurveKindFromName(config.curve.c_str(),
                                 &options.approach.curve_kind);
  }
  if (options.approach.curve_kind == geo::CurveKind::kEGeoHash) {
    options.approach.curve_fit_sample = FitSampleFor(docs);
  }
  options.cluster.num_shards = 2 + static_cast<int>(knob_rng.NextBounded(2));
  options.cluster.chunk_max_bytes = 8192 + knob_rng.NextBounded(24 * 1024);
  options.cluster.balance_every_inserts =
      64 + static_cast<int>(knob_rng.NextBounded(256));
  options.cluster.seed = seed;
  options.cluster.durability.data_dir = *dir;
  options.cluster.durability.wal.sync_every_commits =
      knob_rng.NextBool(0.3) ? 4 : 1;
  options.cluster.durability.checkpoint_wal_bytes =
      16 * 1024 + knob_rng.NextBounded(64 * 1024);
  if (bucketed) {
    storage::BucketLayout layout;
    const int64_t windows_ms[] = {15 * 60000LL, 3600000LL, 24 * 3600000LL};
    layout.window_ms = windows_ms[knob_rng.NextBounded(3)];
    layout.max_points = 8 + static_cast<uint32_t>(knob_rng.NextBounded(56));
    options.bucket = layout;
  }

  // Crash somewhere in the last three quarters of the load, with one clean
  // checkpoint at a random point before it (so recovery exercises both the
  // checkpoint image and the WAL tail behind it).
  const size_t quarter = docs.size() / 4;
  const size_t crash_at =
      quarter +
      knob_rng.NextBounded(std::max<size_t>(1, docs.size() - quarter));
  const size_t checkpoint_at =
      knob_rng.NextBounded(std::max<size_t>(1, crash_at));

  const FuzzQuery full{mbr, t0, t0 + span};
  const bool ok = [&]() -> bool {
    std::set<int32_t> acked;
    std::set<int32_t> uncertain;
    {
      StStore store(options);
      if (!store.Setup().ok()) {
        std::fprintf(stderr,
                     "FATAL: crash store setup failed (seed=%" PRIu64 ")\n",
                     seed);
        ++ctx.divergences;
        return false;
      }
      FailPoint* fp = FailPointRegistry::Instance().Find(crash_point);
      if (fp == nullptr) {
        std::fprintf(stderr, "FATAL: fail point %s not registered\n",
                     crash_point);
        ++ctx.divergences;
        return false;
      }
      bool died = false;
      for (size_t i = 0; i < docs.size() && !died; ++i) {
        if (i == checkpoint_at && !store.Checkpoint().ok()) {
          std::fprintf(stderr,
                       "FATAL: clean checkpoint failed (seed=%" PRIu64 ")\n",
                       seed);
          ++ctx.divergences;
          return false;
        }
        if (i == crash_at) {
          FailPoint::Config fpc;
          fpc.error_code = StatusCode::kInternal;
          fpc.error_message = std::string("injected crash at ") + crash_point;
          fp->Enable(fpc);
          if (std::strcmp(crash_point, "checkpointMidWrite") == 0) {
            // The checkpoint writer dies mid-image; every insert so far was
            // acknowledged and must survive via the previous checkpoint
            // plus the WAL tail, never via the torn image.
            if (store.Checkpoint().ok()) {
              ctx.Report("crash", "checkpoint-survived-fault", full, 0, 1);
              return false;
            }
            died = true;
            break;
          }
        }
        const Status s = store.Insert(MakeDoc(docs[i]));
        if (s.ok()) {
          acked.insert(docs[i].fid);
        } else if (i < crash_at) {
          std::fprintf(stderr,
                       "FATAL: insert failed before the armed crash point: "
                       "%s (seed=%" PRIu64 ")\n",
                       s.ToString().c_str(), seed);
          ++ctx.divergences;
          return false;
        } else {
          // Lost (no commit marker) or durable-but-unacknowledged (marker
          // on disk, ack suppressed) — both are legal crash outcomes.
          uncertain.insert(docs[i].fid);
          died = true;
        }
      }
      FailPointRegistry::Instance().DisableAll();
      if (!died) {
        ctx.Report("crash", "crash-point-never-fired", full, 1, 0);
        return false;
      }
    }  // dirty shutdown: destroyed with the fault's state on disk

    // First recovery: the durability contract over the full window.
    std::vector<int32_t> recovered;
    {
      const Result<std::unique_ptr<StStore>> r = StStore::Recover(options);
      if (!r.ok()) {
        std::fprintf(stderr, "recover failed: %s\n",
                     r.status().ToString().c_str());
        ctx.Report("crash", "recover-status", full, 0, 1);
        return false;
      }
      recovered = SortedFids(
          (*r)->Query(full.rect, full.t_begin_ms, full.t_end_ms)
              .cluster.docs);
    }
    if (HasDuplicates(recovered)) {
      ctx.Report("crash", "recovered-duplicates", full, acked.size(),
                 recovered.size());
      return false;
    }
    bool contract_ok = std::includes(recovered.begin(), recovered.end(),
                                     acked.begin(), acked.end());
    for (const int32_t fid : recovered) {
      if (acked.count(fid) == 0 && uncertain.count(fid) == 0) {
        contract_ok = false;  // phantom: a fid that was never written
      }
    }
    if (!contract_ok) {
      ctx.Report("crash", "durability-contract", full, acked.size(),
                 recovered.size());
      return false;
    }

    // Second recovery: replay must be idempotent — bit-for-bit the same
    // logical contents, then the store must keep working (new writes, a
    // balancer pass, zone migrations) with exact oracle agreement.
    const Result<std::unique_ptr<StStore>> r = StStore::Recover(options);
    if (!r.ok()) {
      ctx.Report("crash", "recover-twice-status", full, 0, 1);
      return false;
    }
    StStore& store = **r;
    const std::vector<int32_t> again = SortedFids(
        store.Query(full.rect, full.t_begin_ms, full.t_end_ms).cluster.docs);
    if (again != recovered) {
      ctx.Report("crash", "recover-idempotence", full, recovered.size(),
                 again.size());
      return false;
    }

    std::vector<FuzzDoc> truth;
    truth.reserve(recovered.size() + 16);
    for (const int32_t fid : recovered) {
      truth.push_back(docs[static_cast<size_t>(fid)]);
    }
    for (int i = 0; i < 16; ++i) {
      FuzzDoc d;
      d.lon = query_rng.NextDouble(mbr.lo.lon, mbr.hi.lon);
      d.lat = query_rng.NextDouble(mbr.lo.lat, mbr.hi.lat);
      d.t_ms = t0 + static_cast<int64_t>(
                        query_rng.NextBounded(static_cast<uint64_t>(span) + 1));
      d.fid = static_cast<int32_t>(docs.size()) + i;
      truth.push_back(d);
      if (!store.Insert(MakeDoc(d)).ok()) {
        ctx.Report("crash", "post-recovery-insert", full, 1, 0);
        return false;
      }
    }
    if (!store.FinishLoad().ok() ||
        (knob_rng.NextBool(0.5) && !store.ConfigureZones().ok())) {
      ctx.Report("crash", "post-recovery-balance", full, 1, 0);
      return false;
    }
    const int num_queries = std::max(3, config.queries);
    for (int i = 0; i <= num_queries; ++i) {
      // First round re-checks the full window (now including the extras);
      // the rest are random sub-rectangles against the brute-force oracle
      // restricted to what actually survived.
      const FuzzQuery q =
          i == 0 ? full : GenerateQuery(&query_rng, mbr, t0, span);
      const std::vector<int32_t> expect = OracleFids(truth, q);
      const std::vector<int32_t> got = SortedFids(
          store.Query(q.rect, q.t_begin_ms, q.t_end_ms).cluster.docs);
      if (got != expect) {
        ctx.Report("crash", "post-recovery-oracle", q, expect.size(),
                   got.size());
        return false;
      }
    }
    return true;
  }();
  FailPointRegistry::Instance().DisableAll();

  if (ok && ctx.divergences == 0) {
    (void)RemoveAll(*dir);
    if (config.verbose) {
      std::printf("seed %" PRIu64 ": crash ok (%d docs, point %s, layout %s, "
                  "%d shards, sync_every %d)\n",
                  seed, config.docs, crash_point, bucketed ? "bucket" : "row",
                  options.cluster.num_shards,
                  options.cluster.durability.wal.sync_every_commits);
    }
    return true;
  }
  std::fprintf(stderr,
               "ARTIFACT: crash-seed data dir kept at %s (seed=%" PRIu64
               " point=%s layout=%s)\n",
               dir->c_str(), seed, crash_point, bucketed ? "bucket" : "row");
  return false;
}

bool RunSeed(uint64_t seed, const FuzzConfig& config,
             std::string* server_status_out) {
  if (config.crash) return RunCrashSeed(seed, config);
  SeedContext ctx{seed, &config};
  Rng rng(seed);
  Rng data_rng = rng.Fork();
  Rng knob_rng = rng.Fork();
  Rng query_rng = rng.Fork();

  geo::Rect mbr;
  int64_t t0 = 0, span = 0;
  const std::vector<FuzzDoc> docs =
      GenerateDocs(&data_rng, config.docs, &mbr, &t0, &span);

  // Random deployment knobs, shared by all four stores so only the approach
  // differs. Small chunks force splits; a short balancer cadence forces
  // migrations during the load.
  const int num_shards = 2 + static_cast<int>(knob_rng.NextBounded(4));
  const uint64_t chunk_max_bytes = 4096 + knob_rng.NextBounded(24 * 1024);
  const int balance_every = 64 + static_cast<int>(knob_rng.NextBounded(256));
  const int hilbert_order = 4 + static_cast<int>(knob_rng.NextBounded(8));
  const bool use_zones = knob_rng.NextBool(0.5);
  const bool mid_run_zones = use_zones && knob_rng.NextBool(0.5);

  // Bucket-layout knobs are drawn unconditionally so a --layout=bucket
  // repro of a --layout=both failure replays the identical workload. Small
  // windows / seal thresholds force many buckets per store.
  storage::BucketLayout bucket_layout;
  const int64_t windows_ms[] = {15 * 60000LL, 3600000LL, 6 * 3600000LL,
                                24 * 3600000LL};
  bucket_layout.window_ms = windows_ms[knob_rng.NextBounded(4)];
  bucket_layout.max_points =
      8 + static_cast<uint32_t>(knob_rng.NextBounded(120));
  bucket_layout.hilbert_shift = 4 + static_cast<int>(knob_rng.NextBounded(10));

  const bool want_row = config.layout != "bucket";
  const bool want_bucket = config.layout != "row";
  std::vector<query::PlanSelectionMode> modes;
  if (config.planner != "cost") modes.push_back(query::PlanSelectionMode::kRace);
  if (config.planner != "race") modes.push_back(query::PlanSelectionMode::kCost);

  std::vector<std::unique_ptr<StStore>> owned_stores;
  std::vector<StStore*> stores;  // row stores first, then bucket stores
  std::vector<StStore*> row_stores;
  std::vector<StStore*> bucket_stores;
  std::vector<StStore*> race_stores;
  std::vector<StStore*> cost_stores;
  const std::vector<geo::CurveKind> curve_kinds = CurveKindsFor(config.curve);
  std::vector<geo::Point> fit_sample;
  for (const geo::CurveKind kind : curve_kinds) {
    if (kind == geo::CurveKind::kEGeoHash) fit_sample = FitSampleFor(docs);
  }
  for (const bool bucketed : {false, true}) {
    if (bucketed ? !want_bucket : !want_row) continue;
    for (const query::PlanSelectionMode mode : modes) {
      for (const ApproachKind kind : kApproaches) {
        // Baselines carry no curve: one instance regardless of --curve.
        const bool curve_backed = kind == ApproachKind::kHil ||
                                  kind == ApproachKind::kHilStar;
        const size_t num_curves = curve_backed ? curve_kinds.size() : 1;
        for (size_t c = 0; c < num_curves; ++c) {
          StStoreOptions options;
          options.approach.kind = kind;
          options.approach.hilbert_order = hilbert_order;
          options.approach.dataset_mbr = mbr;
          if (curve_backed) {
            options.approach.curve_kind = curve_kinds[c];
            if (curve_kinds[c] == geo::CurveKind::kEGeoHash) {
              options.approach.curve_fit_sample = fit_sample;
            }
          }
          options.cluster.num_shards = num_shards;
          options.cluster.chunk_max_bytes = chunk_max_bytes;
          options.cluster.balance_every_inserts = balance_every;
          options.cluster.seed = seed;
          options.cluster.exec.plan_selection = mode;
          if (bucketed) options.bucket = bucket_layout;
          if (config.profile) {
            options.cluster.profiler.enabled = true;
            options.cluster.profiler.slow_millis = 0.0;  // record every op
            options.cluster.profiler.capacity = 64;
          }
          owned_stores.push_back(std::make_unique<StStore>(options));
          stores.push_back(owned_stores.back().get());
          (bucketed ? bucket_stores : row_stores).push_back(stores.back());
          (mode == query::PlanSelectionMode::kRace ? race_stores
                                                   : cost_stores)
              .push_back(stores.back());
          if (!stores.back()->Setup().ok()) {
            std::fprintf(stderr, "FATAL: store setup failed (seed=%" PRIu64
                                 ")\n",
                         seed);
            return false;
          }
        }
      }
    }
  }
  for (const FuzzDoc& d : docs) {
    for (const auto& store : stores) {
      const Status s = store->Insert(MakeDoc(d));
      if (!s.ok()) {
        std::fprintf(stderr, "FATAL: insert failed: %s (seed=%" PRIu64 ")\n",
                     s.ToString().c_str(), seed);
        return false;
      }
    }
  }
  for (const auto& store : stores) {
    if (!store->FinishLoad().ok()) return false;
  }
  if (use_zones && !mid_run_zones) {
    for (const auto& store : stores) {
      if (!store->ConfigureZones().ok()) return false;
    }
  }

  FuzzQuery last_query{};
  for (int i = 0; i < config.queries; ++i) {
    if (mid_run_zones && i == config.queries / 2) {
      // Mid-run migrations: re-zone every store between query rounds (no
      // cursor is open across this point — cursors borrow the cluster).
      for (const auto& store : stores) {
        if (!store->ConfigureZones().ok()) return false;
      }
    }
    const FuzzQuery q = GenerateQuery(&query_rng, mbr, t0, span);
    last_query = q;
    if (!CheckQuery(stores, docs, q, &query_rng, &ctx)) return false;
    if (!row_stores.empty() && !bucket_stores.empty() &&
        !CheckPairParity(row_stores, bucket_stores, "layout", q, &ctx)) {
      return false;
    }
    if (!race_stores.empty() && !cost_stores.empty() &&
        !CheckPairParity(race_stores, cost_stores, "planner", q, &ctx)) {
      return false;
    }
  }

  if (config.failpoints &&
      !CheckFailPoints(stores, docs, last_query, &query_rng, &ctx)) {
    return false;
  }
  if (config.failpoints && want_bucket &&
      !CheckBucketFlushFailPoint(mbr, t0, span, bucket_layout, &query_rng,
                                 &ctx)) {
    return false;
  }

  if (config.reshard) {
    Rng reshard_rng = rng.Fork();
    if (!CheckReshardPhase(stores, row_stores, docs, mbr, t0, span, config,
                           &reshard_rng, &ctx)) {
      return false;
    }
  } else if (config.threads > 0) {
    Rng concurrent_rng = rng.Fork();
    if (!CheckConcurrent(stores, docs, mbr, t0, span, config, &concurrent_rng,
                         &ctx)) {
      return false;
    }
  }

  if (server_status_out != nullptr && !stores.empty()) {
    *server_status_out = stores.back()->cluster().ServerStatus();
  }

  if (config.verbose) {
    std::printf("seed %" PRIu64 ": ok (%d docs, %d queries, %d shards, "
                "order %d, layout %s, planner %s, curve %s%s)\n",
                seed, config.docs, config.queries, num_shards, hilbert_order,
                config.layout.c_str(), config.planner.c_str(),
                config.curve.c_str(),
                use_zones ? (mid_run_zones ? ", mid-run zones" : ", zones")
                          : "");
  }
  return ctx.divergences == 0;
}

int FuzzMain(int argc, char** argv) {
  FuzzConfig config;
  bool explicit_seed = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--seed=", 0) == 0) {
      config.seed_base = std::strtoull(value("--seed="), nullptr, 10);
      config.num_seeds = 1;
      explicit_seed = true;
    } else if (arg.rfind("--seeds=", 0) == 0) {
      config.num_seeds = std::atoi(value("--seeds="));
    } else if (arg.rfind("--seed-base=", 0) == 0) {
      config.seed_base = std::strtoull(value("--seed-base="), nullptr, 10);
    } else if (arg.rfind("--docs=", 0) == 0) {
      config.docs = std::atoi(value("--docs="));
    } else if (arg.rfind("--queries=", 0) == 0) {
      config.queries = std::atoi(value("--queries="));
    } else if (arg == "--no-failpoints") {
      config.failpoints = false;
    } else if (arg == "--verbose" || arg == "-v") {
      config.verbose = true;
    } else if (arg == "--profile") {
      config.profile = true;
    } else if (arg == "--server-status") {
      config.server_status = true;
    } else if (arg == "--check-counters") {
      config.check_counters = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      config.threads = std::atoi(value("--threads="));
    } else if (arg == "--crash") {
      config.crash = true;
    } else if (arg == "--reshard") {
      config.reshard = true;
    } else if (arg.rfind("--layout=", 0) == 0) {
      config.layout = value("--layout=");
      if (config.layout != "row" && config.layout != "bucket" &&
          config.layout != "both") {
        std::fprintf(stderr, "--layout must be row, bucket or both\n");
        return 2;
      }
    } else if (arg.rfind("--planner=", 0) == 0) {
      config.planner = value("--planner=");
      if (config.planner != "race" && config.planner != "cost" &&
          config.planner != "both") {
        std::fprintf(stderr, "--planner must be race, cost or both\n");
        return 2;
      }
    } else if (arg.rfind("--curve=", 0) == 0) {
      config.curve = value("--curve=");
      geo::CurveKind parsed;
      if (config.curve != "all" &&
          !geo::CurveKindFromName(config.curve.c_str(), &parsed)) {
        std::fprintf(stderr,
                     "--curve must be hilbert, zorder, onion, egeohash or "
                     "all\n");
        return 2;
      }
    } else if (arg == "--list-failpoints") {
      for (const std::string& name : FailPointRegistry::Instance().Names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else {
      std::fprintf(stderr,
                   "usage: stix_fuzz [--seed=N | --seeds=N --seed-base=N] "
                   "[--docs=N] [--queries=N] [--threads=N] [--crash] "
                   "[--reshard] "
                   "[--layout=row|bucket|both] [--planner=race|cost|both] "
                   "[--curve=hilbert|zorder|onion|egeohash|all] "
                   "[--no-failpoints] [--verbose] [--profile] "
                   "[--server-status] [--check-counters] "
                   "[--list-failpoints]\n");
      return 2;
    }
  }
  if (explicit_seed && config.num_seeds != 1) {
    std::fprintf(stderr, "--seed and --seeds are mutually exclusive\n");
    return 2;
  }

  int failures = 0;
  std::string server_status;
  for (int i = 0; i < config.num_seeds; ++i) {
    const uint64_t seed = config.seed_base + static_cast<uint64_t>(i);
    if (!RunSeed(seed, config,
                 config.server_status ? &server_status : nullptr)) {
      ++failures;
    }
  }

  // Crash mode runs a single durable store per seed, so the dead-counter
  // guard's query-stack expectations do not apply.
  if (config.check_counters && !config.crash) {
    // Counters that any non-trivial fuzz run must have moved; a zero means
    // the instrumentation point silently died.
    std::vector<const char*> required = {
        "btree.node_reads",  "btree.splits",       "plan_cache.hits",
        "plan_cache.misses", "cover_cache.hits",   "cover_cache.misses",
        "cluster.batches",   "cluster.bytes_materialized"};
    if (config.failpoints) required.push_back("executor.replans");
    if (config.layout != "row") {
      required.push_back("bucket.buckets_flushed");
      required.push_back("bucket.points_unpacked");
    }
    required.push_back("planner.plans_total");
    if (config.planner != "race") {
      // Cost mode must have both estimated outright and fallen back to a
      // race at least once across a non-trivial run.
      required.push_back("planner.plans_estimated");
    }
    if (config.planner != "cost") required.push_back("planner.plans_raced");
    for (const char* name : required) {
      if (MetricsRegistry::Instance().GetCounter(name).value() == 0) {
        std::fprintf(stderr, "DEAD COUNTER: %s never incremented\n", name);
        ++failures;
      }
    }
  }

  if (config.server_status) {
    std::printf("%s\n", server_status.c_str());
  }

  std::printf("stix_fuzz: %d seed%s, %d divergence%s (docs=%d queries=%d "
              "layout=%s planner=%s curve=%s failpoints=%s threads=%d)\n",
              config.num_seeds, config.num_seeds == 1 ? "" : "s", failures,
              failures == 1 ? "" : "s", config.docs, config.queries,
              config.layout.c_str(), config.planner.c_str(),
              config.curve.c_str(),
              config.failpoints ? "on" : "off", config.threads);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stix

int main(int argc, char** argv) { return stix::FuzzMain(argc, argv); }
