// Reproduces the paper's scalability study (Section 5.4): query Q2^b on
// growing instances R1..R4 of the real-like data set (same spatio-temporal
// bounding box, more vehicles), for bslST / bslTS / hil.
//   Table 4: size and #documents per scale factor
//   Table 5: number of results of Q2^b per scale factor
//   Figure 13: (a) max docs, (b) max keys, (c) nodes, (d) avg time

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace stix::bench {
namespace {

constexpr st::ApproachKind kApproaches[] = {st::ApproachKind::kBslST,
                                            st::ApproachKind::kBslTS,
                                            st::ApproachKind::kHil};

int Main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  // Base scale for R1; R2..R4 multiply it. Kept below the default R size so
  // the whole sweep stays fast.
  const uint64_t base_docs = config.r_docs >= 4 ? config.r_docs / 2 : 125000;

  printf("== bench_scalability ==\n");
  printf("reproduces: Tables 4-5, Figure 13 (paper Section 5.4)\n");
  printf("R1=%" PRIu64 " docs, scale factors x1..x4 "
         "(paper: R1=15.2M .. R4=63.9M)\n", base_docs);

  const DatasetInfo info = InfoFor(Dataset::kR, config);
  const auto big_queries =
      workload::MakeQuerySet(true, info.t_begin_ms, info.t_end_ms);
  const workload::StQuerySpec q2b = big_queries[1];  // 1-day window

  struct ScaleRow {
    uint64_t docs = 0;
    uint64_t logical_bytes = 0;
    uint64_t compressed_bytes = 0;
    uint64_t n_results = 0;
    QueryMeasurement per_approach[3];
  };
  std::vector<ScaleRow> rows(4);
  std::vector<PerfSummary> summaries;

  for (int scale = 1; scale <= 4; ++scale) {
    ScaleRow& row = rows[scale - 1];
    for (size_t a = 0; a < 3; ++a) {
      BenchConfig scaled = config;
      scaled.r_docs = base_docs * static_cast<uint64_t>(scale);
      const auto store = BuildLoadedStore(kApproaches[a], Dataset::kR, scaled);

      // Perf-trajectory row (the cold scan runs first: nothing has touched
      // the fresh store's plan or cover caches yet).
      const storage::CollectionStats stats =
          store->cluster().ComputeDataStats();
      PerfSummary perf;
      perf.label = std::string(st::ApproachName(kApproaches[a])) + "/R" +
                   std::to_string(scale) + (config.bucket ? "/bucket" : "/row");
      perf.dataset_docs = scaled.r_docs;
      perf.record_store_bytes = stats.compressed_bytes;
      for (const auto& [name, bytes] : store->cluster().ComputeIndexSizes()) {
        perf.index_bytes += bytes;
      }
      perf.compression_ratio =
          stats.compressed_bytes == 0
              ? 0.0
              : static_cast<double>(stats.logical_bytes) /
                    static_cast<double>(stats.compressed_bytes);
      MeasureColdScan(*store, info, &perf);

      row.per_approach[a] = MeasureQuery(*store, q2b, scaled);
      perf.p50_millis = row.per_approach[a].avg_millis;
      perf.p95_millis = row.per_approach[a].avg_millis;
      summaries.push_back(std::move(perf));

      if (a == 0) {
        row.docs = stats.num_documents;
        row.logical_bytes = stats.logical_bytes;
        row.compressed_bytes = stats.compressed_bytes;
        row.n_results = row.per_approach[a].n_results;
      }
    }
  }

  printf("\nTable 4: instances R1-R4 of the real-like data set\n");
  printf("%-22s %12s %12s %12s %12s\n", "", "R1", "R2", "R3", "R4");
  printf("%-22s", "#documents");
  for (const ScaleRow& r : rows) {
    printf(" %12s", WithThousands(static_cast<int64_t>(r.docs)).c_str());
  }
  printf("\n%-22s", "size (BSON)");
  for (const ScaleRow& r : rows) {
    printf(" %12s", HumanBytes(r.logical_bytes).c_str());
  }
  printf("\n%-22s", "size (compressed)");
  for (const ScaleRow& r : rows) {
    printf(" %12s", HumanBytes(r.compressed_bytes).c_str());
  }

  printf("\n\nTable 5: number of results of Q2^b per scale factor\n");
  printf("%-22s", "Q2^b");
  for (const ScaleRow& r : rows) {
    printf(" %12s", WithThousands(static_cast<int64_t>(r.n_results)).c_str());
  }
  printf("\n");

  const char* metric_names[4] = {
      "(a) max documents examined on any node",
      "(b) max keys examined on any node", "(c) number of nodes",
      "(d) avg execution time"};
  std::vector<std::string> scales = {"R1", "R2", "R3", "R4"};
  for (int metric = 0; metric < 4; ++metric) {
    std::vector<std::string> approach_names;
    std::vector<std::vector<std::string>> values;
    for (size_t a = 0; a < 3; ++a) {
      approach_names.push_back(st::ApproachName(kApproaches[a]));
      std::vector<std::string> col;
      for (const ScaleRow& r : rows) {
        const QueryMeasurement& m = r.per_approach[a];
        switch (metric) {
          case 0:
            col.push_back(WithThousands(static_cast<int64_t>(m.max_docs)));
            break;
          case 1:
            col.push_back(WithThousands(static_cast<int64_t>(m.max_keys)));
            break;
          case 2:
            col.push_back(std::to_string(m.nodes));
            break;
          default:
            col.push_back(Fmt(m.avg_millis) + " ms");
        }
      }
      values.push_back(std::move(col));
    }
    PrintPanel("Figure 13 (Q2^b on R1-R4, default sharding)",
               metric_names[metric], approach_names, values, scales);
  }
  if (!config.json_path.empty() &&
      !WritePerfJson(config.json_path, "bench_scalability", config,
                     summaries)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace stix::bench

int main(int argc, char** argv) { return stix::bench::Main(argc, argv); }
