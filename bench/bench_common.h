#ifndef STIX_BENCH_BENCH_COMMON_H_
#define STIX_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "st/st_store.h"
#include "workload/query_workload.h"
#include "workload/trajectory_generator.h"
#include "workload/uniform_generator.h"

namespace stix::bench {

/// Which of the paper's two data sets a run uses.
enum class Dataset { kR, kS };

const char* DatasetName(Dataset d);

/// Scale and methodology knobs shared by the table/figure benches. The
/// paper runs 15.2M-63.9M documents on 12 shard VMs and measures 30 warm
/// runs, averaging the last 10; the defaults here scale the data down ~60x
/// (documented in EXPERIMENTS.md) and the repetitions accordingly.
struct BenchConfig {
  uint64_t r_docs = 250000;
  uint64_t s_docs = 500000;  ///< Paper: |S| = 2 |R|.
  int num_shards = 12;
  uint64_t chunk_max_bytes = 512 * 1024;
  int warm_runs = 2;   ///< Untimed warm-up executions per query.
  int timed_runs = 3;  ///< Timed executions averaged per query.
  uint64_t seed = 42;
  bool verbose = false;
  /// Fan queries out on the cluster's shared executor pool (real mongos
  /// behaviour). Default on; --serial falls back to one-shard-at-a-time.
  /// Feeds ClusterOptions::parallel_fanout — the one knob the library
  /// consumes.
  bool parallel_fanout = true;
  /// Per-shard getMore batch size for measured queries; 0 (default) drains
  /// each shard in one round, the classic gather the paper measures.
  /// Non-zero exercises the streaming cursor path (EXPERIMENTS.md).
  size_t batch_size = 0;
  /// When non-empty, per-query measurements are also written as JSON here
  /// (see WriteBenchJson) so successive PRs can track the perf trajectory.
  std::string json_path;
  /// Dump Cluster::ServerStatus() (metrics registry + profiler) to stdout
  /// after the bench finishes — the observability counterpart of --json.
  bool server_status = false;
  /// Build every store with the bucketed collection layout (--bucket): one
  /// compressed bucket document per (vehicle, window) instead of one
  /// document per point. Queries answer identically; sizes and scan costs
  /// move — which is what bench_bucket measures.
  bool bucket = false;
  /// Plan-selection mode for every store (--planner=race|cost): "race"
  /// always trial-races candidates, "cost" (the library default) picks from
  /// histogram estimates when decisive. bench_planner builds one store per
  /// mode and diffs them.
  std::string planner = "cost";

  /// Parses --r_docs=, --s_docs=, --shards=, --warm=, --timed=, --seed=,
  /// --batch=, --json=, --planner=, --serial, --bucket, --verbose,
  /// --server-status from argv; unknown flags abort with a usage message.
  static BenchConfig FromArgs(int argc, char** argv);
};

/// Geographic extent and time span of one data set (drives hil*'s curve
/// domain and the query windows).
struct DatasetInfo {
  geo::Rect mbr;
  int64_t t_begin_ms;
  int64_t t_end_ms;
};

DatasetInfo InfoFor(Dataset dataset, const BenchConfig& config);

/// Builds, sets up and bulk-loads a store for one (approach, dataset) pair.
/// Prints progress to stderr when config.verbose.
std::unique_ptr<st::StStore> BuildLoadedStore(st::ApproachKind kind,
                                              Dataset dataset,
                                              const BenchConfig& config);

/// One measured query: the paper's four metrics plus covering stats.
struct QueryMeasurement {
  std::string query_name;
  uint64_t n_results = 0;
  int nodes = 0;
  uint64_t max_keys = 0;
  uint64_t max_docs = 0;
  double avg_millis = 0.0;        ///< Modeled execution time, averaged.
  double avg_cover_millis = 0.0;  ///< Curve covering time (Table 8).
  size_t cover_ranges = 0;
  size_t cover_singletons = 0;
  /// Winning index name per contacted shard (Table 7), from the last run.
  std::vector<std::string> winning_indexes;
  /// Timed runs whose translation came from the covering cache (warm-path
  /// indicator: equals timed_runs once the shape has been seen).
  int cover_cache_hits = 0;
  /// Bytes copied out of shard record stores at the merge (last run) — what
  /// the zero-copy pipeline actually materializes.
  uint64_t bytes_materialized = 0;
  /// Time from cursor open to the first merged batch (last run) — what
  /// streaming buys over run-to-completion; averaged over timed runs.
  double first_result_millis = 0.0;
};

/// One row of the JSON perf log: where the measurement came from plus the
/// measurement itself.
struct BenchJsonEntry {
  std::string approach;
  std::string dataset;
  std::string suite;  ///< e.g. "small" / "big".
  QueryMeasurement m;
};

/// Writes entries as a JSON document (schema: {bench, config, queries:[...]})
/// to `path`. Returns false (with a message on stderr) on I/O failure.
bool WriteBenchJson(const std::string& path, const std::string& bench_name,
                    const BenchConfig& config,
                    const std::vector<BenchJsonEntry>& entries);

/// One row of the perf-trajectory log (BENCH_*.json "summaries"): dataset
/// scale, cold-scan throughput, resident footprint split into record store
/// vs indexes, compression ratio, and latency quantiles over the measured
/// query set. Successive PRs diff these files to track the perf trajectory.
struct PerfSummary {
  std::string label;                  ///< e.g. "hil/R/bucket".
  uint64_t dataset_docs = 0;          ///< Points loaded (not stored docs).
  double docs_per_sec_scanned = 0.0;  ///< Cold full scan: points/second.
  uint64_t record_store_bytes = 0;    ///< Resident (block-compressed) data.
  uint64_t index_bytes = 0;           ///< Resident index bytes, all indexes.
  double compression_ratio = 0.0;     ///< Row logical bytes / resident data.
  double cold_scan_millis = 0.0;      ///< Wall time of the cold full scan.
  uint64_t cold_scan_matches = 0;     ///< Points the scan query selected.
  double p50_millis = 0.0;            ///< Median modeled query latency.
  double p95_millis = 0.0;
  /// Durability rows (bench_storage) only — 0 elsewhere and then omitted
  /// from the JSON, so benches without a durability section keep their
  /// schema. Wall-clock, not modeled time: the WAL tax and recovery speed
  /// are real I/O costs.
  double insert_docs_per_sec = 0.0;  ///< Acked inserts/second during load.
  double recovery_millis = 0.0;      ///< StStore::Recover wall time.
  double recovery_sec_per_gb = 0.0;  ///< Recovery time per GB of disk state.
};

/// Writes rows as {bench, config, summaries: [...]} to `path`.
bool WritePerfJson(const std::string& path, const std::string& bench_name,
                   const BenchConfig& config,
                   const std::vector<PerfSummary>& rows);

/// p-th percentile (0..100) by nearest rank (delegates to
/// stix::PercentileOf): the smallest observed sample with at least p percent
/// of samples at or below it, so latency gates always compare against a value
/// a real request experienced. 0 for empty input.
double Percentile(std::vector<double> values, double p);

/// Measures a genuinely cold full scan: the store's on-disk image (the same
/// 32 KB LZ-compressed BSON blocks CollectionStats accounts, built untimed)
/// is scanned end to end to answer one rect + time-window query — every
/// block decompressed, every stored document parsed, the filter applied.
/// That is the work a document store does when nothing is in cache and no
/// index is usable, and it is where the layouts diverge: the row image
/// parses one BSON document per point, the bucket image parses one per
/// bucket, prunes on bucket metadata, counts covered buckets off the
/// metadata alone and answers the surviving buckets from their ts/lon/lat
/// columns (DecodeBucketTimeLoc — the _id column and payload residuals
/// stay compressed). Fills the scan columns of `row`: wall millis, points/second
/// scanned (total points represented, not documents parsed) and the match
/// count (which must agree across layouts — bench_bucket checks).
void MeasureColdScan(const st::StStore& store, const DatasetInfo& info,
                     PerfSummary* row);

/// Runs a query warm_runs times untimed, then timed_runs times, averaging
/// the modeled execution time (the paper's warm-state methodology).
QueryMeasurement MeasureQuery(const st::StStore& store,
                              const workload::StQuerySpec& spec,
                              const BenchConfig& config);

/// Prints one figure panel: rows = queries, columns = approaches, one of
/// the four metrics. `values` is [approach][query].
void PrintPanel(const std::string& title, const std::string& metric,
                const std::vector<std::string>& approach_names,
                const std::vector<std::vector<std::string>>& values,
                const std::vector<std::string>& query_names);

/// Convenience: formats with fixed decimals.
std::string Fmt(double v, int decimals = 2);

}  // namespace stix::bench

#endif  // STIX_BENCH_BENCH_COMMON_H_
