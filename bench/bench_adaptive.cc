// Ablation of the paper's closing future-work item: adaptive,
// workload-aware partitioning. Compares three zone configurations of the
// hil approach under a spatially skewed query workload (most queries hit
// the hot urban area):
//   1. default chunk placement (no zones),
//   2. $bucketAuto equi-count zones (the paper's Section 4.2.4 recipe),
//   3. equal-load zones derived from the workload (st/adaptive.h).
// Metric: per-node share of the workload's total examined keys — hot-node
// load is what limits throughput when "thousands of queries run at the same
// time" (the paper's Section 5.2 discussion).

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "st/adaptive.h"

namespace stix::bench {
namespace {

struct LoadReport {
  uint64_t max_node_keys = 0;
  uint64_t total_keys = 0;
  double sum_millis = 0;
};

LoadReport RunWorkload(const st::StStore& store,
                       const std::vector<st::WorkloadQuery>& workload,
                       int repetitions) {
  LoadReport report;
  std::vector<uint64_t> per_node(store.cluster().num_shards(), 0);
  for (int rep = 0; rep < repetitions; ++rep) {
    for (const st::WorkloadQuery& wq : workload) {
      const st::StQueryResult r =
          store.Query(wq.rect, wq.t_begin_ms, wq.t_end_ms);
      for (const cluster::ShardQueryReport& s : r.cluster.shard_reports) {
        per_node[static_cast<size_t>(s.shard_id)] += s.stats.keys_examined;
      }
      report.sum_millis += r.cluster.modeled_millis;
    }
  }
  for (uint64_t keys : per_node) {
    report.max_node_keys = std::max(report.max_node_keys, keys);
    report.total_keys += keys;
  }
  return report;
}

void Print(const char* label, const LoadReport& r, int num_shards) {
  const double balance =
      r.total_keys == 0
          ? 0.0
          : static_cast<double>(r.max_node_keys) * num_shards /
                static_cast<double>(r.total_keys);
  printf("  %-18s %14s %14s %8.2fx %10.2f ms\n", label,
         WithThousands(static_cast<int64_t>(r.max_node_keys)).c_str(),
         WithThousands(static_cast<int64_t>(r.total_keys)).c_str(), balance,
         r.sum_millis);
}

int Main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  printf("== bench_adaptive ==\n");
  printf("ablation: workload-aware zones (paper Section 6 future work)\n");
  printf("hil approach, R-like data, workload: 10x weight on the hot "
         "downtown rectangle + background queries\n\n");

  const DatasetInfo info = InfoFor(Dataset::kR, config);

  // The skewed workload: downtown Athens hammered, two background regions.
  std::vector<st::WorkloadQuery> workload;
  const int64_t day = 24LL * 3600 * 1000;
  for (int i = 0; i < 10; ++i) {
    workload.push_back(st::WorkloadQuery{
        geo::Rect{{23.70, 37.94}, {23.80, 38.02}},
        info.t_begin_ms + (10 + 3 * i) * day,
        info.t_begin_ms + (10 + 3 * i + 2) * day, 1.0});
  }
  workload.push_back(st::WorkloadQuery{
      geo::Rect{{22.80, 40.50}, {23.10, 40.75}},  // Thessaloniki
      info.t_begin_ms + 50 * day, info.t_begin_ms + 60 * day, 1.0});
  workload.push_back(st::WorkloadQuery{
      geo::Rect{{21.60, 38.10}, {21.90, 38.40}},  // Patras
      info.t_begin_ms + 70 * day, info.t_begin_ms + 80 * day, 1.0});

  printf("  %-18s %14s %14s %9s %13s\n", "configuration", "max node keys",
         "total keys", "imbal.", "sum latency");

  {
    const auto store =
        BuildLoadedStore(st::ApproachKind::kHil, Dataset::kR, config);
    Print("default (no zones)",
          RunWorkload(*store, workload, config.timed_runs),
          config.num_shards);
  }
  {
    const auto store =
        BuildLoadedStore(st::ApproachKind::kHil, Dataset::kR, config);
    if (!store->ConfigureZones().ok()) return 1;
    Print("$bucketAuto zones",
          RunWorkload(*store, workload, config.timed_runs),
          config.num_shards);
  }
  {
    const auto store =
        BuildLoadedStore(st::ApproachKind::kHil, Dataset::kR, config);
    const Status s = st::ApplyWorkloadAwareZones(store.get(), workload);
    if (!s.ok()) {
      fprintf(stderr, "adaptive zones failed: %s\n", s.ToString().c_str());
      return 1;
    }
    Print("workload-aware",
          RunWorkload(*store, workload, config.timed_runs),
          config.num_shards);
  }

  printf("\nimbal. = max-node share relative to a perfect spread (1.00x = "
         "ideal); lower is better.\n");
  return 0;
}

}  // namespace
}  // namespace stix::bench

int main(int argc, char** argv) { return stix::bench::Main(argc, argv); }
