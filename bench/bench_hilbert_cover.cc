// Reproduces the paper's Table 8: average time of the Hilbert covering
// algorithm (finding which 1D values to search in the index) for the small
// and big query rectangles, under hil (globe-spanning curve) and hil*
// (dataset-MBR curve), on the R and S extents. The paper reports 0.05-7.6
// ms; hil* is slower because the same 13-bit budget over a smaller surface
// means far more cells intersect the same rectangle.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "geo/covering.h"
#include "geo/hilbert.h"

namespace stix::bench {
namespace {

double AverageCoverMillis(const geo::HilbertCurve& curve,
                          const geo::Rect& rect, int repetitions) {
  // Warm up once.
  (void)geo::CoverRect(curve, rect);
  Stopwatch timer;
  uint64_t sink = 0;
  for (int i = 0; i < repetitions; ++i) {
    sink += geo::CoverRect(curve, rect).ranges.size();
  }
  const double avg = timer.ElapsedMillis() / repetitions;
  if (sink == 0) fprintf(stderr, "(empty coverings)\n");
  return avg;
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  printf("== bench_hilbert_cover ==\n");
  printf("reproduces: Table 8 (avg time of the Hilbert covering algorithm, "
         "ms)\n\n");

  const int reps = 200;
  printf("%-4s %-6s %10s %10s   %8s %8s\n", "set", "method", "Q^s (ms)",
         "Q^b (ms)", "ranges_s", "ranges_b");
  for (const Dataset dataset : {Dataset::kR, Dataset::kS}) {
    const DatasetInfo info = InfoFor(dataset, config);
    const geo::Rect small = workload::SmallQueryRect();
    const geo::Rect big = workload::BigQueryRect();

    const geo::HilbertCurve hil(13, geo::GlobeRect());
    const geo::HilbertCurve hil_star(13, info.mbr);
    for (const auto& [name, curve] :
         {std::pair<const char*, const geo::HilbertCurve*>{"hil", &hil},
          std::pair<const char*, const geo::HilbertCurve*>{"hil*",
                                                           &hil_star}}) {
      const double small_ms = AverageCoverMillis(*curve, small, reps);
      const double big_ms = AverageCoverMillis(*curve, big, reps);
      const geo::Covering cs = geo::CoverRect(*curve, small);
      const geo::Covering cb = geo::CoverRect(*curve, big);
      printf("%-4s %-6s %10.4f %10.4f   %8zu %8zu\n", DatasetName(dataset),
             name, small_ms, big_ms, cs.ranges.size(), cb.ranges.size());
    }
  }
  printf("\npaper reference (ms): R/hil 0.05|0.2, R/hil* 0.1|1.8, "
         "S/hil 0.05|0.3, S/hil* 0.6|7.6\n");
  return 0;
}

}  // namespace
}  // namespace stix::bench

int main(int argc, char** argv) { return stix::bench::Main(argc, argv); }
