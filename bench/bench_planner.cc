// Planner study: histogram cost selection vs the trial race on the
// default-sharding query workload (the Tables 2-3 suites on both data
// sets, all four approaches). One store per plan-selection mode, identical
// data and queries; the bench reports
//   - warm latency quantiles per mode (cost must not regress past the race
//     by more than the CI gate's 5%),
//   - the fraction of plan events settled without a trial race (cache hits
//     and single-candidate plans count: no losing candidate did work),
//   - the mean absolute relative estimation error of the cost model's
//     keys+docs predictions against the executed counters (MARE),
//   - per-query result counts, which must agree between modes byte for
//     byte (the fuzzer's planner-parity oracle, repeated here at scale).
// --check turns the report into a gate: exit 1 when cost p95 regresses
// more than 5% over race (and by more than 1 ms absolute — at CI's small
// scale both p95s are ~2 ms and the ratio swings ±15% run to run on
// scheduler noise; the absolute floor keeps the gate meaningful while
// the full-scale committed numbers carry the real comparison), fewer
// than 70% of plan events avoid the race, MARE exceeds 0.5, or any
// query disagrees between modes.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/metrics.h"

namespace stix::bench {
namespace {

constexpr st::ApproachKind kApproaches[] = {
    st::ApproachKind::kBslST, st::ApproachKind::kBslTS,
    st::ApproachKind::kHil, st::ApproachKind::kHilStar};

struct PlannerCounters {
  uint64_t plans_total = 0;
  uint64_t plans_estimated = 0;
  uint64_t plans_raced = 0;
  uint64_t estimate_fallbacks = 0;
  uint64_t estimate_misses = 0;
  uint64_t err_count = 0;
  uint64_t err_sum_pct = 0;

  static PlannerCounters Snap() {
    MetricsRegistry& reg = MetricsRegistry::Instance();
    PlannerCounters c;
    c.plans_total = reg.GetCounter("planner.plans_total").value();
    c.plans_estimated = reg.GetCounter("planner.plans_estimated").value();
    c.plans_raced = reg.GetCounter("planner.plans_raced").value();
    c.estimate_fallbacks =
        reg.GetCounter("planner.estimate_fallbacks").value();
    c.estimate_misses = reg.GetCounter("planner.estimate_misses").value();
    const Histogram::Snapshot err =
        reg.GetHistogram("planner.estimate_error_pct").Snap();
    c.err_count = err.count;
    c.err_sum_pct = err.sum;
    return c;
  }

  PlannerCounters Delta(const PlannerCounters& before) const {
    PlannerCounters d;
    d.plans_total = plans_total - before.plans_total;
    d.plans_estimated = plans_estimated - before.plans_estimated;
    d.plans_raced = plans_raced - before.plans_raced;
    d.estimate_fallbacks = estimate_fallbacks - before.estimate_fallbacks;
    d.estimate_misses = estimate_misses - before.estimate_misses;
    d.err_count = err_count - before.err_count;
    d.err_sum_pct = err_sum_pct - before.err_sum_pct;
    return d;
  }

  /// Plan events settled without a trial race: cost picks, cache hits and
  /// single-candidate plans. 1.0 when nothing was planned.
  double NoRaceFraction() const {
    if (plans_total == 0) return 1.0;
    return static_cast<double>(plans_total - plans_raced) /
           static_cast<double>(plans_total);
  }

  /// Mean absolute relative estimation error of executed cost-planned
  /// queries (the histogram observes percentages).
  double Mare() const {
    if (err_count == 0) return 0.0;
    return static_cast<double>(err_sum_pct) /
           static_cast<double>(err_count) / 100.0;
  }
};

struct ModeRun {
  std::vector<BenchJsonEntry> entries;
  std::vector<double> millis;
  double p50 = 0.0;
  double p95 = 0.0;
  PlannerCounters counters;  // deltas attributable to this mode's runs
};

ModeRun RunMode(const std::string& mode, const BenchConfig& base) {
  BenchConfig config = base;
  config.planner = mode;
  const PlannerCounters before = PlannerCounters::Snap();
  ModeRun run;
  for (const Dataset dataset : {Dataset::kR, Dataset::kS}) {
    const DatasetInfo info = InfoFor(dataset, config);
    for (const st::ApproachKind kind : kApproaches) {
      const auto store = BuildLoadedStore(kind, dataset, config);
      for (const bool big : {false, true}) {
        for (const auto& spec :
             workload::MakeQuerySet(big, info.t_begin_ms, info.t_end_ms)) {
          QueryMeasurement m = MeasureQuery(*store, spec, config);
          run.millis.push_back(m.avg_millis);
          run.entries.push_back(BenchJsonEntry{st::ApproachName(kind),
                                               DatasetName(dataset),
                                               big ? "big" : "small",
                                               std::move(m)});
        }
      }
    }
  }
  run.p50 = Percentile(run.millis, 50.0);
  run.p95 = Percentile(run.millis, 95.0);
  run.counters = PlannerCounters::Snap().Delta(before);
  return run;
}

bool WritePlannerJson(const std::string& path, const BenchConfig& config,
                      const ModeRun& race, const ModeRun& cost,
                      double p95_ratio, int disagreements) {
  std::ofstream out(path);
  if (!out) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  auto emit_mode = [&](const char* name, const ModeRun& run) {
    out << "    \"" << name << "\": {\"p50_millis\": " << run.p50
        << ", \"p95_millis\": " << run.p95
        << ", \"plans_total\": " << run.counters.plans_total
        << ", \"plans_estimated\": " << run.counters.plans_estimated
        << ", \"plans_raced\": " << run.counters.plans_raced
        << ", \"estimate_fallbacks\": " << run.counters.estimate_fallbacks
        << ", \"estimate_misses\": " << run.counters.estimate_misses
        << ", \"no_race_fraction\": " << run.counters.NoRaceFraction()
        << ", \"mare\": " << run.counters.Mare() << ", \"queries\": [";
    for (size_t i = 0; i < run.entries.size(); ++i) {
      const BenchJsonEntry& e = run.entries[i];
      if (i > 0) out << ", ";
      out << "\n      {\"approach\": \"" << e.approach << "\", \"dataset\": \""
          << e.dataset << "\", \"suite\": \"" << e.suite << "\", \"query\": \""
          << e.m.query_name << "\", \"n_results\": " << e.m.n_results
          << ", \"avg_millis\": " << e.m.avg_millis
          << ", \"max_keys\": " << e.m.max_keys
          << ", \"max_docs\": " << e.m.max_docs << "}";
    }
    out << "]}";
  };
  out << "{\n  \"bench\": \"bench_planner\",\n  \"config\": {\"r_docs\": "
      << config.r_docs << ", \"s_docs\": " << config.s_docs
      << ", \"shards\": " << config.num_shards
      << ", \"warm_runs\": " << config.warm_runs
      << ", \"timed_runs\": " << config.timed_runs
      << ", \"seed\": " << config.seed << "},\n  \"modes\": {\n";
  emit_mode("race", race);
  out << ",\n";
  emit_mode("cost", cost);
  out << "\n  },\n  \"gates\": {\"p95_ratio_cost_over_race\": " << p95_ratio
      << ", \"p95_regression_limit\": 1.05"
      << ", \"p95_noise_floor_millis\": 1.0"
      << ", \"no_race_fraction_floor\": 0.70"
      << ", \"mare_ceiling\": 0.5"
      << ", \"result_disagreements\": " << disagreements << "}\n}\n";
  return out.good();
}

int Main(int argc, char** argv) {
  bool check = false;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  BenchConfig config =
      BenchConfig::FromArgs(static_cast<int>(rest.size()), rest.data());

  printf("== bench_planner ==\n");
  printf("plan selection: trial race vs histogram cost model "
         "(default-sharding workload, all approaches, R and S sets)\n");
  printf("scale: R=%" PRIu64 " docs, S=%" PRIu64 " docs, %d shards\n",
         config.r_docs, config.s_docs, config.num_shards);

  const ModeRun race = RunMode("race", config);
  const ModeRun cost = RunMode("cost", config);

  // Byte-parity oracle: both modes must retrieve the same documents.
  int disagreements = 0;
  for (size_t i = 0; i < race.entries.size() && i < cost.entries.size();
       ++i) {
    if (race.entries[i].m.n_results != cost.entries[i].m.n_results) {
      ++disagreements;
      printf("!! %s/%s %s: race retrieved %" PRIu64 ", cost %" PRIu64 "\n",
             race.entries[i].approach.c_str(),
             race.entries[i].dataset.c_str(),
             race.entries[i].m.query_name.c_str(),
             race.entries[i].m.n_results, cost.entries[i].m.n_results);
    }
  }

  const double p95_ratio = race.p95 > 0.0 ? cost.p95 / race.p95 : 1.0;
  printf("\nwarm latency   race: p50 %s ms  p95 %s ms\n",
         Fmt(race.p50).c_str(), Fmt(race.p95).c_str());
  printf("               cost: p50 %s ms  p95 %s ms  (p95 ratio %s)\n",
         Fmt(cost.p50).c_str(), Fmt(cost.p95).c_str(),
         Fmt(p95_ratio, 3).c_str());
  printf("cost planning  %" PRIu64 " plan events: %" PRIu64 " estimated, %"
         PRIu64 " raced, %" PRIu64 " fallbacks, %" PRIu64 " misses\n",
         cost.counters.plans_total, cost.counters.plans_estimated,
         cost.counters.plans_raced, cost.counters.estimate_fallbacks,
         cost.counters.estimate_misses);
  printf("               planned without race: %s  (floor 0.70)\n",
         Fmt(cost.counters.NoRaceFraction(), 3).c_str());
  printf("               estimation MARE: %s over %" PRIu64
         " executions  (ceiling 0.50)\n",
         Fmt(cost.counters.Mare(), 3).c_str(), cost.counters.err_count);
  printf("parity         %d result disagreements between modes\n",
         disagreements);

  if (!config.json_path.empty() &&
      !WritePlannerJson(config.json_path, config, race, cost, p95_ratio,
                        disagreements)) {
    return 1;
  }

  if (check) {
    int failures = 0;
    if (p95_ratio > 1.05 && cost.p95 - race.p95 > 1.0) {
      printf("GATE FAIL: cost p95 regressed %.1f%% over race (limit 5%%, "
             "noise floor 1 ms)\n",
             (p95_ratio - 1.0) * 100.0);
      ++failures;
    }
    if (cost.counters.NoRaceFraction() < 0.70) {
      printf("GATE FAIL: only %.1f%% of plan events avoided the race "
             "(floor 70%%)\n",
             cost.counters.NoRaceFraction() * 100.0);
      ++failures;
    }
    if (cost.counters.Mare() > 0.5) {
      printf("GATE FAIL: estimation MARE %.3f exceeds 0.5\n",
             cost.counters.Mare());
      ++failures;
    }
    if (disagreements > 0) {
      printf("GATE FAIL: %d queries disagree between race and cost\n",
             disagreements);
      ++failures;
    }
    if (failures > 0) return 1;
    printf("all planner gates pass\n");
  }
  return 0;
}

}  // namespace
}  // namespace stix::bench

int main(int argc, char** argv) { return stix::bench::Main(argc, argv); }
