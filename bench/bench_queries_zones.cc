// Reproduces the paper's zone-range query study, Figures 9-12: the same
// four metrics as Figures 5-8 but with $bucketAuto zones assigned one per
// shard (bslST/bslTS zone on date, hil on hilbertIndex). hil* is omitted,
// as in the paper's Section 5.3.

#include <cinttypes>
#include <cstdio>
#include <map>

#include "bench/bench_common.h"

namespace stix::bench {
namespace {

constexpr st::ApproachKind kApproaches[] = {st::ApproachKind::kBslST,
                                            st::ApproachKind::kBslTS,
                                            st::ApproachKind::kHil};

struct SuiteResult {
  std::vector<QueryMeasurement> small;
  std::vector<QueryMeasurement> big;
};

void PrintFigure(const std::string& figure, Dataset dataset, bool big,
                 const std::map<st::ApproachKind, SuiteResult>& results) {
  std::vector<std::string> approach_names;
  std::vector<std::vector<std::string>> keys, docs, nodes, times;
  std::vector<std::string> query_names;
  for (const st::ApproachKind kind : kApproaches) {
    const auto& suite = big ? results.at(kind).big : results.at(kind).small;
    approach_names.push_back(st::ApproachName(kind));
    std::vector<std::string> k, d, n, t;
    for (const QueryMeasurement& m : suite) {
      k.push_back(WithThousands(static_cast<int64_t>(m.max_keys)));
      d.push_back(WithThousands(static_cast<int64_t>(m.max_docs)));
      n.push_back(std::to_string(m.nodes));
      t.push_back(Fmt(m.avg_millis) + " ms");
    }
    keys.push_back(std::move(k));
    docs.push_back(std::move(d));
    nodes.push_back(std::move(n));
    times.push_back(std::move(t));
  }
  for (const QueryMeasurement& m :
       big ? results.begin()->second.big : results.begin()->second.small) {
    query_names.push_back(m.query_name);
  }

  const std::string title = figure + " (" +
                            std::string(big ? "big" : "small") +
                            " queries, " + DatasetName(dataset) +
                            " set, zone ranges)";
  PrintPanel(title, "(a) max keys examined on any node", approach_names, keys,
             query_names);
  PrintPanel(title, "(b) max documents examined on any node", approach_names,
             docs, query_names);
  PrintPanel(title, "(c) number of nodes", approach_names, nodes, query_names);
  PrintPanel(title, "(d) avg execution time", approach_names, times,
             query_names);
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  printf("== bench_queries_zones ==\n");
  printf("reproduces: Figures 9-12 (paper Section 5.3)\n");
  printf("scale: R=%" PRIu64 " docs, S=%" PRIu64 " docs, %d shards\n",
         config.r_docs, config.s_docs, config.num_shards);

  for (const Dataset dataset : {Dataset::kR, Dataset::kS}) {
    const DatasetInfo info = InfoFor(dataset, config);
    const auto small_queries =
        workload::MakeQuerySet(false, info.t_begin_ms, info.t_end_ms);
    const auto big_queries =
        workload::MakeQuerySet(true, info.t_begin_ms, info.t_end_ms);

    std::map<st::ApproachKind, SuiteResult> results;
    for (const st::ApproachKind kind : kApproaches) {
      const auto store = BuildLoadedStore(kind, dataset, config);
      const Status zs = store->ConfigureZones();
      if (!zs.ok()) {
        fprintf(stderr, "zone setup failed: %s\n", zs.ToString().c_str());
        return 1;
      }
      if (config.verbose) {
        fprintf(stderr, "[zones] %s/%s: %zu zones\n", st::ApproachName(kind),
                DatasetName(dataset), store->cluster().zones().size());
      }
      SuiteResult suite;
      for (const auto& spec : small_queries) {
        suite.small.push_back(MeasureQuery(*store, spec, config));
      }
      for (const auto& spec : big_queries) {
        suite.big.push_back(MeasureQuery(*store, spec, config));
      }
      results.emplace(kind, std::move(suite));
    }

    if (dataset == Dataset::kR) {
      PrintFigure("Figure 9", dataset, false, results);
      PrintFigure("Figure 10", dataset, true, results);
    } else {
      PrintFigure("Figure 11", dataset, false, results);
      PrintFigure("Figure 12", dataset, true, results);
    }
  }
  return 0;
}

}  // namespace
}  // namespace stix::bench

int main(int argc, char** argv) { return stix::bench::Main(argc, argv); }
