// Reproduces the paper's default-sharding query study:
//   Tables 2 and 3 (result counts of the small/big query suites on R and S)
//   Figures 5-8 (max keys examined, max docs examined, nodes, avg execution
//   time for bslST / bslTS / hil / hil*).
// Data is scaled down versus the paper (see EXPERIMENTS.md); shapes, not
// absolute values, are the reproduction target.

#include <cinttypes>
#include <cstdio>
#include <map>

#include "bench/bench_common.h"

namespace stix::bench {
namespace {

constexpr st::ApproachKind kApproaches[] = {
    st::ApproachKind::kBslST, st::ApproachKind::kBslTS,
    st::ApproachKind::kHil, st::ApproachKind::kHilStar};

struct SuiteResult {
  std::vector<QueryMeasurement> small;  // Q1^s..Q4^s
  std::vector<QueryMeasurement> big;    // Q1^b..Q4^b
};

void PrintFigure(const std::string& figure, Dataset dataset, bool big,
                 const std::map<st::ApproachKind, SuiteResult>& results) {
  std::vector<std::string> approach_names;
  std::vector<std::vector<std::string>> keys, docs, nodes, times;
  std::vector<std::string> query_names;
  for (const st::ApproachKind kind : kApproaches) {
    const auto& suite =
        big ? results.at(kind).big : results.at(kind).small;
    approach_names.push_back(st::ApproachName(kind));
    std::vector<std::string> k, d, n, t;
    for (const QueryMeasurement& m : suite) {
      k.push_back(WithThousands(static_cast<int64_t>(m.max_keys)));
      d.push_back(WithThousands(static_cast<int64_t>(m.max_docs)));
      n.push_back(std::to_string(m.nodes));
      t.push_back(Fmt(m.avg_millis) + " ms");
    }
    keys.push_back(std::move(k));
    docs.push_back(std::move(d));
    nodes.push_back(std::move(n));
    times.push_back(std::move(t));
  }
  for (const QueryMeasurement& m :
       big ? results.begin()->second.big : results.begin()->second.small) {
    query_names.push_back(m.query_name);
  }

  const std::string title = figure + " (" +
                            std::string(big ? "big" : "small") +
                            " queries, " + DatasetName(dataset) + " set, "
                            "default sharding ranges)";
  PrintPanel(title, "(a) max keys examined on any node", approach_names, keys,
             query_names);
  PrintPanel(title, "(b) max documents examined on any node", approach_names,
             docs, query_names);
  PrintPanel(title, "(c) number of nodes", approach_names, nodes, query_names);
  PrintPanel(title, "(d) avg execution time", approach_names, times,
             query_names);
}

void PrintResultCountTable(const char* table, Dataset dataset, bool big,
                           const std::map<st::ApproachKind, SuiteResult>& res) {
  // All approaches must agree on result counts — cross-validation that the
  // four implementations answer queries identically.
  const auto& reference = big ? res.begin()->second.big
                              : res.begin()->second.small;
  printf("\n%s: number of retrieved documents (%s queries, %s set)\n", table,
         big ? "big" : "small", DatasetName(dataset));
  for (size_t q = 0; q < reference.size(); ++q) {
    printf("  %-6s %s\n", reference[q].query_name.c_str(),
           WithThousands(static_cast<int64_t>(reference[q].n_results)).c_str());
  }
  for (const auto& [kind, suite] : res) {
    const auto& list = big ? suite.big : suite.small;
    for (size_t q = 0; q < reference.size(); ++q) {
      if (list[q].n_results != reference[q].n_results) {
        printf("  !! approach %s disagrees on %s: %" PRIu64 " vs %" PRIu64
               "\n",
               st::ApproachName(kind), list[q].query_name.c_str(),
               list[q].n_results, reference[q].n_results);
      }
    }
  }
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  printf("== bench_queries_default ==\n");
  printf("reproduces: Tables 2-3, Figures 5-8 (paper Section 5.2)\n");
  printf("scale: R=%" PRIu64 " docs, S=%" PRIu64 " docs, %d shards "
         "(paper: 15.2M / 30.4M docs, 12 shards)\n",
         config.r_docs, config.s_docs, config.num_shards);

  std::vector<BenchJsonEntry> json_entries;
  for (const Dataset dataset : {Dataset::kR, Dataset::kS}) {
    const DatasetInfo info = InfoFor(dataset, config);
    const auto small_queries =
        workload::MakeQuerySet(false, info.t_begin_ms, info.t_end_ms);
    const auto big_queries =
        workload::MakeQuerySet(true, info.t_begin_ms, info.t_end_ms);

    std::map<st::ApproachKind, SuiteResult> results;
    for (const st::ApproachKind kind : kApproaches) {
      const auto store = BuildLoadedStore(kind, dataset, config);
      SuiteResult suite;
      for (const auto& spec : small_queries) {
        suite.small.push_back(MeasureQuery(*store, spec, config));
        json_entries.push_back(BenchJsonEntry{st::ApproachName(kind),
                                              DatasetName(dataset), "small",
                                              suite.small.back()});
      }
      for (const auto& spec : big_queries) {
        suite.big.push_back(MeasureQuery(*store, spec, config));
        json_entries.push_back(BenchJsonEntry{st::ApproachName(kind),
                                              DatasetName(dataset), "big",
                                              suite.big.back()});
      }
      const st::CoverCacheStats cache =
          store->approach().cover_cache_stats();
      printf("[covering cache] %s/%s: %" PRIu64 " hits / %" PRIu64
             " misses / %" PRIu64 " evictions (%.0f%% warm hit rate)\n",
             st::ApproachName(kind), DatasetName(dataset), cache.hits,
             cache.misses, cache.evictions, 100.0 * cache.HitRate());
      if (config.server_status) {
        printf("[server status] %s/%s: %s\n", st::ApproachName(kind),
               DatasetName(dataset), store->cluster().ServerStatus().c_str());
      }
      results.emplace(kind, std::move(suite));
    }

    PrintResultCountTable(dataset == Dataset::kR ? "Table 2 (R row)"
                                                 : "Table 2 (S row)",
                          dataset, false, results);
    PrintResultCountTable(dataset == Dataset::kR ? "Table 3 (R row)"
                                                 : "Table 3 (S row)",
                          dataset, true, results);
    if (dataset == Dataset::kR) {
      PrintFigure("Figure 5", dataset, false, results);
      PrintFigure("Figure 6", dataset, true, results);
    } else {
      PrintFigure("Figure 7", dataset, false, results);
      PrintFigure("Figure 8", dataset, true, results);
    }
  }
  if (!config.json_path.empty()) {
    if (WriteBenchJson(config.json_path, "bench_queries_default", config,
                       json_entries)) {
      printf("\nwrote %zu measurements to %s\n", json_entries.size(),
             config.json_path.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace stix::bench

int main(int argc, char** argv) { return stix::bench::Main(argc, argv); }
