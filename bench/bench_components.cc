// Micro-benchmarks (google-benchmark) for the substrate components and the
// ablations called out in DESIGN.md: curve encodings, KeyString, B-tree
// operations, BSON codec, LZ block compression, and the covering budget
// sweep (covering precision vs $or fan-out).

#include <benchmark/benchmark.h>

#include "bson/codec.h"
#include "common/lz.h"
#include "common/rng.h"
#include "geo/covering.h"
#include "geo/geohash.h"
#include "geo/hilbert.h"
#include "geo/zorder.h"
#include "keystring/keystring.h"
#include "storage/btree.h"
#include "workload/query_workload.h"
#include "workload/trajectory_generator.h"

namespace stix {
namespace {

// ---------- curve encodings ----------

void BM_HilbertEncode(benchmark::State& state) {
  const geo::HilbertCurve curve(static_cast<int>(state.range(0)),
                                geo::GlobeRect());
  Rng rng(1);
  double lon = rng.NextDouble(-180, 180), lat = rng.NextDouble(-90, 90);
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.PointToD(lon, lat));
    lon += 0.001;
    if (lon > 180) lon = -180;
  }
}
BENCHMARK(BM_HilbertEncode)->Arg(13)->Arg(16);

void BM_ZOrderEncode(benchmark::State& state) {
  const geo::ZOrderCurve curve(static_cast<int>(state.range(0)),
                               geo::GlobeRect());
  Rng rng(1);
  double lon = rng.NextDouble(-180, 180), lat = rng.NextDouble(-90, 90);
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.PointToD(lon, lat));
    lon += 0.001;
    if (lon > 180) lon = -180;
  }
}
BENCHMARK(BM_ZOrderEncode)->Arg(13)->Arg(16);

void BM_GeoHashBase32(benchmark::State& state) {
  Rng rng(1);
  double lon = rng.NextDouble(-180, 180), lat = rng.NextDouble(-90, 90);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::GeoHashBase32(lon, lat, 10));
    lat += 0.001;
    if (lat > 90) lat = -90;
  }
}
BENCHMARK(BM_GeoHashBase32);

// ---------- coverings ----------

void BM_CoverRectHilbert(benchmark::State& state) {
  const geo::HilbertCurve curve(static_cast<int>(state.range(0)),
                                geo::GlobeRect());
  const geo::Rect big = workload::BigQueryRect();
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::CoverRect(curve, big));
  }
}
BENCHMARK(BM_CoverRectHilbert)->Arg(10)->Arg(13)->Arg(15);

void BM_CoverRectBudget(benchmark::State& state) {
  // Ablation: capping the number of ranges trades covering tightness for
  // $or fan-out; this shows the covering cost side.
  const geo::HilbertCurve curve(13, geo::GlobeRect());
  const geo::Rect big = workload::BigQueryRect();
  geo::CoveringOptions options;
  options.max_ranges = static_cast<size_t>(state.range(0));
  uint64_t cells = 0;
  for (auto _ : state) {
    const geo::Covering c = geo::CoverRect(curve, big, options);
    cells = c.num_cells;
    benchmark::DoNotOptimize(c);
  }
  state.counters["covered_cells"] = static_cast<double>(cells);
}
BENCHMARK(BM_CoverRectBudget)->Arg(4)->Arg(16)->Arg(64)->Arg(0);

// ---------- keystring ----------

void BM_KeyStringEncodeCompound(benchmark::State& state) {
  int64_t h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(keystring::Encode(
        {bson::Value::Int64(h), bson::Value::DateTime(1530403200000 + h)}));
    ++h;
  }
}
BENCHMARK(BM_KeyStringEncodeCompound);

void BM_KeyStringDecode(benchmark::State& state) {
  const std::string key = keystring::Encode(
      {bson::Value::Int64(123456), bson::Value::DateTime(1530403200000)});
  std::vector<bson::Value> values;
  for (auto _ : state) {
    benchmark::DoNotOptimize(keystring::DecodeValues(key, &values));
  }
}
BENCHMARK(BM_KeyStringDecode);

// ---------- B-tree ----------

void BM_BTreeInsert(benchmark::State& state) {
  storage::BTree tree;
  Rng rng(7);
  uint64_t rid = 1;
  for (auto _ : state) {
    tree.Insert(keystring::Encode(bson::Value::Int64(
                    static_cast<int64_t>(rng.Next() % 1000000))),
                rid++);
  }
  state.counters["entries"] = static_cast<double>(tree.num_entries());
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeSeek(benchmark::State& state) {
  storage::BTree tree;
  Rng rng(7);
  for (uint64_t i = 0; i < 100000; ++i) {
    tree.Insert(keystring::Encode(bson::Value::Int64(
                    static_cast<int64_t>(rng.Next() % 1000000))),
                i + 1);
  }
  Rng probe(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.SeekGE(keystring::Encode(bson::Value::Int64(
        static_cast<int64_t>(probe.Next() % 1000000)))));
  }
}
BENCHMARK(BM_BTreeSeek);

void BM_BTreeRangeScan100(benchmark::State& state) {
  storage::BTree tree;
  for (int64_t i = 0; i < 100000; ++i) {
    tree.Insert(keystring::Encode(bson::Value::Int64(i)),
                static_cast<uint64_t>(i + 1));
  }
  Rng rng(9);
  for (auto _ : state) {
    const int64_t start = static_cast<int64_t>(rng.NextBounded(99900));
    uint64_t sum = 0;
    int n = 0;
    for (auto c = tree.SeekGE(keystring::Encode(bson::Value::Int64(start)));
         c.Valid() && n < 100; c.Next(), ++n) {
      sum += c.rid();
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BTreeRangeScan100);

// ---------- BSON / LZ ----------

void BM_BsonEncodeTrajectoryDoc(benchmark::State& state) {
  workload::TrajectoryOptions options;
  options.num_records = 1;
  workload::TrajectoryGenerator gen(options);
  bson::Document doc;
  gen.Next(&doc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bson::EncodeBson(doc));
  }
}
BENCHMARK(BM_BsonEncodeTrajectoryDoc);

void BM_LzCompress32K(benchmark::State& state) {
  workload::TrajectoryOptions options;
  options.num_records = 64;
  workload::TrajectoryGenerator gen(options);
  std::string block;
  bson::Document doc;
  while (gen.Next(&doc)) block += bson::EncodeBson(doc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzCompress(block));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block.size()));
}
BENCHMARK(BM_LzCompress32K);

}  // namespace
}  // namespace stix

BENCHMARK_MAIN();
