// Row vs bucketed collection layout (DESIGN.md §5g): the same load measured
// under both layouts, per approach, over the R (trajectory) set:
//
//   - storage footprint: record-store resident bytes and index resident
//     bytes, separately, plus the size reduction the bucket codec buys
//     (Simple8b delta-of-delta columns + LZ'd payload residuals). The
//     headline ratio is raw point BSON vs what the bucket layout keeps
//     resident — the "what you would store vs what you do store" figure
//     MongoDB quotes for time-series collections; the block-compressed
//     row store is also printed as the resident-vs-resident comparison.
//   - cold full-scan rect+window query over the on-disk block image (see
//     MeasureColdScan): both layouts decompress and parse their whole
//     image; the bucket layout parses ~points/bucket fewer documents,
//     prunes on bucket metadata before touching any column, and answers
//     survivors columnar-first (ts/lon/lat only). Match counts must agree
//     between layouts — a built-in differential check.
//   - p50/p95 modeled latency over the small query set (warm, selective)
//
// The --json file (committed as BENCH_bucket.json) is the perf-trajectory
// record the tentpole's acceptance numbers live in: size_reduction >= 5x,
// cold-scan speedup >= 2x.

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/strings.h"

namespace stix::bench {
namespace {

constexpr st::ApproachKind kApproaches[] = {st::ApproachKind::kBslTS,
                                            st::ApproachKind::kHil};

struct LayoutRun {
  PerfSummary summary;
  uint64_t logical_bytes = 0;  ///< Uncompressed BSON of the stored docs.
  uint64_t stored_docs = 0;    ///< Points (row) or buckets (bucket).
};

LayoutRun RunLayout(st::ApproachKind kind, bool bucket,
                    const BenchConfig& config) {
  BenchConfig c = config;
  c.bucket = bucket;
  const auto store = BuildLoadedStore(kind, Dataset::kR, c);
  const DatasetInfo info = InfoFor(Dataset::kR, config);

  LayoutRun run;
  run.summary.label = std::string(st::ApproachName(kind)) + "/R/" +
                      (bucket ? "bucket" : "row");
  run.summary.dataset_docs = config.r_docs;

  const storage::CollectionStats stats = store->cluster().ComputeDataStats();
  run.logical_bytes = stats.logical_bytes;
  run.stored_docs = stats.num_documents;
  run.summary.record_store_bytes = stats.compressed_bytes;
  for (const auto& [name, bytes] : store->cluster().ComputeIndexSizes()) {
    run.summary.index_bytes += bytes;
  }

  MeasureColdScan(*store, info, &run.summary);

  std::vector<double> latencies;
  for (const workload::StQuerySpec& spec :
       workload::MakeQuerySet(false, info.t_begin_ms, info.t_end_ms)) {
    latencies.push_back(MeasureQuery(*store, spec, c).avg_millis);
  }
  run.summary.p50_millis = Percentile(latencies, 50.0);
  run.summary.p95_millis = Percentile(latencies, 95.0);
  return run;
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  printf("== bench_bucket ==\n");
  printf("row vs bucketed collection layout (DESIGN.md 5g)\n");
  printf("scale: R=%" PRIu64 " docs, %d shards\n", config.r_docs,
         config.num_shards);

  std::vector<PerfSummary> summaries;
  bool targets_met = true;
  for (const st::ApproachKind kind : kApproaches) {
    LayoutRun row = RunLayout(kind, /*bucket=*/false, config);
    LayoutRun bucket = RunLayout(kind, /*bucket=*/true, config);
    // The headline ratio: what the row layout would occupy, against what
    // each layout actually keeps resident.
    row.summary.compression_ratio =
        static_cast<double>(row.logical_bytes) /
        static_cast<double>(row.summary.record_store_bytes);
    bucket.summary.compression_ratio =
        static_cast<double>(row.logical_bytes) /
        static_cast<double>(bucket.summary.record_store_bytes);

    // The 5x gate: raw point BSON against the bucket layout's resident
    // bytes (== bucket.summary.compression_ratio). The row store's own
    // block compression is reported alongside as the resident ratio.
    const double size_reduction = bucket.summary.compression_ratio;
    const double resident_reduction =
        static_cast<double>(row.summary.record_store_bytes) /
        static_cast<double>(bucket.summary.record_store_bytes);
    const double scan_speedup =
        row.summary.cold_scan_millis / bucket.summary.cold_scan_millis;

    printf("\n[%s] row layout:    %" PRIu64
           " stored docs, record-store=%s (logical %s), indexes=%s\n",
           st::ApproachName(kind), row.stored_docs,
           HumanBytes(row.summary.record_store_bytes).c_str(),
           HumanBytes(row.logical_bytes).c_str(),
           HumanBytes(row.summary.index_bytes).c_str());
    printf("[%s] bucket layout: %" PRIu64
           " stored docs, record-store=%s (logical %s), indexes=%s\n",
           st::ApproachName(kind), bucket.stored_docs,
           HumanBytes(bucket.summary.record_store_bytes).c_str(),
           HumanBytes(bucket.logical_bytes).c_str(),
           HumanBytes(bucket.summary.index_bytes).c_str());
    printf("[%s] size reduction: %.2fx vs raw point BSON "
           "(row's own block compression: %.2fx resident)\n",
           st::ApproachName(kind), size_reduction, resident_reduction);
    printf("[%s] cold image scan: row %.1f ms (%.0f pts/s) vs bucket %.1f "
           "ms (%.0f pts/s) -> %.2fx, %" PRIu64 " matches\n",
           st::ApproachName(kind), row.summary.cold_scan_millis,
           row.summary.docs_per_sec_scanned, bucket.summary.cold_scan_millis,
           bucket.summary.docs_per_sec_scanned, scan_speedup,
           bucket.summary.cold_scan_matches);
    if (row.summary.cold_scan_matches != bucket.summary.cold_scan_matches) {
      printf("[%s] !! layouts disagree on the scan result: row %" PRIu64
             " vs bucket %" PRIu64 "\n",
             st::ApproachName(kind), row.summary.cold_scan_matches,
             bucket.summary.cold_scan_matches);
      targets_met = false;
    }
    printf("[%s] small queries:  row p50=%.3f ms p95=%.3f ms | bucket "
           "p50=%.3f ms p95=%.3f ms\n",
           st::ApproachName(kind), row.summary.p50_millis,
           row.summary.p95_millis, bucket.summary.p50_millis,
           bucket.summary.p95_millis);
    if (size_reduction < 5.0) {
      printf("[%s] !! size reduction below the 5x target\n",
             st::ApproachName(kind));
      targets_met = false;
    }
    if (scan_speedup < 2.0) {
      printf("[%s] !! cold-scan speedup below the 2x target\n",
             st::ApproachName(kind));
      targets_met = false;
    }
    summaries.push_back(row.summary);
    summaries.push_back(bucket.summary);
  }

  if (!config.json_path.empty() &&
      !WritePerfJson(config.json_path, "bench_bucket", config, summaries)) {
    return 1;
  }
  printf("\nbench_bucket: targets %s\n", targets_met ? "met" : "MISSED");
  return 0;
}

}  // namespace
}  // namespace stix::bench

int main(int argc, char** argv) { return stix::bench::Main(argc, argv); }
