// Reproduces the paper's Table 7: which index the query optimizer picks on
// each node for the bslST approach (the compound {location 2dsphere, date}
// index vs the {date} shard-key index), per query, data set and
// distribution (default vs zones). The choice emerges from the multi-plan
// racing executor, exactly as MongoDB's plan selection does.

#include <cinttypes>
#include <cstdio>

#include "bench/bench_common.h"

namespace stix::bench {
namespace {

// Table 7 legend: ● all used nodes exploit the compound index, ○ all use
// the date index, ◐ mixed usage among the used nodes.
const char* UsageGlyph(const QueryMeasurement& m) {
  size_t compound = 0, date = 0;
  for (const std::string& name : m.winning_indexes) {
    if (name == "location_2dsphere_date_1") {
      ++compound;
    } else if (name == "date_1") {
      ++date;
    }
  }
  if (compound > 0 && date > 0) return "(mixed)";
  if (compound > 0) return "compound";
  if (date > 0) return "date";
  return "-";
}

void RunSuite(const char* distribution, Dataset dataset, bool zones,
              const BenchConfig& config) {
  const auto store = BuildLoadedStore(st::ApproachKind::kBslST, dataset,
                                      config);
  if (zones) {
    const Status s = store->ConfigureZones();
    if (!s.ok()) {
      fprintf(stderr, "zones failed: %s\n", s.ToString().c_str());
      exit(1);
    }
  }
  const DatasetInfo info = InfoFor(dataset, config);
  for (const bool big : {false, true}) {
    const auto queries =
        workload::MakeQuerySet(big, info.t_begin_ms, info.t_end_ms);
    printf("  %-8s %-3s %-4s", distribution, DatasetName(dataset),
           big ? "Q^b" : "Q^s");
    for (const auto& spec : queries) {
      const QueryMeasurement m = MeasureQuery(*store, spec, config);
      size_t compound = 0;
      for (const std::string& n : m.winning_indexes) {
        compound += n == "location_2dsphere_date_1";
      }
      printf("  %-10s", UsageGlyph(m));
      if (compound > 0 && compound < m.winning_indexes.size()) {
        printf("[%zu/%zu cmp]", compound, m.winning_indexes.size());
      }
    }
    printf("\n");
  }
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  printf("== bench_index_usage ==\n");
  printf("reproduces: Table 7 (index used per node, bslST approach)\n");
  printf("paper legend: compound = {location: 2dsphere, date: 1}, "
         "date = the {date: 1} shard-key index\n");
  printf("  %-8s %-3s %-4s  %-10s  %-10s  %-10s  %-10s\n", "distrib",
         "set", "cat", "Q1", "Q2", "Q3", "Q4");
  for (const Dataset dataset : {Dataset::kR, Dataset::kS}) {
    RunSuite("default", dataset, /*zones=*/false, config);
  }
  for (const Dataset dataset : {Dataset::kR, Dataset::kS}) {
    RunSuite("zones", dataset, /*zones=*/true, config);
  }
  return 0;
}

}  // namespace
}  // namespace stix::bench

int main(int argc, char** argv) { return stix::bench::Main(argc, argv); }
