#include "bench/bench_common.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/stopwatch.h"
#include "common/strings.h"

namespace stix::bench {

const char* DatasetName(Dataset d) { return d == Dataset::kR ? "R" : "S"; }

BenchConfig BenchConfig::FromArgs(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      if (arg.rfind(prefix, 0) == 0) return arg.c_str() + strlen(prefix);
      return nullptr;
    };
    if (const char* v = value_of("--r_docs=")) {
      config.r_docs = strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--s_docs=")) {
      config.s_docs = strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--shards=")) {
      config.num_shards = atoi(v);
    } else if (const char* v = value_of("--warm=")) {
      config.warm_runs = atoi(v);
    } else if (const char* v = value_of("--timed=")) {
      config.timed_runs = atoi(v);
    } else if (const char* v = value_of("--seed=")) {
      config.seed = strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--json=")) {
      config.json_path = v;
    } else if (const char* v = value_of("--batch=")) {
      config.batch_size = strtoull(v, nullptr, 10);
    } else if (arg == "--serial") {
      config.parallel_fanout = false;
    } else if (arg == "--verbose") {
      config.verbose = true;
    } else if (arg == "--server-status") {
      config.server_status = true;
    } else {
      fprintf(stderr,
              "unknown flag %s\nusage: %s [--r_docs=N] [--s_docs=N] "
              "[--shards=N] [--warm=N] [--timed=N] [--seed=N] "
              "[--batch=N] [--json=PATH] [--serial] [--verbose] "
              "[--server-status]\n",
              arg.c_str(), argv[0]);
      exit(2);
    }
  }
  return config;
}

DatasetInfo InfoFor(Dataset dataset, const BenchConfig& config) {
  (void)config;
  if (dataset == Dataset::kR) {
    workload::TrajectoryOptions defaults;
    return DatasetInfo{workload::TrajectoryGenerator::GreeceMbr(),
                       defaults.t_begin_ms, defaults.t_end_ms};
  }
  workload::UniformOptions defaults;
  return DatasetInfo{workload::UniformGenerator::PaperMbr(),
                     defaults.t_begin_ms, defaults.t_end_ms};
}

std::unique_ptr<st::StStore> BuildLoadedStore(st::ApproachKind kind,
                                              Dataset dataset,
                                              const BenchConfig& config) {
  const DatasetInfo info = InfoFor(dataset, config);

  st::StStoreOptions options;
  options.approach.kind = kind;
  options.approach.dataset_mbr = info.mbr;
  options.cluster.num_shards = config.num_shards;
  options.cluster.chunk_max_bytes = config.chunk_max_bytes;
  options.cluster.seed = config.seed;
  options.cluster.parallel_fanout = config.parallel_fanout;
  options.load_clock_begin_ms = info.t_begin_ms;

  auto store = std::make_unique<st::StStore>(options);
  Status s = store->Setup();
  if (!s.ok()) {
    fprintf(stderr, "store setup failed: %s\n", s.ToString().c_str());
    exit(1);
  }

  Stopwatch load_timer;
  bson::Document doc;
  uint64_t loaded = 0;
  if (dataset == Dataset::kR) {
    workload::TrajectoryOptions traj;
    traj.num_records = config.r_docs;
    traj.seed = config.seed ^ 0x9e37ULL;
    workload::TrajectoryGenerator gen(traj);
    while (gen.Next(&doc)) {
      s = store->Insert(std::move(doc));
      if (!s.ok()) {
        fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
        exit(1);
      }
      ++loaded;
    }
  } else {
    workload::UniformOptions uni;
    uni.num_records = config.s_docs;
    uni.seed = config.seed ^ 0x51aULL;
    workload::UniformGenerator gen(uni);
    while (gen.Next(&doc)) {
      s = store->Insert(std::move(doc));
      if (!s.ok()) {
        fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
        exit(1);
      }
      ++loaded;
    }
  }
  s = store->FinishLoad();
  if (!s.ok()) {
    fprintf(stderr, "balance failed: %s\n", s.ToString().c_str());
    exit(1);
  }
  if (config.verbose) {
    fprintf(stderr,
            "[load] %s/%s: %" PRIu64 " docs in %.1fs, %zu chunks\n",
            st::ApproachName(kind), DatasetName(dataset), loaded,
            load_timer.ElapsedMillis() / 1000.0,
            store->cluster().chunks().num_chunks());
  }
  return store;
}

QueryMeasurement MeasureQuery(const st::StStore& store,
                              const workload::StQuerySpec& spec,
                              const BenchConfig& config) {
  // With --batch=N the measured runs stream through the cursor path in
  // N-document getMore rounds (batches are consumed and dropped); with the
  // default 0 they use the classic single-round drain. Counts and modeled
  // time are identical either way — the streaming columns
  // (first_result_millis, bytes_materialized) are what batching moves.
  const auto run = [&] {
    st::StCursorOptions cursor_options;
    cursor_options.batch_size = config.batch_size;
    if (config.batch_size == 0) {
      return store.Query(spec.rect, spec.t_begin_ms, spec.t_end_ms);
    }
    st::StCursor cursor = store.OpenQuery(spec.rect, spec.t_begin_ms,
                                          spec.t_end_ms, cursor_options);
    while (!cursor.exhausted()) (void)cursor.NextBatch();
    return cursor.Summary();
  };

  QueryMeasurement m;
  m.query_name = spec.name;
  for (int i = 0; i < config.warm_runs; ++i) {
    (void)run();
  }
  double total_ms = 0.0, total_cover_ms = 0.0, total_first_ms = 0.0;
  for (int i = 0; i < config.timed_runs; ++i) {
    const st::StQueryResult r = run();
    total_ms += r.cluster.modeled_millis;
    total_cover_ms += r.translated.cover_millis;
    total_first_ms += r.cluster.first_result_millis;
    if (r.translated.cache_hit) ++m.cover_cache_hits;
    if (i + 1 == config.timed_runs) {
      m.n_results = r.cluster.n_returned;
      m.nodes = r.cluster.nodes_contacted;
      m.max_keys = r.cluster.max_keys_examined;
      m.max_docs = r.cluster.max_docs_examined;
      m.cover_ranges = r.translated.num_ranges;
      m.cover_singletons = r.translated.num_singletons;
      m.bytes_materialized = r.cluster.bytes_materialized;
      for (const cluster::ShardQueryReport& rep : r.cluster.shard_reports) {
        m.winning_indexes.push_back(rep.winning_index);
      }
    }
  }
  m.avg_millis = total_ms / config.timed_runs;
  m.avg_cover_millis = total_cover_ms / config.timed_runs;
  m.first_result_millis = total_first_ms / config.timed_runs;
  return m;
}

void PrintPanel(const std::string& title, const std::string& metric,
                const std::vector<std::string>& approach_names,
                const std::vector<std::vector<std::string>>& values,
                const std::vector<std::string>& query_names) {
  printf("\n%s — %s\n", title.c_str(), metric.c_str());
  printf("%-8s", "query");
  for (const std::string& name : approach_names) {
    printf(" %14s", name.c_str());
  }
  printf("\n");
  for (size_t q = 0; q < query_names.size(); ++q) {
    printf("%-8s", query_names[q].c_str());
    for (size_t a = 0; a < approach_names.size(); ++a) {
      printf(" %14s", values[a][q].c_str());
    }
    printf("\n");
  }
}

std::string Fmt(double v, int decimals) { return FormatFixed(v, decimals); }

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

bool WriteBenchJson(const std::string& path, const std::string& bench_name,
                    const BenchConfig& config,
                    const std::vector<BenchJsonEntry>& entries) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  fprintf(f, "{\n  \"bench\": \"%s\",\n", JsonEscape(bench_name).c_str());
  fprintf(f,
          "  \"config\": {\"r_docs\": %" PRIu64 ", \"s_docs\": %" PRIu64
          ", \"shards\": %d, \"warm_runs\": %d, \"timed_runs\": %d, "
          "\"seed\": %" PRIu64 ", \"parallel_fanout\": %s, "
          "\"batch_size\": %zu},\n",
          config.r_docs, config.s_docs, config.num_shards, config.warm_runs,
          config.timed_runs, config.seed,
          config.parallel_fanout ? "true" : "false", config.batch_size);
  fprintf(f, "  \"queries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const BenchJsonEntry& e = entries[i];
    fprintf(f,
            "    {\"approach\": \"%s\", \"dataset\": \"%s\", "
            "\"suite\": \"%s\", \"query\": \"%s\", "
            "\"n_results\": %" PRIu64 ", \"nodes\": %d, "
            "\"max_keys\": %" PRIu64 ", \"max_docs\": %" PRIu64 ", "
            "\"avg_millis\": %.6f, \"avg_cover_millis\": %.6f, "
            "\"cover_ranges\": %zu, \"cover_singletons\": %zu, "
            "\"cover_cache_hits\": %d, "
            "\"bytes_materialized\": %" PRIu64 ", "
            "\"first_result_millis\": %.6f}%s\n",
            JsonEscape(e.approach).c_str(), JsonEscape(e.dataset).c_str(),
            JsonEscape(e.suite).c_str(), JsonEscape(e.m.query_name).c_str(),
            e.m.n_results, e.m.nodes, e.m.max_keys, e.m.max_docs,
            e.m.avg_millis, e.m.avg_cover_millis, e.m.cover_ranges,
            e.m.cover_singletons, e.m.cover_cache_hits,
            e.m.bytes_materialized, e.m.first_result_millis,
            i + 1 == entries.size() ? "" : ",");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  return true;
}

}  // namespace stix::bench
