#include "bench/bench_common.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bson/codec.h"
#include "common/lz.h"
#include "common/percentile.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "query/bucket_unpack.h"
#include "query/expression.h"

namespace stix::bench {

const char* DatasetName(Dataset d) { return d == Dataset::kR ? "R" : "S"; }

BenchConfig BenchConfig::FromArgs(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      if (arg.rfind(prefix, 0) == 0) return arg.c_str() + strlen(prefix);
      return nullptr;
    };
    if (const char* v = value_of("--r_docs=")) {
      config.r_docs = strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--s_docs=")) {
      config.s_docs = strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--shards=")) {
      config.num_shards = atoi(v);
    } else if (const char* v = value_of("--warm=")) {
      config.warm_runs = atoi(v);
    } else if (const char* v = value_of("--timed=")) {
      config.timed_runs = atoi(v);
    } else if (const char* v = value_of("--seed=")) {
      config.seed = strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--json=")) {
      config.json_path = v;
    } else if (const char* v = value_of("--batch=")) {
      config.batch_size = strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--planner=")) {
      config.planner = v;
      if (config.planner != "race" && config.planner != "cost") {
        fprintf(stderr, "--planner must be race or cost, got %s\n", v);
        exit(2);
      }
    } else if (arg == "--serial") {
      config.parallel_fanout = false;
    } else if (arg == "--bucket") {
      config.bucket = true;
    } else if (arg == "--verbose") {
      config.verbose = true;
    } else if (arg == "--server-status") {
      config.server_status = true;
    } else {
      fprintf(stderr,
              "unknown flag %s\nusage: %s [--r_docs=N] [--s_docs=N] "
              "[--shards=N] [--warm=N] [--timed=N] [--seed=N] "
              "[--batch=N] [--json=PATH] [--planner=race|cost] [--serial] "
              "[--bucket] [--verbose] [--server-status]\n",
              arg.c_str(), argv[0]);
      exit(2);
    }
  }
  return config;
}

DatasetInfo InfoFor(Dataset dataset, const BenchConfig& config) {
  (void)config;
  if (dataset == Dataset::kR) {
    workload::TrajectoryOptions defaults;
    return DatasetInfo{workload::TrajectoryGenerator::GreeceMbr(),
                       defaults.t_begin_ms, defaults.t_end_ms};
  }
  workload::UniformOptions defaults;
  return DatasetInfo{workload::UniformGenerator::PaperMbr(),
                     defaults.t_begin_ms, defaults.t_end_ms};
}

std::unique_ptr<st::StStore> BuildLoadedStore(st::ApproachKind kind,
                                              Dataset dataset,
                                              const BenchConfig& config) {
  const DatasetInfo info = InfoFor(dataset, config);

  st::StStoreOptions options;
  options.approach.kind = kind;
  options.approach.dataset_mbr = info.mbr;
  options.cluster.num_shards = config.num_shards;
  options.cluster.chunk_max_bytes = config.chunk_max_bytes;
  options.cluster.seed = config.seed;
  options.cluster.parallel_fanout = config.parallel_fanout;
  options.cluster.exec.plan_selection = config.planner == "race"
                                            ? query::PlanSelectionMode::kRace
                                            : query::PlanSelectionMode::kCost;
  options.load_clock_begin_ms = info.t_begin_ms;
  if (config.bucket) {
    // The default 6 h window matches the paper's per-vehicle sampling
    // density; the bench data is scaled down ~60x, so the window scales up
    // with it: aim for ~64 points per (stream, window) bucket, clamped to
    // [1 h, full span]. The uniform S set has no vehicleId (one stream).
    storage::BucketLayout layout;
    const int64_t span_ms = info.t_end_ms - info.t_begin_ms;
    const uint64_t docs =
        dataset == Dataset::kR ? config.r_docs : config.s_docs;
    const uint64_t streams =
        dataset == Dataset::kR
            ? static_cast<uint64_t>(workload::TrajectoryOptions{}.num_vehicles)
            : 1;
    const int64_t target = static_cast<int64_t>(
        static_cast<double>(span_ms) * 64.0 * static_cast<double>(streams) /
        static_cast<double>(docs > 0 ? docs : 1));
    layout.window_ms = std::clamp<int64_t>(target, 3600000LL, span_ms);
    // The default shift (4k-index cells over a 26-bit curve) is sized for
    // paper-scale density; here it would shatter every hil bucket into
    // single-point cells. 64 coarse cells keep buckets full and the widened
    // range scan selective enough.
    layout.hilbert_shift = 20;
    options.bucket = layout;
  }

  auto store = std::make_unique<st::StStore>(options);
  Status s = store->Setup();
  if (!s.ok()) {
    fprintf(stderr, "store setup failed: %s\n", s.ToString().c_str());
    exit(1);
  }

  Stopwatch load_timer;
  bson::Document doc;
  uint64_t loaded = 0;
  if (dataset == Dataset::kR) {
    workload::TrajectoryOptions traj;
    traj.num_records = config.r_docs;
    traj.seed = config.seed ^ 0x9e37ULL;
    workload::TrajectoryGenerator gen(traj);
    while (gen.Next(&doc)) {
      s = store->Insert(std::move(doc));
      if (!s.ok()) {
        fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
        exit(1);
      }
      ++loaded;
    }
  } else {
    workload::UniformOptions uni;
    uni.num_records = config.s_docs;
    uni.seed = config.seed ^ 0x51aULL;
    workload::UniformGenerator gen(uni);
    while (gen.Next(&doc)) {
      s = store->Insert(std::move(doc));
      if (!s.ok()) {
        fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
        exit(1);
      }
      ++loaded;
    }
  }
  s = store->FinishLoad();
  if (!s.ok()) {
    fprintf(stderr, "balance failed: %s\n", s.ToString().c_str());
    exit(1);
  }
  if (config.verbose) {
    fprintf(stderr,
            "[load] %s/%s: %" PRIu64 " docs in %.1fs, %zu chunks\n",
            st::ApproachName(kind), DatasetName(dataset), loaded,
            load_timer.ElapsedMillis() / 1000.0,
            store->cluster().chunks().num_chunks());
  }
  return store;
}

QueryMeasurement MeasureQuery(const st::StStore& store,
                              const workload::StQuerySpec& spec,
                              const BenchConfig& config) {
  // With --batch=N the measured runs stream through the cursor path in
  // N-document getMore rounds (batches are consumed and dropped); with the
  // default 0 they use the classic single-round drain. Counts and modeled
  // time are identical either way — the streaming columns
  // (first_result_millis, bytes_materialized) are what batching moves.
  const auto run = [&] {
    st::StCursorOptions cursor_options;
    cursor_options.batch_size = config.batch_size;
    if (config.batch_size == 0) {
      return store.Query(spec.rect, spec.t_begin_ms, spec.t_end_ms);
    }
    st::StCursor cursor = store.OpenQuery(spec.rect, spec.t_begin_ms,
                                          spec.t_end_ms, cursor_options);
    while (!cursor.exhausted()) (void)cursor.NextBatch();
    return cursor.Summary();
  };

  QueryMeasurement m;
  m.query_name = spec.name;
  for (int i = 0; i < config.warm_runs; ++i) {
    (void)run();
  }
  double total_ms = 0.0, total_cover_ms = 0.0, total_first_ms = 0.0;
  for (int i = 0; i < config.timed_runs; ++i) {
    const st::StQueryResult r = run();
    total_ms += r.cluster.modeled_millis;
    total_cover_ms += r.translated.cover_millis;
    total_first_ms += r.cluster.first_result_millis;
    if (r.translated.cache_hit) ++m.cover_cache_hits;
    if (i + 1 == config.timed_runs) {
      m.n_results = r.cluster.n_returned;
      m.nodes = r.cluster.nodes_contacted;
      m.max_keys = r.cluster.max_keys_examined;
      m.max_docs = r.cluster.max_docs_examined;
      m.cover_ranges = r.translated.num_ranges;
      m.cover_singletons = r.translated.num_singletons;
      m.bytes_materialized = r.cluster.bytes_materialized;
      for (const cluster::ShardQueryReport& rep : r.cluster.shard_reports) {
        m.winning_indexes.push_back(rep.winning_index);
      }
    }
  }
  m.avg_millis = total_ms / config.timed_runs;
  m.avg_cover_millis = total_cover_ms / config.timed_runs;
  m.first_result_millis = total_first_ms / config.timed_runs;
  return m;
}

void PrintPanel(const std::string& title, const std::string& metric,
                const std::vector<std::string>& approach_names,
                const std::vector<std::vector<std::string>>& values,
                const std::vector<std::string>& query_names) {
  printf("\n%s — %s\n", title.c_str(), metric.c_str());
  printf("%-8s", "query");
  for (const std::string& name : approach_names) {
    printf(" %14s", name.c_str());
  }
  printf("\n");
  for (size_t q = 0; q < query_names.size(); ++q) {
    printf("%-8s", query_names[q].c_str());
    for (size_t a = 0; a < approach_names.size(); ++a) {
      printf(" %14s", values[a][q].c_str());
    }
    printf("\n");
  }
}

std::string Fmt(double v, int decimals) { return FormatFixed(v, decimals); }

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

bool WriteBenchJson(const std::string& path, const std::string& bench_name,
                    const BenchConfig& config,
                    const std::vector<BenchJsonEntry>& entries) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  fprintf(f, "{\n  \"bench\": \"%s\",\n", JsonEscape(bench_name).c_str());
  fprintf(f,
          "  \"config\": {\"r_docs\": %" PRIu64 ", \"s_docs\": %" PRIu64
          ", \"shards\": %d, \"warm_runs\": %d, \"timed_runs\": %d, "
          "\"seed\": %" PRIu64 ", \"parallel_fanout\": %s, "
          "\"batch_size\": %zu},\n",
          config.r_docs, config.s_docs, config.num_shards, config.warm_runs,
          config.timed_runs, config.seed,
          config.parallel_fanout ? "true" : "false", config.batch_size);
  fprintf(f, "  \"queries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const BenchJsonEntry& e = entries[i];
    fprintf(f,
            "    {\"approach\": \"%s\", \"dataset\": \"%s\", "
            "\"suite\": \"%s\", \"query\": \"%s\", "
            "\"n_results\": %" PRIu64 ", \"nodes\": %d, "
            "\"max_keys\": %" PRIu64 ", \"max_docs\": %" PRIu64 ", "
            "\"avg_millis\": %.6f, \"avg_cover_millis\": %.6f, "
            "\"cover_ranges\": %zu, \"cover_singletons\": %zu, "
            "\"cover_cache_hits\": %d, "
            "\"bytes_materialized\": %" PRIu64 ", "
            "\"first_result_millis\": %.6f}%s\n",
            JsonEscape(e.approach).c_str(), JsonEscape(e.dataset).c_str(),
            JsonEscape(e.suite).c_str(), JsonEscape(e.m.query_name).c_str(),
            e.m.n_results, e.m.nodes, e.m.max_keys, e.m.max_docs,
            e.m.avg_millis, e.m.avg_cover_millis, e.m.cover_ranges,
            e.m.cover_singletons, e.m.cover_cache_hits,
            e.m.bytes_materialized, e.m.first_result_millis,
            i + 1 == entries.size() ? "" : ",");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  return true;
}

double Percentile(std::vector<double> values, double p) {
  return PercentileOf(std::move(values), p);
}

void MeasureColdScan(const st::StStore& store, const DatasetInfo& info,
                     PerfSummary* row) {
  // The scan query: a city-scale rectangle over a quarter of the time span.
  // Fractions of the dataset MBR, placed so the R set's box lands on the
  // Athens metro hotspot (the paper's rect queries) — selective enough that
  // bucket-level pruning has something to prune, identical for both
  // layouts. A full scan cannot skip a row document without parsing it; a
  // bucket document carries its extent outside the compressed columns.
  const double lon_span = info.mbr.hi.lon - info.mbr.lo.lon;
  const double lat_span = info.mbr.hi.lat - info.mbr.lo.lat;
  const geo::Rect rect{{info.mbr.lo.lon + 0.42 * lon_span,
                        info.mbr.lo.lat + 0.40 * lat_span},
                       {info.mbr.lo.lon + 0.55 * lon_span,
                        info.mbr.lo.lat + 0.50 * lat_span}};
  const int64_t span_ms = info.t_end_ms - info.t_begin_ms;
  const int64_t t0 = info.t_begin_ms + span_ms / 2;
  const int64_t t1 = info.t_begin_ms + span_ms * 3 / 4;

  // Untimed: lay the collection out as its on-disk image — the exact 32 KB
  // LZ blocks CollectionStats::compressed_bytes accounts (Collection's
  // kBlockSize), in record order, across all shards.
  constexpr size_t kBlockSize = 32 * 1024;
  std::vector<std::string> blocks;
  std::string block;
  block.reserve(kBlockSize * 2);
  for (const auto& shard : store.cluster().shards()) {
    shard->collection().records().ForEach(
        [&](storage::RecordId, const bson::Document& doc) {
          block += bson::EncodeBson(doc);
          if (block.size() >= kBlockSize) {
            blocks.push_back(LzCompress(block));
            block.clear();
          }
        });
    if (!block.empty()) {
      blocks.push_back(LzCompress(block));
      block.clear();
    }
  }

  std::vector<query::ExprPtr> conjuncts;
  conjuncts.push_back(query::MakeCmp("date", query::CmpOp::kGte,
                                     bson::Value::DateTime(t0)));
  conjuncts.push_back(query::MakeCmp("date", query::CmpOp::kLte,
                                     bson::Value::DateTime(t1)));
  conjuncts.push_back(query::MakeGeoWithinBox("location", rect));
  const query::ExprPtr expr = query::MakeAnd(std::move(conjuncts));

  const bool bucketed = store.bucketed();
  storage::BucketLayout layout;
  query::BucketPruneSpec spec;
  if (bucketed) {
    layout = store.bucket_catalog()->layout();
    spec = query::ExtractBucketPredicates(expr, layout);
  }

  // Timed: decompress every block, parse every stored document, answer the
  // query. The bucket path checks the pruning metadata before touching the
  // columns, counts covered buckets straight off the metadata, and answers
  // the survivors columnar-first (ts/lon/lat only — ids and payload
  // residuals stay encoded), falling back to a full decode + filter only
  // for buckets without a location column. The row path has no such
  // shortcut: a BSON document must be parsed before it can be matched.
  // Min of three repetitions: each repetition redoes every decompress,
  // parse and filter (the store state stays cold — nothing is cached
  // between passes), so the minimum strips allocator and branch-predictor
  // warm-up without warming the thing being measured.
  const auto die = [](const char* what, const Status& s) {
    fprintf(stderr, "cold scan: %s: %s\n", what, s.ToString().c_str());
    exit(1);
  };
  uint64_t scanned_points = 0;
  uint64_t matches = 0;
  const auto scan_image = [&] {
    scanned_points = 0;
    matches = 0;
    for (const std::string& compressed : blocks) {
      const Result<std::string> raw = LzDecompress(compressed);
      if (!raw.ok()) die("block decompress", raw.status());
      const std::string_view bytes = *raw;
      size_t off = 0;
      while (off + 4 <= bytes.size()) {
        // BSON's length prefix counts itself; each document is one slice.
        const unsigned char* p =
            reinterpret_cast<const unsigned char*>(bytes.data() + off);
        const size_t len = static_cast<size_t>(p[0]) | (size_t{p[1]} << 8) |
                           (size_t{p[2]} << 16) | (size_t{p[3]} << 24);
        if (len < 5 || off + len > bytes.size()) {
          die("block framing", Status::Corruption("bad BSON length"));
        }
        const Result<bson::Document> doc =
            bson::DecodeBson(bytes.substr(off, len));
        if (!doc.ok()) die("document parse", doc.status());
        off += len;
        if (!bucketed) {
          ++scanned_points;
          if (expr->Matches(*doc)) ++matches;
          continue;
        }
        const Result<storage::BucketMeta> meta =
            storage::ParseBucketMeta(*doc);
        if (!meta.ok()) die("bucket meta", meta.status());
        scanned_points += meta->num_points;
        if (!spec.MayContain(*meta)) continue;
        if (spec.Covers(*meta)) {
          // Every point in a covered bucket matches; the count comes off
          // the metadata with no column access at all.
          matches += meta->num_points;
          continue;
        }
        // Columnar-first: the predicate is date range + rect, which the
        // ts/lon/lat columns answer exactly (they are bit-exact with the
        // reconstructed points) — the _id column and payload residuals
        // never get decoded. Buckets without a location column (some
        // point had a non-canonical location) fall back to full decode.
        const Result<storage::BucketTimeLoc> cols =
            storage::DecodeBucketTimeLoc(*doc);
        if (!cols.ok()) die("bucket columns", cols.status());
        if (cols->lon.size() == cols->ts.size()) {
          for (size_t i = 0; i < cols->ts.size(); ++i) {
            if (cols->ts[i] >= t0 && cols->ts[i] <= t1 &&
                rect.Contains(geo::Point{cols->lon[i], cols->lat[i]})) {
              ++matches;
            }
          }
          continue;
        }
        const Result<std::vector<bson::Document>> points =
            storage::DecodeBucket(*doc, layout);
        if (!points.ok()) die("bucket decode", points.status());
        for (const bson::Document& point : *points) {
          if (expr->Matches(point)) ++matches;
        }
      }
    }
  };
  double best_millis = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch cold;
    scan_image();
    const double rep_millis = cold.ElapsedMillis();
    if (rep == 0 || rep_millis < best_millis) best_millis = rep_millis;
  }
  row->cold_scan_millis = best_millis;
  row->cold_scan_matches = matches;
  const double secs = row->cold_scan_millis / 1000.0;
  row->docs_per_sec_scanned =
      secs > 0.0 ? static_cast<double>(scanned_points) / secs : 0.0;
}

bool WritePerfJson(const std::string& path, const std::string& bench_name,
                   const BenchConfig& config,
                   const std::vector<PerfSummary>& rows) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  fprintf(f, "{\n  \"bench\": \"%s\",\n", JsonEscape(bench_name).c_str());
  fprintf(f,
          "  \"config\": {\"r_docs\": %" PRIu64 ", \"s_docs\": %" PRIu64
          ", \"shards\": %d, \"warm_runs\": %d, \"timed_runs\": %d, "
          "\"seed\": %" PRIu64 ", \"bucket\": %s},\n",
          config.r_docs, config.s_docs, config.num_shards, config.warm_runs,
          config.timed_runs, config.seed, config.bucket ? "true" : "false");
  fprintf(f, "  \"summaries\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const PerfSummary& s = rows[i];
    char durability[160] = "";
    if (s.insert_docs_per_sec > 0.0 || s.recovery_millis > 0.0) {
      snprintf(durability, sizeof(durability),
               ", \"insert_docs_per_sec\": %.1f, "
               "\"recovery_millis\": %.3f, "
               "\"recovery_sec_per_gb\": %.3f",
               s.insert_docs_per_sec, s.recovery_millis,
               s.recovery_sec_per_gb);
    }
    fprintf(f,
            "    {\"label\": \"%s\", \"dataset_docs\": %" PRIu64 ", "
            "\"docs_per_sec_scanned\": %.1f, "
            "\"record_store_bytes\": %" PRIu64 ", "
            "\"index_bytes\": %" PRIu64 ", "
            "\"compression_ratio\": %.3f, "
            "\"cold_scan_millis\": %.3f, "
            "\"cold_scan_matches\": %" PRIu64 ", "
            "\"p50_millis\": %.6f, \"p95_millis\": %.6f%s}%s\n",
            JsonEscape(s.label).c_str(), s.dataset_docs,
            s.docs_per_sec_scanned, s.record_store_bytes, s.index_bytes,
            s.compression_ratio, s.cold_scan_millis, s.cold_scan_matches,
            s.p50_millis, s.p95_millis, durability,
            i + 1 == rows.size() ? "" : ",");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  return true;
}

}  // namespace stix::bench
