// Ablation of the paper's design choice of the Hilbert curve over Z-order
// (GeoHash's bit interleaving) for the 1D mapping, quantifying the
// clustering advantage [Moon et al., TKDE 2001] on the paper's own query
// rectangles: number of 1D ranges per covering (the $or fan-out and the
// number of disk seek positions) at several curve orders.

#include <cstdio>

#include "bench/bench_common.h"
#include "geo/covering.h"
#include "geo/hilbert.h"
#include "geo/zorder.h"

namespace stix::bench {
namespace {

void Report(const char* label, const geo::Rect& rect, const geo::Rect& domain) {
  printf("\n%s\n", label);
  printf("%-6s %14s %14s %14s %10s\n", "order", "hilbert ranges",
         "zorder ranges", "cells", "z/h ratio");
  for (int order : {8, 10, 12, 13, 14}) {
    const geo::HilbertCurve hilbert(order, domain);
    const geo::ZOrderCurve zorder(order, domain);
    const geo::Covering ch = geo::CoverRect(hilbert, rect);
    const geo::Covering cz = geo::CoverRect(zorder, rect);
    printf("%-6d %14zu %14zu %14llu %10.2f\n", order, ch.ranges.size(),
           cz.ranges.size(),
           static_cast<unsigned long long>(ch.num_cells),
           ch.ranges.empty()
               ? 0.0
               : static_cast<double>(cz.ranges.size()) /
                     static_cast<double>(ch.ranges.size()));
  }
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  printf("== bench_curve_ablation ==\n");
  printf("design ablation: Hilbert vs Z-order 1D mapping "
         "(DESIGN.md Section 5, choice 1)\n");
  printf("Both curves cover the same cells for a rectangle; fewer 1D ranges "
         "= fewer $or arms and fewer B-tree seek positions.\n");

  const DatasetInfo r_info = InfoFor(Dataset::kR, config);
  const DatasetInfo s_info = InfoFor(Dataset::kS, config);
  Report("small query rect, curve over the globe (hil)",
         workload::SmallQueryRect(), geo::GlobeRect());
  Report("big query rect, curve over the globe (hil)",
         workload::BigQueryRect(), geo::GlobeRect());
  Report("big query rect, curve over the R MBR (hil*)",
         workload::BigQueryRect(), r_info.mbr);
  Report("big query rect, curve over the S MBR (hil*)",
         workload::BigQueryRect(), s_info.mbr);
  return 0;
}

}  // namespace
}  // namespace stix::bench

int main(int argc, char** argv) { return stix::bench::Main(argc, argv); }
