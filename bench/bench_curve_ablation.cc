// Curve lab: ablation of the 1D linearization behind hilbertIndex across
// every registered curve (the registry supplies the list — labels come from
// Curve2D::name(), never a hardcoded pair) on two synthetic workloads:
//
//   uniform  — points and query rects uniform over the domain;
//   hotspot  — Gaussian hot spots holding most points, queries concentrated
//              on them (the skewed regime the entropy-maximizing GeoHash
//              fits its equi-depth boundaries to).
//
// Per (curve, workload, order) the bench reports, averaged over the query
// set against a sorted-d "index" of the workload's points:
//
//   keys-examined    — indexed points whose d falls inside the exact
//                      covering (true matches + covering false positives:
//                      the seek+scan work the store would do);
//   ranges-per-cover — exact covering ranges (the $or fan-out);
//   run-length       — covered cells per range (mean contiguous-run length,
//                      Moon et al.'s clustering-quality measure);
//   keys@B/ranges@B  — the same under the coarse budget (max_ranges = B),
//                      checking both strategies' budget contract.
//
// Every covering is also verified sound: an in-rect point whose d escapes
// the covering is counted as a violation and fails the --check gate. With
// --json=FILE the table is written as BENCH_curve.json; --check turns the
// report into a gate (>= 4 curves on both workloads, zero soundness/budget
// violations, and EntropyGeoHash beating plain Z-order/GeoHash on
// keys-examined for the hotspot workload).

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "geo/covering.h"
#include "geo/curve_registry.h"

namespace stix::bench {
namespace {

constexpr int kOrders[] = {8, 12};
// The crossover gate runs at the coarse order, where cells hold many points
// and the mapping choice matters; at order 12 the grid has 16.7M cells for
// 100k points, so every curve's exact covering degenerates to ~true matches.
constexpr int kGateOrder = 8;
constexpr int kNumPoints = 100000;
constexpr int kNumQueries = 48;
constexpr size_t kBudget = 64;

// A regional deployment extent (hil*-style dataset MBR).
const geo::Rect kDomain{{-10.0, -10.0}, {10.0, 10.0}};

struct Workload {
  std::string name;
  std::vector<geo::Point> points;
  std::vector<geo::Rect> queries;
};

geo::Rect QueryRectAround(double lon, double lat, double half_w,
                          double half_h) {
  geo::Rect r;
  r.lo.lon = std::max(kDomain.lo.lon, lon - half_w);
  r.lo.lat = std::max(kDomain.lo.lat, lat - half_h);
  r.hi.lon = std::min(kDomain.hi.lon, lon + half_w);
  r.hi.lat = std::min(kDomain.hi.lat, lat + half_h);
  return r;
}

Workload MakeUniform(uint64_t seed) {
  Workload w;
  w.name = "uniform";
  Rng rng(seed);
  w.points.reserve(kNumPoints);
  for (int i = 0; i < kNumPoints; ++i) {
    w.points.push_back({rng.NextDouble(kDomain.lo.lon, kDomain.hi.lon),
                        rng.NextDouble(kDomain.lo.lat, kDomain.hi.lat)});
  }
  for (int i = 0; i < kNumQueries; ++i) {
    const double frac = rng.NextDouble(0.01, 0.06);
    w.queries.push_back(
        QueryRectAround(rng.NextDouble(kDomain.lo.lon, kDomain.hi.lon),
                        rng.NextDouble(kDomain.lo.lat, kDomain.hi.lat),
                        kDomain.width() * frac, kDomain.height() * frac));
  }
  return w;
}

Workload MakeHotspot(uint64_t seed) {
  Workload w;
  w.name = "hotspot";
  Rng rng(seed);
  struct Hot {
    double lon, lat, sigma_lon, sigma_lat;
  };
  std::vector<Hot> hots;
  for (int i = 0; i < 3; ++i) {
    hots.push_back(Hot{rng.NextDouble(kDomain.lo.lon, kDomain.hi.lon),
                       rng.NextDouble(kDomain.lo.lat, kDomain.hi.lat),
                       kDomain.width() * rng.NextDouble(0.01, 0.04),
                       kDomain.height() * rng.NextDouble(0.01, 0.04)});
  }
  const auto clamp_lon = [](double v) {
    return std::min(kDomain.hi.lon, std::max(kDomain.lo.lon, v));
  };
  const auto clamp_lat = [](double v) {
    return std::min(kDomain.hi.lat, std::max(kDomain.lo.lat, v));
  };
  w.points.reserve(kNumPoints);
  for (int i = 0; i < kNumPoints; ++i) {
    if (rng.NextBool(0.2)) {
      w.points.push_back({rng.NextDouble(kDomain.lo.lon, kDomain.hi.lon),
                          rng.NextDouble(kDomain.lo.lat, kDomain.hi.lat)});
    } else {
      const Hot& hot = hots[rng.NextBounded(hots.size())];
      w.points.push_back(
          {clamp_lon(hot.lon + rng.NextGaussian() * hot.sigma_lon),
           clamp_lat(hot.lat + rng.NextGaussian() * hot.sigma_lat)});
    }
  }
  for (int i = 0; i < kNumQueries; ++i) {
    if (rng.NextBool(0.2)) {
      const double frac = rng.NextDouble(0.01, 0.06);
      w.queries.push_back(
          QueryRectAround(rng.NextDouble(kDomain.lo.lon, kDomain.hi.lon),
                          rng.NextDouble(kDomain.lo.lat, kDomain.hi.lat),
                          kDomain.width() * frac, kDomain.height() * frac));
    } else {
      const Hot& hot = hots[rng.NextBounded(hots.size())];
      w.queries.push_back(QueryRectAround(
          clamp_lon(hot.lon + rng.NextGaussian() * hot.sigma_lon),
          clamp_lat(hot.lat + rng.NextGaussian() * hot.sigma_lat),
          hot.sigma_lon * rng.NextDouble(0.5, 2.0),
          hot.sigma_lat * rng.NextDouble(0.5, 2.0)));
    }
  }
  return w;
}

struct CurveRow {
  std::string curve;  ///< Curve2D::name() — never a hardcoded label.
  std::string workload;
  int order = 0;
  double keys_examined = 0.0;
  double true_matches = 0.0;
  double ranges_per_cover = 0.0;
  double run_length = 0.0;
  double keys_budget = 0.0;
  double ranges_budget = 0.0;
  int soundness_violations = 0;
  int budget_violations = 0;
};

// Indexed keys the covering touches: for each range, the count of stored d
// values inside it (binary search over the sorted index).
uint64_t KeysExamined(const std::vector<uint64_t>& index,
                      const geo::Covering& covering) {
  uint64_t keys = 0;
  for (const geo::DRange& r : covering.ranges) {
    const auto lo = std::lower_bound(index.begin(), index.end(), r.lo);
    const auto hi = std::upper_bound(index.begin(), index.end(), r.hi);
    keys += static_cast<uint64_t>(hi - lo);
  }
  return keys;
}

CurveRow MeasureCurve(const geo::Curve2D& curve, const Workload& w,
                      int order) {
  CurveRow row;
  row.curve = curve.name();
  row.workload = w.name;
  row.order = order;

  std::vector<uint64_t> d_of_point(w.points.size());
  for (size_t i = 0; i < w.points.size(); ++i) {
    d_of_point[i] = curve.PointToD(w.points[i].lon, w.points[i].lat);
  }
  std::vector<uint64_t> index = d_of_point;
  std::sort(index.begin(), index.end());

  for (const geo::Rect& q : w.queries) {
    const geo::Covering exact = geo::CoverRect(curve, q);
    geo::CoveringOptions budget_options;
    budget_options.max_ranges = kBudget;
    const geo::Covering coarse = geo::CoverRect(curve, q, budget_options);

    row.keys_examined += static_cast<double>(KeysExamined(index, exact));
    row.keys_budget += static_cast<double>(KeysExamined(index, coarse));
    row.ranges_per_cover += static_cast<double>(exact.ranges.size());
    row.ranges_budget += static_cast<double>(coarse.ranges.size());
    if (!exact.ranges.empty()) {
      row.run_length += static_cast<double>(exact.num_cells) /
                        static_cast<double>(exact.ranges.size());
    }
    if (coarse.ranges.size() > kBudget) ++row.budget_violations;

    for (size_t i = 0; i < w.points.size(); ++i) {
      if (!q.Contains(w.points[i])) continue;
      row.true_matches += 1.0;
      if (!geo::CoveringContains(exact, d_of_point[i]) ||
          !geo::CoveringContains(coarse, d_of_point[i])) {
        ++row.soundness_violations;
      }
    }
  }
  const double n = static_cast<double>(w.queries.size());
  row.keys_examined /= n;
  row.keys_budget /= n;
  row.ranges_per_cover /= n;
  row.ranges_budget /= n;
  row.run_length /= n;
  row.true_matches /= n;
  return row;
}

void PrintRows(const Workload& w, int order,
               const std::vector<CurveRow>& rows) {
  printf("\nworkload=%s order=%d (%d points, %d queries)\n", w.name.c_str(),
         order, kNumPoints, kNumQueries);
  printf("%-10s %12s %10s %14s %10s %10s %10s\n", "curve", "keys-exam",
         "matches", "ranges/cover", "run-len", "keys@64", "ranges@64");
  for (const CurveRow& r : rows) {
    printf("%-10s %12.1f %10.1f %14.1f %10.1f %10.1f %10.1f\n",
           r.curve.c_str(), r.keys_examined, r.true_matches,
           r.ranges_per_cover, r.run_length, r.keys_budget, r.ranges_budget);
  }
}

const CurveRow* FindRow(const std::vector<CurveRow>& rows, const char* curve,
                        const char* workload, int order) {
  for (const CurveRow& r : rows) {
    if (r.curve == curve && r.workload == workload && r.order == order) {
      return &r;
    }
  }
  return nullptr;
}

bool WriteCurveJson(const std::string& path, const BenchConfig& config,
                    const std::vector<CurveRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    fprintf(stderr, "bench_curve_ablation: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n\"bench\": \"curve_ablation\",\n\"config\": {\"points\": "
      << kNumPoints << ", \"queries\": " << kNumQueries
      << ", \"budget\": " << kBudget << ", \"gate_order\": " << kGateOrder
      << ", \"seed\": " << config.seed << "},\n\"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const CurveRow& r = rows[i];
    char buf[512];
    snprintf(buf, sizeof(buf),
             "  {\"curve\": \"%s\", \"workload\": \"%s\", \"order\": %d, "
             "\"keys_examined\": %.2f, \"true_matches\": %.2f, "
             "\"ranges_per_cover\": %.2f, \"run_length\": %.2f, "
             "\"keys_budget\": %.2f, \"ranges_budget\": %.2f, "
             "\"soundness_violations\": %d, \"budget_violations\": %d}%s\n",
             r.curve.c_str(), r.workload.c_str(), r.order, r.keys_examined,
             r.true_matches, r.ranges_per_cover, r.run_length, r.keys_budget,
             r.ranges_budget, r.soundness_violations, r.budget_violations,
             i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  const CurveRow* ego = FindRow(rows, "egeohash", "hotspot", kGateOrder);
  const CurveRow* zo = FindRow(rows, "zorder", "hotspot", kGateOrder);
  out << "],\n\"gate\": {\"egeohash_keys_hotspot\": "
      << (ego != nullptr ? ego->keys_examined : -1.0)
      << ", \"zorder_keys_hotspot\": "
      << (zo != nullptr ? zo->keys_examined : -1.0) << "}\n}\n";
  return out.good();
}

int Main(int argc, char** argv) {
  bool check = false;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  const BenchConfig config =
      BenchConfig::FromArgs(static_cast<int>(rest.size()), rest.data());

  printf("== bench_curve_ablation ==\n");
  printf("curve lab: every registered 1D linearization x {uniform, hotspot} "
         "workloads (DESIGN.md Section 5k)\n");
  printf("keys-examined = true matches + covering false positives against a "
         "sorted-d index of %d points.\n", kNumPoints);

  const Workload workloads[] = {MakeUniform(config.seed),
                                MakeHotspot(config.seed + 1)};

  std::vector<CurveRow> rows;
  for (const Workload& w : workloads) {
    // EGeoHash fits its equi-depth boundaries from a sample of the same
    // workload it serves (every 64th point), mirroring the store's
    // fit-from-sample path.
    std::vector<geo::Point> fit_sample;
    for (size_t i = 0; i < w.points.size(); i += 64) {
      fit_sample.push_back(w.points[i]);
    }
    for (const int order : kOrders) {
      std::vector<CurveRow> order_rows;
      for (const geo::CurveKind kind : geo::AllCurveKinds()) {
        const std::unique_ptr<geo::Curve2D> curve =
            geo::MakeCurve(kind, order, kDomain, fit_sample);
        order_rows.push_back(MeasureCurve(*curve, w, order));
      }
      PrintRows(w, order, order_rows);
      rows.insert(rows.end(), order_rows.begin(), order_rows.end());
    }
  }

  // Crossover summary (the ROADMAP's ask): per workload at the gate order,
  // which curve minimizes each metric.
  printf("\ncrossover (order %d):\n", kGateOrder);
  for (const Workload& w : workloads) {
    const CurveRow* best_keys = nullptr;
    const CurveRow* best_ranges = nullptr;
    const CurveRow* best_run = nullptr;
    for (const CurveRow& r : rows) {
      if (r.workload != w.name || r.order != kGateOrder) continue;
      if (best_keys == nullptr || r.keys_examined < best_keys->keys_examined)
        best_keys = &r;
      if (best_ranges == nullptr ||
          r.ranges_per_cover < best_ranges->ranges_per_cover)
        best_ranges = &r;
      if (best_run == nullptr || r.run_length > best_run->run_length)
        best_run = &r;
    }
    if (best_keys != nullptr) {
      printf("  %-8s keys-examined: %s (%.1f)  ranges: %s (%.1f)  "
             "run-len: %s (%.1f)\n",
             w.name.c_str(), best_keys->curve.c_str(),
             best_keys->keys_examined, best_ranges->curve.c_str(),
             best_ranges->ranges_per_cover, best_run->curve.c_str(),
             best_run->run_length);
    }
  }

  if (!config.json_path.empty() &&
      !WriteCurveJson(config.json_path, config, rows)) {
    return 1;
  }

  if (check) {
    int failures = 0;
    std::vector<std::string> gate_curves;
    for (const Workload& w : workloads) {
      size_t count = 0;
      for (const CurveRow& r : rows) {
        if (r.workload == w.name && r.order == kGateOrder) ++count;
      }
      if (count < 4) {
        printf("GATE FAIL: only %zu curves measured on %s (need >= 4)\n",
               count, w.name.c_str());
        ++failures;
      }
    }
    int soundness = 0, budget = 0;
    for (const CurveRow& r : rows) {
      soundness += r.soundness_violations;
      budget += r.budget_violations;
    }
    if (soundness > 0) {
      printf("GATE FAIL: %d in-rect points escaped their covering\n",
             soundness);
      ++failures;
    }
    if (budget > 0) {
      printf("GATE FAIL: %d coverings exceeded the max_ranges budget\n",
             budget);
      ++failures;
    }
    const CurveRow* ego = FindRow(rows, "egeohash", "hotspot", kGateOrder);
    const CurveRow* zo = FindRow(rows, "zorder", "hotspot", kGateOrder);
    if (ego == nullptr || zo == nullptr ||
        ego->keys_examined >= zo->keys_examined) {
      printf("GATE FAIL: egeohash keys-examined (%.1f) must beat zorder "
             "(%.1f) on the hotspot workload\n",
             ego != nullptr ? ego->keys_examined : -1.0,
             zo != nullptr ? zo->keys_examined : -1.0);
      ++failures;
    }
    if (failures > 0) return 1;
    printf("GATE OK: %zu rows, egeohash %.1f < zorder %.1f keys on "
           "hotspot\n",
           rows.size(), ego->keys_examined, zo->keys_examined);
  }
  return 0;
}

}  // namespace
}  // namespace stix::bench

int main(int argc, char** argv) { return stix::bench::Main(argc, argv); }
