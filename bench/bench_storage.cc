// Reproduces the paper's storage accounting:
//   Table 6: data size of R and S in the store, bsl vs hil(*) (the Hilbert
//            approaches pay for the extra hilbertIndex field)
//   Figure 14: total index sizes per approach, default distribution vs
//              zone ranges, for R and S — including the _id-index growth
//              after zone migration shuffles insertion order (prefix
//              compression, paper Appendix A.3).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "common/fs.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace stix::bench {
namespace {

constexpr st::ApproachKind kApproaches[] = {
    st::ApproachKind::kBslST, st::ApproachKind::kBslTS,
    st::ApproachKind::kHil, st::ApproachKind::kHilStar};

struct ApproachSizes {
  uint64_t data_logical = 0;
  uint64_t data_compressed = 0;
  std::map<std::string, uint64_t> index_default;
  std::map<std::string, uint64_t> index_zones;
};

void PrintIndexFigure(const char* panel, Dataset dataset, bool zones,
                      const std::map<st::ApproachKind, ApproachSizes>& sizes) {
  printf("\nFigure 14%s: total size of indexes, %s set, %s\n", panel,
         DatasetName(dataset), zones ? "zone ranges" : "default distribution");
  for (const st::ApproachKind kind : kApproaches) {
    const ApproachSizes& s = sizes.at(kind);
    const auto& index_sizes = zones ? s.index_zones : s.index_default;
    uint64_t total = 0;
    printf("  %-6s", st::ApproachName(kind));
    for (const auto& [name, bytes] : index_sizes) {
      printf("  %s=%s", name.c_str(), HumanBytes(bytes).c_str());
      total += bytes;
    }
    printf("  | total=%s\n", HumanBytes(total).c_str());
  }
}

// The write-side cost of durability and the read-side cost of recovery.
// Three stores load the same R-set workload: WAL off (the in-memory
// baseline), WAL with sync_every=1 (every acked insert on disk before it
// returns) and WAL with a 64-commit group window. Insert throughput
// quantifies the WAL tax; the durable variants are then dropped *without* a
// clean shutdown and timed through StStore::Recover — full WAL replay, the
// worst case — normalized per GB of on-disk state so the number stays
// comparable as the scale knobs move.
void RunDurabilityBench(const BenchConfig& config,
                        std::vector<PerfSummary>* summaries) {
  struct Variant {
    const char* label;
    bool durable;
    int sync_every;
  };
  constexpr Variant kVariants[] = {{"wal-off", false, 0},
                                   {"wal-sync-1", true, 1},
                                   {"wal-group-64", true, 64}};
  const uint64_t docs = std::min<uint64_t>(config.r_docs, 50000);
  const DatasetInfo info = InfoFor(Dataset::kR, config);
  printf("\ndurability: insert throughput and crash recovery (%" PRIu64
         " docs, %d shards)\n",
         docs, config.num_shards);
  for (const Variant& v : kVariants) {
    std::string data_dir;
    if (v.durable) {
      const Result<std::string> made = MakeTempDir("stix_bench_wal");
      if (!made.ok()) {
        fprintf(stderr, "temp dir failed: %s\n",
                made.status().ToString().c_str());
        return;
      }
      data_dir = *made;
    }
    st::StStoreOptions options;
    options.approach.kind = st::ApproachKind::kHil;
    options.approach.dataset_mbr = info.mbr;
    options.cluster.num_shards = config.num_shards;
    options.cluster.chunk_max_bytes = config.chunk_max_bytes;
    options.cluster.seed = config.seed;
    options.load_clock_begin_ms = info.t_begin_ms;
    options.cluster.durability.data_dir = data_dir;
    options.cluster.durability.wal.sync_every_commits =
        v.durable ? v.sync_every : 1;

    PerfSummary row;
    row.label = std::string("durability/") + v.label;
    row.dataset_docs = docs;
    {
      st::StStore store(options);
      if (!store.Setup().ok()) {
        fprintf(stderr, "durability store setup failed\n");
        return;
      }
      workload::TrajectoryOptions traj;
      traj.num_records = docs;
      traj.seed = config.seed ^ 0x9e37ULL;
      workload::TrajectoryGenerator gen(traj);
      bson::Document doc;
      Stopwatch timer;
      while (gen.Next(&doc)) {
        if (!store.Insert(std::move(doc)).ok()) {
          fprintf(stderr, "durability insert failed\n");
          return;
        }
      }
      row.insert_docs_per_sec = static_cast<double>(docs) /
                                (timer.ElapsedMillis() / 1000.0);
      // Dirty shutdown on purpose: no FinishLoad, no Checkpoint — recovery
      // below replays every shard's full WAL.
    }
    printf("  %-14s %12.0f inserts/s", v.label, row.insert_docs_per_sec);
    if (v.durable) {
      uint64_t disk_bytes = 0;
      std::vector<std::string> files = ListDir(data_dir);
      for (int s = 0; s < config.num_shards; ++s) {
        const std::vector<std::string> shard_files =
            ListDir(data_dir + "/shard-" + std::to_string(s));
        files.insert(files.end(), shard_files.begin(), shard_files.end());
      }
      for (const std::string& file : files) {
        const Result<uint64_t> size = FileSize(file);
        if (size.ok()) disk_bytes += *size;
      }
      Stopwatch timer;
      const Result<std::unique_ptr<st::StStore>> recovered =
          st::StStore::Recover(options);
      row.recovery_millis = timer.ElapsedMillis();
      if (!recovered.ok()) {
        fprintf(stderr, "recovery failed: %s\n",
                recovered.status().ToString().c_str());
        return;
      }
      row.recovery_sec_per_gb =
          disk_bytes == 0 ? 0.0
                          : (row.recovery_millis / 1000.0) /
                                (static_cast<double>(disk_bytes) / 1e9);
      printf("   recover %8.1f ms  (%s on disk, %.2f s/GB)",
             row.recovery_millis, HumanBytes(disk_bytes).c_str(),
             row.recovery_sec_per_gb);
      (void)RemoveAll(data_dir);
    }
    printf("\n");
    summaries->push_back(std::move(row));
  }
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  printf("== bench_storage ==\n");
  printf("reproduces: Table 6, Figure 14 (paper Section 5.1 / Appendix A)\n");
  printf("scale: R=%" PRIu64 " docs, S=%" PRIu64 " docs, %d shards\n",
         config.r_docs, config.s_docs, config.num_shards);

  std::vector<PerfSummary> summaries;
  for (const Dataset dataset : {Dataset::kR, Dataset::kS}) {
    std::map<st::ApproachKind, ApproachSizes> sizes;
    for (const st::ApproachKind kind : kApproaches) {
      const auto store = BuildLoadedStore(kind, dataset, config);
      ApproachSizes s;
      const storage::CollectionStats stats =
          store->cluster().ComputeDataStats();
      s.data_logical = stats.logical_bytes;
      s.data_compressed = stats.compressed_bytes;
      s.index_default = store->cluster().ComputeIndexSizes();

      // Perf-trajectory row: footprint split + cold scan + p50/p95 over the
      // small query set, all measured before zones shuffle the placement.
      const DatasetInfo info = InfoFor(dataset, config);
      PerfSummary perf;
      perf.label = std::string(st::ApproachName(kind)) + "/" +
                   DatasetName(dataset) +
                   (config.bucket ? "/bucket" : "/row");
      perf.dataset_docs =
          dataset == Dataset::kR ? config.r_docs : config.s_docs;
      perf.record_store_bytes = stats.compressed_bytes;
      for (const auto& [name, bytes] : s.index_default) {
        perf.index_bytes += bytes;
      }
      perf.compression_ratio =
          stats.compressed_bytes == 0
              ? 0.0
              : static_cast<double>(stats.logical_bytes) /
                    static_cast<double>(stats.compressed_bytes);
      MeasureColdScan(*store, info, &perf);
      std::vector<double> latencies;
      for (const workload::StQuerySpec& spec :
           workload::MakeQuerySet(false, info.t_begin_ms, info.t_end_ms)) {
        latencies.push_back(MeasureQuery(*store, spec, config).avg_millis);
      }
      perf.p50_millis = Percentile(latencies, 50.0);
      perf.p95_millis = Percentile(latencies, 95.0);
      summaries.push_back(std::move(perf));

      const Status zs = store->ConfigureZones();
      if (!zs.ok()) {
        fprintf(stderr, "zones failed: %s\n", zs.ToString().c_str());
        return 1;
      }
      s.index_zones = store->cluster().ComputeIndexSizes();
      sizes.emplace(kind, std::move(s));
    }

    printf("\nTable 6 (%s set): data size in the store\n",
           DatasetName(dataset));
    printf("  %-8s %16s %16s\n", "approach", "BSON bytes", "compressed");
    // bsl row (bslST and bslTS store identical documents).
    const ApproachSizes& bsl = sizes.at(st::ApproachKind::kBslST);
    const ApproachSizes& hil = sizes.at(st::ApproachKind::kHil);
    const ApproachSizes& hil_star = sizes.at(st::ApproachKind::kHilStar);
    printf("  %-8s %16s %16s\n", "bsl",
           HumanBytes(bsl.data_logical).c_str(),
           HumanBytes(bsl.data_compressed).c_str());
    printf("  %-8s %16s %16s\n", "hil",
           HumanBytes(hil.data_logical).c_str(),
           HumanBytes(hil.data_compressed).c_str());
    printf("  %-8s %16s %16s\n", "hil*",
           HumanBytes(hil_star.data_logical).c_str(),
           HumanBytes(hil_star.data_compressed).c_str());
    if (!config.bucket && hil.data_logical <= bsl.data_logical) {
      printf("  !! expected hil > bsl (hilbertIndex field overhead)\n");
    }

    // Resident footprint, record store vs indexes — the two live in
    // different structures (record-store blocks vs B-trees) and the bucket
    // layout moves only the first, so they are reported separately.
    printf("\n  resident bytes (%s set, default distribution)\n",
           DatasetName(dataset));
    printf("  %-8s %16s %16s\n", "approach", "record store", "indexes");
    for (const st::ApproachKind kind : kApproaches) {
      const ApproachSizes& s = sizes.at(kind);
      uint64_t index_total = 0;
      for (const auto& [name, bytes] : s.index_default) index_total += bytes;
      printf("  %-8s %16s %16s\n", st::ApproachName(kind),
             HumanBytes(s.data_compressed).c_str(),
             HumanBytes(index_total).c_str());
    }

    const char* default_panel = dataset == Dataset::kR ? "a" : "c";
    const char* zones_panel = dataset == Dataset::kR ? "b" : "d";
    PrintIndexFigure(default_panel, dataset, /*zones=*/false, sizes);
    PrintIndexFigure(zones_panel, dataset, /*zones=*/true, sizes);

    // The Appendix A.3 effect: zones shuffle documents, _id prefix
    // compression degrades, _id index grows.
    for (const st::ApproachKind kind : kApproaches) {
      const ApproachSizes& s = sizes.at(kind);
      const uint64_t id_default = s.index_default.at("_id_");
      const uint64_t id_zones = s.index_zones.at("_id_");
      printf("  [check] %s/%s _id index: default=%s zones=%s (%+.1f%%)\n",
             st::ApproachName(kind), DatasetName(dataset),
             HumanBytes(id_default).c_str(), HumanBytes(id_zones).c_str(),
             100.0 * (static_cast<double>(id_zones) -
                      static_cast<double>(id_default)) /
                 static_cast<double>(id_default));
    }
  }
  RunDurabilityBench(config, &summaries);
  if (!config.json_path.empty() &&
      !WritePerfJson(config.json_path, "bench_storage", config, summaries)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace stix::bench

int main(int argc, char** argv) { return stix::bench::Main(argc, argv); }
