#include <fstream>

#include <gtest/gtest.h>

#include "cluster/snapshot.h"
#include "common/rng.h"
#include "temp_dir.h"

namespace stix::cluster {
namespace {

using bson::Value;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // dir_ is unique per test case: ctest -j runs cases as concurrent
    // processes, and a shared file races the corruption tests against the
    // load tests.
    path_ = dir_ / "cluster.snap";
    ClusterOptions options;
    options.num_shards = 3;
    options.chunk_max_bytes = 8 * 1024;
    options.seed = 21;
    source_ = std::make_unique<Cluster>(options);
    ASSERT_TRUE(source_
                    ->ShardCollection(ShardKeyPattern(
                        {"hilbertIndex", "date"}, ShardingStrategy::kRange))
                    .ok());
    ASSERT_TRUE(source_
                    ->CreateIndex(index::IndexDescriptor(
                        "location_2dsphere_date_1",
                        {{"location", index::IndexFieldKind::k2dsphere},
                         {"date", index::IndexFieldKind::kAscending}}))
                    .ok());
    Rng rng(5);
    for (int i = 0; i < 1200; ++i) {
      bson::Document doc;
      doc.Append("_id", Value::Int64(i));
      doc.Append("location",
                 Value::MakeDocument(bson::GeoJsonPoint(
                     rng.NextDouble(0, 10), rng.NextDouble(0, 10))));
      doc.Append("date", Value::DateTime(60000LL * i));
      doc.Append("hilbertIndex", Value::Int64(rng.NextInt(0, 50)));
      doc.Append("pad", Value::String(std::string(64, 'x')));
      ASSERT_TRUE(source_->Insert(std::move(doc)).ok());
    }
    source_->Balance();
    ASSERT_TRUE(source_->SetZonesByBucketAuto("hilbertIndex").ok());
  }

  stix::testing::TempDir dir_;
  std::string path_;
  std::unique_ptr<Cluster> source_;
};

TEST_F(SnapshotTest, RoundTripPreservesEverything) {
  ASSERT_TRUE(SaveSnapshot(*source_, path_).ok());
  const Result<std::unique_ptr<Cluster>> restored =
      LoadSnapshot(path_, ClusterOptions{});
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const Cluster& r = **restored;

  // Topology.
  EXPECT_EQ(r.num_shards(), source_->num_shards());
  EXPECT_EQ(r.shard_key().DebugString(), source_->shard_key().DebugString());
  EXPECT_EQ(r.total_documents(), source_->total_documents());
  ASSERT_EQ(r.chunks().num_chunks(), source_->chunks().num_chunks());
  for (size_t i = 0; i < r.chunks().num_chunks(); ++i) {
    EXPECT_EQ(r.chunks().chunk(i).min, source_->chunks().chunk(i).min);
    EXPECT_EQ(r.chunks().chunk(i).shard_id,
              source_->chunks().chunk(i).shard_id);
  }
  EXPECT_EQ(r.zones().size(), source_->zones().size());

  // Exact per-shard placement.
  for (int s = 0; s < r.num_shards(); ++s) {
    EXPECT_EQ(r.shards()[s]->num_documents(),
              source_->shards()[s]->num_documents())
        << "shard " << s;
    // Index sets match (including the secondary geo index).
    EXPECT_EQ(r.shards()[s]->catalog().indexes().size(),
              source_->shards()[s]->catalog().indexes().size());
    EXPECT_NE(r.shards()[s]->catalog().Get("location_2dsphere_date_1"),
              nullptr);
  }

  // Queries agree.
  const query::ExprPtr q = query::MakeAnd(
      {query::MakeGeoWithinBox("location", {{2, 2}, {7, 7}}),
       query::MakeRange("date", Value::DateTime(0),
                        Value::DateTime(60000LL * 800))});
  const ClusterQueryResult a = source_->Query(q);
  const ClusterQueryResult b = r.Query(q);
  EXPECT_EQ(a.docs.size(), b.docs.size());
  EXPECT_EQ(a.nodes_contacted, b.nodes_contacted);
}

TEST_F(SnapshotTest, RestoredClusterAcceptsNewInserts) {
  ASSERT_TRUE(SaveSnapshot(*source_, path_).ok());
  const Result<std::unique_ptr<Cluster>> restored =
      LoadSnapshot(path_, ClusterOptions{});
  ASSERT_TRUE(restored.ok());
  Cluster& r = **restored;
  bson::Document doc;
  doc.Append("_id", Value::Int64(999999));
  doc.Append("location",
             Value::MakeDocument(bson::GeoJsonPoint(5, 5)));
  doc.Append("date", Value::DateTime(60000LL * 5000));
  doc.Append("hilbertIndex", Value::Int64(25));
  ASSERT_TRUE(r.Insert(std::move(doc)).ok());
  EXPECT_EQ(r.total_documents(), source_->total_documents() + 1);
}

TEST_F(SnapshotTest, DetectsCorruption) {
  ASSERT_TRUE(SaveSnapshot(*source_, path_).ok());
  // Flip one byte somewhere in the payload region.
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(4096);
  char byte;
  f.seekg(4096);
  f.read(&byte, 1);
  f.seekp(4096);
  byte = static_cast<char>(byte ^ 0x5A);
  f.write(&byte, 1);
  f.close();
  const Result<std::unique_ptr<Cluster>> restored =
      LoadSnapshot(path_, ClusterOptions{});
  EXPECT_FALSE(restored.ok());
}

TEST_F(SnapshotTest, RejectsWrongMagicAndMissingFile) {
  {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f << "definitely not a snapshot";
  }
  EXPECT_EQ(LoadSnapshot(path_, ClusterOptions{}).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(LoadSnapshot("/nonexistent.snap", ClusterOptions{})
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(SnapshotHashedTest, PreservesHashedStrategy) {
  const stix::testing::TempDir dir;
  const std::string path = dir / "hashed.snap";
  ClusterOptions options;
  options.num_shards = 2;
  Cluster source(options);
  ASSERT_TRUE(source
                  .ShardCollection(ShardKeyPattern(
                      {"date"}, ShardingStrategy::kHashed))
                  .ok());
  for (int i = 0; i < 50; ++i) {
    bson::Document doc;
    doc.Append("_id", Value::Int64(i));
    doc.Append("date", Value::DateTime(1000LL * i));
    ASSERT_TRUE(source.Insert(std::move(doc)).ok());
  }
  ASSERT_TRUE(SaveSnapshot(source, path).ok());
  const Result<std::unique_ptr<Cluster>> restored =
      LoadSnapshot(path, ClusterOptions{});
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->shard_key().strategy(), ShardingStrategy::kHashed);
  EXPECT_EQ((*restored)->total_documents(), 50u);
  // Hashed routing still works on the restored cluster: an equality query
  // targets one shard.
  const query::ExprPtr eq =
      query::MakeCmp("date", query::CmpOp::kEq, Value::DateTime(5000));
  EXPECT_EQ((*restored)->TargetShards(eq).size(), 1u);
}

TEST_F(SnapshotTest, RejectsTruncatedFile) {
  ASSERT_TRUE(SaveSnapshot(*source_, path_).ok());
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  contents.resize(contents.size() * 2 / 3);
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out << contents;
  out.close();
  EXPECT_FALSE(LoadSnapshot(path_, ClusterOptions{}).ok());
}

}  // namespace
}  // namespace stix::cluster
