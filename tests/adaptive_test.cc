// Unit tests for src/st/adaptive.cc: error paths, structural invariants of
// the produced zones, deterministic sampling, and both zone paths
// (hilbertIndex for the Hilbert approaches, date for the baselines).
// extensions_test.cc covers the load-balancing behaviour end to end; this
// file pins down the contract of ComputeWorkloadAwareZones itself.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "keystring/keystring.h"
#include "st/adaptive.h"

namespace stix::st {
namespace {

using bson::Value;

constexpr int64_t kBegin = 1530403200000;
constexpr int64_t kStepMs = 60000;
constexpr int kDocs = 1200;

std::unique_ptr<StStore> MakeStore(ApproachKind kind, int num_shards) {
  StStoreOptions options;
  options.approach.kind = kind;
  options.approach.dataset_mbr = geo::Rect{{23.0, 37.0}, {25.0, 39.0}};
  options.cluster.num_shards = num_shards;
  options.cluster.chunk_max_bytes = 16 * 1024;
  options.cluster.seed = 13;
  auto store = std::make_unique<StStore>(options);
  EXPECT_TRUE(store->Setup().ok());
  return store;
}

// 60% hotspot / 40% uniform, same shape as the adaptive benchmark.
void FillStore(StStore* store, std::vector<geo::Point>* points) {
  Rng rng(77);
  for (int i = 0; i < kDocs; ++i) {
    double lon, lat;
    if (rng.NextBool(0.6)) {
      lon = std::clamp(23.72 + rng.NextGaussian() * 0.02, 23.0, 25.0);
      lat = std::clamp(37.98 + rng.NextGaussian() * 0.02, 37.0, 39.0);
    } else {
      lon = rng.NextDouble(23.0, 25.0);
      lat = rng.NextDouble(37.0, 39.0);
    }
    bson::Document doc;
    doc.Append("seq", Value::Int32(i));
    doc.Append(kLocationField,
               Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
    doc.Append(kDateField, Value::DateTime(kBegin + i * kStepMs));
    if (points != nullptr) points->push_back({lon, lat});
    ASSERT_TRUE(store->Insert(std::move(doc)).ok());
  }
  ASSERT_TRUE(store->FinishLoad().ok());
}

std::vector<WorkloadQuery> HotspotWorkload(double weight = 5.0) {
  return {WorkloadQuery{geo::Rect{{23.68, 37.94}, {23.76, 38.02}}, kBegin,
                        kBegin + kDocs * kStepMs, weight}};
}

// The structural contract every zone set must satisfy: sorted, disjoint,
// contiguous, covering [MinKey, MaxKey), shard ids ascending within range.
void ExpectWellFormedZones(const std::vector<cluster::ZoneRange>& zones,
                           int num_shards) {
  ASSERT_FALSE(zones.empty());
  EXPECT_TRUE(cluster::ZonesCoverWholeSpace(zones));
  EXPECT_EQ(zones.front().min, keystring::MinKey());
  EXPECT_EQ(zones.back().max, keystring::MaxKey());
  EXPECT_LE(zones.size(), static_cast<size_t>(num_shards));
  for (size_t i = 0; i < zones.size(); ++i) {
    EXPECT_LT(zones[i].min, zones[i].max) << "zone " << i;
    EXPECT_GE(zones[i].shard_id, 0);
    EXPECT_LT(zones[i].shard_id, num_shards);
    if (i > 0) {
      EXPECT_EQ(zones[i - 1].max, zones[i].min) << "gap before zone " << i;
      EXPECT_LT(zones[i - 1].shard_id, zones[i].shard_id);
    }
  }
}

TEST(AdaptiveZonesTest, EmptyWorkloadIsInvalidArgument) {
  auto store = MakeStore(ApproachKind::kHil, 4);
  FillStore(store.get(), nullptr);
  const auto result = ComputeWorkloadAwareZones(*store, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(AdaptiveZonesTest, EmptyStoreIsNotFound) {
  auto store = MakeStore(ApproachKind::kHil, 4);
  const auto result = ComputeWorkloadAwareZones(*store, HotspotWorkload());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(AdaptiveZonesTest, ZonesAreSortedDisjointAndCoverKeySpace) {
  auto store = MakeStore(ApproachKind::kHil, 4);
  FillStore(store.get(), nullptr);
  const auto zones = ComputeWorkloadAwareZones(*store, HotspotWorkload());
  ASSERT_TRUE(zones.ok()) << zones.status().ToString();
  ExpectWellFormedZones(*zones, 4);
  EXPECT_GT(zones->size(), 1u);
}

TEST(AdaptiveZonesTest, SampleThinningIsDeterministicAndValid) {
  auto store = MakeStore(ApproachKind::kHil, 4);
  FillStore(store.get(), nullptr);
  AdaptiveZoneOptions options;
  options.sample_limit = 200;  // forces thinning: 200 of 1200 documents
  const auto a = ComputeWorkloadAwareZones(*store, HotspotWorkload(), options);
  const auto b = ComputeWorkloadAwareZones(*store, HotspotWorkload(), options);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  ExpectWellFormedZones(*a, 4);
  // Same seed, same store: the thinned sample and thus the zones are
  // identical across calls.
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].min, (*b)[i].min);
    EXPECT_EQ((*a)[i].max, (*b)[i].max);
    EXPECT_EQ((*a)[i].shard_id, (*b)[i].shard_id);
  }
}

TEST(AdaptiveZonesTest, ColdWorkloadFallsBackToBackgroundWeight) {
  // A workload whose rectangle matches no document: every sample carries
  // only the background weight, which degrades to equi-count zoning —
  // still one valid zone per shard, not a single catch-all.
  auto store = MakeStore(ApproachKind::kHil, 4);
  FillStore(store.get(), nullptr);
  std::vector<WorkloadQuery> cold = {
      WorkloadQuery{geo::Rect{{24.9, 38.9}, {24.99, 38.99}},
                    kBegin - 2 * kStepMs, kBegin - kStepMs, 100.0}};
  const auto zones = ComputeWorkloadAwareZones(*store, cold);
  ASSERT_TRUE(zones.ok()) << zones.status().ToString();
  ExpectWellFormedZones(*zones, 4);
  EXPECT_GT(zones->size(), 1u);
}

TEST(AdaptiveZonesTest, BaselineApproachZonesOnDatePath) {
  // The baselines zone on `date`. Dates are unique per document, so every
  // cut lands between distinct values and all four zones materialise.
  auto store = MakeStore(ApproachKind::kBslST, 4);
  FillStore(store.get(), nullptr);
  const auto zones = ComputeWorkloadAwareZones(*store, HotspotWorkload(1.0));
  ASSERT_TRUE(zones.ok()) << zones.status().ToString();
  ExpectWellFormedZones(*zones, 4);
  EXPECT_EQ(zones->size(), 4u);
}

TEST(AdaptiveZonesTest, ApplyMigratesWithoutChangingQueryResults) {
  auto store = MakeStore(ApproachKind::kHil, 4);
  std::vector<geo::Point> points;
  FillStore(store.get(), &points);

  const geo::Rect hot{{23.68, 37.94}, {23.76, 38.02}};
  const int64_t t0 = kBegin;
  const int64_t t1 = kBegin + kDocs * kStepMs;

  auto collect = [&]() {
    std::set<int> ids;
    const StQueryResult r = store->Query(hot, t0, t1);
    EXPECT_TRUE(r.cluster.status.ok());
    for (const bson::Document& doc : r.cluster.docs) {
      ids.insert(doc.Get("seq")->AsInt32());
    }
    return ids;
  };

  const std::set<int> before = collect();
  size_t naive = 0;
  for (const geo::Point& p : points) naive += hot.Contains(p);
  EXPECT_EQ(before.size(), naive);

  ASSERT_TRUE(ApplyWorkloadAwareZones(store.get(), HotspotWorkload()).ok());
  EXPECT_EQ(store->cluster().total_documents(),
            static_cast<uint64_t>(kDocs));
  EXPECT_EQ(collect(), before);
}

}  // namespace
}  // namespace stix::st
