#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/covering.h"
#include "geo/hilbert.h"
#include "geo/region.h"
#include "geo/zorder.h"

namespace stix::geo {
namespace {

Polygon Triangle() {
  return Polygon({{0, 0}, {10, 0}, {5, 10}});
}

// An L-shaped (concave) polygon.
Polygon LShape() {
  return Polygon({{0, 0}, {10, 0}, {10, 4}, {4, 4}, {4, 10}, {0, 10}});
}

TEST(SegmentsIntersectTest, BasicCases) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {10, 10}, {0, 10}, {10, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 1}, {2, 2}, {3, 3}));
  // Touching endpoint counts.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {5, 5}, {5, 5}, {9, 0}));
  // Collinear overlap counts.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {4, 0}, {2, 0}, {6, 0}));
  // Parallel non-collinear.
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {4, 0}, {0, 1}, {4, 1}));
}

TEST(PolygonTest, ContainsPoint) {
  const Polygon tri = Triangle();
  EXPECT_TRUE(tri.Contains({5, 2}));
  EXPECT_TRUE(tri.Contains({5, 9.9}));
  EXPECT_FALSE(tri.Contains({0.1, 9}));
  EXPECT_FALSE(tri.Contains({-1, 0}));
  // Boundary is inside.
  EXPECT_TRUE(tri.Contains({5, 0}));
  EXPECT_TRUE(tri.Contains({0, 0}));
}

TEST(PolygonTest, ConcaveContains) {
  const Polygon l = LShape();
  EXPECT_TRUE(l.Contains({2, 2}));
  EXPECT_TRUE(l.Contains({8, 2}));
  EXPECT_TRUE(l.Contains({2, 8}));
  EXPECT_FALSE(l.Contains({8, 8}));  // the notch
}

TEST(PolygonTest, BoundingBox) {
  const Rect bb = Triangle().BoundingBox();
  EXPECT_DOUBLE_EQ(bb.lo.lon, 0);
  EXPECT_DOUBLE_EQ(bb.hi.lon, 10);
  EXPECT_DOUBLE_EQ(bb.hi.lat, 10);
}

TEST(PolygonTest, ContainsRect) {
  const Polygon tri = Triangle();
  EXPECT_TRUE(tri.ContainsRect({{4, 1}, {6, 3}}));
  EXPECT_FALSE(tri.ContainsRect({{0, 0}, {10, 10}}));  // corners outside
  EXPECT_FALSE(tri.ContainsRect({{0, 8}, {1, 9}}));    // fully outside
  const Polygon l = LShape();
  // Fully inside one arm of the L -> contained; covering the notch -> not.
  EXPECT_TRUE(l.ContainsRect({{1, 1}, {3, 3}}));
  EXPECT_FALSE(l.ContainsRect({{5, 5}, {9, 9}}));
  EXPECT_FALSE(l.ContainsRect({{3, 3}, {5, 5}}));  // straddles the notch
}

TEST(PolygonTest, LShapeContainsHorizontalBar) {
  // [1,1]..[9,3.5] lies fully inside the bottom bar of the L.
  EXPECT_TRUE(LShape().ContainsRect({{1, 1}, {9, 3.5}}));
}

TEST(PolygonTest, IntersectsRect) {
  const Polygon tri = Triangle();
  EXPECT_TRUE(tri.IntersectsRect({{4, 1}, {6, 3}}));    // inside
  EXPECT_TRUE(tri.IntersectsRect({{-5, -5}, {15, 15}}));  // rect contains tri
  EXPECT_TRUE(tri.IntersectsRect({{4, -1}, {6, 1}}));   // edge crossing
  EXPECT_FALSE(tri.IntersectsRect({{8, 8}, {9, 9}}));   // near but outside
  EXPECT_FALSE(tri.IntersectsRect({{11, 0}, {12, 1}}));
}

TEST(PolygonCoveringTest, ExhaustiveAgainstBruteForceOnSmallGrid) {
  const Rect domain{{0, 0}, {16, 16}};
  const HilbertCurve hilbert(4, domain);
  const Polygon poly({{1.5, 1.5}, {14.5, 2.5}, {12.5, 14.0}, {3.0, 11.0}});
  const Covering covering = CoverRegion(hilbert, poly);
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      const Rect cell = hilbert.grid().BlockRect(x, y, 1);
      const bool expected = poly.IntersectsRect(cell);
      const bool actual = CoveringContains(covering, hilbert.XyToD(x, y));
      ASSERT_EQ(expected, actual) << "cell (" << x << "," << y << ")";
    }
  }
}

TEST(PolygonCoveringTest, PointsInsidePolygonAlwaysCovered) {
  const HilbertCurve curve(13, GlobeRect());
  // A triangle over Attica.
  const Polygon poly({{23.5, 37.9}, {24.1, 38.0}, {23.8, 38.4}});
  const Covering covering = CoverRegion(curve, poly);
  Rng rng(61);
  int tested = 0;
  while (tested < 300) {
    const Point p{rng.NextDouble(23.5, 24.1), rng.NextDouble(37.9, 38.4)};
    if (!poly.Contains(p)) continue;
    ++tested;
    EXPECT_TRUE(CoveringContains(covering, curve.PointToD(p.lon, p.lat)));
  }
}

TEST(PolygonCoveringTest, TighterThanBoundingBoxCovering) {
  const HilbertCurve curve(13, GlobeRect());
  const Polygon poly({{23.5, 37.9}, {24.1, 38.0}, {23.8, 38.4}});
  const Covering poly_cover = CoverRegion(curve, poly);
  const Covering bbox_cover = CoverRect(curve, poly.BoundingBox());
  EXPECT_LT(poly_cover.num_cells, bbox_cover.num_cells);
}

TEST(RectRegionTest, DelegatesToRect) {
  const RectRegion region(Rect{{0, 0}, {10, 10}});
  EXPECT_TRUE(region.ContainsRect({{1, 1}, {2, 2}}));
  EXPECT_FALSE(region.ContainsRect({{5, 5}, {15, 15}}));
  EXPECT_TRUE(region.IntersectsRect({{5, 5}, {15, 15}}));
  EXPECT_FALSE(region.IntersectsRect({{11, 11}, {12, 12}}));
}

}  // namespace
}  // namespace stix::geo
