#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/index_catalog.h"
#include "query/executor.h"
#include "query/expression.h"
#include "query/plan_cache.h"
#include "query/planner.h"
#include "query/query_analysis.h"
#include "storage/record_store.h"

namespace stix::query {
namespace {

using bson::Value;

bson::Document PointDoc(int id, double lon, double lat, int64_t date_ms,
                        int64_t hilbert) {
  bson::Document doc;
  doc.Append("id", Value::Int32(id));
  doc.Append("location",
             Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
  doc.Append("date", Value::DateTime(date_ms));
  doc.Append("hilbertIndex", Value::Int64(hilbert));
  return doc;
}

// ---------- expression semantics ----------

TEST(ExprTest, CmpOperators) {
  const bson::Document doc = PointDoc(1, 0, 0, 100, 5);
  EXPECT_TRUE(MakeCmp("date", CmpOp::kGte, Value::DateTime(100))->Matches(doc));
  EXPECT_TRUE(MakeCmp("date", CmpOp::kLte, Value::DateTime(100))->Matches(doc));
  EXPECT_FALSE(MakeCmp("date", CmpOp::kGt, Value::DateTime(100))->Matches(doc));
  EXPECT_FALSE(MakeCmp("date", CmpOp::kLt, Value::DateTime(100))->Matches(doc));
  EXPECT_TRUE(MakeCmp("date", CmpOp::kEq, Value::DateTime(100))->Matches(doc));
  EXPECT_FALSE(MakeCmp("missing", CmpOp::kEq, Value::Int32(1))->Matches(doc));
}

TEST(ExprTest, CmpRespectsTypeBrackets) {
  const bson::Document doc = PointDoc(1, 0, 0, 100, 5);
  // A date bound never matches the numeric hilbertIndex field.
  EXPECT_FALSE(
      MakeCmp("hilbertIndex", CmpOp::kGte, Value::DateTime(0))->Matches(doc));
  // But numeric widths cross-match.
  EXPECT_TRUE(
      MakeCmp("hilbertIndex", CmpOp::kEq, Value::Double(5.0))->Matches(doc));
}

TEST(ExprTest, InMatchesAnyListed) {
  const bson::Document doc = PointDoc(1, 0, 0, 100, 7);
  EXPECT_TRUE(MakeIn("hilbertIndex",
                     {Value::Int64(3), Value::Int64(7)})->Matches(doc));
  EXPECT_FALSE(MakeIn("hilbertIndex",
                      {Value::Int64(3), Value::Int64(8)})->Matches(doc));
  EXPECT_FALSE(MakeIn("missing", {Value::Int64(3)})->Matches(doc));
}

TEST(ExprTest, AndOrCompose) {
  const bson::Document doc = PointDoc(1, 0, 0, 100, 7);
  const ExprPtr t = MakeCmp("id", CmpOp::kEq, Value::Int32(1));
  const ExprPtr f = MakeCmp("id", CmpOp::kEq, Value::Int32(2));
  EXPECT_TRUE(MakeAnd({t, t})->Matches(doc));
  EXPECT_FALSE(MakeAnd({t, f})->Matches(doc));
  EXPECT_TRUE(MakeAnd({})->Matches(doc));  // empty $and matches all
  EXPECT_TRUE(MakeOr({f, t})->Matches(doc));
  EXPECT_FALSE(MakeOr({f, f})->Matches(doc));
  EXPECT_FALSE(MakeOr({})->Matches(doc));
}

TEST(ExprTest, GeoWithinBoxExactBoundaries) {
  const geo::Rect box{{10, 10}, {20, 20}};
  EXPECT_TRUE(MakeGeoWithinBox("location", box)
                  ->Matches(PointDoc(1, 10, 20, 0, 0)));
  EXPECT_TRUE(MakeGeoWithinBox("location", box)
                  ->Matches(PointDoc(1, 15, 15, 0, 0)));
  EXPECT_FALSE(MakeGeoWithinBox("location", box)
                   ->Matches(PointDoc(1, 9.999, 15, 0, 0)));
  // Field missing / not a point.
  bson::Document no_loc;
  no_loc.Append("x", Value::Int32(1));
  EXPECT_FALSE(MakeGeoWithinBox("location", box)->Matches(no_loc));
}

TEST(ExprTest, RangeHelperIsClosedInterval) {
  const ExprPtr range =
      MakeRange("date", Value::DateTime(10), Value::DateTime(20));
  EXPECT_TRUE(range->Matches(PointDoc(1, 0, 0, 10, 0)));
  EXPECT_TRUE(range->Matches(PointDoc(1, 0, 0, 20, 0)));
  EXPECT_FALSE(range->Matches(PointDoc(1, 0, 0, 9, 0)));
  EXPECT_FALSE(range->Matches(PointDoc(1, 0, 0, 21, 0)));
}

TEST(ExprTest, DebugStringsRender) {
  EXPECT_EQ(MakeCmp("a", CmpOp::kGte, Value::Int32(3))->DebugString(),
            "{a: {$gte: 3}}");
  EXPECT_NE(MakeGeoWithinBox("location", {{0, 0}, {1, 1}})
                ->DebugString()
                .find("$geoWithin"),
            std::string::npos);
}

// ---------- RangeSetExpr ----------

ExprPtr MakeTestRangeSet() {
  std::vector<RangeSetExpr::Range> ranges;
  ranges.push_back({Value::Int64(5), Value::Int64(9)});
  ranges.push_back({Value::Int64(20), Value::Int64(20)});
  ranges.push_back({Value::Int64(30), Value::Int64(40)});
  return MakeRangeSet("hilbertIndex", std::move(ranges));
}

TEST(RangeSetExprTest, MatchesByBinarySearch) {
  const ExprPtr rs = MakeTestRangeSet();
  auto doc_with = [](int64_t h) {
    return PointDoc(1, 0, 0, 0, h);
  };
  EXPECT_FALSE(rs->Matches(doc_with(4)));
  EXPECT_TRUE(rs->Matches(doc_with(5)));
  EXPECT_TRUE(rs->Matches(doc_with(9)));
  EXPECT_FALSE(rs->Matches(doc_with(10)));
  EXPECT_TRUE(rs->Matches(doc_with(20)));
  EXPECT_FALSE(rs->Matches(doc_with(21)));
  EXPECT_TRUE(rs->Matches(doc_with(40)));
  EXPECT_FALSE(rs->Matches(doc_with(41)));
}

TEST(RangeSetExprTest, MissingFieldNeverMatches) {
  const ExprPtr rs = MakeTestRangeSet();
  bson::Document empty;
  EXPECT_FALSE(rs->Matches(empty));
}

TEST(RangeSetExprTest, EquivalentToExplicitOr) {
  // The RangeSet node is the efficient form of the paper's $or; it must
  // agree with the verbose expression on every value.
  const ExprPtr rs = MakeTestRangeSet();
  const ExprPtr verbose = MakeOr(
      {MakeRange("hilbertIndex", Value::Int64(5), Value::Int64(9)),
       MakeRange("hilbertIndex", Value::Int64(30), Value::Int64(40)),
       MakeIn("hilbertIndex", {Value::Int64(20)})});
  for (int64_t h = 0; h < 50; ++h) {
    const bson::Document doc = PointDoc(1, 0, 0, 0, h);
    EXPECT_EQ(rs->Matches(doc), verbose->Matches(doc)) << "h=" << h;
  }
}

TEST(RangeSetExprTest, AnalysisYieldsSameBoundsAsOr) {
  const auto rs_paths = AnalyzeQuery(MakeTestRangeSet());
  ASSERT_TRUE(rs_paths.count("hilbertIndex"));
  const index::FieldBounds fb =
      AscendingBounds(&rs_paths.at("hilbertIndex"));
  ASSERT_EQ(fb.intervals.size(), 3u);
  EXPECT_EQ(fb.intervals[1].lo.AsInt64(), 20);
}

TEST(RangeSetExprTest, DebugStringSummarises) {
  const std::string text = MakeTestRangeSet()->DebugString();
  EXPECT_NE(text.find("$or"), std::string::npos);
  EXPECT_NE(text.find("2 ranges"), std::string::npos);
  EXPECT_NE(text.find("1 $in"), std::string::npos);
}

// ---------- QueryShape / PlanCache ----------

TEST(QueryShapeTest, ConstantsAreErased) {
  const ExprPtr a = MakeAnd(
      {MakeGeoWithinBox("location", {{0, 0}, {1, 1}}),
       MakeRange("date", Value::DateTime(0), Value::DateTime(100))});
  const ExprPtr b = MakeAnd(
      {MakeGeoWithinBox("location", {{5, 5}, {9, 9}}),
       MakeRange("date", Value::DateTime(5000), Value::DateTime(999999))});
  EXPECT_EQ(QueryShape(*a), QueryShape(*b));
}

TEST(QueryShapeTest, DifferentPathsDiffer) {
  const ExprPtr a = MakeCmp("x", CmpOp::kGte, Value::Int32(1));
  const ExprPtr b = MakeCmp("y", CmpOp::kGte, Value::Int32(1));
  EXPECT_NE(QueryShape(*a), QueryShape(*b));
}

TEST(QueryShapeTest, OrArmCountDoesNotMatter) {
  // Coverings of different rectangles have different arm counts but are the
  // same query shape.
  const ExprPtr a = MakeOr(
      {MakeRange("h", Value::Int64(1), Value::Int64(2)),
       MakeRange("h", Value::Int64(5), Value::Int64(6))});
  const ExprPtr b = MakeOr(
      {MakeRange("h", Value::Int64(10), Value::Int64(20))});
  EXPECT_EQ(QueryShape(*a), QueryShape(*b));
}

TEST(QueryShapeTest, GteVsLteDiffer) {
  const ExprPtr a = MakeCmp("x", CmpOp::kGte, Value::Int32(1));
  const ExprPtr b = MakeCmp("x", CmpOp::kLte, Value::Int32(1));
  EXPECT_NE(QueryShape(*a), QueryShape(*b));
}

TEST(PlanCacheTest, StoreLookupEvict) {
  PlanCache cache;
  EXPECT_FALSE(cache.Lookup("shape").has_value());
  cache.Store("shape", "date_1", 42);
  ASSERT_TRUE(cache.Lookup("shape").has_value());
  EXPECT_EQ(cache.Lookup("shape")->index_name, "date_1");
  EXPECT_EQ(cache.Lookup("shape")->works, 42u);
  cache.Store("shape", "other", 7);
  EXPECT_EQ(cache.Lookup("shape")->index_name, "other");
  cache.Evict("shape");
  EXPECT_FALSE(cache.Lookup("shape").has_value());
  cache.Store("a", "x", 1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

// ---------- query analysis ----------

TEST(QueryAnalysisTest, ExtractsBaseRange) {
  const ExprPtr q = MakeAnd(
      {MakeCmp("date", CmpOp::kGte, Value::DateTime(10)),
       MakeCmp("date", CmpOp::kLte, Value::DateTime(20))});
  const auto paths = AnalyzeQuery(q);
  ASSERT_TRUE(paths.count("date"));
  const index::FieldBounds fb = AscendingBounds(&paths.at("date"));
  ASSERT_EQ(fb.intervals.size(), 1u);
  EXPECT_EQ(fb.intervals[0].lo.AsDateTime(), 10);
  EXPECT_EQ(fb.intervals[0].hi.AsDateTime(), 20);
}

TEST(QueryAnalysisTest, TightensConflictingRanges) {
  const ExprPtr q = MakeAnd(
      {MakeCmp("x", CmpOp::kGte, Value::Int32(5)),
       MakeCmp("x", CmpOp::kGte, Value::Int32(8)),
       MakeCmp("x", CmpOp::kLte, Value::Int32(30)),
       MakeCmp("x", CmpOp::kLte, Value::Int32(20))});
  const auto paths = AnalyzeQuery(q);
  const index::FieldBounds fb = AscendingBounds(&paths.at("x"));
  ASSERT_EQ(fb.intervals.size(), 1u);
  EXPECT_EQ(fb.intervals[0].lo.AsInt32(), 8);
  EXPECT_EQ(fb.intervals[0].hi.AsInt32(), 20);
}

TEST(QueryAnalysisTest, RecognisesHilbertOrShape) {
  // $or: [{h: [a,b]}, {h: [c,d]}, {h: {$in: [x, y]}}] — the paper's query.
  const ExprPtr q = MakeOr(
      {MakeRange("h", Value::Int64(10), Value::Int64(20)),
       MakeRange("h", Value::Int64(40), Value::Int64(50)),
       MakeIn("h", {Value::Int64(70), Value::Int64(99)})});
  const auto paths = AnalyzeQuery(q);
  ASSERT_TRUE(paths.count("h"));
  const index::FieldBounds fb = AscendingBounds(&paths.at("h"));
  EXPECT_EQ(fb.intervals.size(), 4u);
}

TEST(QueryAnalysisTest, MixedPathOrStaysResidual) {
  const ExprPtr q = MakeOr(
      {MakeCmp("a", CmpOp::kEq, Value::Int32(1)),
       MakeCmp("b", CmpOp::kEq, Value::Int32(2))});
  const auto paths = AnalyzeQuery(q);
  EXPECT_FALSE(paths.count("a"));
  EXPECT_FALSE(paths.count("b"));
}

TEST(QueryAnalysisTest, HalfBoundedRangeFallsBackToFullRange) {
  const ExprPtr q = MakeCmp("x", CmpOp::kGte, Value::Int32(5));
  const auto paths = AnalyzeQuery(q);
  const index::FieldBounds fb = AscendingBounds(&paths.at("x"));
  EXPECT_TRUE(fb.full_range);
}

// ---------- execution fixture ----------

class QueryExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 2000 points on a lon/lat grid over [0,10]^2, dates spread over 2000
    // minutes, hilbertIndex = a synthetic cell id (lon band).
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
      const double lon = rng.NextDouble(0, 10);
      const double lat = rng.NextDouble(0, 10);
      const int64_t date = 60000LL * i;
      const int64_t h = static_cast<int64_t>(lon);  // 10 coarse cells
      rids_.push_back(
          records_.Insert(PointDoc(i, lon, lat, date, h)));
    }
    ASSERT_TRUE(catalog_
                    .CreateIndex(index::IndexDescriptor(
                        "date_1",
                        {{"date", index::IndexFieldKind::kAscending}}))
                    .ok());
    ASSERT_TRUE(
        catalog_
            .CreateIndex(index::IndexDescriptor(
                "h_1_date_1",
                {{"hilbertIndex", index::IndexFieldKind::kAscending},
                 {"date", index::IndexFieldKind::kAscending}}))
            .ok());
    ASSERT_TRUE(
        catalog_
            .CreateIndex(index::IndexDescriptor(
                "loc_2dsphere_date_1",
                {{"location", index::IndexFieldKind::k2dsphere},
                 {"date", index::IndexFieldKind::kAscending}}))
            .ok());
    records_.ForEach([&](storage::RecordId rid, const bson::Document& doc) {
      ASSERT_TRUE(catalog_.OnInsert(doc, rid).ok());
    });
  }

  std::set<int> NaiveIds(const ExprPtr& expr) const {
    std::set<int> ids;
    records_.ForEach([&](storage::RecordId, const bson::Document& doc) {
      if (expr->Matches(doc)) ids.insert(doc.Get("id")->AsInt32());
    });
    return ids;
  }

  std::set<int> ResultIds(const ExecutionResult& r) const {
    std::set<int> ids;
    for (const bson::Document* doc : r.docs) {
      ids.insert(doc->Get("id")->AsInt32());
    }
    return ids;
  }

  storage::RecordStore records_;
  index::IndexCatalog catalog_;
  std::vector<storage::RecordId> rids_;
};

TEST_F(QueryExecTest, DateRangeMatchesNaive) {
  const ExprPtr q =
      MakeRange("date", Value::DateTime(60000LL * 500),
                Value::DateTime(60000LL * 700));
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q);
  EXPECT_EQ(ResultIds(r), NaiveIds(q));
  EXPECT_EQ(r.stats.n_returned, 201u);
}

TEST_F(QueryExecTest, SpatioTemporalMatchesNaive) {
  const geo::Rect box{{2, 2}, {4, 6}};
  const ExprPtr q = MakeAnd(
      {MakeGeoWithinBox("location", box),
       MakeRange("date", Value::DateTime(0),
                 Value::DateTime(60000LL * 1500))});
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q);
  EXPECT_EQ(ResultIds(r), NaiveIds(q));
  EXPECT_GT(r.stats.n_returned, 0u);
}

TEST_F(QueryExecTest, HilbertOrQueryMatchesNaive) {
  const geo::Rect box{{3, 0}, {5.5, 10}};
  const ExprPtr q = MakeAnd(
      {MakeGeoWithinBox("location", box),
       MakeRange("date", Value::DateTime(0),
                 Value::DateTime(60000LL * 2000)),
       MakeOr({MakeRange("hilbertIndex", Value::Int64(3), Value::Int64(5))})});
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q);
  EXPECT_EQ(ResultIds(r), NaiveIds(q));
}

TEST_F(QueryExecTest, CollScanWhenNoIndexUsable) {
  const ExprPtr q = MakeCmp("id", CmpOp::kEq, Value::Int32(77));
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q);
  EXPECT_EQ(r.stats.plan_summary, "COLLSCAN");
  EXPECT_EQ(r.stats.docs_examined, 2000u);
  ASSERT_EQ(r.docs.size(), 1u);
  EXPECT_EQ(r.docs[0]->Get("id")->AsInt32(), 77);
}

TEST_F(QueryExecTest, IndexScanExaminesFarFewerDocsThanCollScan) {
  const ExprPtr q =
      MakeRange("date", Value::DateTime(60000LL * 100),
                Value::DateTime(60000LL * 110));
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q);
  EXPECT_NE(r.stats.plan_summary, "COLLSCAN");
  EXPECT_LE(r.stats.docs_examined, 12u);
  EXPECT_LE(r.stats.keys_examined, 20u);
}

TEST_F(QueryExecTest, CompoundPointPrefixUsesTightBounds) {
  // hilbertIndex == 4 (point interval) + narrow date range: the compound
  // scan should seek directly and examine ~matching keys only.
  const ExprPtr q = MakeAnd(
      {MakeOr({MakeRange("hilbertIndex", Value::Int64(4), Value::Int64(4))}),
       MakeRange("date", Value::DateTime(60000LL * 900),
                 Value::DateTime(60000LL * 1000))});
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q);
  EXPECT_EQ(ResultIds(r), NaiveIds(q));
  // About 10% lon band * 100 minutes of 2000 => ~10 docs.
  EXPECT_LE(r.stats.keys_examined, 60u);
}

TEST_F(QueryExecTest, MultiPlannerPrefersSelectiveIndex) {
  // Tiny spatial box, whole time span: the 2dsphere compound index must
  // beat the date index (which would scan everything).
  const geo::Rect box{{2.0, 2.0}, {2.3, 2.3}};
  const ExprPtr q = MakeAnd(
      {MakeGeoWithinBox("location", box),
       MakeRange("date", Value::DateTime(0),
                 Value::DateTime(60000LL * 2000))});
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q);
  EXPECT_EQ(r.winning_index, "loc_2dsphere_date_1");
  EXPECT_EQ(ResultIds(r), NaiveIds(q));
  EXPECT_GE(r.num_candidates, 2);
}

TEST_F(QueryExecTest, MultiPlannerPrefersDateForTimeSelectiveHugeBox) {
  // Huge box (everything matches spatially), tiny time range: scanning the
  // date index returns results immediately; the geo compound index has to
  // wade through every cell. MongoDB picks date here (paper Table 7).
  const geo::Rect box{{-1, -1}, {11, 11}};
  const ExprPtr q = MakeAnd(
      {MakeGeoWithinBox("location", box),
       MakeRange("date", Value::DateTime(60000LL * 1000),
                 Value::DateTime(60000LL * 1010))});
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q);
  EXPECT_EQ(r.winning_index, "date_1");
  EXPECT_EQ(ResultIds(r), NaiveIds(q));
}

TEST_F(QueryExecTest, GeoLeadingIndexIgnoresTrailingDateBounds) {
  // MongoDB 4.0 semantics the paper's measurements depend on: with a
  // {location: 2dsphere, date: 1} index, the scan visits every key of the
  // covering's cells regardless of the date predicate (date filters at
  // FETCH). So the same box with a narrow or wide window examines the same
  // number of keys.
  const geo::Rect box{{2, 2}, {3, 3}};
  auto run = [&](int64_t t_hi) {
    const ExprPtr q = MakeAnd(
        {MakeGeoWithinBox("location", box),
         MakeRange("date", Value::DateTime(0), Value::DateTime(t_hi))});
    // Pin the plan to the geo compound index (bypass racing).
    const auto candidates = Planner::Plan(records_, catalog_, q);
    for (const auto& plan : candidates) {
      if (plan.index_name == "loc_2dsphere_date_1") {
        ExecStats stats;
        storage::RecordId rid;
        const bson::Document* doc;
        uint64_t works = 0;
        for (;;) {
          const PlanStage::State s = plan.root->Work(&rid, &doc);
          ++works;
          if (s == PlanStage::State::kEof) break;
        }
        plan.root->AccumulateStats(&stats);
        return stats.keys_examined;
      }
    }
    ADD_FAILURE() << "geo plan not generated";
    return uint64_t{0};
  };
  const uint64_t narrow = run(60000LL * 10);
  const uint64_t wide = run(60000LL * 2000);
  EXPECT_EQ(narrow, wide);
  EXPECT_GT(narrow, 0u);
}

TEST_F(QueryExecTest, InOnLeadingFieldUsesPointBounds) {
  const ExprPtr q = MakeIn("hilbertIndex", {Value::Int64(2), Value::Int64(7)});
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q);
  EXPECT_EQ(r.winning_index, "h_1_date_1");
  EXPECT_EQ(ResultIds(r), NaiveIds(q));
  // Roughly 2 of 10 lon bands -> ~400 docs; the scan must not visit other
  // bands' keys (plus a boundary key per band).
  EXPECT_LE(r.stats.keys_examined, r.stats.n_returned + 8);
}

TEST_F(QueryExecTest, TrialResultsOptionShortensRace) {
  const geo::Rect box{{0, 0}, {10, 10}};
  const ExprPtr q = MakeAnd(
      {MakeGeoWithinBox("location", box),
       MakeRange("date", Value::DateTime(0),
                 Value::DateTime(60000LL * 2000))});
  ExecutorOptions options;
  options.trial_results = 5;  // decide after 5 documents
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q, options);
  EXPECT_EQ(r.docs.size(), 2000u);  // full results regardless of the trial
}

TEST_F(QueryExecTest, EmptyResultStillTerminates) {
  const ExprPtr q =
      MakeRange("date", Value::DateTime(60000LL * 5000),
                Value::DateTime(60000LL * 6000));
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q);
  EXPECT_EQ(r.docs.size(), 0u);
}

TEST_F(QueryExecTest, PlanCacheSkipsTheRaceOnRepeat) {
  const geo::Rect box{{2.0, 2.0}, {2.3, 2.3}};
  const ExprPtr q = MakeAnd(
      {MakeGeoWithinBox("location", box),
       MakeRange("date", Value::DateTime(0),
                 Value::DateTime(60000LL * 2000))});
  PlanCache cache;
  const ExecutionResult first =
      ExecuteQuery(records_, catalog_, q, {}, &cache);
  EXPECT_FALSE(first.from_plan_cache);
  EXPECT_EQ(cache.size(), 1u);
  const ExecutionResult second =
      ExecuteQuery(records_, catalog_, q, {}, &cache);
  EXPECT_TRUE(second.from_plan_cache);
  EXPECT_EQ(second.winning_index, first.winning_index);
  EXPECT_EQ(ResultIds(second), ResultIds(first));
  // The cached run does not pay the losing plan's trial work.
  EXPECT_LE(second.stats.works, first.stats.works);
}

TEST_F(QueryExecTest, ReplanningRecoversFromPoisonedCache) {
  // Cache a plan with a tiny selective query (compound geo index wins),
  // then issue the same *shape* with a huge box and a narrow time window:
  // the cached geo plan blows its works budget, is evicted, and the date
  // index wins the re-race — the mechanism behind the paper's Table 7.
  PlanCache cache;
  const ExprPtr small_q = MakeAnd(
      {MakeGeoWithinBox("location", {{2.0, 2.0}, {2.3, 2.3}}),
       MakeRange("date", Value::DateTime(0),
                 Value::DateTime(60000LL * 2000))});
  const ExecutionResult small_r =
      ExecuteQuery(records_, catalog_, small_q, {}, &cache);
  EXPECT_EQ(small_r.winning_index, "loc_2dsphere_date_1");

  const ExprPtr big_q = MakeAnd(
      {MakeGeoWithinBox("location", {{-1, -1}, {11, 11}}),
       MakeRange("date", Value::DateTime(60000LL * 1000),
                 Value::DateTime(60000LL * 1010))});
  ExecutorOptions options;
  options.replan_min_works = 50;  // small enough to trigger at this scale
  const ExecutionResult big_r =
      ExecuteQuery(records_, catalog_, big_q, options, &cache);
  EXPECT_TRUE(big_r.replanned);
  EXPECT_EQ(big_r.winning_index, "date_1");
  EXPECT_EQ(ResultIds(big_r), NaiveIds(big_q));
  // The re-raced winner replaced the cache entry.
  ASSERT_EQ(cache.size(), 1u);
}

TEST_F(QueryExecTest, ReplanRaceUsesFreshPlanStages) {
  // Regression test for the replan path: when a cached plan blows its works
  // budget mid-drain, the executor must discard the partially-consumed
  // stages and re-race freshly planned candidates (a stale pointer into the
  // replaced candidate vector would corrupt the race). Poison the cache
  // directly with a deliberately bad entry — the date index with a works
  // figure of 1 — so the very first execution takes the replan branch.
  PlanCache cache;
  const ExprPtr q = MakeAnd(
      {MakeGeoWithinBox("location", {{2.0, 2.0}, {2.3, 2.3}}),
       MakeRange("date", Value::DateTime(0),
                 Value::DateTime(60000LL * 2000))});
  cache.Store(QueryShape(*q), "date_1", /*works=*/1);

  ExecutorOptions options;
  options.replan_min_works = 1;  // budget = max(1, 10 * 1) = 10 works
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q, options, &cache);
  EXPECT_TRUE(r.replanned);
  EXPECT_FALSE(r.from_plan_cache);
  EXPECT_EQ(r.winning_index, "loc_2dsphere_date_1");
  EXPECT_EQ(ResultIds(r), NaiveIds(q));

  // The re-race overwrote the poisoned entry; a rerun with the default
  // budget trusts the refreshed cache and returns the same documents.
  const ExecutionResult again = ExecuteQuery(records_, catalog_, q, {}, &cache);
  EXPECT_TRUE(again.from_plan_cache);
  EXPECT_FALSE(again.replanned);
  EXPECT_EQ(ResultIds(again), NaiveIds(q));
}

TEST_F(QueryExecTest, PlanCacheReusedAcrossDifferentConstants) {
  PlanCache cache;
  const auto query_for = [&](int64_t day) {
    return MakeAnd(
        {MakeGeoWithinBox("location", {{2.0, 2.0}, {2.3, 2.3}}),
         MakeRange("date", Value::DateTime(60000LL * day),
                   Value::DateTime(60000LL * (day + 100)))});
  };
  (void)ExecuteQuery(records_, catalog_, query_for(0), {}, &cache);
  const ExecutionResult r =
      ExecuteQuery(records_, catalog_, query_for(700), {}, &cache);
  EXPECT_TRUE(r.from_plan_cache);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(QueryExecTest, RemovedDocsAreInvisible) {
  // Remove half the matching window from the record store and indexes.
  const ExprPtr q =
      MakeRange("date", Value::DateTime(60000LL * 100),
                Value::DateTime(60000LL * 120));
  for (int i = 100; i <= 110; ++i) {
    const bson::Document* doc = records_.Get(rids_[i]);
    ASSERT_TRUE(catalog_.OnRemove(*doc, rids_[i]).ok());
    records_.Remove(rids_[i]);
  }
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q);
  EXPECT_EQ(r.docs.size(), 10u);  // 121 - 111
  EXPECT_EQ(ResultIds(r), NaiveIds(q));
}

}  // namespace
}  // namespace stix::query
