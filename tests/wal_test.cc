// Unit tests of the write-ahead log: pinned frame encoding (golden vector),
// group-commit flush batching, CRC rejection of arbitrary bit flips, the
// every-prefix torn-tail property, replay idempotence, and one disk-image
// check per simulated crash point.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/fs.h"
#include "storage/wal.h"
#include "temp_dir.h"

namespace stix::storage {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Independent re-implementation of the frame shape (little-endian
// u32 len | u32 crc | u8 type | u64 lsn | u64 rid | payload) so the golden
// test catches the production encoder drifting.
void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
std::string ExpectedFrame(uint8_t type, uint64_t lsn, uint64_t rid,
                          const std::string& payload) {
  std::string body;
  body.push_back(static_cast<char>(type));
  PutU64(lsn, &body);
  PutU64(rid, &body);
  body += payload;
  std::string frame;
  PutU32(static_cast<uint32_t>(body.size()), &frame);
  PutU32(Crc32(body), &frame);
  frame += body;
  return frame;
}

class WalTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Instance().DisableAll(); }

  void ArmCrash(const char* name) {
    FailPoint* fp = FailPointRegistry::Instance().Find(name);
    ASSERT_NE(fp, nullptr) << name;
    FailPoint::Config config;
    config.error_code = StatusCode::kInternal;
    config.error_message = std::string("injected crash at ") + name;
    fp->Enable(config);
  }

  stix::testing::TempDir dir_;
};

TEST_F(WalTest, Crc32KnownAnswers) {
  // The CRC-32 check value (IEEE 802.3, reflected) — pins polynomial,
  // reflection and the init/final xor all at once.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32(std::string(1, '\0')), 0xD202EF8Du);
}

TEST_F(WalTest, GoldenFrameEncoding) {
  const std::string path = dir_ / "wal.log";
  {
    Result<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(path, WalOptions{}, /*fresh=*/true);
    ASSERT_TRUE(wal.ok());
    const Result<uint64_t> lsn =
        (*wal)->Append(WalRecordType::kInsert, 7, "hi");
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, 1u);
    const Result<uint64_t> commit = (*wal)->Commit();
    ASSERT_TRUE(commit.ok());
    EXPECT_EQ(*commit, 2u);
  }
  const std::string expected =
      ExpectedFrame(1, 1, 7, "hi") +        // kInsert, lsn 1, rid 7
      ExpectedFrame(3, 2, 0, "");           // kCommit, lsn 2
  EXPECT_EQ(ReadFileBytes(path), expected);
}

TEST_F(WalTest, RoundTripPreservesArbitraryPayloadBytes) {
  const std::string path = dir_ / "wal.log";
  std::string payload;
  for (int i = 0; i < 512; ++i) payload.push_back(static_cast<char>(i % 256));
  {
    Result<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(path, WalOptions{}, /*fresh=*/true);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, 11, payload).ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kRemove, 3, "").ok());
    ASSERT_TRUE((*wal)->Commit().ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kCatalogAdd, 0, "x").ok());
    ASSERT_TRUE((*wal)->Commit().ok());
  }
  const Result<WalScan> scan = ReadWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->torn);
  ASSERT_EQ(scan->committed.size(), 3u);
  EXPECT_EQ(scan->committed[0].type, WalRecordType::kInsert);
  EXPECT_EQ(scan->committed[0].lsn, 1u);
  EXPECT_EQ(scan->committed[0].rid, 11u);
  EXPECT_EQ(scan->committed[0].payload, payload);
  EXPECT_EQ(scan->committed[1].type, WalRecordType::kRemove);
  EXPECT_EQ(scan->committed[2].type, WalRecordType::kCatalogAdd);
  EXPECT_EQ(scan->last_lsn, 5u);  // 2 records + commit + record + commit
}

TEST_F(WalTest, EmptyCommitWritesNothing) {
  const std::string path = dir_ / "wal.log";
  Result<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(path, WalOptions{}, /*fresh=*/true);
  ASSERT_TRUE(wal.ok());
  const Result<uint64_t> commit = (*wal)->Commit();
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(*commit, 0u);  // nothing ever committed
  ASSERT_TRUE((*wal)->Sync().ok());
  EXPECT_EQ(*FileSize(path), 0u);
}

TEST_F(WalTest, GroupCommitFlushesEveryNthCommit) {
  const std::string path = dir_ / "wal.log";
  WalOptions options;
  options.sync_every_commits = 4;
  Result<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(path, options, /*fresh=*/true);
  ASSERT_TRUE(wal.ok());

  const auto commit_one = [&](uint64_t rid) {
    ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, rid, "p").ok());
    ASSERT_TRUE((*wal)->Commit().ok());
  };

  for (uint64_t i = 1; i <= 3; ++i) commit_one(i);
  // Three commits acknowledged, none synced yet: the group-commit window.
  EXPECT_EQ(*FileSize(path), 0u);

  commit_one(4);  // fourth commit triggers the flush
  const uint64_t synced_size = *FileSize(path);
  EXPECT_GT(synced_size, 0u);

  // Two more buffered commits; the on-disk image still ends at commit 4.
  commit_one(5);
  commit_one(6);
  EXPECT_EQ(*FileSize(path), synced_size);

  // A crash here (copy of the current file) loses exactly the buffered
  // window: commits 5 and 6, never a committed-and-synced batch.
  const std::string crashed = dir_ / "crashed.log";
  WriteFileBytes(crashed, ReadFileBytes(path));
  const Result<WalScan> scan = ReadWal(crashed);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->committed.size(), 4u);
  EXPECT_EQ(scan->committed.back().rid, 4u);

  // An explicit Sync drains the window; now everything is durable.
  ASSERT_TRUE((*wal)->Sync().ok());
  const Result<WalScan> full = ReadWal(path);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->committed.size(), 6u);
  EXPECT_FALSE(full->torn);
}

TEST_F(WalTest, CrcRejectsBitFlipsAnywhere) {
  const std::string path = dir_ / "wal.log";
  std::vector<uint64_t> rids;
  {
    Result<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(path, WalOptions{}, /*fresh=*/true);
    ASSERT_TRUE(wal.ok());
    for (uint64_t rid = 1; rid <= 5; ++rid) {
      ASSERT_TRUE(
          (*wal)->Append(WalRecordType::kInsert, rid, "payload").ok());
      ASSERT_TRUE((*wal)->Commit().ok());
      rids.push_back(rid);
    }
  }
  const std::string original = ReadFileBytes(path);
  ASSERT_FALSE(original.empty());

  const std::string flipped_path = dir_ / "flipped.log";
  for (size_t offset = 0; offset < original.size(); ++offset) {
    std::string flipped = original;
    flipped[offset] =
        static_cast<char>(flipped[offset] ^ (1 << (offset % 8)));
    WriteFileBytes(flipped_path, flipped);
    const Result<WalScan> scan = ReadWal(flipped_path);
    ASSERT_TRUE(scan.ok()) << "offset " << offset;
    // Whatever survives must be a clean prefix of what was written: rids
    // 1..k in order, never a skipped or altered batch.
    ASSERT_LE(scan->committed.size(), rids.size()) << "offset " << offset;
    for (size_t i = 0; i < scan->committed.size(); ++i) {
      EXPECT_EQ(scan->committed[i].rid, rids[i]) << "offset " << offset;
      EXPECT_EQ(scan->committed[i].payload, "payload") << "offset " << offset;
    }
    // A flip inside the last batch must drop at least that batch.
    EXPECT_LT(scan->committed.size(), rids.size()) << "offset " << offset;
  }
}

TEST_F(WalTest, EveryPrefixLengthRecoversCleanly) {
  const std::string path = dir_ / "wal.log";
  {
    Result<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(path, WalOptions{}, /*fresh=*/true);
    ASSERT_TRUE(wal.ok());
    for (uint64_t rid = 1; rid <= 4; ++rid) {
      ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, rid, "abc").ok());
      ASSERT_TRUE((*wal)->Commit().ok());
    }
  }
  const std::string original = ReadFileBytes(path);

  const std::string torn_path = dir_ / "torn.log";
  for (size_t len = 0; len <= original.size(); ++len) {
    WriteFileBytes(torn_path, original.substr(0, len));
    const Result<WalScan> scan = ReadWal(torn_path);
    ASSERT_TRUE(scan.ok()) << "len " << len;
    EXPECT_LE(scan->committed_bytes, len) << "len " << len;
    EXPECT_EQ(scan->torn, scan->committed_bytes != len) << "len " << len;
    for (size_t i = 0; i < scan->committed.size(); ++i) {
      EXPECT_EQ(scan->committed[i].rid, i + 1) << "len " << len;
    }

    // Opening for append repairs the tail permanently and resumes LSNs
    // above everything that ever existed in the prefix.
    Result<std::unique_ptr<WriteAheadLog>> reopened =
        WriteAheadLog::Open(torn_path, WalOptions{}, /*fresh=*/false);
    ASSERT_TRUE(reopened.ok()) << "len " << len;
    EXPECT_EQ(*FileSize(torn_path), scan->committed_bytes) << "len " << len;
    const Result<uint64_t> lsn =
        (*reopened)->Append(WalRecordType::kInsert, 99, "post");
    ASSERT_TRUE(lsn.ok());
    EXPECT_GT(*lsn, scan->last_lsn) << "len " << len;
    ASSERT_TRUE((*reopened)->Commit().ok());
    const Result<WalScan> rescan = ReadWal(torn_path);
    ASSERT_TRUE(rescan.ok());
    EXPECT_FALSE(rescan->torn) << "len " << len;
    ASSERT_FALSE(rescan->committed.empty());
    EXPECT_EQ(rescan->committed.back().rid, 99u) << "len " << len;
  }
}

TEST_F(WalTest, ReplayIsIdempotent) {
  const std::string path = dir_ / "wal.log";
  {
    Result<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(path, WalOptions{}, /*fresh=*/true);
    ASSERT_TRUE(wal.ok());
    for (uint64_t rid = 1; rid <= 3; ++rid) {
      ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, rid, "v").ok());
      ASSERT_TRUE((*wal)->Commit().ok());
    }
  }
  // Tear the file mid-frame.
  std::string bytes = ReadFileBytes(path);
  bytes.resize(bytes.size() - 7);
  WriteFileBytes(path, bytes);

  // Recover once (open truncates the tear), then recover again: both scans
  // and both file images must be identical.
  { ASSERT_TRUE(WriteAheadLog::Open(path, WalOptions{}, false).ok()); }
  const std::string after_first = ReadFileBytes(path);
  const Result<WalScan> first = ReadWal(path);
  { ASSERT_TRUE(WriteAheadLog::Open(path, WalOptions{}, false).ok()); }
  const std::string after_second = ReadFileBytes(path);
  const Result<WalScan> second = ReadWal(path);

  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(after_first, after_second);
  ASSERT_EQ(first->committed.size(), second->committed.size());
  EXPECT_EQ(first->committed.size(), 2u);  // batch 3 lost to the tear
  EXPECT_EQ(first->last_lsn, second->last_lsn);
  EXPECT_FALSE(second->torn);
}

TEST_F(WalTest, TruncateKeepsLsnsMonotonic) {
  const std::string path = dir_ / "wal.log";
  Result<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(path, WalOptions{}, /*fresh=*/true);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, 1, "a").ok());
  const Result<uint64_t> before = (*wal)->Commit();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE((*wal)->Truncate().ok());
  EXPECT_EQ((*wal)->log_bytes(), 0u);
  const Result<uint64_t> after =
      (*wal)->Append(WalRecordType::kInsert, 2, "b");
  ASSERT_TRUE(after.ok());
  EXPECT_GT(*after, *before);  // LSNs are never reused across truncation
  ASSERT_TRUE((*wal)->Commit().ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  const Result<WalScan> scan = ReadWal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->committed.size(), 1u);
  EXPECT_EQ(scan->committed[0].rid, 2u);
}

// ---------- crash points: the disk image each one must leave ----------

TEST_F(WalTest, CrashBeforeCommitLeavesRecordsWithoutMarker) {
  const std::string path = dir_ / "wal.log";
  Result<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(path, WalOptions{}, /*fresh=*/true);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, 1, "ok").ok());
  ASSERT_TRUE((*wal)->Commit().ok());

  ArmCrash("walBeforeCommit");
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, 2, "lost").ok());
  EXPECT_FALSE((*wal)->Commit().ok());
  EXPECT_TRUE((*wal)->dead());
  EXPECT_FALSE((*wal)->Append(WalRecordType::kInsert, 3, "").ok());
  EXPECT_FALSE((*wal)->Sync().ok());
  EXPECT_FALSE((*wal)->Truncate().ok());

  const Result<WalScan> scan = ReadWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn);  // record frames on disk past the horizon
  ASSERT_EQ(scan->committed.size(), 1u);
  EXPECT_EQ(scan->committed[0].rid, 1u);
}

TEST_F(WalTest, CrashTornTailIsCrcRejectedAndTruncated) {
  const std::string path = dir_ / "wal.log";
  Result<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(path, WalOptions{}, /*fresh=*/true);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, 1, "ok").ok());
  ASSERT_TRUE((*wal)->Commit().ok());
  const uint64_t horizon = *FileSize(path);

  ArmCrash("walTornTail");
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, 2, "torn").ok());
  EXPECT_FALSE((*wal)->Commit().ok());
  EXPECT_GT(*FileSize(path), horizon);  // the half-written marker is there

  const Result<WalScan> scan = ReadWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn);
  EXPECT_EQ(scan->committed.size(), 1u);
  EXPECT_EQ(scan->committed_bytes, horizon);

  wal->reset();
  FailPointRegistry::Instance().DisableAll();
  ASSERT_TRUE(WriteAheadLog::Open(path, WalOptions{}, false).ok());
  EXPECT_EQ(*FileSize(path), horizon);
}

TEST_F(WalTest, CrashAfterCommitIsDurableButUnacknowledged) {
  const std::string path = dir_ / "wal.log";
  Result<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(path, WalOptions{}, /*fresh=*/true);
  ASSERT_TRUE(wal.ok());

  ArmCrash("walAfterCommitBeforeAck");
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, 42, "kept").ok());
  EXPECT_FALSE((*wal)->Commit().ok());  // caller sees an error ...

  const Result<WalScan> scan = ReadWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->torn);  // ... but the batch is fully on disk
  ASSERT_EQ(scan->committed.size(), 1u);
  EXPECT_EQ(scan->committed[0].rid, 42u);
  EXPECT_EQ(scan->committed[0].payload, "kept");
}

}  // namespace
}  // namespace stix::storage
