// Cost-based plan selection: histogram-backed picks vs the trial race,
// the confidence-margin fallback, plan-cache invalidation on migration
// (the balancer-move regression), explain's estimated-vs-actual reporting,
// the ServerStatus planner section, and adaptive covering budgets.

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "st/st_store.h"

namespace stix::st {
namespace {

using cluster::ClusterExplain;
using cluster::ShardExplain;

constexpr int64_t kT0 = 1538352000000;
constexpr int64_t kDayMs = 86400000;

bson::Document PointDoc(double lon, double lat, int64_t t_ms, int32_t fid) {
  bson::Document doc;
  doc.Append(kLocationField,
             bson::Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
  doc.Append(kDateField, bson::Value::DateTime(t_ms));
  doc.Append("fid", bson::Value::Int32(fid));
  return doc;
}

StStoreOptions BaseOptions(ApproachKind kind) {
  StStoreOptions options;
  options.approach.kind = kind;
  options.approach.hilbert_order = 6;
  options.approach.dataset_mbr = geo::Rect{{0.0, 0.0}, {10.0, 10.0}};
  options.cluster.num_shards = 3;
  options.cluster.chunk_max_bytes = 16 * 1024;
  return options;
}

void LoadUniform(StStore* store, int count, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    // Sequence the draws explicitly: argument evaluation order is
    // unspecified, and the covering-budget oracle replays this stream.
    const double lon = rng.NextDouble(0.0, 10.0);
    const double lat = rng.NextDouble(0.0, 10.0);
    const int64_t t = kT0 + static_cast<int64_t>(rng.NextBounded(kDayMs));
    ASSERT_TRUE(store->Insert(PointDoc(lon, lat, t, i)).ok());
  }
  ASSERT_TRUE(store->FinishLoad().ok());
}

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Instance().GetCounter(name).value();
}

// Shards the explain actually planned (contacted with at least one
// candidate; untouched shards report "none").
std::vector<const ShardExplain*> PlannedShards(const ClusterExplain& ce) {
  std::vector<const ShardExplain*> out;
  for (const ShardExplain& se : ce.shards) {
    if (se.planned_by != "none") out.push_back(&se);
  }
  return out;
}

// ---------- Selection modes ----------

// Baselines expose two candidate plans; with fresh histograms the cost
// model must pick outright, and the explain tree must carry the estimate.
TEST(PlannerCostTest, CostModePicksWithoutRacing) {
  StStore store(BaseOptions(ApproachKind::kBslST));
  ASSERT_TRUE(store.Setup().ok());
  LoadUniform(&store, 800, 7);

  const uint64_t estimated_before = CounterValue("planner.plans_estimated");
  const uint64_t raced_before = CounterValue("planner.plans_raced");
  // Selective rect + unselective time window: the date_1 plan must touch
  // every key while the 2dsphere plan touches ~1% — an asymmetry far past
  // the confidence margin, so the pick is decisive on every shard.
  const StExplain explain = store.Explain(
      geo::Rect{{2.0, 2.0}, {3.0, 3.0}}, kT0, kT0 + kDayMs);
  const std::vector<const ShardExplain*> planned =
      PlannedShards(explain.cluster);
  ASSERT_FALSE(planned.empty());
  int cost_planned = 0;
  for (const ShardExplain* se : planned) {
    EXPECT_TRUE(se->planned_by == "cost" || se->planned_by == "race" ||
                se->planned_by == "cache")
        << se->planned_by;
    if (se->planned_by == "cost") {
      ++cost_planned;
      EXPECT_GE(se->estimated_keys, 0.0);
      EXPECT_GE(se->estimated_docs, 0.0);
    }
  }
  EXPECT_GT(cost_planned, 0);
  EXPECT_GT(CounterValue("planner.plans_estimated"), estimated_before);
  EXPECT_EQ(CounterValue("planner.plans_raced"), raced_before);

  const std::string json = explain.cluster.ToJson();
  EXPECT_NE(json.find("\"plannedBy\": \"cost\""), std::string::npos);
  EXPECT_NE(json.find("\"estimatedKeysExamined\""), std::string::npos);
  EXPECT_NE(json.find("\"estimatedDocsExamined\""), std::string::npos);
}

TEST(PlannerCostTest, RaceModeAlwaysRaces) {
  StStoreOptions options = BaseOptions(ApproachKind::kBslST);
  options.cluster.exec.plan_selection = query::PlanSelectionMode::kRace;
  StStore store(options);
  ASSERT_TRUE(store.Setup().ok());
  LoadUniform(&store, 400, 11);

  const StExplain explain = store.Explain(
      geo::Rect{{2.0, 2.0}, {5.0, 5.0}}, kT0, kT0 + kDayMs);
  for (const ShardExplain* se : PlannedShards(explain.cluster)) {
    EXPECT_EQ(se->planned_by, "race");
    EXPECT_LT(se->estimated_keys, 0.0);  // no estimate recorded
  }
}

// An absurd confidence margin means no estimate is ever decisive: every
// multi-candidate plan falls back to the race and the fallback counter
// moves.
TEST(PlannerCostTest, IndecisiveEstimatesFallBackToRace) {
  StStoreOptions options = BaseOptions(ApproachKind::kBslST);
  options.cluster.exec.cost_confidence_margin = 1e18;
  StStore store(options);
  ASSERT_TRUE(store.Setup().ok());
  LoadUniform(&store, 400, 13);

  const uint64_t fallbacks_before = CounterValue("planner.estimate_fallbacks");
  const StExplain explain = store.Explain(
      geo::Rect{{2.0, 2.0}, {5.0, 5.0}}, kT0, kT0 + kDayMs);
  const std::vector<const ShardExplain*> planned =
      PlannedShards(explain.cluster);
  ASSERT_FALSE(planned.empty());
  for (const ShardExplain* se : planned) {
    EXPECT_EQ(se->planned_by, "race");
  }
  EXPECT_GT(CounterValue("planner.estimate_fallbacks"), fallbacks_before);
}

// Hilbert approaches expose a single candidate: nothing to choose.
TEST(PlannerCostTest, SingleCandidateSkipsSelection) {
  StStore store(BaseOptions(ApproachKind::kHil));
  ASSERT_TRUE(store.Setup().ok());
  LoadUniform(&store, 300, 17);
  const StExplain explain = store.Explain(
      geo::Rect{{2.0, 2.0}, {5.0, 5.0}}, kT0, kT0 + kDayMs);
  for (const ShardExplain* se : PlannedShards(explain.cluster)) {
    EXPECT_TRUE(se->planned_by == "single" || se->planned_by == "cache")
        << se->planned_by;
  }
}

// Cost selection and the race must agree on results (the fuzzer's
// byte-parity oracle, pinned here on one fixed workload).
TEST(PlannerCostTest, CostAndRaceReturnIdenticalResults) {
  StStoreOptions cost_opts = BaseOptions(ApproachKind::kBslTS);
  StStoreOptions race_opts = cost_opts;
  race_opts.cluster.exec.plan_selection = query::PlanSelectionMode::kRace;
  StStore cost_store(cost_opts), race_store(race_opts);
  ASSERT_TRUE(cost_store.Setup().ok());
  ASSERT_TRUE(race_store.Setup().ok());
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const bson::Document doc = PointDoc(
        rng.NextDouble(0.0, 10.0), rng.NextDouble(0.0, 10.0),
        kT0 + static_cast<int64_t>(rng.NextBounded(kDayMs)), i);
    ASSERT_TRUE(cost_store.Insert(doc).ok());
    ASSERT_TRUE(race_store.Insert(doc).ok());
  }
  ASSERT_TRUE(cost_store.FinishLoad().ok());
  ASSERT_TRUE(race_store.FinishLoad().ok());

  Rng qrng(29);
  for (int i = 0; i < 10; ++i) {
    const double lon = qrng.NextDouble(0.0, 8.0);
    const double lat = qrng.NextDouble(0.0, 8.0);
    const geo::Rect rect{{lon, lat},
                         {lon + qrng.NextDouble(0.2, 2.0),
                          lat + qrng.NextDouble(0.2, 2.0)}};
    const int64_t t1 =
        kT0 + static_cast<int64_t>(qrng.NextBounded(kDayMs)) + 1;
    const StQueryResult a = cost_store.Query(rect, kT0, t1);
    const StQueryResult b = race_store.Query(rect, kT0, t1);
    ASSERT_TRUE(a.cluster.status.ok());
    ASSERT_TRUE(b.cluster.status.ok());
    EXPECT_EQ(a.cluster.docs.size(), b.cluster.docs.size()) << "query " << i;
  }
}

// ---------- Estimation accuracy (acceptance bound) ----------

// On a seeded uniform dataset the cost model's keys+docs prediction must
// land within a mean absolute relative error of 0.5 of the measured
// counters.
TEST(PlannerCostTest, EstimatesTrackActualsWithinHalfRelativeError) {
  // A fresh store per probe: the plan cache is shape-keyed (all rect
  // queries share one shape), so on a warm store only the first explain
  // would cost-plan — fresh stores make every probe contribute estimates.
  double err_sum = 0.0;
  int err_count = 0;
  Rng rng(37);
  for (int i = 0; i < 5; ++i) {
    StStore store(BaseOptions(ApproachKind::kBslTS));
    ASSERT_TRUE(store.Setup().ok());
    LoadUniform(&store, 1500, 31 + static_cast<uint64_t>(i));
    // Selective rects over the full day: cost asymmetry keeps the pick
    // decisive (see CostModePicksWithoutRacing), so every shard
    // contributes a cost-planned estimate to measure.
    const double lon = rng.NextDouble(0.0, 8.0);
    const double lat = rng.NextDouble(0.0, 8.0);
    const geo::Rect rect{{lon, lat}, {lon + 2.0, lat + 2.0}};
    const StExplain explain = store.Explain(rect, kT0, kT0 + kDayMs);
    for (const ShardExplain& se : explain.cluster.shards) {
      if (se.planned_by != "cost" || se.estimated_keys < 0.0) continue;
      const double actual = static_cast<double>(se.stats.keys_examined +
                                                se.stats.docs_examined);
      const double predicted = se.estimated_keys + se.estimated_docs;
      if (actual < 1.0) continue;  // relative error undefined near zero
      err_sum += std::abs(predicted - actual) / actual;
      ++err_count;
    }
  }
  ASSERT_GT(err_count, 0);
  EXPECT_LE(err_sum / err_count, 0.5);
}

// ---------- Plan-cache staleness (balancer-move regression) ----------

// A cached plan must be re-planned after a chunk migration: the moved data
// invalidates both the statistics and the plan cache on the affected
// shards, so the post-migration explain may not serve any stale cached
// plan from a shard whose distribution changed.
TEST(PlannerCostTest, CachedPlanReplannedAfterBalancerMove) {
  StStore store(BaseOptions(ApproachKind::kBslST));
  ASSERT_TRUE(store.Setup().ok());
  LoadUniform(&store, 900, 41);

  const geo::Rect rect{{0.0, 0.0}, {10.0, 10.0}};  // broadcast: all shards
  (void)store.Query(rect, kT0, kT0 + kDayMs);
  const StExplain cached = store.Explain(rect, kT0, kT0 + kDayMs);
  std::vector<int> cached_shards;
  for (const ShardExplain& se : cached.cluster.shards) {
    if (se.from_plan_cache) cached_shards.push_back(se.shard_id);
  }
  ASSERT_FALSE(cached_shards.empty());

  const uint64_t invalidations_before =
      CounterValue("planner.cache_invalidations");
  ASSERT_TRUE(store.ConfigureZones().ok());  // migrates chunks
  ASSERT_GT(CounterValue("planner.cache_invalidations"), invalidations_before)
      << "zone migration must invalidate at least one shard's plan cache";

  // Invalidated shards plan fresh; since the broadcast query touches every
  // shard, at least one previously-cached shard must now re-plan.
  const StExplain after = store.Explain(rect, kT0, kT0 + kDayMs);
  int replanned = 0;
  for (const ShardExplain& se : after.cluster.shards) {
    for (const int id : cached_shards) {
      if (se.shard_id == id && !se.from_plan_cache) ++replanned;
    }
  }
  EXPECT_GT(replanned, 0);
}

// ---------- ServerStatus planner section + profiler wiring ----------

TEST(PlannerCostTest, ServerStatusReportsPlannerSection) {
  StStoreOptions options = BaseOptions(ApproachKind::kBslST);
  options.cluster.profiler.enabled = true;
  options.cluster.profiler.slow_millis = 0.0;  // record every op
  StStore store(options);
  ASSERT_TRUE(store.Setup().ok());
  LoadUniform(&store, 600, 43);
  (void)store.Query(geo::Rect{{1.0, 1.0}, {3.0, 3.0}}, kT0, kT0 + kDayMs);
  (void)store.Query(geo::Rect{{1.0, 1.0}, {3.0, 3.0}}, kT0, kT0 + kDayMs);

  const std::string status = store.cluster().ServerStatus();
  EXPECT_NE(status.find("\"planner\""), std::string::npos);
  for (const char* key :
       {"\"plans_total\"", "\"plans_estimated\"", "\"plans_raced\"",
        "\"estimate_fallbacks\"", "\"estimate_misses\"",
        "\"cache_invalidations\"", "\"estimates_measured\"",
        "\"mean_abs_estimation_error\""}) {
    EXPECT_NE(status.find(key), std::string::npos) << key;
  }

  // The slow-op profiler retains full explain trees: the recorded ops carry
  // the planner's plannedBy verdict.
  const std::string profiler_json = status.substr(status.find("\"profiler\""));
  EXPECT_NE(profiler_json.find("\"plannedBy\""), std::string::npos);
}

// ---------- Adaptive covering budgets ----------

TEST(AdaptiveCoverBudgetTest, PickCoverBudgetThresholds) {
  ApproachConfig config;
  config.kind = ApproachKind::kHil;
  config.hilbert_order = 6;
  const Approach hil(config);
  EXPECT_EQ(hil.PickCoverBudget(-1.0), 0u);  // unknown: exact
  EXPECT_EQ(hil.PickCoverBudget(0.001), 0u);
  EXPECT_EQ(hil.PickCoverBudget(0.5), config.coarse_cover_max_ranges);

  config.adaptive_cover_budget = false;
  const Approach off(config);
  EXPECT_EQ(off.PickCoverBudget(0.5), 0u);

  config.adaptive_cover_budget = true;
  config.kind = ApproachKind::kBslST;
  const Approach baseline(config);
  EXPECT_EQ(baseline.PickCoverBudget(0.5), 0u);  // no covering at all
}

// A broad query over a Hilbert store gets a coarse (capped) covering once
// histograms exist, while a tiny query keeps the exact covering — and both
// still return exactly the right documents.
TEST(AdaptiveCoverBudgetTest, BroadQueriesCoverCoarselyAfterStatsBuild) {
  StStore store(BaseOptions(ApproachKind::kHilStar));
  ASSERT_TRUE(store.Setup().ok());
  LoadUniform(&store, 1200, 47);

  const geo::Rect broad{{0.5, 0.5}, {9.5, 9.5}};
  // First pass: no histograms yet -> unknown selectivity -> exact covering.
  const StExplain first = store.Explain(broad, kT0, kT0 + kDayMs);
  EXPECT_EQ(first.cover_budget, 0u);

  // Histograms now exist (the explain executed a query): the same broad
  // rect is recognized as low-selectivity and covered coarsely.
  const StExplain second = store.Explain(broad, kT0, kT0 + kDayMs);
  EXPECT_EQ(second.cover_budget,
            store.approach().config().coarse_cover_max_ranges);
  EXPECT_LE(second.num_ranges + second.num_singletons,
            store.approach().config().coarse_cover_max_ranges);

  // A tiny rect stays exact.
  const StExplain tiny =
      store.Explain(geo::Rect{{5.0, 5.0}, {5.05, 5.05}}, kT0, kT0 + 60000);
  EXPECT_EQ(tiny.cover_budget, 0u);

  // Coarse covering is a superset refined at FETCH: results stay exact.
  const StQueryResult res = store.Query(broad, kT0, kT0 + kDayMs);
  ASSERT_TRUE(res.cluster.status.ok());
  size_t oracle = 0;
  Rng rng(47);
  for (int i = 0; i < 1200; ++i) {
    const double lon = rng.NextDouble(0.0, 10.0);
    const double lat = rng.NextDouble(0.0, 10.0);
    (void)rng.NextBounded(kDayMs);
    if (broad.Contains({lon, lat})) ++oracle;
  }
  EXPECT_EQ(res.cluster.docs.size(), oracle);
}

}  // namespace
}  // namespace stix::st
