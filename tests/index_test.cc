#include <gtest/gtest.h>

#include "index/index.h"
#include "index/index_bounds.h"
#include "index/index_catalog.h"
#include "index/key_generator.h"
#include "keystring/keystring.h"

namespace stix::index {
namespace {

using bson::Value;

bson::Document PointDoc(double lon, double lat, int64_t date_ms) {
  bson::Document doc;
  doc.Append("location",
             Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
  doc.Append("date", Value::DateTime(date_ms));
  doc.Append("hilbertIndex", Value::Int64(42));
  return doc;
}

// ---------- descriptors ----------

TEST(IndexDescriptorTest, KeyPatternString) {
  const IndexDescriptor desc(
      "x", {{"location", IndexFieldKind::k2dsphere},
            {"date", IndexFieldKind::kAscending}});
  EXPECT_EQ(desc.KeyPatternString(), "{location: '2dsphere', date: 1}");
  EXPECT_EQ(desc.FirstGeoField(), 0);
  const IndexDescriptor plain("y", {{"date", IndexFieldKind::kAscending}});
  EXPECT_EQ(plain.FirstGeoField(), -1);
}

// ---------- key generation ----------

TEST(KeyGeneratorTest, AscendingFieldsEncodeDocumentValues) {
  const IndexDescriptor desc(
      "hd", {{"hilbertIndex", IndexFieldKind::kAscending},
             {"date", IndexFieldKind::kAscending}});
  const KeyGenerator gen(desc);
  const bson::Document doc = PointDoc(23.7, 37.9, 1000);
  const Result<std::string> key = gen.MakeKey(doc);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, keystring::Encode(
                      {Value::Int64(42), Value::DateTime(1000)}));
}

TEST(KeyGeneratorTest, MissingFieldEncodesNull) {
  const IndexDescriptor desc("d", {{"nope", IndexFieldKind::kAscending}});
  const KeyGenerator gen(desc);
  const Result<std::string> key = gen.MakeKey(PointDoc(0, 0, 0));
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, keystring::Encode(Value::Null()));
}

TEST(KeyGeneratorTest, GeoFieldEncodesCellHash) {
  const IndexDescriptor desc(
      "g", {{"location", IndexFieldKind::k2dsphere}}, 26);
  const KeyGenerator gen(desc);
  const Result<std::vector<Value>> values =
      gen.MakeKeyValues(PointDoc(23.727539, 37.983810, 0));
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), 1u);
  const geo::GeoHash gh(26);
  EXPECT_EQ((*values)[0].AsInt64(),
            static_cast<int64_t>(gh.Encode(23.727539, 37.983810)));
}

TEST(KeyGeneratorTest, GeoFieldRejectsNonPoint) {
  const IndexDescriptor desc(
      "g", {{"date", IndexFieldKind::k2dsphere}});  // date is not a point
  const KeyGenerator gen(desc);
  EXPECT_FALSE(gen.MakeKey(PointDoc(0, 0, 0)).ok());
}

// ---------- Index / catalog ----------

TEST(IndexTest, InsertThenRemoveKeepsTreeEmpty) {
  Index idx(IndexDescriptor("d", {{"date", IndexFieldKind::kAscending}}));
  const bson::Document doc = PointDoc(1, 2, 777);
  ASSERT_TRUE(idx.InsertDocument(doc, 9).ok());
  EXPECT_EQ(idx.btree().num_entries(), 1u);
  ASSERT_TRUE(idx.RemoveDocument(doc, 9).ok());
  EXPECT_EQ(idx.btree().num_entries(), 0u);
  EXPECT_FALSE(idx.RemoveDocument(doc, 9).ok());
}

TEST(IndexCatalogTest, RejectsDuplicateNames) {
  IndexCatalog catalog;
  ASSERT_TRUE(catalog
                  .CreateIndex(IndexDescriptor(
                      "a", {{"x", IndexFieldKind::kAscending}}))
                  .ok());
  EXPECT_EQ(catalog
                .CreateIndex(IndexDescriptor(
                    "a", {{"y", IndexFieldKind::kAscending}}))
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(IndexCatalogTest, MaintainsAllIndexes) {
  IndexCatalog catalog;
  ASSERT_TRUE(catalog
                  .CreateIndex(IndexDescriptor(
                      "d", {{"date", IndexFieldKind::kAscending}}))
                  .ok());
  ASSERT_TRUE(catalog
                  .CreateIndex(IndexDescriptor(
                      "h", {{"hilbertIndex", IndexFieldKind::kAscending}}))
                  .ok());
  const bson::Document doc = PointDoc(5, 5, 123);
  ASSERT_TRUE(catalog.OnInsert(doc, 1).ok());
  for (const auto& idx : catalog.indexes()) {
    EXPECT_EQ(idx->btree().num_entries(), 1u);
  }
  ASSERT_TRUE(catalog.OnRemove(doc, 1).ok());
  for (const auto& idx : catalog.indexes()) {
    EXPECT_EQ(idx->btree().num_entries(), 0u);
  }
}

TEST(IndexCatalogTest, FailedInsertRollsBackEarlierIndexes) {
  IndexCatalog catalog;
  ASSERT_TRUE(catalog
                  .CreateIndex(IndexDescriptor(
                      "d", {{"date", IndexFieldKind::kAscending}}))
                  .ok());
  // This index will fail keygen: 'date' is not a GeoJSON point.
  ASSERT_TRUE(catalog
                  .CreateIndex(IndexDescriptor(
                      "bad", {{"date", IndexFieldKind::k2dsphere}}))
                  .ok());
  const bson::Document doc = PointDoc(1, 1, 55);
  EXPECT_FALSE(catalog.OnInsert(doc, 3).ok());
  EXPECT_EQ(catalog.indexes()[0]->btree().num_entries(), 0u)
      << "first index entry must have been rolled back";
}

TEST(IndexCatalogTest, TotalSizeSumsIndexes) {
  IndexCatalog catalog;
  ASSERT_TRUE(catalog
                  .CreateIndex(IndexDescriptor(
                      "d", {{"date", IndexFieldKind::kAscending}}))
                  .ok());
  const uint64_t empty = catalog.TotalSizeBytes();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(catalog.OnInsert(PointDoc(i, i, i * 1000), i + 1).ok());
  }
  EXPECT_GT(catalog.TotalSizeBytes(), empty);
}

// ---------- bounds ----------

FieldBounds MakeBounds(std::vector<std::pair<int64_t, int64_t>> ranges) {
  FieldBounds fb;
  for (const auto& [lo, hi] : ranges) {
    fb.intervals.push_back(
        ValueInterval{Value::Int64(lo), Value::Int64(hi)});
  }
  fb.Normalize();
  return fb;
}

TEST(FieldBoundsTest, NormalizeSortsAndMerges) {
  const FieldBounds fb = MakeBounds({{10, 20}, {1, 5}, {15, 30}, {40, 40}});
  ASSERT_EQ(fb.intervals.size(), 3u);
  EXPECT_EQ(fb.intervals[0].lo.AsInt64(), 1);
  EXPECT_EQ(fb.intervals[0].hi.AsInt64(), 5);
  EXPECT_EQ(fb.intervals[1].lo.AsInt64(), 10);
  EXPECT_EQ(fb.intervals[1].hi.AsInt64(), 30);
  EXPECT_TRUE(fb.intervals[2].IsPoint());
}

TEST(CheckBoundsTest, InGapAndExhausted) {
  const FieldBounds fb = MakeBounds({{5, 9}, {20, 25}});
  EXPECT_EQ(CheckBounds(fb, Value::Int64(7)).kind,
            BoundsCheck::Kind::kInBounds);
  const BoundsCheck gap = CheckBounds(fb, Value::Int64(12));
  EXPECT_EQ(gap.kind, BoundsCheck::Kind::kSeekAhead);
  EXPECT_EQ(gap.seek_to->AsInt64(), 20);
  EXPECT_EQ(CheckBounds(fb, Value::Int64(26)).kind,
            BoundsCheck::Kind::kExhausted);
  EXPECT_EQ(CheckBounds(fb, Value::Int64(4)).kind,
            BoundsCheck::Kind::kSeekAhead);
}

TEST(CheckBoundsTest, FullRangeAlwaysIn) {
  FieldBounds fb;
  fb.full_range = true;
  EXPECT_EQ(CheckBounds(fb, Value::String("anything")).kind,
            BoundsCheck::Kind::kInBounds);
}

TEST(CheckBoundsTest, CrossNumericWidths) {
  // Index keys decode numbers as Double; bounds may be Int64.
  const FieldBounds fb = MakeBounds({{100, 200}});
  EXPECT_EQ(CheckBounds(fb, Value::Double(150.0)).kind,
            BoundsCheck::Kind::kInBounds);
  EXPECT_EQ(CheckBounds(fb, Value::Double(99.5)).kind,
            BoundsCheck::Kind::kSeekAhead);
}

}  // namespace
}  // namespace stix::index
