#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bson/object_id.h"
#include "common/rng.h"
#include "keystring/keystring.h"

namespace stix::keystring {
namespace {

using bson::Value;

// The core contract: memcmp order of encodings == bson::Compare order.
void ExpectOrderPreserved(const Value& a, const Value& b) {
  const int value_cmp = Compare(a, b);
  const std::string ka = Encode(a);
  const std::string kb = Encode(b);
  const int key_cmp = ka.compare(kb) < 0 ? -1 : (ka == kb ? 0 : 1);
  EXPECT_EQ(value_cmp < 0 ? -1 : (value_cmp == 0 ? 0 : 1), key_cmp)
      << "values order differently from their keystrings";
}

TEST(KeyStringTest, NumbersOrderAcrossWidths) {
  const std::vector<Value> values = {
      Value::Double(-1e9), Value::Int32(-5),     Value::Double(-0.5),
      Value::Int32(0),     Value::Double(0.25),  Value::Int32(1),
      Value::Int64(2),     Value::Double(2.5),   Value::Int64(1LL << 40),
      Value::Double(1e18),
  };
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = 0; j < values.size(); ++j) {
      ExpectOrderPreserved(values[i], values[j]);
    }
  }
}

TEST(KeyStringTest, NegativeZeroEqualsPositiveZero) {
  EXPECT_EQ(Encode(Value::Double(0.0)), Encode(Value::Double(-0.0)));
}

TEST(KeyStringTest, StringsOrder) {
  ExpectOrderPreserved(Value::String("a"), Value::String("b"));
  ExpectOrderPreserved(Value::String("ab"), Value::String("abc"));
  ExpectOrderPreserved(Value::String(""), Value::String("a"));
  ExpectOrderPreserved(Value::String("same"), Value::String("same"));
}

TEST(KeyStringTest, DatesOrder) {
  ExpectOrderPreserved(Value::DateTime(-1000), Value::DateTime(0));
  ExpectOrderPreserved(Value::DateTime(1530403200000),
                       Value::DateTime(1543622400000));
}

TEST(KeyStringTest, CrossTypeCanonicalOrder) {
  const std::vector<Value> ordered = {
      Value::Null(),        Value::Int32(123),  Value::String("s"),
      Value::Bool(false),   Value::DateTime(5),
  };
  for (size_t i = 0; i + 1 < ordered.size(); ++i) {
    ExpectOrderPreserved(ordered[i], ordered[i + 1]);
  }
}

TEST(KeyStringTest, ObjectIdsOrderByBytes) {
  bson::ObjectIdGenerator gen(4);
  const Value a = Value::Id(gen.Generate(100));
  const Value b = Value::Id(gen.Generate(200));
  ExpectOrderPreserved(a, b);
}

TEST(KeyStringTest, CompoundKeysOrderLexicographically) {
  // (h, date) pairs: h dominates, date breaks ties.
  const std::string k1 =
      Encode({Value::Int64(5), Value::DateTime(100)});
  const std::string k2 =
      Encode({Value::Int64(5), Value::DateTime(200)});
  const std::string k3 =
      Encode({Value::Int64(6), Value::DateTime(0)});
  EXPECT_LT(k1, k2);
  EXPECT_LT(k2, k3);
}

TEST(KeyStringTest, PrefixEncodingSortsBelowExtensions) {
  // enc(h) as a zone boundary vs enc(h, date) full keys: the prefix must
  // sort <= every full key with the same h and < keys with larger h.
  const std::string prefix = Encode(Value::Int64(5));
  const std::string full_same =
      Encode({Value::Int64(5), Value::DateTime(-999999)});
  const std::string full_above =
      Encode({Value::Int64(6), Value::DateTime(0)});
  EXPECT_LT(prefix, full_same);
  EXPECT_LT(prefix, full_above);
  const std::string prefix6 = Encode(Value::Int64(6));
  EXPECT_LT(full_same, prefix6);
}

TEST(KeyStringTest, MinMaxKeysBracketEverything) {
  const std::vector<Value> values = {
      Value::Null(),  Value::Int64(-1LL << 50), Value::String(""),
      Value::Bool(true), Value::DateTime(1LL << 60),
  };
  for (const Value& v : values) {
    EXPECT_LT(MinKey(), Encode(v));
    EXPECT_GT(MaxKey(), Encode(v));
  }
}

TEST(KeyStringTest, MinKeyPaddingSortsBelowAnyValueSuffix) {
  keystring::Builder with_pad;
  with_pad.AppendValue(Value::Int64(7)).AppendMinKey();
  const std::string padded = std::move(with_pad).Build();
  const std::string real =
      Encode({Value::Int64(7), Value::DateTime(-1LL << 40)});
  EXPECT_LT(padded, real);
}

TEST(KeyStringTest, MaxKeySuffixSortsAboveAnyValueSuffix) {
  keystring::Builder with_pad;
  with_pad.AppendValue(Value::Int64(7)).AppendMaxKey();
  const std::string padded = std::move(with_pad).Build();
  const std::string real =
      Encode({Value::Int64(7), Value::DateTime(1LL << 60)});
  EXPECT_GT(padded, real);
}

TEST(KeyStringTest, RandomizedOrderProperty) {
  Rng rng(23);
  std::vector<Value> values;
  for (int i = 0; i < 200; ++i) {
    switch (rng.NextBounded(4)) {
      case 0:
        values.push_back(Value::Int64(rng.NextInt(-1000000, 1000000)));
        break;
      case 1:
        values.push_back(Value::Double(rng.NextDouble(-1e6, 1e6)));
        break;
      case 2:
        values.push_back(Value::DateTime(rng.NextInt(0, 2000000000)));
        break;
      default:
        values.push_back(
            Value::String(std::string(rng.NextBounded(10), 'a' + rng.NextBounded(26))));
    }
  }
  for (int trial = 0; trial < 500; ++trial) {
    const Value& a = values[rng.NextBounded(values.size())];
    const Value& b = values[rng.NextBounded(values.size())];
    ExpectOrderPreserved(a, b);
  }
}

TEST(KeyStringDecodeTest, RoundTripsScalars) {
  bson::ObjectIdGenerator gen(6);
  const std::vector<Value> values = {
      Value::Null(),
      Value::Double(23.727539),
      Value::Int64(12345),  // decodes as Double, compares equal
      Value::String("swbb5"),
      Value::DateTime(1538383980067),
      Value::Id(gen.Generate(77)),
      Value::Bool(true),
  };
  const std::string key = Encode(values);
  std::vector<Value> decoded;
  ASSERT_TRUE(DecodeValues(key, &decoded));
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(Compare(values[i], decoded[i]), 0) << "at " << i;
  }
}

TEST(KeyStringDecodeTest, ReEncodingDecodedValuesIsIdentity) {
  // The index scan builds seek keys from decoded values; the bytes must
  // match the original encoding exactly.
  const std::string key = Encode(
      {Value::Int64(987654), Value::DateTime(1538383980067),
       Value::String("leaf")});
  std::vector<Value> decoded;
  ASSERT_TRUE(DecodeValues(key, &decoded));
  EXPECT_EQ(Encode(decoded), key);
}

TEST(KeyStringDecodeTest, RandomBytesNeverCrash) {
  Rng rng(101);
  std::vector<bson::Value> decoded;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes;
    const size_t n = rng.NextBounded(64);
    for (size_t i = 0; i < n; ++i) {
      bytes.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    (void)DecodeValues(bytes, &decoded);  // must not crash or over-read
  }
  SUCCEED();
}

// ---------- randomized property tests over the full scalar palette ----------

// Draws one random scalar Value covering every type the index layer encodes.
// Integers stay within ±2^53: numbers encode through their double image
// (OrderedDoubleBits), so wider int64s would lose low bits and the
// round-trip comparison would no longer be exact.
Value RandomScalar(Rng& rng, bson::ObjectIdGenerator& gen) {
  switch (rng.NextBounded(8)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng.NextBool(0.5));
    case 2:
      return Value::Int32(
          static_cast<int32_t>(rng.NextInt(INT32_MIN, INT32_MAX)));
    case 3:
      return Value::Int64(
          rng.NextInt(-(1LL << 53), 1LL << 53));
    case 4: {
      // Mix magnitudes: tiny, unit-scale, and huge doubles.
      const double mag = rng.NextDouble(-9, 18);
      const double v = rng.NextDouble(-1.0, 1.0) * std::pow(10.0, mag);
      return Value::Double(v);
    }
    case 5: {
      // NUL-free strings: the encoder terminates strings with 0x00.
      std::string s;
      const size_t n = rng.NextBounded(12);
      for (size_t i = 0; i < n; ++i) {
        s.push_back(static_cast<char>(1 + rng.NextBounded(255)));
      }
      return Value::String(std::move(s));
    }
    case 6:
      return Value::DateTime(rng.NextInt(-(1LL << 41), 1LL << 41));
    default:
      return Value::Id(gen.Generate(static_cast<uint32_t>(rng.Next())));
  }
}

TEST(KeyStringPropertyTest, RandomScalarsRoundTripThroughDecode) {
  Rng rng(4242);
  bson::ObjectIdGenerator gen(9);
  for (int trial = 0; trial < 2000; ++trial) {
    const Value v = RandomScalar(rng, gen);
    const std::string key = Encode(v);
    std::vector<Value> decoded;
    ASSERT_TRUE(DecodeValues(key, &decoded)) << "trial " << trial;
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_EQ(Compare(v, decoded[0]), 0)
        << "trial " << trial << ": decode changed the value";
    // Decoded values must re-encode to the identical bytes (seek keys are
    // rebuilt from decoded values).
    EXPECT_EQ(Encode(decoded[0]), key) << "trial " << trial;
  }
}

TEST(KeyStringPropertyTest, RandomPairsOrderLikeSemanticCompare) {
  Rng rng(31337);
  bson::ObjectIdGenerator gen(10);
  for (int trial = 0; trial < 3000; ++trial) {
    const Value a = RandomScalar(rng, gen);
    const Value b = RandomScalar(rng, gen);
    ExpectOrderPreserved(a, b);
  }
}

TEST(KeyStringPropertyTest, RandomSequencesOrderLexicographically) {
  // Multi-value keys (the (h, date) compound of the Hilbert approaches and
  // wider secondary indexes) must order exactly like the element-wise
  // lexicographic semantic comparison.
  Rng rng(271828);
  bson::ObjectIdGenerator gen(11);
  auto random_seq = [&]() {
    std::vector<Value> seq;
    const size_t n = 1 + rng.NextBounded(3);
    for (size_t i = 0; i < n; ++i) seq.push_back(RandomScalar(rng, gen));
    return seq;
  };
  auto semantic_cmp = [](const std::vector<Value>& a,
                         const std::vector<Value>& b) {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      const int c = Compare(a[i], b[i]);
      if (c != 0) return c < 0 ? -1 : 1;
    }
    return a.size() < b.size() ? -1 : (a.size() == b.size() ? 0 : 1);
  };
  for (int trial = 0; trial < 1500; ++trial) {
    std::vector<Value> a = random_seq();
    std::vector<Value> b = random_seq();
    // Shared prefixes exercise the tie-breaking path.
    if (rng.NextBool(0.3) && !a.empty()) {
      b = a;
      b.back() = RandomScalar(rng, gen);
    }
    const std::string ka = Encode(a);
    const std::string kb = Encode(b);
    const int key_cmp = ka.compare(kb) < 0 ? -1 : (ka == kb ? 0 : 1);
    EXPECT_EQ(semantic_cmp(a, b), key_cmp) << "trial " << trial;

    std::vector<Value> decoded;
    ASSERT_TRUE(DecodeValues(ka, &decoded));
    ASSERT_EQ(decoded.size(), a.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(Compare(a[i], decoded[i]), 0) << "trial " << trial;
    }
  }
}

TEST(KeyStringDecodeTest, RejectsTruncatedAndSentinels) {
  std::vector<Value> decoded;
  std::string key = Encode(Value::DateTime(1234567));
  key.pop_back();
  EXPECT_FALSE(DecodeValues(key, &decoded));
  EXPECT_FALSE(DecodeValues(MinKey(), &decoded));
  EXPECT_FALSE(DecodeValues(MaxKey(), &decoded));
}

}  // namespace
}  // namespace stix::keystring
