#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "bson/object_id.h"
#include "common/rng.h"
#include "keystring/keystring.h"

namespace stix::keystring {
namespace {

using bson::Value;

// The core contract: memcmp order of encodings == bson::Compare order.
void ExpectOrderPreserved(const Value& a, const Value& b) {
  const int value_cmp = Compare(a, b);
  const std::string ka = Encode(a);
  const std::string kb = Encode(b);
  const int key_cmp = ka.compare(kb) < 0 ? -1 : (ka == kb ? 0 : 1);
  EXPECT_EQ(value_cmp < 0 ? -1 : (value_cmp == 0 ? 0 : 1), key_cmp)
      << "values order differently from their keystrings";
}

TEST(KeyStringTest, NumbersOrderAcrossWidths) {
  const std::vector<Value> values = {
      Value::Double(-1e9), Value::Int32(-5),     Value::Double(-0.5),
      Value::Int32(0),     Value::Double(0.25),  Value::Int32(1),
      Value::Int64(2),     Value::Double(2.5),   Value::Int64(1LL << 40),
      Value::Double(1e18),
  };
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = 0; j < values.size(); ++j) {
      ExpectOrderPreserved(values[i], values[j]);
    }
  }
}

TEST(KeyStringTest, NegativeZeroEqualsPositiveZero) {
  EXPECT_EQ(Encode(Value::Double(0.0)), Encode(Value::Double(-0.0)));
}

TEST(KeyStringTest, StringsOrder) {
  ExpectOrderPreserved(Value::String("a"), Value::String("b"));
  ExpectOrderPreserved(Value::String("ab"), Value::String("abc"));
  ExpectOrderPreserved(Value::String(""), Value::String("a"));
  ExpectOrderPreserved(Value::String("same"), Value::String("same"));
}

TEST(KeyStringTest, DatesOrder) {
  ExpectOrderPreserved(Value::DateTime(-1000), Value::DateTime(0));
  ExpectOrderPreserved(Value::DateTime(1530403200000),
                       Value::DateTime(1543622400000));
}

TEST(KeyStringTest, CrossTypeCanonicalOrder) {
  const std::vector<Value> ordered = {
      Value::Null(),        Value::Int32(123),  Value::String("s"),
      Value::Bool(false),   Value::DateTime(5),
  };
  for (size_t i = 0; i + 1 < ordered.size(); ++i) {
    ExpectOrderPreserved(ordered[i], ordered[i + 1]);
  }
}

TEST(KeyStringTest, ObjectIdsOrderByBytes) {
  bson::ObjectIdGenerator gen(4);
  const Value a = Value::Id(gen.Generate(100));
  const Value b = Value::Id(gen.Generate(200));
  ExpectOrderPreserved(a, b);
}

TEST(KeyStringTest, CompoundKeysOrderLexicographically) {
  // (h, date) pairs: h dominates, date breaks ties.
  const std::string k1 =
      Encode({Value::Int64(5), Value::DateTime(100)});
  const std::string k2 =
      Encode({Value::Int64(5), Value::DateTime(200)});
  const std::string k3 =
      Encode({Value::Int64(6), Value::DateTime(0)});
  EXPECT_LT(k1, k2);
  EXPECT_LT(k2, k3);
}

TEST(KeyStringTest, PrefixEncodingSortsBelowExtensions) {
  // enc(h) as a zone boundary vs enc(h, date) full keys: the prefix must
  // sort <= every full key with the same h and < keys with larger h.
  const std::string prefix = Encode(Value::Int64(5));
  const std::string full_same =
      Encode({Value::Int64(5), Value::DateTime(-999999)});
  const std::string full_above =
      Encode({Value::Int64(6), Value::DateTime(0)});
  EXPECT_LT(prefix, full_same);
  EXPECT_LT(prefix, full_above);
  const std::string prefix6 = Encode(Value::Int64(6));
  EXPECT_LT(full_same, prefix6);
}

TEST(KeyStringTest, MinMaxKeysBracketEverything) {
  const std::vector<Value> values = {
      Value::Null(),  Value::Int64(-1LL << 50), Value::String(""),
      Value::Bool(true), Value::DateTime(1LL << 60),
  };
  for (const Value& v : values) {
    EXPECT_LT(MinKey(), Encode(v));
    EXPECT_GT(MaxKey(), Encode(v));
  }
}

TEST(KeyStringTest, MinKeyPaddingSortsBelowAnyValueSuffix) {
  keystring::Builder with_pad;
  with_pad.AppendValue(Value::Int64(7)).AppendMinKey();
  const std::string padded = std::move(with_pad).Build();
  const std::string real =
      Encode({Value::Int64(7), Value::DateTime(-1LL << 40)});
  EXPECT_LT(padded, real);
}

TEST(KeyStringTest, MaxKeySuffixSortsAboveAnyValueSuffix) {
  keystring::Builder with_pad;
  with_pad.AppendValue(Value::Int64(7)).AppendMaxKey();
  const std::string padded = std::move(with_pad).Build();
  const std::string real =
      Encode({Value::Int64(7), Value::DateTime(1LL << 60)});
  EXPECT_GT(padded, real);
}

TEST(KeyStringTest, RandomizedOrderProperty) {
  Rng rng(23);
  std::vector<Value> values;
  for (int i = 0; i < 200; ++i) {
    switch (rng.NextBounded(4)) {
      case 0:
        values.push_back(Value::Int64(rng.NextInt(-1000000, 1000000)));
        break;
      case 1:
        values.push_back(Value::Double(rng.NextDouble(-1e6, 1e6)));
        break;
      case 2:
        values.push_back(Value::DateTime(rng.NextInt(0, 2000000000)));
        break;
      default:
        values.push_back(
            Value::String(std::string(rng.NextBounded(10), 'a' + rng.NextBounded(26))));
    }
  }
  for (int trial = 0; trial < 500; ++trial) {
    const Value& a = values[rng.NextBounded(values.size())];
    const Value& b = values[rng.NextBounded(values.size())];
    ExpectOrderPreserved(a, b);
  }
}

TEST(KeyStringDecodeTest, RoundTripsScalars) {
  bson::ObjectIdGenerator gen(6);
  const std::vector<Value> values = {
      Value::Null(),
      Value::Double(23.727539),
      Value::Int64(12345),  // decodes as Double, compares equal
      Value::String("swbb5"),
      Value::DateTime(1538383980067),
      Value::Id(gen.Generate(77)),
      Value::Bool(true),
  };
  const std::string key = Encode(values);
  std::vector<Value> decoded;
  ASSERT_TRUE(DecodeValues(key, &decoded));
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(Compare(values[i], decoded[i]), 0) << "at " << i;
  }
}

TEST(KeyStringDecodeTest, ReEncodingDecodedValuesIsIdentity) {
  // The index scan builds seek keys from decoded values; the bytes must
  // match the original encoding exactly.
  const std::string key = Encode(
      {Value::Int64(987654), Value::DateTime(1538383980067),
       Value::String("leaf")});
  std::vector<Value> decoded;
  ASSERT_TRUE(DecodeValues(key, &decoded));
  EXPECT_EQ(Encode(decoded), key);
}

TEST(KeyStringDecodeTest, RandomBytesNeverCrash) {
  Rng rng(101);
  std::vector<bson::Value> decoded;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes;
    const size_t n = rng.NextBounded(64);
    for (size_t i = 0; i < n; ++i) {
      bytes.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    (void)DecodeValues(bytes, &decoded);  // must not crash or over-read
  }
  SUCCEED();
}

TEST(KeyStringDecodeTest, RejectsTruncatedAndSentinels) {
  std::vector<Value> decoded;
  std::string key = Encode(Value::DateTime(1234567));
  key.pop_back();
  EXPECT_FALSE(DecodeValues(key, &decoded));
  EXPECT_FALSE(DecodeValues(MinKey(), &decoded));
  EXPECT_FALSE(DecodeValues(MaxKey(), &decoded));
}

}  // namespace
}  // namespace stix::keystring
