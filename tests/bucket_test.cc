#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bson/codec.h"
#include "bson/object_id.h"
#include "common/rng.h"
#include "storage/bucket.h"
#include "storage/bucket_catalog.h"

namespace stix::storage {
namespace {

// One trajectory-shaped point, same field set and order as the workload
// generator (plus the _id the store appends).
bson::Document MakePoint(int vehicle, int64_t ts, double lon, double lat,
                         int i) {
  static bson::ObjectIdGenerator oid_gen(42);
  bson::Document doc;
  doc.Append("vehicleId", bson::Value::Int32(vehicle));
  doc.Append("location",
             bson::Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
  doc.Append("date", bson::Value::DateTime(ts));
  doc.Append("speed", bson::Value::Double(40.0 + i));
  doc.Append("roadType",
             bson::Value::String(i % 2 == 0 ? "primary" : "service"));
  doc.Append("payload", bson::Value::String(std::string(64, 'p')));
  doc.Append("_id", bson::Value::Id(oid_gen.Generate(
      static_cast<uint32_t>(ts / 1000))));
  return doc;
}

std::vector<bson::Document> MakeWindowPoints(const BucketLayout& layout,
                                             int n) {
  std::vector<bson::Document> points;
  const int64_t base = layout.WindowBase(1530403200000);
  for (int i = 0; i < n; ++i) {
    points.push_back(MakePoint(7, base + i * 1000, 23.7 + i * 1e-4,
                               37.9 + i * 1e-4, i));
  }
  return points;
}

void ExpectBitExact(const std::vector<bson::Document>& original,
                    const std::vector<bson::Document>& decoded) {
  ASSERT_EQ(decoded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    // Byte-level BSON equality: field order, types and every value.
    EXPECT_EQ(bson::EncodeBson(decoded[i]), bson::EncodeBson(original[i]))
        << "point " << i;
  }
}

TEST(BucketCodecTest, RoundTripIsBitExact) {
  const BucketLayout layout;
  const std::vector<bson::Document> points = MakeWindowPoints(layout, 64);
  const Result<bson::Document> bucket = EncodeBucket(points, layout);
  ASSERT_TRUE(bucket.ok()) << bucket.status().ToString();
  EXPECT_TRUE(IsBucketDocument(*bucket));
  const Result<std::vector<bson::Document>> back =
      DecodeBucket(*bucket, layout);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectBitExact(points, *back);
}

TEST(BucketCodecTest, UniformSchemaUsesColumnarResiduals) {
  // All points share a residual schema -> the "cols" encoding; mixed
  // schemas (every other point lacks a field) must fall back to "res".
  // Both decode bit-exactly.
  const BucketLayout layout;
  const std::vector<bson::Document> uniform = MakeWindowPoints(layout, 32);
  const Result<bson::Document> cols_bucket = EncodeBucket(uniform, layout);
  ASSERT_TRUE(cols_bucket.ok());
  const bson::Value* data = cols_bucket->Get(kBucketDataField);
  ASSERT_NE(data, nullptr);
  EXPECT_NE(data->AsDocument().Get("cols"), nullptr);
  EXPECT_EQ(data->AsDocument().Get("res"), nullptr);

  std::vector<bson::Document> mixed = MakeWindowPoints(layout, 32);
  for (size_t i = 0; i < mixed.size(); i += 2) {
    mixed[i].Append("extra", bson::Value::Int32(static_cast<int32_t>(i)));
  }
  const Result<bson::Document> res_bucket = EncodeBucket(mixed, layout);
  ASSERT_TRUE(res_bucket.ok());
  const bson::Value* mixed_data = res_bucket->Get(kBucketDataField);
  ASSERT_NE(mixed_data, nullptr);
  EXPECT_EQ(mixed_data->AsDocument().Get("cols"), nullptr);
  EXPECT_NE(mixed_data->AsDocument().Get("res"), nullptr);

  const Result<std::vector<bson::Document>> back_cols =
      DecodeBucket(*cols_bucket, layout);
  ASSERT_TRUE(back_cols.ok());
  ExpectBitExact(uniform, *back_cols);
  const Result<std::vector<bson::Document>> back_res =
      DecodeBucket(*res_bucket, layout);
  ASSERT_TRUE(back_res.ok()) << back_res.status().ToString();
  ExpectBitExact(mixed, *back_res);
}

TEST(BucketCodecTest, MetaMatchesPoints) {
  const BucketLayout layout;
  const std::vector<bson::Document> points = MakeWindowPoints(layout, 48);
  const Result<bson::Document> bucket = EncodeBucket(points, layout);
  ASSERT_TRUE(bucket.ok());
  const Result<BucketMeta> meta = ParseBucketMeta(*bucket);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta->num_points, 48u);
  const int64_t base = layout.WindowBase(1530403200000);
  EXPECT_EQ(meta->min_ts, base);
  EXPECT_EQ(meta->max_ts, base + 47 * 1000);
  ASSERT_TRUE(meta->has_mbr);
  // Tight MBR over the generated drift.
  EXPECT_DOUBLE_EQ(meta->mbr.lo.lon, 23.7);
  EXPECT_DOUBLE_EQ(meta->mbr.hi.lon, 23.7 + 47 * 1e-4);
  EXPECT_DOUBLE_EQ(meta->mbr.lo.lat, 37.9);
  EXPECT_DOUBLE_EQ(meta->mbr.hi.lat, 37.9 + 47 * 1e-4);
}

TEST(BucketCodecTest, TimeLocColumnsAreBitExactWithDecodedPoints) {
  const BucketLayout layout;
  const std::vector<bson::Document> points = MakeWindowPoints(layout, 48);
  const Result<bson::Document> bucket = EncodeBucket(points, layout);
  ASSERT_TRUE(bucket.ok());
  const Result<BucketTimeLoc> cols = DecodeBucketTimeLoc(*bucket);
  ASSERT_TRUE(cols.ok()) << cols.status().ToString();
  ASSERT_EQ(cols->ts.size(), points.size());
  ASSERT_EQ(cols->lon.size(), points.size());
  ASSERT_EQ(cols->lat.size(), points.size());
  const Result<std::vector<bson::Document>> back =
      DecodeBucket(*bucket, layout);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(cols->ts[i], (*back)[i].Get(layout.time_field)->AsDateTime());
    double lon = 0, lat = 0;
    ASSERT_TRUE(bson::ExtractGeoJsonPoint(
        *(*back)[i].Get(layout.location_field), &lon, &lat));
    // Bit-exact, not just approximately equal: a columnar predicate must
    // agree with one evaluated on the reconstructed documents.
    EXPECT_EQ(std::memcmp(&cols->lon[i], &lon, sizeof lon), 0);
    EXPECT_EQ(std::memcmp(&cols->lat[i], &lat, sizeof lat), 0);
  }
}

TEST(BucketCodecTest, RejectsPointsAcrossWindows) {
  const BucketLayout layout;
  std::vector<bson::Document> points = MakeWindowPoints(layout, 4);
  const int64_t base = layout.WindowBase(1530403200000);
  points.push_back(MakePoint(7, base + layout.window_ms, 23.7, 37.9, 4));
  EXPECT_FALSE(EncodeBucket(points, layout).ok());
}

TEST(BucketCodecTest, CorruptedColumnsFailCleanly) {
  // Truncate / flip bytes inside the data payloads: decode must return
  // Corruption, never crash or fabricate points.
  const BucketLayout layout;
  const std::vector<bson::Document> points = MakeWindowPoints(layout, 16);
  const Result<bson::Document> bucket = EncodeBucket(points, layout);
  ASSERT_TRUE(bucket.ok());
  const bson::Document& data = bucket->Get(kBucketDataField)->AsDocument();
  for (const auto& [name, value] : data) {
    if (value.type() != bson::Type::kString) continue;
    const std::string& column = value.AsString();
    for (const size_t cut : {size_t{0}, column.size() / 2}) {
      if (cut > column.size()) continue;
      bson::Document mutated = *bucket;
      bson::Document mutated_data = data;
      mutated_data.Set(name, bson::Value::String(column.substr(0, cut)));
      mutated.Set(kBucketDataField,
                  bson::Value::MakeDocument(std::move(mutated_data)));
      const auto result = DecodeBucket(mutated, layout);
      EXPECT_FALSE(result.ok()) << "column " << name << " cut " << cut;
    }
  }
}

TEST(BucketCodecTest, RandomizedRoundTrip) {
  Rng rng(0xb0c4e7);
  const BucketLayout layout;
  const int64_t base = layout.WindowBase(1530403200000);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<bson::Document> points;
    const int n = 1 + static_cast<int>(rng.NextBounded(100));
    int64_t ts = base;
    for (int i = 0; i < n; ++i) {
      bson::Document p;
      p.Append("vehicleId", bson::Value::Int32(3));
      p.Append("location",
               bson::Value::MakeDocument(bson::GeoJsonPoint(
                   rng.NextDouble(19.0, 29.0), rng.NextDouble(34.0, 42.0))));
      p.Append("date", bson::Value::DateTime(ts));
      // Adversarial residuals: bit-pattern doubles, negative ints, strings
      // of varying length — uniform schema, hostile values.
      const uint64_t bits = rng.Next();
      double d;
      static_assert(sizeof(d) == sizeof(bits));
      __builtin_memcpy(&d, &bits, 8);
      p.Append("noise", bson::Value::Double(d));
      p.Append("count", bson::Value::Int64(rng.NextInt(-1000000, 1000000)));
      p.Append("tag", bson::Value::String(std::string(
                          rng.NextBounded(40), static_cast<char>(
                                                   'a' + rng.NextBounded(26)))));
      points.push_back(std::move(p));
      ts += static_cast<int64_t>(rng.NextBounded(1000));
      if (ts >= base + layout.window_ms) ts = base + layout.window_ms - 1;
    }
    const Result<bson::Document> bucket = EncodeBucket(points, layout);
    ASSERT_TRUE(bucket.ok()) << bucket.status().ToString();
    const Result<std::vector<bson::Document>> back =
        DecodeBucket(*bucket, layout);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ExpectBitExact(points, *back);
  }
}

TEST(BucketCodecTest, GoldenBucketShape) {
  // Pins the bucket document's structure (not full bytes — ObjectIds are
  // per-run): top-level fields, meta layout and the version stamp. A
  // change here is a storage format break.
  const BucketLayout layout;
  const std::vector<bson::Document> points = MakeWindowPoints(layout, 8);
  const Result<bson::Document> bucket = EncodeBucket(points, layout);
  ASSERT_TRUE(bucket.ok());
  EXPECT_NE(bucket->Get("_id"), nullptr);
  const bson::Value* time = bucket->Get(layout.time_field);
  ASSERT_NE(time, nullptr);
  EXPECT_EQ(time->AsDateTime(), layout.WindowBase(1530403200000));
  const bson::Value* meta = bucket->Get(kBucketMetaField);
  ASSERT_NE(meta, nullptr);
  for (const char* field : {"minTs", "maxTs", "n", "mbr"}) {
    EXPECT_NE(meta->AsDocument().Get(field), nullptr) << field;
  }
  const bson::Value* data = bucket->Get(kBucketDataField);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->AsDocument().Get("v")->AsInt32(), 1);
  for (const char* field : {"ts", "lon", "lat", "ids", "cols"}) {
    EXPECT_NE(data->AsDocument().Get(field), nullptr) << field;
  }
}

// ---------- BucketCatalog ----------

TEST(BucketCatalogTest, SealsOnMaxPoints) {
  BucketLayout layout;
  layout.max_points = 10;
  std::vector<bson::Document> flushed;
  BucketCatalog catalog(layout, {}, [&](bson::Document bucket) {
    flushed.push_back(std::move(bucket));
    return Status::OK();
  });
  const int64_t base = layout.WindowBase(1530403200000);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(catalog.Add(MakePoint(1, base + i, 23.7, 37.9, i)).ok());
  }
  EXPECT_EQ(flushed.size(), 2u);  // two full seals, 5 points buffered
  EXPECT_EQ(catalog.points_buffered(), 5u);
  ASSERT_TRUE(catalog.FlushAll().ok());
  EXPECT_EQ(flushed.size(), 3u);
  EXPECT_EQ(catalog.points_buffered(), 0u);
  uint64_t total = 0;
  for (const bson::Document& bucket : flushed) {
    const Result<BucketMeta> meta = ParseBucketMeta(bucket);
    ASSERT_TRUE(meta.ok());
    total += meta->num_points;
  }
  EXPECT_EQ(total, 25u);
}

TEST(BucketCatalogTest, KeysByVehicleAndWindow) {
  BucketLayout layout;
  layout.window_ms = 1000;
  std::vector<bson::Document> flushed;
  BucketCatalog catalog(layout, {}, [&](bson::Document bucket) {
    flushed.push_back(std::move(bucket));
    return Status::OK();
  });
  const int64_t base = layout.WindowBase(1530403200000);
  // Two vehicles, two windows each -> four buckets.
  for (const int vehicle : {1, 2}) {
    for (const int64_t t : {base, base + 1, base + 1000, base + 1001}) {
      ASSERT_TRUE(catalog.Add(MakePoint(vehicle, t, 23.7, 37.9, 0)).ok());
    }
  }
  EXPECT_EQ(catalog.open_buckets(), 4u);
  ASSERT_TRUE(catalog.FlushAll().ok());
  EXPECT_EQ(flushed.size(), 4u);
  EXPECT_EQ(catalog.open_buckets(), 0u);
}

TEST(BucketCatalogTest, FailedFlushKeepsPointsAndRetries) {
  BucketLayout layout;
  bool fail = true;
  std::vector<bson::Document> flushed;
  BucketCatalog catalog(layout, {}, [&](bson::Document bucket) {
    if (fail) return Status::Internal("flush rejected");
    flushed.push_back(std::move(bucket));
    return Status::OK();
  });
  const int64_t base = layout.WindowBase(1530403200000);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(catalog.Add(MakePoint(1, base + i, 23.7, 37.9, i)).ok());
  }
  EXPECT_FALSE(catalog.FlushAll().ok());
  EXPECT_EQ(catalog.points_buffered(), 5u);  // nothing lost
  fail = false;
  ASSERT_TRUE(catalog.FlushAll().ok());
  ASSERT_EQ(flushed.size(), 1u);
  const Result<BucketMeta> meta = ParseBucketMeta(flushed[0]);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->num_points, 5u);
  EXPECT_EQ(catalog.points_buffered(), 0u);
}

TEST(BucketCatalogTest, HilbertCellSplitsBuckets) {
  BucketLayout layout;
  layout.use_hilbert = true;
  layout.hilbert_shift = 4;
  std::vector<bson::Document> flushed;
  BucketCatalog catalog(layout, {}, [&](bson::Document bucket) {
    flushed.push_back(std::move(bucket));
    return Status::OK();
  });
  const int64_t base = layout.WindowBase(1530403200000);
  // Same vehicle and window, two far-apart hilbert cells.
  for (const int64_t hil : {int64_t{0}, int64_t{1} << 20}) {
    for (int i = 0; i < 3; ++i) {
      bson::Document p = MakePoint(1, base + i, 23.7, 37.9, i);
      p.Append(layout.hilbert_field, bson::Value::Int64(hil + i));
      ASSERT_TRUE(catalog.Add(std::move(p)).ok());
    }
  }
  EXPECT_EQ(catalog.open_buckets(), 2u);
  ASSERT_TRUE(catalog.FlushAll().ok());
  ASSERT_EQ(flushed.size(), 2u);
  for (const bson::Document& bucket : flushed) {
    const Result<BucketMeta> meta = ParseBucketMeta(bucket);
    ASSERT_TRUE(meta.ok());
    EXPECT_EQ(meta->num_points, 3u);
    EXPECT_EQ(meta->hil_ranges.size(), 1u);  // 3 consecutive values
  }
}

}  // namespace
}  // namespace stix::storage
