// Stress tests for the shard-level concurrency control layer: concurrent
// readers, writers and the online balancer on one cluster; interleaved
// getMore/insert on a single shard; and the background balancer's
// lifecycle. These are the tests the TSAN CI job runs — the assertions
// check correctness bounds, and the sanitizer checks the locking.

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "query/expression.h"

namespace stix::cluster {
namespace {

using bson::Value;

bson::Document Doc(int id, double lon, double lat, int64_t date_ms) {
  bson::Document doc;
  doc.Append("_id", Value::Int64(id));
  doc.Append("location", Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
  doc.Append("date", Value::DateTime(date_ms));
  doc.Append("pad", Value::String(std::string(120, 'p')));
  return doc;
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  ClusterOptions Options() {
    ClusterOptions opts;
    opts.num_shards = 4;
    opts.chunk_max_bytes = 8 * 1024;  // plenty of splits
    opts.balance_every_inserts = 200;
    opts.seed = 9;
    opts.balancer.background_interval_ms = 1;
    return opts;
  }

  void ShardOnDate(Cluster* cluster) {
    ASSERT_TRUE(
        cluster
            ->ShardCollection(ShardKeyPattern({"date"}, ShardingStrategy::kRange))
            .ok());
  }

  void Load(Cluster* cluster, int n) {
    Rng rng(77);
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(cluster
                      ->Insert(Doc(i, rng.NextDouble(0, 10),
                                   rng.NextDouble(0, 10), 60000LL * i))
                      .ok());
    }
  }
};

TEST_F(ConcurrencyTest, ReadersWritersAndBalancerRunConcurrently) {
  constexpr int kBase = 1200;
  constexpr int kWriters = 2;
  constexpr int kExtraPerWriter = 300;
  constexpr int kReaders = 3;
  constexpr int kReadsPerReader = 15;

  Cluster cluster(Options());
  ShardOnDate(&cluster);
  Load(&cluster, kBase);
  cluster.Balance();
  cluster.StartBalancer();

  // The query window covers base documents 100..1000; every concurrent
  // insert is dated far beyond it, so each drain must return exactly these
  // 901 ids no matter how the writers and the balancer interleave.
  const query::ExprPtr q = query::MakeRange(
      "date", Value::DateTime(60000LL * 100), Value::DateTime(60000LL * 1000));
  std::set<int64_t> expected;
  for (int64_t id = 100; id <= 1000; ++id) expected.insert(id);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&cluster, &failures, w] {
      Rng rng(1000 + static_cast<uint64_t>(w));
      for (int i = 0; i < kExtraPerWriter; ++i) {
        const int id = kBase + w * kExtraPerWriter + i;
        if (!cluster
                 .Insert(Doc(id, rng.NextDouble(0, 10), rng.NextDouble(0, 10),
                             60000LL * (3000 + id)))
                 .ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&cluster, &q, &expected, &failures] {
      for (int i = 0; i < kReadsPerReader; ++i) {
        CursorOptions copts;
        copts.batch_size = 31;
        const ClusterQueryResult result = cluster.OpenCursor(q, copts)->Drain();
        if (!result.status.ok() || result.docs.size() != expected.size()) {
          failures.fetch_add(1);
          return;
        }
        std::set<int64_t> got;
        for (const bson::Document& d : result.docs) {
          got.insert(d.Get("_id")->AsInt64());
        }
        if (got != expected) {  // set: also catches duplicates via the size
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  cluster.StopBalancer();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cluster.total_documents(),
            static_cast<uint64_t>(kBase + kWriters * kExtraPerWriter));
  EXPECT_TRUE(cluster.chunks().CheckInvariants());
  const ClusterQueryResult quiesced = cluster.Query(q);
  EXPECT_TRUE(quiesced.status.ok());
  EXPECT_EQ(quiesced.docs.size(), expected.size());
}

TEST_F(ConcurrencyTest, ShardGetMoreAndInsertInterleaveSafely) {
  constexpr int kBase = 800;
  Shard shard(0);
  ASSERT_TRUE(shard.catalog()
                  .CreateIndex(index::IndexDescriptor(
                      "date_1", {{"date", index::IndexFieldKind::kAscending}}))
                  .ok());
  Rng rng(13);
  for (int i = 0; i < kBase; ++i) {
    ASSERT_TRUE(shard
                    .Insert(Doc(i, rng.NextDouble(0, 10), rng.NextDouble(0, 10),
                                60000LL * i))
                    .ok());
  }

  // Writer splits btree leaves beyond the scan bounds while the main thread
  // streams in small batches under the default yield policy. The scan's
  // bounds exclude every inserted key, so the drain is exactly the 501
  // pre-existing matches.
  const query::ExprPtr q = query::MakeRange("date", Value::DateTime(0),
                                            Value::DateTime(60000LL * 500));
  std::atomic<bool> write_failed{false};
  std::thread writer([&shard, &write_failed] {
    Rng wrng(29);
    for (int i = 0; i < 400; ++i) {
      const int id = 10000 + i;
      if (!shard
               .Insert(Doc(id, wrng.NextDouble(0, 10), wrng.NextDouble(0, 10),
                           60000LL * id))
               .ok()) {
        write_failed.store(true);
        return;
      }
    }
  });

  std::set<int64_t> streamed;
  size_t total = 0;
  auto cursor = shard.OpenCursor(q, {});
  while (!cursor->exhausted()) {
    const ShardCursor::Batch batch = cursor->GetMore(/*batch_size=*/9);
    ASSERT_TRUE(batch.error.ok());
    for (const bson::Document* d : batch.docs) {
      streamed.insert(d->Get("_id")->AsInt64());
      ++total;
    }
  }
  writer.join();
  ASSERT_FALSE(write_failed.load());

  EXPECT_EQ(total, 501u);  // no duplicates across yield/restore boundaries
  EXPECT_EQ(streamed.size(), 501u);
  EXPECT_EQ(*streamed.begin(), 0);
  EXPECT_EQ(*streamed.rbegin(), 500);
}

TEST_F(ConcurrencyTest, BalancerLifecycleIsIdempotentAndRestartable) {
  Cluster cluster(Options());
  // Starting before the collection is sharded is safe: rounds no-op until a
  // chunk table exists.
  cluster.StartBalancer();
  cluster.StartBalancer();  // idempotent
  EXPECT_TRUE(cluster.balancer_running());
  cluster.StopBalancer();
  cluster.StopBalancer();  // idempotent
  EXPECT_FALSE(cluster.balancer_running());

  ShardOnDate(&cluster);
  Load(&cluster, 300);
  cluster.StartBalancer();
  EXPECT_TRUE(cluster.balancer_running());
  cluster.StopBalancer();
  EXPECT_FALSE(cluster.balancer_running());

  // Left running: the destructor must stop and join it.
  cluster.StartBalancer();
  EXPECT_TRUE(cluster.balancer_running());
}

TEST_F(ConcurrencyTest, BackgroundBalancerCommitsMigrations) {
  ClusterOptions opts = Options();
  opts.balance_every_inserts = 0;  // only the background thread moves chunks
  Cluster cluster(opts);
  ShardOnDate(&cluster);
  Load(&cluster, 1500);  // splits pile every chunk onto shard 0

  Counter& committed =
      MetricsRegistry::Instance().GetCounter("balancer.migrations_committed");
  const uint64_t before = committed.value();
  cluster.StartBalancer();
  for (int i = 0; i < 5000 && committed.value() == before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.StopBalancer();

  EXPECT_GT(committed.value(), before);
  EXPECT_EQ(cluster.total_documents(), 1500u);
  EXPECT_TRUE(cluster.chunks().CheckInvariants());
  int shards_with_data = 0;
  for (const auto& shard : cluster.shards()) {
    if (shard->num_documents() > 0) ++shards_with_data;
  }
  EXPECT_GE(shards_with_data, 2);
  const ClusterQueryResult all = cluster.Query(query::MakeRange(
      "date", Value::DateTime(0), Value::DateTime(60000LL * 1500)));
  EXPECT_TRUE(all.status.ok());
  EXPECT_EQ(all.docs.size(), 1500u);
}

}  // namespace
}  // namespace stix::cluster
