// Live shard-key resharding: Cluster::Reshard driven through
// StStore::Reshard — approach migration on a populated store, with and
// without concurrent traffic, plus every rejection gate and the
// reshardMoveChunk fail point's abort semantics.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "st/st_store.h"
#include "temp_dir.h"

namespace stix::st {
namespace {

constexpr int64_t kT0 = 1538352000000;  // 2018-10-01T00:00:00Z
constexpr int64_t kSpanMs = 14 * 24 * 3600000LL;
const geo::Rect kMbr{{23.3, 37.6}, {24.3, 38.5}};

struct TestDoc {
  double lon, lat;
  int64_t t_ms;
  int32_t fid;
};

bson::Document MakeDoc(const TestDoc& d) {
  bson::Document doc;
  doc.Append(kLocationField,
             bson::Value::MakeDocument(bson::GeoJsonPoint(d.lon, d.lat)));
  doc.Append(kDateField, bson::Value::DateTime(d.t_ms));
  doc.Append("fid", bson::Value::Int32(d.fid));
  return doc;
}

std::vector<TestDoc> MakeDocs(int count, uint64_t seed, int32_t first_fid) {
  Rng rng(seed);
  std::vector<TestDoc> docs;
  docs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    docs.push_back(TestDoc{
        rng.NextDouble(kMbr.lo.lon, kMbr.hi.lon),
        rng.NextDouble(kMbr.lo.lat, kMbr.hi.lat),
        kT0 + static_cast<int64_t>(rng.NextBounded(kSpanMs + 1)),
        first_fid + i});
  }
  return docs;
}

std::vector<int32_t> OracleFids(const std::vector<TestDoc>& docs,
                                const geo::Rect& rect, int64_t t0,
                                int64_t t1) {
  std::vector<int32_t> fids;
  for (const TestDoc& d : docs) {
    if (rect.Contains({d.lon, d.lat}) && d.t_ms >= t0 && d.t_ms <= t1) {
      fids.push_back(d.fid);
    }
  }
  std::sort(fids.begin(), fids.end());
  return fids;
}

std::vector<int32_t> QueryFids(const StStore& store, const geo::Rect& rect,
                               int64_t t0, int64_t t1) {
  const StQueryResult result = store.Query(rect, t0, t1);
  EXPECT_TRUE(result.cluster.status.ok()) << result.cluster.status.ToString();
  std::vector<int32_t> fids;
  fids.reserve(result.cluster.docs.size());
  for (const bson::Document& doc : result.cluster.docs) {
    const bson::Value* v = doc.Get("fid");
    fids.push_back(v == nullptr ? -1 : v->AsInt32());
  }
  std::sort(fids.begin(), fids.end());
  return fids;
}

StStoreOptions Options(ApproachKind kind, int shards = 3) {
  StStoreOptions options;
  options.approach.kind = kind;
  options.approach.dataset_mbr = kMbr;
  options.cluster.num_shards = shards;
  options.cluster.chunk_max_bytes = 16 * 1024;  // force several chunks
  options.cluster.seed = 7;
  return options;
}

std::unique_ptr<StStore> LoadedStore(ApproachKind kind,
                                     const std::vector<TestDoc>& docs,
                                     int shards = 3) {
  auto store = std::make_unique<StStore>(Options(kind, shards));
  EXPECT_TRUE(store->Setup().ok());
  for (const TestDoc& d : docs) {
    EXPECT_TRUE(store->Insert(MakeDoc(d)).ok());
  }
  EXPECT_TRUE(store->FinishLoad().ok());
  return store;
}

TEST(ReshardTest, BaselineToHilbertMigratesAndSwapsApproach) {
  const std::vector<TestDoc> docs = MakeDocs(1500, 42, 0);
  auto store = LoadedStore(ApproachKind::kBslTS, docs);
  Counter& moved =
      MetricsRegistry::Instance().GetCounter("reshard.docs_moved");
  Counter& completed =
      MetricsRegistry::Instance().GetCounter("reshard.completed");
  const uint64_t moved_before = moved.value();
  const uint64_t completed_before = completed.value();

  ASSERT_TRUE(store->Reshard(ApproachKind::kHil).ok());

  EXPECT_EQ(store->approach().kind(), ApproachKind::kHil);
  EXPECT_FALSE(store->resharding());
  EXPECT_FALSE(store->cluster().resharding());
  EXPECT_EQ(completed.value(), completed_before + 1);
  EXPECT_GT(moved.value(), moved_before);

  // Every document answers from the new layout, full-window and sub-rect.
  EXPECT_EQ(QueryFids(*store, kMbr, kT0, kT0 + kSpanMs),
            OracleFids(docs, kMbr, kT0, kT0 + kSpanMs));
  const geo::Rect sub{{23.5, 37.8}, {23.9, 38.2}};
  const int64_t t1 = kT0 + kSpanMs / 3;
  EXPECT_EQ(QueryFids(*store, sub, kT0, t1), OracleFids(docs, sub, kT0, t1));

  // The routing flip is visible end to end: explain now reports the
  // Hilbert shard key.
  const StExplain explain = store->Explain(sub, kT0, t1);
  EXPECT_NE(explain.cluster.shard_key.find(kHilbertField), std::string::npos);

  // The store keeps working post-swap: new inserts land and are found.
  std::vector<TestDoc> extended = docs;
  for (const TestDoc& d : MakeDocs(200, 43, 1500)) {
    ASSERT_TRUE(store->Insert(MakeDoc(d)).ok());
    extended.push_back(d);
  }
  EXPECT_EQ(QueryFids(*store, kMbr, kT0, kT0 + kSpanMs),
            OracleFids(extended, kMbr, kT0, kT0 + kSpanMs));
}

TEST(ReshardTest, HilbertToBaselineMigrates) {
  const std::vector<TestDoc> docs = MakeDocs(1200, 5, 0);
  auto store = LoadedStore(ApproachKind::kHilStar, docs);
  ASSERT_TRUE(store->Reshard(ApproachKind::kBslTS).ok());
  EXPECT_EQ(store->approach().kind(), ApproachKind::kBslTS);
  EXPECT_FALSE(store->resharding());
  EXPECT_EQ(QueryFids(*store, kMbr, kT0, kT0 + kSpanMs),
            OracleFids(docs, kMbr, kT0, kT0 + kSpanMs));
  const StExplain explain =
      store->Explain({{23.4, 37.7}, {23.8, 38.0}}, kT0, kT0 + kSpanMs / 2);
  EXPECT_NE(explain.cluster.shard_key.find(kDateField), std::string::npos);
  EXPECT_EQ(explain.cluster.shard_key.find(kHilbertField), std::string::npos);
}

TEST(ReshardTest, RejectsSameKindAndSameShardKey) {
  const std::vector<TestDoc> docs = MakeDocs(120, 9, 0);
  auto store = LoadedStore(ApproachKind::kBslTS, docs, 2);
  // Same kind: nothing to do.
  EXPECT_EQ(store->Reshard(ApproachKind::kBslTS).code(),
            StatusCode::kInvalidArgument);
  // bslST shards on {date} too — a same-key "reshard" is rejected, it
  // would rebuild the identical chunk table under a different index order.
  EXPECT_EQ(store->Reshard(ApproachKind::kBslST).code(),
            StatusCode::kInvalidArgument);

  auto hil = LoadedStore(ApproachKind::kHil, docs, 2);
  EXPECT_EQ(hil->Reshard(ApproachKind::kHilStar).code(),
            StatusCode::kInvalidArgument);
  // The rejected calls left no transition state behind.
  EXPECT_FALSE(store->resharding());
  EXPECT_FALSE(hil->resharding());
  EXPECT_EQ(QueryFids(*store, kMbr, kT0, kT0 + kSpanMs),
            OracleFids(docs, kMbr, kT0, kT0 + kSpanMs));
}

TEST(ReshardTest, RejectsBucketedAndDurableStores) {
  StStoreOptions bucketed = Options(ApproachKind::kBslTS, 2);
  bucketed.bucket = storage::BucketLayout{};
  StStore bucket_store(bucketed);
  ASSERT_TRUE(bucket_store.Setup().ok());
  EXPECT_EQ(bucket_store.Reshard(ApproachKind::kHil).code(),
            StatusCode::kNotSupported);

  testing::TempDir dir("reshard_durable");
  StStoreOptions durable = Options(ApproachKind::kBslTS, 2);
  durable.cluster.durability.data_dir = dir.path();
  StStore durable_store(durable);
  ASSERT_TRUE(durable_store.Setup().ok());
  EXPECT_EQ(durable_store.Reshard(ApproachKind::kHil).code(),
            StatusCode::kNotSupported);
}

TEST(ReshardTest, ConcurrentReshardReturnsAlreadyExists) {
  const std::vector<TestDoc> docs = MakeDocs(1000, 77, 0);
  auto store = LoadedStore(ApproachKind::kBslTS, docs);

  // Stretch the migration window so the second call reliably overlaps.
  FailPoint* fp = FailPointRegistry::Instance().Find("reshardMoveChunk");
  ASSERT_NE(fp, nullptr);
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kAlwaysOn;
  config.delay_ms = 15.0;
  fp->Enable(config);

  Status first;
  std::thread resharder(
      [&] { first = store->Reshard(ApproachKind::kHil); });
  while (!store->resharding()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(store->Reshard(ApproachKind::kBslST).code(),
            StatusCode::kAlreadyExists);
  resharder.join();
  fp->Disable();

  EXPECT_TRUE(first.ok()) << first.ToString();
  EXPECT_EQ(store->approach().kind(), ApproachKind::kHil);
  EXPECT_EQ(QueryFids(*store, kMbr, kT0, kT0 + kSpanMs),
            OracleFids(docs, kMbr, kT0, kT0 + kSpanMs));
}

TEST(ReshardTest, AbortedMigrationLeavesBroadcastButExact) {
  const std::vector<TestDoc> docs = MakeDocs(1000, 13, 0);
  auto store = LoadedStore(ApproachKind::kBslTS, docs);

  // Kill the first per-chunk move: the routing already flipped, so the
  // cluster is left mid-flight — permanently broadcasting, never wrong.
  FailPoint* fp = FailPointRegistry::Instance().Find("reshardMoveChunk");
  ASSERT_NE(fp, nullptr);
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kTimes;
  config.count = 1;
  config.error_code = StatusCode::kInternal;
  config.error_message = "injected fault at reshardMoveChunk";
  fp->Enable(config);
  const Status aborted = store->Reshard(ApproachKind::kHil);
  fp->Disable();
  ASSERT_FALSE(aborted.ok());

  // The transition state stays: the store keeps translating layout-
  // agnostically and enriching for both layouts.
  EXPECT_TRUE(store->resharding());
  EXPECT_TRUE(store->cluster().resharding());

  // Reads and writes stay exact over the half-migrated data.
  std::vector<TestDoc> extended = docs;
  EXPECT_EQ(QueryFids(*store, kMbr, kT0, kT0 + kSpanMs),
            OracleFids(docs, kMbr, kT0, kT0 + kSpanMs));
  for (const TestDoc& d : MakeDocs(150, 14, 1000)) {
    ASSERT_TRUE(store->Insert(MakeDoc(d)).ok());
    extended.push_back(d);
  }
  const geo::Rect sub{{23.4, 37.7}, {24.0, 38.3}};
  EXPECT_EQ(QueryFids(*store, sub, kT0, kT0 + kSpanMs),
            OracleFids(extended, sub, kT0, kT0 + kSpanMs));

  // A retry is refused while the cluster sits mid-flight — resharding is
  // forward-only, never silently restarted over half-moved chunks.
  EXPECT_EQ(store->Reshard(ApproachKind::kHil).code(),
            StatusCode::kAlreadyExists);
}

TEST(ReshardTest, RacingUnenrichedInsertIsEnrichedByTheCluster) {
  // Models the writer that read the store's approach state before the
  // reshard installed its dual-enrichment: the document reaches
  // Cluster::Insert without a hilbertIndex while the migration runs. The
  // cluster-held enrichment callback must add the field before keying, or
  // the doc routes into the null-key chunk and vanishes from post-swap
  // Hilbert queries.
  const std::vector<TestDoc> docs = MakeDocs(800, 55, 0);
  auto store = LoadedStore(ApproachKind::kBslTS, docs);

  FailPoint* fp = FailPointRegistry::Instance().Find("reshardMoveChunk");
  ASSERT_NE(fp, nullptr);
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kAlwaysOn;
  config.delay_ms = 10.0;
  fp->Enable(config);

  Status migrated;
  std::thread resharder(
      [&] { migrated = store->Reshard(ApproachKind::kHil); });
  while (!store->resharding()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Mid-flight, bypass StStore's enrichment entirely: raw cluster insert
  // of a bare location+date document.
  const TestDoc raced{23.71, 38.01, kT0 + kSpanMs / 2, 800};
  bson::Document bare = MakeDoc(raced);
  bare.Append("_id", bson::Value::Int64(999001));
  ASSERT_TRUE(store->cluster().Insert(std::move(bare)).ok());
  resharder.join();
  fp->Disable();
  ASSERT_TRUE(migrated.ok()) << migrated.ToString();

  std::vector<TestDoc> all = docs;
  all.push_back(raced);
  EXPECT_EQ(QueryFids(*store, kMbr, kT0, kT0 + kSpanMs),
            OracleFids(all, kMbr, kT0, kT0 + kSpanMs));
  const geo::Rect tight{{23.70, 38.00}, {23.72, 38.02}};
  EXPECT_EQ(QueryFids(*store, tight, kT0, kT0 + kSpanMs),
            OracleFids(all, tight, kT0, kT0 + kSpanMs));

  // Post-swap, the callback stays installed: even a writer stalled since
  // before the reshard began gets its document enriched.
  const TestDoc late{23.81, 38.11, kT0 + kSpanMs / 3, 801};
  bson::Document stale = MakeDoc(late);
  stale.Append("_id", bson::Value::Int64(999002));
  ASSERT_TRUE(store->cluster().Insert(std::move(stale)).ok());
  all.push_back(late);
  EXPECT_EQ(QueryFids(*store, kMbr, kT0, kT0 + kSpanMs),
            OracleFids(all, kMbr, kT0, kT0 + kSpanMs));
}

TEST(ReshardTest, MigrationUnderConcurrentWritersStaysExact) {
  const std::vector<TestDoc> base = MakeDocs(900, 21, 0);
  auto store = LoadedStore(ApproachKind::kBslTS, base);
  store->cluster().StartBalancer();

  constexpr int kWriters = 3;
  constexpr int kPerWriter = 120;
  std::vector<std::vector<TestDoc>> extra;
  std::vector<TestDoc> all = base;
  for (int w = 0; w < kWriters; ++w) {
    extra.push_back(
        MakeDocs(kPerWriter, 100 + static_cast<uint64_t>(w),
                 900 + w * kPerWriter));
    all.insert(all.end(), extra.back().begin(), extra.back().end());
  }

  std::atomic<bool> write_failed{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (const TestDoc& d : extra[static_cast<size_t>(w)]) {
        if (!store->Insert(MakeDoc(d)).ok()) {
          write_failed.store(true);
          return;
        }
      }
    });
  }
  const Status migrated = store->Reshard(ApproachKind::kHil);
  for (std::thread& w : writers) w.join();
  store->cluster().StopBalancer();

  EXPECT_FALSE(write_failed.load());
  ASSERT_TRUE(migrated.ok()) << migrated.ToString();
  EXPECT_EQ(store->approach().kind(), ApproachKind::kHil);
  EXPECT_EQ(QueryFids(*store, kMbr, kT0, kT0 + kSpanMs),
            OracleFids(all, kMbr, kT0, kT0 + kSpanMs));
  const geo::Rect sub{{23.45, 37.75}, {23.95, 38.25}};
  const int64_t t1 = kT0 + kSpanMs / 2;
  EXPECT_EQ(QueryFids(*store, sub, kT0, t1), OracleFids(all, sub, kT0, t1));
}

}  // namespace
}  // namespace stix::st
