#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "st/st_store.h"
#include "workload/query_workload.h"
#include "workload/trajectory_generator.h"

namespace stix::st {
namespace {

using bson::Value;

// ---------- Approach unit behaviour ----------

TEST(ApproachTest, Names) {
  EXPECT_STREQ(ApproachName(ApproachKind::kBslST), "bslST");
  EXPECT_STREQ(ApproachName(ApproachKind::kBslTS), "bslTS");
  EXPECT_STREQ(ApproachName(ApproachKind::kHil), "hil");
  EXPECT_STREQ(ApproachName(ApproachKind::kHilStar), "hil*");
}

TEST(ApproachTest, BaselineShardsOnDate) {
  ApproachConfig config;
  config.kind = ApproachKind::kBslST;
  const Approach a(config);
  EXPECT_EQ(a.shard_key().paths(),
            (std::vector<std::string>{kDateField}));
  EXPECT_EQ(a.zone_path(), kDateField);
  EXPECT_EQ(a.secondary_indexes().size(), 1u);
  EXPECT_EQ(a.secondary_indexes()[0].fields()[0].path, kLocationField);
  EXPECT_EQ(a.curve(), nullptr);
}

TEST(ApproachTest, BslTSIndexOrderIsTimeFirst) {
  ApproachConfig config;
  config.kind = ApproachKind::kBslTS;
  const Approach a(config);
  const auto indexes = a.secondary_indexes();
  ASSERT_EQ(indexes.size(), 1u);
  EXPECT_EQ(indexes[0].fields()[0].path, kDateField);
  EXPECT_EQ(indexes[0].fields()[1].path, kLocationField);
}

TEST(ApproachTest, HilbertShardsOnHilbertAndDate) {
  ApproachConfig config;
  config.kind = ApproachKind::kHil;
  const Approach a(config);
  EXPECT_EQ(a.shard_key().paths(),
            (std::vector<std::string>{kHilbertField, kDateField}));
  EXPECT_EQ(a.zone_path(), kHilbertField);
  EXPECT_TRUE(a.secondary_indexes().empty());
  ASSERT_NE(a.curve(), nullptr);
  EXPECT_EQ(a.curve()->order(), 13);
}

TEST(ApproachTest, HilUsesGlobeHilStarUsesMbr) {
  const geo::Rect mbr{{23.3, 37.6}, {24.3, 38.5}};
  ApproachConfig hil_config;
  hil_config.kind = ApproachKind::kHil;
  hil_config.dataset_mbr = mbr;
  const Approach hil(hil_config);
  EXPECT_DOUBLE_EQ(hil.curve()->grid().domain().lo.lon, -180.0);

  ApproachConfig star_config = hil_config;
  star_config.kind = ApproachKind::kHilStar;
  const Approach star(star_config);
  EXPECT_DOUBLE_EQ(star.curve()->grid().domain().lo.lon, 23.3);

  // Same point, much finer effective resolution for hil*: nearby points
  // that share a hil cell get distinct hil* cells.
  const uint64_t hil_a = hil.curve()->PointToD(23.75, 37.99);
  const uint64_t hil_b = hil.curve()->PointToD(23.7504, 37.9904);
  const uint64_t star_a = star.curve()->PointToD(23.75, 37.99);
  const uint64_t star_b = star.curve()->PointToD(23.7504, 37.9904);
  EXPECT_EQ(hil_a, hil_b);
  EXPECT_NE(star_a, star_b);
}

TEST(ApproachTest, EnrichmentAddsHilbertIndex) {
  ApproachConfig config;
  config.kind = ApproachKind::kHil;
  const Approach a(config);
  bson::Document doc;
  doc.Append(kLocationField,
             Value::MakeDocument(bson::GeoJsonPoint(23.7275, 37.9838)));
  doc.Append(kDateField, Value::DateTime(1000));
  ASSERT_TRUE(a.EnrichDocument(&doc).ok());
  const Value* h = doc.Get(kHilbertField);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->AsInt64(),
            static_cast<int64_t>(a.curve()->PointToD(23.7275, 37.9838)));
}

TEST(ApproachTest, EnrichmentFailsWithoutLocation) {
  ApproachConfig config;
  config.kind = ApproachKind::kHil;
  const Approach a(config);
  bson::Document doc;
  doc.Append(kDateField, Value::DateTime(1));
  EXPECT_FALSE(a.EnrichDocument(&doc).ok());
}

TEST(ApproachTest, BaselineEnrichmentIsNoop) {
  ApproachConfig config;
  config.kind = ApproachKind::kBslST;
  const Approach a(config);
  bson::Document doc;
  doc.Append(kDateField, Value::DateTime(1));
  ASSERT_TRUE(a.EnrichDocument(&doc).ok());
  EXPECT_FALSE(doc.Has(kHilbertField));
}

TEST(ApproachTest, BaselineQueryHasNoHilbertConstraint) {
  ApproachConfig config;
  config.kind = ApproachKind::kBslST;
  const Approach a(config);
  const TranslatedQuery t =
      a.TranslateQuery(geo::Rect{{0, 0}, {1, 1}}, 100, 200);
  EXPECT_EQ(t.num_ranges + t.num_singletons, 0u);
  EXPECT_EQ(t.cover_millis, 0.0);
  EXPECT_EQ(t.expr->DebugString().find("hilbertIndex"), std::string::npos);
}

TEST(ApproachTest, HilbertQueryCarriesOrOfRangesAndIn) {
  ApproachConfig config;
  config.kind = ApproachKind::kHil;
  const Approach a(config);
  const geo::Rect rect{{23.606039, 38.023982}, {24.032754, 38.353926}};
  const TranslatedQuery t = a.TranslateQuery(rect, 100, 200);
  EXPECT_GT(t.num_ranges + t.num_singletons, 0u);
  const std::string text = t.expr->DebugString();
  EXPECT_NE(text.find("$or"), std::string::npos);
  EXPECT_NE(text.find("hilbertIndex"), std::string::npos);
  EXPECT_NE(text.find("$geoWithin"), std::string::npos);
}

TEST(ApproachTest, HilbertQueryConstraintCoversExactlyTheRectCells) {
  ApproachConfig config;
  config.kind = ApproachKind::kHil;
  const Approach a(config);
  const geo::Rect rect{{23.606039, 38.023982}, {24.032754, 38.353926}};
  const TranslatedQuery t = a.TranslateQuery(rect, 0, 1000);
  Rng rng(44);
  for (int i = 0; i < 200; ++i) {
    const double lon = rng.NextDouble(rect.lo.lon, rect.hi.lon);
    const double lat = rng.NextDouble(rect.lo.lat, rect.hi.lat);
    bson::Document doc;
    doc.Append(kLocationField,
               Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
    doc.Append(kDateField, Value::DateTime(500));
    ASSERT_TRUE(a.EnrichDocument(&doc).ok());
    EXPECT_TRUE(t.expr->Matches(doc));
  }
}

// ---------- pluggable curves behind hilbertIndex ----------

TEST(ApproachTest, CurveKindSelectsTheLinearization) {
  for (const geo::CurveKind kind : geo::AllCurveKinds()) {
    ApproachConfig config;
    config.kind = ApproachKind::kHil;
    config.curve_kind = kind;
    const Approach a(config);
    const auto curve = a.curve();
    ASSERT_NE(curve, nullptr);
    EXPECT_STREQ(curve->name(), geo::CurveKindName(kind));
    EXPECT_EQ(a.curve_generation(), 0u);

    bson::Document doc;
    doc.Append(kLocationField,
               Value::MakeDocument(bson::GeoJsonPoint(23.7275, 37.9838)));
    doc.Append(kDateField, Value::DateTime(1));
    ASSERT_TRUE(a.EnrichDocument(&doc).ok());
    EXPECT_EQ(doc.Get(kHilbertField)->AsInt64(),
              static_cast<int64_t>(curve->PointToD(23.7275, 37.9838)));
  }
  ApproachConfig baseline;
  baseline.kind = ApproachKind::kBslST;
  baseline.curve_kind = geo::CurveKind::kOnion;  // ignored by baselines
  EXPECT_EQ(Approach(baseline).curve(), nullptr);
}

TEST(ApproachTest, QueryConstraintCoversRectCellsForEveryCurve) {
  // The HilbertQueryConstraintCoversExactlyTheRectCells contract holds for
  // every registered curve: any enriched in-rect document matches the
  // translated expression (covering soundness through the full query path).
  const geo::Rect rect{{23.606039, 38.023982}, {24.032754, 38.353926}};
  Rng rng(45);
  std::vector<geo::Point> sample;
  for (int i = 0; i < 400; ++i) {
    sample.push_back({rng.NextDouble(23.0, 25.0), rng.NextDouble(37.0, 39.0)});
  }
  for (const geo::CurveKind kind : geo::AllCurveKinds()) {
    ApproachConfig config;
    config.kind = ApproachKind::kHilStar;
    config.dataset_mbr = geo::Rect{{23.0, 37.0}, {25.0, 39.0}};
    config.curve_kind = kind;
    config.curve_fit_sample = sample;
    const Approach a(config);
    const TranslatedQuery t = a.TranslateQuery(rect, 0, 1000);
    EXPECT_GT(t.num_ranges + t.num_singletons, 0u)
        << geo::CurveKindName(kind);
    for (int i = 0; i < 150; ++i) {
      const double lon = rng.NextDouble(rect.lo.lon, rect.hi.lon);
      const double lat = rng.NextDouble(rect.lo.lat, rect.hi.lat);
      bson::Document doc;
      doc.Append(kLocationField,
                 Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
      doc.Append(kDateField, Value::DateTime(500));
      ASSERT_TRUE(a.EnrichDocument(&doc).ok());
      EXPECT_TRUE(t.expr->Matches(doc))
          << geo::CurveKindName(kind) << " (" << lon << "," << lat << ")";
    }
  }
}

TEST(ApproachTest, RefitCurveInvalidatesCachedCovers) {
  // The cover-cache staleness regression: a cover computed under one
  // mapping must never be served after a refit changed the cell
  // boundaries. The mapping generation is part of the cache key, so the
  // refit turns the warm entry into a miss.
  ApproachConfig config;
  config.kind = ApproachKind::kHilStar;
  config.dataset_mbr = geo::Rect{{23.0, 37.0}, {25.0, 39.0}};
  config.curve_kind = geo::CurveKind::kEGeoHash;
  Approach a(config);  // no sample: starts on uniform boundaries
  EXPECT_EQ(a.curve_generation(), 0u);

  const geo::Rect rect{{23.606039, 38.023982}, {24.032754, 38.353926}};
  EXPECT_FALSE(a.TranslateQuery(rect, 0, 1000).cache_hit);
  EXPECT_TRUE(a.TranslateQuery(rect, 0, 1000).cache_hit);

  Rng rng(46);
  std::vector<geo::Point> sample;
  for (int i = 0; i < 600; ++i) {
    sample.push_back({23.65 + rng.NextGaussian() * 0.05,
                      38.1 + rng.NextGaussian() * 0.05});
  }
  ASSERT_TRUE(a.RefitCurve(sample).ok());
  EXPECT_EQ(a.curve_generation(), 1u);
  EXPECT_TRUE(a.curve()->grid().warped());

  // Same rect, same window: the old cover is unreachable now — the query
  // re-translates against the refitted mapping and matches refitted keys.
  const TranslatedQuery refitted = a.TranslateQuery(rect, 0, 1000);
  EXPECT_FALSE(refitted.cache_hit);
  bson::Document doc;
  doc.Append(kLocationField,
             Value::MakeDocument(bson::GeoJsonPoint(23.65, 38.1)));
  doc.Append(kDateField, Value::DateTime(500));
  ASSERT_TRUE(a.EnrichDocument(&doc).ok());
  EXPECT_TRUE(refitted.expr->Matches(doc));

  // Refitting anything but an EntropyGeoHash curve is rejected.
  ApproachConfig hil;
  hil.kind = ApproachKind::kHil;
  EXPECT_FALSE(Approach(hil).RefitCurve(sample).ok());
  ApproachConfig baseline;
  baseline.kind = ApproachKind::kBslTS;
  EXPECT_FALSE(Approach(baseline).RefitCurve(sample).ok());
}

// ---------- StStore end-to-end over all four approaches ----------

class StStoreParamTest : public ::testing::TestWithParam<ApproachKind> {
 protected:
  static constexpr int kDocs = 1500;
  static constexpr int64_t kSpanBegin = 1530403200000;
  static constexpr int64_t kStepMs = 60000;

  StStoreOptions Options() {
    StStoreOptions opts;
    opts.approach.kind = GetParam();
    opts.approach.dataset_mbr = geo::Rect{{23.0, 37.0}, {25.0, 39.0}};
    opts.cluster.num_shards = 4;
    opts.cluster.chunk_max_bytes = 16 * 1024;
    opts.cluster.balance_every_inserts = 300;
    opts.cluster.seed = 3;
    return opts;
  }

  // Deterministic points inside [23,25]x[37,39] over kDocs minutes.
  void Load(StStore* store) {
    Rng rng(55);
    for (int i = 0; i < kDocs; ++i) {
      bson::Document doc;
      doc.Append("seq", Value::Int32(i));
      const double lon = rng.NextDouble(23.0, 25.0);
      const double lat = rng.NextDouble(37.0, 39.0);
      doc.Append(kLocationField,
                 Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
      doc.Append(kDateField, Value::DateTime(kSpanBegin + i * kStepMs));
      lons_.push_back(lon);
      lats_.push_back(lat);
      ASSERT_TRUE(store->Insert(std::move(doc)).ok());
    }
    ASSERT_TRUE(store->FinishLoad().ok());
  }

  std::set<int> NaiveIds(const geo::Rect& rect, int64_t t0, int64_t t1) {
    std::set<int> ids;
    for (int i = 0; i < kDocs; ++i) {
      const int64_t t = kSpanBegin + i * kStepMs;
      if (t >= t0 && t <= t1 && rect.Contains({lons_[i], lats_[i]})) {
        ids.insert(i);
      }
    }
    return ids;
  }

  static std::set<int> ResultIds(const StQueryResult& r) {
    std::set<int> ids;
    for (const bson::Document& doc : r.cluster.docs) {
      ids.insert(doc.Get("seq")->AsInt32());
    }
    return ids;
  }

  std::vector<double> lons_, lats_;
};

TEST_P(StStoreParamTest, SetupCreatesExpectedIndexes) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  const auto& shard0 = *store.cluster().shards()[0];
  EXPECT_NE(shard0.catalog().Get("_id_"), nullptr);
  if (GetParam() == ApproachKind::kHil ||
      GetParam() == ApproachKind::kHilStar) {
    EXPECT_NE(shard0.catalog().Get("hilbertIndex_1_date_1"), nullptr);
    EXPECT_EQ(shard0.catalog().indexes().size(), 2u);
  } else {
    EXPECT_NE(shard0.catalog().Get("date_1"), nullptr);
    EXPECT_EQ(shard0.catalog().indexes().size(), 3u);
  }
}

TEST_P(StStoreParamTest, QueriesMatchNaiveWithDefaultSharding) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);

  const geo::Rect small{{23.5, 37.5}, {23.8, 37.9}};
  const geo::Rect big{{23.2, 37.2}, {24.8, 38.8}};
  struct Case {
    geo::Rect rect;
    int64_t t0, t1;
  };
  const Case cases[] = {
      {small, kSpanBegin, kSpanBegin + 400 * kStepMs},
      {big, kSpanBegin + 100 * kStepMs, kSpanBegin + 200 * kStepMs},
      {big, kSpanBegin, kSpanBegin + kDocs * kStepMs},
      {small, kSpanBegin + 1200 * kStepMs, kSpanBegin + 1210 * kStepMs},
  };
  for (const Case& c : cases) {
    const StQueryResult r = store.Query(c.rect, c.t0, c.t1);
    EXPECT_EQ(ResultIds(r), NaiveIds(c.rect, c.t0, c.t1))
        << "approach=" << store.approach().name();
    EXPECT_GT(r.cluster.nodes_contacted, 0);
  }
}

TEST_P(StStoreParamTest, ParallelAndSerialFanoutAgree) {
  // Determinism of the scatter/gather: the parallel fan-out on the shared
  // pool must return exactly what the serial reference returns — documents,
  // per-shard metrics, and plan choices — for every approach.
  StStoreOptions serial_opts = Options();
  serial_opts.cluster.parallel_fanout = false;
  StStoreOptions parallel_opts = Options();
  parallel_opts.cluster.parallel_fanout = true;
  StStore serial(serial_opts);
  StStore parallel(parallel_opts);
  for (StStore* s : {&serial, &parallel}) {
    ASSERT_TRUE(s->Setup().ok());
    Load(s);
  }

  struct Case {
    geo::Rect rect;
    int64_t t0, t1;
  };
  const Case cases[] = {
      {{{23.5, 37.5}, {23.8, 37.9}}, kSpanBegin, kSpanBegin + 400 * kStepMs},
      {{{23.2, 37.2}, {24.8, 38.8}}, kSpanBegin + 100 * kStepMs,
       kSpanBegin + 200 * kStepMs},
      {{{23.2, 37.2}, {24.8, 38.8}}, kSpanBegin, kSpanBegin + kDocs * kStepMs},
  };
  for (const Case& c : cases) {
    const StQueryResult rs = serial.Query(c.rect, c.t0, c.t1);
    const StQueryResult rp = parallel.Query(c.rect, c.t0, c.t1);
    EXPECT_EQ(ResultIds(rs), ResultIds(rp));
    EXPECT_EQ(rs.cluster.broadcast, rp.cluster.broadcast);
    EXPECT_EQ(rs.cluster.nodes_contacted, rp.cluster.nodes_contacted);
    EXPECT_EQ(rs.cluster.max_keys_examined, rp.cluster.max_keys_examined);
    EXPECT_EQ(rs.cluster.max_docs_examined, rp.cluster.max_docs_examined);
    EXPECT_EQ(rs.cluster.total_keys_examined, rp.cluster.total_keys_examined);
    EXPECT_EQ(rs.cluster.total_docs_examined, rp.cluster.total_docs_examined);
    // Same plan decisions on every contacted shard.
    auto winners = [](const StQueryResult& r) {
      std::set<std::pair<int, std::string>> out;
      for (const cluster::ShardQueryReport& rep : r.cluster.shard_reports) {
        out.insert({rep.shard_id, rep.winning_index});
      }
      return out;
    };
    EXPECT_EQ(winners(rs), winners(rp)) << "approach="
                                        << serial.approach().name();
  }
}

TEST_P(StStoreParamTest, CoveringCacheServesRepeatedTranslations) {
  StStoreOptions options = Options();
  // Pin the covering budget: with adaptive budgets on, the cold query's
  // execution builds histograms, so the warm repeat would translate under
  // a different (coarse) budget — a distinct cache key by design.
  options.approach.adaptive_cover_budget = false;
  StStore store(options);
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);

  const geo::Rect rect{{23.4, 37.4}, {24.1, 38.2}};
  const int64_t t0 = kSpanBegin;
  const int64_t t1 = kSpanBegin + 500 * kStepMs;
  const StQueryResult cold = store.Query(rect, t0, t1);
  EXPECT_FALSE(cold.translated.cache_hit);
  const StQueryResult warm = store.Query(rect, t0, t1);
  EXPECT_TRUE(warm.translated.cache_hit);
  // The memoized covering is byte-for-byte the one computed cold.
  EXPECT_EQ(warm.translated.num_ranges, cold.translated.num_ranges);
  EXPECT_EQ(warm.translated.num_singletons, cold.translated.num_singletons);
  EXPECT_EQ(ResultIds(warm), ResultIds(cold));

  const CoverCacheStats stats = store.approach().cover_cache_stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.misses, 1u);
  EXPECT_GT(stats.HitRate(), 0.0);

  // A different time window is a distinct cache entry.
  const StQueryResult other = store.Query(rect, t0, t1 + kStepMs);
  EXPECT_FALSE(other.translated.cache_hit);
  EXPECT_EQ(store.approach().cover_cache_size(), 2u);
}

TEST_P(StStoreParamTest, QueriesMatchNaiveWithZones) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);
  ASSERT_TRUE(store.ConfigureZones().ok());
  EXPECT_EQ(store.cluster().total_documents(),
            static_cast<uint64_t>(kDocs));

  const geo::Rect big{{23.2, 37.2}, {24.8, 38.8}};
  const StQueryResult r =
      store.Query(big, kSpanBegin, kSpanBegin + kDocs * kStepMs);
  EXPECT_EQ(ResultIds(r),
            NaiveIds(big, kSpanBegin, kSpanBegin + kDocs * kStepMs));
}

TEST_P(StStoreParamTest, PolygonQueriesMatchNaive) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);

  // A triangle inside the data MBR; compare against exact point-in-polygon
  // over the generator's record of positions.
  const geo::Polygon poly({{23.2, 37.3}, {24.8, 37.6}, {23.9, 38.8}});
  const int64_t t0 = kSpanBegin + 100 * kStepMs;
  const int64_t t1 = kSpanBegin + 1100 * kStepMs;
  const StQueryResult r = store.QueryPolygon(poly, t0, t1);

  std::set<int> naive;
  for (int i = 0; i < kDocs; ++i) {
    const int64_t t = kSpanBegin + i * kStepMs;
    if (t >= t0 && t <= t1 && poly.Contains({lons_[i], lats_[i]})) {
      naive.insert(i);
    }
  }
  EXPECT_EQ(ResultIds(r), naive) << "approach=" << store.approach().name();
  EXPECT_GT(r.cluster.docs.size(), 0u);
}

TEST_P(StStoreParamTest, InsertedDocsGetDriverStyleIds) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  bson::Document doc;
  doc.Append(kLocationField,
             Value::MakeDocument(bson::GeoJsonPoint(23.5, 37.5)));
  doc.Append(kDateField, Value::DateTime(kSpanBegin));
  ASSERT_TRUE(store.Insert(std::move(doc)).ok());
  uint64_t found = 0;
  for (const auto& shard : store.cluster().shards()) {
    shard->collection().records().ForEach(
        [&](storage::RecordId, const bson::Document& d) {
          ++found;
          ASSERT_TRUE(d.Has("_id"));
          EXPECT_EQ(d.Get("_id")->type(), bson::Type::kObjectId);
        });
  }
  EXPECT_EQ(found, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllApproaches, StStoreParamTest,
    ::testing::Values(ApproachKind::kBslST, ApproachKind::kBslTS,
                      ApproachKind::kHil, ApproachKind::kHilStar),
    [](const ::testing::TestParamInfo<ApproachKind>& info) {
      switch (info.param) {
        case ApproachKind::kBslST:
          return "bslST";
        case ApproachKind::kBslTS:
          return "bslTS";
        case ApproachKind::kHil:
          return "hil";
        case ApproachKind::kHilStar:
          return "hilStar";
      }
      return "unknown";
    });

// ---------- end-to-end sweep over every registered curve ----------

TEST(StCurveSweepTest, EveryCurveMatchesNaiveAndSurfacesItsName) {
  // The full store path — enrichment, sharding, covering translation,
  // scatter/gather — under each registered curve kind, checked against a
  // naive scan and against explain()'s reported curve name.
  const geo::Rect mbr{{23.0, 37.0}, {25.0, 39.0}};
  constexpr int kDocs = 800;
  constexpr int64_t kBegin = 1530403200000;
  constexpr int64_t kStep = 60000;

  for (const geo::CurveKind kind : geo::AllCurveKinds()) {
    StStoreOptions opts;
    opts.approach.kind = ApproachKind::kHilStar;
    opts.approach.dataset_mbr = mbr;
    opts.approach.curve_kind = kind;
    opts.cluster.num_shards = 4;
    opts.cluster.chunk_max_bytes = 16 * 1024;
    opts.cluster.seed = 3;

    Rng sample_rng(77);
    for (int i = 0; i < 300; ++i) {
      opts.approach.curve_fit_sample.push_back(
          {23.6 + sample_rng.NextGaussian() * 0.2,
           38.0 + sample_rng.NextGaussian() * 0.2});
    }

    StStore store(opts);
    ASSERT_TRUE(store.Setup().ok());
    Rng rng(55);
    std::vector<double> lons, lats;
    for (int i = 0; i < kDocs; ++i) {
      bson::Document doc;
      doc.Append("seq", Value::Int32(i));
      // Hotspot-skewed load, so egeohash's warp actually matters.
      const double lon = rng.NextBool(0.7)
                             ? 23.6 + rng.NextGaussian() * 0.15
                             : rng.NextDouble(23.0, 25.0);
      const double lat = rng.NextBool(0.7)
                             ? 38.0 + rng.NextGaussian() * 0.15
                             : rng.NextDouble(37.0, 39.0);
      doc.Append(kLocationField,
                 Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
      doc.Append(kDateField, Value::DateTime(kBegin + i * kStep));
      lons.push_back(lon);
      lats.push_back(lat);
      ASSERT_TRUE(store.Insert(std::move(doc)).ok());
    }
    ASSERT_TRUE(store.FinishLoad().ok());

    const geo::Rect queries[] = {{{23.5, 37.8}, {23.8, 38.2}},
                                 {{23.1, 37.1}, {24.9, 38.9}},
                                 {{24.5, 38.5}, {26.0, 40.0}}};
    for (const geo::Rect& q : queries) {
      const int64_t t0 = kBegin, t1 = kBegin + kDocs * kStep;
      std::set<int> expected;
      for (int i = 0; i < kDocs; ++i) {
        if (q.Contains({lons[i], lats[i]})) expected.insert(i);
      }
      const StQueryResult r = store.Query(q, t0, t1);
      std::set<int> got;
      for (const bson::Document& doc : r.cluster.docs) {
        got.insert(doc.Get("seq")->AsInt32());
      }
      EXPECT_EQ(got, expected) << "curve=" << geo::CurveKindName(kind);
    }

    const StExplain explain =
        store.Explain(queries[0], kBegin, kBegin + kDocs * kStep);
    EXPECT_EQ(explain.curve, geo::CurveKindName(kind));
    EXPECT_NE(explain.ToJson().find(
                  std::string("\"curve\": \"") + geo::CurveKindName(kind)),
              std::string::npos);
  }
}

// The headline claim at test scale: for a big spatial query with a short
// time window, hil touches fewer nodes and examines fewer keys on its
// hottest node than bslST does.
TEST(StBehaviourTest, HilBeatsBaselineOnBigSpatialShortTimeQueries) {
  auto make_options = [](ApproachKind kind) {
    StStoreOptions opts;
    opts.approach.kind = kind;
    opts.approach.dataset_mbr = geo::Rect{{23.0, 37.0}, {25.0, 39.0}};
    opts.cluster.num_shards = 6;
    opts.cluster.chunk_max_bytes = 16 * 1024;
    opts.cluster.balance_every_inserts = 300;
    opts.cluster.seed = 3;
    return opts;
  };
  StStore hil(make_options(ApproachKind::kHil));
  StStore bsl(make_options(ApproachKind::kBslST));
  ASSERT_TRUE(hil.Setup().ok());
  ASSERT_TRUE(bsl.Setup().ok());

  // The paper's data regime: Greece-wide fleet trajectories with urban
  // hotspots (the R set substitute).
  workload::TrajectoryOptions traj;
  traj.num_records = 30000;
  traj.num_vehicles = 150;
  workload::TrajectoryGenerator gen(traj);
  bson::Document doc;
  while (gen.Next(&doc)) {
    bson::Document copy = doc;
    ASSERT_TRUE(hil.Insert(std::move(doc)).ok());
    ASSERT_TRUE(bsl.Insert(std::move(copy)).ok());
  }
  ASSERT_TRUE(hil.FinishLoad().ok());
  ASSERT_TRUE(bsl.FinishLoad().ok());

  // The paper's Q2^b: the big rectangle (around Athens) with a one-day
  // temporal constraint — big in space, selective in time.
  const geo::Rect big = workload::BigQueryRect();
  const int64_t t0 = traj.t_begin_ms + 40LL * 24 * 3600 * 1000;
  const int64_t t1 = t0 + 24LL * 3600 * 1000;
  const StQueryResult hr = hil.Query(big, t0, t1);
  const StQueryResult br = bsl.Query(big, t0, t1);
  ASSERT_EQ(hr.cluster.docs.size(), br.cluster.docs.size());
  EXPECT_LT(hr.cluster.max_keys_examined, br.cluster.max_keys_examined);
}

}  // namespace
}  // namespace stix::st
