#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "st/st_store.h"
#include "workload/query_workload.h"
#include "workload/traffic.h"
#include "workload/trajectory_generator.h"
#include "workload/uniform_generator.h"

namespace stix::workload {
namespace {

// ---------- trajectory generator (R substitute) ----------

TEST(TrajectoryGeneratorTest, EmitsExactlyRequestedRecords) {
  TrajectoryOptions opts;
  opts.num_records = 5000;
  opts.num_vehicles = 20;
  TrajectoryGenerator gen(opts);
  bson::Document doc;
  uint64_t n = 0;
  while (gen.Next(&doc)) ++n;
  EXPECT_EQ(n, 5000u);
  EXPECT_FALSE(gen.Next(&doc));
}

TEST(TrajectoryGeneratorTest, RecordsHaveSchemaAndStayInMbr) {
  TrajectoryOptions opts;
  opts.num_records = 2000;
  opts.num_vehicles = 10;
  TrajectoryGenerator gen(opts);
  bson::Document doc;
  while (gen.Next(&doc)) {
    double lon, lat;
    ASSERT_TRUE(
        bson::ExtractGeoJsonPoint(*doc.Get("location"), &lon, &lat));
    EXPECT_TRUE(opts.mbr.Contains({lon, lat}));
    ASSERT_TRUE(doc.Has("date"));
    const int64_t t = doc.Get("date")->AsDateTime();
    EXPECT_GE(t, opts.t_begin_ms);
    EXPECT_LT(t, opts.t_end_ms);
    EXPECT_TRUE(doc.Has("vehicleId"));
    EXPECT_TRUE(doc.Has("speed"));
    EXPECT_TRUE(doc.Has("payload"));
    EXPECT_EQ(doc.Get("payload")->AsString().size(), opts.payload_bytes);
  }
}

TEST(TrajectoryGeneratorTest, EmitsInGlobalTimeOrder) {
  TrajectoryOptions opts;
  opts.num_records = 3000;
  opts.num_vehicles = 25;
  TrajectoryGenerator gen(opts);
  bson::Document doc;
  int64_t prev = opts.t_begin_ms - 1;
  while (gen.Next(&doc)) {
    const int64_t t = doc.Get("date")->AsDateTime();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(TrajectoryGeneratorTest, DeterministicForSameSeed) {
  TrajectoryOptions opts;
  opts.num_records = 500;
  TrajectoryGenerator a(opts), b(opts);
  bson::Document da, db;
  while (a.Next(&da)) {
    ASSERT_TRUE(b.Next(&db));
    EXPECT_EQ(Compare(da, db), 0);
  }
}

TEST(TrajectoryGeneratorTest, SpatiallySkewedTowardHotspots) {
  TrajectoryOptions opts;
  opts.num_records = 20000;
  opts.num_vehicles = 100;
  TrajectoryGenerator gen(opts);
  bson::Document doc;
  uint64_t near_athens = 0, total = 0;
  const geo::Rect athens{{23.4, 37.7}, {24.0, 38.3}};
  while (gen.Next(&doc)) {
    double lon, lat;
    bson::ExtractGeoJsonPoint(*doc.Get("location"), &lon, &lat);
    near_athens += athens.Contains({lon, lat});
    ++total;
  }
  // Athens box is ~0.7% of the MBR area but must hold a large share of the
  // records (the R set's skew).
  EXPECT_GT(static_cast<double>(near_athens) / static_cast<double>(total),
            0.10);
}

TEST(TrajectoryGeneratorTest, UsesManyVehicles) {
  TrajectoryOptions opts;
  opts.num_records = 5000;
  opts.num_vehicles = 50;
  TrajectoryGenerator gen(opts);
  bson::Document doc;
  std::map<int, int> per_vehicle;
  while (gen.Next(&doc)) {
    per_vehicle[doc.Get("vehicleId")->AsInt32()]++;
  }
  EXPECT_EQ(per_vehicle.size(), 50u);
}

// ---------- uniform generator (S set) ----------

TEST(UniformGeneratorTest, MatchesPaperDefinition) {
  UniformOptions opts;
  opts.num_records = 3000;
  UniformGenerator gen(opts);
  bson::Document doc;
  uint64_t n = 0;
  while (gen.Next(&doc)) {
    double lon, lat;
    ASSERT_TRUE(
        bson::ExtractGeoJsonPoint(*doc.Get("location"), &lon, &lat));
    EXPECT_TRUE(UniformGenerator::PaperMbr().Contains({lon, lat}));
    const int64_t t = doc.Get("date")->AsDateTime();
    EXPECT_GE(t, opts.t_begin_ms);
    EXPECT_LT(t, opts.t_end_ms);
    // Only the paper's four columns: id, location(lon, lat), date.
    EXPECT_EQ(doc.size(), 3u);
    ++n;
  }
  EXPECT_EQ(n, 3000u);
}

TEST(UniformGeneratorTest, RoughlyUniformQuadrants) {
  UniformOptions opts;
  opts.num_records = 40000;
  UniformGenerator gen(opts);
  bson::Document doc;
  const double mid_lon = (opts.mbr.lo.lon + opts.mbr.hi.lon) / 2;
  const double mid_lat = (opts.mbr.lo.lat + opts.mbr.hi.lat) / 2;
  int quad[4] = {0, 0, 0, 0};
  while (gen.Next(&doc)) {
    double lon, lat;
    bson::ExtractGeoJsonPoint(*doc.Get("location"), &lon, &lat);
    quad[(lon >= mid_lon) * 2 + (lat >= mid_lat)]++;
  }
  for (int q : quad) EXPECT_NEAR(q, 10000, 500);
}

TEST(UniformGeneratorTest, DatesAreNotTimeOrdered) {
  UniformOptions opts;
  opts.num_records = 1000;
  UniformGenerator gen(opts);
  bson::Document doc;
  int inversions = 0;
  int64_t prev = 0;
  bool first = true;
  while (gen.Next(&doc)) {
    const int64_t t = doc.Get("date")->AsDateTime();
    if (!first && t < prev) ++inversions;
    prev = t;
    first = false;
  }
  EXPECT_GT(inversions, 300);  // random order, ~half inverted
}

// ---------- query workload ----------

TEST(QueryWorkloadTest, PaperRectangles) {
  const geo::Rect small = SmallQueryRect();
  const geo::Rect big = BigQueryRect();
  EXPECT_DOUBLE_EQ(small.lo.lon, 23.757495);
  EXPECT_DOUBLE_EQ(big.hi.lat, 38.353926);
  // Paper: the big rect is ~2603x the small one (planar areas).
  EXPECT_NEAR(big.AreaDeg2() / small.AreaDeg2(), 2609.0, 30.0);
  // Both lie inside the S MBR so both data sets can answer them.
  EXPECT_TRUE(geo::Rect({{23.3, 37.6}, {24.3, 38.5}}).ContainsRect(small));
  EXPECT_TRUE(geo::Rect({{23.3, 37.6}, {24.3, 38.5}}).ContainsRect(big));
}

TEST(QueryWorkloadTest, FourDisjointGrowingWindows) {
  const int64_t begin = 1530403200000;
  const int64_t end = 1543622400000;  // 5 months
  for (bool big : {false, true}) {
    const auto qs = MakeQuerySet(big, begin, end);
    ASSERT_EQ(qs.size(), 4u);
    EXPECT_NEAR(qs[0].duration_hours(), 1.0, 1e-9);
    EXPECT_NEAR(qs[1].duration_hours(), 24.0, 1e-9);
    EXPECT_NEAR(qs[2].duration_hours(), 7 * 24.0, 1e-9);
    EXPECT_NEAR(qs[3].duration_hours(), 30 * 24.0, 1e-9);
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_GE(qs[i].t_begin_ms, begin);
      EXPECT_LE(qs[i].t_end_ms, end);
      if (i > 0) {
        EXPECT_GE(qs[i].t_begin_ms, qs[i - 1].t_end_ms);
      }
    }
  }
}

TEST(QueryWorkloadTest, FitsInShortSpanToo) {
  // The S set's 2.5-month span must still fit all four windows.
  const int64_t begin = 1530403200000;
  const int64_t end = 1537012800000;
  const auto qs = MakeQuerySet(true, begin, end);
  EXPECT_NEAR(qs[3].duration_hours(), 30 * 24.0, 1e-9);
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_GE(qs[i].t_begin_ms, qs[i - 1].t_end_ms);
  }
  EXPECT_LE(qs[3].t_end_ms, end);
}

TEST(QueryWorkloadTest, NamesFollowPaperNotation) {
  const auto qs = MakeQuerySet(false, 0, 40LL * 24 * 3600 * 1000);
  EXPECT_EQ(qs[0].name, "Q1^s");
  const auto qb = MakeQuerySet(true, 0, 40LL * 24 * 3600 * 1000);
  EXPECT_EQ(qb[3].name, "Q4^b");
}

// ---------- open-loop traffic harness ----------

TrafficConfig SmallTrafficConfig(uint64_t seed) {
  TrafficConfig config;
  config.seed = seed;
  config.num_sessions = 60;
  config.total_ops = 600;
  config.preload_per_session = 2;
  config.arrivals_per_sec = 3000.0;
  return config;
}

TEST(TrafficTest, SameSeedYieldsByteIdenticalPlan) {
  const TrafficConfig config = SmallTrafficConfig(12345);
  const TrafficPlan a = GenerateTrafficPlan(config);
  const TrafficPlan b = GenerateTrafficPlan(config);
  EXPECT_EQ(a.SerializeOps(), b.SerializeOps());
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());

  TrafficConfig other = config;
  other.seed = 12346;
  const TrafficPlan c = GenerateTrafficPlan(other);
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
  EXPECT_NE(a.SerializeOps(), c.SerializeOps());
}

TEST(TrafficTest, PlanRespectsStructuralInvariants) {
  const TrafficPlan plan = GenerateTrafficPlan(SmallTrafficConfig(7));
  ASSERT_EQ(plan.ops.size(), size_t(plan.config.total_ops));
  ASSERT_EQ(plan.sessions.size(), size_t(plan.config.num_sessions));
  ASSERT_EQ(plan.preload.size(),
            size_t(plan.config.num_sessions * plan.config.preload_per_session));

  double prev_arrival = 0.0;
  for (const TrafficOp& op : plan.ops) {
    EXPECT_GE(op.arrival_ms, prev_arrival);
    prev_arrival = op.arrival_ms;
    ASSERT_GE(op.session, 0);
    ASSERT_LT(op.session, plan.config.num_sessions);
    const TrafficSession& session = plan.sessions[size_t(op.session)];
    switch (op.op_class) {
      case TrafficOpClass::kUpdate:
        EXPECT_GE(op.del_fid, 0);
        EXPECT_TRUE(session.cell.Contains({op.del_lon, op.del_lat}));
        [[fallthrough]];
      case TrafficOpClass::kInsert:
        // Every write lands inside the session's private cell — the
        // invariant the parity oracle stands on.
        EXPECT_GE(op.fid, 0);
        EXPECT_TRUE(session.cell.Contains({op.lon, op.lat}));
        break;
      case TrafficOpClass::kRectQuery:
      case TrafficOpClass::kPolygonQuery:
        EXPECT_LE(op.t_begin_ms, op.t_end_ms);
        break;
      case TrafficOpClass::kKnnQuery:
        EXPECT_GT(op.k, 0u);
        break;
    }
  }

  // Session cells are pairwise disjoint (shrunken grid cells), so one
  // session's writes can never leak into another session's oracle query.
  for (size_t i = 0; i < plan.sessions.size(); ++i) {
    for (size_t j = i + 1; j < plan.sessions.size(); ++j) {
      EXPECT_FALSE(plan.sessions[i].cell.Intersects(plan.sessions[j].cell))
          << "sessions " << i << " and " << j << " overlap";
    }
    // Ground truth is sorted — VerifyTrafficParity compares sorted fids.
    EXPECT_TRUE(std::is_sorted(plan.sessions[i].live_fids.begin(),
                               plan.sessions[i].live_fids.end()));
  }
}

TEST(TrafficTest, ZipfSamplerConcentratesOnLowRanks) {
  ZipfSampler zipf(64, 1.1);
  ASSERT_EQ(zipf.size(), 64u);
  Rng rng(99);
  std::vector<int> counts(64, 0);
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const size_t rank = zipf.Sample(&rng);
    ASSERT_LT(rank, 64u);
    ++counts[rank];
  }
  // Rank 0 is the hottest key by a wide margin, and the head dominates the
  // tail — the defining Zipf properties, tested loosely enough to never
  // flake on a fixed seed.
  EXPECT_GT(counts[0], counts[16] * 4);
  const int head = counts[0] + counts[1] + counts[2] + counts[3];
  int tail = 0;
  for (size_t i = 32; i < 64; ++i) tail += counts[size_t(i)];
  EXPECT_GT(head, tail);
}

TEST(TrafficTest, ReshardMidwayRunKeepsExactParity) {
  TrafficConfig config = SmallTrafficConfig(31337);
  const TrafficPlan plan = GenerateTrafficPlan(config);

  st::StStoreOptions options;
  options.approach.kind = st::ApproachKind::kBslTS;
  options.approach.dataset_mbr = config.region;
  options.cluster.num_shards = 4;
  options.cluster.chunk_max_bytes = 16 * 1024;
  options.cluster.seed = 5;
  st::StStore store(options);
  ASSERT_TRUE(store.Setup().ok());
  ASSERT_TRUE(PreloadTraffic(&store, plan).ok());

  TrafficRunOptions run;
  run.threads = 4;
  run.time_scale = 8.0;  // compress the schedule; this is a regression test
  run.reshard_midway = true;
  run.reshard_to = st::ApproachKind::kHil;
  const TrafficReport report = RunTraffic(&store, plan, run);

  EXPECT_EQ(report.total_ops, uint64_t(config.total_ops));
  EXPECT_EQ(report.total_errors, 0u);
  EXPECT_TRUE(report.reshard_ran);
  EXPECT_TRUE(report.reshard_status.ok()) << report.reshard_status.ToString();
  EXPECT_EQ(store.approach().kind(), st::ApproachKind::kHil);
  EXPECT_FALSE(store.resharding());
  EXPECT_EQ(VerifyTrafficParity(store, plan), 0u);
}

}  // namespace
}  // namespace stix::workload
