#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/btree.h"
#include "storage/collection.h"
#include "storage/record_store.h"

namespace stix::storage {
namespace {

bson::Document MakeDoc(int i) {
  return bson::DocBuilder()
      .Field("i", i)
      .Field("name", "doc" + std::to_string(i))
      .Build();
}

// ---------- RecordStore ----------

TEST(RecordStoreTest, InsertGetRemove) {
  RecordStore rs;
  const RecordId a = rs.Insert(MakeDoc(1));
  const RecordId b = rs.Insert(MakeDoc(2));
  EXPECT_NE(a, kInvalidRecordId);
  EXPECT_NE(a, b);
  ASSERT_NE(rs.Get(a), nullptr);
  EXPECT_EQ(rs.Get(a)->Get("i")->AsInt32(), 1);
  EXPECT_TRUE(rs.Remove(a));
  EXPECT_EQ(rs.Get(a), nullptr);
  EXPECT_FALSE(rs.Remove(a));
  EXPECT_EQ(rs.num_records(), 1u);
}

TEST(RecordStoreTest, GetInvalidIds) {
  RecordStore rs;
  EXPECT_EQ(rs.Get(kInvalidRecordId), nullptr);
  EXPECT_EQ(rs.Get(999), nullptr);
}

TEST(RecordStoreTest, SizeAccountingFollowsInsertRemove) {
  RecordStore rs;
  const uint64_t empty = rs.logical_size_bytes();
  EXPECT_EQ(empty, 0u);
  bson::Document doc = MakeDoc(7);
  const size_t doc_size = doc.ApproxBsonSize();
  const RecordId id = rs.Insert(std::move(doc));
  EXPECT_EQ(rs.logical_size_bytes(), doc_size);
  rs.Remove(id);
  EXPECT_EQ(rs.logical_size_bytes(), 0u);
}

TEST(RecordStoreTest, ForEachVisitsLiveInIdOrder) {
  RecordStore rs;
  std::vector<RecordId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(rs.Insert(MakeDoc(i)));
  rs.Remove(ids[3]);
  rs.Remove(ids[7]);
  std::vector<RecordId> seen;
  rs.ForEach([&](RecordId id, const bson::Document&) { seen.push_back(id); });
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(std::count(seen.begin(), seen.end(), ids[3]), 0);
}

// ---------- BTree ----------

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_EQ(tree.num_entries(), 0u);
  EXPECT_FALSE(tree.First().Valid());
  EXPECT_FALSE(tree.SeekGE("anything").Valid());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, InsertAndScanInOrder) {
  BTree tree;
  Rng rng(2);
  std::vector<int> order(1000);
  for (int i = 0; i < 1000; ++i) order[i] = i;
  for (int i = 999; i > 0; --i) {
    std::swap(order[i], order[rng.NextBounded(i + 1)]);
  }
  for (int i : order) tree.Insert(Key(i), static_cast<RecordId>(i + 1));
  EXPECT_EQ(tree.num_entries(), 1000u);
  EXPECT_TRUE(tree.CheckInvariants());

  int expected = 0;
  for (BTree::Cursor c = tree.First(); c.Valid(); c.Next()) {
    EXPECT_EQ(c.key(), Key(expected));
    EXPECT_EQ(c.rid(), static_cast<RecordId>(expected + 1));
    ++expected;
  }
  EXPECT_EQ(expected, 1000);
  EXPECT_GT(tree.height(), 1);
}

TEST(BTreeTest, SeekGEFindsFirstNotLess) {
  BTree tree;
  for (int i = 0; i < 100; i += 2) tree.Insert(Key(i), 1);
  BTree::Cursor c = tree.SeekGE(Key(31));
  ASSERT_TRUE(c.Valid());
  EXPECT_EQ(c.key(), Key(32));
  c = tree.SeekGE(Key(32));
  ASSERT_TRUE(c.Valid());
  EXPECT_EQ(c.key(), Key(32));
  c = tree.SeekGE(Key(99));
  EXPECT_FALSE(c.Valid());
}

TEST(BTreeTest, DuplicateKeysOrderedByRid) {
  BTree tree;
  tree.Insert("same", 30);
  tree.Insert("same", 10);
  tree.Insert("same", 20);
  std::vector<RecordId> rids;
  for (BTree::Cursor c = tree.SeekGE("same"); c.Valid(); c.Next()) {
    rids.push_back(c.rid());
  }
  EXPECT_EQ(rids, (std::vector<RecordId>{10, 20, 30}));
}

TEST(BTreeTest, RemoveSpecificEntry) {
  BTree tree;
  tree.Insert("a", 1);
  tree.Insert("a", 2);
  tree.Insert("b", 3);
  EXPECT_TRUE(tree.Remove("a", 2));
  EXPECT_FALSE(tree.Remove("a", 2));
  EXPECT_FALSE(tree.Remove("zzz", 9));
  EXPECT_EQ(tree.num_entries(), 2u);
  BTree::Cursor c = tree.First();
  EXPECT_EQ(c.rid(), 1u);
  c.Next();
  EXPECT_EQ(c.rid(), 3u);
}

TEST(BTreeTest, MatchesReferenceUnderRandomOps) {
  BTree tree;
  std::multimap<std::string, RecordId> reference;
  Rng rng(14);
  for (int op = 0; op < 20000; ++op) {
    const int key_id = static_cast<int>(rng.NextBounded(500));
    const std::string key = Key(key_id);
    if (rng.NextBool(0.7)) {
      const RecordId rid = rng.NextBounded(1000) + 1;
      // One document produces one entry per index, so a live (key, rid)
      // pair is unique; skip collisions the way real use never creates.
      bool exists = false;
      auto range = reference.equal_range(key);
      for (auto it = range.first; it != range.second; ++it) {
        exists |= it->second == rid;
      }
      if (!exists) {
        tree.Insert(key, rid);
        reference.emplace(key, rid);
      }
    } else if (!reference.empty()) {
      // Remove a (key, rid) that exists for this key, if any.
      auto range = reference.equal_range(key);
      if (range.first != range.second) {
        EXPECT_TRUE(tree.Remove(key, range.first->second));
        reference.erase(range.first);
      } else {
        EXPECT_FALSE(tree.Remove(key, 12345));
      }
    }
  }
  EXPECT_EQ(tree.num_entries(), reference.size());
  EXPECT_TRUE(tree.CheckInvariants());

  // Full scans agree (multimap preserves insertion order within equal keys,
  // so compare as sorted multisets of (key, rid)).
  std::vector<std::pair<std::string, RecordId>> from_tree, from_ref;
  for (BTree::Cursor c = tree.First(); c.Valid(); c.Next()) {
    from_tree.emplace_back(c.key(), c.rid());
  }
  for (const auto& [k, r] : reference) from_ref.emplace_back(k, r);
  std::sort(from_ref.begin(), from_ref.end());
  EXPECT_EQ(from_tree, from_ref);
}

TEST(BTreeTest, RangeScanSeesExactWindow) {
  BTree tree;
  for (int i = 0; i < 1000; ++i) tree.Insert(Key(i), static_cast<RecordId>(i));
  int count = 0;
  for (BTree::Cursor c = tree.SeekGE(Key(100));
       c.Valid() && c.key() < Key(200); c.Next()) {
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(BTreeTest, PrefixCompressionShrinksSharedPrefixKeys) {
  BTree shared, random;
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    shared.Insert("common/long/prefix/" + Key(i), 1);
    std::string rand_key;
    for (int j = 0; j < 28; ++j) {
      rand_key.push_back(static_cast<char>('a' + rng.NextBounded(26)));
    }
    random.Insert(rand_key, 1);
  }
  // Same key lengths (28 bytes), very different compressed sizes.
  EXPECT_LT(shared.SizeWithPrefixCompression(),
            random.SizeWithPrefixCompression() / 2);
  EXPECT_LT(shared.SizeWithPrefixCompression(), shared.SizeUncompressed());
}

TEST(BTreeTest, SizeAccountingCountsAllEntries) {
  BTree tree;
  EXPECT_EQ(tree.SizeWithPrefixCompression(), 0u);  // nothing to store
  tree.Insert("abc", 1);
  const uint64_t one = tree.SizeWithPrefixCompression();
  tree.Insert("abd", 2);
  EXPECT_GT(tree.SizeWithPrefixCompression(), one);
}

TEST(BTreeTest, LazyDeletionKeepsScansCorrect) {
  BTree tree;
  for (int i = 0; i < 500; ++i) tree.Insert(Key(i), 1);
  // Hollow out a whole region so some leaves become empty.
  for (int i = 100; i < 400; ++i) EXPECT_TRUE(tree.Remove(Key(i), 1));
  std::vector<std::string> keys;
  for (BTree::Cursor c = tree.First(); c.Valid(); c.Next()) {
    keys.push_back(c.key());
  }
  ASSERT_EQ(keys.size(), 200u);
  EXPECT_EQ(keys[99], Key(99));
  EXPECT_EQ(keys[100], Key(400));
  // SeekGE into the hollow region lands beyond it.
  BTree::Cursor c = tree.SeekGE(Key(250));
  ASSERT_TRUE(c.Valid());
  EXPECT_EQ(c.key(), Key(400));
}

TEST(BTreeTest, HeavyDuplicateStressAgainstReference) {
  // Very few distinct keys, many rids: leaf splits land inside duplicate
  // runs, which the rid-carrying separators must route correctly.
  BTree tree;
  std::multimap<std::string, RecordId> reference;
  Rng rng(42);
  RecordId next_rid = 1;
  for (int op = 0; op < 30000; ++op) {
    const std::string key = Key(static_cast<int>(rng.NextBounded(3)));
    if (rng.NextBool(0.8)) {
      tree.Insert(key, next_rid);
      reference.emplace(key, next_rid);
      ++next_rid;
    } else {
      auto range = reference.equal_range(key);
      if (range.first != range.second) {
        EXPECT_TRUE(tree.Remove(key, range.first->second));
        reference.erase(range.first);
      }
    }
  }
  EXPECT_EQ(tree.num_entries(), reference.size());
  EXPECT_TRUE(tree.CheckInvariants());

  // Every remaining entry must be findable via a key-targeted scan.
  for (int k = 0; k < 3; ++k) {
    const std::string key = Key(k);
    size_t scanned = 0;
    for (BTree::Cursor c = tree.SeekGE(key);
         c.Valid() && c.key() == key; c.Next()) {
      ++scanned;
    }
    EXPECT_EQ(scanned, reference.count(key)) << "key " << k;
  }
}

TEST(BTreeTest, SeekLandsOnFirstDuplicate) {
  BTree tree;
  for (RecordId rid = 1; rid <= 500; ++rid) tree.Insert("dup", rid);
  tree.Insert("above", 1);  // sorts before "dup"
  BTree::Cursor c = tree.SeekGE("dup");
  ASSERT_TRUE(c.Valid());
  EXPECT_EQ(c.key(), "dup");
  EXPECT_EQ(c.rid(), 1u);  // the smallest rid, not a mid-run entry
}

// ---------- Collection stats ----------

TEST(CollectionTest, StatsCountAndCompress) {
  Collection coll;
  for (int i = 0; i < 2000; ++i) {
    coll.records().Insert(bson::DocBuilder()
                              .Field("i", i)
                              .Field("payload",
                                     "sensor=ok;rpm=1200;din=1;"
                                     "sensor=ok;rpm=1200;din=1;")
                              .Build());
  }
  const CollectionStats stats = coll.ComputeStats();
  EXPECT_EQ(stats.num_documents, 2000u);
  EXPECT_GT(stats.logical_bytes, 0u);
  // Repetitive payloads must compress.
  EXPECT_LT(stats.compressed_bytes, stats.logical_bytes);
  EXPECT_GT(stats.compressed_bytes, 0u);
}

TEST(CollectionTest, EmptyCollectionStats) {
  Collection coll;
  const CollectionStats stats = coll.ComputeStats();
  EXPECT_EQ(stats.num_documents, 0u);
  EXPECT_EQ(stats.logical_bytes, 0u);
  EXPECT_EQ(stats.compressed_bytes, 0u);
}

}  // namespace
}  // namespace stix::storage
