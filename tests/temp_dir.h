#ifndef STIX_TESTS_TEMP_DIR_H_
#define STIX_TESTS_TEMP_DIR_H_

#include <string>

#include <gtest/gtest.h>

#include "common/fs.h"

namespace stix::testing {

/// RAII scratch directory for tests that touch the filesystem (snapshots,
/// WALs, checkpoints). Each instance gets a unique directory (a random
/// nonce under the system temp dir), so fixtures stay independent when
/// `ctest -j` runs test cases as concurrent processes; the tree is removed
/// on destruction.
///
///   TempDir dir;                   // or TempDir dir("wal");
///   WriteAheadLog::Open(dir.path() + "/wal.log", ...);
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "stix_test") {
    Result<std::string> made = MakeTempDir(prefix);
    // Tests cannot run without scratch space; fail loudly, not with an
    // empty path that would scatter files into the working directory.
    if (!made.ok()) {
      ADD_FAILURE() << "TempDir: " << made.status().ToString();
      return;
    }
    path_ = std::move(*made);
  }

  ~TempDir() {
    if (!path_.empty()) (void)RemoveAll(path_);
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  /// Absolute path of the directory (no trailing slash).
  const std::string& path() const { return path_; }

  /// Convenience: `dir / "name"`.
  std::string operator/(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

}  // namespace stix::testing

#endif  // STIX_TESTS_TEMP_DIR_H_
