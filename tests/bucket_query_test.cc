#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bson/codec.h"
#include "query/bucket_unpack.h"
#include "query/expression.h"
#include "st/knn.h"
#include "st/st_store.h"
#include "workload/trajectory_generator.h"

namespace stix::st {
namespace {

constexpr int64_t kHourMs = 3600 * 1000;

StStoreOptions BaseOptions(ApproachKind kind, bool bucket) {
  StStoreOptions options;
  options.approach.kind = kind;
  options.approach.dataset_mbr = workload::TrajectoryGenerator::GreeceMbr();
  options.cluster.num_shards = 3;
  options.cluster.seed = 11;
  if (bucket) {
    storage::BucketLayout layout;
    layout.window_ms = 6 * kHourMs;
    options.bucket = layout;
  }
  return options;
}

std::unique_ptr<StStore> LoadedStore(ApproachKind kind, bool bucket,
                                     uint64_t docs) {
  auto store = std::make_unique<StStore>(BaseOptions(kind, bucket));
  EXPECT_TRUE(store->Setup().ok());
  workload::TrajectoryOptions traj;
  traj.num_records = docs;
  traj.num_vehicles = 20;
  traj.seed = 1234;
  workload::TrajectoryGenerator gen(traj);
  bson::Document doc;
  while (gen.Next(&doc)) {
    EXPECT_TRUE(store->Insert(std::move(doc)).ok());
  }
  return store;
}

// Canonical sorted rendering of a result set, for order-insensitive
// equality between layouts.
std::multiset<std::string> Canon(const std::vector<bson::Document>& docs) {
  std::multiset<std::string> out;
  for (const bson::Document& d : docs) out.insert(bson::EncodeBson(d));
  return out;
}

TEST(BucketQueryTest, RowAndBucketAnswerIdentically) {
  const workload::TrajectoryOptions traj;
  const int64_t t0 = traj.t_begin_ms;
  const int64_t span = traj.t_end_ms - traj.t_begin_ms;
  for (const ApproachKind kind : {ApproachKind::kBslTS, ApproachKind::kHil}) {
    const auto row = LoadedStore(kind, false, 2000);
    const auto bucket = LoadedStore(kind, true, 2000);
    const geo::Rect rects[] = {
        {{23.0, 37.5}, {24.4, 38.5}},    // Athens-ish
        {{19.0, 34.0}, {29.0, 42.0}},    // everything
        {{26.9, 40.9}, {27.0, 41.0}},    // almost nothing
    };
    const std::pair<int64_t, int64_t> windows[] = {
        {t0, t0 + span},                  // full span
        {t0 + span / 3, t0 + span / 2},   // inner window
        {t0 - 10 * span, t0 - span},      // empty window
    };
    for (const geo::Rect& rect : rects) {
      for (const auto& [a, b] : windows) {
        const StQueryResult rr = row->Query(rect, a, b);
        const StQueryResult br = bucket->Query(rect, a, b);
        ASSERT_TRUE(rr.cluster.status.ok());
        ASSERT_TRUE(br.cluster.status.ok());
        EXPECT_EQ(Canon(rr.cluster.docs), Canon(br.cluster.docs))
            << ApproachName(kind) << " rect [" << rect.lo.lon << ","
            << rect.hi.lon << "] window " << a << ".." << b;
      }
    }
  }
}

TEST(BucketQueryTest, PolygonAndKnnAnswerIdentically) {
  const workload::TrajectoryOptions traj;
  const auto row = LoadedStore(ApproachKind::kHil, false, 1500);
  const auto bucket = LoadedStore(ApproachKind::kHil, true, 1500);

  const geo::Polygon triangle{{
      {22.0, 36.5}, {25.5, 37.0}, {23.8, 40.0}}};
  const StQueryResult rp = row->QueryPolygon(triangle, traj.t_begin_ms,
                                             traj.t_end_ms);
  const StQueryResult bp = bucket->QueryPolygon(triangle, traj.t_begin_ms,
                                                traj.t_end_ms);
  ASSERT_TRUE(rp.cluster.status.ok());
  ASSERT_TRUE(bp.cluster.status.ok());
  EXPECT_FALSE(rp.cluster.docs.empty());
  EXPECT_EQ(Canon(rp.cluster.docs), Canon(bp.cluster.docs));

  const geo::Point center{23.7275, 37.9838};
  KnnOptions knn;
  knn.k = 10;
  const KnnResult rk =
      KnnQuery(*row, center, traj.t_begin_ms, traj.t_end_ms, knn);
  const KnnResult bk =
      KnnQuery(*bucket, center, traj.t_begin_ms, traj.t_end_ms, knn);
  ASSERT_EQ(rk.neighbors.size(), bk.neighbors.size());
  for (size_t i = 0; i < rk.neighbors.size(); ++i) {
    EXPECT_DOUBLE_EQ(rk.neighbors[i].distance_m, bk.neighbors[i].distance_m)
        << "neighbor " << i;
  }
}

// ---------- explain: BUCKET_UNPACK stage-tree invariants ----------

const query::ExplainNode* FindStage(const query::ExplainNode& node,
                                    const std::string& stage) {
  if (node.stage == stage) return &node;
  for (const query::ExplainNode& child : node.children) {
    if (const query::ExplainNode* hit = FindStage(child, stage)) return hit;
  }
  return nullptr;
}

TEST(BucketQueryTest, ExplainShowsBucketUnpackWithConsistentCounters) {
  const workload::TrajectoryOptions traj;
  const auto bucket = LoadedStore(ApproachKind::kBslTS, true, 2000);
  const geo::Rect athens{{23.0, 37.5}, {24.4, 38.5}};
  const int64_t mid = traj.t_begin_ms + (traj.t_end_ms - traj.t_begin_ms) / 2;
  const StExplain explain = bucket->Explain(athens, traj.t_begin_ms, mid);

  uint64_t total_unpacked = 0;
  uint64_t total_returned = 0;
  for (const cluster::ShardExplain& shard : explain.cluster.shards) {
    const query::ExplainNode* unpack =
        FindStage(shard.winning_plan, "BUCKET_UNPACK");
    ASSERT_NE(unpack, nullptr) << "shard " << shard.shard_id;
    // The unpack stage consumes bucket documents its child already
    // counted; its own counters are points_unpacked / buckets_pruned.
    EXPECT_EQ(unpack->docs_examined, 0u);
    ASSERT_EQ(unpack->children.size(), 1u);
    const query::ExplainNode& child = unpack->children[0];
    EXPECT_TRUE(child.stage == "FETCH" || child.stage == "COLLSCAN")
        << child.stage;
    // Buckets the child surfaced either got pruned or unpacked; a pruned
    // bucket contributes no unpacked points, so unpacked points >= docs
    // the stage advanced (every output point came from a decoded bucket).
    EXPECT_LE(unpack->advanced, unpack->points_unpacked);
    EXPECT_LE(unpack->buckets_pruned, child.advanced);
    total_unpacked += unpack->points_unpacked;
    total_returned += shard.stats.n_returned;
  }
  EXPECT_EQ(total_returned, explain.cluster.result.n_returned);
  EXPECT_GE(total_unpacked, total_returned);

  // Stage-tree sum invariant holds with BUCKET_UNPACK in the tree.
  EXPECT_EQ(explain.cluster.SumStageDocsExamined(),
            explain.cluster.result.total_docs_examined);
  EXPECT_EQ(explain.cluster.SumStageKeysExamined(),
            explain.cluster.result.total_keys_examined);
}

// ---------- pruning spec: widening and coverage ----------

TEST(BucketPruneSpecTest, CoversOnlyWhenExactAndContained) {
  storage::BucketLayout layout;
  layout.window_ms = 6 * kHourMs;
  const int64_t t0 = 1530403200000;
  std::vector<query::ExprPtr> conjuncts;
  conjuncts.push_back(query::MakeCmp(
      layout.time_field, query::CmpOp::kGte, bson::Value::DateTime(t0)));
  conjuncts.push_back(query::MakeCmp(layout.time_field, query::CmpOp::kLte,
                                     bson::Value::DateTime(t0 + kHourMs)));
  conjuncts.push_back(query::MakeGeoWithinBox(
      layout.location_field, geo::Rect{{23.0, 37.0}, {24.0, 38.0}}));
  const query::ExprPtr expr = query::MakeAnd(std::move(conjuncts));
  const query::BucketPruneSpec spec =
      query::ExtractBucketPredicates(expr, layout);
  EXPECT_TRUE(spec.exact);

  storage::BucketMeta inside;
  inside.min_ts = t0 + 1000;
  inside.max_ts = t0 + kHourMs - 1000;
  inside.has_mbr = true;
  inside.mbr = {{23.2, 37.2}, {23.8, 37.8}};
  EXPECT_TRUE(spec.MayContain(inside));
  EXPECT_TRUE(spec.Covers(inside));

  // Time extent pokes out of the bounds: may contain, but not covered.
  storage::BucketMeta straddling = inside;
  straddling.max_ts = t0 + 2 * kHourMs;
  EXPECT_TRUE(spec.MayContain(straddling));
  EXPECT_FALSE(spec.Covers(straddling));

  // MBR partially outside the rect: same.
  storage::BucketMeta overhang = inside;
  overhang.mbr = {{23.5, 37.5}, {24.5, 38.5}};
  EXPECT_TRUE(spec.MayContain(overhang));
  EXPECT_FALSE(spec.Covers(overhang));

  // Disjoint in space: prunable.
  storage::BucketMeta far = inside;
  far.mbr = {{27.0, 40.0}, {28.0, 41.0}};
  EXPECT_FALSE(spec.MayContain(far));

  // No MBR recorded (some point had a non-canonical location): the rect
  // can neither prune nor cover.
  storage::BucketMeta opaque = inside;
  opaque.has_mbr = false;
  EXPECT_TRUE(spec.MayContain(opaque));
  EXPECT_FALSE(spec.Covers(opaque));

  // A polygon captures only its bounding box — never exact, never covers.
  const query::ExprPtr poly_expr = query::MakeGeoWithinPolygon(
      layout.location_field,
      geo::Polygon{{{23.0, 37.0}, {24.0, 37.0}, {23.5, 38.0}}});
  const query::BucketPruneSpec poly_spec =
      query::ExtractBucketPredicates(poly_expr, layout);
  EXPECT_FALSE(poly_spec.exact);
  EXPECT_FALSE(poly_spec.Covers(inside));
}

TEST(BucketQueryTest, DeleteRemovesPointsUnderBucketLayout) {
  const workload::TrajectoryOptions traj;
  const auto store = LoadedStore(ApproachKind::kBslTS, true, 1000);
  const geo::Rect everything{{19.0, 34.0}, {29.0, 42.0}};
  const StQueryResult before =
      store->Query(everything, traj.t_begin_ms, traj.t_end_ms);
  ASSERT_EQ(before.cluster.docs.size(), 1000u);

  // Delete the first half of the time span (bucketed deletes unpack,
  // filter and re-encode partially-hit buckets), then verify survivors.
  const int64_t span = traj.t_end_ms - traj.t_begin_ms;
  const int64_t cut = traj.t_begin_ms + span / 2;
  uint64_t expected_survivors = 0;
  for (const bson::Document& d : before.cluster.docs) {
    if (d.Get("date")->AsDateTime() > cut) ++expected_survivors;
  }
  std::vector<query::ExprPtr> conjuncts;
  conjuncts.push_back(query::MakeCmp("date", query::CmpOp::kGte,
                                     bson::Value::DateTime(traj.t_begin_ms)));
  conjuncts.push_back(query::MakeCmp("date", query::CmpOp::kLte,
                                     bson::Value::DateTime(cut)));
  ASSERT_TRUE(store->FlushBuckets().ok());
  const Result<uint64_t> removed =
      store->cluster().Delete(query::MakeAnd(std::move(conjuncts)));
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(*removed, 1000u - expected_survivors);
  const StQueryResult after =
      store->Query(everything, traj.t_begin_ms, traj.t_end_ms);
  EXPECT_EQ(after.cluster.docs.size(), expected_survivors);
}

}  // namespace
}  // namespace stix::st
