#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/covering.h"
#include "geo/curve_registry.h"
#include "geo/egeohash.h"
#include "geo/geohash.h"
#include "geo/hilbert.h"
#include "geo/onion.h"
#include "geo/zorder.h"

namespace stix::geo {
namespace {

// ---------- Rect ----------

TEST(RectTest, ContainsIsClosed) {
  const Rect r{{0, 0}, {10, 5}};
  EXPECT_TRUE(r.Contains({0, 0}));
  EXPECT_TRUE(r.Contains({10, 5}));
  EXPECT_TRUE(r.Contains({5, 2.5}));
  EXPECT_FALSE(r.Contains({10.001, 2}));
  EXPECT_FALSE(r.Contains({5, -0.001}));
}

TEST(RectTest, IntersectsAndContainsRect) {
  const Rect a{{0, 0}, {10, 10}};
  const Rect b{{5, 5}, {15, 15}};
  const Rect c{{11, 11}, {12, 12}};
  const Rect inner{{2, 2}, {3, 3}};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.ContainsRect(inner));
  EXPECT_FALSE(a.ContainsRect(b));
}

TEST(RectTest, AreaKm2Plausible) {
  // The paper's small query rect covers a few tens of km^2 (it reports
  // 526 km^2 for a rectangle that is actually ~0.5 km^2 in planar math; we
  // just check the spherical computation is in a sane range).
  const double athens = RectAreaKm2(
      Rect{{23.757495, 37.987295}, {23.766958, 37.992997}});
  EXPECT_GT(athens, 0.1);
  EXPECT_LT(athens, 10.0);
  // One degree square near the equator is ~12,300 km^2.
  const double equator = RectAreaKm2(Rect{{0, 0}, {1, 1}});
  EXPECT_NEAR(equator, 12364.0, 150.0);
}

// ---------- GridMapping ----------

TEST(GridMappingTest, ClampsOutOfDomain) {
  const GridMapping grid(4, Rect{{0, 0}, {16, 16}});
  EXPECT_EQ(grid.LonToX(-5), 0u);
  EXPECT_EQ(grid.LonToX(100), 15u);
  EXPECT_EQ(grid.LatToY(-5), 0u);
  EXPECT_EQ(grid.LatToY(100), 15u);
}

TEST(GridMappingTest, CellBoundariesAlign) {
  const GridMapping grid(3, Rect{{0, 0}, {8, 8}});
  EXPECT_EQ(grid.LonToX(2.999), 2u);
  EXPECT_EQ(grid.LonToX(3.0), 3u);
  const Rect block = grid.BlockRect(2, 4, 2);
  EXPECT_DOUBLE_EQ(block.lo.lon, 2.0);
  EXPECT_DOUBLE_EQ(block.lo.lat, 4.0);
  EXPECT_DOUBLE_EQ(block.hi.lon, 4.0);
  EXPECT_DOUBLE_EQ(block.hi.lat, 6.0);
}

// ---------- curves: shared properties ----------

class CurveParamTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Curve2D> MakeTestCurve(int order) const {
    CurveKind kind;
    EXPECT_TRUE(CurveKindFromName(GetParam(), &kind)) << GetParam();
    return MakeCurve(kind, order, Rect{{-180, -90}, {180, 90}});
  }
};

TEST_P(CurveParamTest, BijectionOnSmallGrid) {
  const auto curve = MakeTestCurve(4);  // 16x16
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      const uint64_t d = curve->XyToD(x, y);
      EXPECT_LT(d, curve->num_cells());
      EXPECT_TRUE(seen.insert(d).second) << "duplicate d=" << d;
      uint32_t rx, ry;
      curve->DToXy(d, &rx, &ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST_P(CurveParamTest, RoundTripAtOrder13) {
  const auto curve = MakeTestCurve(13);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBounded(1u << 13));
    const uint32_t y = static_cast<uint32_t>(rng.NextBounded(1u << 13));
    uint32_t rx, ry;
    curve->DToXy(curve->XyToD(x, y), &rx, &ry);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
  }
}

TEST_P(CurveParamTest, QuadtreeBlocksAreAlignedContiguousRanges) {
  // The property the covering algorithm exploits: any aligned 2^k x 2^k
  // block occupies exactly one aligned d-range of width 4^k.
  const int order = 5;
  const auto curve = MakeTestCurve(order);
  if (!curve->quadtree_blocks()) {
    GTEST_SKIP() << curve->name()
                 << " does not claim the quadtree-block property (its"
                    " coverings use the boundary walk instead)";
  }
  for (int k = 0; k <= order; ++k) {
    const uint32_t size = 1u << k;
    const uint64_t width = 1ull << (2 * k);
    for (uint32_t bx = 0; bx < (1u << order); bx += size) {
      for (uint32_t by = 0; by < (1u << order); by += size) {
        const uint64_t base = curve->XyToD(bx, by) & ~(width - 1);
        for (uint32_t dx = 0; dx < size; ++dx) {
          for (uint32_t dy = 0; dy < size; ++dy) {
            const uint64_t d = curve->XyToD(bx + dx, by + dy);
            ASSERT_GE(d, base);
            ASSERT_LT(d, base + width);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Curves, CurveParamTest,
                         ::testing::Values("hilbert", "zorder", "onion",
                                           "egeohash"));

// ---------- Hilbert specifics ----------

TEST(HilbertTest, ConsecutiveDsAreAdjacentCells) {
  // The clustering property (Moon et al.) that motivated the paper's choice:
  // successive curve positions are edge neighbours.
  const HilbertCurve curve(6, GlobeRect());
  uint32_t px, py;
  curve.DToXy(0, &px, &py);
  for (uint64_t d = 1; d < curve.num_cells(); ++d) {
    uint32_t x, y;
    curve.DToXy(d, &x, &y);
    const uint32_t manhattan =
        (x > px ? x - px : px - x) + (y > py ? y - py : py - y);
    ASSERT_EQ(manhattan, 1u) << "jump at d=" << d;
    px = x;
    py = y;
  }
}

TEST(HilbertTest, Order1MatchesTextbookLayout) {
  // Order-1 Hilbert visits (0,0) -> (0,1) -> (1,1) -> (1,0).
  const HilbertCurve curve(1, Rect{{0, 0}, {2, 2}});
  EXPECT_EQ(curve.XyToD(0, 0), 0u);
  EXPECT_EQ(curve.XyToD(0, 1), 1u);
  EXPECT_EQ(curve.XyToD(1, 1), 2u);
  EXPECT_EQ(curve.XyToD(1, 0), 3u);
}

TEST(ZOrderTest, InterleavesLongitudeFirst) {
  const ZOrderCurve curve(2, Rect{{0, 0}, {4, 4}});
  // x=1 contributes the higher bit of each pair.
  EXPECT_EQ(curve.XyToD(0, 0), 0u);
  EXPECT_EQ(curve.XyToD(0, 1), 1u);
  EXPECT_EQ(curve.XyToD(1, 0), 2u);
  EXPECT_EQ(curve.XyToD(1, 1), 3u);
  EXPECT_EQ(curve.XyToD(2, 0), 8u);
}

// ---------- GeoHash ----------

TEST(GeoHashTest, AthensBase32MatchesThePaper) {
  // Paper Section 2.1: Athens (37.983810, 23.727539). The paper prints
  // "swbb5ftzes" at precision 10, but the canonical GeoHash algorithm
  // yields "swbb5ftzex" (the last character differs — paper typo); the
  // precision-5 prefix "swbb5" agrees either way.
  EXPECT_EQ(GeoHashBase32(23.727539, 37.983810, 10), "swbb5ftzex");
  EXPECT_EQ(GeoHashBase32(23.727539, 37.983810, 5), "swbb5");
}

TEST(GeoHashTest, Base32DecodeReturnsCellCenter) {
  double lon, lat;
  ASSERT_TRUE(GeoHashBase32Decode("swbb5ftzes", &lon, &lat));
  EXPECT_NEAR(lon, 23.727539, 1e-4);
  EXPECT_NEAR(lat, 37.983810, 1e-4);
  EXPECT_FALSE(GeoHashBase32Decode("swbb5!", &lon, &lat));
}

TEST(GeoHashTest, EncodeStaysWithinBits) {
  const GeoHash gh(26);
  const uint64_t h = gh.Encode(23.727539, 37.983810);
  EXPECT_LT(h, 1ull << 26);
}

TEST(GeoHashTest, CellRectContainsPoint) {
  const GeoHash gh(26);
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const double lon = rng.NextDouble(-180, 180);
    const double lat = rng.NextDouble(-90, 90);
    const Rect cell = gh.CellRect(gh.Encode(lon, lat));
    EXPECT_TRUE(cell.Contains({lon, lat}))
        << "lon=" << lon << " lat=" << lat;
  }
}

TEST(GeoHashTest, NearbyPointsShareCellAtLowPrecision) {
  const GeoHash coarse(8);
  EXPECT_EQ(coarse.Encode(23.7275, 37.9838), coarse.Encode(23.7280, 37.9840));
}

// ---------- coverings ----------

TEST(CoveringTest, ExhaustiveAgainstBruteForce) {
  // On a small grid, the covering must contain exactly the cells of the
  // integer span the query corners map to — the same clamped LonToX/LatToY
  // mapping document keys go through, so covering membership and key
  // generation can never disagree (not even at ulp-level cell boundaries,
  // where the old floating-point block-extent test could drop a cell).
  const Rect domain{{0, 0}, {16, 16}};
  const HilbertCurve hilbert(4, domain);
  const ZOrderCurve zorder(4, domain);
  Rng rng(21);
  for (int trial = 0; trial < 60; ++trial) {
    const double x1 = rng.NextDouble(0, 16);
    const double x2 = rng.NextDouble(0, 16);
    const double y1 = rng.NextDouble(0, 16);
    const double y2 = rng.NextDouble(0, 16);
    const Rect query{{std::min(x1, x2), std::min(y1, y2)},
                     {std::max(x1, x2), std::max(y1, y2)}};
    for (const Curve2D* curve :
         {static_cast<const Curve2D*>(&hilbert),
          static_cast<const Curve2D*>(&zorder)}) {
      const GridMapping& grid = curve->grid();
      const uint32_t qx0 = grid.LonToX(query.lo.lon);
      const uint32_t qx1 = grid.LonToX(query.hi.lon);
      const uint32_t qy0 = grid.LatToY(query.lo.lat);
      const uint32_t qy1 = grid.LatToY(query.hi.lat);
      const Covering covering = CoverRect(*curve, query);
      for (uint32_t x = 0; x < 16; ++x) {
        for (uint32_t y = 0; y < 16; ++y) {
          const bool expected = x >= qx0 && x <= qx1 && y >= qy0 && y <= qy1;
          const bool actual =
              CoveringContains(covering, curve->XyToD(x, y));
          ASSERT_EQ(expected, actual)
              << curve->name() << " cell (" << x << "," << y << ")";
        }
      }
    }
  }
}

TEST(CoveringTest, RangesAreSortedDisjointNonAdjacent) {
  const HilbertCurve curve(10, GlobeRect());
  const Covering covering =
      CoverRect(curve, Rect{{10, 10}, {40, 30}});
  ASSERT_FALSE(covering.ranges.empty());
  for (size_t i = 0; i < covering.ranges.size(); ++i) {
    EXPECT_LE(covering.ranges[i].lo, covering.ranges[i].hi);
    if (i > 0) {
      // Strictly after the previous range, with a gap (else merge failed).
      EXPECT_GT(covering.ranges[i].lo, covering.ranges[i - 1].hi + 1);
    }
  }
}

TEST(CoveringTest, NumCellsMatchesRangeWidths) {
  const HilbertCurve curve(8, GlobeRect());
  const Covering covering = CoverRect(curve, Rect{{-10, -10}, {15, 20}});
  uint64_t total = 0;
  for (const DRange& r : covering.ranges) total += r.hi - r.lo + 1;
  EXPECT_EQ(total, covering.num_cells);
}

TEST(CoveringTest, WholeDomainIsOneRange) {
  const HilbertCurve curve(7, GlobeRect());
  const Covering covering = CoverRect(curve, GlobeRect());
  ASSERT_EQ(covering.ranges.size(), 1u);
  EXPECT_EQ(covering.ranges[0].lo, 0u);
  EXPECT_EQ(covering.ranges[0].hi, curve.num_cells() - 1);
}

TEST(CoveringTest, DisjointQueryClampsToBoundaryCells) {
  // A rectangle entirely outside the grid domain clamps to the boundary
  // cell its corners map to — the cell where out-of-domain documents are
  // keyed (hil*'s dataset-MBR case), so such documents are still reachable
  // through the index. The covering of a rectangle is never empty.
  const HilbertCurve curve(6, Rect{{0, 0}, {10, 10}});
  const Covering covering = CoverRect(curve, Rect{{20, 20}, {30, 30}});
  ASSERT_EQ(covering.num_cells, 1u);
  // An out-of-domain point (clamped by PointToD) lands in that exact cell.
  EXPECT_TRUE(CoveringContains(covering, curve.PointToD(25.0, 25.0)));
  EXPECT_TRUE(CoveringContains(covering, curve.PointToD(1e9, 1e9)));
}

TEST(CoveringTest, PointsInsideQueryAlwaysCovered) {
  const HilbertCurve curve(13, GlobeRect());
  const Rect query{{23.606039, 38.023982}, {24.032754, 38.353926}};
  const Covering covering = CoverRect(curve, query);
  Rng rng(33);
  for (int i = 0; i < 1000; ++i) {
    const double lon = rng.NextDouble(query.lo.lon, query.hi.lon);
    const double lat = rng.NextDouble(query.lo.lat, query.hi.lat);
    EXPECT_TRUE(CoveringContains(covering, curve.PointToD(lon, lat)));
  }
}

TEST(CoveringTest, MaxRangesBudgetCoarsensButStillCovers) {
  const HilbertCurve curve(13, GlobeRect());
  const Rect query{{23.606039, 38.023982}, {24.032754, 38.353926}};
  const Covering exact = CoverRect(curve, query);
  CoveringOptions opts;
  opts.max_ranges = 8;
  const Covering coarse = CoverRect(curve, query, opts);
  EXPECT_LE(coarse.ranges.size(), exact.ranges.size());
  EXPECT_GE(coarse.num_cells, exact.num_cells);
  Rng rng(34);
  for (int i = 0; i < 300; ++i) {
    const double lon = rng.NextDouble(query.lo.lon, query.hi.lon);
    const double lat = rng.NextDouble(query.lo.lat, query.hi.lat);
    EXPECT_TRUE(CoveringContains(coarse, curve.PointToD(lon, lat)));
  }
}

TEST(CoveringTest, HilbertProducesFewerRangesThanZOrderOnPaperQueries) {
  // The clustering advantage [Moon et al. 2001] the paper cites: for the
  // same rectangle the Hilbert covering compresses into no more intervals
  // than Z-order's (usually strictly fewer).
  const HilbertCurve hilbert(13, GlobeRect());
  const ZOrderCurve zorder(13, GlobeRect());
  const Rect big{{23.606039, 38.023982}, {24.032754, 38.353926}};
  const Covering ch = CoverRect(hilbert, big);
  const Covering cz = CoverRect(zorder, big);
  EXPECT_LE(ch.ranges.size(), cz.ranges.size());
  EXPECT_EQ(ch.num_cells, cz.num_cells);  // same cells, different order
}

TEST(CoveringTest, DegeneratePointRectCoversOneCellPerCurvePosition) {
  const HilbertCurve curve(13, GlobeRect());
  const Rect point{{23.7275, 37.9838}, {23.7275, 37.9838}};
  const Covering covering = CoverRect(curve, point);
  ASSERT_FALSE(covering.ranges.empty());
  // A point touches at most 4 cells (when exactly on a corner).
  EXPECT_LE(covering.num_cells, 4u);
  EXPECT_TRUE(
      CoveringContains(covering, curve.PointToD(23.7275, 37.9838)));
}

TEST(CoveringTest, DeterministicAcrossCalls) {
  const HilbertCurve curve(12, GlobeRect());
  const Rect q{{5.0, 5.0}, {9.5, 11.25}};
  const Covering a = CoverRect(curve, q);
  const Covering b = CoverRect(curve, q);
  ASSERT_EQ(a.ranges.size(), b.ranges.size());
  for (size_t i = 0; i < a.ranges.size(); ++i) {
    EXPECT_EQ(a.ranges[i], b.ranges[i]);
  }
}

TEST(GridMappingTest, Order16RoundTrips) {
  const HilbertCurve curve(16, GlobeRect());
  Rng rng(71);
  for (int i = 0; i < 500; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBounded(1u << 16));
    const uint32_t y = static_cast<uint32_t>(rng.NextBounded(1u << 16));
    uint32_t rx, ry;
    curve.DToXy(curve.XyToD(x, y), &rx, &ry);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
    EXPECT_LT(curve.XyToD(x, y), curve.num_cells());
  }
}

TEST(GeoDistanceTest, HaversineKnownValues) {
  // Athens <-> Thessaloniki is ~300 km.
  const double d = HaversineMeters({23.7275, 37.9838}, {22.9444, 40.6401});
  EXPECT_NEAR(d, 301000, 5000);
  EXPECT_DOUBLE_EQ(HaversineMeters({10, 10}, {10, 10}), 0.0);
}

TEST(GeoDistanceTest, RectAroundPointHasRequestedReach) {
  const geo::Point center{23.7275, 37.9838};
  const Rect r = RectAroundPoint(center, 1000.0);
  EXPECT_TRUE(r.Contains(center));
  // The north edge is ~1000 m away.
  EXPECT_NEAR(HaversineMeters(center, {center.lon, r.hi.lat}), 1000.0, 20.0);
  // The east edge too (longitude compensated by latitude).
  EXPECT_NEAR(HaversineMeters(center, {r.hi.lon, center.lat}), 1000.0, 20.0);
}

TEST(CoveringContainsTest, BinarySearchEdges) {
  Covering c;
  c.ranges = {DRange{5, 9}, DRange{20, 20}, DRange{30, 40}};
  EXPECT_FALSE(CoveringContains(c, 4));
  EXPECT_TRUE(CoveringContains(c, 5));
  EXPECT_TRUE(CoveringContains(c, 9));
  EXPECT_FALSE(CoveringContains(c, 10));
  EXPECT_TRUE(CoveringContains(c, 20));
  EXPECT_FALSE(CoveringContains(c, 21));
  EXPECT_TRUE(CoveringContains(c, 40));
  EXPECT_FALSE(CoveringContains(c, 41));
}

TEST(CoveringTest, SingletonCount) {
  Covering c;
  c.ranges = {DRange{1, 1}, DRange{3, 7}, DRange{9, 9}};
  EXPECT_EQ(c.NumSingletons(), 2u);
}

// ---------- covering property tests across curves, orders, domains ----------

// Every covering must be sorted, disjoint, non-adjacent (maximal ranges),
// and num_cells must equal the sum of range widths.
void ExpectWellFormedCovering(const Covering& c) {
  uint64_t cells = 0;
  for (size_t i = 0; i < c.ranges.size(); ++i) {
    ASSERT_LE(c.ranges[i].lo, c.ranges[i].hi) << "range " << i;
    if (i > 0) {
      // lo > prev.hi + 1: adjacent ranges would not be maximal.
      ASSERT_GT(c.ranges[i].lo, c.ranges[i - 1].hi + 1) << "range " << i;
    }
    cells += c.ranges[i].hi - c.ranges[i].lo + 1;
  }
  EXPECT_EQ(c.num_cells, cells);
}

// A random query rectangle spanning at most `max_span` cells per side,
// placed uniformly in the domain. Bounding the span in *cells* keeps
// CoverRect's perimeter cost flat as the order grows to 16.
Rect RandomCellRect(Rng& rng, const GridMapping& grid, uint32_t max_span) {
  const uint32_t n = grid.grid_size();
  const double cell_w = (grid.domain().hi.lon - grid.domain().lo.lon) / n;
  const double cell_h = (grid.domain().hi.lat - grid.domain().lo.lat) / n;
  const uint32_t w = 1 + rng.NextBounded(std::min(n, max_span));
  const uint32_t h = 1 + rng.NextBounded(std::min(n, max_span));
  const uint32_t x0 = static_cast<uint32_t>(rng.NextBounded(n - w + 1));
  const uint32_t y0 = static_cast<uint32_t>(rng.NextBounded(n - h + 1));
  // Fractional offsets keep the corners strictly inside their cells, so the
  // rectangle is not grid-aligned (the harder case for the descent).
  const double lo_lon =
      grid.domain().lo.lon + (x0 + rng.NextDouble() * 0.5) * cell_w;
  const double lo_lat =
      grid.domain().lo.lat + (y0 + rng.NextDouble() * 0.5) * cell_h;
  const double hi_lon = grid.domain().lo.lon +
                        (x0 + w - 1 + 0.5 + rng.NextDouble() * 0.5) * cell_w;
  const double hi_lat = grid.domain().lo.lat +
                        (y0 + h - 1 + 0.5 + rng.NextDouble() * 0.5) * cell_h;
  return Rect{{lo_lon, lo_lat}, {hi_lon, hi_lat}};
}

// The core soundness property behind query correctness (a cell missing
// from the covering would silently drop matching documents): every point
// inside the rectangle maps to a covered cell. Exactness: for an
// axis-aligned rect the intersecting cells are exactly the cell bounding
// box, so num_cells is known in closed form.
void CheckCoveringProperties(const Curve2D& curve, Rng& rng) {
  const GridMapping& grid = curve.grid();
  const Rect query = RandomCellRect(rng, grid, 14);
  const Covering covering = CoverRect(curve, query);
  ExpectWellFormedCovering(covering);

  const uint64_t cells_x =
      grid.LonToX(query.hi.lon) - grid.LonToX(query.lo.lon) + 1;
  const uint64_t cells_y =
      grid.LatToY(query.hi.lat) - grid.LatToY(query.lo.lat) + 1;
  EXPECT_EQ(covering.num_cells, cells_x * cells_y)
      << curve.name() << " order " << curve.order();

  auto check_point = [&](double lon, double lat) {
    EXPECT_TRUE(CoveringContains(covering, curve.PointToD(lon, lat)))
        << curve.name() << " order " << curve.order() << " point (" << lon
        << ", " << lat << ") rect [" << query.lo.lon << "," << query.lo.lat
        << "]..[" << query.hi.lon << "," << query.hi.lat << "]";
  };
  check_point(query.lo.lon, query.lo.lat);
  check_point(query.hi.lon, query.hi.lat);
  check_point(query.lo.lon, query.hi.lat);
  check_point(query.hi.lon, query.lo.lat);
  for (int i = 0; i < 24; ++i) {
    check_point(rng.NextDouble(query.lo.lon, query.hi.lon),
                rng.NextDouble(query.lo.lat, query.hi.lat));
  }

  // A max_ranges budget may coarsen the covering but must stay sound and
  // can only grow the cell count (frontier blocks are emitted whole).
  for (const size_t budget : {size_t{1}, size_t{4}, size_t{16}}) {
    CoveringOptions opts;
    opts.max_ranges = budget;
    const Covering coarse = CoverRect(curve, query, opts);
    ExpectWellFormedCovering(coarse);
    EXPECT_LE(coarse.ranges.size(), budget)
        << curve.name() << " order " << curve.order();
    EXPECT_GE(coarse.num_cells, covering.num_cells);
    for (int i = 0; i < 8; ++i) {
      const double lon = rng.NextDouble(query.lo.lon, query.hi.lon);
      const double lat = rng.NextDouble(query.lo.lat, query.hi.lat);
      EXPECT_TRUE(CoveringContains(coarse, curve.PointToD(lon, lat)))
          << curve.name() << " order " << curve.order() << " budget "
          << budget;
    }
  }
}

TEST(CoveringPropertyTest, HilbertAllOrdersGlobeDomain) {
  Rng rng(9001);
  for (int order = 1; order <= 16; ++order) {
    const HilbertCurve curve(order, GlobeRect());
    for (int trial = 0; trial < 3; ++trial) CheckCoveringProperties(curve, rng);
  }
}

TEST(CoveringPropertyTest, ZOrderAllOrdersGlobeDomain) {
  Rng rng(9002);
  for (int order = 1; order <= 16; ++order) {
    const ZOrderCurve curve(order, GlobeRect());
    for (int trial = 0; trial < 3; ++trial) CheckCoveringProperties(curve, rng);
  }
}

// ---------- domain-edge property tests (antimeridian, poles, beyond-MBR) ----------

// Soundness at the edges of the curve domain: every point inside the query
// rectangle — including points the grid clamps in from outside the domain —
// must map (via the same clamped PointToD that keys documents) to a covered
// cell. A miss here is the silent-drop bug class: the document is keyed
// into a cell the covering does not reach.
void CheckEdgeRect(const Curve2D& curve, const Rect& query, Rng& rng) {
  const Covering covering = CoverRect(curve, query);
  ExpectWellFormedCovering(covering);
  ASSERT_FALSE(covering.ranges.empty())
      << curve.name() << " order " << curve.order();
  auto check_point = [&](double lon, double lat) {
    EXPECT_TRUE(CoveringContains(covering, curve.PointToD(lon, lat)))
        << curve.name() << " order " << curve.order() << " point (" << lon
        << ", " << lat << ") rect [" << query.lo.lon << "," << query.lo.lat
        << "]..[" << query.hi.lon << "," << query.hi.lat << "]";
  };
  check_point(query.lo.lon, query.lo.lat);
  check_point(query.hi.lon, query.hi.lat);
  check_point(query.lo.lon, query.hi.lat);
  check_point(query.hi.lon, query.lo.lat);
  for (int i = 0; i < 32; ++i) {
    check_point(rng.NextDouble(query.lo.lon, query.hi.lon),
                rng.NextDouble(query.lo.lat, query.hi.lat));
  }
}

TEST(CoveringEdgeTest, AntimeridianAndPoleRects) {
  Rng rng(9100);
  const Rect edge_rects[] = {
      Rect{{179.0, 10.0}, {180.0, 20.0}},      // eastern antimeridian edge
      Rect{{-180.0, -20.0}, {-179.0, -10.0}},  // western antimeridian edge
      Rect{{170.0, 80.0}, {180.0, 90.0}},      // north-pole corner
      Rect{{-180.0, -90.0}, {-170.0, -80.0}},  // south-pole corner
      Rect{{-180.0, 89.9}, {180.0, 90.0}},     // polar cap strip
      Rect{{180.0, 90.0}, {180.0, 90.0}},      // degenerate corner point
      Rect{{-180.0, -90.0}, {180.0, 90.0}},    // whole globe
  };
  for (const int order : {1, 4, 9, 13, 16}) {
    const HilbertCurve hilbert(order, GlobeRect());
    const ZOrderCurve zorder(order, GlobeRect());
    for (const Rect& q : edge_rects) {
      CheckEdgeRect(hilbert, q, rng);
      CheckEdgeRect(zorder, q, rng);
    }
  }
  // GeoHash keys documents through Encode (the curve's clamped PointToD);
  // coverings of the same curve must reach every encoded corner cell.
  const GeoHash geohash(26);
  for (const Rect& q : edge_rects) {
    const Covering c = CoverRect(geohash.curve(), q);
    EXPECT_TRUE(CoveringContains(c, geohash.Encode(q.lo.lon, q.lo.lat)));
    EXPECT_TRUE(CoveringContains(c, geohash.Encode(q.hi.lon, q.hi.lat)));
    EXPECT_TRUE(CoveringContains(c, geohash.Encode(q.lo.lon, q.hi.lat)));
    EXPECT_TRUE(CoveringContains(c, geohash.Encode(q.hi.lon, q.lo.lat)));
  }
}

TEST(CoveringEdgeTest, QueriesBeyondDatasetMbrReachClampedPoints) {
  // The hil* case: the curve domain is the dataset MBR, but documents (and
  // queries) may sit outside it — both clamp to the boundary cells, and a
  // query overlapping a document's true position must cover the cell the
  // document was keyed into.
  const Rect mbr{{23.0, 37.0}, {25.0, 39.0}};
  Rng rng(9101);
  for (const int order : {2, 6, 11}) {
    const HilbertCurve hilbert(order, mbr);
    const ZOrderCurve zorder(order, mbr);
    for (const Curve2D* curve :
         {static_cast<const Curve2D*>(&hilbert),
          static_cast<const Curve2D*>(&zorder)}) {
      // Overlaps the MBR's east edge and extends far beyond it.
      CheckEdgeRect(*curve, Rect{{24.5, 38.0}, {30.0, 38.5}}, rng);
      // Sits entirely outside, north-east of the MBR.
      CheckEdgeRect(*curve, Rect{{40.0, 40.0}, {50.0, 50.0}}, rng);
      // Straddles the whole MBR and more.
      CheckEdgeRect(*curve, Rect{{-10.0, 0.0}, {60.0, 60.0}}, rng);
    }
  }
}

TEST(CoveringEdgeTest, UlpBoundaryPointsAlwaysCovered) {
  // Degenerate query rectangles sitting exactly on interior cell
  // boundaries, and one ulp to either side. Under the old floating-point
  // block-extent descent the covering and the key mapping could round a
  // boundary into different cells; the integer-space descent shares the
  // mapping, so the covered cell is the keyed cell by construction.
  Rng rng(9102);
  for (const int order : {4, 10, 16}) {
    const HilbertCurve curve(order, GlobeRect());
    const GridMapping& grid = curve.grid();
    const uint32_t n = grid.grid_size();
    for (int trial = 0; trial < 40; ++trial) {
      const uint32_t x = static_cast<uint32_t>(rng.NextBounded(n));
      const uint32_t y = static_cast<uint32_t>(rng.NextBounded(n));
      // Boundary coordinates computed by a different floating-point route
      // than the grid's internal cell-width multiples.
      const double lon =
          grid.domain().lo.lon +
          (grid.domain().hi.lon - grid.domain().lo.lon) *
              (static_cast<double>(x) / static_cast<double>(n));
      const double lat =
          grid.domain().lo.lat +
          (grid.domain().hi.lat - grid.domain().lo.lat) *
              (static_cast<double>(y) / static_cast<double>(n));
      for (const double qlon :
           {lon, std::nextafter(lon, -1e18), std::nextafter(lon, 1e18)}) {
        for (const double qlat :
             {lat, std::nextafter(lat, -1e18), std::nextafter(lat, 1e18)}) {
          const Rect q{{qlon, qlat}, {qlon, qlat}};
          const Covering c = CoverRect(curve, q);
          EXPECT_TRUE(CoveringContains(c, curve.PointToD(qlon, qlat)))
              << "order " << order << " point (" << qlon << ", " << qlat
              << ")";
        }
      }
    }
  }
}

TEST(CoveringPropertyTest, DatasetMbrDomains) {
  // hil* shrinks the domain to the dataset MBR; same properties must hold
  // on small, skewed domains for both curves.
  const Rect mbrs[] = {Rect{{23.0, 37.0}, {25.0, 39.0}},
                       Rect{{-74.3, 40.4}, {-73.6, 41.0}}};
  Rng rng(9003);
  for (const Rect& mbr : mbrs) {
    for (int order : {1, 2, 5, 9, 13, 16}) {
      const HilbertCurve hilbert(order, mbr);
      const ZOrderCurve zorder(order, mbr);
      for (int trial = 0; trial < 3; ++trial) {
        CheckCoveringProperties(hilbert, rng);
        CheckCoveringProperties(zorder, rng);
      }
    }
  }
}

// ---------- Onion curve specifics ----------

TEST(OnionTest, Order1MatchesRingLayout) {
  // A single ring walked counter-clockwise from its south-west corner:
  // (0,0) -> (1,0) -> (1,1) -> (0,1).
  const OnionCurve curve(1, Rect{{0, 0}, {2, 2}});
  EXPECT_EQ(curve.XyToD(0, 0), 0u);
  EXPECT_EQ(curve.XyToD(1, 0), 1u);
  EXPECT_EQ(curve.XyToD(1, 1), 2u);
  EXPECT_EQ(curve.XyToD(0, 1), 3u);
}

TEST(OnionTest, ConsecutiveDsAreAdjacentCells) {
  // Onion is a *continuous* curve (the property the boundary-walk covering
  // strategy relies on): successive positions are edge neighbours, including
  // across the seam from one ring to the next.
  const OnionCurve curve(6, GlobeRect());
  uint32_t px, py;
  curve.DToXy(0, &px, &py);
  for (uint64_t d = 1; d < curve.num_cells(); ++d) {
    uint32_t x, y;
    curve.DToXy(d, &x, &y);
    const uint32_t manhattan =
        (x > px ? x - px : px - x) + (y > py ? y - py : py - y);
    ASSERT_EQ(manhattan, 1u) << "jump at d=" << d;
    px = x;
    py = y;
  }
}

TEST(OnionTest, RingsArePeeledOutsideIn) {
  // Every cell of ring r precedes every cell of ring r+1 (d orders cells by
  // ring depth — the layout that clusters the periphery away from the core).
  const int order = 3;
  const OnionCurve curve(order, Rect{{0, 0}, {8, 8}});
  const uint32_t n = 1u << order;
  for (uint32_t x = 0; x < n; ++x) {
    for (uint32_t y = 0; y < n; ++y) {
      const uint32_t ring =
          std::min(std::min(x, y), std::min(n - 1 - x, n - 1 - y));
      const uint32_t m = n - 2 * ring;
      const uint64_t ring_base =
          static_cast<uint64_t>(n) * n - static_cast<uint64_t>(m) * m;
      const uint64_t ring_cells =
          m == 1 ? 1 : 4ull * (m - 1);  // innermost odd core is one cell
      const uint64_t d = curve.XyToD(x, y);
      EXPECT_GE(d, ring_base) << "(" << x << "," << y << ")";
      EXPECT_LT(d, ring_base + ring_cells) << "(" << x << "," << y << ")";
    }
  }
}

TEST(OnionTest, DoesNotClaimQuadtreeBlocks) {
  const OnionCurve curve(4, GlobeRect());
  EXPECT_FALSE(curve.quadtree_blocks());
  EXPECT_STREQ(curve.name(), "onion");
}

// ---------- curve registry ----------

TEST(CurveRegistryTest, NamesRoundTripThroughTheRegistry) {
  const Rect domain = GlobeRect();
  for (const CurveKind kind : AllCurveKinds()) {
    const auto curve = MakeCurve(kind, 4, domain);
    ASSERT_NE(curve, nullptr);
    EXPECT_STREQ(curve->name(), CurveKindName(kind));
    CurveKind parsed;
    ASSERT_TRUE(CurveKindFromName(curve->name(), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  CurveKind parsed;
  EXPECT_FALSE(CurveKindFromName("peano", &parsed));
  EXPECT_FALSE(CurveKindFromName("", &parsed));
}

TEST(CurveRegistryTest, EGeoHashUsesTheFitSample) {
  // The registry threads the fit sample only into EntropyGeoHash; all other
  // curves ignore it and keep uniform boundaries.
  std::vector<Point> sample;
  Rng rng(52);
  for (int i = 0; i < 512; ++i) {
    sample.push_back({rng.NextGaussian() * 2.0, rng.NextGaussian() * 2.0});
  }
  const Rect domain{{-100, -80}, {100, 80}};
  const auto fitted = MakeCurve(CurveKind::kEGeoHash, 5, domain, sample);
  EXPECT_TRUE(fitted->grid().warped());
  for (const CurveKind kind :
       {CurveKind::kHilbert, CurveKind::kZOrder, CurveKind::kOnion}) {
    EXPECT_FALSE(MakeCurve(kind, 5, domain, sample)->grid().warped())
        << CurveKindName(kind);
  }
  EXPECT_FALSE(MakeCurve(CurveKind::kEGeoHash, 5, domain)->grid().warped())
      << "no sample -> uniform boundaries (plain GeoHash cells)";
}

// ---------- max-edge clamp agreement (the GridMapping bugfix) ----------

TEST(GridMappingTest, MaxEdgeClampAgreesWithBlockExtents) {
  // The bug class this pins down: LonToX(domain.hi.lon) must land in the
  // last cell (not one past it, and not UB for huge inputs), and the last
  // cell's BlockRect must extend exactly to domain.hi so covering membership
  // and key generation agree at the far edge. Orders 1..16, globe and
  // dataset-MBR domains, every registered curve.
  const Rect domains[] = {GlobeRect(), Rect{{23.0, 37.0}, {25.0, 39.0}},
                          Rect{{-74.3, 40.4}, {-73.6, 41.0}}};
  for (const Rect& domain : domains) {
    for (int order = 1; order <= 16; ++order) {
      for (const CurveKind kind : AllCurveKinds()) {
        const auto curve = MakeCurve(kind, order, domain);
        const GridMapping& grid = curve->grid();
        const uint32_t n = grid.grid_size();
        ASSERT_EQ(grid.LonToX(domain.hi.lon), n - 1)
            << curve->name() << " order " << order;
        ASSERT_EQ(grid.LatToY(domain.hi.lat), n - 1)
            << curve->name() << " order " << order;
        // Far beyond the domain clamps to the same boundary cell (and huge
        // magnitudes stay defined, not cast-UB).
        ASSERT_EQ(grid.LonToX(1e18), n - 1);
        ASSERT_EQ(grid.LatToY(1e18), n - 1);
        const Rect last = grid.BlockRect(n - 1, n - 1, 1);
        EXPECT_TRUE(last.Contains(domain.hi))
            << curve->name() << " order " << order << " block hi ("
            << last.hi.lon << "," << last.hi.lat << ") domain hi ("
            << domain.hi.lon << "," << domain.hi.lat << ")";
        EXPECT_DOUBLE_EQ(last.hi.lon, domain.hi.lon);
        EXPECT_DOUBLE_EQ(last.hi.lat, domain.hi.lat);
        // And the covering of a rect touching the max corner reaches the
        // cell the max-corner point is keyed into.
        const Rect corner{{domain.lo.lon + domain.width() * 0.9,
                           domain.lo.lat + domain.height() * 0.9},
                          domain.hi};
        const Covering covering = CoverRect(*curve, corner);
        EXPECT_TRUE(CoveringContains(
            covering, curve->PointToD(domain.hi.lon, domain.hi.lat)))
            << curve->name() << " order " << order;
      }
    }
  }
}

// ---------- warped (entropy-maximizing) mapping ----------

TEST(EGeoHashTest, FitMappingBalancesPointsPerCell) {
  // Equi-depth boundaries: on a heavily skewed sample, each column/row of
  // the fitted grid holds roughly the same number of sample points — the
  // entropy-maximizing property (uniform cell occupancy).
  Rng rng(61);
  std::vector<Point> sample;
  for (int i = 0; i < 8000; ++i) {
    // 80% in a tight hotspot, 20% uniform background.
    if (rng.NextBool(0.8)) {
      sample.push_back({23.7 + rng.NextGaussian() * 0.05,
                        37.9 + rng.NextGaussian() * 0.05});
    } else {
      sample.push_back({rng.NextDouble(-180, 180), rng.NextDouble(-90, 90)});
    }
  }
  const int order = 3;  // 8x8 cells
  const GridMapping grid =
      EntropyGeoHashCurve::FitMapping(order, GlobeRect(), sample);
  ASSERT_TRUE(grid.warped());
  const uint32_t n = grid.grid_size();
  std::vector<int> per_x(n, 0), per_y(n, 0);
  for (const Point& p : sample) {
    ++per_x[grid.LonToX(p.lon)];
    ++per_y[grid.LatToY(p.lat)];
  }
  const int mean = static_cast<int>(sample.size() / n);
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_GT(per_x[i], mean / 4) << "x cell " << i;
    EXPECT_LT(per_x[i], mean * 4) << "x cell " << i;
    EXPECT_GT(per_y[i], mean / 4) << "y cell " << i;
    EXPECT_LT(per_y[i], mean * 4) << "y cell " << i;
  }
  // A uniform grid at the same order would dump ~80% of the sample into the
  // hotspot's single column; the fitted one never concentrates like that.
  const GridMapping uniform(order, GlobeRect());
  std::vector<int> uniform_x(n, 0);
  for (const Point& p : sample) ++uniform_x[uniform.LonToX(p.lon)];
  EXPECT_GT(*std::max_element(uniform_x.begin(), uniform_x.end()),
            *std::max_element(per_x.begin(), per_x.end()));
}

TEST(EGeoHashTest, WarpedCellMembershipAgreesWithBlockRects) {
  // The same clamp-agreement contract as the uniform mapping, under warped
  // boundaries: a point's cell (via LonToX/LatToY) and that cell's
  // BlockRect must agree, for interior points and for the domain corners.
  Rng rng(62);
  std::vector<Point> sample;
  for (int i = 0; i < 2000; ++i) {
    sample.push_back({23.7 + rng.NextGaussian() * 0.2,
                      37.9 + rng.NextGaussian() * 0.2});
  }
  const Rect domain{{20.0, 35.0}, {28.0, 41.0}};
  const EntropyGeoHashCurve curve(8, domain, sample);
  const GridMapping& grid = curve.grid();
  ASSERT_TRUE(grid.warped());
  for (int i = 0; i < 2000; ++i) {
    const double lon = rng.NextDouble(domain.lo.lon, domain.hi.lon);
    const double lat = rng.NextDouble(domain.lo.lat, domain.hi.lat);
    const uint32_t x = grid.LonToX(lon);
    const uint32_t y = grid.LatToY(lat);
    const Rect cell = grid.BlockRect(x, y, 1);
    EXPECT_TRUE(cell.Contains({lon, lat}))
        << "(" << lon << "," << lat << ") cell (" << x << "," << y << ")";
    // And round-trip through the curve lands in the same cell.
    uint32_t rx, ry;
    curve.DToXy(curve.PointToD(lon, lat), &rx, &ry);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
  }
  // Domain corners behave exactly like the uniform mapping's.
  EXPECT_EQ(grid.LonToX(domain.lo.lon), 0u);
  EXPECT_EQ(grid.LatToY(domain.lo.lat), 0u);
  EXPECT_EQ(grid.LonToX(domain.hi.lon), grid.grid_size() - 1);
  EXPECT_EQ(grid.LatToY(domain.hi.lat), grid.grid_size() - 1);
}

// ---------- covering properties for the new curves ----------

TEST(CoveringPropertyTest, OnionAllOrdersGlobeDomain) {
  // Onion coverings come from the boundary-walk strategy, not the quadtree
  // descent — same soundness/exactness/budget contract.
  Rng rng(9004);
  for (int order = 1; order <= 16; ++order) {
    const OnionCurve curve(order, GlobeRect());
    for (int trial = 0; trial < 3; ++trial) CheckCoveringProperties(curve, rng);
  }
}

TEST(CoveringPropertyTest, EGeoHashFittedAllOrdersGlobeDomain) {
  Rng rng(9005);
  std::vector<Point> sample;
  for (int i = 0; i < 4096; ++i) {
    sample.push_back({23.7 + rng.NextGaussian() * 3.0,
                      37.9 + rng.NextGaussian() * 3.0});
  }
  for (int order = 1; order <= 16; ++order) {
    const EntropyGeoHashCurve curve(order, GlobeRect(), sample);
    for (int trial = 0; trial < 3; ++trial) CheckCoveringProperties(curve, rng);
  }
}

TEST(CoveringPropertyTest, NewCurvesOnDatasetMbrDomains) {
  const Rect mbrs[] = {Rect{{23.0, 37.0}, {25.0, 39.0}},
                       Rect{{-74.3, 40.4}, {-73.6, 41.0}}};
  Rng rng(9006);
  for (const Rect& mbr : mbrs) {
    std::vector<Point> sample;
    for (int i = 0; i < 1024; ++i) {
      sample.push_back({rng.NextDouble(mbr.lo.lon, mbr.hi.lon),
                        rng.NextDouble(mbr.lo.lat, mbr.hi.lat)});
    }
    for (int order : {1, 2, 5, 9, 13, 16}) {
      for (const CurveKind kind : {CurveKind::kOnion, CurveKind::kEGeoHash}) {
        const auto curve = MakeCurve(kind, order, mbr, sample);
        for (int trial = 0; trial < 3; ++trial) {
          CheckCoveringProperties(*curve, rng);
        }
      }
    }
  }
}

TEST(CoveringEdgeTest, NewCurvesAntimeridianAndPoleRects) {
  // The same domain-edge soundness sweep the quadtree curves get, against
  // the boundary-walk (onion) and warped (egeohash) coverings.
  Rng rng(9103);
  const Rect edge_rects[] = {
      Rect{{179.0, 10.0}, {180.0, 20.0}},
      Rect{{-180.0, -20.0}, {-179.0, -10.0}},
      Rect{{170.0, 80.0}, {180.0, 90.0}},
      Rect{{-180.0, -90.0}, {-170.0, -80.0}},
      Rect{{-180.0, 89.9}, {180.0, 90.0}},
      Rect{{180.0, 90.0}, {180.0, 90.0}},
      Rect{{-180.0, -90.0}, {180.0, 90.0}},
  };
  std::vector<Point> sample;
  for (int i = 0; i < 1024; ++i) {
    sample.push_back({rng.NextGaussian() * 40.0, rng.NextGaussian() * 20.0});
  }
  for (const int order : {1, 4, 9, 13}) {
    for (const CurveKind kind : {CurveKind::kOnion, CurveKind::kEGeoHash}) {
      const auto curve = MakeCurve(kind, order, GlobeRect(), sample);
      for (const Rect& q : edge_rects) CheckEdgeRect(*curve, q, rng);
    }
  }
}

TEST(CoveringTest, BoundaryWalkRespectsMaxRangesBudget) {
  // The onion covering of a mid-grid rect fragments into many ranges; every
  // budget must be respected exactly and the coarse covering must stay a
  // superset of the exact one.
  const OnionCurve curve(10, GlobeRect());
  const Rect query{{23.606039, 38.023982}, {60.0, 70.0}};
  const Covering exact = CoverRect(curve, query);
  ASSERT_GT(exact.ranges.size(), 16u) << "query too easy to exercise budgets";
  for (const size_t budget : {size_t{1}, size_t{2}, size_t{8}, size_t{16}}) {
    CoveringOptions opts;
    opts.max_ranges = budget;
    const Covering coarse = CoverRect(curve, query, opts);
    EXPECT_LE(coarse.ranges.size(), budget);
    EXPECT_GE(coarse.num_cells, exact.num_cells);
    for (const DRange& r : exact.ranges) {
      EXPECT_TRUE(CoveringContains(coarse, r.lo));
      EXPECT_TRUE(CoveringContains(coarse, r.hi));
    }
  }
}

}  // namespace
}  // namespace stix::geo
