#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "query/aggregate.h"

namespace stix::query {
namespace {

using bson::Value;

std::vector<bson::Document> SampleDocs() {
  std::vector<bson::Document> docs;
  const struct {
    const char* city;
    int32_t speed;
    double fuel;
  } rows[] = {
      {"athens", 40, 70.0}, {"athens", 60, 55.0},   {"athens", 20, 90.0},
      {"patras", 80, 30.0}, {"patras", 100, 20.0},  {"volos", 50, 60.0},
  };
  for (const auto& row : rows) {
    docs.push_back(bson::DocBuilder()
                       .Field("city", row.city)
                       .Field("speed", row.speed)
                       .Field("fuel", row.fuel)
                       .Build());
  }
  return docs;
}

TEST(PipelineTest, EmptyPipelinePassesThrough) {
  const Result<std::vector<bson::Document>> out =
      RunPipeline(SampleDocs(), Pipeline());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 6u);
}

TEST(PipelineTest, MatchFilters) {
  const Result<std::vector<bson::Document>> out = RunPipeline(
      SampleDocs(),
      Pipeline().Match(MakeCmp("city", CmpOp::kEq, Value::String("athens"))));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

TEST(PipelineTest, ProjectKeepsOnlyListedFields) {
  const Result<std::vector<bson::Document>> out =
      RunPipeline(SampleDocs(), Pipeline().Project({"city", "speed"}));
  ASSERT_TRUE(out.ok());
  for (const bson::Document& doc : *out) {
    EXPECT_TRUE(doc.Has("city"));
    EXPECT_TRUE(doc.Has("speed"));
    EXPECT_FALSE(doc.Has("fuel"));
  }
}

TEST(PipelineTest, SortAscendingAndDescending) {
  const Result<std::vector<bson::Document>> asc =
      RunPipeline(SampleDocs(), Pipeline().Sort("speed"));
  ASSERT_TRUE(asc.ok());
  for (size_t i = 1; i < asc->size(); ++i) {
    EXPECT_LE((*asc)[i - 1].Get("speed")->AsInt32(),
              (*asc)[i].Get("speed")->AsInt32());
  }
  const Result<std::vector<bson::Document>> desc =
      RunPipeline(SampleDocs(), Pipeline().Sort("speed", false));
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->front().Get("speed")->AsInt32(), 100);
}

TEST(PipelineTest, LimitTruncates) {
  const Result<std::vector<bson::Document>> out =
      RunPipeline(SampleDocs(), Pipeline().Sort("speed").Limit(2));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST(PipelineTest, GroupWithAllAccumulators) {
  GroupStage group;
  group.key_path = "city";
  group.accumulators = {
      {"n", AccumulatorOp::kCount, ""},
      {"total_speed", AccumulatorOp::kSum, "speed"},
      {"avg_speed", AccumulatorOp::kAvg, "speed"},
      {"min_fuel", AccumulatorOp::kMin, "fuel"},
      {"max_fuel", AccumulatorOp::kMax, "fuel"},
  };
  const Result<std::vector<bson::Document>> out =
      RunPipeline(SampleDocs(), Pipeline().Group(std::move(group)));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);  // athens, patras, volos (sorted by key)
  const bson::Document& athens = (*out)[0];
  EXPECT_EQ(athens.Get("_id")->AsString(), "athens");
  EXPECT_EQ(athens.Get("n")->AsInt64(), 3);
  EXPECT_DOUBLE_EQ(athens.Get("total_speed")->AsDouble(), 120.0);
  EXPECT_DOUBLE_EQ(athens.Get("avg_speed")->AsDouble(), 40.0);
  EXPECT_DOUBLE_EQ(athens.Get("min_fuel")->AsDouble(), 55.0);
  EXPECT_DOUBLE_EQ(athens.Get("max_fuel")->AsDouble(), 90.0);
}

TEST(PipelineTest, GroupWithoutKeyMakesOneGroup) {
  GroupStage group;
  group.accumulators = {{"n", AccumulatorOp::kCount, ""}};
  const Result<std::vector<bson::Document>> out =
      RunPipeline(SampleDocs(), Pipeline().Group(std::move(group)));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front().Get("n")->AsInt64(), 6);
  EXPECT_TRUE(out->front().Get("_id")->is_null());
}

TEST(PipelineTest, AvgOfMissingFieldIsNull) {
  GroupStage group;
  group.accumulators = {{"a", AccumulatorOp::kAvg, "nonexistent"}};
  const Result<std::vector<bson::Document>> out =
      RunPipeline(SampleDocs(), Pipeline().Group(std::move(group)));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->front().Get("a")->is_null());
}

TEST(BucketAutoTest, EquiCountBuckets) {
  std::vector<bson::Document> docs;
  for (int i = 0; i < 100; ++i) {
    docs.push_back(bson::DocBuilder().Field("x", i).Build());
  }
  const Result<std::vector<bson::Document>> out =
      RunPipeline(std::move(docs), Pipeline().BucketAuto("x", 4));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 4u);
  for (const bson::Document& bucket : *out) {
    EXPECT_EQ(bucket.Get("count")->AsInt64(), 25);
  }
  EXPECT_EQ((*out)[0].GetPath("_id.min")->AsInt32(), 0);
  EXPECT_EQ((*out)[1].GetPath("_id.min")->AsInt32(), 25);
  // Last bucket's max is the overall maximum.
  EXPECT_EQ((*out)[3].GetPath("_id.max")->AsInt32(), 99);
}

TEST(BucketAutoTest, DuplicatesStayInOneBucket) {
  std::vector<bson::Document> docs;
  for (int i = 0; i < 90; ++i) {
    docs.push_back(bson::DocBuilder().Field("x", 7).Build());
  }
  for (int i = 0; i < 10; ++i) {
    docs.push_back(bson::DocBuilder().Field("x", 100 + i).Build());
  }
  const Result<std::vector<bson::Document>> out =
      RunPipeline(std::move(docs), Pipeline().BucketAuto("x", 4));
  ASSERT_TRUE(out.ok());
  // The run of 90 equal values cannot be split.
  EXPECT_GE(out->front().Get("count")->AsInt64(), 90);
  EXPECT_LE(out->size(), 4u);
}

TEST(BucketAutoTest, FailsWithoutValues) {
  std::vector<bson::Document> docs;
  docs.push_back(bson::DocBuilder().Field("y", 1).Build());
  EXPECT_FALSE(
      RunPipeline(std::move(docs), Pipeline().BucketAuto("x", 2)).ok());
}

TEST(BucketAutoTest, RejectsZeroBuckets) {
  std::vector<bson::Document> docs;
  docs.push_back(bson::DocBuilder().Field("x", 1).Build());
  EXPECT_FALSE(
      RunPipeline(std::move(docs), Pipeline().BucketAuto("x", 0)).ok());
}

// ---------- cluster-level aggregation ----------

class ClusterAggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster::ClusterOptions options;
    options.num_shards = 3;
    options.chunk_max_bytes = 8 * 1024;
    cluster_ = std::make_unique<cluster::Cluster>(options);
    ASSERT_TRUE(cluster_
                    ->ShardCollection(cluster::ShardKeyPattern(
                        {"date"}, cluster::ShardingStrategy::kRange))
                    .ok());
    Rng rng(3);
    for (int i = 0; i < 900; ++i) {
      bson::Document doc;
      doc.Append("_id", Value::Int64(i));
      doc.Append("vehicle", Value::Int32(i % 9));
      doc.Append("date", Value::DateTime(60000LL * i));
      doc.Append("speed", Value::Double(rng.NextDouble(0, 120)));
      ASSERT_TRUE(cluster_->Insert(std::move(doc)).ok());
    }
    cluster_->Balance();
  }

  std::unique_ptr<cluster::Cluster> cluster_;
};

TEST_F(ClusterAggregateTest, MatchGroupAcrossShards) {
  GroupStage group;
  group.key_path = "vehicle";
  group.accumulators = {{"n", AccumulatorOp::kCount, ""},
                        {"avg_speed", AccumulatorOp::kAvg, "speed"}};
  const auto result = cluster_->Aggregate(
      Pipeline()
          .Match(MakeRange("date", Value::DateTime(0),
                           Value::DateTime(60000LL * 449)))
          .Group(std::move(group))
          .Sort("_id"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 9u);
  int64_t total = 0;
  for (const bson::Document& g : *result) {
    total += g.Get("n")->AsInt64();
    const double avg = g.Get("avg_speed")->AsDouble();
    EXPECT_GE(avg, 0.0);
    EXPECT_LE(avg, 120.0);
  }
  EXPECT_EQ(total, 450);
}

TEST_F(ClusterAggregateTest, NoMatchScansEverything) {
  GroupStage group;
  group.accumulators = {{"n", AccumulatorOp::kCount, ""}};
  const auto result =
      cluster_->Aggregate(Pipeline().Group(std::move(group)));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->front().Get("n")->AsInt64(), 900);
}

TEST_F(ClusterAggregateTest, BucketAutoOverCluster) {
  const auto result =
      cluster_->Aggregate(Pipeline().BucketAuto("date", 3));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  for (const bson::Document& bucket : *result) {
    EXPECT_EQ(bucket.Get("count")->AsInt64(), 300);
  }
}

// ---------- deletes ----------

TEST_F(ClusterAggregateTest, DeleteRemovesMatchingAndUpdatesAccounting) {
  const ExprPtr expr = MakeRange("date", Value::DateTime(60000LL * 100),
                                 Value::DateTime(60000LL * 199));
  const Result<uint64_t> deleted = cluster_->Delete(expr);
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_EQ(*deleted, 100u);
  EXPECT_EQ(cluster_->total_documents(), 800u);

  // The window is empty now; deleting again removes nothing.
  const Result<uint64_t> again = cluster_->Delete(expr);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);

  // Queries no longer see the deleted window.
  EXPECT_EQ(cluster_->Query(expr).docs.size(), 0u);
  // Neighbouring data is intact.
  const ExprPtr before = MakeRange("date", Value::DateTime(0),
                                   Value::DateTime(60000LL * 99));
  EXPECT_EQ(cluster_->Query(before).docs.size(), 100u);

  // Chunk accounting never goes negative and stays consistent.
  uint64_t chunk_docs = 0;
  for (const cluster::Chunk& c : cluster_->chunks().chunks()) {
    chunk_docs += c.docs;
  }
  EXPECT_EQ(chunk_docs, 800u);
}

// ---------- explain ----------

TEST_F(ClusterAggregateTest, ExplainReportsTargetingAndCandidates) {
  const ExprPtr targeted = MakeRange("date", Value::DateTime(0),
                                     Value::DateTime(60000LL * 50));
  const std::string plan = cluster_->Explain(targeted);
  EXPECT_NE(plan.find("shard key: {date: 1}"), std::string::npos);
  EXPECT_NE(plan.find("IXSCAN"), std::string::npos);
  EXPECT_EQ(plan.find("broadcast"), std::string::npos);

  const ExprPtr off_key = MakeCmp("vehicle", CmpOp::kEq, Value::Int32(1));
  const std::string broadcast_plan = cluster_->Explain(off_key);
  EXPECT_NE(broadcast_plan.find("broadcast"), std::string::npos);
  EXPECT_NE(broadcast_plan.find("COLLSCAN"), std::string::npos);
}

}  // namespace
}  // namespace stix::query
