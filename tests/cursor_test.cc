// Tests for the streaming execution path: the pull-based PlanExecutor, the
// shard getMore protocol, the batched scatter-gather merge, limit pushdown,
// and the borrow guards that police zero-copy document lifetimes. The
// anchor invariant throughout: an unlimited cursor drain reproduces the
// classic run-to-completion Query() results and metrics exactly, at every
// batch size.

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "index/index_catalog.h"
#include "query/executor.h"
#include "query/expression.h"
#include "query/plan_cache.h"
#include "st/knn.h"
#include "st/st_store.h"
#include "storage/record_store.h"

// ---------- PlanExecutor: pull-based shard-local execution ----------

namespace stix::query {
namespace {

using bson::Value;

bson::Document PointDoc(int id, double lon, double lat, int64_t date_ms,
                        int64_t hilbert) {
  bson::Document doc;
  doc.Append("id", Value::Int32(id));
  doc.Append("location",
             Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
  doc.Append("date", Value::DateTime(date_ms));
  doc.Append("hilbertIndex", Value::Int64(hilbert));
  return doc;
}

// Same data and index layout as QueryExecTest: three candidate indexes so
// every execution exercises the multi-plan race / plan cache machinery.
class PlanExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
      const double lon = rng.NextDouble(0, 10);
      const double lat = rng.NextDouble(0, 10);
      const int64_t date = 60000LL * i;
      const int64_t h = static_cast<int64_t>(lon);
      records_.Insert(PointDoc(i, lon, lat, date, h));
    }
    ASSERT_TRUE(catalog_
                    .CreateIndex(index::IndexDescriptor(
                        "date_1",
                        {{"date", index::IndexFieldKind::kAscending}}))
                    .ok());
    ASSERT_TRUE(
        catalog_
            .CreateIndex(index::IndexDescriptor(
                "h_1_date_1",
                {{"hilbertIndex", index::IndexFieldKind::kAscending},
                 {"date", index::IndexFieldKind::kAscending}}))
            .ok());
    ASSERT_TRUE(
        catalog_
            .CreateIndex(index::IndexDescriptor(
                "loc_2dsphere_date_1",
                {{"location", index::IndexFieldKind::k2dsphere},
                 {"date", index::IndexFieldKind::kAscending}}))
            .ok());
    records_.ForEach([&](storage::RecordId rid, const bson::Document& doc) {
      ASSERT_TRUE(catalog_.OnInsert(doc, rid).ok());
    });
  }

  ExprPtr SpatioTemporalQuery() const {
    return MakeAnd(
        {MakeGeoWithinBox("location", {{2, 2}, {4, 6}}),
         MakeRange("date", Value::DateTime(0),
                   Value::DateTime(60000LL * 1500))});
  }

  std::set<int> NaiveIds(const ExprPtr& expr) const {
    std::set<int> ids;
    records_.ForEach([&](storage::RecordId, const bson::Document& doc) {
      if (expr->Matches(doc)) ids.insert(doc.Get("id")->AsInt32());
    });
    return ids;
  }

  // Ids in production order (order parity matters for the cursor path).
  static std::vector<int> OrderedIds(
      const std::vector<const bson::Document*>& docs) {
    std::vector<int> ids;
    ids.reserve(docs.size());
    for (const bson::Document* d : docs) ids.push_back(d->Get("id")->AsInt32());
    return ids;
  }

  // Drains a PlanExecutor pull by pull, collecting ids in stream order.
  static std::vector<int> DrainIds(PlanExecutor* exec) {
    std::vector<int> ids;
    storage::RecordId rid;
    const bson::Document* doc = nullptr;
    while (exec->Next(&rid, &doc)) ids.push_back(doc->Get("id")->AsInt32());
    return ids;
  }

  storage::RecordStore records_;
  index::IndexCatalog catalog_;
};

TEST_F(PlanExecutorTest, StreamMatchesBatchExecution) {
  const ExprPtr q = SpatioTemporalQuery();
  const ExecutionResult batch = ExecuteQuery(records_, catalog_, q);

  PlanExecutor exec(records_, catalog_, q);
  const std::vector<int> streamed = DrainIds(&exec);

  EXPECT_TRUE(exec.exhausted());
  EXPECT_EQ(streamed, OrderedIds(batch.docs));
  EXPECT_EQ(exec.winning_index(), batch.winning_index);
  EXPECT_EQ(exec.num_candidates(), batch.num_candidates);

  const ExecStats s = exec.CurrentStats();
  EXPECT_EQ(s.keys_examined, batch.stats.keys_examined);
  EXPECT_EQ(s.docs_examined, batch.stats.docs_examined);
  EXPECT_EQ(s.works, batch.stats.works);
  EXPECT_EQ(s.n_returned, batch.stats.n_returned);
  EXPECT_EQ(s.plan_summary, batch.stats.plan_summary);
  EXPECT_EQ(exec.n_returned(), batch.docs.size());
}

TEST_F(PlanExecutorTest, LimitStopsStreamAndExaminesStrictlyLess) {
  const ExprPtr q = SpatioTemporalQuery();
  const ExecutionResult full = ExecuteQuery(records_, catalog_, q);
  ASSERT_GT(full.docs.size(), 5u);

  PlanExecutor limited(records_, catalog_, q, {}, nullptr, /*limit=*/5);
  const std::vector<int> ids = DrainIds(&limited);

  EXPECT_EQ(ids.size(), 5u);
  EXPECT_TRUE(limited.exhausted());
  // The first five of the full stream, in order.
  const std::vector<int> full_ids = OrderedIds(full.docs);
  EXPECT_TRUE(std::equal(ids.begin(), ids.end(), full_ids.begin()));
  // Early termination is real: strictly less examined and worked.
  const ExecStats s = limited.CurrentStats();
  EXPECT_LT(s.docs_examined, full.stats.docs_examined);
  EXPECT_LT(s.works, full.stats.works);
}

TEST_F(PlanExecutorTest, CachedPlanStreamsWithoutRerace) {
  const ExprPtr q = SpatioTemporalQuery();
  PlanCache cache;
  const ExecutionResult first = ExecuteQuery(records_, catalog_, q, {}, &cache);
  ASSERT_EQ(cache.size(), 1u);

  PlanExecutor exec(records_, catalog_, q, {}, &cache);
  const std::vector<int> streamed = DrainIds(&exec);
  EXPECT_TRUE(exec.from_plan_cache());
  EXPECT_FALSE(exec.replanned());
  EXPECT_EQ(streamed, OrderedIds(first.docs));
  EXPECT_EQ(exec.winning_index(), first.winning_index);
  // The cached stream does not pay the losing plans' trial work.
  EXPECT_LE(exec.CurrentStats().works, first.stats.works);
}

TEST_F(PlanExecutorTest, LimitAbandonedStreamDoesNotPoisonCache) {
  // A limit-k stream ends before the winner reaches EOF, so its partial
  // works figure must not be stored — it would shrink the replan budget for
  // every later execution of the shape.
  const ExprPtr q = SpatioTemporalQuery();
  PlanCache cache;
  PlanExecutor limited(records_, catalog_, q, {}, &cache, /*limit=*/3);
  EXPECT_EQ(DrainIds(&limited).size(), 3u);
  EXPECT_EQ(cache.size(), 0u);

  // A full drain afterwards races and stores as if the limit run never
  // happened.
  const ExecutionResult full = ExecuteQuery(records_, catalog_, q, {}, &cache);
  EXPECT_FALSE(full.from_plan_cache);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(PlanExecutorTest, MidStreamReplanRecoversFromPoisonedCache) {
  // Poison the cache with the date index and a works figure of 1: the first
  // pulls drain the cached plan, blow the tiny budget, and the executor
  // must re-race mid-stream without disturbing the already-streamed state.
  const ExprPtr q = SpatioTemporalQuery();
  PlanCache cache;
  cache.Store(QueryShape(*q), "date_1", /*works=*/1);

  ExecutorOptions options;
  options.replan_min_works = 1;  // budget = max(1, 10 * 1) = 10 works
  PlanExecutor exec(records_, catalog_, q, options, &cache);
  std::vector<int> streamed = DrainIds(&exec);

  EXPECT_TRUE(exec.replanned());
  EXPECT_FALSE(exec.from_plan_cache());
  EXPECT_EQ(exec.winning_index(), "loc_2dsphere_date_1");
  EXPECT_EQ(std::set<int>(streamed.begin(), streamed.end()), NaiveIds(q));

  // The re-race refreshed the cache entry.
  const ExecutionResult again = ExecuteQuery(records_, catalog_, q, {}, &cache);
  EXPECT_TRUE(again.from_plan_cache);
  EXPECT_FALSE(again.replanned);
}

TEST_F(PlanExecutorTest, GenerationCounterTracksMutations) {
  storage::RecordStore store;
  const uint64_t g0 = store.generation();
  const storage::RecordId rid = store.Insert(PointDoc(1, 0, 0, 0, 0));
  EXPECT_EQ(store.generation(), g0 + 1);
  store.Insert(PointDoc(2, 0, 0, 0, 0));
  EXPECT_EQ(store.generation(), g0 + 2);
  ASSERT_TRUE(store.Remove(rid));
  EXPECT_EQ(store.generation(), g0 + 3);
}

TEST_F(PlanExecutorTest, BorrowGuardFlipsWhenStoreMutates) {
  const ExprPtr q =
      MakeRange("date", Value::DateTime(60000LL * 10),
                Value::DateTime(60000LL * 20));
  ExecutionResult r = ExecuteQuery(records_, catalog_, q);
  ASSERT_GT(r.docs.size(), 0u);
  EXPECT_EQ(r.borrow_source, &records_);
  EXPECT_TRUE(r.BorrowsValid());
  // Materializing while valid is fine.
  EXPECT_EQ(r.MaterializeDocs().size(), r.docs.size());

  records_.Insert(PointDoc(9999, 1, 1, 1, 1));
  EXPECT_FALSE(r.BorrowsValid());
}

}  // namespace
}  // namespace stix::query

// ---------- ShardCursor: the getMore protocol on one shard ----------

namespace stix::cluster {
namespace {

using bson::Value;
using query::CmpOp;
using query::ExprPtr;

bson::Document ShardDoc(int id, double lon, double lat, int64_t date_ms) {
  bson::Document doc;
  doc.Append("id", Value::Int32(id));
  doc.Append("location",
             Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
  doc.Append("date", Value::DateTime(date_ms));
  return doc;
}

class ShardCursorTest : public ::testing::Test {
 protected:
  static constexpr int kDocs = 1200;

  void SetUp() override {
    ASSERT_TRUE(shard_.catalog()
                    .CreateIndex(index::IndexDescriptor(
                        "date_1",
                        {{"date", index::IndexFieldKind::kAscending}}))
                    .ok());
    ASSERT_TRUE(
        shard_.catalog()
            .CreateIndex(index::IndexDescriptor(
                "loc_2dsphere_date_1",
                {{"location", index::IndexFieldKind::k2dsphere},
                 {"date", index::IndexFieldKind::kAscending}}))
            .ok());
    Rng rng(31);
    for (int i = 0; i < kDocs; ++i) {
      ASSERT_TRUE(shard_
                      .Insert(ShardDoc(i, rng.NextDouble(0, 10),
                                       rng.NextDouble(0, 10), 60000LL * i))
                      .ok());
    }
  }

  std::set<int> NaiveIds(const ExprPtr& expr) const {
    std::set<int> ids;
    shard_.collection().records().ForEach(
        [&](storage::RecordId, const bson::Document& doc) {
          if (expr->Matches(doc)) ids.insert(doc.Get("id")->AsInt32());
        });
    return ids;
  }

  Shard shard_{0};
};

TEST_F(ShardCursorTest, GetMoreBatchesReassembleTheFullResult) {
  const ExprPtr q =
      query::MakeRange("date", Value::DateTime(60000LL * 100),
                       Value::DateTime(60000LL * 400));
  const query::ExecutionResult reference = shard_.RunQuery(q, {});
  const std::set<int> expected = NaiveIds(q);
  ASSERT_EQ(expected.size(), 301u);

  auto cursor = shard_.OpenCursor(q, {});
  std::set<int> streamed;
  size_t batches = 0;
  while (!cursor->exhausted()) {
    const ShardCursor::Batch batch = cursor->GetMore(/*batch_size=*/7);
    EXPECT_LE(batch.docs.size(), 7u);
    ASSERT_EQ(batch.docs.size(), batch.rids.size());
    EXPECT_TRUE(batch.BorrowsValid());
    for (const bson::Document* d : batch.docs) {
      streamed.insert(d->Get("id")->AsInt32());
    }
    ++batches;
    if (batch.exhausted) {
      EXPECT_TRUE(cursor->exhausted());
    }
  }
  EXPECT_EQ(streamed, expected);
  EXPECT_GT(batches, 1u);
  EXPECT_EQ(cursor->n_returned(), reference.docs.size());
  EXPECT_EQ(cursor->winning_index(), reference.winning_index);
  EXPECT_EQ(cursor->stats().n_returned, reference.stats.n_returned);
  EXPECT_GT(cursor->exec_millis(), 0.0);
}

TEST_F(ShardCursorTest, BatchBorrowGuardFlipsAfterMutation) {
  const ExprPtr q =
      query::MakeRange("date", Value::DateTime(0),
                       Value::DateTime(60000LL * 50));
  // Borrowed (zero-copy) batches exist only under the legacy abort-on-
  // mutation policy; the default yield policy materializes owned batches.
  query::ExecutorOptions options;
  options.yield_policy = query::YieldPolicy::kAbortOnMutation;
  auto cursor = shard_.OpenCursor(q, options);
  const ShardCursor::Batch batch = cursor->GetMore(/*batch_size=*/5);
  ASSERT_GT(batch.docs.size(), 0u);
  EXPECT_TRUE(batch.BorrowsValid());

  ASSERT_TRUE(shard_.Insert(ShardDoc(kDocs + 1, 5, 5, 1)).ok());
  EXPECT_FALSE(batch.BorrowsValid());
}

TEST_F(ShardCursorTest, ReplansMidStreamWhenCachedPlanBlowsBudget) {
  // Cache the compound geo plan with a tiny selective query, then stream
  // the same shape with a huge box and a narrow time window in small
  // batches: the cached plan blows its works budget mid-stream and the
  // cursor must re-race to the date index without dropping documents.
  const ExprPtr small_q = query::MakeAnd(
      {query::MakeGeoWithinBox("location", {{2.0, 2.0}, {2.3, 2.3}}),
       query::MakeRange("date", Value::DateTime(0),
                        Value::DateTime(60000LL * kDocs))});
  const query::ExecutionResult small_r = shard_.RunQuery(small_q, {});
  ASSERT_EQ(small_r.winning_index, "loc_2dsphere_date_1");

  const ExprPtr big_q = query::MakeAnd(
      {query::MakeGeoWithinBox("location", {{-1, -1}, {11, 11}}),
       query::MakeRange("date", Value::DateTime(60000LL * 1000),
                        Value::DateTime(60000LL * 1010))});
  query::ExecutorOptions options;
  options.replan_min_works = 50;
  auto cursor = shard_.OpenCursor(big_q, options);
  std::set<int> streamed;
  while (!cursor->exhausted()) {
    for (const bson::Document* d : cursor->GetMore(/*batch_size=*/3).docs) {
      streamed.insert(d->Get("id")->AsInt32());
    }
  }
  EXPECT_TRUE(cursor->replanned());
  EXPECT_EQ(cursor->winning_index(), "date_1");
  EXPECT_EQ(streamed, NaiveIds(big_q));
}

// ---------- ClusterCursor: batched scatter-gather merge ----------

class ClusterCursorTest : public ::testing::Test {
 protected:
  static constexpr int kDocs = 1200;

  ClusterOptions Options(bool parallel_fanout) {
    ClusterOptions opts;
    opts.num_shards = 4;
    opts.chunk_max_bytes = 8 * 1024;
    opts.balance_every_inserts = 500;
    opts.seed = 5;
    opts.parallel_fanout = parallel_fanout;
    return opts;
  }

  bson::Document Doc(int id, double lon, double lat, int64_t date_ms) {
    bson::Document doc;
    doc.Append("_id", Value::Int64(id));
    doc.Append("location",
               Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
    doc.Append("date", Value::DateTime(date_ms));
    doc.Append("pad", Value::String(std::string(120, 'p')));
    return doc;
  }

  void BuildAndLoad(Cluster* cluster) {
    ASSERT_TRUE(cluster
                    ->ShardCollection(ShardKeyPattern(
                        {"date"}, ShardingStrategy::kRange))
                    .ok());
    Rng rng(77);
    for (int i = 0; i < kDocs; ++i) {
      ASSERT_TRUE(cluster
                      ->Insert(Doc(i, rng.NextDouble(0, 10),
                                   rng.NextDouble(0, 10), 60000LL * i))
                      .ok());
    }
  }

  static std::multiset<int64_t> Ids(const std::vector<bson::Document>& docs) {
    std::multiset<int64_t> ids;
    for (const bson::Document& d : docs) ids.insert(d.Get("_id")->AsInt64());
    return ids;
  }

  ExprPtr WideQuery() const {
    return query::MakeRange("date", Value::DateTime(60000LL * 100),
                            Value::DateTime(60000LL * 1000));
  }
};

TEST_F(ClusterCursorTest, DrainMatchesExecuteAtEveryBatchSize) {
  Cluster cluster(Options(/*parallel_fanout=*/false));
  BuildAndLoad(&cluster);
  const ExprPtr q = WideQuery();
  const ClusterQueryResult reference = cluster.Query(q);
  ASSERT_EQ(reference.docs.size(), 901u);
  EXPECT_EQ(reference.n_returned, reference.docs.size());

  for (const size_t batch : {size_t{1}, size_t{7}, size_t{101}, size_t{0}}) {
    CursorOptions copts;
    copts.batch_size = batch;
    auto cursor = cluster.OpenCursor(q, copts);
    const ClusterQueryResult r = cursor->Drain();
    SCOPED_TRACE(testing::Message() << "batch_size=" << batch);

    EXPECT_EQ(Ids(r.docs), Ids(reference.docs));
    EXPECT_EQ(r.n_returned, reference.n_returned);
    EXPECT_EQ(r.nodes_contacted, reference.nodes_contacted);
    EXPECT_EQ(r.total_keys_examined, reference.total_keys_examined);
    EXPECT_EQ(r.total_docs_examined, reference.total_docs_examined);
    EXPECT_EQ(r.max_keys_examined, reference.max_keys_examined);
    EXPECT_EQ(r.max_docs_examined, reference.max_docs_examined);
    EXPECT_EQ(r.bytes_materialized, reference.bytes_materialized);
    EXPECT_GE(r.first_result_millis, 0.0);
    if (batch == 0) {
      EXPECT_EQ(r.num_batches, 1);
      // Execute() is exactly open + drain with batch size 0, so even the
      // document order matches.
      EXPECT_EQ(r.docs.size(), reference.docs.size());
      for (size_t i = 0; i < r.docs.size(); ++i) {
        EXPECT_EQ(r.docs[i].Get("_id")->AsInt64(),
                  reference.docs[i].Get("_id")->AsInt64());
      }
    } else if (batch == 1) {
      EXPECT_GT(r.num_batches, 1);
    }
  }
}

TEST_F(ClusterCursorTest, ParallelAndSerialCursorsAgree) {
  Cluster serial(Options(/*parallel_fanout=*/false));
  Cluster parallel(Options(/*parallel_fanout=*/true));
  BuildAndLoad(&serial);
  BuildAndLoad(&parallel);
  const ExprPtr q = WideQuery();

  CursorOptions copts;
  copts.batch_size = 5;
  const ClusterQueryResult rs = serial.OpenCursor(q, copts)->Drain();
  const ClusterQueryResult rp = parallel.OpenCursor(q, copts)->Drain();
  EXPECT_EQ(Ids(rs.docs), Ids(rp.docs));
  EXPECT_EQ(rs.total_keys_examined, rp.total_keys_examined);
  EXPECT_EQ(rs.total_docs_examined, rp.total_docs_examined);
  EXPECT_EQ(rs.nodes_contacted, rp.nodes_contacted);
  EXPECT_EQ(rs.num_batches, rp.num_batches);
}

TEST_F(ClusterCursorTest, LimitPushdownExaminesStrictlyFewerDocs) {
  Cluster cluster(Options(/*parallel_fanout=*/false));
  BuildAndLoad(&cluster);
  const ExprPtr q = WideQuery();
  const ClusterQueryResult full = cluster.Query(q);
  ASSERT_GT(full.docs.size(), 25u);

  CursorOptions copts;
  copts.batch_size = 101;
  copts.limit = 25;
  const ClusterQueryResult limited = cluster.OpenCursor(q, copts)->Drain();
  EXPECT_EQ(limited.docs.size(), 25u);
  EXPECT_EQ(limited.n_returned, 25u);
  EXPECT_LT(limited.total_docs_examined, full.total_docs_examined);
  EXPECT_LT(limited.bytes_materialized, full.bytes_materialized);
}

TEST_F(ClusterCursorTest, SummaryWhileStreamingThenFinal) {
  Cluster cluster(Options(/*parallel_fanout=*/false));
  BuildAndLoad(&cluster);
  auto cursor = cluster.OpenCursor(WideQuery(), CursorOptions{/*batch_size=*/50,
                                                              /*limit=*/0});
  std::vector<bson::Document> first = cursor->NextBatch();
  ASSERT_GT(first.size(), 0u);
  const ClusterQueryResult mid = cursor->Summary();
  EXPECT_EQ(mid.num_batches, 1);
  EXPECT_EQ(mid.n_returned, first.size());
  EXPECT_TRUE(mid.docs.empty());  // batches own the documents

  uint64_t total = first.size();
  while (!cursor->exhausted()) total += cursor->NextBatch().size();
  const ClusterQueryResult done = cursor->Summary();
  EXPECT_EQ(done.n_returned, total);
  EXPECT_EQ(done.n_returned, 901u);
  EXPECT_GE(done.num_batches, mid.num_batches);
}

// ---------- batch accounting: zero-result shards and mid-stream death ----

TEST_F(ClusterCursorTest, ZeroResultShardsKeepAccountingConsistent) {
  Cluster cluster(Options(/*parallel_fanout=*/false));
  BuildAndLoad(&cluster);

  // _id is not the shard key, so this broadcasts to all four shards — but
  // the matching documents carry early dates and live on a strict subset of
  // them: the other shards answer every getMore round with zero documents.
  const ExprPtr q = query::MakeRange("_id", Value::Int64(0),
                                     Value::Int64(99));
  const ClusterQueryResult full = cluster.Query(q);
  ASSERT_TRUE(full.status.ok());
  ASSERT_EQ(full.docs.size(), 100u);
  ASSERT_EQ(full.nodes_contacted, 4);
  ASSERT_EQ(full.shard_reports.size(), 4u);
  bool some_shard_empty = false;
  for (const ShardQueryReport& report : full.shard_reports) {
    if (report.stats.n_returned == 0) some_shard_empty = true;
  }
  ASSERT_TRUE(some_shard_empty);
  EXPECT_EQ(full.num_batches, 1);  // single unbounded round, never more

  // Batched streaming over the same query: empty per-shard batches must not
  // distort the merge, the document count, or the round count.
  CursorOptions copts;
  copts.batch_size = 7;
  const ClusterQueryResult streamed = cluster.OpenCursor(q, copts)->Drain();
  EXPECT_TRUE(streamed.status.ok());
  EXPECT_EQ(Ids(streamed.docs), Ids(full.docs));
  EXPECT_EQ(streamed.n_returned, 100u);
  EXPECT_EQ(streamed.total_keys_examined, full.total_keys_examined);
  // Rounds continue until the slowest shard is exhausted; with the largest
  // per-shard slice under 100 docs at 7/round, that is at most
  // ceil(100/7)+1 = 16 rounds and at least 2.
  EXPECT_GT(streamed.num_batches, 1);
  EXPECT_LE(streamed.num_batches, 16);
}

TEST_F(ClusterCursorTest, QueryMatchingNothingCountsOneRound) {
  Cluster cluster(Options(/*parallel_fanout=*/false));
  BuildAndLoad(&cluster);
  // Far beyond every stored date: the router still targets the last chunk's
  // shard, which answers one empty, exhausted round.
  const ExprPtr q = query::MakeRange("date", Value::DateTime(60000LL * 100000),
                                     Value::DateTime(60000LL * 100001));
  auto cursor = cluster.OpenCursor(q, CursorOptions{/*batch_size=*/7,
                                                    /*limit=*/0});
  EXPECT_TRUE(cursor->NextBatch().empty());
  EXPECT_TRUE(cursor->exhausted());
  const ClusterQueryResult r = cursor->Summary();
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.n_returned, 0u);
  EXPECT_EQ(r.num_batches, 1);
}

TEST_F(ClusterCursorTest, NextBatchAfterExhaustionAddsNoPhantomRound) {
  Cluster cluster(Options(/*parallel_fanout=*/false));
  BuildAndLoad(&cluster);
  auto cursor = cluster.OpenCursor(WideQuery(), CursorOptions{/*batch_size=*/50,
                                                              /*limit=*/0});
  uint64_t total = 0;
  while (!cursor->exhausted()) total += cursor->NextBatch().size();
  ASSERT_EQ(total, 901u);
  const int rounds = cursor->Summary().num_batches;

  EXPECT_TRUE(cursor->NextBatch().empty());
  EXPECT_TRUE(cursor->NextBatch().empty());
  EXPECT_EQ(cursor->Summary().num_batches, rounds);
  EXPECT_EQ(cursor->Summary().n_returned, 901u);
}

TEST_F(ClusterCursorTest, ShardDyingMidStreamSurfacesErrorAndStopsStream) {
  Cluster cluster(Options(/*parallel_fanout=*/false));
  BuildAndLoad(&cluster);
  const ExprPtr q = WideQuery();
  const std::vector<int> targets = cluster.TargetShards(q);
  ASSERT_GT(targets.size(), 1u);

  // Let every shard answer the first round, then kill the next getMore: the
  // shard "dies" between rounds two and one.
  FailPoint* fp = FailPointRegistry::Instance().Find("shardGetMore");
  ASSERT_NE(fp, nullptr);
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kSkip;
  config.count = targets.size();
  config.error_code = StatusCode::kInternal;
  config.error_message = "shard host died mid-stream";
  fp->Enable(config);

  auto cursor = cluster.OpenCursor(q, CursorOptions{/*batch_size=*/50,
                                                    /*limit=*/0});
  const std::vector<bson::Document> first = cursor->NextBatch();
  EXPECT_FALSE(first.empty());
  EXPECT_TRUE(cursor->status().ok());

  const std::vector<bson::Document> second = cursor->NextBatch();
  EXPECT_TRUE(second.empty());  // the failed round's documents are dropped
  EXPECT_TRUE(cursor->exhausted());
  EXPECT_FALSE(cursor->status().ok());
  EXPECT_EQ(cursor->status().code(), StatusCode::kInternal);
  fp->Disable();

  const ClusterQueryResult summary = cursor->Summary();
  EXPECT_FALSE(summary.status.ok());
  // Only the delivered round counts: the faulted round produced no batch,
  // so it must not inflate num_batches (it used to, and drained-cursor
  // accounting diverged from one-shot Query() under fault injection).
  EXPECT_EQ(summary.num_batches, 1);
  EXPECT_EQ(summary.n_returned, first.size());

  // Further pulls stay empty and do not disturb the accounting.
  EXPECT_TRUE(cursor->NextBatch().empty());
  EXPECT_EQ(cursor->Summary().num_batches, 1);

  // A fresh cursor over the same cluster streams the full result cleanly.
  const ClusterQueryResult recovered = cluster.Query(q);
  EXPECT_TRUE(recovered.status.ok());
  EXPECT_EQ(recovered.docs.size(), 901u);
}

TEST_F(ClusterCursorTest, KillAndAbandonmentCloseEveryShardCursor) {
  Cluster cluster(Options(/*parallel_fanout=*/false));
  BuildAndLoad(&cluster);
  Gauge& open = MetricsRegistry::Instance().GetGauge("cluster.open_cursors");
  const int64_t baseline = open.value();

  // Kill mid-stream: every outstanding shard cursor must close immediately,
  // while the ClusterCursor object is still alive.
  auto cursor = cluster.OpenCursor(WideQuery(), CursorOptions{/*batch_size=*/50,
                                                              /*limit=*/0});
  ASSERT_FALSE(cursor->NextBatch().empty());
  EXPECT_GT(open.value(), baseline);
  cursor->Kill();
  EXPECT_EQ(open.value(), baseline);
  EXPECT_FALSE(cursor->status().ok());
  EXPECT_TRUE(cursor->exhausted());
  EXPECT_TRUE(cursor->NextBatch().empty());
  // Idempotent: killing again or destroying must not double-decrement.
  cursor->Kill();
  EXPECT_EQ(open.value(), baseline);
  cursor.reset();
  EXPECT_EQ(open.value(), baseline);

  // A cursor abandoned mid-stream closes its shard cursors in the
  // destructor.
  {
    auto abandoned = cluster.OpenCursor(
        WideQuery(), CursorOptions{/*batch_size=*/50, /*limit=*/0});
    ASSERT_FALSE(abandoned->NextBatch().empty());
    EXPECT_GT(open.value(), baseline);
  }
  EXPECT_EQ(open.value(), baseline);
}

TEST_F(ClusterCursorTest, ConcurrentSessionsKeepPerCursorAccountingExact) {
  Cluster cluster(Options(/*parallel_fanout=*/true));
  BuildAndLoad(&cluster);
  Gauge& open = MetricsRegistry::Instance().GetGauge("cluster.open_cursors");
  const int64_t baseline = open.value();
  const ExprPtr q = WideQuery();
  const ClusterQueryResult reference = cluster.Query(q);
  ASSERT_EQ(reference.docs.size(), 901u);
  const std::multiset<int64_t> expected = Ids(reference.docs);

  // Many sessions stream the same query concurrently at staggered batch
  // sizes; every third one walks away mid-stream via Kill(). Per-cursor
  // accounting must stay private to its session: batches delivered to
  // *this* cursor, documents returned by *this* cursor — never a
  // neighbour's.
  constexpr int kSessions = 9;
  std::vector<std::thread> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      CursorOptions copts;
      copts.batch_size = size_t(40 + 13 * s);
      auto cursor = cluster.OpenCursor(q, copts);
      std::vector<bson::Document> docs;
      int delivered = 0;
      bool killed = false;
      while (true) {
        std::vector<bson::Document> batch = cursor->NextBatch();
        if (batch.empty()) break;
        ++delivered;
        for (bson::Document& d : batch) docs.push_back(std::move(d));
        if (s % 3 == 2 && delivered == 2) {
          cursor->Kill();
          killed = true;
          break;
        }
      }
      const ClusterQueryResult summary = cursor->Summary();
      EXPECT_EQ(summary.num_batches, delivered);
      EXPECT_EQ(summary.n_returned, docs.size());
      EXPECT_GE(summary.first_result_millis, 0.0);
      if (killed) {
        EXPECT_FALSE(summary.status.ok());
        EXPECT_LT(docs.size(), expected.size());
      } else {
        EXPECT_TRUE(summary.status.ok()) << summary.status.ToString();
        EXPECT_EQ(Ids(docs), expected);
      }
    });
  }
  for (std::thread& t : sessions) t.join();
  EXPECT_EQ(open.value(), baseline);
}

TEST_F(ClusterCursorTest, ConcurrentSessionsUnderGetMoreFaultsReturnGaugeToBaseline) {
  Cluster cluster(Options(/*parallel_fanout=*/true));
  BuildAndLoad(&cluster);
  Gauge& open = MetricsRegistry::Instance().GetGauge("cluster.open_cursors");
  const int64_t baseline = open.value();
  const ExprPtr q = WideQuery();
  const std::multiset<int64_t> expected = Ids(cluster.Query(q).docs);

  // Arm a burst of getMore faults. Which concurrent session absorbs them is
  // a race by design — every session must either stream the exact result or
  // surface the fault, and either way its per-cursor accounting stays
  // consistent and its shard cursors close.
  FailPoint* fp = FailPointRegistry::Instance().Find("shardGetMore");
  ASSERT_NE(fp, nullptr);
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kTimes;
  config.count = 6;
  config.error_code = StatusCode::kInternal;
  config.error_message = "injected getMore fault under concurrency";
  fp->Enable(config);

  constexpr int kSessions = 8;
  std::atomic<int> faulted{0};
  std::vector<std::thread> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      CursorOptions copts;
      copts.batch_size = size_t(30 + 7 * s);
      auto cursor = cluster.OpenCursor(q, copts);
      std::vector<bson::Document> docs;
      int delivered = 0;
      while (true) {
        std::vector<bson::Document> batch = cursor->NextBatch();
        if (batch.empty()) break;
        ++delivered;
        for (bson::Document& d : batch) docs.push_back(std::move(d));
      }
      const ClusterQueryResult summary = cursor->Summary();
      EXPECT_EQ(summary.num_batches, delivered);
      EXPECT_EQ(summary.n_returned, docs.size());
      EXPECT_TRUE(cursor->exhausted());
      if (summary.status.ok()) {
        EXPECT_EQ(Ids(docs), expected);
      } else {
        faulted.fetch_add(1);
        EXPECT_LE(docs.size(), expected.size());
      }
    });
  }
  for (std::thread& t : sessions) t.join();
  fp->Disable();

  EXPECT_GT(faulted.load(), 0);      // the burst hit someone
  EXPECT_LT(faulted.load(), kSessions);  // and someone streamed clean
  EXPECT_EQ(open.value(), baseline);

  // The cluster is unharmed: a fresh one-shot query is exact.
  EXPECT_EQ(Ids(cluster.Query(q).docs), expected);
}

}  // namespace
}  // namespace stix::cluster

// ---------- StCursor: streaming over the four approaches ----------

namespace stix::st {
namespace {

using bson::Value;

class StCursorParityTest : public ::testing::TestWithParam<ApproachKind> {
 protected:
  static constexpr int kDocs = 1500;
  static constexpr int64_t kSpanBegin = 1530403200000;
  static constexpr int64_t kStepMs = 60000;

  StStoreOptions Options() {
    StStoreOptions opts;
    opts.approach.kind = GetParam();
    opts.approach.dataset_mbr = geo::Rect{{23.0, 37.0}, {25.0, 39.0}};
    opts.cluster.num_shards = 4;
    opts.cluster.chunk_max_bytes = 16 * 1024;
    opts.cluster.balance_every_inserts = 300;
    opts.cluster.seed = 3;
    return opts;
  }

  void Load(StStore* store) {
    Rng rng(55);
    for (int i = 0; i < kDocs; ++i) {
      bson::Document doc;
      doc.Append("seq", Value::Int32(i));
      const double lon = rng.NextDouble(23.0, 25.0);
      const double lat = rng.NextDouble(37.0, 39.0);
      doc.Append(kLocationField,
                 Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
      doc.Append(kDateField, Value::DateTime(kSpanBegin + i * kStepMs));
      ASSERT_TRUE(store->Insert(std::move(doc)).ok());
    }
    ASSERT_TRUE(store->FinishLoad().ok());
  }

  static std::set<int> Ids(const std::vector<bson::Document>& docs) {
    std::set<int> ids;
    for (const bson::Document& doc : docs) {
      ids.insert(doc.Get("seq")->AsInt32());
    }
    return ids;
  }

  // (shard id, winning index) per contacted shard, in report order.
  static std::vector<std::pair<int, std::string>> Winners(
      const StQueryResult& r) {
    std::vector<std::pair<int, std::string>> w;
    for (const cluster::ShardQueryReport& rep : r.cluster.shard_reports) {
      w.emplace_back(rep.shard_id, rep.winning_index);
    }
    return w;
  }
};

TEST_P(StCursorParityTest, CursorDrainReproducesQueryAtEveryBatchSize) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);

  const geo::Rect rect{{23.4, 37.4}, {24.6, 38.6}};
  const int64_t t0 = kSpanBegin + 100 * kStepMs;
  const int64_t t1 = kSpanBegin + 1200 * kStepMs;

  // One warm-up so plan caches and the covering cache are settled, then a
  // reference drain every batched run must reproduce exactly.
  (void)store.Query(rect, t0, t1);
  const StQueryResult reference = store.Query(rect, t0, t1);
  ASSERT_GT(reference.cluster.docs.size(), 0u);

  for (const size_t batch : {size_t{1}, size_t{101}, size_t{0}}) {
    SCOPED_TRACE(testing::Message() << "approach=" << store.approach().name()
                                    << " batch_size=" << batch);
    StCursorOptions copts;
    copts.batch_size = batch;
    StCursor cursor = store.OpenQuery(rect, t0, t1, copts);
    const StQueryResult r = cursor.Drain();

    EXPECT_EQ(Ids(r.cluster.docs), Ids(reference.cluster.docs));
    EXPECT_EQ(r.cluster.n_returned, reference.cluster.n_returned);
    EXPECT_EQ(r.cluster.nodes_contacted, reference.cluster.nodes_contacted);
    EXPECT_EQ(r.cluster.total_keys_examined,
              reference.cluster.total_keys_examined);
    EXPECT_EQ(r.cluster.total_docs_examined,
              reference.cluster.total_docs_examined);
    EXPECT_EQ(r.cluster.max_keys_examined,
              reference.cluster.max_keys_examined);
    EXPECT_EQ(r.cluster.max_docs_examined,
              reference.cluster.max_docs_examined);
    EXPECT_EQ(r.cluster.bytes_materialized,
              reference.cluster.bytes_materialized);
    EXPECT_EQ(Winners(r), Winners(reference));
    if (batch == 1) {
      EXPECT_GT(r.cluster.num_batches, 1);
    }
  }
}

TEST_P(StCursorParityTest, LimitKExaminesStrictlyFewerThanFullDrain) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);

  // A wide window (~1000 matches) so the limit leaves most of it unread.
  const geo::Rect rect{{23.0, 37.0}, {25.0, 39.0}};
  const int64_t t0 = kSpanBegin;
  const int64_t t1 = kSpanBegin + 1000 * kStepMs;
  (void)store.Query(rect, t0, t1);  // warm plan + covering caches
  const StQueryResult full = store.Query(rect, t0, t1);
  ASSERT_GT(full.cluster.docs.size(), 500u);

  StCursorOptions copts;
  copts.batch_size = 101;
  copts.limit = 20;
  StCursor cursor = store.OpenQuery(rect, t0, t1, copts);
  const StQueryResult limited = cursor.Drain();

  EXPECT_EQ(limited.cluster.docs.size(), 20u);
  EXPECT_EQ(limited.cluster.n_returned, 20u);
  EXPECT_LT(limited.cluster.total_docs_examined,
            full.cluster.total_docs_examined);
  EXPECT_LT(limited.cluster.bytes_materialized,
            full.cluster.bytes_materialized);
  // Everything returned is a genuine match from the full result.
  const std::set<int> full_ids = Ids(full.cluster.docs);
  for (const int id : Ids(limited.cluster.docs)) {
    EXPECT_TRUE(full_ids.count(id)) << "id " << id;
  }
}

TEST_P(StCursorParityTest, PolygonQueryStreamsThroughCursor) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);

  const geo::Polygon poly({{23.2, 37.3}, {24.8, 37.6}, {23.9, 38.8}});
  const int64_t t0 = kSpanBegin + 100 * kStepMs;
  const int64_t t1 = kSpanBegin + 1100 * kStepMs;
  const StQueryResult reference = store.QueryPolygon(poly, t0, t1);
  ASSERT_GT(reference.cluster.docs.size(), 0u);

  StCursorOptions copts;
  copts.batch_size = 50;
  StCursor cursor = store.OpenPolygonQuery(poly, t0, t1, copts);
  const StQueryResult r = cursor.Drain();
  EXPECT_EQ(Ids(r.cluster.docs), Ids(reference.cluster.docs));
  EXPECT_EQ(r.cluster.total_docs_examined,
            reference.cluster.total_docs_examined);
}

TEST_P(StCursorParityTest, KnnCandidateBudgetBoundsProbeWork) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);

  const geo::Point center{24.0, 38.0};
  const int64_t t0 = kSpanBegin;
  const int64_t t1 = kSpanBegin + kDocs * kStepMs;
  KnnOptions options;
  options.k = 8;
  options.batch_size = 16;
  options.candidate_budget = 32;
  const KnnResult r = KnnQuery(store, center, t0, t1, options);

  // The budget is a hard per-probe cap: no ring merges more than
  // candidate_budget documents, so total candidates are bounded by the
  // number of probes issued.
  EXPECT_LE(r.candidates_examined,
            options.candidate_budget *
                static_cast<uint64_t>(r.queries_issued));
  ASSERT_EQ(r.neighbors.size(), options.k);
  for (size_t i = 1; i < r.neighbors.size(); ++i) {
    EXPECT_GE(r.neighbors[i].distance_m, r.neighbors[i - 1].distance_m);
  }
}

TEST_P(StCursorParityTest, YieldingCursorSurvivesInterleavedInsertsAndSplits) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);

  const geo::Rect rect{{23.3, 37.3}, {24.7, 38.7}};
  const int64_t t0 = kSpanBegin + 50 * kStepMs;
  const int64_t t1 = kSpanBegin + 1300 * kStepMs;
  const StQueryResult reference = store.Query(rect, t0, t1);
  ASSERT_GT(reference.cluster.docs.size(), 100u);

  // Stream in small batches and, between getMore rounds, bulk-insert
  // documents dated beyond the query window: they split btree leaves under
  // the cursor's saved position (and periodically trigger the inline
  // balancer, whose commit must yield to this open cursor) without changing
  // the expected result. The default yield policy saves executor state
  // before each round's shard lock drops and reseeks afterwards, so the
  // drain must still equal the quiesced reference exactly.
  StCursorOptions copts;
  copts.batch_size = 25;
  StCursor cursor = store.OpenQuery(rect, t0, t1, copts);
  std::set<int> streamed;
  Rng rng(91);
  int next_seq = kDocs;
  while (!cursor.exhausted()) {
    for (const bson::Document& d : cursor.NextBatch()) {
      streamed.insert(d.Get("seq")->AsInt32());
    }
    for (int i = 0; i < 40; ++i) {
      bson::Document doc;
      doc.Append("seq", Value::Int32(next_seq));
      doc.Append(kLocationField,
                 Value::MakeDocument(bson::GeoJsonPoint(
                     rng.NextDouble(23.0, 25.0), rng.NextDouble(37.0, 39.0))));
      doc.Append(kDateField,
                 Value::DateTime(kSpanBegin + (5000 + next_seq) * kStepMs));
      ASSERT_TRUE(store.Insert(std::move(doc)).ok());
      ++next_seq;
    }
  }
  EXPECT_EQ(streamed, Ids(reference.cluster.docs));
  // The quiesced store agrees: the interleaved inserts were out of window.
  EXPECT_EQ(Ids(store.Query(rect, t0, t1).cluster.docs),
            Ids(reference.cluster.docs));
}

TEST_P(StCursorParityTest, FaultedStreamReturnsOpenCursorGaugeToBaseline) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);
  Gauge& open =
      MetricsRegistry::Instance().GetGauge("cluster.open_cursors");
  const int64_t baseline = open.value();

  // Kill the second getMore round: the stream dies with a non-OK status and
  // every outstanding shard cursor must be released at that moment — the
  // gauge returns to baseline while the StCursor is still alive.
  const geo::Rect rect{{23.0, 37.0}, {25.0, 39.0}};
  const int64_t t0 = kSpanBegin;
  const int64_t t1 = kSpanBegin + 1400 * kStepMs;
  FailPoint* fp = FailPointRegistry::Instance().Find("shardGetMore");
  ASSERT_NE(fp, nullptr);
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kSkip;
  config.count = 1;  // first shard answers, then the fault fires
  config.error_code = StatusCode::kInternal;
  config.error_message = "injected shard death";
  fp->Enable(config);

  StCursorOptions copts;
  copts.batch_size = 20;
  StCursor cursor = store.OpenQuery(rect, t0, t1, copts);
  while (!cursor.exhausted()) (void)cursor.NextBatch();
  fp->Disable();
  EXPECT_FALSE(cursor.Summary().cluster.status.ok());
  EXPECT_EQ(open.value(), baseline)
      << "a shard cursor leaked on the error path";

  // And the store recovers cleanly once the fault is cleared.
  EXPECT_TRUE(store.Query(rect, t0, t1).cluster.status.ok());
  EXPECT_EQ(open.value(), baseline);
}

INSTANTIATE_TEST_SUITE_P(
    AllApproaches, StCursorParityTest,
    ::testing::Values(ApproachKind::kBslST, ApproachKind::kBslTS,
                      ApproachKind::kHil, ApproachKind::kHilStar),
    [](const ::testing::TestParamInfo<ApproachKind>& info) {
      switch (info.param) {
        case ApproachKind::kBslST:
          return "bslST";
        case ApproachKind::kBslTS:
          return "bslTS";
        case ApproachKind::kHil:
          return "hil";
        case ApproachKind::kHilStar:
          return "hilStar";
      }
      return "unknown";
    });

}  // namespace
}  // namespace stix::st
