#include <gtest/gtest.h>

#include "bson/codec.h"
#include "bson/document.h"
#include "bson/json_writer.h"
#include "bson/object_id.h"
#include "bson/value.h"
#include "common/rng.h"

namespace stix::bson {
namespace {

// ---------- Value basics ----------

TEST(ValueTest, TypesReport) {
  EXPECT_EQ(Value::Null().type(), Type::kNull);
  EXPECT_EQ(Value::Bool(true).type(), Type::kBool);
  EXPECT_EQ(Value::Int32(1).type(), Type::kInt32);
  EXPECT_EQ(Value::Int64(1).type(), Type::kInt64);
  EXPECT_EQ(Value::Double(1.0).type(), Type::kDouble);
  EXPECT_EQ(Value::String("x").type(), Type::kString);
  EXPECT_EQ(Value::DateTime(0).type(), Type::kDateTime);
  EXPECT_EQ(Value::MakeArray({}).type(), Type::kArray);
  EXPECT_EQ(Value::MakeDocument(Document()).type(), Type::kDocument);
}

TEST(ValueTest, NumberWidening) {
  EXPECT_DOUBLE_EQ(Value::Int32(7).NumberAsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Value::Int64(1LL << 40).NumberAsDouble(),
                   static_cast<double>(1LL << 40));
  EXPECT_DOUBLE_EQ(Value::Double(2.5).NumberAsDouble(), 2.5);
}

TEST(ValueCompareTest, CrossWidthNumericEquality) {
  EXPECT_EQ(Compare(Value::Int32(5), Value::Int64(5)), 0);
  EXPECT_EQ(Compare(Value::Int64(5), Value::Double(5.0)), 0);
  EXPECT_LT(Compare(Value::Int32(4), Value::Double(4.5)), 0);
  EXPECT_GT(Compare(Value::Int64(10), Value::Double(9.5)), 0);
}

TEST(ValueCompareTest, CanonicalTypeOrder) {
  // Null < numbers < string < document < array < objectid < bool < date.
  EXPECT_LT(Compare(Value::Null(), Value::Int32(0)), 0);
  EXPECT_LT(Compare(Value::Int32(999), Value::String("")), 0);
  EXPECT_LT(Compare(Value::String("zzz"),
                    Value::MakeDocument(Document())), 0);
  EXPECT_LT(Compare(Value::MakeDocument(Document()), Value::MakeArray({})), 0);
  EXPECT_LT(Compare(Value::Bool(true), Value::DateTime(0)), 0);
}

TEST(ValueCompareTest, StringsLexicographic) {
  EXPECT_LT(Compare(Value::String("abc"), Value::String("abd")), 0);
  EXPECT_EQ(Compare(Value::String("abc"), Value::String("abc")), 0);
  EXPECT_LT(Compare(Value::String("ab"), Value::String("abc")), 0);
}

TEST(ValueCompareTest, DatesByMillis) {
  EXPECT_LT(Compare(Value::DateTime(1000), Value::DateTime(2000)), 0);
  EXPECT_EQ(Compare(Value::DateTime(5), Value::DateTime(5)), 0);
}

TEST(ValueCompareTest, ArraysElementWiseThenLength) {
  const Value a = Value::MakeArray({Value::Int32(1), Value::Int32(2)});
  const Value b = Value::MakeArray({Value::Int32(1), Value::Int32(3)});
  const Value c = Value::MakeArray({Value::Int32(1)});
  EXPECT_LT(Compare(a, b), 0);
  EXPECT_LT(Compare(c, a), 0);
}

TEST(ValueCompareTest, Int64BeyondDoublePrecisionStaysExact) {
  const int64_t base = (1LL << 60) + 1;
  EXPECT_LT(Compare(Value::Int64(base), Value::Int64(base + 1)), 0);
}

// ---------- Document ----------

TEST(DocumentTest, AppendAndGet) {
  auto doc = DocBuilder().Field("a", 1).Field("b", "two").Build();
  ASSERT_NE(doc.Get("a"), nullptr);
  EXPECT_EQ(doc.Get("a")->AsInt32(), 1);
  EXPECT_EQ(doc.Get("b")->AsString(), "two");
  EXPECT_EQ(doc.Get("missing"), nullptr);
}

TEST(DocumentTest, SetReplacesOrAppends) {
  Document doc;
  doc.Set("x", Value::Int32(1));
  doc.Set("x", Value::Int32(2));
  EXPECT_EQ(doc.size(), 1u);
  EXPECT_EQ(doc.Get("x")->AsInt32(), 2);
}

TEST(DocumentTest, GetPathThroughNestedDocuments) {
  Document inner;
  inner.Append("deep", Value::String("value"));
  auto doc = DocBuilder().Field("outer", std::move(inner)).Build();
  const Value* v = doc.GetPath("outer.deep");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->AsString(), "value");
  EXPECT_EQ(doc.GetPath("outer.missing"), nullptr);
  EXPECT_EQ(doc.GetPath("missing.deep"), nullptr);
}

TEST(DocumentTest, GetPathThroughArrays) {
  Document doc = GeoJsonPoint(23.7, 37.9);
  const Value* lon = doc.GetPath("coordinates.0");
  const Value* lat = doc.GetPath("coordinates.1");
  ASSERT_NE(lon, nullptr);
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lon->AsDouble(), 23.7);
  EXPECT_DOUBLE_EQ(lat->AsDouble(), 37.9);
  EXPECT_EQ(doc.GetPath("coordinates.2"), nullptr);
  EXPECT_EQ(doc.GetPath("coordinates.x"), nullptr);
}

TEST(DocumentTest, FieldOrderPreserved) {
  auto doc =
      DocBuilder().Field("z", 1).Field("a", 2).Field("m", 3).Build();
  EXPECT_EQ(doc.field(0).first, "z");
  EXPECT_EQ(doc.field(1).first, "a");
  EXPECT_EQ(doc.field(2).first, "m");
}

TEST(DocumentTest, ApproxBsonSizeMatchesEncodedSize) {
  auto doc = DocBuilder()
                 .Field("name", "athens")
                 .Field("n", 42)
                 .Field("f", 2.75)
                 .Field("point", GeoJsonPoint(23.72, 37.98))
                 .Build();
  EXPECT_EQ(doc.ApproxBsonSize(), EncodeBson(doc).size());
}

TEST(GeoJsonTest, PointRoundTrip) {
  const Document p = GeoJsonPoint(23.727539, 37.983810);
  double lon = 0, lat = 0;
  ASSERT_TRUE(ExtractGeoJsonPoint(Value::MakeDocument(p), &lon, &lat));
  EXPECT_DOUBLE_EQ(lon, 23.727539);
  EXPECT_DOUBLE_EQ(lat, 37.983810);
}

TEST(GeoJsonTest, RejectsNonPoints) {
  double lon, lat;
  EXPECT_FALSE(ExtractGeoJsonPoint(Value::Int32(3), &lon, &lat));
  Document bad;
  bad.Append("type", Value::String("Polygon"));
  EXPECT_FALSE(
      ExtractGeoJsonPoint(Value::MakeDocument(std::move(bad)), &lon, &lat));
  Document missing_coords;
  missing_coords.Append("type", Value::String("Point"));
  EXPECT_FALSE(ExtractGeoJsonPoint(Value::MakeDocument(std::move(missing_coords)),
                                   &lon, &lat));
}

// ---------- ObjectId ----------

TEST(ObjectIdTest, GeneratorEmbedsTimestamp) {
  ObjectIdGenerator gen(99);
  const ObjectId id = gen.Generate(1538352000);
  EXPECT_EQ(id.timestamp_seconds(), 1538352000u);
}

TEST(ObjectIdTest, CounterAdvancesMonotonically) {
  ObjectIdGenerator gen(99);
  const ObjectId a = gen.Generate(100);
  const ObjectId b = gen.Generate(100);
  EXPECT_LT(a, b);  // same timestamp, counter breaks the tie
}

TEST(ObjectIdTest, OrderFollowsTimestamp) {
  ObjectIdGenerator gen(99);
  const ObjectId later = gen.Generate(2000);
  const ObjectId earlier = gen.Generate(1000);
  // Timestamp dominates even though the counter went up.
  EXPECT_LT(earlier, later);
}

TEST(ObjectIdTest, HexIs24Chars) {
  ObjectIdGenerator gen(1);
  EXPECT_EQ(gen.Generate(42).ToHex().size(), 24u);
}

TEST(ObjectIdTest, SharedPrefixForNearbyTimestamps) {
  // The property Fig. 14's prefix-compression analysis rests on.
  ObjectIdGenerator gen(5);
  const ObjectId a = gen.Generate(1538352000);
  const ObjectId b = gen.Generate(1538352001);
  int common = 0;
  while (common < 12 && a.bytes()[common] == b.bytes()[common]) ++common;
  EXPECT_GE(common, 3);  // timestamps differ only in the last byte
}

// ---------- codec ----------

TEST(CodecTest, RoundTripsAllTypes) {
  Array arr{Value::Int32(1), Value::String("two"), Value::Null()};
  ObjectIdGenerator gen(3);
  auto doc = DocBuilder()
                 .Field("_id", Value::Id(gen.Generate(1234)))
                 .Field("null", Value::Null())
                 .Field("bool", true)
                 .Field("i32", 7)
                 .Field("i64", Value::Int64(1LL << 40))
                 .Field("dbl", 3.25)
                 .Field("str", "hello")
                 .Field("date", Value::DateTime(1538383980067))
                 .Field("arr", Value::MakeArray(arr))
                 .Field("sub", GeoJsonPoint(1.5, 2.5))
                 .Build();
  const std::string bytes = EncodeBson(doc);
  const Result<Document> decoded = DecodeBson(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(Compare(doc, *decoded), 0);
}

TEST(CodecTest, RejectsTruncated) {
  const std::string bytes =
      EncodeBson(DocBuilder().Field("a", 1).Field("b", "xyz").Build());
  for (size_t cut : {0UL, 1UL, 4UL, bytes.size() - 1}) {
    EXPECT_FALSE(DecodeBson(std::string_view(bytes.data(), cut)).ok());
  }
}

TEST(CodecTest, RejectsTrailingGarbage) {
  std::string bytes = EncodeBson(DocBuilder().Field("a", 1).Build());
  bytes += "junk";
  EXPECT_FALSE(DecodeBson(bytes).ok());
}

TEST(CodecTest, RandomDocumentsRoundTrip) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    Document doc;
    const int fields = static_cast<int>(rng.NextBounded(8)) + 1;
    for (int f = 0; f < fields; ++f) {
      const std::string name = "f" + std::to_string(f);
      switch (rng.NextBounded(5)) {
        case 0:
          doc.Append(name, Value::Int32(static_cast<int32_t>(rng.Next())));
          break;
        case 1:
          doc.Append(name, Value::Double(rng.NextDouble(-1e6, 1e6)));
          break;
        case 2:
          doc.Append(name, Value::String(std::string(rng.NextBounded(32),
                                                     'a')));
          break;
        case 3:
          doc.Append(name, Value::DateTime(rng.NextInt(0, 2000000000)));
          break;
        default:
          doc.Append(name, Value::Bool(rng.NextBool(0.5)));
      }
    }
    const Result<Document> decoded = DecodeBson(EncodeBson(doc));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(Compare(doc, *decoded), 0);
  }
}

TEST(CodecFuzzTest, MutatedBytesNeverCrash) {
  // Decoding hostile bytes must fail cleanly (Status), never crash or
  // over-read — flip bytes of a valid document at every position.
  ObjectIdGenerator gen(8);
  const std::string valid = EncodeBson(
      DocBuilder()
          .Field("_id", Value::Id(gen.Generate(500)))
          .Field("s", "hello world")
          .Field("n", 42)
          .Field("pt", GeoJsonPoint(23.7, 37.9))
          .Field("d", Value::DateTime(1538382880067))
          .Build());
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.NextBounded(4));
    for (int m = 0; m < mutations; ++m) {
      mutated[rng.NextBounded(mutated.size())] =
          static_cast<char>(rng.NextBounded(256));
    }
    // Either decodes to some document or fails; both are acceptable.
    (void)DecodeBson(mutated);
  }
  SUCCEED();
}

TEST(CodecFuzzTest, RandomBytesNeverCrash) {
  Rng rng(100);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes;
    const size_t n = rng.NextBounded(128);
    for (size_t i = 0; i < n; ++i) {
      bytes.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    (void)DecodeBson(bytes);
  }
  SUCCEED();
}

// ---------- json writer ----------

TEST(JsonWriterTest, RendersScalars) {
  auto doc = DocBuilder().Field("a", 1).Field("s", "x\"y").Build();
  EXPECT_EQ(ToJson(doc), "{\"a\": 1, \"s\": \"x\\\"y\"}");
}

TEST(JsonWriterTest, RendersDatesAsIso) {
  const std::string text =
      ToJson(Value::DateTime(1530403200000));
  EXPECT_EQ(text, "ISODate(\"2018-07-01T00:00:00.000Z\")");
}

TEST(JsonWriterTest, RendersGeoJsonPoint) {
  const std::string text = ToJson(GeoJsonPoint(23.5, 37.25));
  EXPECT_EQ(text,
            "{\"type\": \"Point\", \"coordinates\": [23.5, 37.25]}");
}

}  // namespace
}  // namespace stix::bson
