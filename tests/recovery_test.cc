// Crash-recovery matrix: every simulated crash point × every approach ×
// both collection layouts. Each case runs a workload, crashes at the armed
// point, recovers the store from disk, and diffs the queryable state
// against the oracle of acknowledged writes:
//
//   acked ⊆ recovered ⊆ acked ∪ uncertain
//
// where `uncertain` is the set of writes that returned an error after the
// crash was armed — a write may die before its journal commit (lost) or
// after it (durable but unacknowledged), and both outcomes are legal.
// Clean-shutdown round trips, delete replay, recover-twice idempotence and
// recover-then-{balance,migrate} interleavings ride on the same fixture.

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "st/st_store.h"
#include "storage/checkpoint.h"
#include "temp_dir.h"

namespace stix::st {
namespace {

using bson::Value;

constexpr int64_t kHourMs = 3600 * 1000;
const geo::Rect kEverywhere{{-20, -20}, {30, 30}};

struct CrashCase {
  const char* crash_point;  // nullptr = no crash (clean shutdown)
  ApproachKind kind;
  bool bucketed;
};

const char* KindLabel(ApproachKind kind) {
  // ApproachName(kHilStar) is "hil*", which gtest rejects in test names.
  switch (kind) {
    case ApproachKind::kBslST: return "bslST";
    case ApproachKind::kBslTS: return "bslTS";
    case ApproachKind::kHil: return "hil";
    case ApproachKind::kHilStar: return "hilStar";
  }
  return "unknown";
}

std::string CaseName(const ::testing::TestParamInfo<CrashCase>& info) {
  return std::string(info.param.crash_point ? info.param.crash_point
                                            : "cleanShutdown") +
         "_" + KindLabel(info.param.kind) +
         (info.param.bucketed ? "_bucketed" : "_row");
}

class RecoveryTest : public ::testing::TestWithParam<CrashCase> {
 protected:
  void TearDown() override { FailPointRegistry::Instance().DisableAll(); }

  StStoreOptions MakeOptions() const {
    StStoreOptions options;
    options.approach.kind = GetParam().kind;
    options.cluster.num_shards = 3;
    options.cluster.chunk_max_bytes = 16 * 1024;
    options.cluster.seed = 77;
    options.cluster.durability.data_dir = dir_.path();
    options.cluster.durability.wal.sync_every_commits = 1;
    options.cluster.durability.checkpoint_wal_bytes = 64 * 1024;
    if (GetParam().bucketed) {
      storage::BucketLayout layout;
      layout.window_ms = kHourMs;
      layout.max_points = 16;
      options.bucket = layout;
    }
    return options;
  }

  bson::Document MakeDoc(int64_t id) {
    bson::Document doc;
    doc.Append("_id", Value::Int64(id));
    doc.Append("location",
               Value::MakeDocument(bson::GeoJsonPoint(
                   rng_.NextDouble(0, 10), rng_.NextDouble(0, 10))));
    doc.Append("date", Value::DateTime(30000LL * id));
    doc.Append("vehicleId", Value::Int32(static_cast<int32_t>(id % 5)));
    return doc;
  }

  static void ArmCrash(const char* name) {
    FailPoint* fp = FailPointRegistry::Instance().Find(name);
    ASSERT_NE(fp, nullptr) << name;
    FailPoint::Config config;
    config.error_code = StatusCode::kInternal;
    config.error_message = std::string("injected crash at ") + name;
    fp->Enable(config);
  }

  /// Full-window query → sorted ids; fails the test on duplicates.
  static std::vector<int64_t> QueryIds(const StStore& store) {
    const StQueryResult res =
        store.Query(kEverywhere, 0, 30000LL * 1000000);
    std::vector<int64_t> ids;
    for (const bson::Document& doc : res.cluster.docs) {
      const Value* id = doc.Get("_id");
      EXPECT_NE(id, nullptr);
      if (id != nullptr) ids.push_back(id->AsInt64());
    }
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
        << "duplicate _id in recovered query result";
    return ids;
  }

  static void ExpectOracleHolds(const std::vector<int64_t>& recovered,
                                const std::set<int64_t>& acked,
                                const std::set<int64_t>& uncertain) {
    const std::set<int64_t> got(recovered.begin(), recovered.end());
    for (const int64_t id : acked) {
      EXPECT_TRUE(got.count(id)) << "acknowledged write lost: _id " << id;
    }
    for (const int64_t id : got) {
      EXPECT_TRUE(acked.count(id) || uncertain.count(id))
          << "recovered a write that was neither acked nor in flight: _id "
          << id;
    }
  }

  stix::testing::TempDir dir_;
  Rng rng_{99};
};

TEST_P(RecoveryTest, CrashRecoverDiffAgainstOracle) {
  const CrashCase& c = GetParam();
  StStoreOptions options = MakeOptions();
  std::set<int64_t> acked, uncertain;

  {
    StStore store(options);
    ASSERT_TRUE(store.Setup().ok());
    ASSERT_TRUE(store.durable());

    // Phase 1 (clean): bulk insert with a mid-workload checkpoint, so
    // recovery exercises checkpoint-load + WAL-tail replay, not just one
    // of them.
    for (int64_t id = 0; id < 150; ++id) {
      ASSERT_TRUE(store.Insert(MakeDoc(id)).ok()) << "id " << id;
      acked.insert(id);
      if (id == 75) {
        ASSERT_TRUE(store.Checkpoint().ok());
      }
    }

    if (c.crash_point == nullptr) {
      // Clean shutdown: everything flushed and checkpointed.
      ASSERT_TRUE(store.Checkpoint().ok());
    } else if (std::string(c.crash_point) == "checkpointMidWrite") {
      ArmCrash(c.crash_point);
      EXPECT_FALSE(store.Checkpoint().ok());
    } else {
      // Phase 2: arm the WAL crash point and write until the store dies.
      // A failed write may be lost or durable-but-unacknowledged
      // depending on where in the commit path it died — either is legal,
      // so it lands in `uncertain`.
      ArmCrash(c.crash_point);
      for (int64_t id = 150; id < 170; ++id) {
        if (store.Insert(MakeDoc(id)).ok()) {
          acked.insert(id);
        } else {
          uncertain.insert(id);
          break;  // the store is dead from here on
        }
      }
      EXPECT_FALSE(uncertain.empty())
          << "armed crash point never fired; the case tests nothing";
    }
    FailPointRegistry::Instance().DisableAll();
  }  // destructor = the crash: in-memory state is gone

  const Result<std::unique_ptr<StStore>> recovered = StStore::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_TRUE((*recovered)->FlushBuckets().ok());

  const std::vector<int64_t> ids = QueryIds(**recovered);
  ExpectOracleHolds(ids, acked, uncertain);

  // The recovered store is live: new writes land, a balance pass moves
  // chunks durably, and the full state stays intact.
  for (int64_t id = 1000; id < 1010; ++id) {
    ASSERT_TRUE((*recovered)->Insert(MakeDoc(id)).ok());
    acked.insert(id);
  }
  ASSERT_TRUE((*recovered)->FinishLoad().ok());
  ExpectOracleHolds(QueryIds(**recovered), acked, uncertain);
}

INSTANTIATE_TEST_SUITE_P(
    CrashMatrix, RecoveryTest,
    ::testing::ValuesIn([] {
      std::vector<CrashCase> cases;
      const ApproachKind kinds[] = {ApproachKind::kBslST, ApproachKind::kBslTS,
                                    ApproachKind::kHil, ApproachKind::kHilStar};
      const char* points[] = {nullptr, "walBeforeCommit", "walTornTail",
                              "walAfterCommitBeforeAck", "checkpointMidWrite"};
      for (const char* point : points) {
        for (const ApproachKind kind : kinds) {
          for (const bool bucketed : {false, true}) {
            cases.push_back({point, kind, bucketed});
          }
        }
      }
      return cases;
    }()),
    CaseName);

// ---------- targeted interleavings beyond the matrix ----------

class RecoveryScenarioTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Instance().DisableAll(); }
  stix::testing::TempDir dir_;
};

StStoreOptions DurableOptions(const std::string& data_dir, bool bucketed) {
  StStoreOptions options;
  options.approach.kind = ApproachKind::kHil;
  options.cluster.num_shards = 3;
  options.cluster.chunk_max_bytes = 16 * 1024;
  options.cluster.seed = 7;
  options.cluster.durability.data_dir = data_dir;
  if (bucketed) {
    storage::BucketLayout layout;
    layout.window_ms = kHourMs;
    layout.max_points = 16;
    options.bucket = layout;
  }
  return options;
}

bson::Document ScenarioDoc(int64_t id, double lon, double lat) {
  bson::Document doc;
  doc.Append("_id", Value::Int64(id));
  doc.Append("location", Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
  doc.Append("date", Value::DateTime(30000LL * id));
  doc.Append("vehicleId", Value::Int32(static_cast<int32_t>(id % 5)));
  return doc;
}

TEST_F(RecoveryScenarioTest, DeleteReplayRemovesDocuments) {
  const StStoreOptions options = DurableOptions(dir_.path(), false);
  {
    StStore store(options);
    ASSERT_TRUE(store.Setup().ok());
    // Left half in [0,4], right half in [6,10]: the delete hits only the
    // left half, all without any checkpoint, so recovery must replay both
    // the kInsert and the kRemove records.
    for (int64_t id = 0; id < 60; ++id) {
      const double lon = (id % 2 == 0) ? 2.0 : 8.0;
      ASSERT_TRUE(store.Insert(ScenarioDoc(id, lon, 5.0)).ok());
    }
    const Result<uint64_t> removed =
        store.Delete({{0, 0}, {4, 10}}, 0, 30000LL * 1000000);
    ASSERT_TRUE(removed.ok());
    EXPECT_EQ(*removed, 30u);
  }
  const Result<std::unique_ptr<StStore>> recovered = StStore::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const StQueryResult res =
      (*recovered)->Query(kEverywhere, 0, 30000LL * 1000000);
  EXPECT_EQ(res.cluster.docs.size(), 30u);
  for (const bson::Document& doc : res.cluster.docs) {
    EXPECT_EQ(doc.Get("_id")->AsInt64() % 2, 1) << "deleted doc came back";
  }
}

TEST_F(RecoveryScenarioTest, RecoverTwiceIsIdenticalToRecoverOnce) {
  const StStoreOptions options = DurableOptions(dir_.path(), true);
  {
    StStore store(options);
    ASSERT_TRUE(store.Setup().ok());
    for (int64_t id = 0; id < 80; ++id) {
      ASSERT_TRUE(store.Insert(ScenarioDoc(id, 1.0 + (id % 9), 5.0)).ok());
    }
    // No flush, no checkpoint: a maximally dirty shutdown — most points
    // live only in the catalog journal.
  }
  std::vector<size_t> sizes;
  for (int round = 0; round < 2; ++round) {
    const Result<std::unique_ptr<StStore>> recovered =
        StStore::Recover(options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    const StQueryResult res =
        (*recovered)->Query(kEverywhere, 0, 30000LL * 1000000);
    sizes.push_back(res.cluster.docs.size());
    // The recovered store is destroyed with its re-buffered points
    // unflushed again — round 2 must replay to the identical state.
  }
  EXPECT_EQ(sizes[0], 80u);
  EXPECT_EQ(sizes[0], sizes[1]);
}

TEST_F(RecoveryScenarioTest, CheckpointFilesAppearAndPruneOnCleanShutdown) {
  const StStoreOptions options = DurableOptions(dir_.path(), false);
  {
    StStore store(options);
    ASSERT_TRUE(store.Setup().ok());
    for (int64_t id = 0; id < 40; ++id) {
      ASSERT_TRUE(store.Insert(ScenarioDoc(id, 1.0 + (id % 9), 5.0)).ok());
    }
    ASSERT_TRUE(store.Checkpoint().ok());
    for (int64_t id = 40; id < 80; ++id) {
      ASSERT_TRUE(store.Insert(ScenarioDoc(id, 1.0 + (id % 9), 5.0)).ok());
    }
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  for (int shard = 0; shard < 3; ++shard) {
    const std::string shard_dir =
        dir_.path() + "/shard-" + std::to_string(shard);
    const std::vector<storage::CheckpointRef> refs =
        storage::ListCheckpoints(shard_dir);
    ASSERT_EQ(refs.size(), 1u) << "stale checkpoints not pruned, shard "
                               << shard;
    // The WAL was truncated behind the checkpoint.
    const Result<storage::WalScan> scan =
        storage::ReadWal(shard_dir + "/wal.log");
    ASSERT_TRUE(scan.ok());
    EXPECT_TRUE(scan->committed.empty()) << "shard " << shard;
  }
  const Result<std::unique_ptr<StStore>> recovered = StStore::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const StQueryResult res =
      (*recovered)->Query(kEverywhere, 0, 30000LL * 1000000);
  EXPECT_EQ(res.cluster.docs.size(), 80u);
}

TEST_F(RecoveryScenarioTest, RecoverThenMigrateViaZones) {
  const StStoreOptions options = DurableOptions(dir_.path(), false);
  {
    StStore store(options);
    ASSERT_TRUE(store.Setup().ok());
    for (int64_t id = 0; id < 120; ++id) {
      ASSERT_TRUE(store.Insert(ScenarioDoc(id, 1.0 + (id % 9),
                                           1.0 + (id % 7))).ok());
    }
    ASSERT_TRUE(store.FinishLoad().ok());
  }
  {
    const Result<std::unique_ptr<StStore>> recovered =
        StStore::Recover(options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    // Zone-driven migrations move chunks between shards right after
    // recovery; every move is topology-journaled + durably applied, so the
    // data set is unchanged...
    ASSERT_TRUE((*recovered)->ConfigureZones().ok());
    const StQueryResult res =
        (*recovered)->Query(kEverywhere, 0, 30000LL * 1000000);
    EXPECT_EQ(res.cluster.docs.size(), 120u);
  }

  // ... including across a second crash+recovery after the migrations.
  const Result<std::unique_ptr<StStore>> again = StStore::Recover(options);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  const StQueryResult res2 =
      (*again)->Query(kEverywhere, 0, 30000LL * 1000000);
  EXPECT_EQ(res2.cluster.docs.size(), 120u);
}

// Regression: WAL LSNs must stay monotonic *across* recoveries. A shard's
// log is truncated at each checkpoint, so the reopened (empty) log would
// restart numbering at 1 — below the checkpoint horizon — and writes made
// after a recovery would be skipped by the next recovery's `lsn <= ckpt`
// replay filter as "already inside the checkpoint". Same trap for the
// catalog journal vs the wlsns arrays of already-flushed buckets. Found by
// stix_fuzz --crash (seed 20004); both layouts covered here.
TEST_F(RecoveryScenarioTest, WritesAfterRecoverySurviveNextRecovery) {
  for (const bool bucketed : {false, true}) {
    const stix::testing::TempDir dir;
    const StStoreOptions options = DurableOptions(dir.path(), bucketed);
    {
      StStore store(options);
      ASSERT_TRUE(store.Setup().ok());
      for (int64_t id = 0; id < 60; ++id) {
        ASSERT_TRUE(store.Insert(ScenarioDoc(id, 1.0 + (id % 9), 5.0)).ok());
      }
      // Checkpoint (truncates the shard WALs) and, on the bucketed layout,
      // flush (truncates the catalog journal) so both logs reopen empty.
      ASSERT_TRUE(store.Checkpoint().ok());
    }
    {
      const Result<std::unique_ptr<StStore>> recovered =
          StStore::Recover(options);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      for (int64_t id = 60; id < 100; ++id) {
        ASSERT_TRUE(
            (*recovered)->Insert(ScenarioDoc(id, 1.0 + (id % 9), 5.0)).ok());
      }
      // Dirty shutdown: the new writes live only in the reopened logs.
    }
    const Result<std::unique_ptr<StStore>> again = StStore::Recover(options);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    const StQueryResult res =
        (*again)->Query(kEverywhere, 0, 30000LL * 1000000);
    EXPECT_EQ(res.cluster.docs.size(), 100u)
        << (bucketed ? "bucket" : "row")
        << " layout lost post-recovery writes";
  }
}

// Regression: recovery replays the WAL/checkpoint straight into the record
// store without feeding ShardStatistics::Observe, so a recovered shard's
// statistics report zero documents. MarkStale() alone cannot repair that —
// zero-doc statistics take the "empty shard" short-circuit and claim to be
// reliable, so the cost model would happily estimate 0 keys/docs for every
// plan over a populated shard. Recovery must rebuild the statistics from
// the record store outright; this locks that in.
TEST_F(RecoveryScenarioTest, RecoveredShardStatsAreRebuiltAndReliable) {
  StStoreOptions options = DurableOptions(dir_.path(), false);
  options.approach.kind = ApproachKind::kBslST;  // two candidate plans
  {
    StStore store(options);
    ASSERT_TRUE(store.Setup().ok());
    for (int64_t id = 0; id < 150; ++id) {
      const double lon = 0.5 + (id % 90) / 10.0;
      ASSERT_TRUE(store.Insert(ScenarioDoc(id, lon, 5.0)).ok());
    }
    ASSERT_TRUE(store.FinishLoad().ok());
    ASSERT_TRUE(store.Checkpoint().ok());
  }

  const Result<std::unique_ptr<StStore>> recovered = StStore::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // Before any query runs: every populated shard's statistics must already
  // agree with its record store and admit to being usable for estimation.
  for (const auto& shard : (*recovered)->cluster().shards()) {
    const uint64_t stored = shard->collection().records().num_records();
    const query::stats::ShardStatistics& stats = shard->statistics();
    EXPECT_EQ(stats.total_docs(), stored) << "shard " << shard->id();
    EXPECT_TRUE(stats.ReliableForEstimation()) << "shard " << shard->id();
    if (stored > 0) {
      // The whole date span must estimate roughly the full shard, not 0.
      EXPECT_GT(stats.EstimateRange(kDateField, 0, 30000LL * 1000000), 0.0)
          << "shard " << shard->id();
    }
  }

  // And a cost-planned query must actually use them: plans_estimated moves
  // and the cost-picked shards carry non-zero key estimates (the broken
  // behaviour was "reliable" zero-histograms estimating 0 for everything).
  const uint64_t estimated_before =
      MetricsRegistry::Instance().GetCounter("planner.plans_estimated")
          .value();
  const StExplain explain =
      (*recovered)->Explain({{0.0, 4.0}, {10.0, 6.0}}, 0, 30000LL * 1000000);
  EXPECT_GT(MetricsRegistry::Instance()
                .GetCounter("planner.plans_estimated")
                .value(),
            estimated_before);
  bool saw_positive_estimate = false;
  for (const cluster::ShardExplain& se : explain.cluster.shards) {
    if (se.planned_by == "cost" && se.estimated_keys > 0.0) {
      saw_positive_estimate = true;
    }
  }
  EXPECT_TRUE(saw_positive_estimate)
      << "no shard planned by cost with a positive estimate after recovery";
}

}  // namespace
}  // namespace stix::st
