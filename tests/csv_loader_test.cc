#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "workload/csv_loader.h"

namespace stix::workload {
namespace {

TEST(CsvParseTest, DefaultSchemaIsoDate) {
  const Result<bson::Document> doc = ParseCsvRecord(
      "veh42,23.727539,37.983810,2018-10-01T08:34:40.067Z", CsvSchema{});
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Get("id")->AsString(), "veh42");
  double lon, lat;
  ASSERT_TRUE(bson::ExtractGeoJsonPoint(*doc->Get("location"), &lon, &lat));
  EXPECT_DOUBLE_EQ(lon, 23.727539);
  EXPECT_DOUBLE_EQ(lat, 37.983810);
  EXPECT_EQ(doc->Get("date")->AsDateTime(), 1538382880067);
}

TEST(CsvParseTest, EpochMillisDate) {
  const Result<bson::Document> doc =
      ParseCsvRecord("1,23.5,37.9,1538382880067", CsvSchema{});
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("date")->AsDateTime(), 1538382880067);
}

TEST(CsvParseTest, CustomColumnOrderAndSeparator) {
  CsvSchema schema;
  schema.date_column = 0;
  schema.id_column = 1;
  schema.longitude_column = 2;
  schema.latitude_column = 3;
  schema.separator = ';';
  const Result<bson::Document> doc =
      ParseCsvRecord("2018-07-01T00:00:00;x;21.7;38.2", schema);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("id")->AsString(), "x");
  EXPECT_EQ(doc->Get("date")->AsDateTime(), 1530403200000);
}

TEST(CsvParseTest, RejectsBadRecords) {
  EXPECT_FALSE(ParseCsvRecord("only,three,columns", CsvSchema{}).ok());
  EXPECT_FALSE(
      ParseCsvRecord("1,not-a-number,37.9,2018-07-01T00:00:00", CsvSchema{})
          .ok());
  EXPECT_FALSE(
      ParseCsvRecord("1,23.5,37.9,yesterday", CsvSchema{}).ok());
  EXPECT_FALSE(
      ParseCsvRecord("1,999.0,37.9,2018-07-01T00:00:00", CsvSchema{}).ok());
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/stix_csv_loader_test.csv";
    std::ofstream out(path_);
    out << "id,lon,lat,date\n";
    out << "a,23.70,37.95,2018-07-02T10:00:00\n";
    out << "b,23.72,37.96,2018-07-02T11:00:00\r\n";  // CRLF line
    out << "\n";                                     // blank line skipped
    out << "c,23.74,37.97,2018-07-02T12:00:00\n";
  }
  void TearDown() override { remove(path_.c_str()); }

  std::string path_;
};

TEST_F(CsvFileTest, LoadsIntoStore) {
  st::StStoreOptions options;
  options.approach.kind = st::ApproachKind::kHil;
  options.cluster.num_shards = 2;
  st::StStore store(options);
  ASSERT_TRUE(store.Setup().ok());

  CsvSchema schema;
  schema.has_header = true;
  const Result<uint64_t> loaded = LoadCsvFile(path_, schema, &store);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 3u);
  EXPECT_EQ(store.cluster().total_documents(), 3u);

  // The loaded points answer spatio-temporal queries.
  int64_t t0 = 0, t1 = 0;
  ParseIsoDate("2018-07-02T10:30:00", &t0);
  ParseIsoDate("2018-07-02T23:00:00", &t1);
  const st::StQueryResult r =
      store.Query({{23.6, 37.9}, {23.8, 38.0}}, t0, t1);
  EXPECT_EQ(r.cluster.docs.size(), 2u);  // b and c
}

TEST_F(CsvFileTest, MissingFileIsNotFound) {
  st::StStoreOptions options;
  options.cluster.num_shards = 1;
  st::StStore store(options);
  ASSERT_TRUE(store.Setup().ok());
  const Result<uint64_t> r =
      LoadCsvFile("/nonexistent/file.csv", CsvSchema{}, &store);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace stix::workload
