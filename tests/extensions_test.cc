// Tests for the future-work extensions built on top of the paper's system:
// kNN via expanding-ring queries and workload-aware adaptive zones.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "st/adaptive.h"
#include "st/knn.h"

namespace stix::st {
namespace {

using bson::Value;

constexpr int64_t kBegin = 1530403200000;
constexpr int64_t kStepMs = 60000;

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StStoreOptions options;
    options.approach.kind = ApproachKind::kHil;
    options.approach.dataset_mbr = geo::Rect{{23.0, 37.0}, {25.0, 39.0}};
    options.cluster.num_shards = 4;
    options.cluster.chunk_max_bytes = 16 * 1024;
    options.cluster.seed = 13;
    store_ = std::make_unique<StStore>(options);
    ASSERT_TRUE(store_->Setup().ok());

    Rng rng(77);
    for (int i = 0; i < kDocs; ++i) {
      // 70% clustered around a hotspot, 30% uniform.
      double lon, lat;
      if (rng.NextBool(0.7)) {
        lon = 23.72 + rng.NextGaussian() * 0.02;
        lat = 37.98 + rng.NextGaussian() * 0.02;
      } else {
        lon = rng.NextDouble(23.0, 25.0);
        lat = rng.NextDouble(37.0, 39.0);
      }
      lon = std::clamp(lon, 23.0, 25.0);
      lat = std::clamp(lat, 37.0, 39.0);
      bson::Document doc;
      doc.Append("seq", Value::Int32(i));
      doc.Append(kLocationField,
                 Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
      doc.Append(kDateField, Value::DateTime(kBegin + i * kStepMs));
      lons_.push_back(lon);
      lats_.push_back(lat);
      ASSERT_TRUE(store_->Insert(std::move(doc)).ok());
    }
    ASSERT_TRUE(store_->FinishLoad().ok());
  }

  // Exact kNN by full scan of the generator's record.
  std::vector<std::pair<double, int>> NaiveKnn(geo::Point center, size_t k,
                                               int64_t t0, int64_t t1) const {
    std::vector<std::pair<double, int>> all;
    for (int i = 0; i < kDocs; ++i) {
      const int64_t t = kBegin + i * kStepMs;
      if (t < t0 || t > t1) continue;
      all.emplace_back(
          geo::HaversineMeters(center, {lons_[i], lats_[i]}), i);
    }
    std::sort(all.begin(), all.end());
    if (all.size() > k) all.resize(k);
    return all;
  }

  static constexpr int kDocs = 3000;
  std::unique_ptr<StStore> store_;
  std::vector<double> lons_, lats_;
};

TEST_F(ExtensionsTest, KnnMatchesNaive) {
  const geo::Point center{23.72, 37.98};
  const int64_t t0 = kBegin;
  const int64_t t1 = kBegin + kDocs * kStepMs;
  KnnOptions options;
  options.k = 15;
  const KnnResult result = KnnQuery(*store_, center, t0, t1, options);
  const auto naive = NaiveKnn(center, 15, t0, t1);

  ASSERT_EQ(result.neighbors.size(), naive.size());
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(result.neighbors[i].doc.Get("seq")->AsInt32(),
              naive[i].second)
        << "rank " << i;
    EXPECT_NEAR(result.neighbors[i].distance_m, naive[i].first, 1e-6);
  }
  // Distances ascend.
  for (size_t i = 1; i < result.neighbors.size(); ++i) {
    EXPECT_GE(result.neighbors[i].distance_m,
              result.neighbors[i - 1].distance_m);
  }
}

TEST_F(ExtensionsTest, KnnInSparseAreaExpands) {
  // Far from the hotspot: the initial 250 m ring is empty, so the search
  // must expand several times and still find the right answer.
  const geo::Point center{24.8, 38.8};
  const int64_t t0 = kBegin;
  const int64_t t1 = kBegin + kDocs * kStepMs;
  KnnOptions options;
  options.k = 5;
  const KnnResult result = KnnQuery(*store_, center, t0, t1, options);
  const auto naive = NaiveKnn(center, 5, t0, t1);
  ASSERT_EQ(result.neighbors.size(), 5u);
  EXPECT_GT(result.expansions, 2);
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(result.neighbors[i].doc.Get("seq")->AsInt32(),
              naive[i].second);
  }
}

TEST_F(ExtensionsTest, KnnRespectsTimeWindow) {
  const geo::Point center{23.72, 37.98};
  const int64_t t0 = kBegin + 1000 * kStepMs;
  const int64_t t1 = kBegin + 1500 * kStepMs;
  KnnOptions options;
  options.k = 8;
  const KnnResult result = KnnQuery(*store_, center, t0, t1, options);
  for (const Neighbor& n : result.neighbors) {
    const int64_t t = n.doc.Get(kDateField)->AsDateTime();
    EXPECT_GE(t, t0);
    EXPECT_LE(t, t1);
  }
  const auto naive = NaiveKnn(center, 8, t0, t1);
  ASSERT_EQ(result.neighbors.size(), naive.size());
  EXPECT_EQ(result.neighbors.front().doc.Get("seq")->AsInt32(),
            naive.front().second);
}

TEST_F(ExtensionsTest, KnnWithKLargerThanMatchesReturnsAll) {
  const geo::Point center{23.72, 37.98};
  const int64_t t0 = kBegin;
  const int64_t t1 = kBegin + 10 * kStepMs;  // only ~11 documents exist
  KnnOptions options;
  options.k = 50;
  const KnnResult result = KnnQuery(*store_, center, t0, t1, options);
  EXPECT_EQ(result.neighbors.size(), 11u);
}

TEST_F(ExtensionsTest, WorkloadAwareZonesBalanceLoad) {
  // A workload hammering the hotspot.
  std::vector<WorkloadQuery> workload;
  const geo::Rect hot{{23.68, 37.94}, {23.76, 38.02}};
  workload.push_back(
      WorkloadQuery{hot, kBegin, kBegin + kDocs * kStepMs, 10.0});
  const Result<std::vector<cluster::ZoneRange>> zones =
      ComputeWorkloadAwareZones(*store_, workload);
  ASSERT_TRUE(zones.ok()) << zones.status().ToString();
  EXPECT_GT(zones->size(), 1u);
  EXPECT_TRUE(cluster::ZonesCoverWholeSpace(*zones));

  ASSERT_TRUE(ApplyWorkloadAwareZones(store_.get(), workload).ok());
  EXPECT_EQ(store_->cluster().total_documents(),
            static_cast<uint64_t>(kDocs));

  // The hot query is now served by more than one node: its covering spans
  // several equal-load zones.
  const StQueryResult r =
      store_->Query(hot, kBegin, kBegin + kDocs * kStepMs);
  EXPECT_GT(r.cluster.nodes_contacted, 1);

  // Queries still return correct results after the migration.
  std::set<int> ids;
  for (const bson::Document& doc : r.cluster.docs) {
    ids.insert(doc.Get("seq")->AsInt32());
  }
  size_t naive = 0;
  for (int i = 0; i < kDocs; ++i) {
    naive += hot.Contains({lons_[i], lats_[i]});
  }
  EXPECT_EQ(ids.size(), naive);
}

TEST_F(ExtensionsTest, WorkloadAwareZonesSpreadHotRegionWiderThanBucketAuto) {
  // Under equi-count ($bucketAuto) zones, the hotspot (70% of the data in
  // ~0.04 deg^2) concentrates on few shards; equal-load zones cut it finer.
  std::vector<WorkloadQuery> workload;
  const geo::Rect hot{{23.70, 37.96}, {23.74, 38.00}};
  workload.push_back(
      WorkloadQuery{hot, kBegin, kBegin + kDocs * kStepMs, 1.0});

  const Result<std::vector<cluster::ZoneRange>> adaptive =
      ComputeWorkloadAwareZones(*store_, workload);
  ASSERT_TRUE(adaptive.ok());

  // Count zones whose range intersects the hot covering.
  const auto translated = store_->approach().TranslateQuery(
      hot, kBegin, kBegin + kDocs * kStepMs);
  std::set<int> adaptive_shards;
  for (const cluster::ZoneRange& z : *adaptive) {
    adaptive_shards.insert(z.shard_id);
  }
  EXPECT_GE(adaptive_shards.size(), 3u)
      << "equal-load zoning should use most shards";
}

TEST_F(ExtensionsTest, WorkloadAwareZonesRejectEmptyWorkload) {
  EXPECT_FALSE(ComputeWorkloadAwareZones(*store_, {}).ok());
}

}  // namespace
}  // namespace stix::st
