#include <atomic>
#include <numeric>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "cluster/balancer.h"
#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "keystring/keystring.h"

namespace stix::cluster {
namespace {

using bson::Value;

bson::Document Doc(int id, double lon, double lat, int64_t date_ms,
                   int64_t hilbert) {
  bson::Document doc;
  doc.Append("_id", Value::Int64(id));
  doc.Append("location",
             Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
  doc.Append("date", Value::DateTime(date_ms));
  doc.Append("hilbertIndex", Value::Int64(hilbert));
  doc.Append("pad", Value::String(std::string(120, 'p')));
  return doc;
}

// ---------- ShardKeyPattern ----------

TEST(ShardKeyPatternTest, RangeKeyIsKeyStringOfFields) {
  const ShardKeyPattern pattern({"hilbertIndex", "date"},
                                ShardingStrategy::kRange);
  const bson::Document doc = Doc(1, 0, 0, 777, 42);
  EXPECT_EQ(pattern.KeyOf(doc),
            keystring::Encode({Value::Int64(42), Value::DateTime(777)}));
  EXPECT_EQ(pattern.DebugString(), "{hilbertIndex: 1, date: 1}");
}

TEST(ShardKeyPatternTest, MissingFieldKeysAsNull) {
  const ShardKeyPattern pattern({"nope"}, ShardingStrategy::kRange);
  EXPECT_EQ(pattern.KeyOf(Doc(1, 0, 0, 0, 0)),
            keystring::Encode(Value::Null()));
}

TEST(ShardKeyPatternTest, HashedKeysSpread) {
  const ShardKeyPattern pattern({"date"}, ShardingStrategy::kHashed);
  std::set<std::string> keys;
  for (int i = 0; i < 100; ++i) {
    keys.insert(pattern.KeyOf(Doc(i, 0, 0, i, 0)));
  }
  EXPECT_EQ(keys.size(), 100u);
  // Consecutive dates should not produce consecutive hashed keys: check the
  // keys are not in date order.
  const std::string k0 = pattern.KeyOf(Doc(0, 0, 0, 0, 0));
  const std::string k1 = pattern.KeyOf(Doc(1, 0, 0, 1, 0));
  const std::string k2 = pattern.KeyOf(Doc(2, 0, 0, 2, 0));
  EXPECT_FALSE(k0 < k1 && k1 < k2);
}

// ---------- ChunkManager ----------

TEST(ChunkManagerTest, InitialChunkCoversEverything) {
  const ChunkManager cm(3);
  EXPECT_EQ(cm.num_chunks(), 1u);
  EXPECT_TRUE(cm.CheckInvariants());
  EXPECT_EQ(cm.chunk(cm.FindChunkIndex(keystring::Encode(Value::Int64(5))))
                .shard_id,
            3);
}

TEST(ChunkManagerTest, SplitAndFind) {
  ChunkManager cm(0);
  const std::string k10 = keystring::Encode(Value::Int64(10));
  const std::string k20 = keystring::Encode(Value::Int64(20));
  ASSERT_TRUE(cm.Split(0, k10).ok());
  ASSERT_TRUE(cm.Split(1, k20).ok());
  EXPECT_EQ(cm.num_chunks(), 3u);
  EXPECT_TRUE(cm.CheckInvariants());
  EXPECT_EQ(cm.FindChunkIndex(keystring::Encode(Value::Int64(5))), 0u);
  EXPECT_EQ(cm.FindChunkIndex(k10), 1u);  // min is inclusive
  EXPECT_EQ(cm.FindChunkIndex(keystring::Encode(Value::Int64(15))), 1u);
  EXPECT_EQ(cm.FindChunkIndex(keystring::Encode(Value::Int64(99))), 2u);
}

TEST(ChunkManagerTest, SplitRejectsOutOfRangeKeys) {
  ChunkManager cm(0);
  const std::string k = keystring::Encode(Value::Int64(10));
  ASSERT_TRUE(cm.Split(0, k).ok());
  EXPECT_FALSE(cm.Split(1, k).ok());  // equals chunk 1's min
  EXPECT_FALSE(cm.Split(0, keystring::MinKey()).ok());
}

TEST(ChunkManagerTest, IntersectingChunks) {
  ChunkManager cm(0);
  for (int v : {10, 20, 30}) {
    cm.Split(cm.FindChunkIndex(keystring::Encode(Value::Int64(v))),
             keystring::Encode(Value::Int64(v)));
  }
  // Range [15, 25] touches chunks [10,20) and [20,30).
  const auto hits = cm.ChunksIntersecting(
      keystring::Encode(Value::Int64(15)), keystring::Encode(Value::Int64(25)));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 1u);
  EXPECT_EQ(hits[1], 2u);
}

TEST(ChunkManagerTest, SplitAccountingHalves) {
  ChunkManager cm(0);
  cm.chunk(0).bytes = 1000;
  cm.chunk(0).docs = 10;
  cm.Split(0, keystring::Encode(Value::Int64(0)));
  EXPECT_EQ(cm.chunk(0).bytes + cm.chunk(1).bytes, 1000u);
  EXPECT_EQ(cm.chunk(0).docs + cm.chunk(1).docs, 10u);
}

// ---------- zones ----------

TEST(ZonesTest, ZoneForKeyLookup) {
  std::vector<ZoneRange> zones;
  zones.push_back({keystring::MinKey(), keystring::Encode(Value::Int64(10)), 0});
  zones.push_back({keystring::Encode(Value::Int64(10)),
                   keystring::Encode(Value::Int64(20)), 1});
  zones.push_back({keystring::Encode(Value::Int64(20)), keystring::MaxKey(), 2});
  EXPECT_TRUE(ZonesCoverWholeSpace(zones));
  EXPECT_EQ(ZoneForKey(zones, keystring::Encode(Value::Int64(5))), 0);
  EXPECT_EQ(ZoneForKey(zones, keystring::Encode(Value::Int64(10))), 1);
  EXPECT_EQ(ZoneForKey(zones, keystring::Encode(Value::Int64(25))), 2);
}

TEST(ZonesTest, GapsAreDetected) {
  std::vector<ZoneRange> gap;
  gap.push_back({keystring::MinKey(), keystring::Encode(Value::Int64(10)), 0});
  gap.push_back({keystring::Encode(Value::Int64(15)), keystring::MaxKey(), 1});
  EXPECT_FALSE(ZonesCoverWholeSpace(gap));
  EXPECT_EQ(ZoneForKey(gap, keystring::Encode(Value::Int64(12))), -1);
}

// ---------- balancer policy ----------

TEST(BalancerTest, NoMoveWhenBalanced) {
  ChunkManager cm(0);
  cm.Split(0, keystring::Encode(Value::Int64(10)));
  cm.chunk(1).shard_id = 1;
  Rng rng(1);
  EXPECT_FALSE(
      PickNextMigration(cm, 2, {}, BalancerOptions{}, &rng).has_value());
}

TEST(BalancerTest, MovesFromLoadedToEmpty) {
  ChunkManager cm(0);
  for (int v : {10, 20, 30}) {
    cm.Split(cm.FindChunkIndex(keystring::Encode(Value::Int64(v))),
             keystring::Encode(Value::Int64(v)));
  }
  // All 4 chunks on shard 0, 2 shards total.
  Rng rng(1);
  const auto m = PickNextMigration(cm, 2, {}, BalancerOptions{}, &rng);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->to_shard, 1);
}

TEST(BalancerTest, ZoneViolationsComeFirst) {
  ChunkManager cm(0);
  cm.Split(0, keystring::Encode(Value::Int64(10)));
  std::vector<ZoneRange> zones;
  zones.push_back({keystring::MinKey(), keystring::Encode(Value::Int64(10)), 0});
  zones.push_back({keystring::Encode(Value::Int64(10)), keystring::MaxKey(), 1});
  // Chunk 1 belongs to zone of shard 1 but sits on shard 0.
  Rng rng(1);
  const auto m = PickNextMigration(cm, 2, zones, BalancerOptions{}, &rng);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->chunk_index, 1u);
  EXPECT_EQ(m->to_shard, 1);
}

TEST(BalancerTest, StraddlingChunkIsPinnedByOverlapNotMinKey) {
  // Chunks [Min,10) [10,30) [30,Max); zone [20,Max) -> shard 1. The middle
  // chunk straddles the zone boundary: its min key lies outside the zone
  // (min-key classification saw no violation and left it stranded) but its
  // range overlaps the zone, so it is pinned to shard 1.
  ChunkManager cm(0);
  cm.Split(0, keystring::Encode(Value::Int64(10)));
  cm.Split(1, keystring::Encode(Value::Int64(30)));
  cm.chunk(2).shard_id = 1;  // [30,Max) already compliant
  std::vector<ZoneRange> zones;
  zones.push_back(
      {keystring::Encode(Value::Int64(20)), keystring::MaxKey(), 1});
  EXPECT_EQ(ZoneForKey(zones, cm.chunk(1).min), -1);
  EXPECT_EQ(ZoneForChunk(zones, cm.chunk(1)), 1);
  Rng rng(1);
  const auto m = PickNextMigration(cm, 2, zones, BalancerOptions{}, &rng);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->chunk_index, 1u);
  EXPECT_EQ(m->to_shard, 1);
}

TEST(BalancerTest, PinnedChunksDoNotMaskMovableImbalance) {
  // Shard 2 carries four pinned (zone-compliant) chunks; shard 1 carries
  // three movable chunks; shard 0 is empty. Counting all chunks elected the
  // pinned-heavy shard 2 as donor, found nothing movable on it and stalled,
  // hiding the real 3-vs-0 movable imbalance between shards 1 and 0. Counts
  // over movable chunks only must find that move.
  ChunkManager cm(2);
  for (int v : {10, 20, 30, 40, 50, 60}) {
    cm.Split(cm.FindChunkIndex(keystring::Encode(Value::Int64(v))),
             keystring::Encode(Value::Int64(v)));
  }
  // Chunks: [Min,10) [10,20) [20,30) [30,40) on shard 2 (pinned);
  //         [40,50) [50,60) [60,Max) on shard 1 (movable).
  for (size_t i = 4; i < 7; ++i) cm.chunk(i).shard_id = 1;
  std::vector<ZoneRange> zones;
  zones.push_back(
      {keystring::MinKey(), keystring::Encode(Value::Int64(40)), 2});
  Rng rng(1);
  const auto m = PickNextMigration(cm, 3, zones, BalancerOptions{}, &rng);
  ASSERT_TRUE(m.has_value());
  EXPECT_GE(m->chunk_index, 4u);
  EXPECT_EQ(cm.chunk(m->chunk_index).shard_id, 1);
  EXPECT_EQ(m->to_shard, 0);
}

// ---------- Cluster end-to-end ----------

class ClusterTest : public ::testing::Test {
 protected:
  ClusterOptions SmallOptions() {
    ClusterOptions opts;
    opts.num_shards = 4;
    opts.chunk_max_bytes = 8 * 1024;  // force plenty of splits
    opts.balance_every_inserts = 500;
    opts.seed = 5;
    return opts;
  }

  void Load(Cluster* cluster, int n) {
    Rng rng(77);
    for (int i = 0; i < n; ++i) {
      const double lon = rng.NextDouble(0, 10);
      const int64_t date = 60000LL * i;
      const int64_t h = static_cast<int64_t>(lon * 10);  // 100 cells
      ASSERT_TRUE(cluster
                      ->Insert(Doc(i, lon, rng.NextDouble(0, 10), date, h))
                      .ok());
    }
  }
};

TEST_F(ClusterTest, RequiresShardingFirst) {
  Cluster cluster(SmallOptions());
  EXPECT_FALSE(cluster.Insert(Doc(1, 0, 0, 0, 0)).ok());
  EXPECT_FALSE(
      cluster
          .CreateIndex(index::IndexDescriptor(
              "x", {{"date", index::IndexFieldKind::kAscending}}))
          .ok());
}

TEST_F(ClusterTest, ShardingCreatesMandatoryIndexes) {
  Cluster cluster(SmallOptions());
  ASSERT_TRUE(cluster
                  .ShardCollection(ShardKeyPattern(
                      {"date"}, ShardingStrategy::kRange))
                  .ok());
  for (const auto& shard : cluster.shards()) {
    EXPECT_NE(shard->catalog().Get("_id_"), nullptr);
    EXPECT_NE(shard->catalog().Get("date_1"), nullptr);
  }
  EXPECT_EQ(cluster.shard_key_index_name(), "date_1");
  // Double sharding fails.
  EXPECT_FALSE(cluster
                   .ShardCollection(ShardKeyPattern(
                       {"date"}, ShardingStrategy::kRange))
                   .ok());
}

TEST_F(ClusterTest, LoadSplitsAndBalances) {
  Cluster cluster(SmallOptions());
  ASSERT_TRUE(cluster
                  .ShardCollection(ShardKeyPattern(
                      {"date"}, ShardingStrategy::kRange))
                  .ok());
  Load(&cluster, 3000);
  cluster.Balance();

  EXPECT_EQ(cluster.total_documents(), 3000u);
  EXPECT_GT(cluster.chunks().num_chunks(), 8u);
  EXPECT_TRUE(cluster.chunks().CheckInvariants());

  const std::vector<int> counts =
      cluster.chunks().CountsPerShard(cluster.num_shards());
  const int max = *std::max_element(counts.begin(), counts.end());
  const int min = *std::min_element(counts.begin(), counts.end());
  EXPECT_LE(max - min, 1) << "balancer left the cluster uneven";
  // Every shard holds data after balancing.
  for (const auto& shard : cluster.shards()) {
    EXPECT_GT(shard->num_documents(), 0u);
  }
}

TEST_F(ClusterTest, DocumentsLiveOnTheirChunksShard) {
  Cluster cluster(SmallOptions());
  ASSERT_TRUE(cluster
                  .ShardCollection(ShardKeyPattern(
                      {"hilbertIndex", "date"}, ShardingStrategy::kRange))
                  .ok());
  Load(&cluster, 2000);
  cluster.Balance();

  // Re-derive each document's chunk and confirm it is stored there.
  for (const auto& shard : cluster.shards()) {
    shard->collection().records().ForEach(
        [&](storage::RecordId, const bson::Document& doc) {
          const std::string key = cluster.shard_key().KeyOf(doc);
          const Chunk& chunk =
              cluster.chunks().chunk(cluster.chunks().FindChunkIndex(key));
          EXPECT_EQ(chunk.shard_id, shard->id());
        });
  }
}

TEST_F(ClusterTest, QueryMatchesNaiveAcrossShards) {
  Cluster cluster(SmallOptions());
  ASSERT_TRUE(cluster
                  .ShardCollection(ShardKeyPattern(
                      {"date"}, ShardingStrategy::kRange))
                  .ok());
  Load(&cluster, 2000);
  cluster.Balance();

  const query::ExprPtr q = query::MakeRange(
      "date", Value::DateTime(60000LL * 300), Value::DateTime(60000LL * 600));
  const ClusterQueryResult r = cluster.Query(q);
  EXPECT_EQ(r.docs.size(), 301u);
  EXPECT_GT(r.nodes_contacted, 0);
  EXPECT_LE(r.nodes_contacted, cluster.num_shards());
  EXPECT_GE(r.max_keys_examined, 1u);
  EXPECT_LE(r.max_keys_examined, r.total_keys_examined);
}

TEST_F(ClusterTest, RouterTargetsSubsetForRangeOnShardKey) {
  Cluster cluster(SmallOptions());
  ASSERT_TRUE(cluster
                  .ShardCollection(ShardKeyPattern(
                      {"date"}, ShardingStrategy::kRange))
                  .ok());
  Load(&cluster, 3000);
  cluster.Balance();

  // Narrow date range: a strict subset of shards.
  const query::ExprPtr narrow = query::MakeRange(
      "date", Value::DateTime(60000LL * 100), Value::DateTime(60000LL * 140));
  EXPECT_LT(cluster.TargetShards(narrow).size(),
            static_cast<size_t>(cluster.num_shards()));

  // No shard-key constraint: broadcast.
  const query::ExprPtr off_key =
      query::MakeCmp("hilbertIndex", query::CmpOp::kEq, Value::Int64(3));
  EXPECT_EQ(cluster.TargetShards(off_key).size(),
            static_cast<size_t>(cluster.num_shards()));
}

TEST_F(ClusterTest, CompoundShardKeyTargetsByLeadingField) {
  Cluster cluster(SmallOptions());
  ASSERT_TRUE(cluster
                  .ShardCollection(ShardKeyPattern(
                      {"hilbertIndex", "date"}, ShardingStrategy::kRange))
                  .ok());
  Load(&cluster, 3000);
  cluster.Balance();

  const query::ExprPtr q = query::MakeOr(
      {query::MakeRange("hilbertIndex", Value::Int64(10), Value::Int64(15))});
  // Default chunk placement scatters contiguous ranges (the paper's point),
  // so with few shards the narrow range may still touch all of them; zoning
  // on the leading field restores locality and must shrink the target set.
  const size_t default_targets = cluster.TargetShards(q).size();
  ASSERT_TRUE(cluster.SetZonesByBucketAuto("hilbertIndex").ok());
  const size_t zoned_targets = cluster.TargetShards(q).size();
  EXPECT_LE(zoned_targets, default_targets);
  EXPECT_LT(zoned_targets, static_cast<size_t>(cluster.num_shards()));

  const ClusterQueryResult r = cluster.Query(query::MakeAnd(
      {q, query::MakeRange("date", Value::DateTime(0),
                           Value::DateTime(60000LL * 3000))}));
  // Verify against a cross-shard naive count.
  size_t naive = 0;
  for (const auto& shard : cluster.shards()) {
    shard->collection().records().ForEach(
        [&](storage::RecordId, const bson::Document& doc) {
          const int64_t h = doc.Get("hilbertIndex")->AsInt64();
          if (h >= 10 && h <= 15) ++naive;
        });
  }
  EXPECT_EQ(r.docs.size(), naive);
}

TEST_F(ClusterTest, ZonesEnforcePlacementAndPreserveData) {
  Cluster cluster(SmallOptions());
  ASSERT_TRUE(cluster
                  .ShardCollection(ShardKeyPattern(
                      {"hilbertIndex", "date"}, ShardingStrategy::kRange))
                  .ok());
  Load(&cluster, 2000);
  cluster.Balance();

  ASSERT_TRUE(cluster.SetZonesByBucketAuto("hilbertIndex").ok());
  EXPECT_EQ(cluster.total_documents(), 2000u);
  EXPECT_FALSE(cluster.zones().empty());

  // Every chunk now sits on its zone's shard.
  for (const Chunk& chunk : cluster.chunks().chunks()) {
    const int zone_shard = ZoneForKey(cluster.zones(), chunk.min);
    if (zone_shard >= 0) {
      EXPECT_EQ(chunk.shard_id, zone_shard);
    }
  }

  // Queries still correct after migration.
  const query::ExprPtr q = query::MakeOr(
      {query::MakeRange("hilbertIndex", Value::Int64(0), Value::Int64(30))});
  const ClusterQueryResult r = cluster.Query(q);
  size_t naive = 0;
  for (const auto& shard : cluster.shards()) {
    shard->collection().records().ForEach(
        [&](storage::RecordId, const bson::Document& doc) {
          const int64_t h = doc.Get("hilbertIndex")->AsInt64();
          if (h >= 0 && h <= 30) ++naive;
        });
  }
  EXPECT_EQ(r.docs.size(), naive);

  // Zoning on the leading shard-key field shrinks (or keeps) the number of
  // nodes a spatially narrow query touches.
  EXPECT_LE(cluster.TargetShards(q).size(),
            static_cast<size_t>(cluster.num_shards()));
}

TEST_F(ClusterTest, HashedShardingBroadcastsRangeQueries) {
  Cluster cluster(SmallOptions());
  ASSERT_TRUE(cluster
                  .ShardCollection(ShardKeyPattern(
                      {"date"}, ShardingStrategy::kHashed))
                  .ok());
  Load(&cluster, 1000);
  const query::ExprPtr range_q = query::MakeRange(
      "date", Value::DateTime(0), Value::DateTime(60000LL * 100));
  EXPECT_EQ(cluster.TargetShards(range_q).size(),
            static_cast<size_t>(cluster.num_shards()));
  // Equality targets a single shard.
  const query::ExprPtr eq_q =
      query::MakeCmp("date", query::CmpOp::kEq, Value::DateTime(60000LL * 5));
  EXPECT_EQ(cluster.TargetShards(eq_q).size(), 1u);
  // Results still correct under broadcast.
  EXPECT_EQ(cluster.Query(range_q).docs.size(), 101u);
}

TEST_F(ClusterTest, IndexSizeReportCoversAllIndexes) {
  Cluster cluster(SmallOptions());
  ASSERT_TRUE(cluster
                  .ShardCollection(ShardKeyPattern(
                      {"date"}, ShardingStrategy::kRange))
                  .ok());
  ASSERT_TRUE(cluster
                  .CreateIndex(index::IndexDescriptor(
                      "location_2dsphere_date_1",
                      {{"location", index::IndexFieldKind::k2dsphere},
                       {"date", index::IndexFieldKind::kAscending}}))
                  .ok());
  Load(&cluster, 500);
  const auto sizes = cluster.ComputeIndexSizes();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_GT(sizes.at("_id_"), 0u);
  EXPECT_GT(sizes.at("date_1"), 0u);
  EXPECT_GT(sizes.at("location_2dsphere_date_1"), 0u);
}

TEST_F(ClusterTest, DataStatsAggregate) {
  Cluster cluster(SmallOptions());
  ASSERT_TRUE(cluster
                  .ShardCollection(ShardKeyPattern(
                      {"date"}, ShardingStrategy::kRange))
                  .ok());
  Load(&cluster, 400);
  const storage::CollectionStats stats = cluster.ComputeDataStats();
  EXPECT_EQ(stats.num_documents, 400u);
  EXPECT_GT(stats.logical_bytes, 0u);
  EXPECT_LT(stats.compressed_bytes, stats.logical_bytes);
}

TEST_F(ClusterTest, ParallelFanoutMatchesSerial) {
  ClusterOptions opts = SmallOptions();
  Cluster serial(opts);
  opts.parallel_fanout = true;
  Cluster parallel(opts);
  for (Cluster* c : {&serial, &parallel}) {
    ASSERT_TRUE(c->ShardCollection(ShardKeyPattern(
                                       {"date"}, ShardingStrategy::kRange))
                    .ok());
    Load(c, 1500);
    c->Balance();
  }
  const query::ExprPtr q = query::MakeRange(
      "date", Value::DateTime(60000LL * 200), Value::DateTime(60000LL * 900));
  const ClusterQueryResult rs = serial.Query(q);
  const ClusterQueryResult rp = parallel.Query(q);
  EXPECT_EQ(rs.docs.size(), rp.docs.size());
  EXPECT_EQ(rs.nodes_contacted, rp.nodes_contacted);
  EXPECT_EQ(rs.total_keys_examined, rp.total_keys_examined);
  // Result multisets agree.
  auto ids = [](const ClusterQueryResult& r) {
    std::multiset<int64_t> out;
    for (const bson::Document& d : r.docs) out.insert(d.Get("_id")->AsInt64());
    return out;
  };
  EXPECT_EQ(ids(rs), ids(rp));
}

TEST_F(ClusterTest, ParallelFanoutReusesSharedPoolWithoutThreadCreation) {
  ClusterOptions opts = SmallOptions();
  opts.parallel_fanout = true;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster
                  .ShardCollection(ShardKeyPattern(
                      {"date"}, ShardingStrategy::kRange))
                  .ok());
  Load(&cluster, 2000);
  cluster.Balance();

  const query::ExprPtr q = query::MakeRange(
      "date", Value::DateTime(60000LL * 300), Value::DateTime(60000LL * 600));
  // Ensure the query fans out (>1 shard) so the parallel path runs.
  ASSERT_GT(cluster.TargetShards(q).size(), 1u);

  const uint64_t threads_before = ThreadPool::threads_started();
  const uint64_t tasks_before = cluster.exec_pool().tasks_completed();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(cluster.Query(q).docs.size(), 301u);
  }
  EXPECT_EQ(ThreadPool::threads_started(), threads_before)
      << "a query execution created OS threads";
  EXPECT_GT(cluster.exec_pool().tasks_completed(), tasks_before)
      << "the fan-out bypassed the cluster's shared pool";
}

TEST_F(ClusterTest, ConcurrentQueriesShareThePoolSafely) {
  ClusterOptions opts = SmallOptions();
  opts.parallel_fanout = true;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster
                  .ShardCollection(ShardKeyPattern(
                      {"date"}, ShardingStrategy::kRange))
                  .ok());
  Load(&cluster, 2000);
  cluster.Balance();

  const query::ExprPtr q = query::MakeRange(
      "date", Value::DateTime(60000LL * 300), Value::DateTime(60000LL * 600));
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&cluster, &q, &wrong] {
      for (int i = 0; i < 5; ++i) {
        if (cluster.Query(q).docs.size() != 301u) wrong.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(wrong.load(), 0);
}

TEST_F(ClusterTest, JumboChunkWhenOneKeyDominates) {
  ClusterOptions opts = SmallOptions();
  opts.chunk_max_bytes = 4 * 1024;
  opts.balance_every_inserts = 0;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster
                  .ShardCollection(ShardKeyPattern(
                      {"hilbertIndex"}, ShardingStrategy::kRange))
                  .ok());
  // Everything has the same single-field shard key value -> cannot split.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(cluster.Insert(Doc(i, 0, 0, i * 1000, /*hilbert=*/7)).ok());
  }
  bool has_jumbo = false;
  for (const Chunk& chunk : cluster.chunks().chunks()) {
    has_jumbo |= chunk.jumbo;
  }
  EXPECT_TRUE(has_jumbo);
}

TEST_F(ClusterTest, CompoundKeySplitsOnTemporalDimensionForHotCell) {
  // Paper Section 4.2.2: a hot Hilbert cell splits on date.
  ClusterOptions opts = SmallOptions();
  opts.chunk_max_bytes = 4 * 1024;
  opts.balance_every_inserts = 0;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster
                  .ShardCollection(ShardKeyPattern(
                      {"hilbertIndex", "date"}, ShardingStrategy::kRange))
                  .ok());
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(cluster.Insert(Doc(i, 0, 0, i * 1000, /*hilbert=*/7)).ok());
  }
  EXPECT_GT(cluster.chunks().num_chunks(), 1u);
  for (const Chunk& chunk : cluster.chunks().chunks()) {
    EXPECT_FALSE(chunk.jumbo);
  }
}

}  // namespace
}  // namespace stix::cluster
