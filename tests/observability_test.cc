// Observability subsystem: the metrics registry primitives, the bounded
// covering cache, the slow-op profiler, structured explain() across the four
// approaches, and the streaming-accounting regressions the counters exposed.

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "st/st_store.h"

namespace stix {
namespace {

// ---------- Metrics primitives ----------

TEST(MetricsTest, CounterSumsConcurrentIncrements) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), uint64_t{kThreads} * kPerThread);
  c.Increment(42);
  EXPECT_EQ(c.value(), uint64_t{kThreads} * kPerThread + 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, GaugeTracksValueAndHighWater) {
  Gauge g;
  g.Add(5);
  g.UpdateMax();
  g.Add(3);
  g.UpdateMax();
  g.Sub(6);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 8);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max_value(), 0);
}

TEST(MetricsTest, HistogramBucketsQuantilesAndExtremes) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Observe(v);
  h.Observe(0);
  const Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 1001u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_DOUBLE_EQ(snap.Mean(), (1000.0 * 1001.0 / 2.0) / 1001.0);
  // Base-2 buckets bound the quantile estimate to the covering bucket.
  const double p50 = snap.Quantile(0.5);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  EXPECT_LE(snap.Quantile(0.0), snap.Quantile(0.99));
  h.Reset();
  EXPECT_EQ(h.Snap().count, 0u);
}

TEST(MetricsTest, RegistryReturnsStableReferencesAndSnapshots) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter& a = reg.GetCounter("test.registry.counter");
  Counter& b = reg.GetCounter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  a.Increment(7);
  reg.GetGauge("test.registry.gauge").Set(-3);
  reg.GetHistogram("test.registry.histo").Observe(17);

  const std::vector<std::string> names = reg.CounterNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.registry.counter"),
            names.end());

  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"test.registry.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.registry.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.registry.histo\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

}  // namespace
}  // namespace stix

namespace stix::st {
namespace {

using bson::Value;

geo::Rect RectAt(double lon, double lat, double w, double h) {
  return geo::Rect{{lon, lat}, {lon + w, lat + h}};
}

// ---------- Covering cache: bounded LRU (regression for unbounded growth)

ApproachConfig SmallHilConfig(size_t capacity) {
  ApproachConfig config;
  config.kind = ApproachKind::kHil;
  config.hilbert_order = 6;  // cheap coverings; cache behaviour is identical
  config.cover_cache_capacity = capacity;
  return config;
}

TEST(CoverCacheTest, StaysBoundedUnderManyDistinctRects) {
  const Approach a(SmallHilConfig(256));
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double lon = rng.NextDouble(-179.0, 178.0);
    const double lat = rng.NextDouble(-89.0, 88.0);
    // Distinct windows too, so every translation is a distinct key.
    (void)a.TranslateQuery(RectAt(lon, lat, 0.5, 0.5), i, i + 1000);
  }
  EXPECT_LE(a.cover_cache_size(), 256u);
  const CoverCacheStats stats = a.cover_cache_stats();
  EXPECT_EQ(stats.misses, 10000u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.evictions, stats.misses - a.cover_cache_size());
}

TEST(CoverCacheTest, EvictsLeastRecentlyUsedNotMostRecent) {
  const Approach a(SmallHilConfig(2));
  const geo::Rect ra = RectAt(10, 10, 1, 1);
  const geo::Rect rb = RectAt(20, 20, 1, 1);
  const geo::Rect rc = RectAt(30, 30, 1, 1);
  (void)a.TranslateQuery(ra, 0, 1);  // miss  {A}
  (void)a.TranslateQuery(rb, 0, 1);  // miss  {B, A}
  (void)a.TranslateQuery(ra, 0, 1);  // hit   {A, B} — A refreshed
  (void)a.TranslateQuery(rc, 0, 1);  // miss  {C, A} — evicts B, not A
  EXPECT_EQ(a.cover_cache_size(), 2u);
  EXPECT_EQ(a.cover_cache_stats().evictions, 1u);

  EXPECT_TRUE(a.TranslateQuery(ra, 0, 1).cache_hit);   // A survived
  EXPECT_FALSE(a.TranslateQuery(rb, 0, 1).cache_hit);  // B was evicted
}

TEST(CoverCacheTest, RepeatedShapeIsServedFromCache) {
  const Approach a(SmallHilConfig(64));
  const geo::Rect r = RectAt(23.5, 37.5, 0.4, 0.4);
  const TranslatedQuery first = a.TranslateQuery(r, 100, 200);
  EXPECT_FALSE(first.cache_hit);
  const TranslatedQuery second = a.TranslateQuery(r, 100, 200);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.cover_millis, 0.0);
  EXPECT_EQ(second.num_ranges, first.num_ranges);
  EXPECT_EQ(second.num_singletons, first.num_singletons);
  // The cached expression is the same immutable object.
  EXPECT_EQ(second.expr.get(), first.expr.get());
}

TEST(CoverCacheTest, CapacityZeroDisablesMemoization) {
  const Approach a(SmallHilConfig(0));
  const geo::Rect r = RectAt(23.5, 37.5, 0.4, 0.4);
  EXPECT_FALSE(a.TranslateQuery(r, 100, 200).cache_hit);
  EXPECT_FALSE(a.TranslateQuery(r, 100, 200).cache_hit);
  EXPECT_EQ(a.cover_cache_size(), 0u);
  EXPECT_EQ(a.cover_cache_stats().misses, 2u);
}

// ---------- Slow-op profiler (ring-buffer unit behaviour) ----------

TEST(ProfilerTest, RingEvictsOldestBeyondCapacity) {
  cluster::ProfilerOptions options;
  options.enabled = true;
  options.slow_millis = 0.0;
  options.capacity = 3;
  cluster::OpProfiler profiler(options);
  for (int i = 0; i < 5; ++i) {
    cluster::ProfiledOp op;
    op.query = "q" + std::to_string(i);
    profiler.Record(std::move(op));
  }
  EXPECT_EQ(profiler.num_recorded(), 5u);
  const std::vector<cluster::ProfiledOp> ops = profiler.Ops();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].op_id, 3u);  // oldest retained
  EXPECT_EQ(ops[2].op_id, 5u);  // newest
  EXPECT_EQ(ops[2].query, "q4");

  profiler.Clear();
  EXPECT_EQ(profiler.num_recorded(), 0u);
  EXPECT_TRUE(profiler.Ops().empty());
}

TEST(ProfilerTest, ThresholdAndEnablementGateRecording) {
  cluster::ProfilerOptions options;
  options.enabled = false;
  options.slow_millis = 0.0;
  cluster::OpProfiler profiler(options);
  EXPECT_FALSE(profiler.ShouldRecord(1e9));  // disabled

  options.enabled = true;
  options.slow_millis = 50.0;
  profiler.Configure(options);
  EXPECT_FALSE(profiler.ShouldRecord(49.9));
  EXPECT_TRUE(profiler.ShouldRecord(50.0));
}

TEST(ProfilerTest, ConfigureShrinkDropsOldestEntries) {
  cluster::OpProfiler profiler(
      cluster::ProfilerOptions{true, 0.0, /*capacity=*/8});
  for (int i = 0; i < 6; ++i) profiler.Record(cluster::ProfiledOp{});
  cluster::ProfilerOptions smaller;
  smaller.enabled = true;
  smaller.slow_millis = 0.0;
  smaller.capacity = 2;
  profiler.Configure(smaller);
  const std::vector<cluster::ProfiledOp> ops = profiler.Ops();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].op_id, 5u);
  EXPECT_EQ(ops[1].op_id, 6u);
}

// ---------- End-to-end: explain, profiler, ServerStatus over the four
// approaches ----------

class ObservabilityStoreTest : public ::testing::TestWithParam<ApproachKind> {
 protected:
  static constexpr int kDocs = 1200;
  static constexpr int64_t kSpanBegin = 1530403200000;
  static constexpr int64_t kStepMs = 60000;

  StStoreOptions Options() {
    StStoreOptions opts;
    opts.approach.kind = GetParam();
    opts.approach.dataset_mbr = geo::Rect{{23.0, 37.0}, {25.0, 39.0}};
    opts.cluster.num_shards = 4;
    opts.cluster.chunk_max_bytes = 16 * 1024;
    opts.cluster.balance_every_inserts = 300;
    opts.cluster.seed = 3;
    opts.cluster.profiler.enabled = true;
    opts.cluster.profiler.slow_millis = 0.0;  // record every op
    opts.cluster.profiler.capacity = 32;
    return opts;
  }

  void Load(StStore* store) {
    Rng rng(55);
    for (int i = 0; i < kDocs; ++i) {
      bson::Document doc;
      doc.Append("seq", Value::Int32(i));
      const double lon = rng.NextDouble(23.0, 25.0);
      const double lat = rng.NextDouble(37.0, 39.0);
      doc.Append(kLocationField,
                 Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
      doc.Append(kDateField, Value::DateTime(kSpanBegin + i * kStepMs));
      ASSERT_TRUE(store->Insert(std::move(doc)).ok());
    }
    ASSERT_TRUE(store->FinishLoad().ok());
  }

  static geo::Rect QueryRect() { return geo::Rect{{23.4, 37.4}, {24.4, 38.4}}; }
  static int64_t T0() { return kSpanBegin + 100 * kStepMs; }
  static int64_t T1() { return kSpanBegin + 900 * kStepMs; }
};

// The core explain invariant: the stage trees describe the same execution
// the totals describe, so per-stage sums equal the cluster totals exactly.
TEST_P(ObservabilityStoreTest, ExplainStageSumsEqualClusterTotals) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);

  const StExplain explain = store.Explain(QueryRect(), T0(), T1());
  const cluster::ClusterExplain& ce = explain.cluster;
  EXPECT_EQ(ce.SumStageKeysExamined(), ce.result.total_keys_examined);
  EXPECT_EQ(ce.SumStageDocsExamined(), ce.result.total_docs_examined);
  EXPECT_EQ(static_cast<int>(ce.shards.size()), ce.result.nodes_contacted);
  EXPECT_EQ(ce.total_shards, 4);
  EXPECT_FALSE(ce.shard_key.empty());

  // Per-shard: the winning tree's sums equal that shard's executor stats,
  // and stage timing was enabled (explain runs with per-stage clocks on).
  uint64_t stage_n_returned = 0;
  for (const cluster::ShardExplain& shard : ce.shards) {
    EXPECT_EQ(shard.winning_plan.TotalKeysExamined(),
              shard.stats.keys_examined);
    EXPECT_EQ(shard.winning_plan.TotalDocsExamined(),
              shard.stats.docs_examined);
    EXPECT_GE(shard.winning_plan.time_millis, 0.0);
    stage_n_returned += shard.stats.n_returned;
  }
  EXPECT_EQ(stage_n_returned, ce.result.n_returned);

  // The explain execution returns what a normal query returns.
  const StQueryResult plain = store.Query(QueryRect(), T0(), T1());
  EXPECT_EQ(ce.result.n_returned, plain.cluster.docs.size());
}

TEST_P(ObservabilityStoreTest, ExplainVerbositiesControlSerialization) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);

  const StExplain planner = store.Explain(
      QueryRect(), T0(), T1(), query::ExplainVerbosity::kQueryPlanner);
  const std::string planner_json = planner.ToJson();
  EXPECT_NE(planner_json.find("\"winningPlan\""), std::string::npos);
  EXPECT_NE(planner_json.find("IXSCAN"), std::string::npos);
  EXPECT_EQ(planner_json.find("\"keysExamined\""), std::string::npos);
  EXPECT_EQ(planner_json.find("\"rejectedPlans\""), std::string::npos);

  const StExplain exec = store.Explain(QueryRect(), T0(), T1(),
                                       query::ExplainVerbosity::kExecStats);
  const std::string exec_json = exec.ToJson();
  EXPECT_NE(exec_json.find("\"executionStats\""), std::string::npos);
  EXPECT_NE(exec_json.find("\"totalKeysExamined\""), std::string::npos);
  EXPECT_NE(exec_json.find("executionTimeMillisEstimate"), std::string::npos);
  EXPECT_EQ(exec_json.find("\"rejectedPlans\""), std::string::npos);

  const StExplain all = store.Explain(
      QueryRect(), T0(), T1(), query::ExplainVerbosity::kAllPlansExecution);
  const std::string all_json = all.ToJson();
  EXPECT_NE(all_json.find("\"rejectedPlans\""), std::string::npos);
  EXPECT_NE(all_json.find("\"covering\""), std::string::npos);
  EXPECT_NE(all_json.find("\"approach\""), std::string::npos);
}

// Golden plan shapes: which index wins and how the tree is built is part of
// each approach's contract.
TEST_P(ObservabilityStoreTest, ExplainGoldenPlanShape) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);

  const StExplain explain = store.Explain(QueryRect(), T0(), T1());
  EXPECT_EQ(explain.approach, std::string(store.approach().name()));
  ASSERT_FALSE(explain.cluster.shards.empty());

  const bool hilbert = GetParam() == ApproachKind::kHil ||
                       GetParam() == ApproachKind::kHilStar;
  for (const cluster::ShardExplain& shard : explain.cluster.shards) {
    // Every approach resolves to an index-assisted plan on loaded shards:
    // FETCH with a residual filter over an IXSCAN.
    ASSERT_EQ(shard.winning_plan.stage, "FETCH");
    ASSERT_EQ(shard.winning_plan.children.size(), 1u);
    const query::ExplainNode& scan = shard.winning_plan.children[0];
    EXPECT_EQ(scan.stage, "IXSCAN");
    EXPECT_FALSE(scan.bounds.empty());
    if (hilbert) {
      EXPECT_EQ(scan.index_name, "hilbertIndex_1_date_1");
    } else if (GetParam() == ApproachKind::kBslST) {
      EXPECT_TRUE(scan.index_name == "location_2dsphere_date_1" ||
                  scan.index_name == "date_1")
          << scan.index_name;
    } else {
      EXPECT_TRUE(scan.index_name == "date_1_location_2dsphere" ||
                  scan.index_name == "date_1")
          << scan.index_name;
    }
  }

  if (hilbert) {
    EXPECT_GT(explain.num_ranges + explain.num_singletons, 0u);
  } else {
    EXPECT_EQ(explain.num_ranges + explain.num_singletons, 0u);
  }
}

// Satellite regression: a batched, drained cursor must account identically
// to the one-shot Query() path (same totals, no double-counting across
// getMore rounds).
TEST_P(ObservabilityStoreTest, DrainedCursorAccountingMatchesOneShotQuery) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);

  // Warm the plan caches so both measured runs replay the same cached plan.
  (void)store.Query(QueryRect(), T0(), T1());

  const StQueryResult one_shot = store.Query(QueryRect(), T0(), T1());

  StCursorOptions batched;
  batched.batch_size = 64;
  StCursor cursor = store.OpenQuery(QueryRect(), T0(), T1(), batched);
  uint64_t streamed_docs = 0;
  int rounds = 0;
  while (!cursor.exhausted()) {
    streamed_docs += cursor.NextBatch().size();
    ++rounds;
  }
  const StQueryResult drained = cursor.Summary();

  EXPECT_TRUE(drained.cluster.status.ok());
  EXPECT_EQ(drained.cluster.n_returned, one_shot.cluster.n_returned);
  EXPECT_EQ(streamed_docs, one_shot.cluster.docs.size());
  EXPECT_EQ(drained.cluster.total_keys_examined,
            one_shot.cluster.total_keys_examined);
  EXPECT_EQ(drained.cluster.total_docs_examined,
            one_shot.cluster.total_docs_examined);
  EXPECT_EQ(drained.cluster.max_keys_examined,
            one_shot.cluster.max_keys_examined);
  EXPECT_EQ(drained.cluster.bytes_materialized,
            one_shot.cluster.bytes_materialized);
  EXPECT_EQ(one_shot.cluster.num_batches, 1);
  // Delivered rounds only; the final empty probe (if any) adds nothing.
  EXPECT_LE(drained.cluster.num_batches, rounds);
  EXPECT_GT(drained.cluster.num_batches, 0);
}

// Satellite regression (fail-point driven): rounds killed by a shard fault
// deliver nothing and must not be counted as batches, in either path.
TEST_P(ObservabilityStoreTest, FaultedRoundsAreNotCountedAsBatches) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);

  FailPoint* fp = FailPointRegistry::Instance().Find("shardGetMore");
  ASSERT_NE(fp, nullptr);
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kAlwaysOn;
  config.error_code = StatusCode::kInternal;
  config.error_message = "shard died";
  fp->Enable(config);

  // One-shot path: the single round faults before any document flows.
  const StQueryResult one_shot = store.Query(QueryRect(), T0(), T1());
  EXPECT_FALSE(one_shot.cluster.status.ok());
  EXPECT_EQ(one_shot.cluster.num_batches, 0);
  EXPECT_EQ(one_shot.cluster.n_returned, 0u);

  // Streaming path: same contract.
  StCursorOptions batched;
  batched.batch_size = 32;
  StCursor cursor = store.OpenQuery(QueryRect(), T0(), T1(), batched);
  EXPECT_TRUE(cursor.NextBatch().empty());
  EXPECT_TRUE(cursor.exhausted());
  const StQueryResult drained = cursor.Summary();
  EXPECT_FALSE(drained.cluster.status.ok());
  EXPECT_EQ(drained.cluster.num_batches, 0);
  EXPECT_EQ(drained.cluster.n_returned, 0u);

  fp->Disable();

  // Clean recovery, and the faulted attempts did not pollute accounting.
  const StQueryResult recovered = store.Query(QueryRect(), T0(), T1());
  EXPECT_TRUE(recovered.cluster.status.ok());
  EXPECT_EQ(recovered.cluster.num_batches, 1);
  EXPECT_EQ(recovered.cluster.n_returned, recovered.cluster.docs.size());
}

TEST_P(ObservabilityStoreTest, ProfilerRecordsQueriesWithExplainTrees) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);

  cluster::OpProfiler& profiler = store.cluster().profiler();
  profiler.Clear();
  (void)store.Query(QueryRect(), T0(), T1());
  (void)store.Query(QueryRect(), T0(), T1());

  ASSERT_GE(profiler.num_recorded(), 2u);
  const std::vector<cluster::ProfiledOp> ops = profiler.Ops();
  ASSERT_GE(ops.size(), 2u);
  const cluster::ProfiledOp& last = ops.back();
  EXPECT_FALSE(last.query.empty());
  EXPECT_GT(last.op_id, ops.front().op_id);
  // The recorded explain tree satisfies the same sum invariant.
  EXPECT_EQ(last.explain.SumStageKeysExamined(),
            last.explain.result.total_keys_examined);
  EXPECT_FALSE(last.explain.shards.empty());
  EXPECT_NE(last.ToJson().find("\"explain\""), std::string::npos);

  // A threshold above every modeled time records nothing further.
  cluster::ProfilerOptions quiet;
  quiet.enabled = true;
  quiet.slow_millis = 1e12;
  quiet.capacity = 32;
  profiler.Configure(quiet);
  const uint64_t before = profiler.num_recorded();
  (void)store.Query(QueryRect(), T0(), T1());
  EXPECT_EQ(profiler.num_recorded(), before);
}

TEST_P(ObservabilityStoreTest, ServerStatusExposesMetricsAndProfiler) {
  StStore store(Options());
  ASSERT_TRUE(store.Setup().ok());
  Load(&store);
  (void)store.Query(QueryRect(), T0(), T1());

  const std::string status = store.cluster().ServerStatus();
  EXPECT_NE(status.find("\"shards\": 4"), std::string::npos);
  EXPECT_NE(status.find("\"metrics\""), std::string::npos);
  EXPECT_NE(status.find("\"profiler\""), std::string::npos);
  // Instrumented subsystems that necessarily ran during load + query.
  EXPECT_NE(status.find("\"btree.splits\""), std::string::npos);
  EXPECT_NE(status.find("\"btree.node_reads\""), std::string::npos);
  EXPECT_NE(status.find("\"cluster.batches\""), std::string::npos);
  // The plan cache is only consulted when the planner produced more than
  // one candidate; hilbert queries have a single index, so only the
  // baselines (which race two candidates) necessarily register it.
  if (GetParam() == ApproachKind::kBslST || GetParam() == ApproachKind::kBslTS) {
    EXPECT_NE(status.find("\"plan_cache."), std::string::npos);
  }

  MetricsRegistry& reg = MetricsRegistry::Instance();
  EXPECT_GT(reg.GetCounter("btree.node_reads").value(), 0u);
  EXPECT_GT(reg.GetCounter("cluster.batches").value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllApproaches, ObservabilityStoreTest,
                         ::testing::Values(ApproachKind::kBslST,
                                           ApproachKind::kBslTS,
                                           ApproachKind::kHil,
                                           ApproachKind::kHilStar),
                         [](const auto& info) {
                           switch (info.param) {
                             case ApproachKind::kBslST: return "bslST";
                             case ApproachKind::kBslTS: return "bslTS";
                             case ApproachKind::kHil: return "hil";
                             default: return "hilStar";
                           }
                         });

}  // namespace
}  // namespace stix::st
