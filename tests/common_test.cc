#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/lz.h"
#include "common/percentile.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace stix {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::NotFound("thing is gone");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: thing is gone");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(6);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DoubleRangeRespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble(-3.5, 7.25);
    EXPECT_GE(d, -3.5);
    EXPECT_LT(d, 7.25);
  }
}

TEST(RngTest, IntRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianRoughMoments) {
  Rng rng(12);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(77);
  Rng fork1 = a.Fork();
  Rng b(77);
  Rng fork2 = b.Fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fork1.Next(), fork2.Next());
}

// ---------- strings ----------

TEST(StringsTest, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.5, -2.25, 23.727539, 37.983810, 1e-9, 12345678.9}) {
    EXPECT_EQ(strtod(FormatDouble(v).c_str(), nullptr), v);
  }
}

TEST(StringsTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
  EXPECT_EQ(WithThousands(-1234567), "-1,234,567");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(5ull * 1024 * 1024), "5.00 MB");
}

TEST(StringsTest, SplitKeepsEmptyTokens) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hilbertIndex", "hilbert"));
  EXPECT_FALSE(StartsWith("hil", "hilbert"));
}

TEST(StringsTest, IsoDateRoundTrip) {
  const int64_t millis = 1538383980067;  // 2018-10-01T08:53:00.067Z
  const std::string text = FormatIsoDate(millis);
  int64_t parsed = 0;
  ASSERT_TRUE(ParseIsoDate(text, &parsed));
  EXPECT_EQ(parsed, millis);
}

TEST(StringsTest, IsoDateKnownValue) {
  int64_t parsed = 0;
  ASSERT_TRUE(ParseIsoDate("2018-07-01T00:00:00.000Z", &parsed));
  EXPECT_EQ(parsed, 1530403200000);
}

TEST(StringsTest, IsoDateRejectsGarbage) {
  int64_t parsed = 0;
  EXPECT_FALSE(ParseIsoDate("not a date", &parsed));
  EXPECT_FALSE(ParseIsoDate("2018-07", &parsed));
}

// ---------- LZ codec ----------

TEST(LzTest, EmptyInput) {
  const std::string c = LzCompress("");
  const Result<std::string> d = LzDecompress(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, "");
}

TEST(LzTest, ShortLiteral) {
  const Result<std::string> d = LzDecompress(LzCompress("ab"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, "ab");
}

TEST(LzTest, RepetitiveInputCompresses) {
  std::string input;
  for (int i = 0; i < 500; ++i) input += "sensor=ok;rpm=1200;";
  const std::string c = LzCompress(input);
  EXPECT_LT(c.size(), input.size() / 4);
  const Result<std::string> d = LzDecompress(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, input);
}

TEST(LzTest, OverlappingCopyRoundTrips) {
  const std::string input(1000, 'x');  // max overlap (RLE-like)
  const Result<std::string> d = LzDecompress(LzCompress(input));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, input);
}

TEST(LzTest, RandomBinaryRoundTrips) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    std::string input;
    const size_t n = rng.NextBounded(4000);
    input.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      input.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    const Result<std::string> d = LzDecompress(LzCompress(input));
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(*d, input);
  }
}

TEST(LzTest, RejectsTruncatedStream) {
  std::string input;
  for (int i = 0; i < 100; ++i) input += "abcdefgh";
  std::string c = LzCompress(input);
  c.resize(c.size() / 2);
  // Either corrupt or (if it cut on an op boundary) a length mismatch.
  const Result<std::string> d = LzDecompress(c);
  EXPECT_FALSE(d.ok());
}

TEST(LzTest, RejectsBadTag) {
  std::string c = LzCompress("hello world hello world");
  // The first byte after the varint header is an op tag; 0x7F is invalid.
  c[1] = 0x7F;
  EXPECT_FALSE(LzDecompress(c).ok());
}

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, TaskGroupWaitsForItsOwnTasksOnly) {
  ThreadPool pool(4);
  // A slow task outside the group must not block the group's Wait.
  std::atomic<bool> slow_done{false};
  std::atomic<bool> release_slow{false};
  pool.Submit([&] {
    while (!release_slow.load()) std::this_thread::yield();
    slow_done.store(true);
  });

  std::atomic<int> group_counter{0};
  {
    ThreadPool::TaskGroup group(&pool);
    for (int i = 0; i < 50; ++i) {
      group.Submit([&group_counter] { group_counter.fetch_add(1); });
    }
    group.Wait();
  }
  EXPECT_EQ(group_counter.load(), 50);
  EXPECT_FALSE(slow_done.load()) << "TaskGroup waited on a foreign task";
  release_slow.store(true);
  pool.Wait();
  EXPECT_TRUE(slow_done.load());
}

TEST(ThreadPoolTest, ConcurrentTaskGroupsShareOnePool) {
  ThreadPool pool(4);
  constexpr int kClients = 6;
  constexpr int kTasksPerClient = 40;
  std::atomic<int> total{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&pool, &total, kTasksPerClient] {
      ThreadPool::TaskGroup group(&pool);
      std::atomic<int> mine{0};
      for (int i = 0; i < kTasksPerClient; ++i) {
        group.Submit([&mine, &total] {
          mine.fetch_add(1);
          total.fetch_add(1);
        });
      }
      group.Wait();
      EXPECT_EQ(mine.load(), kTasksPerClient);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(total.load(), kClients * kTasksPerClient);
}

TEST(ThreadPoolTest, CountsThreadsAndTasks) {
  const uint64_t started_before = ThreadPool::threads_started();
  ThreadPool pool(3);
  EXPECT_EQ(ThreadPool::threads_started(), started_before + 3);
  EXPECT_EQ(pool.tasks_completed(), 0u);
  ThreadPool::TaskGroup group(&pool);
  for (int i = 0; i < 10; ++i) group.Submit([] {});
  group.Wait();
  EXPECT_EQ(pool.tasks_completed(), 10u);
  // Running tasks never creates threads.
  EXPECT_EQ(ThreadPool::threads_started(), started_before + 3);
}

// ---------- Stopwatch ----------

TEST(StopwatchTest, MonotoneNonNegative) {
  Stopwatch sw;
  const int64_t a = sw.ElapsedNanos();
  const int64_t b = sw.ElapsedNanos();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch sw;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  // Keep the loop from being optimised out entirely.
  ASSERT_GT(sink, 0.0);
  const int64_t before = sw.ElapsedNanos();
  sw.Restart();
  EXPECT_LE(sw.ElapsedNanos(), before);
}

// ---------- Percentile ----------

TEST(PercentileTest, NearestRankOnKnownArray) {
  // The canonical nearest-rank example: 5 samples. ceil(p/100 * 5) gives
  // ranks 2, 3, 4, 5, 5 for p = 30, 40, 75, 95, 99.
  const std::vector<double> v = {15, 20, 35, 40, 50};
  EXPECT_EQ(PercentileOf(v, 30), 20);
  EXPECT_EQ(PercentileOf(v, 40), 20);   // ceil(2.0) = 2 -> second sample
  EXPECT_EQ(PercentileOf(v, 50), 35);
  EXPECT_EQ(PercentileOf(v, 75), 40);
  EXPECT_EQ(PercentileOf(v, 95), 50);
  EXPECT_EQ(PercentileOf(v, 99), 50);
  EXPECT_EQ(PercentileOf(v, 100), 50);
  EXPECT_EQ(PercentileOf(v, 0), 15);
}

TEST(PercentileTest, P50P95P99OnHundredSamples) {
  // 1..100: rank for p is exactly ceil(p), so pN == N for integer p.
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_EQ(PercentileOf(v, 50), 50);
  EXPECT_EQ(PercentileOf(v, 95), 95);
  EXPECT_EQ(PercentileOf(v, 99), 99);
}

TEST(PercentileTest, AlwaysReturnsAnObservedSample) {
  // Two widely separated samples: interpolation would invent values in
  // between; nearest rank must return one of the two.
  const std::vector<double> v = {1.0, 1000.0};
  for (double p : {1.0, 49.0, 50.0, 51.0, 99.0}) {
    const double got = PercentileOf(v, p);
    EXPECT_TRUE(got == 1.0 || got == 1000.0) << "p=" << p << " got " << got;
  }
  EXPECT_EQ(PercentileOf(v, 50), 1.0);   // ceil(0.5 * 2) = 1 -> first
  EXPECT_EQ(PercentileOf(v, 51), 1000.0);
}

TEST(PercentileTest, EmptyAndSingleton) {
  EXPECT_EQ(PercentileOf({}, 99), 0.0);
  EXPECT_EQ(PercentileOf({7.5}, 1), 7.5);
  EXPECT_EQ(PercentileOf({7.5}, 99), 7.5);
}

TEST(PercentileTest, UnsortedInputIsSorted) {
  EXPECT_EQ(PercentileOf({50, 15, 40, 20, 35}, 50), 35);
}

}  // namespace
}  // namespace stix
