// Tests for the fail-point subsystem: registry + mode semantics, and one
// proof per injection site that an injected fault is either surfaced (error
// actions produce a non-OK status on a channel the caller sees) or tolerated
// (delay / branch-forcing actions leave results byte-identical).

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "index/index_catalog.h"
#include "query/executor.h"
#include "query/expression.h"
#include "query/plan_cache.h"
#include "storage/btree.h"
#include "storage/record_store.h"

namespace stix {
namespace {

using bson::Value;

class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Instance().DisableAll(); }
};

// ---------- registry + mode semantics ----------

TEST_F(FailPointTest, RegistryListsEveryInjectionSite) {
  const std::vector<std::string> names = FailPointRegistry::Instance().Names();
  const auto has = [&](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has("btreeNodeSplit"));
  EXPECT_TRUE(has("btreeRemoveEntry"));
  EXPECT_TRUE(has("shardGetMore"));
  EXPECT_TRUE(has("clusterMergeBatch"));
  EXPECT_TRUE(has("planExecutorReplan"));
  EXPECT_TRUE(has("balancerMoveChunk"));
  EXPECT_GE(names.size(), 5u);
  for (const std::string& name : names) {
    FailPoint* fp = FailPointRegistry::Instance().Find(name);
    ASSERT_NE(fp, nullptr);
    EXPECT_EQ(fp->name(), name);
  }
  EXPECT_EQ(FailPointRegistry::Instance().Find("noSuchPoint"), nullptr);
}

TEST_F(FailPointTest, DisabledPointNeverFires) {
  // Function-local static: registered points must outlive the registry's
  // raw pointer, i.e. live for the process.
  static FailPoint fp("testDisabled");
  EXPECT_FALSE(fp.enabled());
  EXPECT_FALSE(fp.Evaluate().has_value());
  EXPECT_EQ(fp.times_fired(), 0u);
}

TEST_F(FailPointTest, AlwaysOnFiresUntilDisabled) {
  static FailPoint fp("testAlwaysOn");
  fp.Enable({});
  EXPECT_TRUE(fp.enabled());
  for (int i = 0; i < 3; ++i) {
    const auto fired = fp.Evaluate();
    ASSERT_TRUE(fired.has_value());
    EXPECT_TRUE(fired->ok());  // delay-only activation carries no error
  }
  EXPECT_EQ(fp.times_fired(), 3u);
  EXPECT_EQ(fp.times_entered(), 3u);
  fp.Disable();
  EXPECT_FALSE(fp.Evaluate().has_value());
  EXPECT_EQ(fp.times_fired(), 3u);
}

TEST_F(FailPointTest, TimesModeFiresExactlyNThenSelfDisables) {
  static FailPoint fp("testTimes");
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kTimes;
  config.count = 3;
  fp.Enable(config);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (fp.Evaluate().has_value()) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(fp.times_fired(), 3u);
  EXPECT_FALSE(fp.enabled());  // exhausted => fully off, fast path restored
}

TEST_F(FailPointTest, SkipModeSkipsFirstNThenFiresAlways) {
  static FailPoint fp("testSkip");
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kSkip;
  config.count = 2;
  fp.Enable(config);
  EXPECT_FALSE(fp.Evaluate().has_value());
  EXPECT_FALSE(fp.Evaluate().has_value());
  EXPECT_TRUE(fp.Evaluate().has_value());
  EXPECT_TRUE(fp.Evaluate().has_value());
  EXPECT_EQ(fp.times_entered(), 4u);
  EXPECT_EQ(fp.times_fired(), 2u);
}

TEST_F(FailPointTest, ErrorActionReturnsConfiguredStatus) {
  static FailPoint fp("testError");
  FailPoint::Config config;
  config.error_code = StatusCode::kCorruption;
  config.error_message = "boom";
  fp.Enable(config);
  const auto fired = fp.Evaluate();
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->code(), StatusCode::kCorruption);
  EXPECT_EQ(fired->message(), "boom");
  // CheckFailPoint maps fire-with-error to the error and off to OK.
  EXPECT_FALSE(CheckFailPoint(fp).ok());
  fp.Disable();
  EXPECT_TRUE(CheckFailPoint(fp).ok());
}

TEST_F(FailPointTest, EnableResetsCounters) {
  static FailPoint fp("testReset");
  fp.Enable({});
  (void)fp.Evaluate();
  EXPECT_EQ(fp.times_fired(), 1u);
  fp.Enable({});
  EXPECT_EQ(fp.times_fired(), 0u);
  EXPECT_EQ(fp.times_entered(), 0u);
}

// ---------- site: B+tree split / remove (delay-tolerated) ----------

TEST_F(FailPointTest, BtreeSplitSiteFiresAndTreeStaysCorrect) {
  FailPoint* fp = FailPointRegistry::Instance().Find("btreeNodeSplit");
  ASSERT_NE(fp, nullptr);
  FailPoint::Config config;
  config.delay_ms = 0.01;
  fp->Enable(config);

  storage::BTree tree;
  for (int i = 0; i < 400; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i * 7919 % 100000);
    tree.Insert(key, static_cast<storage::RecordId>(i));
  }
  fp->Disable();

  // 400 entries over 128-entry leaves: at least two splits fired.
  EXPECT_GE(fp->times_fired(), 2u);
  EXPECT_EQ(tree.num_entries(), 400u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST_F(FailPointTest, BtreeRemoveSiteFiresAndTreeStaysCorrect) {
  storage::BTree tree;
  for (int i = 0; i < 300; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    tree.Insert(key, static_cast<storage::RecordId>(i));
  }

  FailPoint* fp = FailPointRegistry::Instance().Find("btreeRemoveEntry");
  ASSERT_NE(fp, nullptr);
  fp->Enable({});
  for (int i = 0; i < 100; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i * 3);
    EXPECT_TRUE(tree.Remove(key, static_cast<storage::RecordId>(i * 3)));
  }
  fp->Disable();

  EXPECT_EQ(fp->times_fired(), 100u);
  EXPECT_EQ(tree.num_entries(), 200u);
  EXPECT_TRUE(tree.CheckInvariants());
}

// ---------- sites on the cluster query path ----------

class ClusterFailPointTest : public FailPointTest {
 protected:
  static constexpr int kDocs = 600;

  void SetUp() override {
    cluster::ClusterOptions opts;
    opts.num_shards = 3;
    opts.chunk_max_bytes = 8 * 1024;
    opts.balance_every_inserts = 200;
    opts.seed = 11;
    cluster_ = std::make_unique<cluster::Cluster>(opts);
    ASSERT_TRUE(cluster_
                    ->ShardCollection(cluster::ShardKeyPattern(
                        {"date"}, cluster::ShardingStrategy::kRange))
                    .ok());
    Rng rng(13);
    for (int i = 0; i < kDocs; ++i) {
      bson::Document doc;
      doc.Append("_id", Value::Int64(i));
      doc.Append("date", Value::DateTime(60000LL * i));
      doc.Append("pad", Value::String(std::string(100, 'x')));
      ASSERT_TRUE(cluster_->Insert(std::move(doc)).ok());
    }
  }

  query::ExprPtr WideQuery() const {
    return query::MakeRange("date", Value::DateTime(60000LL * 50),
                            Value::DateTime(60000LL * 500));
  }

  static std::multiset<int64_t> Ids(const std::vector<bson::Document>& docs) {
    std::multiset<int64_t> ids;
    for (const bson::Document& d : docs) ids.insert(d.Get("_id")->AsInt64());
    return ids;
  }

  std::unique_ptr<cluster::Cluster> cluster_;
};

TEST_F(ClusterFailPointTest, ShardGetMoreErrorSurfacesAsClusterStatus) {
  const query::ExprPtr q = WideQuery();
  const cluster::ClusterQueryResult reference = cluster_->Query(q);
  ASSERT_TRUE(reference.status.ok());
  ASSERT_EQ(reference.docs.size(), 451u);

  FailPoint* fp = FailPointRegistry::Instance().Find("shardGetMore");
  ASSERT_NE(fp, nullptr);
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kTimes;
  config.count = 1;
  config.error_code = StatusCode::kInternal;
  config.error_message = "shard host died";
  fp->Enable(config);
  const cluster::ClusterQueryResult faulted = cluster_->Query(q);
  EXPECT_FALSE(faulted.status.ok());
  EXPECT_EQ(faulted.status.code(), StatusCode::kInternal);
  EXPECT_TRUE(faulted.docs.empty());  // partial rounds are dropped
  fp->Disable();

  // The fault was transient: the next query is clean and complete.
  const cluster::ClusterQueryResult recovered = cluster_->Query(q);
  EXPECT_TRUE(recovered.status.ok());
  EXPECT_EQ(Ids(recovered.docs), Ids(reference.docs));
}

TEST_F(ClusterFailPointTest, ShardGetMoreDelayToleratedWithIdenticalResults) {
  const query::ExprPtr q = WideQuery();
  const cluster::ClusterQueryResult reference = cluster_->Query(q);

  FailPoint* fp = FailPointRegistry::Instance().Find("shardGetMore");
  FailPoint::Config config;
  config.delay_ms = 0.05;
  fp->Enable(config);
  const cluster::ClusterQueryResult delayed = cluster_->Query(q);
  fp->Disable();

  EXPECT_GE(fp->times_fired(), 1u);
  EXPECT_TRUE(delayed.status.ok());
  EXPECT_EQ(Ids(delayed.docs), Ids(reference.docs));
  EXPECT_EQ(delayed.total_keys_examined, reference.total_keys_examined);
}

TEST_F(ClusterFailPointTest, MergeBatchErrorKillsCursorWithStatus) {
  const query::ExprPtr q = WideQuery();
  FailPoint* fp = FailPointRegistry::Instance().Find("clusterMergeBatch");
  ASSERT_NE(fp, nullptr);
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kTimes;
  config.count = 1;
  config.error_code = StatusCode::kInternal;
  fp->Enable(config);

  auto cursor = cluster_->OpenCursor(q, {});
  EXPECT_TRUE(cursor->NextBatch().empty());
  EXPECT_TRUE(cursor->exhausted());
  EXPECT_FALSE(cursor->status().ok());
  const cluster::ClusterQueryResult summary = cursor->Summary();
  EXPECT_FALSE(summary.status.ok());
  EXPECT_EQ(summary.num_batches, 0);  // the round never went out
  fp->Disable();

  EXPECT_TRUE(cluster_->Query(q).status.ok());
}

TEST_F(ClusterFailPointTest, MergeBatchDelayToleratedWithIdenticalResults) {
  const query::ExprPtr q = WideQuery();
  const cluster::ClusterQueryResult reference = cluster_->Query(q);

  FailPoint* fp = FailPointRegistry::Instance().Find("clusterMergeBatch");
  FailPoint::Config config;
  config.delay_ms = 0.05;
  fp->Enable(config);
  cluster::CursorOptions copts;
  copts.batch_size = 50;
  const cluster::ClusterQueryResult delayed =
      cluster_->OpenCursor(q, copts)->Drain();
  fp->Disable();

  EXPECT_GE(fp->times_fired(), 1u);
  EXPECT_TRUE(delayed.status.ok());
  EXPECT_EQ(Ids(delayed.docs), Ids(reference.docs));
}

TEST_F(ClusterFailPointTest, BalancerMoveChunkErrorSurfacesThroughInsert) {
  FailPoint* fp = FailPointRegistry::Instance().Find("balancerMoveChunk");
  ASSERT_NE(fp, nullptr);
  FailPoint::Config config;
  config.error_code = StatusCode::kInternal;
  config.error_message = "migration aborted";
  fp->Enable(config);

  // Keep loading: growth keeps splitting chunks on their current shards, so
  // the balancer keeps proposing migrations — each aborted by the fault and
  // surfaced through the inserting client.
  const uint64_t docs_before = cluster_->total_documents();
  bool surfaced = false;
  for (int i = 0; i < 2000 && !surfaced; ++i) {
    bson::Document doc;
    doc.Append("_id", Value::Int64(kDocs + i));
    doc.Append("date", Value::DateTime(60000LL * (kDocs + i)));
    doc.Append("pad", Value::String(std::string(100, 'x')));
    const Status s = cluster_->Insert(std::move(doc));
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kInternal);
      surfaced = true;
    }
  }
  EXPECT_TRUE(surfaced);
  EXPECT_GE(fp->times_fired(), 1u);
  fp->Disable();

  // The failed migration moved nothing: accounting still balances, and the
  // cluster keeps serving correct results.
  uint64_t chunk_docs = 0;
  for (size_t ci = 0; ci < cluster_->chunks().num_chunks(); ++ci) {
    chunk_docs += cluster_->chunks().chunk(ci).docs;
  }
  EXPECT_EQ(chunk_docs, cluster_->total_documents());
  EXPECT_GT(cluster_->total_documents(), docs_before);
  cluster_->Balance();  // fault cleared: pending migrations drain
  const cluster::ClusterQueryResult r = cluster_->Query(WideQuery());
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.docs.size(), 451u);
}

TEST_F(ClusterFailPointTest, BalancerMoveChunkDelayTolerated) {
  FailPoint* fp = FailPointRegistry::Instance().Find("balancerMoveChunk");
  FailPoint::Config config;
  config.delay_ms = 0.05;
  fp->Enable(config);
  cluster_->Balance();
  for (int i = 0; i < 400; ++i) {
    bson::Document doc;
    doc.Append("_id", Value::Int64(kDocs + i));
    doc.Append("date", Value::DateTime(60000LL * (kDocs + i)));
    doc.Append("pad", Value::String(std::string(100, 'x')));
    ASSERT_TRUE(cluster_->Insert(std::move(doc)).ok());
  }
  fp->Disable();
  EXPECT_EQ(cluster_->total_documents(), static_cast<uint64_t>(kDocs + 400));
  EXPECT_TRUE(cluster_->Query(WideQuery()).status.ok());
}

// ---------- site: plan-executor replan (branch-forcing) ----------

TEST_F(FailPointTest, PlanExecutorReplanForcedWithIdenticalResults) {
  storage::RecordStore records;
  index::IndexCatalog catalog;
  ASSERT_TRUE(catalog
                  .CreateIndex(index::IndexDescriptor(
                      "date_1", {{"date", index::IndexFieldKind::kAscending}}))
                  .ok());
  ASSERT_TRUE(catalog
                  .CreateIndex(index::IndexDescriptor(
                      "id_1_date_1",
                      {{"id", index::IndexFieldKind::kAscending},
                       {"date", index::IndexFieldKind::kAscending}}))
                  .ok());
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    bson::Document doc;
    doc.Append("id", Value::Int32(i));
    doc.Append("date", Value::DateTime(60000LL * i));
    const storage::RecordId rid = records.Insert(std::move(doc));
    ASSERT_TRUE(catalog.OnInsert(*records.Get(rid), rid).ok());
  }
  // Flat conjuncts with closed ranges: AnalyzeQuery only flattens one AND
  // level and only closed [lo, hi] ranges bound a leading index field, and
  // both indexes must see their leading field constrained for a plan race
  // (the cache only stores raced winners).
  const query::ExprPtr q = query::MakeAnd(
      {query::MakeCmp("id", query::CmpOp::kGte, Value::Int32(0)),
       query::MakeCmp("id", query::CmpOp::kLte, Value::Int32(1000)),
       query::MakeCmp("date", query::CmpOp::kGte,
                      Value::DateTime(60000LL * 100)),
       query::MakeCmp("date", query::CmpOp::kLte,
                      Value::DateTime(60000LL * 300))});

  query::PlanCache cache;
  const query::ExecutionResult first =
      query::ExecuteQuery(records, catalog, q, {}, &cache);
  ASSERT_EQ(cache.size(), 1u);
  const query::ExecutionResult cached =
      query::ExecuteQuery(records, catalog, q, {}, &cache);
  ASSERT_TRUE(cached.from_plan_cache);

  FailPoint* fp = FailPointRegistry::Instance().Find("planExecutorReplan");
  ASSERT_NE(fp, nullptr);
  fp->Enable({});
  const query::ExecutionResult forced =
      query::ExecuteQuery(records, catalog, q, {}, &cache);
  fp->Disable();

  EXPECT_EQ(fp->times_fired(), 1u);
  EXPECT_TRUE(forced.replanned);
  EXPECT_FALSE(forced.from_plan_cache);
  ASSERT_EQ(forced.docs.size(), first.docs.size());
  for (size_t i = 0; i < forced.docs.size(); ++i) {
    EXPECT_EQ(forced.docs[i]->Get("id")->AsInt32(),
              first.docs[i]->Get("id")->AsInt32());
  }

  // The forced re-race refreshed the cache: the next run replays cleanly.
  const query::ExecutionResult after =
      query::ExecuteQuery(records, catalog, q, {}, &cache);
  EXPECT_TRUE(after.from_plan_cache);
}

}  // namespace
}  // namespace stix
