// Tests for multikey indexing (arrays, GeoJSON LineStrings) and the
// $geoIntersects predicate — the "polylines" half of the paper's complex-
// geometry future work.

#include <set>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "index/index_catalog.h"
#include "query/executor.h"
#include "query/expression.h"
#include "storage/record_store.h"

namespace stix::query {
namespace {

using bson::Value;

bson::Document LineDoc(int id, std::vector<std::pair<double, double>> pts,
                       int64_t date_ms) {
  bson::Document doc;
  doc.Append("id", Value::Int32(id));
  doc.Append("location",
             Value::MakeDocument(bson::GeoJsonLineString(pts)));
  doc.Append("date", Value::DateTime(date_ms));
  return doc;
}

bson::Document PointDoc(int id, double lon, double lat, int64_t date_ms) {
  bson::Document doc;
  doc.Append("id", Value::Int32(id));
  doc.Append("location",
             Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
  doc.Append("date", Value::DateTime(date_ms));
  return doc;
}

// ---------- GeoJSON LineString model ----------

TEST(GeoJsonLineStringTest, RoundTrip) {
  const bson::Document line =
      bson::GeoJsonLineString({{23.7, 37.9}, {23.8, 38.0}, {23.9, 38.1}});
  std::vector<std::pair<double, double>> pts;
  ASSERT_TRUE(bson::ExtractGeoJsonLineString(
      Value::MakeDocument(line), &pts));
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[1].first, 23.8);
  EXPECT_DOUBLE_EQ(pts[1].second, 38.0);
}

TEST(GeoJsonLineStringTest, RejectsMalformed) {
  std::vector<std::pair<double, double>> pts;
  // A Point is not a LineString.
  EXPECT_FALSE(bson::ExtractGeoJsonLineString(
      Value::MakeDocument(bson::GeoJsonPoint(1, 2)), &pts));
  // One vertex is not a line.
  bson::Document one;
  one.Append("type", Value::String("LineString"));
  one.Append("coordinates",
             Value::MakeArray({Value::MakeArray(
                 {Value::Double(1), Value::Double(2)})}));
  EXPECT_FALSE(
      bson::ExtractGeoJsonLineString(Value::MakeDocument(one), &pts));
}

// ---------- multikey key generation ----------

TEST(MultikeyKeyGenTest, LineStringYieldsOneKeyPerCell) {
  const index::IndexDescriptor desc(
      "g", {{"location", index::IndexFieldKind::k2dsphere}}, 26);
  const index::KeyGenerator gen(desc);
  // A long diagonal across ~10 degrees crosses many 26-bit cells.
  const bson::Document doc = LineDoc(1, {{10, 10}, {20, 20}}, 0);
  const Result<std::vector<std::string>> keys = gen.MakeKeys(doc);
  ASSERT_TRUE(keys.ok()) << keys.status().ToString();
  EXPECT_GT(keys->size(), 100u);
  // Keys are deduplicated and sorted.
  for (size_t i = 1; i < keys->size(); ++i) {
    EXPECT_LT((*keys)[i - 1], (*keys)[i]);
  }
  // MakeKey refuses multikey documents.
  EXPECT_FALSE(gen.MakeKey(doc).ok());
}

TEST(MultikeyKeyGenTest, ArrayFieldYieldsOneKeyPerElement) {
  const index::IndexDescriptor desc(
      "tags", {{"tags", index::IndexFieldKind::kAscending}});
  const index::KeyGenerator gen(desc);
  bson::Document doc;
  doc.Append("tags", Value::MakeArray({Value::String("a"),
                                       Value::String("b"),
                                       Value::String("a")}));  // dup
  const Result<std::vector<std::string>> keys = gen.MakeKeys(doc);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 2u);  // deduplicated
}

TEST(MultikeyKeyGenTest, PointDocsStaySingleKey) {
  const index::IndexDescriptor desc(
      "g", {{"location", index::IndexFieldKind::k2dsphere},
            {"date", index::IndexFieldKind::kAscending}}, 26);
  const index::KeyGenerator gen(desc);
  const Result<std::vector<std::string>> keys =
      gen.MakeKeys(PointDoc(1, 23.7, 37.9, 1000));
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 1u);
}

TEST(MultikeyKeyGenTest, AbsurdGeometryIsRejected) {
  const index::IndexDescriptor desc(
      "g", {{"location", index::IndexFieldKind::k2dsphere}}, 26);
  const index::KeyGenerator gen(desc);
  // A line spanning the whole globe covers far more cells than the cap.
  const bson::Document doc = LineDoc(1, {{-179, -80}, {179, 80}}, 0);
  EXPECT_FALSE(gen.MakeKeys(doc).ok());
}

TEST(MultikeyIndexTest, InsertRemoveBalances) {
  index::Index idx(index::IndexDescriptor(
      "g", {{"location", index::IndexFieldKind::k2dsphere}}, 26));
  const bson::Document doc = LineDoc(1, {{10, 10}, {11, 11}}, 0);
  ASSERT_TRUE(idx.InsertDocument(doc, 5).ok());
  EXPECT_TRUE(idx.is_multikey());
  EXPECT_GT(idx.btree().num_entries(), 1u);
  ASSERT_TRUE(idx.RemoveDocument(doc, 5).ok());
  EXPECT_EQ(idx.btree().num_entries(), 0u);
}

// ---------- $geoIntersects semantics ----------

TEST(GeoIntersectsTest, PointsAndLines) {
  const geo::Rect box{{5, 5}, {10, 10}};
  const ExprPtr q = MakeGeoIntersectsBox("location", box);
  EXPECT_TRUE(q->Matches(PointDoc(1, 7, 7, 0)));
  EXPECT_FALSE(q->Matches(PointDoc(1, 4, 7, 0)));
  // Line crossing the box without a vertex inside it.
  EXPECT_TRUE(q->Matches(LineDoc(1, {{0, 7}, {20, 8}}, 0)));
  // Line entirely inside.
  EXPECT_TRUE(q->Matches(LineDoc(1, {{6, 6}, {7, 7}}, 0)));
  // Line passing nearby.
  EXPECT_FALSE(q->Matches(LineDoc(1, {{0, 0}, {4, 4}}, 0)));
  // Missing / non-geometry field.
  bson::Document none;
  none.Append("x", Value::Int32(1));
  EXPECT_FALSE(q->Matches(none));
}

// ---------- end-to-end over a mixed collection ----------

class MixedGeometryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(123);
    int id = 0;
    // 300 points and 150 short trajectory polylines in [0,30]^2.
    for (int i = 0; i < 300; ++i) {
      Insert(PointDoc(id++, rng.NextDouble(0, 30), rng.NextDouble(0, 30),
                      60000LL * i));
    }
    for (int i = 0; i < 150; ++i) {
      const double lon = rng.NextDouble(0, 29);
      const double lat = rng.NextDouble(0, 29);
      Insert(LineDoc(id++,
                     {{lon, lat},
                      {lon + rng.NextDouble(0.1, 1.0),
                       lat + rng.NextDouble(0.1, 1.0)},
                      {lon + rng.NextDouble(0.1, 1.0),
                       lat + rng.NextDouble(0.2, 2.0)}},
                     60000LL * i));
    }
    ASSERT_TRUE(catalog_
                    .CreateIndex(index::IndexDescriptor(
                        "geo_date",
                        {{"location", index::IndexFieldKind::k2dsphere},
                         {"date", index::IndexFieldKind::kAscending}},
                        26))
                    .ok());
    records_.ForEach([&](storage::RecordId rid, const bson::Document& doc) {
      ASSERT_TRUE(catalog_.OnInsert(doc, rid).ok());
    });
  }

  void Insert(bson::Document doc) { records_.Insert(std::move(doc)); }

  std::set<int> NaiveIds(const ExprPtr& expr) const {
    std::set<int> ids;
    records_.ForEach([&](storage::RecordId, const bson::Document& doc) {
      if (expr->Matches(doc)) ids.insert(doc.Get("id")->AsInt32());
    });
    return ids;
  }

  storage::RecordStore records_;
  index::IndexCatalog catalog_;
};

TEST_F(MixedGeometryTest, GeoIntersectsMatchesNaiveViaIndex) {
  const ExprPtr q = MakeGeoIntersectsBox("location", {{10, 10}, {14, 14}});
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q);
  EXPECT_EQ(r.winning_index, "geo_date");
  std::set<int> got;
  for (const bson::Document* doc : r.docs) {
    got.insert(doc->Get("id")->AsInt32());
  }
  EXPECT_EQ(got, NaiveIds(q));
  EXPECT_GT(r.docs.size(), 0u);
}

TEST_F(MixedGeometryTest, MultikeyScanReturnsEachDocumentOnce) {
  // A box crossing many cells: a polyline inside it has several matching
  // index entries but must be returned exactly once.
  const ExprPtr q = MakeGeoIntersectsBox("location", {{0, 0}, {30, 30}});
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q);
  std::set<int> unique_ids;
  for (const bson::Document* doc : r.docs) {
    EXPECT_TRUE(unique_ids.insert(doc->Get("id")->AsInt32()).second)
        << "duplicate document in result set";
  }
  EXPECT_EQ(unique_ids.size(), 450u);
}

TEST(LineStringClusterTest, BaselineApproachStoresAndFindsTrajectorySegments) {
  // The paper's polyline future work, end to end: a date-sharded cluster
  // (the baseline layout — MongoDB forbids multikey shard keys, so the
  // Hilbert shard key stays point-only) with a 2dsphere compound index over
  // mixed points and trajectory segments.
  cluster::ClusterOptions options;
  options.num_shards = 3;
  cluster::Cluster cluster(options);
  ASSERT_TRUE(cluster
                  .ShardCollection(cluster::ShardKeyPattern(
                      {"date"}, cluster::ShardingStrategy::kRange))
                  .ok());
  ASSERT_TRUE(cluster
                  .CreateIndex(index::IndexDescriptor(
                      "location_2dsphere_date_1",
                      {{"location", index::IndexFieldKind::k2dsphere},
                       {"date", index::IndexFieldKind::kAscending}},
                      26))
                  .ok());
  Rng rng(9);
  for (int i = 0; i < 400; ++i) {
    const double lon = rng.NextDouble(23.0, 24.0);
    const double lat = rng.NextDouble(37.5, 38.5);
    bson::Document doc = rng.NextBool(0.5)
        ? PointDoc(i, lon, lat, 60000LL * i)
        : LineDoc(i, {{lon, lat}, {lon + 0.02, lat + 0.015}}, 60000LL * i);
    ASSERT_TRUE(cluster.Insert(std::move(doc)).ok());
  }
  cluster.Balance();

  const ExprPtr q = MakeAnd(
      {MakeGeoIntersectsBox("location", {{23.4, 37.8}, {23.6, 38.0}}),
       MakeRange("date", Value::DateTime(0),
                 Value::DateTime(60000LL * 400))});
  const cluster::ClusterQueryResult r = cluster.Query(q);

  size_t naive = 0;
  for (const auto& shard : cluster.shards()) {
    shard->collection().records().ForEach(
        [&](storage::RecordId, const bson::Document& doc) {
          naive += q->Matches(doc);
        });
  }
  EXPECT_EQ(r.docs.size(), naive);
  EXPECT_GT(naive, 0u);
}

TEST_F(MixedGeometryTest, GeoWithinStillWorksOnPointsOnly) {
  // $geoWithin over the mixed collection: lines never match (a line is not
  // "within" unless all of it is; we implement point-within only), points do.
  const ExprPtr q = MakeGeoWithinBox("location", {{5, 5}, {25, 25}});
  const ExecutionResult r = ExecuteQuery(records_, catalog_, q);
  EXPECT_EQ(r.docs.size(), NaiveIds(q).size());
  for (const bson::Document* doc : r.docs) {
    double lon, lat;
    EXPECT_TRUE(bson::ExtractGeoJsonPoint(*doc->Get("location"), &lon, &lat))
        << "a LineString leaked into $geoWithin results";
  }
}

}  // namespace
}  // namespace stix::query
