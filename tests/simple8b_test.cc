#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bson/simple8b.h"
#include "common/rng.h"

namespace stix::bson {
namespace {

// ---------- zigzag / varint ----------

TEST(ZigZagTest, OrderPreservingFold) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagEncode(2), 4u);
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(std::numeric_limits<int64_t>::min())),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(std::numeric_limits<int64_t>::max())),
            std::numeric_limits<int64_t>::max());
}

TEST(VarintTest, RoundTripEdges) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (uint64_t{1} << 60) - 1,
                            std::numeric_limits<uint64_t>::max()};
  for (const uint64_t v : cases) {
    std::string buf;
    PutVarint(v, &buf);
    std::string_view in = buf;
    const Result<uint64_t> back = GetVarint(&in);
    ASSERT_TRUE(back.ok()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint(std::numeric_limits<uint64_t>::max(), &buf);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    std::string_view in = std::string_view(buf).substr(0, cut);
    EXPECT_FALSE(GetVarint(&in).ok()) << "cut at " << cut;
  }
}

// ---------- Simple8b word packing ----------

void ExpectSimple8bRoundTrip(const std::vector<uint64_t>& values) {
  std::string buf;
  ASSERT_TRUE(Simple8bEncode(values, &buf));
  std::string_view in = buf;
  const Result<std::vector<uint64_t>> back = Simple8bDecode(&in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, values);
  EXPECT_TRUE(in.empty());
}

TEST(Simple8bTest, EmptyAndSingle) {
  ExpectSimple8bRoundTrip({});
  ExpectSimple8bRoundTrip({0});
  ExpectSimple8bRoundTrip({kSimple8bMaxValue});
}

TEST(Simple8bTest, ZeroRunsUseRunSelectors) {
  // 1000 zeros should land in a handful of run words (240 zeros each), far
  // below one word per value.
  const std::vector<uint64_t> zeros(1000, 0);
  std::string buf;
  ASSERT_TRUE(Simple8bEncode(zeros, &buf));
  EXPECT_LT(buf.size(), 8u * 10 + 10);
  std::string_view in = buf;
  const Result<std::vector<uint64_t>> back = Simple8bDecode(&in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, zeros);
}

TEST(Simple8bTest, ValueAboveCeilingIsRejectedAtomically) {
  std::string buf = "prefix";
  EXPECT_FALSE(Simple8bEncode({1, kSimple8bMaxValue + 1, 2}, &buf));
  EXPECT_EQ(buf, "prefix");  // untouched on failure
}

TEST(Simple8bTest, AdversarialWidthMixes) {
  // Alternating tiny/huge values defeat any single-width packing; runs of
  // equal widths exercise every selector.
  Rng rng(0x5117);
  std::vector<uint64_t> mixed;
  for (int i = 0; i < 500; ++i) {
    mixed.push_back(i % 2 == 0 ? rng.NextBounded(2)
                               : kSimple8bMaxValue - rng.NextBounded(100));
  }
  ExpectSimple8bRoundTrip(mixed);

  for (int width = 1; width <= 60; ++width) {
    std::vector<uint64_t> run;
    const uint64_t max =
        width == 60 ? kSimple8bMaxValue : (uint64_t{1} << width) - 1;
    for (int i = 0; i < 100; ++i) {
      const uint64_t dip = std::min<uint64_t>(i % 3, max);
      run.push_back(max - dip);
    }
    ExpectSimple8bRoundTrip(run);
  }
}

TEST(Simple8bTest, RandomizedRoundTrip) {
  Rng rng(20260807);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = rng.NextBounded(400);
    // Bias the width distribution: mostly narrow, occasionally maximal.
    std::vector<uint64_t> values;
    values.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const int width = static_cast<int>(rng.NextBounded(61));
      const uint64_t max =
          width >= 60 ? kSimple8bMaxValue : (uint64_t{1} << width) - 1;
      values.push_back(max == 0 ? 0 : rng.NextBounded(max + 1));
    }
    ExpectSimple8bRoundTrip(values);
  }
}

TEST(Simple8bTest, DecodeRejectsTruncation) {
  std::string buf;
  ASSERT_TRUE(Simple8bEncode({1, 2, 3, 4, 5, 6, 7, 8}, &buf));
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view in = std::string_view(buf).substr(0, cut);
    EXPECT_FALSE(Simple8bDecode(&in).ok()) << "cut at " << cut;
  }
}

// ---------- int64 column (zigzag delta-of-delta) ----------

void ExpectInt64RoundTrip(const std::vector<int64_t>& values) {
  std::string buf;
  EncodeInt64Column(values, &buf);
  std::string_view in = buf;
  const Result<std::vector<int64_t>> back = DecodeInt64Column(&in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, values);
  EXPECT_TRUE(in.empty());
}

TEST(Int64ColumnTest, TimestampLikeStreams) {
  // Constant-rate sampling with jitter: delta-of-delta is near zero — the
  // format's home turf.
  std::vector<int64_t> ts;
  Rng rng(7);
  int64_t t = 1530403200000;
  for (int i = 0; i < 1000; ++i) {
    ts.push_back(t);
    t += 60000 + static_cast<int64_t>(rng.NextBounded(200)) - 100;
  }
  std::string buf;
  EncodeInt64Column(ts, &buf);
  // ~1 byte per element, against 8 raw.
  EXPECT_LT(buf.size(), ts.size() * 3);
  ExpectInt64RoundTrip(ts);
}

TEST(Int64ColumnTest, AdversarialDistributions) {
  const int64_t kMin = std::numeric_limits<int64_t>::min();
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  ExpectInt64RoundTrip({});
  ExpectInt64RoundTrip({kMin});
  ExpectInt64RoundTrip({kMax, kMin});
  // Extreme alternation: every delta and delta-of-delta overflows, forcing
  // the raw mode.
  std::vector<int64_t> extreme;
  for (int i = 0; i < 100; ++i) extreme.push_back(i % 2 == 0 ? kMin : kMax);
  ExpectInt64RoundTrip(extreme);
  // Monotone ramp whose increments grow geometrically (deltas overflow
  // mid-stream).
  std::vector<int64_t> ramp;
  int64_t v = 0;
  for (int i = 0; i < 62; ++i) {
    ramp.push_back(v);
    v += int64_t{1} << i;
  }
  ExpectInt64RoundTrip(ramp);
}

TEST(Int64ColumnTest, RandomizedRoundTrip) {
  Rng rng(0xbadc0de);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int64_t> values;
    const size_t n = rng.NextBounded(300);
    for (size_t i = 0; i < n; ++i) {
      switch (rng.NextBounded(4)) {
        case 0:  // full-range
          values.push_back(static_cast<int64_t>(rng.Next()));
          break;
        case 1:  // small
          values.push_back(rng.NextInt(-1000, 1000));
          break;
        case 2:  // near extremes
          values.push_back(std::numeric_limits<int64_t>::max() -
                           rng.NextInt(0, 3));
          break;
        default:  // arithmetic-ish
          values.push_back(static_cast<int64_t>(i) * 1000003);
      }
    }
    ExpectInt64RoundTrip(values);
  }
}

// ---------- double column (decimal scaling / bit-pattern fallback) ----------

void ExpectDoubleRoundTrip(const std::vector<double>& values) {
  std::string buf;
  EncodeDoubleColumn(values, &buf);
  std::string_view in = buf;
  const Result<std::vector<double>> back = DecodeDoubleColumn(&in);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    // Bit-exact, not ==: distinguishes -0.0 from 0.0 and NaN payloads.
    uint64_t a, b;
    std::memcpy(&a, &values[i], 8);
    std::memcpy(&b, &(*back)[i], 8);
    EXPECT_EQ(a, b) << "index " << i << " value " << values[i];
  }
  EXPECT_TRUE(in.empty());
}

TEST(DoubleColumnTest, SpecialValues) {
  ExpectDoubleRoundTrip({});
  ExpectDoubleRoundTrip({0.0, -0.0});
  ExpectDoubleRoundTrip({std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::denorm_min(),
                         std::numeric_limits<double>::max(),
                         std::numeric_limits<double>::lowest()});
}

TEST(DoubleColumnTest, DecimalStreamsCompress) {
  // Two-decimal telemetry (fuel levels): the decimal-scaling mode should
  // beat 8 bytes per value.
  std::vector<double> fuel;
  Rng rng(99);
  double level = 75.0;
  for (int i = 0; i < 1000; ++i) {
    level -= 0.01 * static_cast<double>(rng.NextBounded(5));
    if (level < 5.0) level = 100.0;
    fuel.push_back(std::round(level * 100.0) / 100.0);
  }
  std::string buf;
  EncodeDoubleColumn(fuel, &buf);
  EXPECT_LT(buf.size(), fuel.size() * 4);
  ExpectDoubleRoundTrip(fuel);
}

TEST(DoubleColumnTest, RandomizedRoundTrip) {
  Rng rng(0xd0b1e);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> values;
    const size_t n = rng.NextBounded(300);
    for (size_t i = 0; i < n; ++i) {
      switch (rng.NextBounded(4)) {
        case 0: {  // arbitrary bit patterns (incl. NaNs, denormals)
          const uint64_t bits = rng.Next();
          double d;
          std::memcpy(&d, &bits, 8);
          values.push_back(d);
          break;
        }
        case 1:  // coordinates
          values.push_back(rng.NextDouble(19.0, 29.0));
          break;
        case 2:  // small decimals
          values.push_back(static_cast<double>(rng.NextInt(-10000, 10000)) /
                           100.0);
          break;
        default:  // integers
          values.push_back(static_cast<double>(rng.NextInt(-1000000, 1000000)));
      }
    }
    ExpectDoubleRoundTrip(values);
  }
}

// ---------- golden vectors ----------
//
// These pin the wire format itself: a byte change here is a storage format
// break (sealed buckets written by an older build would no longer decode),
// so it must be a deliberate, versioned decision — not a refactoring
// side-effect.

std::string Hex(const std::string& bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  for (const unsigned char c : bytes) {
    out += kDigits[c >> 4];
    out += kDigits[c & 0xf];
  }
  return out;
}

TEST(GoldenTest, Simple8bFixedVector) {
  std::string buf;
  ASSERT_TRUE(Simple8bEncode({1, 2, 3, 4, 5, 6, 7, 240}, &buf));
  EXPECT_EQ(Hex(buf), "080102030405060790f000000000000090");
}

TEST(GoldenTest, Int64ColumnFixedVector) {
  // 100ms cadence with one wobble: mode byte, count, then dod words.
  std::string buf;
  EncodeInt64Column({1000, 1100, 1200, 1301, 1400}, &buf);
  EXPECT_EQ(Hex(buf), "0005d0777000200003b0");
}

TEST(GoldenTest, DoubleColumnFixedVector) {
  std::string buf;
  EncodeDoubleColumn({37.98, 37.99, 38.0, 38.01}, &buf);
  EXPECT_EQ(Hex(buf), "00020004ac9dd40e000000c0");
}

}  // namespace
}  // namespace stix::bson
