// Online statistics layer: equi-depth histogram invariants under skewed
// builds, incremental inserts/deletes and rebuilds; ShardStatistics
// lifecycle (observe, drift, staleness, generation-guarded rebuilds); and
// golden estimation-accuracy bounds on fixed seeds.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "bson/document.h"
#include "common/rng.h"
#include "query/stats/shard_stats.h"
#include "st/st_store.h"

namespace stix::query::stats {
namespace {

// ---------- Equi-depth histogram invariants ----------

// Counts must sum to the population, uppers must strictly increase, and
// every value must fall inside [min, max].
void CheckStructure(const EquiDepthHistogram& h,
                    const std::vector<int64_t>& values) {
  uint64_t sum = 0;
  int64_t prev = std::numeric_limits<int64_t>::min();
  for (const EquiDepthHistogram::Bucket& b : h.buckets()) {
    EXPECT_GT(b.upper, prev);
    prev = b.upper;
    sum += b.count;
  }
  EXPECT_EQ(sum, values.size());
  EXPECT_EQ(h.total(), values.size());
  if (!values.empty()) {
    const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
    EXPECT_EQ(h.min_value(), *lo);
    EXPECT_EQ(h.max_value(), *hi);
  }
}

// Largest duplicate run in a sorted copy of `values` — the slack the
// equi-depth bound must grant (a boundary value is never split).
uint64_t LargestRun(std::vector<int64_t> values) {
  std::sort(values.begin(), values.end());
  uint64_t best = 0, run = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    run = (i > 0 && values[i] == values[i - 1]) ? run + 1 : 1;
    best = std::max(best, run);
  }
  return best;
}

// The equi-depth invariant under max-diff refinement: no bucket exceeds
// twice the ideal depth plus its largest duplicate run (cuts shift at most
// a quarter-bucket each way, and hot values are absorbed whole).
void CheckEquiDepth(const EquiDepthHistogram& h,
                    const std::vector<int64_t>& values, size_t max_buckets) {
  const double depth =
      static_cast<double>(values.size()) / static_cast<double>(max_buckets);
  const uint64_t slack = LargestRun(values);
  for (const EquiDepthHistogram::Bucket& b : h.buckets()) {
    EXPECT_LE(b.count, static_cast<uint64_t>(2.0 * depth) + slack + 1)
        << "bucket upper=" << b.upper;
  }
}

std::vector<int64_t> SkewedValues(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<int64_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) {
      // Hot cluster: a tight Gaussian ball with heavy duplicates.
      values.push_back(500000 +
                       static_cast<int64_t>(rng.NextGaussian() * 50.0));
    } else if (rng.NextBool(0.1)) {
      values.push_back(static_cast<int64_t>(rng.NextBounded(100)));  // dups
    } else {
      values.push_back(static_cast<int64_t>(rng.NextBounded(1000000)));
    }
  }
  return values;
}

TEST(EquiDepthHistogramTest, BuildInvariantsUnderSkew) {
  for (const uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    for (const size_t n : {size_t{10}, size_t{1000}, size_t{20000}}) {
      const std::vector<int64_t> values = SkewedValues(seed, n);
      EquiDepthHistogram h;
      h.Build(values, 64);
      CheckStructure(h, values);
      CheckEquiDepth(h, values, 64);
      EXPECT_TRUE(h.built());
      EXPECT_EQ(h.mutations_since_build(), 0u);
      EXPECT_EQ(h.Drift(), 0.0);
    }
  }
}

TEST(EquiDepthHistogramTest, BuildEdgeCases) {
  EquiDepthHistogram h;
  h.Build({}, 64);
  EXPECT_TRUE(h.built());
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.EstimateRange(0, 100), 0.0);

  // All-identical population: one bucket, never split.
  h.Build(std::vector<int64_t>(1000, 7), 64);
  EXPECT_EQ(h.num_buckets(), 1u);
  EXPECT_EQ(h.total(), 1000u);
  EXPECT_DOUBLE_EQ(h.EstimateRange(7, 7), 1000.0);
  EXPECT_DOUBLE_EQ(h.EstimateRange(8, 100), 0.0);

  // Fewer values than buckets.
  h.Build({3, 1, 2}, 64);
  CheckStructure(h, {1, 2, 3});
}

TEST(EquiDepthHistogramTest, EstimateRangeExactOnFullSpanAndMonotone) {
  const std::vector<int64_t> values = SkewedValues(99, 5000);
  EquiDepthHistogram h;
  h.Build(values, 64);
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  EXPECT_DOUBLE_EQ(h.EstimateRange(*lo, *hi), 5000.0);
  EXPECT_DOUBLE_EQ(
      h.EstimateRange(std::numeric_limits<int64_t>::min(),
                      std::numeric_limits<int64_t>::max()),
      5000.0);
  // Widening a range can only grow the estimate.
  double prev = 0.0;
  for (int64_t width = 1000; width <= 1000000; width *= 4) {
    const double est = h.EstimateRange(400000, 400000 + width);
    EXPECT_GE(est, prev - 1e-9);
    prev = est;
  }
  EXPECT_EQ(h.EstimateRange(10, 5), 0.0);  // inverted range
}

TEST(EquiDepthHistogramTest, IncrementalAddRemoveTracksTotalsAndDrift) {
  std::vector<int64_t> values = SkewedValues(5, 2000);
  EquiDepthHistogram h;
  h.Build(values, 64);

  Rng rng(17);
  for (int i = 0; i < 300; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBounded(1200000));
    h.Add(v);
    values.push_back(v);
  }
  EXPECT_EQ(h.total(), 2300u);
  EXPECT_EQ(h.mutations_since_build(), 300u);
  EXPECT_NEAR(h.Drift(), 300.0 / 2000.0, 1e-12);
  // Adds past the old max stretch the top bucket: full-span estimates stay
  // exact.
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  EXPECT_DOUBLE_EQ(h.EstimateRange(*lo, *hi), 2300.0);

  for (int i = 0; i < 300; ++i) {
    h.Remove(values[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(h.total(), 2000u);
  EXPECT_NEAR(h.Drift(), 600.0 / 2000.0, 1e-12);
}

TEST(EquiDepthHistogramTest, UnbuiltWithDataReportsInfiniteDrift) {
  EquiDepthHistogram h;
  EXPECT_EQ(h.Drift(), 0.0);  // empty and unbuilt: nothing to do
  h.Add(5);
  EXPECT_TRUE(std::isinf(h.Drift()));
  h.Build({5}, 8);
  EXPECT_EQ(h.Drift(), 0.0);
}

// Golden accuracy bound on fixed seeds: uniform and skewed populations,
// random closed ranges; the estimate must land within 15% of the truth
// plus a small absolute slack (narrow ranges round to bucket fractions).
TEST(EquiDepthHistogramTest, GoldenEstimatesOnFixedSeeds) {
  for (const uint64_t seed : {11ull, 23ull, 808ull}) {
    std::vector<int64_t> values = SkewedValues(seed, 20000);
    EquiDepthHistogram h;
    h.Build(values, 64);
    std::sort(values.begin(), values.end());
    Rng rng(seed ^ 0xfeed);
    for (int i = 0; i < 50; ++i) {
      const int64_t a = static_cast<int64_t>(rng.NextBounded(1000000));
      const int64_t b = static_cast<int64_t>(rng.NextBounded(1000000));
      const int64_t lo = std::min(a, b), hi = std::max(a, b);
      const double truth = static_cast<double>(
          std::upper_bound(values.begin(), values.end(), hi) -
          std::lower_bound(values.begin(), values.end(), lo));
      const double est = h.EstimateRange(lo, hi);
      EXPECT_NEAR(est, truth, 0.15 * truth + 0.02 * 20000)
          << "seed=" << seed << " range=[" << lo << "," << hi << "]";
    }
  }
}

// ---------- ShardStatistics lifecycle ----------

ObservedValues RowValue(int64_t date, int64_t hilbert) {
  ObservedValues v;
  v.date = date;
  v.hilbert = hilbert;
  v.points = 1;
  return v;
}

RebuildSample SampleOf(const std::vector<int64_t>& dates) {
  RebuildSample sample;
  sample.dates = dates;
  sample.num_docs = dates.size();
  sample.num_points = dates.size();
  return sample;
}

TEST(ShardStatisticsTest, EmptyShardIsReliableAndEstimatesZero) {
  ShardStatistics stats;
  EXPECT_FALSE(stats.NeedsRebuild());
  EXPECT_TRUE(stats.ReliableForEstimation());
  EXPECT_EQ(stats.EstimateRange(ShardStatistics::kDatePath, 0, 100), 0.0);
  EXPECT_EQ(stats.total_docs(), 0u);
}

TEST(ShardStatisticsTest, ObserveBeforeFirstBuildForcesRebuild) {
  ShardStatistics stats;
  stats.Observe(RowValue(1000, 5), +1);
  EXPECT_TRUE(stats.NeedsRebuild());
  EXPECT_FALSE(stats.ReliableForEstimation());
  EXPECT_EQ(stats.total_docs(), 1u);

  const uint64_t gen = stats.rebuild_generation();
  stats.Rebuild(SampleOf({1000}), gen);
  EXPECT_FALSE(stats.NeedsRebuild());
  EXPECT_TRUE(stats.ReliableForEstimation());
  EXPECT_EQ(stats.rebuilds(), 1u);
  EXPECT_DOUBLE_EQ(stats.EstimateRange(ShardStatistics::kDatePath, 0, 2000),
                   1.0);
  // No hilbert histogram was sampled: unknown path reports negative.
  EXPECT_LT(stats.EstimateRange(ShardStatistics::kHilbertPath, 0, 10), 0.0);
}

TEST(ShardStatisticsTest, DriftPastThresholdTriggersRebuild) {
  ShardStatistics stats;
  std::vector<int64_t> dates;
  for (int64_t i = 0; i < 1000; ++i) {
    dates.push_back(i * 100);
    stats.Observe(RowValue(i * 100, i), +1);
  }
  RebuildSample sample = SampleOf(dates);
  for (int64_t i = 0; i < 1000; ++i) sample.hilberts.push_back(i);
  stats.Rebuild(std::move(sample), stats.rebuild_generation());
  EXPECT_FALSE(stats.NeedsRebuild());

  // Mutations up to (but not past) kMaxDrift stay fresh.
  const int below = static_cast<int>(ShardStatistics::kMaxDrift * 1000) - 1;
  for (int i = 0; i < below; ++i) stats.Observe(RowValue(50, 3), +1);
  EXPECT_FALSE(stats.NeedsRebuild());
  for (int i = 0; i < 10; ++i) stats.Observe(RowValue(50, 3), +1);
  EXPECT_TRUE(stats.NeedsRebuild());
  EXPECT_FALSE(stats.ReliableForEstimation());
}

TEST(ShardStatisticsTest, DeletesCountTowardDrift) {
  ShardStatistics stats;
  std::vector<int64_t> dates;
  for (int64_t i = 0; i < 100; ++i) dates.push_back(i);
  stats.Rebuild(SampleOf(dates), stats.rebuild_generation());
  for (int64_t i = 0; i < 30; ++i) stats.Observe(RowValue(i, 0), -1);
  EXPECT_TRUE(stats.NeedsRebuild());  // 30/100 > kMaxDrift
}

TEST(ShardStatisticsTest, MarkStaleForcesRebuildAndGenerationGuards) {
  ShardStatistics stats;
  stats.Rebuild(SampleOf({1, 2, 3}), stats.rebuild_generation());
  EXPECT_FALSE(stats.NeedsRebuild());
  stats.MarkStale();
  EXPECT_TRUE(stats.NeedsRebuild());

  // A racing rebuild that read its generation before ours commits is
  // discarded: generation moved when we rebuilt first.
  const uint64_t stale_gen = stats.rebuild_generation();
  stats.Rebuild(SampleOf({1, 2, 3}), stale_gen);  // wins, ++generation
  EXPECT_EQ(stats.rebuilds(), 2u);
  stats.Rebuild(SampleOf({9}), stale_gen);  // stale: discarded
  EXPECT_EQ(stats.rebuilds(), 2u);
  EXPECT_EQ(stats.total_docs(), 3u);
}

TEST(ShardStatisticsTest, BucketDocumentsTrackPointsAndAvgFill) {
  ShardStatistics stats;
  ObservedValues bucket;
  bucket.date = 0;
  bucket.hilbert = 4;
  bucket.points = 50;
  bucket.is_bucket = true;
  stats.Observe(bucket, +1);
  bucket.points = 30;
  stats.Observe(bucket, +1);
  EXPECT_EQ(stats.total_docs(), 2u);
  EXPECT_EQ(stats.total_points(), 80u);
  EXPECT_DOUBLE_EQ(stats.avg_points_per_doc(), 40.0);
  stats.Observe(bucket, -1);
  EXPECT_EQ(stats.total_docs(), 1u);
  EXPECT_EQ(stats.total_points(), 50u);
}

TEST(ShardStatisticsTest, IntervalSumMatchesPerRangeEstimates) {
  ShardStatistics stats;
  std::vector<int64_t> dates;
  for (int64_t i = 0; i < 1000; ++i) dates.push_back(i);
  stats.Rebuild(SampleOf(dates), stats.rebuild_generation());
  const std::vector<std::pair<int64_t, int64_t>> ranges = {
      {0, 99}, {500, 599}, {900, 999}};
  double sum = 0.0;
  for (const auto& [lo, hi] : ranges) {
    sum += stats.EstimateRange(ShardStatistics::kDatePath, lo, hi);
  }
  EXPECT_NEAR(stats.EstimateIntervalSum(ShardStatistics::kDatePath, ranges),
              sum, 1e-9);
}

// ---------- ExtractStatsValues over real document shapes ----------

TEST(ExtractStatsValuesTest, RowDocumentYieldsDateHilbertAndGeoCell) {
  bson::Document doc;
  doc.Append("location",
             bson::Value::MakeDocument(bson::GeoJsonPoint(10.0, 20.0)));
  doc.Append("date", bson::Value::DateTime(123456));
  doc.Append("hilbertIndex", bson::Value::Int64(42));
  const geo::GeoHash geohash(26);
  const ObservedValues v = ExtractStatsValues(doc, &geohash);
  ASSERT_TRUE(v.date.has_value());
  EXPECT_EQ(*v.date, 123456);
  ASSERT_TRUE(v.hilbert.has_value());
  EXPECT_EQ(*v.hilbert, 42);
  ASSERT_TRUE(v.geocell.has_value());
  EXPECT_EQ(*v.geocell, static_cast<int64_t>(geohash.Encode(10.0, 20.0)));
  EXPECT_EQ(v.points, 1u);
  EXPECT_FALSE(v.is_bucket);
}

TEST(ExtractStatsValuesTest, MissingFieldsYieldEmptyOptionals) {
  bson::Document doc;
  doc.Append("other", bson::Value::Int32(1));
  const ObservedValues v = ExtractStatsValues(doc, nullptr);
  EXPECT_FALSE(v.date.has_value());
  EXPECT_FALSE(v.hilbert.has_value());
  EXPECT_FALSE(v.geocell.has_value());
}

}  // namespace
}  // namespace stix::query::stats

// ---------- Store-level integration: live maintenance + bucket seals +
// mid-run migrations ----------

namespace stix::st {
namespace {

bson::Document PointDoc(double lon, double lat, int64_t t_ms, int32_t fid) {
  bson::Document doc;
  doc.Append(kLocationField,
             bson::Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
  doc.Append(kDateField, bson::Value::DateTime(t_ms));
  doc.Append("fid", bson::Value::Int32(fid));
  return doc;
}

constexpr int64_t kT0 = 1538352000000;

StStoreOptions SmallStoreOptions(ApproachKind kind, bool bucketed) {
  StStoreOptions options;
  options.approach.kind = kind;
  options.approach.hilbert_order = 6;
  options.approach.dataset_mbr = geo::Rect{{0.0, 0.0}, {10.0, 10.0}};
  options.cluster.num_shards = 3;
  options.cluster.chunk_max_bytes = 16 * 1024;
  if (bucketed) {
    storage::BucketLayout layout;
    layout.window_ms = 3600000;
    layout.max_points = 32;
    options.bucket = layout;
  }
  return options;
}

void LoadUniform(StStore* store, int count, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    // Sequence the draws explicitly: argument evaluation order is
    // unspecified, and oracles replay this stream.
    const double lon = rng.NextDouble(0.0, 10.0);
    const double lat = rng.NextDouble(0.0, 10.0);
    const int64_t t = kT0 + static_cast<int64_t>(rng.NextBounded(86400000));
    ASSERT_TRUE(store->Insert(PointDoc(lon, lat, t, i)).ok());
  }
  ASSERT_TRUE(store->FinishLoad().ok());
}

uint64_t TotalStatsDocs(const StStore& store) {
  uint64_t total = 0;
  for (const auto& shard : store.cluster().shards()) {
    total += shard->statistics().total_docs();
  }
  return total;
}

TEST(StoreStatsTest, InsertsMaintainPerShardCountsAcrossLayouts) {
  for (const bool bucketed : {false, true}) {
    StStore store(SmallStoreOptions(ApproachKind::kHil, bucketed));
    ASSERT_TRUE(store.Setup().ok());
    LoadUniform(&store, 500, 3);
    ASSERT_TRUE(store.FlushBuckets().ok());
    uint64_t docs = 0, points = 0;
    for (const auto& shard : store.cluster().shards()) {
      docs += shard->statistics().total_docs();
      points += shard->statistics().total_points();
    }
    EXPECT_EQ(points, 500u) << (bucketed ? "bucket" : "row");
    if (bucketed) {
      EXPECT_LT(docs, 500u);  // sealed buckets hold many points each
    } else {
      EXPECT_EQ(docs, 500u);
    }
    EXPECT_EQ(docs, store.cluster().total_documents());
  }
}

TEST(StoreStatsTest, DeleteMaintainsCounts) {
  StStore store(SmallStoreOptions(ApproachKind::kHil, false));
  ASSERT_TRUE(store.Setup().ok());
  LoadUniform(&store, 400, 9);
  const geo::Rect half{{0.0, 0.0}, {5.0, 10.0}};
  const Result<uint64_t> removed =
      store.Delete(half, kT0, kT0 + 86400000);
  ASSERT_TRUE(removed.ok());
  EXPECT_GT(*removed, 0u);
  EXPECT_EQ(TotalStatsDocs(store), 400u - *removed);
}

TEST(StoreStatsTest, QueriesBuildHistogramsLazily) {
  StStore store(SmallStoreOptions(ApproachKind::kBslST, false));
  ASSERT_TRUE(store.Setup().ok());
  LoadUniform(&store, 300, 21);
  // Before any query: observed but never built.
  bool any_unreliable = false;
  for (const auto& shard : store.cluster().shards()) {
    if (shard->statistics().total_docs() > 0 &&
        !shard->statistics().ReliableForEstimation()) {
      any_unreliable = true;
    }
  }
  EXPECT_TRUE(any_unreliable);

  (void)store.Query(geo::Rect{{2.0, 2.0}, {8.0, 8.0}}, kT0,
                    kT0 + 86400000);
  for (const auto& shard : store.cluster().shards()) {
    EXPECT_TRUE(shard->statistics().ReliableForEstimation());
    if (shard->statistics().total_docs() > 0) {
      EXPECT_GE(shard->statistics().rebuilds(), 1u);
    }
  }
}

TEST(StoreStatsTest, EstimateFractionAggregatesShards) {
  StStore store(SmallStoreOptions(ApproachKind::kHil, false));
  ASSERT_TRUE(store.Setup().ok());
  LoadUniform(&store, 1000, 33);
  // Build the histograms.
  (void)store.Query(geo::Rect{{0.0, 0.0}, {10.0, 10.0}}, kT0,
                    kT0 + 86400000);
  const double all = store.cluster().EstimateFraction(
      kDateField, kT0, kT0 + 86400000);
  EXPECT_NEAR(all, 1.0, 0.05);
  const double half = store.cluster().EstimateFraction(
      kDateField, kT0, kT0 + 43200000);
  EXPECT_NEAR(half, 0.5, 0.15);
  const double none = store.cluster().EstimateFraction(
      kDateField, kT0 - 200000, kT0 - 100000);
  EXPECT_LE(none, 0.05);
}

// Mid-run migrations: re-zoning moves chunks between shards; the stats of
// both ends are marked stale and the next query rebuilds them to exact
// per-shard counts again.
TEST(StoreStatsTest, MigrationMarksStaleAndRebuildRestoresCounts) {
  StStore store(SmallStoreOptions(ApproachKind::kHil, false));
  ASSERT_TRUE(store.Setup().ok());
  LoadUniform(&store, 600, 55);
  (void)store.Query(geo::Rect{{0.0, 0.0}, {10.0, 10.0}}, kT0,
                    kT0 + 86400000);  // build everywhere

  ASSERT_TRUE(store.ConfigureZones().ok());  // migrates chunks

  bool any_stale = false;
  for (const auto& shard : store.cluster().shards()) {
    if (shard->statistics().NeedsRebuild()) any_stale = true;
  }
  EXPECT_TRUE(any_stale);
  EXPECT_EQ(TotalStatsDocs(store), 600u);  // incremental counts never lie

  (void)store.Query(geo::Rect{{0.0, 0.0}, {10.0, 10.0}}, kT0,
                    kT0 + 86400000);
  for (const auto& shard : store.cluster().shards()) {
    EXPECT_TRUE(shard->statistics().ReliableForEstimation());
    EXPECT_EQ(shard->statistics().total_docs(),
              shard->collection().records().num_records());
  }
}

}  // namespace
}  // namespace stix::st
