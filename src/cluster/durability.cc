#include "bson/codec.h"
#include "cluster/cluster.h"
#include "cluster/snapshot.h"
#include "common/metrics.h"
#include "storage/wal.h"

namespace stix::cluster {

// Whole-cluster crash recovery. The config journal is the root of trust:
// its last committed kConfigMeta record names the shard count, shard key,
// chunk table, zones and index set. Shards then recover independently
// (checkpoint + WAL replay), and a final orphan sweep reconciles the two:
// any document sitting on a shard that the journaled chunk table does not
// assign it to belongs to a migration that crashed before its topology
// flip was journaled (dest copies) or after it (source leftovers) — either
// way the journaled owner decides, making migrations atomic under crashes.
Result<std::unique_ptr<Cluster>> RecoverCluster(const ClusterOptions& options) {
  const DurabilityOptions& d = options.durability;
  if (d.data_dir.empty()) {
    return Status::InvalidArgument(
        "RecoverCluster needs durability.data_dir");
  }
  const std::string config_path = d.data_dir + "/config.wal";

  const Result<storage::WalScan> scan = storage::ReadWal(config_path);
  if (!scan.ok()) return scan.status();
  const storage::WalRecord* last_meta = nullptr;
  for (const storage::WalRecord& record : scan->committed) {
    if (record.type == storage::WalRecordType::kConfigMeta) {
      last_meta = &record;
    }
  }
  if (last_meta == nullptr) {
    return Status::Corruption("no topology record in config journal: " +
                              config_path);
  }
  const Result<bson::Document> meta_doc = bson::DecodeBson(last_meta->payload);
  if (!meta_doc.ok()) return meta_doc.status();
  Result<ClusterMeta> meta = ParseClusterMetadata(*meta_doc);
  if (!meta.ok()) return meta.status();

  ClusterOptions opts = options;
  opts.num_shards = meta->num_shards;
  auto cluster = std::make_unique<Cluster>(opts);
  // Suppresses the fresh-WAL init inside ShardCollection — recovery
  // attaches WALs itself, with their history intact.
  cluster->durability_attached_ = true;

  Status s = cluster->RestoreShardingState(meta->pattern,
                                           std::move(meta->chunks),
                                           std::move(meta->zones),
                                           meta->secondary_indexes);
  if (!s.ok()) return s;

  for (auto& shard : cluster->shards_) {
    const Status rs =
        shard->Recover(d.data_dir + "/shard-" + std::to_string(shard->id()),
                       d.wal, d.checkpoint_wal_bytes);
    if (!rs.ok()) return rs;
  }

  // Orphan sweep (see above). The removes go through the normal durable
  // path, so the sweep itself survives a crash-during-recovery.
  {
    const std::unique_lock<std::shared_mutex> topo(cluster->topology_mu_);
    STIX_METRIC_COUNTER(orphans, "recovery.orphans_swept");
    for (auto& shard : cluster->shards_) {
      std::vector<storage::RecordId> doomed;
      shard->collection().records().ForEach(
          [&](storage::RecordId rid, const bson::Document& doc) {
            const std::string key = cluster->pattern_.KeyOf(doc);
            const Chunk& chunk =
                cluster->chunks_->chunk(cluster->chunks_->FindChunkIndex(key));
            if (chunk.shard_id != shard->id()) doomed.push_back(rid);
          });
      for (const storage::RecordId rid : doomed) {
        if (Status rs = shard->Remove(rid); !rs.ok()) return rs;
      }
      if (!doomed.empty()) {
        orphans.Increment(doomed.size());
        shard->OnDataDistributionChanged();
      }
    }
  }

  // Reopen the config journal for new topology writes (truncating any torn
  // tail past the record we just recovered from).
  storage::WalOptions config_opts;
  config_opts.sync_every_commits = 1;
  Result<std::unique_ptr<storage::WriteAheadLog>> wal =
      storage::WriteAheadLog::Open(config_path, config_opts, /*fresh=*/false);
  if (!wal.ok()) return wal.status();
  cluster->config_wal_ = std::move(*wal);
  STIX_METRIC_COUNTER(recoveries, "recovery.cluster_recoveries");
  recoveries.Increment();
  return cluster;
}

}  // namespace stix::cluster
