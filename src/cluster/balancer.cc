#include "cluster/balancer.h"

#include <vector>

namespace stix::cluster {

int ZoneForChunk(const std::vector<ZoneRange>& zones, const Chunk& chunk) {
  // Zones are few and sorted; overlap is an interval intersection test.
  for (const ZoneRange& z : zones) {
    if (z.min < chunk.max && chunk.min < z.max) return z.shard_id;
  }
  return -1;
}

std::optional<Migration> PickNextMigration(const ChunkManager& chunks,
                                           int num_shards,
                                           const std::vector<ZoneRange>& zones,
                                           const BalancerOptions& options,
                                           Rng* rng) {
  // Priority 1: zone violations. Overlap-based pinning (ZoneForChunk)
  // catches chunks that straddle a zone boundary; classifying by the min
  // key alone left such chunks stranded on the wrong shard.
  if (!zones.empty()) {
    for (size_t i = 0; i < chunks.num_chunks(); ++i) {
      const Chunk& c = chunks.chunk(i);
      const int owner = ZoneForChunk(zones, c);
      if (owner >= 0 && owner != c.shard_id) {
        return Migration{i, owner};
      }
    }
  }

  // Priority 2: even out the chunks that are actually free to move. The
  // counts deliberately exclude pinned chunks — a shard whose surplus is
  // entirely pinned is not a donor (nothing on it can move), and a movable
  // imbalance between two lightly-loaded shards must not be masked by a
  // third shard's pinned load.
  std::vector<int> counts(static_cast<size_t>(num_shards), 0);
  for (size_t i = 0; i < chunks.num_chunks(); ++i) {
    const Chunk& c = chunks.chunk(i);
    if (!zones.empty() && ZoneForChunk(zones, c) >= 0) continue;  // pinned
    ++counts[static_cast<size_t>(c.shard_id)];
  }
  int donor = 0, recipient = 0;
  for (int s = 1; s < num_shards; ++s) {
    if (counts[s] > counts[donor]) donor = s;
    if (counts[s] < counts[recipient]) recipient = s;
  }
  if (counts[donor] - counts[recipient] < options.imbalance_threshold) {
    return std::nullopt;
  }

  std::vector<size_t> movable;
  for (size_t i = 0; i < chunks.num_chunks(); ++i) {
    const Chunk& c = chunks.chunk(i);
    if (c.shard_id != donor) continue;
    if (!zones.empty() && ZoneForChunk(zones, c) >= 0) continue;  // pinned
    movable.push_back(i);
  }
  if (movable.empty()) return std::nullopt;
  if (options.weigh_by_writes) {
    // Hottest movable chunk by the per-range write counter; ties (and the
    // all-cold case) fall through to the points/random pick below.
    uint64_t best = 0;
    for (const size_t i : movable) {
      best = std::max(best, chunks.chunk(i).writes);
    }
    if (best > 0) {
      std::vector<size_t> hottest;
      for (const size_t i : movable) {
        if (chunks.chunk(i).writes == best) hottest.push_back(i);
      }
      const size_t pick = hottest[rng->NextBounded(hottest.size())];
      return Migration{pick, recipient};
    }
  }
  if (options.weigh_by_points) {
    // Heaviest movable chunk first; rng breaks ties among equals so the
    // degenerate all-equal case matches the unweighted pick distribution.
    uint64_t best = 0;
    for (const size_t i : movable) {
      best = std::max(best, chunks.chunk(i).points);
    }
    std::vector<size_t> heaviest;
    for (const size_t i : movable) {
      if (chunks.chunk(i).points == best) heaviest.push_back(i);
    }
    const size_t pick = heaviest[rng->NextBounded(heaviest.size())];
    return Migration{pick, recipient};
  }
  const size_t pick = movable[rng->NextBounded(movable.size())];
  return Migration{pick, recipient};
}

}  // namespace stix::cluster
