#include "cluster/balancer.h"

#include <vector>

namespace stix::cluster {

std::optional<Migration> PickNextMigration(const ChunkManager& chunks,
                                           int num_shards,
                                           const std::vector<ZoneRange>& zones,
                                           const BalancerOptions& options,
                                           Rng* rng) {
  // Priority 1: zone violations.
  if (!zones.empty()) {
    for (size_t i = 0; i < chunks.num_chunks(); ++i) {
      const Chunk& c = chunks.chunk(i);
      const int owner = ZoneForKey(zones, c.min);
      if (owner >= 0 && owner != c.shard_id) {
        return Migration{i, owner};
      }
    }
  }

  // Priority 2: even out chunk counts among shards, considering only chunks
  // that are free to move (no zone pin).
  std::vector<int> counts = chunks.CountsPerShard(num_shards);
  int donor = 0, recipient = 0;
  for (int s = 1; s < num_shards; ++s) {
    if (counts[s] > counts[donor]) donor = s;
    if (counts[s] < counts[recipient]) recipient = s;
  }
  if (counts[donor] - counts[recipient] < options.imbalance_threshold) {
    return std::nullopt;
  }

  std::vector<size_t> movable;
  for (size_t i = 0; i < chunks.num_chunks(); ++i) {
    const Chunk& c = chunks.chunk(i);
    if (c.shard_id != donor) continue;
    if (!zones.empty() && ZoneForKey(zones, c.min) >= 0) continue;  // pinned
    movable.push_back(i);
  }
  if (movable.empty()) return std::nullopt;
  const size_t pick = movable[rng->NextBounded(movable.size())];
  return Migration{pick, recipient};
}

}  // namespace stix::cluster
