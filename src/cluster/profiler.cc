#include "cluster/profiler.h"

#include <cstdio>
#include <sstream>

#include "query/explain.h"

namespace stix::cluster {

std::string ProfiledOp::ToJson() const {
  char millis[32];
  std::snprintf(millis, sizeof(millis), "%.3f", modeled_millis);
  std::ostringstream out;
  out << "{\"op\": " << op_id << ", \"query\": \""
      << query::JsonEscape(query) << "\", \"millis\": " << millis
      << ", \"explain\": " << explain.ToJson() << "}";
  return out.str();
}

void OpProfiler::Configure(ProfilerOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  while (ring_.size() > options_.capacity) ring_.pop_front();
}

void OpProfiler::Record(ProfiledOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.capacity == 0) return;
  op.op_id = next_op_id_++;
  ++num_recorded_;
  if (ring_.size() >= options_.capacity) ring_.pop_front();
  ring_.push_back(std::move(op));
}

std::vector<ProfiledOp> OpProfiler::Ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<ProfiledOp>(ring_.begin(), ring_.end());
}

void OpProfiler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  num_recorded_ = 0;
  next_op_id_ = 1;
}

std::string OpProfiler::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  char slow[32];
  std::snprintf(slow, sizeof(slow), "%.3f", options_.slow_millis);
  std::ostringstream out;
  out << "{\"enabled\": " << (options_.enabled ? "true" : "false")
      << ", \"slowMs\": " << slow << ", \"capacity\": " << options_.capacity
      << ", \"recorded\": " << num_recorded_ << ", \"ops\": [";
  bool first = true;
  for (const ProfiledOp& op : ring_) {
    if (!first) out << ", ";
    first = false;
    out << op.ToJson();
  }
  out << "]}";
  return out.str();
}

}  // namespace stix::cluster
