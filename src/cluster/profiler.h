#ifndef STIX_CLUSTER_PROFILER_H_
#define STIX_CLUSTER_PROFILER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/router.h"

namespace stix::cluster {

/// Slow-op profiler knobs (MongoDB's system.profile, scaled down).
struct ProfilerOptions {
  bool enabled = false;
  /// Ops whose modeled execution time reaches this threshold are recorded;
  /// 0 records every op (deterministic tests, the nightly CI profile run).
  double slow_millis = 100.0;
  /// Ring-buffer capacity: the newest `capacity` slow ops are retained.
  size_t capacity = 128;
};

/// One recorded slow op: what ran, how slow it was, and the full explain
/// tree of that very execution (not a re-run — the counters are the ones
/// the slow execution actually accumulated).
struct ProfiledOp {
  uint64_t op_id = 0;  ///< Monotonic per-profiler id (1-based).
  std::string query;   ///< Filter, in MatchExpr debug syntax.
  double modeled_millis = 0.0;
  ClusterExplain explain;

  std::string ToJson() const;
};

/// Bounded in-memory op log: a mutex-guarded ring of the most recent slow
/// ops. Recording happens at cursor exhaustion — far off any per-document
/// path — so a plain mutex is plenty.
class OpProfiler {
 public:
  explicit OpProfiler(ProfilerOptions options = {}) : options_(options) {}

  OpProfiler(const OpProfiler&) = delete;
  OpProfiler& operator=(const OpProfiler&) = delete;

  ProfilerOptions options() const {
    std::lock_guard<std::mutex> lock(mu_);
    return options_;
  }

  /// Reconfigures threshold/capacity/enablement; existing entries beyond a
  /// shrunken capacity are dropped oldest-first.
  void Configure(ProfilerOptions options);

  /// True when a finished op this slow should be recorded.
  bool ShouldRecord(double modeled_millis) const {
    std::lock_guard<std::mutex> lock(mu_);
    return options_.enabled && modeled_millis >= options_.slow_millis;
  }

  /// Stamps an op_id on the op and appends it, evicting the oldest entry
  /// when the ring is full.
  void Record(ProfiledOp op);

  /// Retained ops, oldest first.
  std::vector<ProfiledOp> Ops() const;

  /// Ops ever recorded (including ones the ring has since evicted).
  uint64_t num_recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return num_recorded_;
  }

  void Clear();

  /// {"enabled": .., "slowMs": .., "capacity": .., "recorded": ..,
  ///  "ops": [...]} — the profiler section of Cluster::ServerStatus().
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  ProfilerOptions options_;
  std::deque<ProfiledOp> ring_;
  uint64_t next_op_id_ = 1;
  uint64_t num_recorded_ = 0;
};

}  // namespace stix::cluster

#endif  // STIX_CLUSTER_PROFILER_H_
