#ifndef STIX_CLUSTER_BALANCER_H_
#define STIX_CLUSTER_BALANCER_H_

#include <optional>

#include "cluster/chunk.h"
#include "cluster/zones.h"
#include "common/rng.h"

namespace stix::cluster {

/// A proposed chunk migration.
struct Migration {
  size_t chunk_index;
  int to_shard;
};

/// Balancer policy options.
struct BalancerOptions {
  /// Migrate only when the donor has at least this many more chunks than
  /// the recipient (MongoDB's migration threshold, scaled down).
  int imbalance_threshold = 2;
};

/// Pure balancer policy (the decision half of MongoDB's Balancer; the
/// cluster applies the moves). Priorities, in order:
///  1. zone violations — a chunk sitting outside its zone's shard;
///  2. plain imbalance — move a random chunk from the most-loaded to the
///     least-loaded shard permitted for its zone.
/// Returns nullopt when balanced. Randomness comes from the caller's seeded
/// Rng, so placements are reproducible.
std::optional<Migration> PickNextMigration(const ChunkManager& chunks,
                                           int num_shards,
                                           const std::vector<ZoneRange>& zones,
                                           const BalancerOptions& options,
                                           Rng* rng);

}  // namespace stix::cluster

#endif  // STIX_CLUSTER_BALANCER_H_
