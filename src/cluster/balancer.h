#ifndef STIX_CLUSTER_BALANCER_H_
#define STIX_CLUSTER_BALANCER_H_

#include <optional>

#include "cluster/chunk.h"
#include "cluster/zones.h"
#include "common/rng.h"

namespace stix::cluster {

/// A proposed chunk migration.
struct Migration {
  size_t chunk_index;
  int to_shard;
};

/// Balancer policy options.
struct BalancerOptions {
  /// Migrate only when the donor has at least this many more chunks than
  /// the recipient (MongoDB's migration threshold, scaled down).
  int imbalance_threshold = 2;
  /// Sleep between rounds of the background balancer thread
  /// (Cluster::StartBalancer). Small by default: bench-scale migrations are
  /// sub-millisecond, so the thread mostly idles on its condition variable.
  int background_interval_ms = 5;
  /// Bucketed collections: chunks with equal document counts can differ by
  /// orders of magnitude in logical points (buckets seal at different
  /// fills). When set, the imbalance pick moves the donor's *heaviest*
  /// movable chunk (by Chunk::points) instead of a random one, so data —
  /// not bucket documents — evens out. The trigger (chunk-count
  /// threshold) is unchanged. Off by default: row layouts keep the seeded
  /// random pick bit-for-bit.
  bool weigh_by_points = false;
  /// Write-distribution awareness: when the imbalance pick fires, move the
  /// donor's most *written* movable chunk (Chunk::writes, the per-range
  /// write counter the router maintains) instead of a random one, so a
  /// Zipf-hot insert range spreads across shards instead of pinning its
  /// whole history to wherever it first split. Takes precedence over
  /// weigh_by_points when both are set and any movable chunk has recorded
  /// writes (with all-zero counters it falls through, keeping cold
  /// workloads bit-for-bit reproducible).
  bool weigh_by_writes = false;
};

/// The zone pinning a chunk, or -1 when no zone touches it. A chunk is
/// pinned by the first zone its [min, max) range *overlaps* — not merely
/// the zone of its min key — so a chunk straddling a zone boundary (zones
/// set after data split the chunks, or restored layouts) is still pinned
/// and still counts as violating when it sits on the wrong shard.
int ZoneForChunk(const std::vector<ZoneRange>& zones, const Chunk& chunk);

/// Pure balancer policy (the decision half of MongoDB's Balancer; the
/// cluster applies the moves). Priorities, in order:
///  1. zone violations — a chunk whose pinning zone (see ZoneForChunk)
///     disagrees with the shard it sits on;
///  2. plain imbalance — move a random *movable* (zone-free) chunk from the
///     shard with the most movable chunks to the shard with the fewest.
///     Counts, donor/recipient choice and the threshold all consider only
///     movable chunks: pinned chunks can never be moved to fix the
///     imbalance they create, and counting them both stalled the balancer
///     (donor with a pinned surplus, nothing movable) and hid real movable
///     imbalance elsewhere. With no zones every chunk is movable and this
///     degenerates to plain chunk counts.
/// Returns nullopt when balanced. Randomness comes from the caller's seeded
/// Rng, so placements are reproducible.
std::optional<Migration> PickNextMigration(const ChunkManager& chunks,
                                           int num_shards,
                                           const std::vector<ZoneRange>& zones,
                                           const BalancerOptions& options,
                                           Rng* rng);

}  // namespace stix::cluster

#endif  // STIX_CLUSTER_BALANCER_H_
