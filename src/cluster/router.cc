#include "cluster/router.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "cluster/profiler.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "keystring/keystring.h"
#include "query/bucket_unpack.h"
#include "query/query_analysis.h"

namespace stix::cluster {

// Fires on every ClusterCursor merge round, before the getMores go out. A
// delay action models a slow mongos merge; an error action kills the whole
// cursor (the mongos losing its cursor state).
STIX_FAIL_POINT_DEFINE(clusterMergeBatch);

namespace {

std::vector<int> AllShardIds(size_t n) {
  std::vector<int> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<int>(i);
  return ids;
}

}  // namespace

std::vector<int> Router::TargetShards(const query::ExprPtr& expr,
                                      bool* broadcast_out) const {
  if (broadcast_out != nullptr) *broadcast_out = false;
  const auto broadcast = [&] {
    if (broadcast_out != nullptr) *broadcast_out = true;
    return AllShardIds(shards_->size());
  };

  if (pattern_->empty()) return broadcast();

  const std::map<std::string, query::PathInfo> paths =
      query::AnalyzeQuery(expr);
  const auto it0 = paths.find(pattern_->paths().front());
  const query::PathInfo* info0 = it0 == paths.end() ? nullptr : &it0->second;
  const index::FieldBounds bounds0 = query::AscendingBounds(info0);

  if (bounds0.full_range || bounds0.intervals.empty()) return broadcast();

  if (pattern_->strategy() == ShardingStrategy::kHashed) {
    // Hashed sharding can only target equality points; anything else is a
    // broadcast (exactly MongoDB's rule).
    std::set<int> ids;
    for (const index::ValueInterval& iv : bounds0.intervals) {
      if (!iv.IsPoint()) return broadcast();
    }
    for (const index::ValueInterval& iv : bounds0.intervals) {
      bson::Document probe;
      probe.Append(pattern_->paths().front(), iv.lo);
      const std::string key = pattern_->KeyOf(probe);
      ids.insert(chunks_->chunk(chunks_->FindChunkIndex(key)).shard_id);
    }
    return std::vector<int>(ids.begin(), ids.end());
  }

  // Range sharding: per leading-field interval, derive a KeyString interval
  // and collect intersecting chunks. Point intervals on the leading field
  // let the second field's bounds narrow the range further (the hil case:
  // one Hilbert cell, a time slice of it).
  const index::FieldBounds bounds1 =
      pattern_->paths().size() > 1
          ? [&] {
              const auto it1 = paths.find(pattern_->paths()[1]);
              return query::AscendingBounds(
                  it1 == paths.end() ? nullptr : &it1->second);
            }()
          : index::FieldBounds{{}, true};

  std::set<int> ids;
  for (const index::ValueInterval& iv : bounds0.intervals) {
    std::string start, end;
    if (iv.IsPoint() && !bounds1.full_range && !bounds1.intervals.empty()) {
      keystring::Builder s;
      s.AppendValue(iv.lo).AppendValue(bounds1.intervals.front().lo);
      start = std::move(s).Build();
      keystring::Builder e;
      e.AppendValue(iv.hi).AppendValue(bounds1.intervals.back().hi);
      end = std::move(e).Build() + keystring::MaxKey();
    } else {
      start = keystring::Encode(iv.lo);
      end = keystring::Encode(iv.hi) + keystring::MaxKey();
    }
    for (size_t ci : chunks_->ChunksIntersecting(start, end)) {
      ids.insert(chunks_->chunk(ci).shard_id);
    }
  }
  return std::vector<int>(ids.begin(), ids.end());
}

query::ExprPtr Router::RoutingExpr(const query::ExprPtr& expr,
                                   const query::ExecutorOptions& exec) {
  if (exec.bucket_layout == nullptr || exec.raw_buckets) return expr;
  if (query::ExprPtr widened =
          query::WidenForBuckets(expr, *exec.bucket_layout)) {
    return widened;
  }
  return query::MakeAnd({});  // match-all: target every chunk
}

std::unique_ptr<ClusterCursor> Router::OpenCursor(
    const query::ExprPtr& expr, const query::ExecutorOptions& exec_options,
    const CursorOptions& cursor_options,
    std::shared_lock<std::shared_mutex> migration_latch) const {
  query::ExecutorOptions exec = exec_options;
  if (cursor_options.raw_buckets) exec.raw_buckets = true;
  bool broadcast = false;
  std::vector<int> targets = TargetShards(RoutingExpr(expr, exec), &broadcast);
  return std::unique_ptr<ClusterCursor>(
      new ClusterCursor(shards_, std::move(targets), broadcast, expr, exec,
                        options_, parallel_fanout_, pool_, cursor_options,
                        profiler_, std::move(migration_latch)));
}

ClusterQueryResult Router::Execute(
    const query::ExprPtr& expr,
    const query::ExecutorOptions& exec_options) const {
  // One unbounded getMore per shard: the classic run-to-completion
  // scatter/gather is the degenerate case of the streaming cursor, so both
  // paths share one merge and one set of accounting.
  CursorOptions full_drain;
  full_drain.batch_size = 0;
  full_drain.limit = 0;
  return OpenCursor(expr, exec_options, full_drain)->Drain();
}

ClusterCursor::ClusterCursor(
    const std::vector<std::unique_ptr<Shard>>* shards,
    std::vector<int> targets, bool broadcast, const query::ExprPtr& expr,
    const query::ExecutorOptions& exec_options,
    const RouterOptions& router_options, bool parallel_fanout,
    ThreadPool* pool, const CursorOptions& cursor_options,
    OpProfiler* profiler, std::shared_lock<std::shared_mutex> migration_latch)
    : targets_(std::move(targets)),
      broadcast_(broadcast),
      router_options_(router_options),
      parallel_fanout_(parallel_fanout),
      pool_(pool),
      cursor_options_(cursor_options),
      expr_(expr),
      profiler_(profiler),
      migration_latch_(std::move(migration_latch)) {
  cursors_.reserve(targets_.size());
  for (int target : targets_) {
    // The limit is pushed down whole to every shard: any one shard might
    // have to satisfy it alone, and no shard ever needs to produce more.
    cursors_.push_back((*shards)[static_cast<size_t>(target)]->OpenCursor(
        expr, exec_options, cursor_options_.limit));
  }
}

std::vector<bson::Document> ClusterCursor::NextBatch() {
  std::vector<bson::Document> out;
  if (exhausted_) return out;

  if (Status s = CheckFailPoint(clusterMergeBatch); !s.ok()) {
    // The mongos lost its cursor state: the shard halves must not leak.
    status_ = std::move(s);
    exhausted_ = true;
    CloseShardCursors();
    MaybeProfile();
    return out;
  }

  const size_t n = cursors_.size();
  std::vector<ShardCursor::Batch> batches(n);
  std::vector<size_t> active;
  active.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!cursors_[i]->exhausted()) active.push_back(i);
  }
  if (active.empty()) {
    // No getMore round was issued (zero targets, or a limit satisfied
    // exactly at a shard boundary): nothing to merge and no batch to count.
    exhausted_ = true;
    CloseShardCursors();
    MaybeProfile();
    return out;
  }
  if (parallel_fanout_ && pool_ != nullptr && active.size() > 1) {
    // Warm threads from the cluster's long-lived pool; the TaskGroup scopes
    // completion to this round so concurrent queries can share the pool.
    ThreadPool::TaskGroup group(pool_);
    for (size_t i : active) {
      group.Submit([&, i] {
        batches[i] = cursors_[i]->GetMore(cursor_options_.batch_size);
      });
    }
    group.Wait();
  } else {
    for (size_t i : active) {
      batches[i] = cursors_[i]->GetMore(cursor_options_.batch_size);
    }
  }
  // A shard dying mid-stream kills the whole cursor, as a failed getMore
  // does on mongos: surface the first error, drop this round's documents
  // (a partial round is not a result), and stop. The faulted round is NOT
  // counted in num_batches — it delivered nothing, and counting it made the
  // drained-cursor accounting diverge from one-shot Query() under fault
  // injection.
  for (size_t i : active) {
    if (!batches[i].error.ok()) {
      // The other shards' cursors are still live; close them all so the
      // cluster never leaks shard cursors on a partial failure.
      status_ = batches[i].error;
      exhausted_ = true;
      CloseShardCursors();
      MaybeProfile();
      return out;
    }
  }
  ++num_batches_;
  STIX_METRIC_COUNTER(cluster_batches, "cluster.batches");
  cluster_batches.Increment();

  // Merge in shard-target order. Yield-policy batches arrive already
  // materialized (shard-owned documents, moved here for free); legacy
  // batches borrow from the record stores and this is their single
  // materialization point.
  Stopwatch merge_timer;
  size_t round_docs = 0;
  for (size_t i : active) round_docs += batches[i].docs.size();
  out.reserve(round_docs);
  uint64_t round_bytes = 0;
  for (size_t i : active) {
    ShardCursor::Batch& batch = batches[i];
    batch.CheckBorrows();
    const bool owned = !batch.owned.empty();
    for (size_t j = 0; j < batch.docs.size(); ++j) {
      if (cursor_options_.limit != 0 && returned_ >= cursor_options_.limit) {
        break;
      }
      if (owned) {
        out.push_back(std::move(batch.owned[j]));
      } else {
        out.push_back(*batch.docs[j]);
      }
      // One size walk per document, shared by both accountings: ApproxBson-
      // Size recurses through sub-documents and is measurable at scan scale.
      const uint64_t doc_bytes = out.back().ApproxBsonSize();
      bytes_materialized_ += doc_bytes;
      round_bytes += doc_bytes;
      ++returned_;
    }
  }
  merge_millis_ += merge_timer.ElapsedMillis();
  STIX_METRIC_COUNTER(cluster_bytes, "cluster.bytes_materialized");
  cluster_bytes.Increment(round_bytes);
  if (!out.empty() && first_result_millis_ < 0.0) {
    first_result_millis_ = open_timer_.ElapsedMillis();
    STIX_METRIC_HISTOGRAM(first_result, "cluster.first_result_micros");
    first_result.Observe(
        static_cast<uint64_t>(first_result_millis_ * 1000.0));
  }

  if (cursor_options_.limit != 0 && returned_ >= cursor_options_.limit) {
    exhausted_ = true;
  } else {
    exhausted_ = true;
    for (const std::unique_ptr<ShardCursor>& cursor : cursors_) {
      if (!cursor->exhausted()) {
        exhausted_ = false;
        break;
      }
    }
  }
  if (exhausted_) {
    CloseShardCursors();
    MaybeProfile();
  }
  return out;
}

void ClusterCursor::Kill() {
  if (exhausted_) return;
  status_ = Status::Internal("operation was interrupted (cursor killed)");
  exhausted_ = true;
  CloseShardCursors();
}

void ClusterCursor::CloseShardCursors() {
  for (const std::unique_ptr<ShardCursor>& cursor : cursors_) {
    cursor->Close();
  }
  if (migration_latch_.owns_lock()) migration_latch_.unlock();
}

ClusterQueryResult ClusterCursor::Summary() const {
  ClusterQueryResult result;
  result.status = status_;
  result.nodes_contacted = static_cast<int>(targets_.size());
  result.broadcast = broadcast_;
  result.shard_reports.reserve(targets_.size());
  for (size_t i = 0; i < targets_.size(); ++i) {
    ShardQueryReport report;
    report.shard_id = targets_[i];
    report.stats = cursors_[i]->stats();
    report.millis = cursors_[i]->exec_millis();
    report.winning_index = cursors_[i]->winning_index();
    result.shard_reports.push_back(std::move(report));
  }
  for (const ShardQueryReport& report : result.shard_reports) {
    result.max_keys_examined =
        std::max(result.max_keys_examined, report.stats.keys_examined);
    result.max_docs_examined =
        std::max(result.max_docs_examined, report.stats.docs_examined);
    result.total_keys_examined += report.stats.keys_examined;
    result.total_docs_examined += report.stats.docs_examined;
    result.max_shard_millis = std::max(result.max_shard_millis, report.millis);
    result.sum_shard_millis += report.millis;
  }
  result.merge_millis = merge_millis_;
  result.modeled_millis = result.max_shard_millis +
                          router_options_.per_node_overhead_ms *
                              static_cast<double>(result.nodes_contacted) +
                          result.merge_millis;
  result.n_returned = returned_;
  result.bytes_materialized = bytes_materialized_;
  result.first_result_millis =
      first_result_millis_ < 0.0 ? 0.0 : first_result_millis_;
  result.num_batches = num_batches_;
  return result;
}

ClusterExplain ClusterCursor::Explain(query::ExplainVerbosity verbosity) const {
  ClusterExplain explain;
  explain.verbosity = verbosity;
  explain.query = expr_ == nullptr ? "" : expr_->DebugString();
  explain.broadcast = broadcast_;
  explain.result = Summary();
  explain.shards.reserve(cursors_.size());
  for (const std::unique_ptr<ShardCursor>& cursor : cursors_) {
    explain.shards.push_back(cursor->Explain());
  }
  return explain;
}

void ClusterCursor::MaybeProfile() {
  if (profiler_ == nullptr) return;
  const double modeled = Summary().modeled_millis;
  if (!profiler_->ShouldRecord(modeled)) return;
  ProfiledOp op;
  op.query = expr_ == nullptr ? "" : expr_->DebugString();
  op.modeled_millis = modeled;
  op.explain = Explain(query::ExplainVerbosity::kExecStats);
  profiler_->Record(std::move(op));
}

uint64_t ClusterExplain::SumStageKeysExamined() const {
  uint64_t sum = 0;
  for (const ShardExplain& shard : shards) {
    sum += shard.winning_plan.TotalKeysExamined();
  }
  return sum;
}

uint64_t ClusterExplain::SumStageDocsExamined() const {
  uint64_t sum = 0;
  for (const ShardExplain& shard : shards) {
    sum += shard.winning_plan.TotalDocsExamined();
  }
  return sum;
}

std::string ClusterExplain::ToJson() const {
  std::ostringstream out;
  out << "{\"verbosity\": \"" << query::ExplainVerbosityName(verbosity)
      << "\", \"query\": \"" << query::JsonEscape(query)
      << "\", \"shardKey\": \"" << query::JsonEscape(shard_key)
      << "\", \"totalShards\": " << total_shards
      << ", \"broadcast\": " << (broadcast ? "true" : "false");
  if (verbosity != query::ExplainVerbosity::kQueryPlanner) {
    char millis[32];
    std::snprintf(millis, sizeof(millis), "%.3f", result.modeled_millis);
    out << ", \"executionStats\": {\"nReturned\": " << result.n_returned
        << ", \"totalKeysExamined\": " << result.total_keys_examined
        << ", \"totalDocsExamined\": " << result.total_docs_examined
        << ", \"nodesContacted\": " << result.nodes_contacted
        << ", \"numBatches\": " << result.num_batches
        << ", \"bytesMaterialized\": " << result.bytes_materialized
        << ", \"executionTimeMillis\": " << millis << "}";
  }
  out << ", \"shards\": [";
  for (size_t i = 0; i < shards.size(); ++i) {
    if (i > 0) out << ", ";
    out << shards[i].ToJson(verbosity);
  }
  out << "]}";
  return out.str();
}

ClusterQueryResult ClusterCursor::Drain() {
  std::vector<bson::Document> docs;
  while (!exhausted_) {
    std::vector<bson::Document> batch = NextBatch();
    if (docs.empty()) {
      docs = std::move(batch);
    } else {
      docs.insert(docs.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
    }
  }
  ClusterQueryResult result = Summary();
  result.docs = std::move(docs);
  return result;
}

}  // namespace stix::cluster
