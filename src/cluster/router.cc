#include "cluster/router.h"

#include <algorithm>
#include <set>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "keystring/keystring.h"
#include "query/query_analysis.h"

namespace stix::cluster {
namespace {

std::vector<int> AllShardIds(size_t n) {
  std::vector<int> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<int>(i);
  return ids;
}

}  // namespace

std::vector<int> Router::TargetShards(const query::ExprPtr& expr,
                                      bool* broadcast_out) const {
  if (broadcast_out != nullptr) *broadcast_out = false;
  const auto broadcast = [&] {
    if (broadcast_out != nullptr) *broadcast_out = true;
    return AllShardIds(shards_->size());
  };

  if (pattern_->empty()) return broadcast();

  const std::map<std::string, query::PathInfo> paths =
      query::AnalyzeQuery(expr);
  const auto it0 = paths.find(pattern_->paths().front());
  const query::PathInfo* info0 = it0 == paths.end() ? nullptr : &it0->second;
  const index::FieldBounds bounds0 = query::AscendingBounds(info0);

  if (bounds0.full_range || bounds0.intervals.empty()) return broadcast();

  if (pattern_->strategy() == ShardingStrategy::kHashed) {
    // Hashed sharding can only target equality points; anything else is a
    // broadcast (exactly MongoDB's rule).
    std::set<int> ids;
    for (const index::ValueInterval& iv : bounds0.intervals) {
      if (!iv.IsPoint()) return broadcast();
    }
    for (const index::ValueInterval& iv : bounds0.intervals) {
      bson::Document probe;
      probe.Append(pattern_->paths().front(), iv.lo);
      const std::string key = pattern_->KeyOf(probe);
      ids.insert(chunks_->chunk(chunks_->FindChunkIndex(key)).shard_id);
    }
    return std::vector<int>(ids.begin(), ids.end());
  }

  // Range sharding: per leading-field interval, derive a KeyString interval
  // and collect intersecting chunks. Point intervals on the leading field
  // let the second field's bounds narrow the range further (the hil case:
  // one Hilbert cell, a time slice of it).
  const index::FieldBounds bounds1 =
      pattern_->paths().size() > 1
          ? [&] {
              const auto it1 = paths.find(pattern_->paths()[1]);
              return query::AscendingBounds(
                  it1 == paths.end() ? nullptr : &it1->second);
            }()
          : index::FieldBounds{{}, true};

  std::set<int> ids;
  for (const index::ValueInterval& iv : bounds0.intervals) {
    std::string start, end;
    if (iv.IsPoint() && !bounds1.full_range && !bounds1.intervals.empty()) {
      keystring::Builder s;
      s.AppendValue(iv.lo).AppendValue(bounds1.intervals.front().lo);
      start = std::move(s).Build();
      keystring::Builder e;
      e.AppendValue(iv.hi).AppendValue(bounds1.intervals.back().hi);
      end = std::move(e).Build() + keystring::MaxKey();
    } else {
      start = keystring::Encode(iv.lo);
      end = keystring::Encode(iv.hi) + keystring::MaxKey();
    }
    for (size_t ci : chunks_->ChunksIntersecting(start, end)) {
      ids.insert(chunks_->chunk(ci).shard_id);
    }
  }
  return std::vector<int>(ids.begin(), ids.end());
}

ClusterQueryResult Router::Execute(
    const query::ExprPtr& expr,
    const query::ExecutorOptions& exec_options) const {
  ClusterQueryResult result;
  const std::vector<int> targets = TargetShards(expr, &result.broadcast);
  result.nodes_contacted = static_cast<int>(targets.size());

  std::vector<query::ExecutionResult> shard_results(targets.size());
  if (options_.parallel_fanout && pool_ != nullptr && targets.size() > 1) {
    // Warm threads from the cluster's long-lived pool; the TaskGroup scopes
    // completion to this query so concurrent queries can share the pool.
    ThreadPool::TaskGroup group(pool_);
    for (size_t i = 0; i < targets.size(); ++i) {
      group.Submit([&, i] {
        shard_results[i] =
            (*shards_)[static_cast<size_t>(targets[i])]->RunQuery(
                expr, exec_options);
      });
    }
    group.Wait();
  } else {
    for (size_t i = 0; i < targets.size(); ++i) {
      shard_results[i] =
          (*shards_)[static_cast<size_t>(targets[i])]->RunQuery(
              expr, exec_options);
    }
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    ShardQueryReport report;
    report.shard_id = targets[i];
    report.stats = shard_results[i].stats;
    report.millis = shard_results[i].exec_millis;
    report.winning_index = shard_results[i].winning_index;
    result.shard_reports.push_back(std::move(report));
  }

  Stopwatch merge_timer;
  size_t total_docs = 0;
  for (const query::ExecutionResult& r : shard_results) {
    total_docs += r.docs.size();
  }
  // The shards returned borrowed pointers into their record stores; this is
  // the single point where result documents are materialized.
  result.docs.reserve(total_docs);
  for (const query::ExecutionResult& r : shard_results) {
    for (const bson::Document* d : r.docs) result.docs.push_back(*d);
  }
  result.merge_millis = merge_timer.ElapsedMillis();

  for (const ShardQueryReport& report : result.shard_reports) {
    result.max_keys_examined =
        std::max(result.max_keys_examined, report.stats.keys_examined);
    result.max_docs_examined =
        std::max(result.max_docs_examined, report.stats.docs_examined);
    result.total_keys_examined += report.stats.keys_examined;
    result.total_docs_examined += report.stats.docs_examined;
    result.max_shard_millis = std::max(result.max_shard_millis, report.millis);
    result.sum_shard_millis += report.millis;
  }
  result.modeled_millis = result.max_shard_millis +
                          options_.per_node_overhead_ms *
                              static_cast<double>(result.nodes_contacted) +
                          result.merge_millis;
  return result;
}

}  // namespace stix::cluster
