#ifndef STIX_CLUSTER_CLUSTER_H_
#define STIX_CLUSTER_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cluster/balancer.h"
#include "cluster/chunk.h"
#include "cluster/profiler.h"
#include "cluster/router.h"
#include "cluster/shard.h"
#include "cluster/zones.h"
#include "common/rng.h"
#include "query/aggregate.h"
#include "storage/wal.h"

namespace stix::cluster {

/// Durable-storage knobs. With an empty `data_dir` the cluster is the
/// original in-memory store; with one, every shard write is logged to a
/// per-shard WAL before it is acknowledged, topology changes are journaled
/// to a config WAL, and RecoverCluster() rebuilds the whole cluster from
/// the directory after a crash. Layout:
///
///   <data_dir>/config.wal            — full-metadata topology journal
///   <data_dir>/shard-<i>/wal.log     — per-shard write-ahead log
///   <data_dir>/shard-<i>/checkpoint-<lsn>.ckpt
struct DurabilityOptions {
  std::string data_dir;
  storage::WalOptions wal;
  /// Auto-checkpoint a shard when its WAL outgrows this many bytes
  /// (0 = checkpoint only on explicit Checkpoint() calls).
  uint64_t checkpoint_wal_bytes = 0;
};

/// Knobs for Cluster::Reshard (namespace scope so it can serve as a default
/// argument — a nested struct's member initializers cannot).
struct ReshardOptions {
  /// Chunks in the target table; 0 derives one from the data volume and
  /// chunk_max_bytes (at least one per shard).
  size_t target_chunks = 0;
  /// Sample every Nth shard-key value when building the target split
  /// vector (MongoDB's resharding samples, it never sorts every key).
  size_t sample_stride = 4;
};

/// Deployment-level knobs of the simulated cluster.
struct ClusterOptions {
  int num_shards = 12;  ///< The paper's deployment uses 12 shard VMs.

  /// Chunk split threshold. MongoDB defaults to 64 MB; bench scale reduces
  /// data ~60x versus the paper, so the default here keeps the number of
  /// chunks per shard comparable.
  uint64_t chunk_max_bytes = 512 * 1024;

  /// Run one balancer round every N inserts (the background Balancer); 0
  /// disables automatic balancing (call Balance() explicitly).
  int balance_every_inserts = 4096;

  uint64_t seed = 42;  ///< Drives balancer randomness; fully reproducible.

  /// Size of the cluster's long-lived executor pool (shared by every query
  /// fan-out; see Router). 0 = hardware_concurrency.
  int fanout_threads = 0;

  /// Execute shard fan-outs concurrently on the cluster's pool (real mongos
  /// behaviour) — the single knob consumed by both the library and the
  /// benches. Off by default: the single-machine reproduction measures
  /// per-shard latency serially and models the fan-out as
  /// max(shard latencies), which is deterministic and unaffected by host
  /// core count. Either way the reported metrics are identical except for
  /// wall-clock measurement noise. The benches turn this on (`--serial`
  /// turns it back off); when the router is handed no pool the fan-out
  /// degrades to serial regardless of this flag.
  bool parallel_fanout = false;

  RouterOptions router;
  query::ExecutorOptions exec;
  BalancerOptions balancer;
  DurabilityOptions durability;
  /// Slow-op profiler (off by default; see OpProfiler). When enabled, every
  /// query/cursor whose modeled time crosses the threshold is recorded with
  /// its full explain tree, queryable via profiler() / ServerStatus().
  ProfilerOptions profiler;
};

/// A sharded document-store cluster in one process: N shards, a config view
/// (chunks + zones) and a router. The public surface mirrors the operations
/// the paper performs against MongoDB: shard a collection, create indexes,
/// bulk insert, define zones with $bucketAuto boundaries, run queries, and
/// inspect sizes.
///
/// Concurrency model (see DESIGN.md §"Concurrency model" for the full
/// contract). Queries, inserts, deletes and chunk migrations may run on
/// different threads concurrently once the collection is sharded; the
/// setup-time calls (ShardCollection, CreateIndex, Restore*) are
/// single-threaded and must precede any concurrency. Three cluster locks in
/// a fixed order, shard data locks last:
///
///   migration_commit_latch_  — held shared by every open ClusterCursor for
///       its lifetime; a migration's commit phase takes it exclusive, so
///       chunk ownership never flips under a live stream (chunk *copies*
///       proceed concurrently — MongoDB's critical section, stretched to
///       cursor granularity);
///   topology_mu_             — chunks_ + zones_ + chunk accounting;
///       writers (Insert routing/split, migration commit, Delete) take it
///       exclusive, targeting and introspection take it shared. Because
///       every shard-data writer holds it exclusive, it also establishes
///       the happens-before for lock-free reads like total_documents();
///   shard data_mu_ (per shard) — see Shard; always acquired last, both
///       shards in shard-id order inside a migration commit.
class Cluster {
 public:
  explicit Cluster(const ClusterOptions& options = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_shards() const { return options_.num_shards; }
  const ClusterOptions& options() const { return options_; }

  /// Declares the shard key. Creates the supporting index on every shard
  /// (as MongoDB does) plus the always-present _id index. Must be called
  /// once, before inserts.
  Status ShardCollection(ShardKeyPattern pattern);

  /// Creates a secondary index on every shard.
  Status CreateIndex(const index::IndexDescriptor& descriptor);

  /// Routes the document to the owning chunk's shard; splits chunks that
  /// outgrow the limit and lets the balancer run periodically.
  Status Insert(bson::Document doc);

  /// Defines zones explicitly (sorted, disjoint, covering the key space)
  /// and migrates data to comply.
  Status SetZones(std::vector<ZoneRange> zones);

  /// The paper's zone recipe: $bucketAuto equi-count boundaries on `path`
  /// (a shard-key prefix field), one zone per shard.
  Status SetZonesByBucketAuto(const std::string& path);

  /// Runs balancer rounds until no migration is pending.
  void Balance();

  /// Starts the online balancer: a background task on the cluster's
  /// executor pool that runs one balancer round (pick + two-phase move)
  /// every BalancerOptions::background_interval_ms, concurrently with
  /// queries and inserts. Idempotent. Call after setup (ShardCollection /
  /// Restore*) — the thread no-ops until the collection is sharded.
  void StartBalancer();

  /// Stops the online balancer and joins its task (any in-flight migration
  /// finishes first). Idempotent; also called by the destructor.
  void StopBalancer();

  /// True between StartBalancer() and StopBalancer().
  bool balancer_running() const;

  /// Checkpoints every shard (collection + indexes persisted, shard WAL
  /// truncated) and compacts the config journal down to one current
  /// metadata record. No-op for an in-memory cluster.
  Status Checkpoint();

  /// Flushes every shard's buffered group-commit window to its log file.
  Status SyncWals();

  /// True when the cluster writes through WALs (durability.data_dir set).
  bool durable() const { return config_wal_ != nullptr; }

  /// Snapshot-restore path: installs a previously saved sharding state
  /// (pattern, chunk table, zones) and creates the mandatory and given
  /// secondary indexes on every shard. The cluster must be fresh. The chunk
  /// table must satisfy ChunkManager invariants.
  Status RestoreShardingState(
      ShardKeyPattern pattern, std::vector<Chunk> chunk_table,
      std::vector<ZoneRange> zones,
      const std::vector<index::IndexDescriptor>& secondary_indexes);

  /// Snapshot-restore path: inserts directly into a shard, bypassing
  /// routing and split/balance logic (placement comes from the restored
  /// chunk table).
  Status RestoreDocumentToShard(int shard_id, bson::Document doc);

  /// Scatter/gather query through the router (open + drain of a cursor).
  ClusterQueryResult Query(const query::ExprPtr& expr) const;

  /// Opens a streaming cursor through the router: batched getMore rounds,
  /// optional limit pushdown (see CursorOptions). The cursor borrows the
  /// cluster's shards and pool. Under the default yield policy it may be
  /// consumed while inserts and balancer rounds run concurrently (it holds
  /// the migration-commit latch shared until closed); under
  /// YieldPolicy::kAbortOnMutation the legacy rule applies — consume it
  /// before mutating the cluster.
  std::unique_ptr<ClusterCursor> OpenCursor(
      const query::ExprPtr& expr,
      const CursorOptions& cursor_options = {}) const;

  /// Runs an aggregation pipeline cluster-wide: a leading $match is routed
  /// and executed on the shards like a query (index-assisted); the
  /// remaining stages run on the merged stream at the router, as mongos
  /// does for these stage types.
  Result<std::vector<bson::Document>> Aggregate(
      const query::Pipeline& pipeline) const;

  /// Deletes every document matching the expression; returns the count.
  /// Chunk byte/document accounting is updated (chunks never re-merge, as
  /// in MongoDB).
  Result<uint64_t> Delete(const query::ExprPtr& expr);

  // --- online resharding (reshard.cc) ---

  /// Document fix-up applied to every stored document before it is keyed by
  /// the new pattern (e.g. computing `hilbertIndex` for a bslTS → hil
  /// reshard). Returns true when the document was modified (its indexes are
  /// then rewritten in place), false when it already fits the new layout.
  /// May be null when no enrichment is needed.
  using ReshardEnrichFn = std::function<Result<bool>(bson::Document*)>;

  /// Live shard-key migration (MongoDB's reshardCollection, scaled to this
  /// process): re-keys the populated collection onto `new_pattern` while
  /// queries, cursors and writers keep running. Five phases — per-shard
  /// document enrichment + index build, a sampled split vector for the
  /// target chunk table, a dual-routing flip (new writes land by the new
  /// table, reads broadcast), chunk-by-chunk two-phase copy under the
  /// migration-commit latch (planner stats + plan caches invalidate per
  /// migrated chunk), and the final metadata swap. Zones are cleared (they
  /// were keyed in the old shard-key space). In-memory clusters only:
  /// durable clusters return NotSupported. One reshard at a time;
  /// concurrent calls return AlreadyExists.
  Status Reshard(ShardKeyPattern new_pattern,
                 const std::vector<index::IndexDescriptor>& new_secondary_indexes,
                 const ReshardEnrichFn& enrich = nullptr,
                 const ReshardOptions& reshard_options = ReshardOptions());

  /// True while a Reshard() is between its routing flip and its final
  /// metadata swap (reads broadcast, writes route by the target table).
  bool resharding() const;

  /// Read/write distribution snapshot as one JSON object: per-shard cursor
  /// targeting counts (reads), per-shard write counts summed from the
  /// per-chunk write counters, and the hottest chunk's share — the figures
  /// MongoDB's analyzeShardKey reports, feeding the balancer's
  /// weigh_by_writes pick and the traffic harness report.
  std::string DistributionJson() const;

  /// Shards the router would contact (for node-count studies).
  std::vector<int> TargetShards(const query::ExprPtr& expr) const;

  /// Human-readable multi-line plan report: targeting decision plus each
  /// contacted shard's candidate plans (explain()-style, without running
  /// the query).
  std::string Explain(const query::ExprPtr& expr) const;

  /// Structured explain: executes the query once through the normal cursor
  /// path with per-stage timing enabled and returns the full execution
  /// tree — targeting decision, per-shard winning plans with stage
  /// counters, and (at kAllPlansExecution) rejected candidates. The
  /// per-stage keys/docs summed over shards equal the result totals of that
  /// same execution. Plan caches advance exactly as a normal query would
  /// advance them.
  ClusterExplain Explain(const query::ExprPtr& expr,
                         query::ExplainVerbosity verbosity) const;

  /// Server-wide status document: deployment shape, the global metrics
  /// registry snapshot, and the slow-op profiler's retained ops, as one
  /// JSON object (mongod's serverStatus, scaled down).
  std::string ServerStatus() const;

  /// The cluster's slow-op profiler (configure via ClusterOptions::profiler
  /// or OpProfiler::Configure; ops are recorded at cursor exhaustion).
  OpProfiler& profiler() const { return profiler_; }

  // --- introspection for benches/tests ---

  const std::vector<std::unique_ptr<Shard>>& shards() const { return shards_; }
  const ChunkManager& chunks() const { return *chunks_; }
  const std::vector<ZoneRange>& zones() const { return zones_; }
  const ShardKeyPattern& shard_key() const { return pattern_; }
  uint64_t total_documents() const;

  /// Aggregate data size (Table 6): logical and block-compressed bytes.
  storage::CollectionStats ComputeDataStats() const;

  /// Total index sizes across shards, per index name (Fig. 14).
  std::map<std::string, uint64_t> ComputeIndexSizes() const;

  /// Name of the index backing the shard key.
  const std::string& shard_key_index_name() const {
    return shard_key_index_name_;
  }

  /// The long-lived executor pool every query fan-out runs on (one per
  /// cluster, created at construction — never per query).
  ThreadPool& exec_pool() const { return *exec_pool_; }

  /// Estimated fraction of the cluster's stored documents whose `path`
  /// value lies in the closed range [lo, hi], aggregated over every shard's
  /// histograms. Negative when no shard can estimate the path (never built,
  /// or the path has no histogram) — callers must treat that as unknown.
  /// Stale histograms still answer: a cover-budget decision (st::Approach)
  /// prefers a slightly-drifted answer over none.
  double EstimateFraction(const std::string& path, int64_t lo,
                          int64_t hi) const;

 private:
  friend Result<std::unique_ptr<Cluster>> RecoverCluster(
      const ClusterOptions& options);

  Status MoveChunk(size_t chunk_index, int to_shard);
  void MaybeSplitChunk(size_t chunk_index);
  /// First-time durable setup: creates the data directory, attaches a fresh
  /// WAL to every shard and opens the config journal. No-op when
  /// durability is off or already attached (the recovery path attaches its
  /// own WALs with history intact).
  Status AttachDurability();
  /// Journals the full current metadata document to the config WAL (no-op
  /// when not durable). Callers hold topology_mu_ exclusive or are in
  /// single-threaded setup.
  Status LogTopology();
  /// Rewrites the config journal as one current metadata record (tmp +
  /// rename — a crash mid-compaction keeps the old journal).
  Status CompactConfigWalLocked();
  /// Bucketed-collection delete (see Delete): unpack, filter, re-encode
  /// survivors. Caller holds topology_mu_ exclusive.
  Result<uint64_t> DeleteBucketsLocked(const Router& router,
                                       const query::ExprPtr& expr);
  /// One background-balancer cadence: pick under the topology lock, then
  /// two-phase move. Aborted commits are benign (retried next round).
  void RunBalancerRound();
  void BalancerMain(int interval_ms);
  static std::string IndexNameForPattern(const ShardKeyPattern& pattern);

  // --- resharding internals (reshard.cc) ---
  /// Routing state under topology_mu_: the live pattern, or an empty
  /// pattern (forcing broadcast) while a reshard is in flight and documents
  /// may sit on either side of the move.
  const ShardKeyPattern* RoutingPatternLocked() const;
  /// Phase 1: enrich every stored document for the new layout and build the
  /// new shard-key + secondary indexes (with backfill) on every shard.
  Status ReshardPrepareShards(
      const ShardKeyPattern& new_pattern, const std::string& new_index_name,
      const std::vector<index::IndexDescriptor>& new_secondary_indexes,
      const ReshardEnrichFn& enrich);
  /// Phase 2: sampled split vector over the new-pattern keys of every
  /// shard → the target chunk table with exact accounting.
  Result<std::unique_ptr<ChunkManager>> ReshardBuildChunkTable(
      const ShardKeyPattern& new_pattern, const ReshardOptions& opts) const;
  /// Phase 4, per target chunk: two-phase copy of every out-of-place
  /// document onto the owning shard, commit under the latch + exclusive
  /// topology, stats/plan-cache invalidation on every shard touched.
  Status ReshardMoveChunk(size_t chunk_index);
  /// Blocking exclusive acquisition of the migration-commit latch with the
  /// open-cursor gate raised (new cursors hold off briefly so the reader
  /// population drains; see OpenCursor).
  std::unique_lock<std::shared_mutex> ReshardLatchExclusive();

  ClusterOptions options_;
  std::unique_ptr<ThreadPool> exec_pool_;
  // Execution-state, not collection-state (like the shard plan caches):
  // const queries record into it.
  mutable OpProfiler profiler_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ChunkManager> chunks_;
  ShardKeyPattern pattern_;
  std::vector<ZoneRange> zones_;
  std::string shard_key_index_name_;
  Rng rng_;
  int inserts_since_balance_ = 0;
  bool sharded_ = false;
  // Durability (null when in-memory). config_mu_ serializes config-journal
  // writers; it nests inside topology_mu_ and is held across no other lock.
  std::unique_ptr<storage::WriteAheadLog> config_wal_;
  mutable std::mutex config_mu_;
  bool durability_attached_ = false;

  // --- concurrency control (lock order: latch < topology < shard data) ---
  // Shared by cursors for their lifetime, exclusive for a migration commit.
  mutable std::shared_mutex migration_commit_latch_;
  // Guards chunks_, zones_ and chunk accounting (see class comment).
  mutable std::shared_mutex topology_mu_;
  // Guards rng_ and inserts_since_balance_ (balancer cadence state shared
  // by the insert path and the background balancer).
  mutable std::mutex balance_mu_;
  // Background balancer lifecycle.
  mutable std::mutex balancer_thread_mu_;
  mutable std::condition_variable balancer_cv_;
  bool balancer_running_ = false;
  bool balancer_stop_ = false;

  // --- resharding state ---
  // Serializes whole Reshard() calls (never nested in another lock).
  std::mutex reshard_mu_;
  // The rest is guarded by topology_mu_: flag flipped exclusive, read
  // shared by routing; the target table/pattern live here between the
  // routing flip and the final swap.
  bool resharding_in_progress_ = false;
  // Set for the whole Reshard() call, before the routing flip: suspends
  // chunk movement (splits keep running — they don't relocate documents)
  // so a balancer migration cannot carry a not-yet-enriched document onto
  // an already-prepared shard.
  bool reshard_preparing_ = false;
  // Installed (exclusive) before the enrichment sweep and applied by
  // Insert inside its exclusive topology hold, so every write either
  // completes before the sweep starts (the sweep enriches it) or enriches
  // itself at write time — a racing writer can never slip an un-enriched
  // document onto an already-swept shard, where it would key into the
  // null-key chunk and vanish from post-swap queries. Deliberately kept
  // installed after the swap (idempotent, one field probe per insert):
  // a writer stalled since before the reshard began must still enrich.
  ReshardEnrichFn reshard_enrich_;
  ShardKeyPattern reshard_pattern_;
  std::unique_ptr<ChunkManager> reshard_chunks_;
  std::string reshard_index_name_;
  // Commit gate: while a reshard commit wants the latch exclusive, new
  // cursors wait (bounded) before taking it shared, so the shared holders
  // drain and the commit cannot be starved by a reader-preferring rwlock.
  std::atomic<bool> reshard_commit_pending_{false};
  mutable std::mutex reshard_gate_mu_;
  mutable std::condition_variable reshard_gate_cv_;

  // Read-distribution tracking: cursor targetings per shard (atomics — the
  // open path holds only shared locks).
  mutable std::vector<std::atomic<uint64_t>> reads_per_shard_;
};

/// Rebuilds a durable cluster from options.durability.data_dir: parses the
/// last journaled metadata record, restores the sharding state, recovers
/// every shard (checkpoint + WAL replay), sweeps orphans left by a crashed
/// migration (documents whose owning chunk maps to another shard), and
/// reopens every WAL for new writes. Defined in durability.cc.
Result<std::unique_ptr<Cluster>> RecoverCluster(const ClusterOptions& options);

/// The "planner" section of ServerStatus() — plan-selection counters
/// (plans_total/estimated/raced, estimate_fallbacks/misses,
/// cache_invalidations) and the mean absolute estimation error — rendered
/// from the global metrics registry as one JSON object. Standalone so the
/// fuzz harness and benches can read it without a cluster handle.
std::string PlannerStatusJson();

}  // namespace stix::cluster

#endif  // STIX_CLUSTER_CLUSTER_H_
