#ifndef STIX_CLUSTER_CHUNK_H_
#define STIX_CLUSTER_CHUNK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bson/document.h"
#include "common/status.h"

namespace stix::cluster {

/// How documents map to the shard-key space.
enum class ShardingStrategy {
  kRange,   ///< KeyString order of the shard-key fields (locality).
  kHashed,  ///< Hash of the leading field (spreads, kills locality).
};

/// A (compound) shard key: ordered field paths plus the strategy. 2dsphere
/// fields cannot participate (MongoDB restriction the paper works around via
/// hilbertIndex).
class ShardKeyPattern {
 public:
  ShardKeyPattern() = default;
  ShardKeyPattern(std::vector<std::string> paths, ShardingStrategy strategy)
      : paths_(std::move(paths)), strategy_(strategy) {}

  const std::vector<std::string>& paths() const { return paths_; }
  ShardingStrategy strategy() const { return strategy_; }
  bool empty() const { return paths_.empty(); }

  /// Position of this document in shard-key space (a KeyString). Missing
  /// fields key as Null, like MongoDB.
  std::string KeyOf(const bson::Document& doc) const;

  /// "{hilbertIndex: 1, date: 1}" for reports.
  std::string DebugString() const;

 private:
  std::vector<std::string> paths_;
  ShardingStrategy strategy_ = ShardingStrategy::kRange;
};

/// A contiguous shard-key range [min, max) of the collection, resident on
/// one shard. Splits when it outgrows the configured max size; `jumbo`
/// marks chunks that cannot split because every document shares one key.
struct Chunk {
  std::string min;  ///< Inclusive KeyString lower bound.
  std::string max;  ///< Exclusive KeyString upper bound.
  int shard_id = 0;
  uint64_t bytes = 0;
  uint64_t docs = 0;
  /// Logical data points in the chunk. Equal to `docs` for row-layout
  /// collections; for bucketed collections each stored document is a
  /// bucket of many points, and the balancer weighs chunks by this.
  uint64_t points = 0;
  /// Write-distribution tracking: cumulative inserts + deletes routed into
  /// this key range (MongoDB's analyzeShardKey read/write distribution).
  /// Split distributes it across the parts; a migration keeps it with the
  /// chunk, so the balancer can move heat instead of just bytes.
  uint64_t writes = 0;
  bool jumbo = false;
};

/// Sampled split vector (MongoDB's autoSplitVector): given the ascending
/// shard-key sequence of one chunk, returns up to `parts - 1` boundary keys
/// cutting it into near-equal key-count parts. Boundaries are drawn from the
/// observed keys, strictly increase, and skip over runs of duplicate keys
/// (a run longer than a part simply yields fewer boundaries — the caller
/// marks the chunk jumbo when none fit). Returns an empty vector when
/// `parts < 2` or the keys admit no interior boundary.
std::vector<std::string> SplitVector(const std::vector<std::string>& keys,
                                     size_t parts);

/// The config-server view: an ordered, gap-free partition of the shard-key
/// space into chunks.
class ChunkManager {
 public:
  /// Starts with one chunk [MinKey, MaxKey) on `initial_shard`.
  explicit ChunkManager(int initial_shard);

  /// Rebuilds a chunk table from a saved list (snapshot restore). Fails
  /// with Corruption when the list violates the invariants (sorted,
  /// contiguous, covering the whole key space).
  static Result<std::unique_ptr<ChunkManager>> FromChunks(
      std::vector<Chunk> chunk_table);

  size_t num_chunks() const { return chunks_.size(); }
  const Chunk& chunk(size_t i) const { return chunks_[i]; }
  Chunk& chunk(size_t i) { return chunks_[i]; }
  const std::vector<Chunk>& chunks() const { return chunks_; }

  /// Index of the chunk owning this key.
  size_t FindChunkIndex(const std::string& key) const;

  /// Splits chunk `i` at `split_key` (strictly inside its range); byte/doc
  /// accounting is halved between the parts. Fails on out-of-range keys.
  Status Split(size_t i, const std::string& split_key);

  /// Splits chunk `i` at every boundary in `bounds` (ascending, strictly
  /// inside its range), dividing the byte/doc/point/write accounting evenly
  /// across the resulting `bounds.size() + 1` parts — the multi-way split a
  /// sampled split vector produces. Fails (leaving the table untouched) on
  /// unsorted or out-of-range boundaries.
  Status MultiSplit(size_t i, const std::vector<std::string>& bounds);

  /// Chunk indexes whose range intersects [start, end] (end inclusive).
  std::vector<size_t> ChunksIntersecting(const std::string& start,
                                         const std::string& end) const;

  /// Per-shard chunk counts (index = shard id), sized to `num_shards`.
  std::vector<int> CountsPerShard(int num_shards) const;

  /// Invariants: sorted, contiguous, covering [MinKey, MaxKey). For tests.
  bool CheckInvariants() const;

 private:
  ChunkManager() = default;  // for FromChunks

  std::vector<Chunk> chunks_;  // sorted by min
};

}  // namespace stix::cluster

#endif  // STIX_CLUSTER_CHUNK_H_
