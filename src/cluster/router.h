#ifndef STIX_CLUSTER_ROUTER_H_
#define STIX_CLUSTER_ROUTER_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/chunk.h"
#include "cluster/shard.h"
#include "common/thread_pool.h"

namespace stix::cluster {

/// Router (mongos) behaviour knobs.
struct RouterOptions {
  /// Fixed cost charged per contacted shard in the modelled latency
  /// (connection handling + result batching on the mongos). The paper's
  /// discussion of small queries hinges on this being small but non-zero;
  /// it is scaled down with the data so it stays proportionally as minor
  /// as a LAN round trip is against the paper's 10-1000 ms queries.
  double per_node_overhead_ms = 0.02;

  /// Execute shard queries concurrently on the cluster's shared thread
  /// pool (real mongos behaviour). Off by default: the single-machine
  /// reproduction measures per-shard latency serially and models the
  /// fan-out as max(shard latencies), which is deterministic and unaffected
  /// by host core count. Either way the reported metrics are identical
  /// except for wall-clock measurement noise. The benches turn this on.
  bool parallel_fanout = false;
};

/// Per-shard slice of a scatter/gather execution.
struct ShardQueryReport {
  int shard_id = 0;
  query::ExecStats stats;
  double millis = 0.0;
  std::string winning_index;
};

/// Cluster-level query outcome with the paper's four metrics: execution
/// time, max keys examined on any node, max docs examined on any node, and
/// nodes contacted.
struct ClusterQueryResult {
  std::vector<bson::Document> docs;

  int nodes_contacted = 0;
  bool broadcast = false;

  uint64_t max_keys_examined = 0;
  uint64_t max_docs_examined = 0;
  uint64_t total_keys_examined = 0;
  uint64_t total_docs_examined = 0;

  /// Slowest shard (per-shard work is measured one shard at a time, so this
  /// is the latency a parallel fan-out would see).
  double max_shard_millis = 0.0;
  double sum_shard_millis = 0.0;
  double merge_millis = 0.0;
  /// max_shard + per-node overhead + merge: the headline execution time.
  double modeled_millis = 0.0;

  std::vector<ShardQueryReport> shard_reports;
};

/// The mongos: targets the minimal set of shards whose chunks can hold
/// matching documents (by intersecting the query's shard-key bounds with
/// chunk ranges) and falls back to broadcast when the shard key is
/// unconstrained — the mechanism the paper leans on throughout Section 4.
class Router {
 public:
  /// `pool` is the cluster's long-lived executor pool; the router never
  /// creates threads of its own. May be null, in which case the fan-out
  /// degrades to serial regardless of `options.parallel_fanout`.
  Router(const ShardKeyPattern* pattern, const ChunkManager* chunks,
         const std::vector<std::unique_ptr<Shard>>* shards,
         RouterOptions options, ThreadPool* pool = nullptr)
      : pattern_(pattern),
        chunks_(chunks),
        shards_(shards),
        options_(options),
        pool_(pool) {}

  /// Shard ids this query must contact (sorted, unique).
  std::vector<int> TargetShards(const query::ExprPtr& expr,
                                bool* broadcast_out = nullptr) const;

  /// Scatter/gather execution with per-shard measurement.
  ClusterQueryResult Execute(const query::ExprPtr& expr,
                             const query::ExecutorOptions& exec_options) const;

 private:
  const ShardKeyPattern* pattern_;
  const ChunkManager* chunks_;
  const std::vector<std::unique_ptr<Shard>>* shards_;
  RouterOptions options_;
  ThreadPool* pool_;
};

}  // namespace stix::cluster

#endif  // STIX_CLUSTER_ROUTER_H_
