#ifndef STIX_CLUSTER_ROUTER_H_
#define STIX_CLUSTER_ROUTER_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cluster/chunk.h"
#include "cluster/shard.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace stix::cluster {

class OpProfiler;

/// Router (mongos) behaviour knobs.
struct RouterOptions {
  /// Fixed cost charged per contacted shard in the modelled latency
  /// (connection handling + result batching on the mongos). The paper's
  /// discussion of small queries hinges on this being small but non-zero;
  /// it is scaled down with the data so it stays proportionally as minor
  /// as a LAN round trip is against the paper's 10-1000 ms queries.
  double per_node_overhead_ms = 0.02;
};

/// Knobs for a streaming cluster cursor.
struct CursorOptions {
  /// Documents requested from each shard per getMore round; 0 drains every
  /// shard in a single round (the classic run-to-completion gather).
  size_t batch_size = 101;
  /// Total documents the cursor will produce; 0 = unlimited. Pushed down to
  /// every shard executor (trial target and stream length), so limit-k
  /// queries examine strictly fewer keys/docs than a full drain.
  uint64_t limit = 0;
  /// Bucketed clusters only: stream the raw *bucket documents* instead of
  /// decoded points. The expression must then be bucket-level (already
  /// widened) — used for metadata scans (kNN seeding) and deletes.
  bool raw_buckets = false;
};

/// Per-shard slice of a scatter/gather execution.
struct ShardQueryReport {
  int shard_id = 0;
  query::ExecStats stats;
  double millis = 0.0;
  std::string winning_index;
};

/// Cluster-level query outcome with the paper's four metrics: execution
/// time, max keys examined on any node, max docs examined on any node, and
/// nodes contacted.
struct ClusterQueryResult {
  std::vector<bson::Document> docs;

  /// Non-OK when the stream was killed by a shard or merge fault (e.g. an
  /// injected fail point): `docs` then holds only the rounds merged before
  /// the fault. OK for every clean execution.
  Status status;

  int nodes_contacted = 0;
  bool broadcast = false;

  uint64_t max_keys_examined = 0;
  uint64_t max_docs_examined = 0;
  uint64_t total_keys_examined = 0;
  uint64_t total_docs_examined = 0;

  /// Slowest shard (per-shard work is measured one shard at a time, so this
  /// is the latency a parallel fan-out would see).
  double max_shard_millis = 0.0;
  double sum_shard_millis = 0.0;
  double merge_millis = 0.0;
  /// max_shard + per-node overhead + merge: the headline execution time.
  double modeled_millis = 0.0;

  /// Streaming accounting: documents the merge produced, bytes copied out
  /// of shard record stores at the materialization point, time from cursor
  /// open to the first non-empty merged batch, and getMore rounds issued.
  /// For a full drain n_returned == docs.size().
  uint64_t n_returned = 0;
  uint64_t bytes_materialized = 0;
  double first_result_millis = 0.0;
  int num_batches = 0;

  std::vector<ShardQueryReport> shard_reports;
};

/// Cluster-level explain: the targeting decision, this execution's totals,
/// and every contacted shard's explain slice (winning stage tree, rejected
/// candidates). Produced by one real execution — the stage trees and
/// `result` describe the same run, so per-stage keys/docs summed over the
/// shard trees equal result.total_* exactly. The shard-key / total-shards
/// framing and any approach-level covering cost are attached by the layers
/// that know them (Cluster, st::StStore).
struct ClusterExplain {
  query::ExplainVerbosity verbosity = query::ExplainVerbosity::kExecStats;
  std::string query;      ///< Filter, in MatchExpr debug syntax.
  std::string shard_key;  ///< "{date: 1}" etc.; set by Cluster.
  int total_shards = 0;   ///< Cluster size; set by Cluster.
  bool broadcast = false;
  /// Totals of the explain execution, docs dropped (explain reports, it
  /// does not return result sets).
  ClusterQueryResult result;
  std::vector<ShardExplain> shards;

  /// Sums of per-stage counters over every shard's winning tree; equal to
  /// result.total_keys_examined / total_docs_examined by construction.
  uint64_t SumStageKeysExamined() const;
  uint64_t SumStageDocsExamined() const;

  std::string ToJson() const;
};

/// A streaming scatter/gather cursor (the mongos getMore loop): each
/// NextBatch() asks every still-open shard cursor for one batch — in
/// parallel on the cluster pool when enabled — and merges the results in
/// shard-target order. Memory held at any moment is one batch per shard
/// instead of the full result set, and a pushed-down limit stops all
/// shard-side work as soon as it is satisfied.
///
/// Lifetime: borrows the shards (via their cursors). Under the default
/// yield policy the cursor survives concurrent inserts and balancer rounds:
/// it holds the cluster's migration-commit latch shared for its lifetime
/// (chunk *copies* proceed, chunk ownership cannot flip mid-stream) and
/// every batch is shard-materialized. Under kAbortOnMutation the legacy
/// contract applies: consume the stream before any shard mutates. Each
/// merged batch the caller receives is owned either way.
///
/// Resource discipline: every path that abandons the stream — exhaustion,
/// a shard getMore fault, a merge fault, Kill(), destruction — closes all
/// outstanding shard cursors and releases the migration latch, so the
/// "cluster.open_cursors" gauge always returns to zero.
class ClusterCursor {
 public:
  ClusterCursor(const ClusterCursor&) = delete;
  ClusterCursor& operator=(const ClusterCursor&) = delete;

  ~ClusterCursor() { CloseShardCursors(); }

  /// Pulls and merges the next round of per-shard batches. An empty return
  /// means the stream is exhausted (the converse does not hold: the final
  /// batch of a limited stream can be non-empty).
  std::vector<bson::Document> NextBatch();

  bool exhausted() const { return exhausted_; }

  /// Non-OK once a shard died mid-stream or the merge faulted; the cursor
  /// is then exhausted and produces no further documents.
  const Status& status() const { return status_; }

  /// Kills the stream (mongos killCursors): the cursor becomes exhausted
  /// with a non-OK status, every outstanding shard cursor is closed and the
  /// migration latch released. Idempotent; a no-op after exhaustion.
  void Kill();

  /// Metrics accumulated so far (complete once exhausted), with `docs`
  /// left empty — batches hand ownership to the caller as they stream.
  ClusterQueryResult Summary() const;

  /// Drains the remaining stream and returns the full result, docs
  /// included — Router::Execute is exactly open + Drain with batch size 0.
  ClusterQueryResult Drain();

  /// Explain view of this cursor's execution so far (complete once
  /// exhausted): Summary() totals plus every shard cursor's stage trees.
  /// shard_key/total_shards are left for the owning Cluster to fill.
  ClusterExplain Explain(query::ExplainVerbosity verbosity) const;

  const std::vector<int>& targets() const { return targets_; }

 private:
  friend class Router;
  ClusterCursor(const std::vector<std::unique_ptr<Shard>>* shards,
                std::vector<int> targets, bool broadcast,
                const query::ExprPtr& expr,
                const query::ExecutorOptions& exec_options,
                const RouterOptions& router_options, bool parallel_fanout,
                ThreadPool* pool, const CursorOptions& cursor_options,
                OpProfiler* profiler,
                std::shared_lock<std::shared_mutex> migration_latch);

  /// Hands the finished op to the profiler when it crosses the slow-op
  /// threshold. Called exactly once, at the exhaustion transition.
  void MaybeProfile();

  /// Closes every outstanding shard cursor and releases the migration
  /// latch. Idempotent; called on every exhaustion transition and from the
  /// destructor. Shard cursors stay allocated (their stats feed
  /// Summary/Explain after the stream ends) — only their shard claims drop.
  void CloseShardCursors();

  std::vector<int> targets_;
  bool broadcast_ = false;
  RouterOptions router_options_;
  bool parallel_fanout_ = false;
  ThreadPool* pool_ = nullptr;
  CursorOptions cursor_options_;
  query::ExprPtr expr_;  ///< For explain/profiler rendering.
  OpProfiler* profiler_ = nullptr;

  /// Parallel to targets_.
  std::vector<std::unique_ptr<ShardCursor>> cursors_;
  bool exhausted_ = false;
  Status status_;
  uint64_t returned_ = 0;
  uint64_t bytes_materialized_ = 0;
  double merge_millis_ = 0.0;
  double first_result_millis_ = -1.0;  // <0 = no result produced yet
  int num_batches_ = 0;
  Stopwatch open_timer_;
  /// Held shared for the cursor's lifetime under the yield policy: chunk
  /// ownership cannot commit while any cluster cursor streams (the
  /// migration's copy phase still runs concurrently). Default-constructed
  /// (empty) when the owning cluster has no latch or legacy mode is on.
  std::shared_lock<std::shared_mutex> migration_latch_;
};

/// The mongos: targets the minimal set of shards whose chunks can hold
/// matching documents (by intersecting the query's shard-key bounds with
/// chunk ranges) and falls back to broadcast when the shard key is
/// unconstrained — the mechanism the paper leans on throughout Section 4.
class Router {
 public:
  /// `pool` is the cluster's long-lived executor pool; the router never
  /// creates threads of its own. `parallel_fanout` (the ClusterOptions
  /// knob) only takes effect when a pool is supplied — with a null pool the
  /// fan-out always degrades to a serial walk on the calling thread.
  /// `profiler` (optional) receives every finished cursor that crosses the
  /// slow-op threshold.
  Router(const ShardKeyPattern* pattern, const ChunkManager* chunks,
         const std::vector<std::unique_ptr<Shard>>* shards,
         RouterOptions options, ThreadPool* pool = nullptr,
         bool parallel_fanout = false, OpProfiler* profiler = nullptr)
      : pattern_(pattern),
        chunks_(chunks),
        shards_(shards),
        options_(options),
        pool_(pool),
        parallel_fanout_(parallel_fanout),
        profiler_(profiler) {}

  /// Shard ids this query must contact (sorted, unique).
  std::vector<int> TargetShards(const query::ExprPtr& expr,
                                bool* broadcast_out = nullptr) const;

  /// The expression shard targeting must use: for a bucketed collection
  /// (exec options carry a bucket layout and raw_buckets is off) the
  /// point-level expression is widened to bucket level first — stored
  /// documents carry window starts and cell bases, not point values.
  /// Falls back to a match-all (broadcast) when nothing routable survives
  /// the widening. Row layouts return `expr` unchanged.
  static query::ExprPtr RoutingExpr(const query::ExprPtr& expr,
                                    const query::ExecutorOptions& exec);

  /// Opens a streaming cursor: targets the shards, opens one shard cursor
  /// per target (lazily — no shard work until the first NextBatch), and
  /// returns the merge cursor. The cursor captures everything it needs, so
  /// it may outlive this Router (but not the shards).
  ///
  /// `migration_latch` (optional, and supplied by the owning Cluster) is a
  /// shared hold on the cluster's migration-commit latch, acquired by the
  /// caller *before* the topology lock so the cluster-wide lock order
  /// (commit latch < topology < shard data) is never inverted. The cursor
  /// keeps it until it closes, fencing chunk-ownership flips out of live
  /// streams. Direct Router users (shard-local tests) pass nothing.
  std::unique_ptr<ClusterCursor> OpenCursor(
      const query::ExprPtr& expr, const query::ExecutorOptions& exec_options,
      const CursorOptions& cursor_options = {},
      std::shared_lock<std::shared_mutex> migration_latch = {}) const;

  /// Scatter/gather execution with per-shard measurement: open + drain with
  /// a single unbounded getMore per shard.
  ClusterQueryResult Execute(const query::ExprPtr& expr,
                             const query::ExecutorOptions& exec_options) const;

 private:
  const ShardKeyPattern* pattern_;
  const ChunkManager* chunks_;
  const std::vector<std::unique_ptr<Shard>>* shards_;
  RouterOptions options_;
  ThreadPool* pool_;
  bool parallel_fanout_;
  OpProfiler* profiler_;
};

}  // namespace stix::cluster

#endif  // STIX_CLUSTER_ROUTER_H_
