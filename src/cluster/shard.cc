#include "cluster/shard.h"

#include <cstdio>
#include <sstream>

#include "common/failpoint.h"

namespace stix::cluster {

std::string ShardExplain::ToJson(query::ExplainVerbosity v) const {
  std::ostringstream out;
  out << "{\"shard\": " << shard_id << ", \"winningIndex\": \""
      << query::JsonEscape(winning_index) << "\", \"numCandidates\": "
      << num_candidates << ", \"fromPlanCache\": "
      << (from_plan_cache ? "true" : "false")
      << ", \"replanned\": " << (replanned ? "true" : "false");
  if (v != query::ExplainVerbosity::kQueryPlanner) {
    char millis[32];
    std::snprintf(millis, sizeof(millis), "%.3f", exec_millis);
    out << ", \"nReturned\": " << stats.n_returned
        << ", \"keysExamined\": " << stats.keys_examined
        << ", \"docsExamined\": " << stats.docs_examined
        << ", \"works\": " << stats.works
        << ", \"executionTimeMillis\": " << millis;
  }
  out << ", \"winningPlan\": " << winning_plan.ToJson(v);
  if (v == query::ExplainVerbosity::kAllPlansExecution) {
    out << ", \"rejectedPlans\": [";
    for (size_t i = 0; i < rejected_plans.size(); ++i) {
      if (i > 0) out << ", ";
      out << rejected_plans[i].ToJson(v);
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

// Fires on every ShardCursor::GetMore. A delay action models a slow shard;
// an error action kills the stream mid-flight (the batch carries the error
// and no documents, like a shard host dying between getMores).
STIX_FAIL_POINT_DEFINE(shardGetMore);

Result<storage::RecordId> Shard::Insert(bson::Document doc) {
  const storage::RecordId rid = collection_.records().Insert(std::move(doc));
  const bson::Document* stored = collection_.records().Get(rid);
  const Status s = catalog_.OnInsert(*stored, rid);
  if (!s.ok()) {
    collection_.records().Remove(rid);
    return s;
  }
  return rid;
}

Status Shard::Remove(storage::RecordId rid) {
  const bson::Document* doc = collection_.records().Get(rid);
  if (doc == nullptr) {
    return Status::NotFound("record " + std::to_string(rid));
  }
  const Status s = catalog_.OnRemove(*doc, rid);
  if (!s.ok()) return s;
  collection_.records().Remove(rid);
  return Status::OK();
}

query::ExecutionResult Shard::RunQuery(
    const query::ExprPtr& expr, const query::ExecutorOptions& options) const {
  return query::ExecuteQuery(collection_.records(), catalog_, expr, options,
                             &plan_cache_);
}

std::unique_ptr<ShardCursor> Shard::OpenCursor(
    query::ExprPtr expr, const query::ExecutorOptions& options,
    uint64_t limit) const {
  return std::unique_ptr<ShardCursor>(
      new ShardCursor(*this, std::move(expr), options, limit));
}

ShardCursor::ShardCursor(const Shard& shard, query::ExprPtr expr,
                         const query::ExecutorOptions& options, uint64_t limit)
    : shard_(shard),
      exec_(shard.collection().records(), shard.catalog(), std::move(expr),
            options, &shard.plan_cache_, limit) {}

int ShardCursor::shard_id() const { return shard_.id(); }

ShardExplain ShardCursor::Explain() const {
  ShardExplain explain;
  explain.shard_id = shard_.id();
  explain.winning_index = exec_.winning_index();
  explain.num_candidates = exec_.num_candidates();
  explain.from_plan_cache = exec_.from_plan_cache();
  explain.replanned = exec_.replanned();
  explain.stats = exec_.CurrentStats();
  explain.exec_millis = exec_millis_;
  explain.winning_plan = exec_.ExplainWinner();
  explain.rejected_plans = exec_.ExplainRejected();
  return explain;
}

ShardExplain Shard::Explain(const query::ExprPtr& expr,
                            query::ExecutorOptions options) const {
  options.stage_timing = true;
  const std::unique_ptr<ShardCursor> cursor = OpenCursor(expr, options);
  while (!cursor->exhausted()) (void)cursor->GetMore(0);
  return cursor->Explain();
}

ShardCursor::Batch ShardCursor::GetMore(size_t batch_size) {
  Batch batch;
  const storage::RecordStore& records = shard_.collection().records();
  if (Status s = CheckFailPoint(shardGetMore); !s.ok()) {
    done_ = true;
    batch.exhausted = true;
    batch.error = std::move(s);
    batch.borrow_source = &records;
    batch.borrow_generation = records.generation();
    return batch;
  }
  Stopwatch timer;
  storage::RecordId rid;
  const bson::Document* doc;
  while (!done_ && (batch_size == 0 || batch.docs.size() < batch_size)) {
    if (exec_.Next(&rid, &doc)) {
      batch.docs.push_back(doc);
      batch.rids.push_back(rid);
    } else {
      done_ = true;
    }
  }
  exec_millis_ += timer.ElapsedMillis();
  batch.exhausted = done_;
  batch.borrow_source = &records;
  batch.borrow_generation = records.generation();
  return batch;
}

}  // namespace stix::cluster
