#include "cluster/shard.h"

#include <cstdio>
#include <mutex>
#include <sstream>

#include "bson/codec.h"
#include "common/failpoint.h"
#include "common/fs.h"
#include "common/metrics.h"

namespace stix::cluster {
namespace {

// Shard-lock acquisition with contention accounting: the uncontended path
// is a single try_lock (no clock reads); only a blocked acquisition pays
// for a stopwatch and feeds the wait metrics.
std::shared_lock<std::shared_mutex> LockShared(std::shared_mutex& mu) {
  std::shared_lock<std::shared_mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    STIX_METRIC_COUNTER(waits, "shard.lock_waits");
    STIX_METRIC_HISTOGRAM(wait_micros, "shard.lock_wait_micros");
    Stopwatch timer;
    lock.lock();
    waits.Increment();
    wait_micros.Observe(static_cast<uint64_t>(timer.ElapsedMicros()));
  }
  return lock;
}

std::unique_lock<std::shared_mutex> LockExclusive(std::shared_mutex& mu) {
  std::unique_lock<std::shared_mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    STIX_METRIC_COUNTER(waits, "shard.lock_waits");
    STIX_METRIC_HISTOGRAM(wait_micros, "shard.lock_wait_micros");
    Stopwatch timer;
    lock.lock();
    waits.Increment();
    wait_micros.Observe(static_cast<uint64_t>(timer.ElapsedMicros()));
  }
  return lock;
}

}  // namespace

std::string ShardExplain::ToJson(query::ExplainVerbosity v) const {
  std::ostringstream out;
  out << "{\"shard\": " << shard_id << ", \"winningIndex\": \""
      << query::JsonEscape(winning_index) << "\", \"numCandidates\": "
      << num_candidates << ", \"fromPlanCache\": "
      << (from_plan_cache ? "true" : "false")
      << ", \"replanned\": " << (replanned ? "true" : "false");
  if (!planned_by.empty()) {
    out << ", \"plannedBy\": \"" << query::JsonEscape(planned_by) << "\"";
  }
  if (v != query::ExplainVerbosity::kQueryPlanner) {
    char millis[32];
    std::snprintf(millis, sizeof(millis), "%.3f", exec_millis);
    out << ", \"nReturned\": " << stats.n_returned
        << ", \"keysExamined\": " << stats.keys_examined
        << ", \"docsExamined\": " << stats.docs_examined
        << ", \"works\": " << stats.works;
    if (estimated_keys >= 0.0) {
      char est[32];
      std::snprintf(est, sizeof(est), "%.1f", estimated_keys);
      out << ", \"estimatedKeysExamined\": " << est;
      std::snprintf(est, sizeof(est), "%.1f", estimated_docs);
      out << ", \"estimatedDocsExamined\": " << est;
    }
    out << ", \"executionTimeMillis\": " << millis;
  }
  out << ", \"winningPlan\": " << winning_plan.ToJson(v);
  if (v == query::ExplainVerbosity::kAllPlansExecution) {
    out << ", \"rejectedPlans\": [";
    for (size_t i = 0; i < rejected_plans.size(); ++i) {
      if (i > 0) out << ", ";
      out << rejected_plans[i].ToJson(v);
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

// Fires on every ShardCursor::GetMore. A delay action models a slow shard;
// an error action kills the stream mid-flight (the batch carries the error
// and no documents, like a shard host dying between getMores).
STIX_FAIL_POINT_DEFINE(shardGetMore);

Result<storage::RecordId> Shard::Insert(bson::Document doc) {
  const std::unique_lock<std::shared_mutex> lock = LockExclusive(data_mu_);
  return InsertLocked(std::move(doc));
}

Status Shard::LogLocked(storage::WalRecordType type, storage::RecordId rid,
                        std::string_view payload) {
  if (Result<uint64_t> a = wal_->Append(type, rid, payload); !a.ok()) {
    return a.status();
  }
  const Result<uint64_t> lsn = wal_->Commit();
  return lsn.ok() ? Status::OK() : lsn.status();
}

Result<storage::RecordId> Shard::InsertLocked(bson::Document doc) {
  const storage::RecordId rid = collection_.records().Insert(std::move(doc));
  const bson::Document* stored = collection_.records().Get(rid);
  const Status s = catalog_.OnInsert(*stored, rid);
  if (!s.ok()) {
    collection_.records().Remove(rid);
    return s;
  }
  if (wal_ != nullptr) {
    const Status ws = LogLocked(storage::WalRecordType::kInsert, rid,
                                bson::EncodeBson(*stored));
    if (!ws.ok()) {
      // Never durable: undo the in-memory apply so the caller's error means
      // "nothing happened" — the unacked-atomic half of the crash oracle.
      (void)catalog_.OnRemove(*stored, rid);
      collection_.records().Remove(rid);
      return ws;
    }
  }
  stats_.Observe(query::stats::ExtractStatsValues(*stored, StatsGeoHash()),
                 +1);
  if (wal_ != nullptr) MaybeCheckpointLocked();
  return rid;
}

Status Shard::Remove(storage::RecordId rid) {
  const std::unique_lock<std::shared_mutex> lock = LockExclusive(data_mu_);
  return RemoveLocked(rid);
}

Status Shard::RemoveLocked(storage::RecordId rid) {
  const bson::Document* doc = collection_.records().Get(rid);
  if (doc == nullptr) {
    return Status::NotFound("record " + std::to_string(rid));
  }
  bson::Document undo_copy;
  if (wal_ != nullptr) undo_copy = *doc;
  const Status s = catalog_.OnRemove(*doc, rid);
  if (!s.ok()) return s;
  stats_.Observe(query::stats::ExtractStatsValues(*doc, StatsGeoHash()), -1);
  collection_.records().Remove(rid);
  if (wal_ != nullptr) {
    const Status ws = LogLocked(storage::WalRecordType::kRemove, rid, {});
    if (!ws.ok()) {
      // Undo so an error means "the record is still there".
      (void)collection_.records().RestoreAt(rid, std::move(undo_copy));
      const bson::Document* restored = collection_.records().Get(rid);
      (void)catalog_.OnInsert(*restored, rid);
      stats_.Observe(
          query::stats::ExtractStatsValues(*restored, StatsGeoHash()), +1);
      return ws;
    }
    MaybeCheckpointLocked();
  }
  return Status::OK();
}

Status Shard::AttachWal(const std::string& dir, storage::WalOptions options,
                        uint64_t checkpoint_wal_bytes, bool fresh) {
  if (Status s = CreateDirs(dir); !s.ok()) return s;
  Result<std::unique_ptr<storage::WriteAheadLog>> wal =
      storage::WriteAheadLog::Open(dir + "/wal.log", options, fresh);
  if (!wal.ok()) return wal.status();
  const std::unique_lock<std::shared_mutex> lock = LockExclusive(data_mu_);
  wal_ = std::move(*wal);
  dir_ = dir;
  checkpoint_wal_bytes_ = checkpoint_wal_bytes;
  return Status::OK();
}

Status Shard::Checkpoint() {
  const std::unique_lock<std::shared_mutex> lock = LockExclusive(data_mu_);
  return CheckpointLocked();
}

Status Shard::CheckpointLocked() {
  if (wal_ == nullptr) return Status::OK();
  if (Status s = wal_->Sync(); !s.ok()) return s;
  const uint64_t lsn = wal_->last_commit_lsn();
  std::vector<storage::IndexDump> dumps;
  dumps.reserve(catalog_.indexes().size());
  for (const auto& idx : catalog_.indexes()) {
    dumps.push_back(storage::IndexDump{idx->descriptor().name(),
                                       idx->is_multikey(), &idx->btree()});
  }
  if (Status s = storage::WriteCheckpoint(collection_, dumps, lsn, dir_);
      !s.ok()) {
    // A failed checkpoint (crash point or IO error) leaves at worst a
    // `.tmp`; acked writes stay covered by the prior checkpoint + the
    // untruncated WAL. Kill the log so this process takes no more writes.
    wal_->Kill();
    return s;
  }
  ckpt_lsn_ = lsn;
  // The WAL only shrinks after the checkpoint is durably renamed in —
  // crash between the two just replays records the checkpoint already
  // holds, which the ckpt_lsn filter in Recover skips.
  if (Status s = wal_->Truncate(); !s.ok()) return s;
  storage::RemoveStaleCheckpoints(dir_, lsn);
  return Status::OK();
}

void Shard::MaybeCheckpointLocked() {
  if (checkpoint_wal_bytes_ == 0 || wal_ == nullptr || wal_->dead()) return;
  if (wal_->log_bytes() < checkpoint_wal_bytes_) return;
  // The triggering write is already durable and acknowledged; a checkpoint
  // failure must not retroactively fail it.
  (void)CheckpointLocked();
}

Status Shard::Recover(const std::string& dir, storage::WalOptions options,
                      uint64_t checkpoint_wal_bytes) {
  const std::unique_lock<std::shared_mutex> lock = LockExclusive(data_mu_);
  dir_ = dir;
  checkpoint_wal_bytes_ = checkpoint_wal_bytes;

  // Newest intact checkpoint wins; a damaged one falls back to the next
  // older (its WAL coverage is still complete — the log is only truncated
  // after a successful rename).
  uint64_t ckpt_lsn = 0;
  for (const storage::CheckpointRef& ref : storage::ListCheckpoints(dir)) {
    Result<storage::CheckpointImage> image = storage::LoadCheckpoint(ref.path);
    if (!image.ok()) continue;
    collection_ = std::move(image->collection);
    for (storage::CheckpointIndexImage& idx : image->indexes) {
      index::Index* index = catalog_.Get(idx.name);
      if (index == nullptr) {
        return Status::Corruption("checkpoint names unknown index: " +
                                  idx.name);
      }
      for (auto& [key, rid] : idx.entries) index->btree().Insert(key, rid);
      index->set_multikey(idx.multikey);
    }
    ckpt_lsn = image->lsn;
    break;
  }
  ckpt_lsn_ = ckpt_lsn;

  const Result<storage::WalScan> scan = storage::ReadWal(dir + "/wal.log");
  if (!scan.ok()) return scan.status();
  for (const storage::WalRecord& record : scan->committed) {
    if (record.lsn <= ckpt_lsn) continue;  // already inside the checkpoint
    switch (record.type) {
      case storage::WalRecordType::kInsert: {
        Result<bson::Document> doc = bson::DecodeBson(record.payload);
        if (!doc.ok()) return doc.status();
        if (Status s =
                collection_.records().RestoreAt(record.rid, std::move(*doc));
            !s.ok()) {
          return s;
        }
        const bson::Document* stored = collection_.records().Get(record.rid);
        if (Status s = catalog_.OnInsert(*stored, record.rid); !s.ok()) {
          return s;
        }
        break;
      }
      case storage::WalRecordType::kRemove: {
        const bson::Document* doc = collection_.records().Get(record.rid);
        if (doc == nullptr) break;  // removing an already-gone record is ok
        if (Status s = catalog_.OnRemove(*doc, record.rid); !s.ok()) return s;
        collection_.records().Remove(record.rid);
        break;
      }
      default:
        return Status::Corruption("unexpected record type in shard wal");
    }
  }

  // Rebuild the statistics from the recovered record store outright.
  // MarkStale() is NOT enough here: recovery bypasses stats_.Observe (only
  // the live insert path feeds it), so the statistics' own document count is
  // still zero and both NeedsRebuild() and ReliableForEstimation() take the
  // empty-shard short-circuit — the cost model would estimate every scan on
  // this populated shard at exactly 0 keys/docs and plan from it.
  RebuildStatsFromStorage();

  Result<std::unique_ptr<storage::WriteAheadLog>> wal =
      storage::WriteAheadLog::Open(dir + "/wal.log", options,
                                   /*fresh=*/false);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(*wal);
  // The log was truncated at the checkpoint, so Open resumed its LSNs from
  // whatever tail remained — possibly nothing. Lift the counter past the
  // checkpoint horizon, or new writes would reuse LSNs the next recovery's
  // `lsn <= ckpt_lsn` filter skips.
  wal_->EnsureLsnPast(ckpt_lsn);
  STIX_METRIC_COUNTER(recoveries, "shard.recoveries");
  recoveries.Increment();
  return Status::OK();
}

Status Shard::SyncWal() {
  if (wal_ == nullptr) return Status::OK();
  return wal_->Sync();
}

const geo::GeoHash* Shard::StatsGeoHash() const {
  for (const auto& idx : catalog_.indexes()) {
    if (idx->descriptor().FirstGeoField() >= 0) {
      return &idx->keygen().geohash();
    }
  }
  return nullptr;
}

void Shard::MaybeRebuildStats() const {
  if (!stats_.NeedsRebuild()) return;
  RebuildStatsFromStorage();
}

void Shard::RebuildStatsFromStorage() const {
  const uint64_t generation = stats_.rebuild_generation();
  const geo::GeoHash* geohash = StatsGeoHash();
  query::stats::RebuildSample sample;
  const uint64_t n = collection_.records().num_records();
  sample.dates.reserve(n);
  sample.hilberts.reserve(n);
  collection_.records().ForEach(
      [&](storage::RecordId, const bson::Document& doc) {
        const query::stats::ObservedValues v =
            query::stats::ExtractStatsValues(doc, geohash);
        ++sample.num_docs;
        sample.num_points += v.points;
        if (v.is_bucket) ++sample.num_buckets;
        if (v.date) sample.dates.push_back(*v.date);
        if (v.hilbert) sample.hilberts.push_back(*v.hilbert);
        if (v.geocell) sample.geocells.push_back(*v.geocell);
      });
  stats_.Rebuild(std::move(sample), generation);
  // Cached plan decisions (and the works figures their replanning budgets
  // derive from) were measured against the old distribution.
  plan_cache_.InvalidateAll();
}

void Shard::OnDataDistributionChanged() const {
  stats_.MarkStale();
  plan_cache_.InvalidateAll();
}

query::ExecutionResult Shard::RunQuery(
    const query::ExprPtr& expr, const query::ExecutorOptions& options) const {
  const std::shared_lock<std::shared_mutex> lock = LockShared(data_mu_);
  MaybeRebuildStats();
  query::ExecutorOptions opts = options;
  opts.shard_stats = &stats_;
  return query::ExecuteQuery(collection_.records(), catalog_, expr, opts,
                             &plan_cache_);
}

std::unique_ptr<ShardCursor> Shard::OpenCursor(
    query::ExprPtr expr, const query::ExecutorOptions& options,
    uint64_t limit) const {
  query::ExecutorOptions opts = options;
  opts.shard_stats = &stats_;
  return std::unique_ptr<ShardCursor>(
      new ShardCursor(*this, std::move(expr), opts, limit));
}

ShardCursor::ShardCursor(const Shard& shard, query::ExprPtr expr,
                         const query::ExecutorOptions& options, uint64_t limit)
    : shard_(shard),
      options_(options),
      exec_(shard.collection().records(), shard.catalog(), std::move(expr),
            options, &shard.plan_cache_, limit) {
  STIX_METRIC_GAUGE(open_cursors, "cluster.open_cursors");
  open_cursors.Add(1);
}

void ShardCursor::Close() {
  if (closed_) return;
  closed_ = true;
  done_ = true;
  STIX_METRIC_GAUGE(open_cursors, "cluster.open_cursors");
  open_cursors.Sub(1);
}

int ShardCursor::shard_id() const { return shard_.id(); }

ShardExplain ShardCursor::Explain() const {
  ShardExplain explain;
  explain.shard_id = shard_.id();
  explain.winning_index = exec_.winning_index();
  explain.num_candidates = exec_.num_candidates();
  explain.from_plan_cache = exec_.from_plan_cache();
  explain.replanned = exec_.replanned();
  explain.planned_by = query::PlannedByName(exec_.planned_by());
  if (const query::PlanEstimate* est = exec_.winner_estimate()) {
    explain.estimated_keys = est->keys;
    explain.estimated_docs = est->docs;
  }
  explain.stats = exec_.CurrentStats();
  explain.exec_millis = exec_millis_;
  explain.winning_plan = exec_.ExplainWinner();
  explain.rejected_plans = exec_.ExplainRejected();
  return explain;
}

ShardExplain Shard::Explain(const query::ExprPtr& expr,
                            query::ExecutorOptions options) const {
  options.stage_timing = true;
  const std::unique_ptr<ShardCursor> cursor = OpenCursor(expr, options);
  while (!cursor->exhausted()) (void)cursor->GetMore(0);
  return cursor->Explain();
}

ShardCursor::Batch ShardCursor::GetMore(size_t batch_size) {
  Batch batch;
  if (done_) {
    batch.exhausted = true;
    return batch;
  }
  // Evaluated outside the shard lock: an injected delay stalls this cursor,
  // not the shard's writers.
  if (Status s = CheckFailPoint(shardGetMore); !s.ok()) {
    done_ = true;
    batch.exhausted = true;
    batch.error = std::move(s);
    return batch;
  }
  const bool yield =
      options_.yield_policy == query::YieldPolicy::kYieldAndRestore;
  const std::shared_lock<std::shared_mutex> lock =
      LockShared(shard_.data_mutex());
  shard_.MaybeRebuildStats();
  const storage::RecordStore& records = shard_.collection().records();
  if (yield) exec_.RestoreState();
  Stopwatch timer;
  storage::RecordId rid;
  const bson::Document* doc;
  while (!done_ && (batch_size == 0 || batch.docs.size() < batch_size)) {
    if (exec_.Next(&rid, &doc)) {
      batch.docs.push_back(doc);
      batch.rids.push_back(rid);
    } else {
      done_ = true;
    }
  }
  exec_millis_ += timer.ElapsedMillis();
  batch.exhausted = done_;
  if (yield) {
    // Detach before the lock drops: the executor collapses to KeyString
    // positions and the batch takes ownership of its documents, so writers
    // and migrations may run freely until the next GetMore.
    exec_.SaveState();
    const bool transient = exec_.winner_transient();
    batch.owned.reserve(batch.docs.size());
    for (const bson::Document* d : batch.docs) {
      if (transient) {
        // Unpacked points are arena-owned and emitted exactly once; moving
        // them out skips a deep copy per point (record-store borrows below
        // must still be copied — their memory is not ours to gut).
        batch.owned.push_back(std::move(*const_cast<bson::Document*>(d)));
      } else {
        batch.owned.push_back(*d);
      }
    }
    for (size_t i = 0; i < batch.docs.size(); ++i) {
      batch.docs[i] = &batch.owned[i];
    }
  } else {
    batch.borrow_source = &records;
    batch.borrow_generation = records.generation();
  }
  return batch;
}

}  // namespace stix::cluster
