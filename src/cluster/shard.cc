#include "cluster/shard.h"

#include <cstdio>
#include <mutex>
#include <sstream>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace stix::cluster {
namespace {

// Shard-lock acquisition with contention accounting: the uncontended path
// is a single try_lock (no clock reads); only a blocked acquisition pays
// for a stopwatch and feeds the wait metrics.
std::shared_lock<std::shared_mutex> LockShared(std::shared_mutex& mu) {
  std::shared_lock<std::shared_mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    STIX_METRIC_COUNTER(waits, "shard.lock_waits");
    STIX_METRIC_HISTOGRAM(wait_micros, "shard.lock_wait_micros");
    Stopwatch timer;
    lock.lock();
    waits.Increment();
    wait_micros.Observe(static_cast<uint64_t>(timer.ElapsedMicros()));
  }
  return lock;
}

std::unique_lock<std::shared_mutex> LockExclusive(std::shared_mutex& mu) {
  std::unique_lock<std::shared_mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    STIX_METRIC_COUNTER(waits, "shard.lock_waits");
    STIX_METRIC_HISTOGRAM(wait_micros, "shard.lock_wait_micros");
    Stopwatch timer;
    lock.lock();
    waits.Increment();
    wait_micros.Observe(static_cast<uint64_t>(timer.ElapsedMicros()));
  }
  return lock;
}

}  // namespace

std::string ShardExplain::ToJson(query::ExplainVerbosity v) const {
  std::ostringstream out;
  out << "{\"shard\": " << shard_id << ", \"winningIndex\": \""
      << query::JsonEscape(winning_index) << "\", \"numCandidates\": "
      << num_candidates << ", \"fromPlanCache\": "
      << (from_plan_cache ? "true" : "false")
      << ", \"replanned\": " << (replanned ? "true" : "false");
  if (!planned_by.empty()) {
    out << ", \"plannedBy\": \"" << query::JsonEscape(planned_by) << "\"";
  }
  if (v != query::ExplainVerbosity::kQueryPlanner) {
    char millis[32];
    std::snprintf(millis, sizeof(millis), "%.3f", exec_millis);
    out << ", \"nReturned\": " << stats.n_returned
        << ", \"keysExamined\": " << stats.keys_examined
        << ", \"docsExamined\": " << stats.docs_examined
        << ", \"works\": " << stats.works;
    if (estimated_keys >= 0.0) {
      char est[32];
      std::snprintf(est, sizeof(est), "%.1f", estimated_keys);
      out << ", \"estimatedKeysExamined\": " << est;
      std::snprintf(est, sizeof(est), "%.1f", estimated_docs);
      out << ", \"estimatedDocsExamined\": " << est;
    }
    out << ", \"executionTimeMillis\": " << millis;
  }
  out << ", \"winningPlan\": " << winning_plan.ToJson(v);
  if (v == query::ExplainVerbosity::kAllPlansExecution) {
    out << ", \"rejectedPlans\": [";
    for (size_t i = 0; i < rejected_plans.size(); ++i) {
      if (i > 0) out << ", ";
      out << rejected_plans[i].ToJson(v);
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

// Fires on every ShardCursor::GetMore. A delay action models a slow shard;
// an error action kills the stream mid-flight (the batch carries the error
// and no documents, like a shard host dying between getMores).
STIX_FAIL_POINT_DEFINE(shardGetMore);

Result<storage::RecordId> Shard::Insert(bson::Document doc) {
  const std::unique_lock<std::shared_mutex> lock = LockExclusive(data_mu_);
  return InsertLocked(std::move(doc));
}

Result<storage::RecordId> Shard::InsertLocked(bson::Document doc) {
  const storage::RecordId rid = collection_.records().Insert(std::move(doc));
  const bson::Document* stored = collection_.records().Get(rid);
  const Status s = catalog_.OnInsert(*stored, rid);
  if (!s.ok()) {
    collection_.records().Remove(rid);
    return s;
  }
  stats_.Observe(query::stats::ExtractStatsValues(*stored, StatsGeoHash()),
                 +1);
  return rid;
}

Status Shard::Remove(storage::RecordId rid) {
  const std::unique_lock<std::shared_mutex> lock = LockExclusive(data_mu_);
  return RemoveLocked(rid);
}

Status Shard::RemoveLocked(storage::RecordId rid) {
  const bson::Document* doc = collection_.records().Get(rid);
  if (doc == nullptr) {
    return Status::NotFound("record " + std::to_string(rid));
  }
  const Status s = catalog_.OnRemove(*doc, rid);
  if (!s.ok()) return s;
  stats_.Observe(query::stats::ExtractStatsValues(*doc, StatsGeoHash()), -1);
  collection_.records().Remove(rid);
  return Status::OK();
}

const geo::GeoHash* Shard::StatsGeoHash() const {
  for (const auto& idx : catalog_.indexes()) {
    if (idx->descriptor().FirstGeoField() >= 0) {
      return &idx->keygen().geohash();
    }
  }
  return nullptr;
}

void Shard::MaybeRebuildStats() const {
  if (!stats_.NeedsRebuild()) return;
  const uint64_t generation = stats_.rebuild_generation();
  const geo::GeoHash* geohash = StatsGeoHash();
  query::stats::RebuildSample sample;
  const uint64_t n = collection_.records().num_records();
  sample.dates.reserve(n);
  sample.hilberts.reserve(n);
  collection_.records().ForEach(
      [&](storage::RecordId, const bson::Document& doc) {
        const query::stats::ObservedValues v =
            query::stats::ExtractStatsValues(doc, geohash);
        ++sample.num_docs;
        sample.num_points += v.points;
        if (v.is_bucket) ++sample.num_buckets;
        if (v.date) sample.dates.push_back(*v.date);
        if (v.hilbert) sample.hilberts.push_back(*v.hilbert);
        if (v.geocell) sample.geocells.push_back(*v.geocell);
      });
  stats_.Rebuild(std::move(sample), generation);
  // Cached plan decisions (and the works figures their replanning budgets
  // derive from) were measured against the old distribution.
  plan_cache_.InvalidateAll();
}

void Shard::OnDataDistributionChanged() const {
  stats_.MarkStale();
  plan_cache_.InvalidateAll();
}

query::ExecutionResult Shard::RunQuery(
    const query::ExprPtr& expr, const query::ExecutorOptions& options) const {
  const std::shared_lock<std::shared_mutex> lock = LockShared(data_mu_);
  MaybeRebuildStats();
  query::ExecutorOptions opts = options;
  opts.shard_stats = &stats_;
  return query::ExecuteQuery(collection_.records(), catalog_, expr, opts,
                             &plan_cache_);
}

std::unique_ptr<ShardCursor> Shard::OpenCursor(
    query::ExprPtr expr, const query::ExecutorOptions& options,
    uint64_t limit) const {
  query::ExecutorOptions opts = options;
  opts.shard_stats = &stats_;
  return std::unique_ptr<ShardCursor>(
      new ShardCursor(*this, std::move(expr), opts, limit));
}

ShardCursor::ShardCursor(const Shard& shard, query::ExprPtr expr,
                         const query::ExecutorOptions& options, uint64_t limit)
    : shard_(shard),
      options_(options),
      exec_(shard.collection().records(), shard.catalog(), std::move(expr),
            options, &shard.plan_cache_, limit) {
  STIX_METRIC_GAUGE(open_cursors, "cluster.open_cursors");
  open_cursors.Add(1);
}

void ShardCursor::Close() {
  if (closed_) return;
  closed_ = true;
  done_ = true;
  STIX_METRIC_GAUGE(open_cursors, "cluster.open_cursors");
  open_cursors.Sub(1);
}

int ShardCursor::shard_id() const { return shard_.id(); }

ShardExplain ShardCursor::Explain() const {
  ShardExplain explain;
  explain.shard_id = shard_.id();
  explain.winning_index = exec_.winning_index();
  explain.num_candidates = exec_.num_candidates();
  explain.from_plan_cache = exec_.from_plan_cache();
  explain.replanned = exec_.replanned();
  explain.planned_by = query::PlannedByName(exec_.planned_by());
  if (const query::PlanEstimate* est = exec_.winner_estimate()) {
    explain.estimated_keys = est->keys;
    explain.estimated_docs = est->docs;
  }
  explain.stats = exec_.CurrentStats();
  explain.exec_millis = exec_millis_;
  explain.winning_plan = exec_.ExplainWinner();
  explain.rejected_plans = exec_.ExplainRejected();
  return explain;
}

ShardExplain Shard::Explain(const query::ExprPtr& expr,
                            query::ExecutorOptions options) const {
  options.stage_timing = true;
  const std::unique_ptr<ShardCursor> cursor = OpenCursor(expr, options);
  while (!cursor->exhausted()) (void)cursor->GetMore(0);
  return cursor->Explain();
}

ShardCursor::Batch ShardCursor::GetMore(size_t batch_size) {
  Batch batch;
  if (done_) {
    batch.exhausted = true;
    return batch;
  }
  // Evaluated outside the shard lock: an injected delay stalls this cursor,
  // not the shard's writers.
  if (Status s = CheckFailPoint(shardGetMore); !s.ok()) {
    done_ = true;
    batch.exhausted = true;
    batch.error = std::move(s);
    return batch;
  }
  const bool yield =
      options_.yield_policy == query::YieldPolicy::kYieldAndRestore;
  const std::shared_lock<std::shared_mutex> lock =
      LockShared(shard_.data_mutex());
  shard_.MaybeRebuildStats();
  const storage::RecordStore& records = shard_.collection().records();
  if (yield) exec_.RestoreState();
  Stopwatch timer;
  storage::RecordId rid;
  const bson::Document* doc;
  while (!done_ && (batch_size == 0 || batch.docs.size() < batch_size)) {
    if (exec_.Next(&rid, &doc)) {
      batch.docs.push_back(doc);
      batch.rids.push_back(rid);
    } else {
      done_ = true;
    }
  }
  exec_millis_ += timer.ElapsedMillis();
  batch.exhausted = done_;
  if (yield) {
    // Detach before the lock drops: the executor collapses to KeyString
    // positions and the batch takes ownership of its documents, so writers
    // and migrations may run freely until the next GetMore.
    exec_.SaveState();
    const bool transient = exec_.winner_transient();
    batch.owned.reserve(batch.docs.size());
    for (const bson::Document* d : batch.docs) {
      if (transient) {
        // Unpacked points are arena-owned and emitted exactly once; moving
        // them out skips a deep copy per point (record-store borrows below
        // must still be copied — their memory is not ours to gut).
        batch.owned.push_back(std::move(*const_cast<bson::Document*>(d)));
      } else {
        batch.owned.push_back(*d);
      }
    }
    for (size_t i = 0; i < batch.docs.size(); ++i) {
      batch.docs[i] = &batch.owned[i];
    }
  } else {
    batch.borrow_source = &records;
    batch.borrow_generation = records.generation();
  }
  return batch;
}

}  // namespace stix::cluster
