#include "cluster/shard.h"

namespace stix::cluster {

Result<storage::RecordId> Shard::Insert(bson::Document doc) {
  const storage::RecordId rid = collection_.records().Insert(std::move(doc));
  const bson::Document* stored = collection_.records().Get(rid);
  const Status s = catalog_.OnInsert(*stored, rid);
  if (!s.ok()) {
    collection_.records().Remove(rid);
    return s;
  }
  return rid;
}

Status Shard::Remove(storage::RecordId rid) {
  const bson::Document* doc = collection_.records().Get(rid);
  if (doc == nullptr) {
    return Status::NotFound("record " + std::to_string(rid));
  }
  const Status s = catalog_.OnRemove(*doc, rid);
  if (!s.ok()) return s;
  collection_.records().Remove(rid);
  return Status::OK();
}

query::ExecutionResult Shard::RunQuery(
    const query::ExprPtr& expr, const query::ExecutorOptions& options) const {
  return query::ExecuteQuery(collection_.records(), catalog_, expr, options,
                             &plan_cache_);
}

}  // namespace stix::cluster
