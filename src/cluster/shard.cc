#include "cluster/shard.h"

#include "common/failpoint.h"

namespace stix::cluster {

// Fires on every ShardCursor::GetMore. A delay action models a slow shard;
// an error action kills the stream mid-flight (the batch carries the error
// and no documents, like a shard host dying between getMores).
STIX_FAIL_POINT_DEFINE(shardGetMore);

Result<storage::RecordId> Shard::Insert(bson::Document doc) {
  const storage::RecordId rid = collection_.records().Insert(std::move(doc));
  const bson::Document* stored = collection_.records().Get(rid);
  const Status s = catalog_.OnInsert(*stored, rid);
  if (!s.ok()) {
    collection_.records().Remove(rid);
    return s;
  }
  return rid;
}

Status Shard::Remove(storage::RecordId rid) {
  const bson::Document* doc = collection_.records().Get(rid);
  if (doc == nullptr) {
    return Status::NotFound("record " + std::to_string(rid));
  }
  const Status s = catalog_.OnRemove(*doc, rid);
  if (!s.ok()) return s;
  collection_.records().Remove(rid);
  return Status::OK();
}

query::ExecutionResult Shard::RunQuery(
    const query::ExprPtr& expr, const query::ExecutorOptions& options) const {
  return query::ExecuteQuery(collection_.records(), catalog_, expr, options,
                             &plan_cache_);
}

std::unique_ptr<ShardCursor> Shard::OpenCursor(
    query::ExprPtr expr, const query::ExecutorOptions& options,
    uint64_t limit) const {
  return std::unique_ptr<ShardCursor>(
      new ShardCursor(*this, std::move(expr), options, limit));
}

ShardCursor::ShardCursor(const Shard& shard, query::ExprPtr expr,
                         const query::ExecutorOptions& options, uint64_t limit)
    : shard_(shard),
      exec_(shard.collection().records(), shard.catalog(), std::move(expr),
            options, &shard.plan_cache_, limit) {}

int ShardCursor::shard_id() const { return shard_.id(); }

ShardCursor::Batch ShardCursor::GetMore(size_t batch_size) {
  Batch batch;
  const storage::RecordStore& records = shard_.collection().records();
  if (Status s = CheckFailPoint(shardGetMore); !s.ok()) {
    done_ = true;
    batch.exhausted = true;
    batch.error = std::move(s);
    batch.borrow_source = &records;
    batch.borrow_generation = records.generation();
    return batch;
  }
  Stopwatch timer;
  storage::RecordId rid;
  const bson::Document* doc;
  while (!done_ && (batch_size == 0 || batch.docs.size() < batch_size)) {
    if (exec_.Next(&rid, &doc)) {
      batch.docs.push_back(doc);
      batch.rids.push_back(rid);
    } else {
      done_ = true;
    }
  }
  exec_millis_ += timer.ElapsedMillis();
  batch.exhausted = done_;
  batch.borrow_source = &records;
  batch.borrow_generation = records.generation();
  return batch;
}

}  // namespace stix::cluster
