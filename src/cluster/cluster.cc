#include "cluster/cluster.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <variant>

#include "bson/codec.h"
#include "cluster/snapshot.h"
#include "common/failpoint.h"
#include "common/fs.h"
#include "common/metrics.h"
#include "keystring/keystring.h"
#include "query/planner.h"
#include "storage/bucket.h"

namespace stix::cluster {

// Fires at the start of every chunk migration, before any document moves.
// An error action aborts the migration cleanly (no partial move: chunk
// ownership and both shards are untouched); a delay models a slow donor.
STIX_FAIL_POINT_DEFINE(balancerMoveChunk);

Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      exec_pool_(std::make_unique<ThreadPool>(
          options.fanout_threads > 0 ? options.fanout_threads
                                     : ThreadPool::DefaultThreads())),
      profiler_(options.profiler),
      rng_(options.seed),
      reads_per_shard_(static_cast<size_t>(options.num_shards)) {
  shards_.reserve(options_.num_shards);
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i));
  }
}

Cluster::~Cluster() { StopBalancer(); }

std::string Cluster::IndexNameForPattern(const ShardKeyPattern& pattern) {
  std::string name;
  for (const std::string& path : pattern.paths()) {
    if (!name.empty()) name += "_";
    name += path;
    name += "_1";
  }
  return name;
}

Status Cluster::AttachDurability() {
  const DurabilityOptions& d = options_.durability;
  if (d.data_dir.empty() || durability_attached_) return Status::OK();
  if (Status s = CreateDirs(d.data_dir); !s.ok()) return s;
  for (auto& shard : shards_) {
    const Status s = shard->AttachWal(
        d.data_dir + "/shard-" + std::to_string(shard->id()), d.wal,
        d.checkpoint_wal_bytes, /*fresh=*/true);
    if (!s.ok()) return s;
  }
  // Topology changes are rare and must never sit in a group-commit window:
  // the config journal syncs every commit regardless of the data knob.
  storage::WalOptions config_opts;
  config_opts.sync_every_commits = 1;
  Result<std::unique_ptr<storage::WriteAheadLog>> wal =
      storage::WriteAheadLog::Open(d.data_dir + "/config.wal", config_opts,
                                   /*fresh=*/true);
  if (!wal.ok()) return wal.status();
  config_wal_ = std::move(*wal);
  durability_attached_ = true;
  return Status::OK();
}

Status Cluster::LogTopology() {
  if (config_wal_ == nullptr) return Status::OK();
  const std::lock_guard<std::mutex> lock(config_mu_);
  const std::string meta = bson::EncodeBson(ClusterMetadataDoc(*this));
  if (Result<uint64_t> a = config_wal_->Append(
          storage::WalRecordType::kConfigMeta, 0, meta);
      !a.ok()) {
    return a.status();
  }
  const Result<uint64_t> lsn = config_wal_->Commit();
  return lsn.ok() ? Status::OK() : lsn.status();
}

Status Cluster::ShardCollection(ShardKeyPattern pattern) {
  if (sharded_) {
    return Status::AlreadyExists("collection is already sharded");
  }
  if (pattern.empty()) {
    return Status::InvalidArgument("shard key must have at least one field");
  }
  if (Status s = AttachDurability(); !s.ok()) return s;
  pattern_ = std::move(pattern);
  chunks_ = std::make_unique<ChunkManager>(0);
  shard_key_index_name_ = IndexNameForPattern(pattern_);

  // Every shard gets the mandatory _id index and the shard-key index that
  // sharding imposes (paper Section 4.1.2 / A.3).
  for (auto& shard : shards_) {
    Status s = shard->catalog().CreateIndex(index::IndexDescriptor(
        "_id_", {{"_id", index::IndexFieldKind::kAscending}}));
    if (!s.ok()) return s;
    std::vector<index::IndexField> fields;
    for (const std::string& path : pattern_.paths()) {
      fields.push_back({path, index::IndexFieldKind::kAscending});
    }
    s = shard->catalog().CreateIndex(
        index::IndexDescriptor(shard_key_index_name_, std::move(fields)));
    if (!s.ok()) return s;
  }
  sharded_ = true;
  return LogTopology();
}

Status Cluster::CreateIndex(const index::IndexDescriptor& descriptor) {
  if (!sharded_) {
    return Status::Internal("shard the collection before creating indexes");
  }
  for (auto& shard : shards_) {
    index::IndexDescriptor copy(descriptor.name(), descriptor.fields(),
                                descriptor.geohash_bits());
    const Status s = shard->catalog().CreateIndex(std::move(copy));
    if (!s.ok()) return s;
  }
  return LogTopology();
}

Status Cluster::Insert(bson::Document doc) {
  if (!sharded_) {
    return Status::Internal("shard the collection before inserting");
  }
  {
    // Routing, the shard write, chunk accounting and a possible split are
    // one atomic topology step; the shard's own exclusive lock nests inside
    // (topology < shard data).
    const std::unique_lock<std::shared_mutex> topo(topology_mu_);
    // Enrich before keying: a writer that raced the reshard's install may
    // carry a document the target layout's sweep will never revisit, and
    // its routing key below must be computed from the enriched shape.
    if (reshard_enrich_ != nullptr) {
      Result<bool> enriched = reshard_enrich_(&doc);
      if (!enriched.ok()) return enriched.status();
    }
    // While a reshard is in flight, writes route by the *target* table —
    // the document lands directly on its final owner (so the chunk copier
    // never chases a moving tail) and reads broadcast until the swap.
    const bool resharding = resharding_in_progress_;
    const ShardKeyPattern& pattern = resharding ? reshard_pattern_ : pattern_;
    ChunkManager& table = resharding ? *reshard_chunks_ : *chunks_;
    const std::string key = pattern.KeyOf(doc);
    const size_t chunk_index = table.FindChunkIndex(key);
    Chunk& chunk = table.chunk(chunk_index);
    const uint64_t doc_bytes = doc.ApproxBsonSize();
    // A bucket document carries many logical points; everything else is
    // one. The balancer's point-weighted pick reads this.
    uint64_t doc_points = 1;
    if (storage::IsBucketDocument(doc)) {
      if (const Result<storage::BucketMeta> meta =
              storage::ParseBucketMeta(doc);
          meta.ok()) {
        doc_points = meta->num_points;
      }
    }

    Result<storage::RecordId> rid =
        shards_[static_cast<size_t>(chunk.shard_id)]->Insert(std::move(doc));
    if (!rid.ok()) return rid.status();

    chunk.bytes += doc_bytes;
    chunk.docs += 1;
    chunk.points += doc_points;
    chunk.writes += 1;
    // The transitional table never splits; the sampled split vector already
    // sized its chunks, and the copier iterates it by index.
    if (!resharding && chunk.bytes > options_.chunk_max_bytes &&
        !chunk.jumbo) {
      MaybeSplitChunk(chunk_index);
    }
  }

  // The inline balancer cadence runs with the topology lock released — a
  // migration takes it again itself (and a self-deadlock would be the
  // alternative). Cadence state is shared with the background balancer.
  bool run_round = false;
  if (options_.balance_every_inserts > 0) {
    const std::lock_guard<std::mutex> bl(balance_mu_);
    if (++inserts_since_balance_ >= options_.balance_every_inserts) {
      inserts_since_balance_ = 0;
      run_round = true;
    }
  }
  if (run_round) {
    std::optional<Migration> m;
    {
      const std::shared_lock<std::shared_mutex> topo(topology_mu_);
      const std::lock_guard<std::mutex> bl(balance_mu_);
      // The old table is being drained chunk by chunk; balancing it would
      // only race the reshard copier over the same documents.
      if (resharding_in_progress_ || reshard_preparing_) return Status::OK();
      m = PickNextMigration(*chunks_, options_.num_shards, zones_,
                            options_.balancer, &rng_);
    }
    if (m.has_value()) {
      const Status s = MoveChunk(m->chunk_index, m->to_shard);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

void Cluster::MaybeSplitChunk(size_t chunk_index) {
  Chunk& chunk = chunks_->chunk(chunk_index);
  Shard& shard = *shards_[static_cast<size_t>(chunk.shard_id)];
  const index::Index* skidx = shard.catalog().Get(shard_key_index_name_);
  if (skidx == nullptr) return;

  // Shard-key values of the chunk, from the shard-key index.
  std::vector<std::string> keys;
  keys.reserve(chunk.docs);
  for (storage::BTree::Cursor c = skidx->btree().SeekGE(chunk.min);
       c.Valid() && c.key() < chunk.max; c.Next()) {
    keys.push_back(c.key());
  }
  if (keys.size() < 2) {
    chunk.jumbo = true;
    return;
  }
  // Sampled split vector: cut into as many near-equal parts as the
  // overgrowth calls for (MongoDB's autoSplitVector), not one median split
  // per triggering insert — a bulk load that blew far past the limit (or a
  // write-hotspot chunk the balancer wants to spread) settles in one pass.
  // The target part size is half the limit, matching the old median split;
  // duplicate-key runs shift boundaries right (for {hilbertIndex, date}
  // this is the paper's "split on the temporal dimension" case).
  const uint64_t target_part_bytes =
      std::max<uint64_t>(options_.chunk_max_bytes / 2, 1);
  const size_t parts = static_cast<size_t>(std::min<uint64_t>(
      std::max<uint64_t>(chunk.bytes / target_part_bytes, 2), 16));
  const std::vector<std::string> bounds = SplitVector(keys, parts);
  if (bounds.empty()) {
    chunk.jumbo = true;  // one key value fills the chunk; cannot split
    return;
  }
  (void)chunks_->MultiSplit(chunk_index, bounds);
  // A split moves no data: if journaling it fails, recovery simply sees the
  // pre-split chunk over the same documents. The triggering insert is
  // already durable and must not fail retroactively.
  (void)LogTopology();
}

// Two-phase chunk migration (MongoDB's moveChunk, with its critical
// section). The copy phase clones the chunk's documents from the donor
// under a shared lock, concurrently with readers and other shards'
// writers. The commit phase then takes the migration latch exclusive
// (held shared by every open cluster cursor; contention aborts the
// migration benignly), re-resolves the chunk under the exclusive topology
// lock, and — aborting benignly if the chunk split or moved during the
// copy — applies the removes/inserts under both shards' data locks and
// flips ownership. Documents are immutable here (no
// updates), so a pre-copied clone is never stale; documents inserted after
// the copy snapshot are cloned as stragglers inside the commit.
Status Cluster::MoveChunk(size_t chunk_index, int to_shard) {
  STIX_METRIC_COUNTER(committed, "balancer.migrations_committed");
  STIX_METRIC_COUNTER(aborted, "balancer.migrations_aborted");

  // Snapshot the chunk identity. The index may be stale (a concurrent split
  // shifts indices) — harmless: it still names a real chunk, and the commit
  // re-validates against this snapshot.
  std::string min, max;
  int from_shard = -1;
  {
    const std::shared_lock<std::shared_mutex> topo(topology_mu_);
    if (chunk_index >= chunks_->num_chunks()) return Status::OK();
    const Chunk& chunk = chunks_->chunk(chunk_index);
    if (chunk.shard_id == to_shard) return Status::OK();
    min = chunk.min;
    max = chunk.max;
    from_shard = chunk.shard_id;
  }
  if (Status s = CheckFailPoint(balancerMoveChunk); !s.ok()) return s;
  Shard& source = *shards_[static_cast<size_t>(from_shard)];
  Shard& dest = *shards_[static_cast<size_t>(to_shard)];

  // Copy phase: clone the chunk's current documents under the donor's
  // shared lock. Readers keep streaming; only the donor's writers wait.
  std::map<storage::RecordId, bson::Document> clones;
  {
    const std::shared_lock<std::shared_mutex> data(source.data_mutex());
    const index::Index* skidx = source.catalog().Get(shard_key_index_name_);
    if (skidx == nullptr) {
      return Status::Internal("shard-key index missing on shard");
    }
    for (storage::BTree::Cursor c = skidx->btree().SeekGE(min);
         c.Valid() && c.key() < max; c.Next()) {
      const bson::Document* doc = source.collection().records().Get(c.rid());
      if (doc != nullptr) clones.emplace(c.rid(), *doc);
    }
  }

  // Commit phase (the critical section). Lock order: latch < topology <
  // shard data, shards in id order. The latch is try-locked: interleaving
  // inserts with an open cursor on one thread is legal, and that thread
  // already holds the latch shared — blocking here would self-deadlock.
  // Contention aborts the migration benignly; a later round retries.
  const std::unique_lock<std::shared_mutex> commit(migration_commit_latch_,
                                                   std::try_to_lock);
  if (!commit.owns_lock()) {
    aborted.Increment();
    return Status::OK();
  }
  const std::unique_lock<std::shared_mutex> topo(topology_mu_);
  const size_t idx = chunks_->FindChunkIndex(min);
  Chunk& chunk = chunks_->chunk(idx);
  if (chunk.min != min || chunk.max != max || chunk.shard_id != from_shard) {
    // The chunk split or was migrated while we copied. Nothing moved;
    // a later round re-picks against the new topology.
    aborted.Increment();
    return Status::OK();
  }
  std::unique_lock<std::shared_mutex> first_lock(
      source.id() < dest.id() ? source.data_mutex() : dest.data_mutex());
  std::unique_lock<std::shared_mutex> second_lock(
      source.id() < dest.id() ? dest.data_mutex() : source.data_mutex());

  const index::Index* skidx = source.catalog().Get(shard_key_index_name_);
  if (skidx == nullptr) {
    return Status::Internal("shard-key index missing on shard");
  }
  std::vector<storage::RecordId> rids;
  for (storage::BTree::Cursor c = skidx->btree().SeekGE(min);
       c.Valid() && c.key() < max; c.Next()) {
    rids.push_back(c.rid());
  }
  // Apply order is chosen for crash atomicity (a no-op reordering for the
  // in-memory store): the copies become durable on the recipient first,
  // then the ownership flip is journaled, and only then do the donor's
  // copies die. A crash anywhere leaves either the old or the new owner
  // journaled, and recovery's orphan sweep removes whichever side the
  // journaled owner does not claim — an acknowledged migration survives
  // whole, an unacknowledged one vanishes whole.
  std::vector<storage::RecordId> dest_rids;
  dest_rids.reserve(rids.size());
  std::vector<storage::RecordId> moved;
  moved.reserve(rids.size());
  for (const storage::RecordId rid : rids) {
    bson::Document copy;
    if (const auto it = clones.find(rid); it != clones.end()) {
      copy = std::move(it->second);
    } else {
      // Inserted after the copy snapshot: clone it now, inside the
      // critical section.
      const bson::Document* doc = source.collection().records().Get(rid);
      if (doc == nullptr) continue;
      copy = *doc;
    }
    Result<storage::RecordId> inserted = dest.InsertLocked(std::move(copy));
    if (!inserted.ok()) {
      // Roll the partial copy back out (best effort — after a simulated
      // crash the recipient's WAL is dead and recovery's orphan sweep
      // finishes the job).
      for (const storage::RecordId r : dest_rids) {
        (void)dest.RemoveLocked(r);
      }
      aborted.Increment();
      return inserted.status();
    }
    dest_rids.push_back(*inserted);
    moved.push_back(rid);
  }
  chunk.shard_id = to_shard;
  if (Status s = LogTopology(); !s.ok()) {
    chunk.shard_id = from_shard;
    for (const storage::RecordId r : dest_rids) {
      (void)dest.RemoveLocked(r);
    }
    aborted.Increment();
    return s;
  }
  for (const storage::RecordId rid : moved) {
    Status s = source.RemoveLocked(rid);
    if (!s.ok()) return s;
  }
  // Both shards' data distributions just changed: stale-mark their
  // statistics (next query rebuilds) and drop their cached plan choices.
  source.OnDataDistributionChanged();
  dest.OnDataDistributionChanged();
  committed.Increment();
  return Status::OK();
}

Status Cluster::SetZones(std::vector<ZoneRange> zones) {
  if (!sharded_) {
    return Status::Internal("shard the collection before defining zones");
  }
  std::sort(zones.begin(), zones.end(),
            [](const ZoneRange& a, const ZoneRange& b) { return a.min < b.min; });
  for (size_t i = 1; i < zones.size(); ++i) {
    if (zones[i].min < zones[i - 1].max) {
      return Status::InvalidArgument("zone ranges overlap");
    }
  }

  {
    const std::unique_lock<std::shared_mutex> topo(topology_mu_);
    // Chunk boundaries must align with zone boundaries: split where needed.
    for (const ZoneRange& z : zones) {
      for (const std::string* boundary : {&z.min, &z.max}) {
        if (*boundary == keystring::MinKey() ||
            *boundary == keystring::MaxKey()) {
          continue;
        }
        const size_t ci = chunks_->FindChunkIndex(*boundary);
        if (chunks_->chunk(ci).min != *boundary) {
          const Status s = chunks_->Split(ci, *boundary);
          if (!s.ok()) return s;
        }
      }
    }
    zones_ = std::move(zones);
    if (Status s = LogTopology(); !s.ok()) return s;
  }
  Balance();  // first priority of the balancer: fix zone violations
  return Status::OK();
}

Status Cluster::SetZonesByBucketAuto(const std::string& path) {
  const std::vector<bson::Value> boundaries =
      BucketAutoBoundaries(shards_, path, options_.num_shards);
  std::vector<ZoneRange> zones;
  zones.reserve(boundaries.size() + 1);
  std::string prev = keystring::MinKey();
  int shard = 0;
  for (const bson::Value& b : boundaries) {
    std::string enc = keystring::Encode(b);
    if (enc <= prev) continue;  // collapsed boundary under heavy skew
    zones.push_back(ZoneRange{prev, enc, shard++});
    prev = std::move(enc);
  }
  zones.push_back(ZoneRange{prev, keystring::MaxKey(), shard});
  return SetZones(std::move(zones));
}

Status Cluster::RestoreShardingState(
    ShardKeyPattern pattern, std::vector<Chunk> chunk_table,
    std::vector<ZoneRange> zones,
    const std::vector<index::IndexDescriptor>& secondary_indexes) {
  if (sharded_) {
    return Status::AlreadyExists("cannot restore into a sharded cluster");
  }
  for (const Chunk& c : chunk_table) {
    if (c.shard_id < 0 || c.shard_id >= options_.num_shards) {
      return Status::Corruption("chunk references unknown shard " +
                                std::to_string(c.shard_id));
    }
  }
  Result<std::unique_ptr<ChunkManager>> chunks =
      ChunkManager::FromChunks(std::move(chunk_table));
  if (!chunks.ok()) return chunks.status();

  const Status s = ShardCollection(std::move(pattern));
  if (!s.ok()) return s;
  chunks_ = std::move(*chunks);
  zones_ = std::move(zones);
  for (const index::IndexDescriptor& desc : secondary_indexes) {
    const Status cs = CreateIndex(desc);
    if (!cs.ok()) return cs;
  }
  // ShardCollection/CreateIndex journaled intermediate states (default
  // chunk table); close with the fully restored topology.
  return LogTopology();
}

Status Cluster::RestoreDocumentToShard(int shard_id, bson::Document doc) {
  if (!sharded_) {
    return Status::Internal("restore sharding state before documents");
  }
  if (shard_id < 0 || shard_id >= options_.num_shards) {
    return Status::InvalidArgument("unknown shard " +
                                   std::to_string(shard_id));
  }
  Result<storage::RecordId> rid =
      shards_[static_cast<size_t>(shard_id)]->Insert(std::move(doc));
  return rid.ok() ? Status::OK() : rid.status();
}

void Cluster::Balance() {
  // Cap rounds defensively; each successful migration strictly reduces either
  // zone violations or imbalance, so this should never bind.
  size_t max_rounds = 0;
  {
    const std::shared_lock<std::shared_mutex> topo(topology_mu_);
    max_rounds = 16 * chunks_->num_chunks() + 64;
  }
  for (size_t round = 0; round < max_rounds; ++round) {
    std::optional<Migration> m;
    {
      const std::shared_lock<std::shared_mutex> topo(topology_mu_);
      // Reshard owns chunk movement for its whole duration.
      if (resharding_in_progress_ || reshard_preparing_) return;
      const std::lock_guard<std::mutex> bl(balance_mu_);
      m = PickNextMigration(*chunks_, options_.num_shards, zones_,
                            options_.balancer, &rng_);
    }
    if (!m.has_value()) return;
    if (!MoveChunk(m->chunk_index, m->to_shard).ok()) return;
  }
}

void Cluster::RunBalancerRound() {
  std::optional<Migration> m;
  {
    const std::shared_lock<std::shared_mutex> topo(topology_mu_);
    if (chunks_ == nullptr) return;  // balancer started before sharding
    // Reshard owns chunk movement for its whole duration.
    if (resharding_in_progress_ || reshard_preparing_) return;
    const std::lock_guard<std::mutex> bl(balance_mu_);
    m = PickNextMigration(*chunks_, options_.num_shards, zones_,
                          options_.balancer, &rng_);
  }
  // Failures (an enabled balancerMoveChunk fail point, a benign abort) are
  // the background balancer's to swallow: the next round re-picks.
  if (m.has_value()) (void)MoveChunk(m->chunk_index, m->to_shard);
}

void Cluster::BalancerMain(int interval_ms) {
  std::unique_lock<std::mutex> lock(balancer_thread_mu_);
  while (!balancer_stop_) {
    lock.unlock();
    RunBalancerRound();
    lock.lock();
    balancer_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                          [this] { return balancer_stop_; });
  }
  balancer_running_ = false;
  balancer_cv_.notify_all();
}

void Cluster::StartBalancer() {
  const std::lock_guard<std::mutex> lock(balancer_thread_mu_);
  if (balancer_running_) return;
  balancer_running_ = true;
  balancer_stop_ = false;
  const int interval_ms = std::max(1, options_.balancer.background_interval_ms);
  // The balancer occupies one worker of the cluster's long-lived pool for
  // its whole run; query fan-outs share the remaining workers.
  exec_pool_->Submit([this, interval_ms] { BalancerMain(interval_ms); });
}

void Cluster::StopBalancer() {
  std::unique_lock<std::mutex> lock(balancer_thread_mu_);
  if (!balancer_running_ && !balancer_stop_) return;
  balancer_stop_ = true;
  balancer_cv_.notify_all();
  balancer_cv_.wait(lock, [this] { return !balancer_running_; });
  balancer_stop_ = false;
}

bool Cluster::balancer_running() const {
  const std::lock_guard<std::mutex> lock(balancer_thread_mu_);
  return balancer_running_;
}

Status Cluster::Checkpoint() {
  if (config_wal_ == nullptr) return Status::OK();
  // Topology held exclusive: chunk accounting, shard contents and the
  // journaled metadata all checkpoint from one consistent cut.
  const std::unique_lock<std::shared_mutex> topo(topology_mu_);
  for (auto& shard : shards_) {
    if (Status s = shard->Checkpoint(); !s.ok()) return s;
  }
  return CompactConfigWalLocked();
}

Status Cluster::CompactConfigWalLocked() {
  const std::lock_guard<std::mutex> lock(config_mu_);
  if (config_wal_->dead()) {
    return Status::Internal("config journal is dead");
  }
  const std::string path = config_wal_->path();
  const std::string tmp = path + ".tmp";
  storage::WalOptions config_opts;
  config_opts.sync_every_commits = 1;
  {
    Result<std::unique_ptr<storage::WriteAheadLog>> fresh =
        storage::WriteAheadLog::Open(tmp, config_opts, /*fresh=*/true);
    if (!fresh.ok()) return fresh.status();
    const std::string meta = bson::EncodeBson(ClusterMetadataDoc(*this));
    if (Result<uint64_t> a = (*fresh)->Append(
            storage::WalRecordType::kConfigMeta, 0, meta);
        !a.ok()) {
      return a.status();
    }
    const Result<uint64_t> lsn = (*fresh)->Commit();
    if (!lsn.ok()) return lsn.status();
  }
  // The journal only shrinks via an atomic swap: a crash before the rename
  // keeps the old journal, after it the compacted one — never neither.
  config_wal_.reset();
  if (Status s = RenameFile(tmp, path); !s.ok()) return s;
  Result<std::unique_ptr<storage::WriteAheadLog>> reopened =
      storage::WriteAheadLog::Open(path, config_opts, /*fresh=*/false);
  if (!reopened.ok()) return reopened.status();
  config_wal_ = std::move(*reopened);
  return Status::OK();
}

Status Cluster::SyncWals() {
  for (auto& shard : shards_) {
    if (Status s = shard->SyncWal(); !s.ok()) return s;
  }
  return Status::OK();
}

ClusterQueryResult Cluster::Query(const query::ExprPtr& expr) const {
  // One unbounded getMore per shard — identical to Router::Execute, but
  // routed through OpenCursor so the drain holds the migration latch.
  CursorOptions full_drain;
  full_drain.batch_size = 0;
  full_drain.limit = 0;
  return OpenCursor(expr, full_drain)->Drain();
}

std::unique_ptr<ClusterCursor> Cluster::OpenCursor(
    const query::ExprPtr& expr, const CursorOptions& cursor_options) const {
  // Reshard-commit gate: while a reshard wants the latch exclusive, new
  // cursors pause briefly so the shared holders drain and the commit gets
  // in (a reader-preferring rwlock would otherwise starve it under open-
  // loop traffic). Bounded wait, never a lock: a thread that already holds
  // the latch shared through another open cursor times out and proceeds —
  // slower commit, no deadlock.
  if (reshard_commit_pending_.load(std::memory_order_acquire)) {
    std::unique_lock<std::mutex> gate(reshard_gate_mu_);
    reshard_gate_cv_.wait_for(gate, std::chrono::milliseconds(50), [this] {
      return !reshard_commit_pending_.load(std::memory_order_acquire);
    });
  }
  // Lock order: migration latch (kept by the cursor until it closes),
  // then topology (released once targeting is done).
  std::shared_lock<std::shared_mutex> latch(migration_commit_latch_);
  const std::shared_lock<std::shared_mutex> topo(topology_mu_);
  const Router router(RoutingPatternLocked(), chunks_.get(), &shards_,
                      options_.router, exec_pool_.get(),
                      options_.parallel_fanout, &profiler_);
  std::unique_ptr<ClusterCursor> cursor = router.OpenCursor(
      expr, options_.exec, cursor_options, std::move(latch));
  for (const int shard_id : cursor->targets()) {
    reads_per_shard_[static_cast<size_t>(shard_id)].fetch_add(
        1, std::memory_order_relaxed);
  }
  return cursor;
}

Result<std::vector<bson::Document>> Cluster::Aggregate(
    const query::Pipeline& pipeline) const {
  std::vector<bson::Document> stream;
  size_t first_merge_stage = 0;

  const auto& stages = pipeline.stages();
  if (!stages.empty()) {
    if (const auto* match = std::get_if<query::MatchStage>(&stages[0])) {
      // Push the $match down to the shards through the router.
      ClusterQueryResult r = Query(match->expr);
      stream = std::move(r.docs);
      first_merge_stage = 1;
    }
  }
  if (first_merge_stage == 0) {
    // No leading $match: full scatter of the raw collection. The shared
    // topology hold fences out concurrent writers (all of which take it
    // exclusive).
    const std::shared_lock<std::shared_mutex> topo(topology_mu_);
    for (const auto& shard : shards_) {
      shard->collection().records().ForEach(
          [&](storage::RecordId, const bson::Document& doc) {
            stream.push_back(doc);
          });
    }
  }

  query::Pipeline merge_stages(std::vector<query::PipelineStage>(
      stages.begin() + static_cast<ptrdiff_t>(first_merge_stage),
      stages.end()));
  return query::RunPipeline(std::move(stream), merge_stages);
}

Result<uint64_t> Cluster::Delete(const query::ExprPtr& expr) {
  // One exclusive topology step: serializes against inserts and migration
  // commits, so per-shard query-then-remove stays internally consistent
  // and chunk accounting cannot race.
  const std::unique_lock<std::shared_mutex> topo(topology_mu_);
  const Router router(RoutingPatternLocked(), chunks_.get(), &shards_,
                      options_.router);
  if (options_.exec.bucket_layout != nullptr && !options_.exec.raw_buckets) {
    return DeleteBucketsLocked(router, expr);
  }
  // During a reshard, account against the target table (documents may sit
  // on either shard mid-copy; the per-chunk commit recomputes accounting
  // exactly, so transient drift here is self-healing).
  const bool resharding = resharding_in_progress_;
  const ShardKeyPattern& pattern = resharding ? reshard_pattern_ : pattern_;
  ChunkManager& table = resharding ? *reshard_chunks_ : *chunks_;
  const std::vector<int> targets = router.TargetShards(expr);
  uint64_t deleted = 0;
  for (const int shard_id : targets) {
    Shard& shard = *shards_[static_cast<size_t>(shard_id)];
    const query::ExecutionResult r = shard.RunQuery(expr, options_.exec);
    // r.docs borrows from the record store, so read everything the
    // accounting needs before the first Remove invalidates the borrow
    // window (the generation check in CheckBorrows enforces exactly this
    // discipline).
    r.CheckBorrows();
    std::vector<std::pair<std::string, uint64_t>> doomed;
    doomed.reserve(r.docs.size());
    for (const bson::Document* doc : r.docs) {
      doomed.emplace_back(pattern.KeyOf(*doc), doc->ApproxBsonSize());
    }
    for (size_t i = 0; i < r.rids.size(); ++i) {
      // Update the owning chunk's accounting before the document dies.
      Chunk& chunk = table.chunk(table.FindChunkIndex(doomed[i].first));
      const Status s = shard.Remove(r.rids[i]);
      if (!s.ok()) return s;
      chunk.bytes -= std::min(chunk.bytes, doomed[i].second);
      if (chunk.docs > 0) --chunk.docs;
      if (chunk.points > 0) --chunk.points;
      chunk.writes += 1;
      ++deleted;
    }
  }
  return deleted;
}

// Deleting from a bucketed collection (topology held exclusive by Delete):
// fetch the raw bucket documents the widened expression can reach, decode
// each, and where any point matches, remove the whole bucket and re-insert
// a re-encoded bucket of the survivors — MongoDB's time-series deletes do
// the same unpack/rewrite dance. Returns the number of *points* deleted.
Result<uint64_t> Cluster::DeleteBucketsLocked(const Router& router,
                                              const query::ExprPtr& expr) {
  const storage::BucketLayout& layout = *options_.exec.bucket_layout;
  query::ExecutorOptions raw_exec = options_.exec;
  raw_exec.raw_buckets = true;
  const query::ExprPtr bucket_expr = Router::RoutingExpr(expr, options_.exec);
  const std::vector<int> targets = router.TargetShards(bucket_expr);

  uint64_t deleted = 0;
  for (const int shard_id : targets) {
    Shard& shard = *shards_[static_cast<size_t>(shard_id)];
    const query::ExecutionResult r = shard.RunQuery(bucket_expr, raw_exec);
    r.CheckBorrows();

    // Decode and partition every affected bucket before the first Remove
    // invalidates the borrow window.
    struct Doomed {
      storage::RecordId rid;
      std::string key;
      uint64_t bytes;
      uint64_t total_points;
      uint64_t removed_points;
      std::vector<bson::Document> survivors;
    };
    std::vector<Doomed> doomed;
    for (size_t i = 0; i < r.docs.size(); ++i) {
      const bson::Document& doc = *r.docs[i];
      if (!storage::IsBucketDocument(doc)) {
        // Row document in a bucketed store (mixed loads): plain delete.
        if (expr != nullptr && !expr->Matches(doc)) continue;
        doomed.push_back({r.rids[i], pattern_.KeyOf(doc),
                          doc.ApproxBsonSize(), 1, 1, {}});
        continue;
      }
      Result<std::vector<bson::Document>> points =
          storage::DecodeBucket(doc, layout);
      if (!points.ok()) return points.status();
      const uint64_t total = points->size();
      std::vector<bson::Document> survivors;
      for (bson::Document& p : *points) {
        if (expr == nullptr || expr->Matches(p)) continue;
        survivors.push_back(std::move(p));
      }
      if (survivors.size() == total) continue;  // nothing to delete here
      doomed.push_back({r.rids[i], pattern_.KeyOf(doc), doc.ApproxBsonSize(),
                        total, total - survivors.size(),
                        std::move(survivors)});
    }

    for (Doomed& d : doomed) {
      Chunk& chunk = chunks_->chunk(chunks_->FindChunkIndex(d.key));
      const Status s = shard.Remove(d.rid);
      if (!s.ok()) return s;
      chunk.bytes -= std::min(chunk.bytes, d.bytes);
      if (chunk.docs > 0) --chunk.docs;
      chunk.points -= std::min(chunk.points, d.total_points);
      deleted += d.removed_points;

      if (d.survivors.empty()) continue;
      Result<bson::Document> rebucketed =
          storage::EncodeBucket(d.survivors, layout);
      if (!rebucketed.ok()) return rebucketed.status();
      const std::string key = pattern_.KeyOf(*rebucketed);
      Chunk& dst = chunks_->chunk(chunks_->FindChunkIndex(key));
      const uint64_t new_bytes = rebucketed->ApproxBsonSize();
      const uint64_t kept = d.survivors.size();
      Result<storage::RecordId> rid =
          shards_[static_cast<size_t>(dst.shard_id)]->Insert(
              std::move(*rebucketed));
      if (!rid.ok()) return rid.status();
      dst.bytes += new_bytes;
      dst.docs += 1;
      dst.points += kept;
    }
  }
  return deleted;
}

std::string Cluster::Explain(const query::ExprPtr& expr) const {
  const std::shared_lock<std::shared_mutex> topo(topology_mu_);
  const Router router(RoutingPatternLocked(), chunks_.get(), &shards_,
                      options_.router);
  bool broadcast = false;
  const std::vector<int> targets = router.TargetShards(
      Router::RoutingExpr(expr, options_.exec), &broadcast);
  query::PlanningContext plan_ctx;
  if (!options_.exec.raw_buckets) {
    plan_ctx.bucket_layout = options_.exec.bucket_layout;
  }

  std::string out = "query: " + expr->DebugString() + "\n";
  out += "shard key: " + pattern_.DebugString() + "\n";
  out += "targeting: " + std::to_string(targets.size()) + "/" +
         std::to_string(shards_.size()) + " shards" +
         (broadcast ? " (broadcast)" : "") + "\n";
  for (const int shard_id : targets) {
    const Shard& shard = *shards_[static_cast<size_t>(shard_id)];
    out += "  shard " + std::to_string(shard_id) + " (" +
           std::to_string(shard.num_documents()) + " docs):\n";
    const std::vector<query::CandidatePlan> candidates =
        query::Planner::Plan(shard.collection().records(), shard.catalog(),
                             expr, plan_ctx);
    for (const query::CandidatePlan& plan : candidates) {
      out += "    candidate: " + plan.summary + "\n";
    }
  }
  return out;
}

ClusterExplain Cluster::Explain(const query::ExprPtr& expr,
                                query::ExplainVerbosity verbosity) const {
  query::ExecutorOptions exec = options_.exec;
  exec.stage_timing = true;
  CursorOptions full_drain;
  full_drain.batch_size = 0;
  std::unique_ptr<ClusterCursor> cursor;
  {
    std::shared_lock<std::shared_mutex> latch(migration_commit_latch_);
    const std::shared_lock<std::shared_mutex> topo(topology_mu_);
    const Router router(RoutingPatternLocked(), chunks_.get(), &shards_,
                        options_.router, exec_pool_.get(),
                        options_.parallel_fanout, &profiler_);
    cursor = router.OpenCursor(expr, exec, full_drain, std::move(latch));
  }
  while (!cursor->exhausted()) (void)cursor->NextBatch();
  ClusterExplain explain = cursor->Explain(verbosity);
  explain.shard_key = pattern_.DebugString();
  explain.total_shards = static_cast<int>(shards_.size());
  return explain;
}

std::string Cluster::ServerStatus() const {
  const uint64_t documents = total_documents();
  size_t num_chunks = 0;
  {
    const std::shared_lock<std::shared_mutex> topo(topology_mu_);
    num_chunks = chunks_ == nullptr ? 0 : chunks_->num_chunks();
  }
  std::ostringstream out;
  out << "{\"shards\": " << shards_.size() << ", \"documents\": " << documents
      << ", \"chunks\": " << num_chunks
      << ", \"planner\": " << PlannerStatusJson()
      << ", \"distribution\": " << DistributionJson()
      << ", \"metrics\": " << MetricsRegistry::Instance().ToJson()
      << ", \"profiler\": " << profiler_.ToJson() << "}";
  return out.str();
}

std::string PlannerStatusJson() {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  const uint64_t total = reg.GetCounter("planner.plans_total").value();
  const uint64_t estimated =
      reg.GetCounter("planner.plans_estimated").value();
  const uint64_t raced = reg.GetCounter("planner.plans_raced").value();
  const uint64_t fallbacks =
      reg.GetCounter("planner.estimate_fallbacks").value();
  const uint64_t misses = reg.GetCounter("planner.estimate_misses").value();
  const uint64_t invalidations =
      reg.GetCounter("planner.cache_invalidations").value();
  const Histogram::Snapshot err =
      reg.GetHistogram("planner.estimate_error_pct").Snap();
  // The error histogram observes per-execution |est - actual| / actual as a
  // percentage; its exact mean / 100 is the mean absolute relative
  // estimation error the acceptance gate measures.
  char mare[32];
  std::snprintf(mare, sizeof(mare), "%.4f", err.Mean() / 100.0);
  std::ostringstream out;
  out << "{\"plans_total\": " << total << ", \"plans_estimated\": " << estimated
      << ", \"plans_raced\": " << raced
      << ", \"estimate_fallbacks\": " << fallbacks
      << ", \"estimate_misses\": " << misses
      << ", \"cache_invalidations\": " << invalidations
      << ", \"estimates_measured\": " << err.count
      << ", \"mean_abs_estimation_error\": " << mare << "}";
  return out.str();
}

std::vector<int> Cluster::TargetShards(const query::ExprPtr& expr) const {
  const std::shared_lock<std::shared_mutex> topo(topology_mu_);
  const Router router(RoutingPatternLocked(), chunks_.get(), &shards_,
                      options_.router);
  return router.TargetShards(Router::RoutingExpr(expr, options_.exec));
}

const ShardKeyPattern* Cluster::RoutingPatternLocked() const {
  // An empty pattern makes Router::TargetShards broadcast every query —
  // exactly right mid-reshard, when a document may legitimately sit on
  // either its old or its new owner.
  static const ShardKeyPattern kBroadcastAll;
  return resharding_in_progress_ ? &kBroadcastAll : &pattern_;
}

bool Cluster::resharding() const {
  const std::shared_lock<std::shared_mutex> topo(topology_mu_);
  return resharding_in_progress_;
}

std::string Cluster::DistributionJson() const {
  const std::shared_lock<std::shared_mutex> topo(topology_mu_);
  std::vector<uint64_t> writes(shards_.size(), 0);
  uint64_t hottest_writes = 0;
  uint64_t total_writes = 0;
  if (chunks_ != nullptr) {
    for (const Chunk& c : chunks_->chunks()) {
      if (c.shard_id >= 0 && c.shard_id < static_cast<int>(writes.size())) {
        writes[static_cast<size_t>(c.shard_id)] += c.writes;
      }
      hottest_writes = std::max(hottest_writes, c.writes);
      total_writes += c.writes;
    }
  }
  std::ostringstream out;
  out << "{\"reads_per_shard\": [";
  for (size_t i = 0; i < reads_per_shard_.size(); ++i) {
    if (i > 0) out << ", ";
    out << reads_per_shard_[i].load(std::memory_order_relaxed);
  }
  out << "], \"writes_per_shard\": [";
  for (size_t i = 0; i < writes.size(); ++i) {
    if (i > 0) out << ", ";
    out << writes[i];
  }
  char share[32];
  std::snprintf(share, sizeof(share), "%.4f",
                total_writes == 0
                    ? 0.0
                    : static_cast<double>(hottest_writes) /
                          static_cast<double>(total_writes));
  out << "], \"hottest_chunk_writes\": " << hottest_writes
      << ", \"hottest_chunk_write_share\": " << share << "}";
  return out.str();
}

double Cluster::EstimateFraction(const std::string& path, int64_t lo,
                                 int64_t hi) const {
  const std::shared_lock<std::shared_mutex> topo(topology_mu_);
  double in_range = 0.0;
  double total = 0.0;
  bool any = false;
  for (const auto& shard : shards_) {
    const query::stats::ShardStatistics& stats = shard->statistics();
    const uint64_t docs = stats.total_docs();
    if (docs == 0) continue;
    // Unbuilt or drifted histograms still answer (Observe keeps feeding
    // them), but their answers shouldn't steer anything: skip until the
    // shard's next rebuild.
    if (!stats.ReliableForEstimation()) continue;
    const double est = stats.EstimateRange(path, lo, hi);
    if (est < 0.0) continue;  // shard has no histogram for the path
    any = true;
    in_range += est;
    total += static_cast<double>(docs);
  }
  if (!any || total <= 0.0) return -1.0;
  return std::min(1.0, in_range / total);
}

uint64_t Cluster::total_documents() const {
  // Every shard-data writer holds topology_mu_ exclusive, so a shared hold
  // makes the per-shard record counts safe to read.
  const std::shared_lock<std::shared_mutex> topo(topology_mu_);
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->num_documents();
  return total;
}

storage::CollectionStats Cluster::ComputeDataStats() const {
  const std::shared_lock<std::shared_mutex> topo(topology_mu_);
  storage::CollectionStats total;
  for (const auto& shard : shards_) {
    const storage::CollectionStats s = shard->collection().ComputeStats();
    total.num_documents += s.num_documents;
    total.logical_bytes += s.logical_bytes;
    total.compressed_bytes += s.compressed_bytes;
  }
  return total;
}

std::map<std::string, uint64_t> Cluster::ComputeIndexSizes() const {
  const std::shared_lock<std::shared_mutex> topo(topology_mu_);
  std::map<std::string, uint64_t> sizes;
  for (const auto& shard : shards_) {
    for (const auto& idx : shard->catalog().indexes()) {
      sizes[idx->descriptor().name()] +=
          idx->btree().SizeWithPrefixCompression();
    }
  }
  return sizes;
}

}  // namespace stix::cluster
