#ifndef STIX_CLUSTER_ZONES_H_
#define STIX_CLUSTER_ZONES_H_

#include <string>
#include <vector>

#include "bson/value.h"
#include "cluster/shard.h"

namespace stix::cluster {

/// A zone pins a shard-key range [min, max) to one shard. Ranges may be
/// prefixes of a compound shard key (the paper zones `hil` on hilbertIndex
/// only, ignoring date) — KeyString prefix encodings compare correctly
/// against full keys.
struct ZoneRange {
  std::string min;  ///< Inclusive KeyString lower bound.
  std::string max;  ///< Exclusive KeyString upper bound.
  int shard_id = 0;
};

/// Zone of a key, or -1 when no zone covers it. `zones` must be sorted by
/// min and non-overlapping.
int ZoneForKey(const std::vector<ZoneRange>& zones, const std::string& key);

/// Validates ordering, non-overlap and coverage of [MinKey, MaxKey).
bool ZonesCoverWholeSpace(const std::vector<ZoneRange>& zones);

/// MongoDB's $bucketAuto over the values of one field across all shards:
/// boundaries of `num_buckets` equi-count buckets (deduplicated, so heavy
/// skew can yield fewer). Returns the n-1 internal boundary values; bucket i
/// spans [boundary[i-1], boundary[i]).
std::vector<bson::Value> BucketAutoBoundaries(
    const std::vector<std::unique_ptr<Shard>>& shards, const std::string& path,
    int num_buckets);

}  // namespace stix::cluster

#endif  // STIX_CLUSTER_ZONES_H_
