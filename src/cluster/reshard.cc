// Online resharding (MongoDB's reshardCollection, scaled to this process):
// re-keys a populated, live cluster onto a new shard-key pattern while
// queries, open cursors and writers keep running. The protocol, in phases:
//
//   0. validate — in-memory row clusters only, one reshard at a time, and
//      the new pattern must name a different supporting index;
//   1. prepare  — per shard (under its exclusive data lock): create the new
//      shard-key + secondary indexes, enrich every stored document for the
//      new layout (e.g. compute hilbertIndex) and backfill the new indexes;
//   2. plan     — under the exclusive topology lock: a sampled split vector
//      over every document's new-pattern key becomes the target chunk
//      table, round-robin across shards, with exact byte/doc/point
//      accounting;
//   3. flip     — in the same exclusive hold: routing switches — writes
//      land directly on their target-table owner (so the copier's source
//      set only shrinks), reads broadcast (a document may sit on either
//      side of the move), splits and the balancer suspend;
//   4. copy     — chunk by chunk, the two-phase migration dance: clone
//      out-of-place documents under shared source locks, then commit under
//      the migration latch (exclusive) + exclusive topology + every
//      shard's data lock, invalidating planner stats and plan caches on
//      each shard touched;
//   5. swap     — the target table/pattern/index become the live ones,
//      zones (keyed in the old shard-key space) clear, routing resumes.
//
// Failure discipline: before the flip every error unwinds cleanly (the
// enrichment and extra indexes are benign leftovers). After the flip the
// cluster stays in the resharding state on error — reads broadcast and
// writes route by the target table, so every operation remains correct,
// just untargeted; nothing ever reverts to the old table once a document
// has moved under the new one.

#include <algorithm>
#include <map>
#include <vector>

#include "cluster/cluster.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "keystring/keystring.h"
#include "storage/bucket.h"

namespace stix::cluster {

// Fires at the start of every per-chunk reshard move, before any document
// is cloned. A delay models a slow copy (stretching the window concurrent
// traffic observes); an error aborts the reshard mid-flight, which leaves
// the cluster permanently in its broadcast-routing state — correct, so
// tests can assert liveness under injected faults.
STIX_FAIL_POINT_DEFINE(reshardMoveChunk);

Status Cluster::Reshard(ShardKeyPattern new_pattern,
                        const std::vector<index::IndexDescriptor>&
                            new_secondary_indexes,
                        const ReshardEnrichFn& enrich,
                        const ReshardOptions& reshard_options) {
  STIX_METRIC_COUNTER(completed, "reshard.completed");

  const std::unique_lock<std::mutex> one(reshard_mu_, std::try_to_lock);
  if (!one.owns_lock()) {
    return Status::AlreadyExists("a reshard is already in progress");
  }
  if (!sharded_) {
    return Status::Internal("shard the collection before resharding");
  }
  if (new_pattern.empty()) {
    return Status::InvalidArgument("shard key must have at least one field");
  }
  if (new_pattern.strategy() == ShardingStrategy::kHashed) {
    return Status::NotSupported("resharding onto a hashed key");
  }
  if (durable()) {
    return Status::NotSupported("resharding a durable cluster");
  }
  const std::string new_index_name = IndexNameForPattern(new_pattern);
  if (new_index_name == shard_key_index_name_) {
    return Status::InvalidArgument(
        "new shard key is served by the current shard-key index");
  }

  // Suspend chunk movement for the whole operation: a balancer migration
  // racing phase 1 could carry a not-yet-enriched document onto an
  // already-prepared shard, and it would never be enriched.
  {
    const std::unique_lock<std::shared_mutex> topo(topology_mu_);
    reshard_preparing_ = true;
    // From here on every Insert enriches under its own exclusive topology
    // hold; writes already past routing completed before this hold began,
    // so the sweep below sees them. Stays installed after the swap.
    reshard_enrich_ = enrich;
  }
  const auto unwind = [this](Status s) {
    const std::unique_lock<std::shared_mutex> topo(topology_mu_);
    reshard_preparing_ = false;
    // Pre-flip failure: the old layout stays; stop decorating new writes
    // with fields no live approach asked for.
    reshard_enrich_ = nullptr;
    return s;
  };

  // Phase 1: enrichment + index builds, shard by shard.
  if (Status s = ReshardPrepareShards(new_pattern, new_index_name,
                                      new_secondary_indexes, enrich);
      !s.ok()) {
    return unwind(s);
  }

  // Phases 2 + 3 under one exclusive topology hold, so the table's exact
  // accounting cannot be invalidated by a write that the flipped routing
  // would miss. This is the reshard's stop-the-world moment: one scan of
  // the data, no document movement.
  {
    const std::unique_lock<std::shared_mutex> topo(topology_mu_);
    Result<std::unique_ptr<ChunkManager>> table =
        ReshardBuildChunkTable(new_pattern, reshard_options);
    if (!table.ok()) {
      reshard_preparing_ = false;
      reshard_enrich_ = nullptr;  // pre-flip failure, as in unwind()
      return table.status();
    }
    reshard_chunks_ = std::move(*table);
    reshard_pattern_ = std::move(new_pattern);
    reshard_index_name_ = new_index_name;
    resharding_in_progress_ = true;
    reshard_preparing_ = false;
  }

  // Phase 4: chunk-by-chunk copy. The transitional table never splits, so
  // indices are stable across the loop.
  size_t num_target_chunks = 0;
  {
    const std::shared_lock<std::shared_mutex> topo(topology_mu_);
    num_target_chunks = reshard_chunks_->num_chunks();
  }
  for (size_t i = 0; i < num_target_chunks; ++i) {
    if (Status s = ReshardMoveChunk(i); !s.ok()) return s;
  }

  // Phase 5: the metadata swap.
  {
    const std::unique_lock<std::shared_mutex> topo(topology_mu_);
    pattern_ = std::move(reshard_pattern_);
    chunks_ = std::move(reshard_chunks_);
    shard_key_index_name_ = std::move(reshard_index_name_);
    zones_.clear();
    resharding_in_progress_ = false;
    if (Status s = LogTopology(); !s.ok()) return s;
  }
  completed.Increment();
  return Status::OK();
}

Status Cluster::ReshardPrepareShards(
    const ShardKeyPattern& new_pattern, const std::string& new_index_name,
    const std::vector<index::IndexDescriptor>& new_secondary_indexes,
    const ReshardEnrichFn& enrich) {
  for (auto& shard : shards_) {
    // One exclusive hold per shard: index creation, enrichment and backfill
    // are atomic against that shard's readers and writers, so a concurrent
    // query sees either no new index or a fully built one. Other shards
    // stay fully available meanwhile.
    const std::unique_lock<std::shared_mutex> data(shard->data_mutex());
    index::IndexCatalog& catalog = shard->catalog();

    std::vector<index::Index*> fresh;  // created here → need backfill
    if (catalog.Get(new_index_name) == nullptr) {
      std::vector<index::IndexField> fields;
      for (const std::string& path : new_pattern.paths()) {
        fields.push_back({path, index::IndexFieldKind::kAscending});
      }
      if (Status s = catalog.CreateIndex(
              index::IndexDescriptor(new_index_name, std::move(fields)));
          !s.ok()) {
        return s;
      }
      fresh.push_back(catalog.Get(new_index_name));
    }
    for (const index::IndexDescriptor& desc : new_secondary_indexes) {
      if (catalog.Get(desc.name()) != nullptr) continue;
      if (Status s = catalog.CreateIndex(index::IndexDescriptor(
              desc.name(), desc.fields(), desc.geohash_bits()));
          !s.ok()) {
        return s;
      }
      fresh.push_back(catalog.Get(desc.name()));
    }

    storage::RecordStore& records = shard->collection().records();
    std::vector<storage::RecordId> rids;
    rids.reserve(records.num_records());
    records.ForEach([&rids](storage::RecordId rid, const bson::Document&) {
      rids.push_back(rid);
    });
    for (const storage::RecordId rid : rids) {
      const bson::Document* stored = records.Get(rid);
      if (stored == nullptr) continue;
      bool modified = false;
      bson::Document copy = *stored;
      if (enrich != nullptr) {
        Result<bool> r = enrich(&copy);
        if (!r.ok()) return r.status();
        modified = *r;
      }
      if (!modified) {
        for (index::Index* idx : fresh) {
          if (Status s = idx->InsertDocument(*stored, rid); !s.ok()) return s;
        }
        continue;
      }
      // The document changed shape: rewrite it in place (same RecordId — a
      // tombstone-then-RestoreAt round trip), pulling it out of the
      // pre-existing indexes first and re-indexing everything after.
      for (const auto& idx : catalog.indexes()) {
        index::Index* mut = catalog.Get(idx->descriptor().name());
        const bool is_fresh =
            std::find(fresh.begin(), fresh.end(), mut) != fresh.end();
        if (is_fresh) continue;
        if (Status s = mut->RemoveDocument(*stored, rid); !s.ok()) return s;
      }
      records.Remove(rid);
      if (Status s = records.RestoreAt(rid, std::move(copy)); !s.ok()) {
        return s;
      }
      const bson::Document* rewritten = records.Get(rid);
      if (Status s = catalog.OnInsert(*rewritten, rid); !s.ok()) return s;
    }
    // The shard's value distribution changed shape (new fields, new
    // indexes): stale-mark its statistics and drop cached plan choices.
    shard->OnDataDistributionChanged();
  }
  return Status::OK();
}

Result<std::unique_ptr<ChunkManager>> Cluster::ReshardBuildChunkTable(
    const ShardKeyPattern& new_pattern, const ReshardOptions& opts) const {
  // Caller holds topology_mu_ exclusive: no writer can run, so one pass
  // over every shard is a consistent snapshot.
  struct Keyed {
    std::string key;
    uint64_t bytes;
    uint64_t points;
  };
  std::vector<Keyed> all;
  uint64_t total_bytes = 0;
  for (const auto& shard : shards_) {
    const std::shared_lock<std::shared_mutex> data(shard->data_mutex());
    shard->collection().records().ForEach(
        [&](storage::RecordId, const bson::Document& doc) {
          uint64_t points = 1;
          if (storage::IsBucketDocument(doc)) {
            if (const Result<storage::BucketMeta> meta =
                    storage::ParseBucketMeta(doc);
                meta.ok()) {
              points = meta->num_points;
            }
          }
          const uint64_t bytes = doc.ApproxBsonSize();
          all.push_back({new_pattern.KeyOf(doc), bytes, points});
          total_bytes += bytes;
        });
  }
  std::sort(all.begin(), all.end(),
            [](const Keyed& a, const Keyed& b) { return a.key < b.key; });

  size_t target_chunks = opts.target_chunks;
  if (target_chunks == 0) {
    // Same density the split threshold would converge to, but computed in
    // one pass — and never fewer chunks than shards, or the round-robin
    // assignment would leave shards empty.
    target_chunks = static_cast<size_t>(
        total_bytes / std::max<uint64_t>(options_.chunk_max_bytes, 1) + 1);
    target_chunks =
        std::max(target_chunks, static_cast<size_t>(options_.num_shards));
  }

  // MongoDB's resharding samples the key space rather than sorting every
  // key into the split decision; the stride keeps that shape (accounting
  // below stays exact — only the boundary choice is sampled).
  const size_t stride = std::max<size_t>(opts.sample_stride, 1);
  std::vector<std::string> sampled;
  sampled.reserve(all.size() / stride + 1);
  for (size_t i = 0; i < all.size(); i += stride) {
    sampled.push_back(all[i].key);
  }
  const std::vector<std::string> bounds = SplitVector(sampled, target_chunks);

  // Materialize the table: boundaries MinKey, bounds..., MaxKey, owners
  // round-robin, accounting by walking the sorted keys once.
  std::vector<Chunk> table;
  table.reserve(bounds.size() + 1);
  std::string prev = keystring::MinKey();
  for (size_t i = 0; i <= bounds.size(); ++i) {
    Chunk c;
    c.min = prev;
    c.max = i < bounds.size() ? bounds[i] : keystring::MaxKey();
    c.shard_id = static_cast<int>(i % static_cast<size_t>(options_.num_shards));
    prev = c.max;
    table.push_back(std::move(c));
  }
  size_t ci = 0;
  for (const Keyed& k : all) {
    while (ci + 1 < table.size() && k.key >= table[ci].max) ++ci;
    table[ci].bytes += k.bytes;
    table[ci].docs += 1;
    table[ci].points += k.points;
  }
  return ChunkManager::FromChunks(std::move(table));
}

std::unique_lock<std::shared_mutex> Cluster::ReshardLatchExclusive() {
  // Raise the gate first: new cursors pause (bounded) in OpenCursor, the
  // existing shared holders drain, and the blocking exclusive acquisition
  // below cannot be starved by a reader-preferring rwlock. Blocking — not
  // MoveChunk's try_lock — is safe here because Reshard() runs on its own
  // thread that holds no cursor, and required because under open-loop
  // traffic a try_lock would starve forever.
  reshard_commit_pending_.store(true, std::memory_order_release);
  std::unique_lock<std::shared_mutex> latch(migration_commit_latch_);
  reshard_commit_pending_.store(false, std::memory_order_release);
  {
    // Empty critical section pairs with the gate's predicate check, so no
    // waiter can check the flag and then sleep through the notify.
    const std::lock_guard<std::mutex> gate(reshard_gate_mu_);
  }
  reshard_gate_cv_.notify_all();
  return latch;
}

Status Cluster::ReshardMoveChunk(size_t chunk_index) {
  STIX_METRIC_COUNTER(chunks_migrated, "reshard.chunks_migrated");
  STIX_METRIC_COUNTER(docs_moved, "reshard.docs_moved");

  std::string min, max;
  int owner = -1;
  {
    const std::shared_lock<std::shared_mutex> topo(topology_mu_);
    const Chunk& c = reshard_chunks_->chunk(chunk_index);
    min = c.min;
    max = c.max;
    owner = c.shard_id;
  }
  if (Status s = CheckFailPoint(reshardMoveChunk); !s.ok()) return s;
  Shard& dest = *shards_[static_cast<size_t>(owner)];

  // Copy phase: clone every out-of-place document in the chunk's range
  // under its shard's shared lock — readers stream on, writers to other
  // key ranges proceed. Post-flip inserts land on the owner directly, so
  // this source set only ever shrinks (deletes); there are no stragglers
  // to chase.
  std::vector<std::map<storage::RecordId, bson::Document>> clones(
      shards_.size());
  bool any = false;
  for (const auto& shard : shards_) {
    if (shard->id() == owner) continue;
    const std::shared_lock<std::shared_mutex> data(shard->data_mutex());
    const index::Index* idx = shard->catalog().Get(reshard_index_name_);
    if (idx == nullptr) {
      return Status::Internal("reshard index missing on shard");
    }
    auto& mine = clones[static_cast<size_t>(shard->id())];
    for (storage::BTree::Cursor c = idx->btree().SeekGE(min);
         c.Valid() && c.key() < max; c.Next()) {
      const bson::Document* doc = shard->collection().records().Get(c.rid());
      if (doc != nullptr) {
        mine.emplace(c.rid(), *doc);
        any = true;
      }
    }
  }
  if (!any) {
    chunks_migrated.Increment();
    return Status::OK();
  }

  // Commit phase: latch exclusive (via the gate), topology exclusive, every
  // shard's data lock in id order — documents for this chunk may sit on any
  // shard, unlike a balancer move's single donor.
  const std::unique_lock<std::shared_mutex> commit = ReshardLatchExclusive();
  const std::unique_lock<std::shared_mutex> topo(topology_mu_);
  std::vector<std::unique_lock<std::shared_mutex>> data_locks;
  data_locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    data_locks.emplace_back(shard->data_mutex());
  }

  uint64_t moved = 0;
  for (const auto& shard : shards_) {
    if (shard->id() == owner) continue;
    const index::Index* idx = shard->catalog().Get(reshard_index_name_);
    if (idx == nullptr) {
      return Status::Internal("reshard index missing on shard");
    }
    // Re-scan inside the critical section: a clone whose document was
    // deleted mid-copy silently drops out here.
    std::vector<storage::RecordId> rids;
    for (storage::BTree::Cursor c = idx->btree().SeekGE(min);
         c.Valid() && c.key() < max; c.Next()) {
      rids.push_back(c.rid());
    }
    auto& mine = clones[static_cast<size_t>(shard->id())];
    for (const storage::RecordId rid : rids) {
      bson::Document copy;
      if (const auto it = mine.find(rid); it != mine.end()) {
        copy = std::move(it->second);
      } else {
        const bson::Document* doc = shard->collection().records().Get(rid);
        if (doc == nullptr) continue;
        copy = *doc;
      }
      Result<storage::RecordId> inserted = dest.InsertLocked(std::move(copy));
      if (!inserted.ok()) return inserted.status();
      if (Status s = shard->RemoveLocked(rid); !s.ok()) return s;
      ++moved;
    }
    if (!rids.empty()) shard->OnDataDistributionChanged();
  }
  if (moved > 0) {
    // Planner stats and the plan cache invalidate per migrated chunk — the
    // recipient's distribution moved under any cached choice.
    dest.OnDataDistributionChanged();
    docs_moved.Increment(moved);
  }
  chunks_migrated.Increment();
  return Status::OK();
}

}  // namespace stix::cluster
