#include "cluster/chunk.h"

#include <algorithm>

#include "keystring/keystring.h"

namespace stix::cluster {
namespace {

// 64-bit mix for hashed sharding (splitmix64 finalizer).
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashBytes(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a then mixed
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace

std::string ShardKeyPattern::KeyOf(const bson::Document& doc) const {
  keystring::Builder b;
  if (strategy_ == ShardingStrategy::kHashed) {
    const bson::Value* v = doc.GetPath(paths_.front());
    const std::string field_key =
        keystring::Encode(v != nullptr ? *v : bson::Value::Null());
    b.AppendValue(
        bson::Value::Int64(static_cast<int64_t>(HashBytes(field_key))));
    return std::move(b).Build();
  }
  for (const std::string& path : paths_) {
    const bson::Value* v = doc.GetPath(path);
    b.AppendValue(v != nullptr ? *v : bson::Value::Null());
  }
  return std::move(b).Build();
}

std::string ShardKeyPattern::DebugString() const {
  std::string out = "{";
  for (size_t i = 0; i < paths_.size(); ++i) {
    if (i > 0) out += ", ";
    out += paths_[i];
    out += (strategy_ == ShardingStrategy::kHashed && i == 0) ? ": 'hashed'"
                                                              : ": 1";
  }
  return out + "}";
}

std::vector<std::string> SplitVector(const std::vector<std::string>& keys,
                                     size_t parts) {
  std::vector<std::string> bounds;
  if (parts < 2 || keys.size() < 2) return bounds;
  if (parts > keys.size()) parts = keys.size();
  for (size_t i = 1; i < parts; ++i) {
    const size_t at = i * keys.size() / parts;
    const std::string& prev = bounds.empty() ? keys.front() : bounds.back();
    if (keys[at] > prev) {
      bounds.push_back(keys[at]);
      continue;
    }
    // The quantile landed inside a run of duplicates; a chunk boundary must
    // strictly increase, so advance to the next distinct key.
    const auto it = std::upper_bound(keys.begin() + at, keys.end(), prev);
    if (it == keys.end()) break;
    bounds.push_back(*it);
  }
  return bounds;
}

Result<std::unique_ptr<ChunkManager>> ChunkManager::FromChunks(
    std::vector<Chunk> chunk_table) {
  std::sort(chunk_table.begin(), chunk_table.end(),
            [](const Chunk& a, const Chunk& b) { return a.min < b.min; });
  std::unique_ptr<ChunkManager> manager(new ChunkManager());
  manager->chunks_ = std::move(chunk_table);
  if (!manager->CheckInvariants()) {
    return Status::Corruption("chunk table violates invariants");
  }
  return manager;
}

ChunkManager::ChunkManager(int initial_shard) {
  Chunk all;
  all.min = keystring::MinKey();
  all.max = keystring::MaxKey();
  all.shard_id = initial_shard;
  chunks_.push_back(std::move(all));
}

size_t ChunkManager::FindChunkIndex(const std::string& key) const {
  // Last chunk with min <= key.
  const auto it = std::upper_bound(
      chunks_.begin(), chunks_.end(), key,
      [](const std::string& k, const Chunk& c) { return k < c.min; });
  return static_cast<size_t>(it - chunks_.begin()) - 1;
}

Status ChunkManager::Split(size_t i, const std::string& split_key) {
  Chunk& left = chunks_[i];
  if (split_key <= left.min || split_key >= left.max) {
    return Status::InvalidArgument("split key outside chunk range");
  }
  Chunk right;
  right.min = split_key;
  right.max = left.max;
  right.shard_id = left.shard_id;
  right.bytes = left.bytes / 2;
  right.docs = left.docs / 2;
  right.points = left.points / 2;
  right.writes = left.writes / 2;
  left.max = split_key;
  left.bytes -= right.bytes;
  left.docs -= right.docs;
  left.points -= right.points;
  left.writes -= right.writes;
  chunks_.insert(chunks_.begin() + i + 1, std::move(right));
  return Status::OK();
}

Status ChunkManager::MultiSplit(size_t i,
                                const std::vector<std::string>& bounds) {
  if (bounds.empty()) return Status::OK();
  const Chunk& whole = chunks_[i];
  for (size_t k = 0; k < bounds.size(); ++k) {
    if (bounds[k] <= whole.min || bounds[k] >= whole.max) {
      return Status::InvalidArgument("split boundary outside chunk range");
    }
    if (k > 0 && bounds[k] <= bounds[k - 1]) {
      return Status::InvalidArgument("split boundaries not ascending");
    }
  }
  const size_t parts = bounds.size() + 1;
  std::vector<Chunk> replacement(parts, whole);
  for (size_t k = 0; k < parts; ++k) {
    Chunk& part = replacement[k];
    if (k > 0) part.min = bounds[k - 1];
    if (k + 1 < parts) part.max = bounds[k];
    // Even division, remainder on the first part, so the totals are exact.
    part.bytes = whole.bytes / parts + (k == 0 ? whole.bytes % parts : 0);
    part.docs = whole.docs / parts + (k == 0 ? whole.docs % parts : 0);
    part.points = whole.points / parts + (k == 0 ? whole.points % parts : 0);
    part.writes = whole.writes / parts + (k == 0 ? whole.writes % parts : 0);
  }
  chunks_.erase(chunks_.begin() + i);
  chunks_.insert(chunks_.begin() + i, replacement.begin(), replacement.end());
  return Status::OK();
}

std::vector<size_t> ChunkManager::ChunksIntersecting(
    const std::string& start, const std::string& end) const {
  std::vector<size_t> out;
  // First chunk whose max > start.
  size_t i = FindChunkIndex(start);
  // FindChunkIndex returns the chunk with min <= start; it intersects iff
  // max > start, which holds by construction (max > min, start >= min).
  for (; i < chunks_.size() && chunks_[i].min <= end; ++i) {
    out.push_back(i);
  }
  return out;
}

std::vector<int> ChunkManager::CountsPerShard(int num_shards) const {
  std::vector<int> counts(num_shards, 0);
  for (const Chunk& c : chunks_) {
    if (c.shard_id >= 0 && c.shard_id < num_shards) ++counts[c.shard_id];
  }
  return counts;
}

bool ChunkManager::CheckInvariants() const {
  if (chunks_.empty()) return false;
  if (chunks_.front().min != keystring::MinKey()) return false;
  if (chunks_.back().max != keystring::MaxKey()) return false;
  for (size_t i = 0; i < chunks_.size(); ++i) {
    if (chunks_[i].min >= chunks_[i].max) return false;
    if (i > 0 && chunks_[i - 1].max != chunks_[i].min) return false;
  }
  return true;
}

}  // namespace stix::cluster
