#include "cluster/snapshot.h"

#include <cstring>
#include <fstream>

#include "bson/codec.h"
#include "common/lz.h"

namespace stix::cluster {
namespace {

constexpr char kMagic[8] = {'S', 'T', 'I', 'X', 'S', 'N', 'P', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kBlockTarget = 256 * 1024;

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void PutU32(uint32_t v, std::ostream* out) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out->write(buf, 4);
}

void PutU64(uint64_t v, std::ostream* out) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out->write(buf, 8);
}

bool GetU32(std::istream* in, uint32_t* v) {
  char buf[4];
  if (!in->read(buf, 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>(buf[i])) << (8 * i);
  }
  return true;
}

bool GetU64(std::istream* in, uint64_t* v) {
  char buf[8];
  if (!in->read(buf, 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>(buf[i])) << (8 * i);
  }
  return true;
}

// ---- metadata <-> BSON ----

bson::Document ChunkToDoc(const Chunk& c) {
  return bson::DocBuilder()
      .Field("min", c.min)
      .Field("max", c.max)
      .Field("shard", static_cast<int32_t>(c.shard_id))
      .Field("bytes", static_cast<int64_t>(c.bytes))
      .Field("docs", static_cast<int64_t>(c.docs))
      .Field("points", static_cast<int64_t>(c.points))
      .Field("jumbo", c.jumbo)
      .Build();
}

Result<Chunk> ChunkFromDoc(const bson::Document& doc) {
  const bson::Value* min = doc.Get("min");
  const bson::Value* max = doc.Get("max");
  const bson::Value* shard = doc.Get("shard");
  if (min == nullptr || max == nullptr || shard == nullptr) {
    return Status::Corruption("chunk metadata incomplete");
  }
  Chunk c;
  c.min = min->AsString();
  c.max = max->AsString();
  c.shard_id = shard->AsInt32();
  if (const bson::Value* v = doc.Get("bytes")) {
    c.bytes = static_cast<uint64_t>(v->AsInt64());
  }
  if (const bson::Value* v = doc.Get("docs")) {
    c.docs = static_cast<uint64_t>(v->AsInt64());
  }
  if (const bson::Value* v = doc.Get("points")) {
    c.points = static_cast<uint64_t>(v->AsInt64());
  } else {
    c.points = c.docs;  // pre-bucketing snapshots: one point per document
  }
  if (const bson::Value* v = doc.Get("jumbo")) c.jumbo = v->AsBool();
  return c;
}

}  // namespace

bson::Document ClusterMetadataDoc(const Cluster& cluster) {
  bson::Document meta;
  meta.Append("numShards", bson::Value::Int32(cluster.num_shards()));

  bson::Array key_paths;
  for (const std::string& p : cluster.shard_key().paths()) {
    key_paths.push_back(bson::Value::String(p));
  }
  meta.Append("shardKeyPaths", bson::Value::MakeArray(std::move(key_paths)));
  meta.Append("hashed",
              bson::Value::Bool(cluster.shard_key().strategy() ==
                                ShardingStrategy::kHashed));

  bson::Array chunks;
  for (const Chunk& c : cluster.chunks().chunks()) {
    chunks.push_back(bson::Value::MakeDocument(ChunkToDoc(c)));
  }
  meta.Append("chunks", bson::Value::MakeArray(std::move(chunks)));

  bson::Array zones;
  for (const ZoneRange& z : cluster.zones()) {
    zones.push_back(bson::Value::MakeDocument(
        bson::DocBuilder()
            .Field("min", z.min)
            .Field("max", z.max)
            .Field("shard", static_cast<int32_t>(z.shard_id))
            .Build()));
  }
  meta.Append("zones", bson::Value::MakeArray(std::move(zones)));

  // Secondary indexes (shard 0 is authoritative; _id and shard-key indexes
  // are recreated implicitly on restore).
  bson::Array indexes;
  for (const auto& idx : cluster.shards()[0]->catalog().indexes()) {
    const index::IndexDescriptor& desc = idx->descriptor();
    if (desc.name() == "_id_" ||
        desc.name() == cluster.shard_key_index_name()) {
      continue;
    }
    bson::Array fields;
    for (const index::IndexField& f : desc.fields()) {
      fields.push_back(bson::Value::MakeDocument(
          bson::DocBuilder()
              .Field("path", f.path)
              .Field("geo", f.kind == index::IndexFieldKind::k2dsphere)
              .Build()));
    }
    indexes.push_back(bson::Value::MakeDocument(
        bson::DocBuilder()
            .Field("name", desc.name())
            .Field("fields", bson::Value::MakeArray(std::move(fields)))
            .Field("geohashBits", desc.geohash_bits())
            .Build()));
  }
  meta.Append("indexes", bson::Value::MakeArray(std::move(indexes)));
  return meta;
}

Result<ClusterMeta> ParseClusterMetadata(const bson::Document& meta) {
  const bson::Value* num_shards = meta.Get("numShards");
  const bson::Value* key_paths = meta.Get("shardKeyPaths");
  const bson::Value* hashed = meta.Get("hashed");
  const bson::Value* chunks_v = meta.Get("chunks");
  const bson::Value* zones_v = meta.Get("zones");
  const bson::Value* indexes_v = meta.Get("indexes");
  if (num_shards == nullptr || key_paths == nullptr || hashed == nullptr ||
      chunks_v == nullptr || zones_v == nullptr || indexes_v == nullptr) {
    return Status::Corruption("cluster metadata incomplete");
  }

  ClusterMeta out;
  out.num_shards = num_shards->AsInt32();

  std::vector<std::string> paths;
  for (const bson::Value& p : key_paths->AsArray()) {
    paths.push_back(p.AsString());
  }
  out.pattern = ShardKeyPattern(std::move(paths),
                                hashed->AsBool() ? ShardingStrategy::kHashed
                                                 : ShardingStrategy::kRange);

  for (const bson::Value& c : chunks_v->AsArray()) {
    Result<Chunk> chunk = ChunkFromDoc(c.AsDocument());
    if (!chunk.ok()) return chunk.status();
    out.chunks.push_back(std::move(*chunk));
  }
  for (const bson::Value& z : zones_v->AsArray()) {
    const bson::Document& zd = z.AsDocument();
    out.zones.push_back(ZoneRange{zd.Get("min")->AsString(),
                                  zd.Get("max")->AsString(),
                                  zd.Get("shard")->AsInt32()});
  }
  for (const bson::Value& i : indexes_v->AsArray()) {
    const bson::Document& id = i.AsDocument();
    std::vector<index::IndexField> fields;
    for (const bson::Value& f : id.Get("fields")->AsArray()) {
      const bson::Document& fd = f.AsDocument();
      fields.push_back(index::IndexField{
          fd.Get("path")->AsString(),
          fd.Get("geo")->AsBool() ? index::IndexFieldKind::k2dsphere
                                  : index::IndexFieldKind::kAscending});
    }
    out.secondary_indexes.emplace_back(id.Get("name")->AsString(),
                                       std::move(fields),
                                       id.Get("geohashBits")->AsInt32());
  }
  return out;
}

namespace {

void WriteBlock(const std::string& raw, std::ostream* out) {
  const std::string compressed = LzCompress(raw);
  PutU32(static_cast<uint32_t>(raw.size()), out);
  PutU32(static_cast<uint32_t>(compressed.size()), out);
  PutU64(Fnv1a(compressed), out);
  out->write(compressed.data(),
             static_cast<std::streamsize>(compressed.size()));
}

}  // namespace

Status SaveSnapshot(const Cluster& cluster, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::NotFound("cannot create snapshot file: " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  PutU32(kVersion, &out);

  const std::string meta = bson::EncodeBson(ClusterMetadataDoc(cluster));
  PutU32(static_cast<uint32_t>(meta.size()), &out);
  PutU64(Fnv1a(meta), &out);
  out.write(meta.data(), static_cast<std::streamsize>(meta.size()));

  for (const auto& shard : cluster.shards()) {
    PutU32(static_cast<uint32_t>(shard->id()), &out);
    PutU64(shard->num_documents(), &out);
    std::string block;
    block.reserve(kBlockTarget + 4096);
    shard->collection().records().ForEach(
        [&](storage::RecordId, const bson::Document& doc) {
          block += bson::EncodeBson(doc);
          if (block.size() >= kBlockTarget) {
            WriteBlock(block, &out);
            block.clear();
          }
        });
    if (!block.empty()) WriteBlock(block, &out);
    PutU32(0, &out);  // raw_len 0: end of shard
  }
  out.flush();
  if (!out.good()) {
    return Status::Internal("snapshot write failed: " + path);
  }
  return Status::OK();
}

Result<std::unique_ptr<Cluster>> LoadSnapshot(const std::string& path,
                                              const ClusterOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open snapshot file: " + path);
  }
  char magic[8];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a STIX snapshot: " + path);
  }
  uint32_t version, meta_len;
  if (!GetU32(&in, &version) || version != kVersion) {
    return Status::Corruption("unsupported snapshot version");
  }
  if (!GetU32(&in, &meta_len)) return Status::Corruption("truncated header");
  uint64_t meta_checksum;
  if (!GetU64(&in, &meta_checksum)) {
    return Status::Corruption("truncated header");
  }
  std::string meta_bytes(meta_len, '\0');
  if (!in.read(meta_bytes.data(), meta_len)) {
    return Status::Corruption("truncated metadata");
  }
  if (Fnv1a(meta_bytes) != meta_checksum) {
    return Status::Corruption("snapshot metadata checksum mismatch");
  }
  const Result<bson::Document> meta_doc = bson::DecodeBson(meta_bytes);
  if (!meta_doc.ok()) return meta_doc.status();
  Result<ClusterMeta> meta = ParseClusterMetadata(*meta_doc);
  if (!meta.ok()) return meta.status();

  ClusterOptions restored_options = options;
  restored_options.num_shards = meta->num_shards;

  auto cluster = std::make_unique<Cluster>(restored_options);
  Status s = cluster->RestoreShardingState(meta->pattern,
                                           std::move(meta->chunks),
                                           std::move(meta->zones),
                                           meta->secondary_indexes);
  if (!s.ok()) return s;

  // Per-shard document streams.
  for (int expected = 0; expected < restored_options.num_shards; ++expected) {
    uint32_t shard_id;
    uint64_t doc_count;
    if (!GetU32(&in, &shard_id) || !GetU64(&in, &doc_count)) {
      return Status::Corruption("truncated shard header");
    }
    uint64_t restored = 0;
    for (;;) {
      uint32_t raw_len, comp_len;
      if (!GetU32(&in, &raw_len)) {
        return Status::Corruption("truncated block header");
      }
      if (raw_len == 0) break;
      uint64_t checksum;
      if (!GetU32(&in, &comp_len) || !GetU64(&in, &checksum)) {
        return Status::Corruption("truncated block header");
      }
      std::string compressed(comp_len, '\0');
      if (!in.read(compressed.data(), comp_len)) {
        return Status::Corruption("truncated block body");
      }
      if (Fnv1a(compressed) != checksum) {
        return Status::Corruption("snapshot block checksum mismatch");
      }
      Result<std::string> raw = LzDecompress(compressed);
      if (!raw.ok()) return raw.status();
      if (raw->size() != raw_len) {
        return Status::Corruption("snapshot block length mismatch");
      }
      // The block is a concatenation of BSON documents; each carries its
      // own length prefix.
      size_t offset = 0;
      while (offset + 4 <= raw->size()) {
        const uint32_t doc_len =
            static_cast<uint32_t>(static_cast<uint8_t>((*raw)[offset])) |
            static_cast<uint32_t>(static_cast<uint8_t>((*raw)[offset + 1]))
                << 8 |
            static_cast<uint32_t>(static_cast<uint8_t>((*raw)[offset + 2]))
                << 16 |
            static_cast<uint32_t>(static_cast<uint8_t>((*raw)[offset + 3]))
                << 24;
        if (doc_len < 5 || offset + doc_len > raw->size()) {
          return Status::Corruption("malformed document in snapshot block");
        }
        Result<bson::Document> doc = bson::DecodeBson(
            std::string_view(raw->data() + offset, doc_len));
        if (!doc.ok()) return doc.status();
        s = cluster->RestoreDocumentToShard(static_cast<int>(shard_id),
                                            std::move(*doc));
        if (!s.ok()) return s;
        offset += doc_len;
        ++restored;
      }
      if (offset != raw->size()) {
        return Status::Corruption("trailing bytes in snapshot block");
      }
    }
    if (restored != doc_count) {
      return Status::Corruption("shard document count mismatch");
    }
  }
  return cluster;
}

}  // namespace stix::cluster
