#ifndef STIX_CLUSTER_SHARD_H_
#define STIX_CLUSTER_SHARD_H_

#include <memory>
#include <shared_mutex>
#include <string>

#include "common/stopwatch.h"
#include "index/index_catalog.h"
#include "query/executor.h"
#include "query/explain.h"
#include "query/plan_cache.h"
#include "query/stats/shard_stats.h"
#include "storage/checkpoint.h"
#include "storage/collection.h"
#include "storage/wal.h"

namespace stix::cluster {

class Shard;

/// One shard's slice of an explain: the winning plan's executed stage tree,
/// the rejected candidates' partial trees, and the executor-level framing
/// (plan-cache provenance, totals). The winning tree's per-stage keys/docs
/// sum exactly to `stats` — the invariant explain golden tests and the fuzz
/// harness check.
struct ShardExplain {
  int shard_id = 0;
  std::string winning_index;
  int num_candidates = 0;
  bool from_plan_cache = false;
  bool replanned = false;
  /// How the winner was selected: "single", "cache", "cost" or "race"
  /// (PlannedByName).
  std::string planned_by;
  /// The cost model's whole-plan prediction for the winner, when one was
  /// computed (negative otherwise) — the executionStats counterpart of the
  /// per-stage estimatedKeysExamined/estimatedDocsExamined annotations.
  double estimated_keys = -1.0;
  double estimated_docs = -1.0;
  query::ExecStats stats;
  double exec_millis = 0.0;
  query::ExplainNode winning_plan;
  std::vector<query::ExplainNode> rejected_plans;

  /// JSON object (stage trees serialized at the given verbosity; rejected
  /// plans only at kAllPlansExecution).
  std::string ToJson(query::ExplainVerbosity v) const;
};

/// A resumable cursor over one shard's results — the shard half of the
/// getMore protocol. Each GetMore() pulls up to a batch of documents from
/// the shard's PlanExecutor, timing only the work actually performed, so a
/// stream abandoned early charges the shard only for what it produced.
///
/// Concurrency: every GetMore holds the shard's lock shared for the
/// duration of the pull. Under the default yield policy the executor
/// detaches from storage before the lock drops (SaveState) and each batch
/// is materialized into cursor-owned documents, so the cursor survives
/// concurrent inserts and chunk migrations between getMores. Under
/// YieldPolicy::kAbortOnMutation the legacy zero-copy contract applies:
/// batches borrow from the shard's RecordStore and must be consumed before
/// the collection next mutates (the batch carries a borrow guard).
///
/// Every open cursor is tracked in the "cluster.open_cursors" gauge until
/// Close() (called by the owning ClusterCursor on exhaustion, error and
/// kill, and by the destructor as a backstop).
class ShardCursor {
 public:
  /// One getMore's worth of results.
  struct Batch {
    /// Result documents. Under kYieldAndRestore these point into `owned`
    /// (stable across Batch moves); under kAbortOnMutation they borrow from
    /// the shard's RecordStore.
    std::vector<const bson::Document*> docs;
    std::vector<storage::RecordId> rids;
    /// Backing storage for `docs` under the yield policy; empty in legacy
    /// mode.
    std::vector<bson::Document> owned;
    /// True when the stream ended at or before the end of this batch.
    bool exhausted = false;
    /// Non-OK when the shard died mid-stream (e.g. an injected fault): the
    /// batch carries no documents and the cursor is permanently exhausted.
    Status error;

    /// Borrow guard, as on query::ExecutionResult: valid only while the
    /// source store's generation is unchanged. Owned batches have no borrow
    /// source and are always valid.
    const storage::RecordStore* borrow_source = nullptr;
    uint64_t borrow_generation = 0;
    bool BorrowsValid() const {
      return borrow_source == nullptr ||
             borrow_source->generation() == borrow_generation;
    }
    void CheckBorrows() const { assert(BorrowsValid()); }
  };

  ~ShardCursor() { Close(); }

  /// Pulls up to `batch_size` more documents (0 = run to exhaustion).
  Batch GetMore(size_t batch_size);

  /// Releases the cursor's claim on the shard: the stream is permanently
  /// exhausted and the open-cursor gauge is decremented (exactly once; Close
  /// is idempotent). The router calls this on every path that abandons the
  /// stream — exhaustion, a shard or merge fault, and Kill().
  void Close();

  bool exhausted() const { return done_; }
  int shard_id() const;

  /// Executor counters so far (final once exhausted).
  query::ExecStats stats() const { return exec_.CurrentStats(); }
  /// Explain slice of this cursor's execution so far (complete once
  /// exhausted). Stage timing is present when the executor options enabled
  /// it (ExecutorOptions::stage_timing).
  ShardExplain Explain() const;
  /// Shard-side execution time accumulated across GetMore calls.
  double exec_millis() const { return exec_millis_; }
  uint64_t n_returned() const { return exec_.n_returned(); }
  const std::string& winning_index() const { return exec_.winning_index(); }
  bool from_plan_cache() const { return exec_.from_plan_cache(); }
  bool replanned() const { return exec_.replanned(); }

 private:
  friend class Shard;
  ShardCursor(const Shard& shard, query::ExprPtr expr,
              const query::ExecutorOptions& options, uint64_t limit);

  const Shard& shard_;
  query::ExecutorOptions options_;
  query::PlanExecutor exec_;
  double exec_millis_ = 0.0;
  bool done_ = false;
  bool closed_ = false;
};

/// One MongoDB shard server: a shard-local collection plus its index
/// catalog. Queries run against it through the same executor a standalone
/// mongod would use; the router fans out and merges.
///
/// Concurrency: a reader–writer lock over the shard's data (collection +
/// indexes). Readers — OpenCursor/GetMore/Explain/RunQuery — hold it
/// shared; Insert and Remove (migration apply) hold it exclusive. Acquired
/// last in the cluster's lock order (migration latch < topology < shard
/// data) and never held across calls out of the shard. Contended
/// acquisitions feed "shard.lock_waits" / "shard.lock_wait_micros".
class Shard {
 public:
  explicit Shard(int id) : id_(id) {}

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  int id() const { return id_; }

  storage::Collection& collection() { return collection_; }
  const storage::Collection& collection() const { return collection_; }
  index::IndexCatalog& catalog() { return catalog_; }
  const index::IndexCatalog& catalog() const { return catalog_; }

  /// Stores a document and maintains every index (exclusive lock).
  Result<storage::RecordId> Insert(bson::Document doc);

  /// Removes a record and its index entries (chunk migration; exclusive
  /// lock).
  Status Remove(storage::RecordId rid);

  /// Runs a query locally to completion, returning documents and
  /// explain-style stats. Plan choices are remembered per query shape in
  /// this shard's plan cache, as in mongod. Holds the shard lock shared for
  /// the whole execution; the result borrows the record store, so consume
  /// it before the next local mutation.
  query::ExecutionResult RunQuery(const query::ExprPtr& expr,
                                  const query::ExecutorOptions& options) const;

  /// Opens a resumable cursor over this shard's results for `expr`. A
  /// non-zero `limit` is pushed down to the executor (trial race target and
  /// stream length). Planning is lazy: the shard does no work until the
  /// first GetMore.
  std::unique_ptr<ShardCursor> OpenCursor(query::ExprPtr expr,
                                          const query::ExecutorOptions& options,
                                          uint64_t limit = 0) const;

  /// Executes `expr` to exhaustion with per-stage timing enabled and
  /// returns the explain slice of that execution (mongod's explain: the
  /// query runs once, and what ran is what is reported). Plan-cache state
  /// advances exactly as a normal query would advance it.
  ShardExplain Explain(const query::ExprPtr& expr,
                       query::ExecutorOptions options) const;

  uint64_t num_documents() const {
    return collection_.records().num_records();
  }

  const query::PlanCache& plan_cache() const { return plan_cache_; }

  /// This shard's online statistics (histograms over date / hilbertIndex /
  /// geo cells plus layout counts), maintained by Insert/Remove and read by
  /// the executor's cost model.
  const query::stats::ShardStatistics& statistics() const { return stats_; }

  /// Lazy statistics rebuild: when the histogram boundaries have drifted
  /// past their threshold (or a migration marked them stale), collects a
  /// fresh sample from the record store and swaps it in, then invalidates
  /// the plan cache (cached works figures were measured against the old
  /// distribution). Called at query entry under the shared data lock —
  /// the statistics and plan cache lock themselves.
  void MaybeRebuildStats() const;

  /// Unconditional statistics rebuild from the record store (the body of
  /// MaybeRebuildStats without the drift check). Recovery must use this
  /// rather than MarkStale(): a recovered shard's statistics never saw an
  /// Observe() call, so their live document count is zero and the
  /// "empty shard" short-circuit would report them reliable — the cost
  /// model would then trust estimates of exactly 0 over a populated record
  /// store. Safe under either lock mode; the statistics lock themselves and
  /// the generation guard discards a rebuild that lost a race.
  void RebuildStatsFromStorage() const;

  /// Migration hook: a chunk moved onto or off this shard. Marks the
  /// statistics stale (the next query triggers a rebuild) and invalidates
  /// cached plan choices immediately.
  void OnDataDistributionChanged() const;

  /// The shard's reader–writer data lock. Exposed for multi-record critical
  /// sections that must hold it across calls (the migration commit batches
  /// its removes/inserts under one exclusive acquisition via the *Locked
  /// entry points below).
  std::shared_mutex& data_mutex() const { return data_mu_; }

  /// Insert/Remove bodies without the lock acquisition, for callers that
  /// already hold data_mutex() exclusively.
  Result<storage::RecordId> InsertLocked(bson::Document doc);
  Status RemoveLocked(storage::RecordId rid);

  // ---- Durability ----
  //
  // With a WAL attached every Insert/Remove is logged and committed before
  // it is acknowledged; without one the shard is the original in-memory
  // store. Recovery = last intact checkpoint + WAL replay to the commit
  // horizon (see DESIGN.md §5i).

  /// Attaches a write-ahead log living at `dir`/wal.log. `fresh` starts an
  /// empty log (brand-new store); otherwise the existing log is opened and
  /// its torn tail truncated (use after Recover). A non-zero
  /// `checkpoint_wal_bytes` auto-checkpoints whenever the log grows past it.
  Status AttachWal(const std::string& dir, storage::WalOptions options,
                   uint64_t checkpoint_wal_bytes, bool fresh);

  /// Persists the collection + all indexes as a checkpoint at the WAL's
  /// current commit horizon, then truncates the WAL and deletes older
  /// checkpoints. No-op without a WAL.
  Status Checkpoint();
  /// Checkpoint body for callers already holding data_mutex() exclusively.
  Status CheckpointLocked();

  /// Rebuilds this shard's state from `dir`: loads the newest intact
  /// checkpoint (falling back to older ones on damage), replays committed
  /// WAL records past the checkpoint's LSN, discards the torn tail, and
  /// reattaches the WAL for new writes. Must run after the shard's indexes
  /// are declared (empty) and before any insert.
  Status Recover(const std::string& dir, storage::WalOptions options,
                 uint64_t checkpoint_wal_bytes);

  /// Flushes any buffered group-commit window to the log file.
  Status SyncWal();

  storage::WriteAheadLog* wal() { return wal_.get(); }
  bool durable() const { return wal_ != nullptr; }

 private:
  // Cursors share the shard's plan cache, like getMore continuations share
  // mongod's.
  friend class ShardCursor;

  /// The GeoHash of the first 2dsphere index, or null — the value space the
  /// location histogram observes (it must match what the index keys store).
  const geo::GeoHash* StatsGeoHash() const;

  /// Stages + commits one record; the insert/remove undo paths hang off the
  /// returned status.
  Status LogLocked(storage::WalRecordType type, storage::RecordId rid,
                   std::string_view payload);
  /// Auto-checkpoint trigger; failures don't fail the triggering write (it
  /// is already durable) — a failed checkpoint kills the WAL instead.
  void MaybeCheckpointLocked();

  int id_;
  storage::Collection collection_;
  index::IndexCatalog catalog_;
  // Durability (null/empty when the shard runs in-memory only).
  std::unique_ptr<storage::WriteAheadLog> wal_;
  std::string dir_;
  uint64_t checkpoint_wal_bytes_ = 0;
  uint64_t ckpt_lsn_ = 0;
  // Guards collection_ + catalog_ (see class comment). The plan cache and
  // metrics lock themselves.
  mutable std::shared_mutex data_mu_;
  // Logically execution-state, not collection-state; mongod's cache is
  // likewise invisible to readers.
  mutable query::PlanCache plan_cache_;
  // Execution-state like the plan cache: internally locked, maintained by
  // writers, rebuilt lazily by readers.
  mutable query::stats::ShardStatistics stats_;
};

}  // namespace stix::cluster

#endif  // STIX_CLUSTER_SHARD_H_
