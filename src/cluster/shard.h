#ifndef STIX_CLUSTER_SHARD_H_
#define STIX_CLUSTER_SHARD_H_

#include <string>

#include "index/index_catalog.h"
#include "query/executor.h"
#include "query/plan_cache.h"
#include "storage/collection.h"

namespace stix::cluster {

/// One MongoDB shard server: a shard-local collection plus its index
/// catalog. Queries run against it through the same executor a standalone
/// mongod would use; the router fans out and merges.
class Shard {
 public:
  explicit Shard(int id) : id_(id) {}

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  int id() const { return id_; }

  storage::Collection& collection() { return collection_; }
  const storage::Collection& collection() const { return collection_; }
  index::IndexCatalog& catalog() { return catalog_; }
  const index::IndexCatalog& catalog() const { return catalog_; }

  /// Stores a document and maintains every index.
  Result<storage::RecordId> Insert(bson::Document doc);

  /// Removes a record and its index entries (chunk migration).
  Status Remove(storage::RecordId rid);

  /// Runs a query locally, returning documents and explain-style stats.
  /// Plan choices are remembered per query shape in this shard's plan
  /// cache, as in mongod.
  query::ExecutionResult RunQuery(const query::ExprPtr& expr,
                                  const query::ExecutorOptions& options) const;

  uint64_t num_documents() const {
    return collection_.records().num_records();
  }

  const query::PlanCache& plan_cache() const { return plan_cache_; }

 private:
  int id_;
  storage::Collection collection_;
  index::IndexCatalog catalog_;
  // Logically execution-state, not collection-state; mongod's cache is
  // likewise invisible to readers.
  mutable query::PlanCache plan_cache_;
};

}  // namespace stix::cluster

#endif  // STIX_CLUSTER_SHARD_H_
