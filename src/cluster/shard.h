#ifndef STIX_CLUSTER_SHARD_H_
#define STIX_CLUSTER_SHARD_H_

#include <memory>
#include <string>

#include "common/stopwatch.h"
#include "index/index_catalog.h"
#include "query/executor.h"
#include "query/explain.h"
#include "query/plan_cache.h"
#include "storage/collection.h"

namespace stix::cluster {

class Shard;

/// One shard's slice of an explain: the winning plan's executed stage tree,
/// the rejected candidates' partial trees, and the executor-level framing
/// (plan-cache provenance, totals). The winning tree's per-stage keys/docs
/// sum exactly to `stats` — the invariant explain golden tests and the fuzz
/// harness check.
struct ShardExplain {
  int shard_id = 0;
  std::string winning_index;
  int num_candidates = 0;
  bool from_plan_cache = false;
  bool replanned = false;
  query::ExecStats stats;
  double exec_millis = 0.0;
  query::ExplainNode winning_plan;
  std::vector<query::ExplainNode> rejected_plans;

  /// JSON object (stage trees serialized at the given verbosity; rejected
  /// plans only at kAllPlansExecution).
  std::string ToJson(query::ExplainVerbosity v) const;
};

/// A resumable cursor over one shard's results — the shard half of the
/// getMore protocol. Each GetMore() pulls up to a batch of documents from
/// the shard's PlanExecutor, timing only the work actually performed, so a
/// stream abandoned early charges the shard only for what it produced.
///
/// Lifetime: the cursor borrows the shard and its batches borrow documents
/// from the shard's RecordStore; consume each batch before the collection
/// next mutates (the batch carries a borrow guard) and drop the cursor
/// before the shard.
class ShardCursor {
 public:
  /// One getMore's worth of results, as borrowed pointers.
  struct Batch {
    std::vector<const bson::Document*> docs;
    std::vector<storage::RecordId> rids;
    /// True when the stream ended at or before the end of this batch.
    bool exhausted = false;
    /// Non-OK when the shard died mid-stream (e.g. an injected fault): the
    /// batch carries no documents and the cursor is permanently exhausted.
    Status error;

    /// Borrow guard, as on query::ExecutionResult: valid only while the
    /// source store's generation is unchanged.
    const storage::RecordStore* borrow_source = nullptr;
    uint64_t borrow_generation = 0;
    bool BorrowsValid() const {
      return borrow_source == nullptr ||
             borrow_source->generation() == borrow_generation;
    }
    void CheckBorrows() const { assert(BorrowsValid()); }
  };

  /// Pulls up to `batch_size` more documents (0 = run to exhaustion).
  Batch GetMore(size_t batch_size);

  bool exhausted() const { return done_; }
  int shard_id() const;

  /// Executor counters so far (final once exhausted).
  query::ExecStats stats() const { return exec_.CurrentStats(); }
  /// Explain slice of this cursor's execution so far (complete once
  /// exhausted). Stage timing is present when the executor options enabled
  /// it (ExecutorOptions::stage_timing).
  ShardExplain Explain() const;
  /// Shard-side execution time accumulated across GetMore calls.
  double exec_millis() const { return exec_millis_; }
  uint64_t n_returned() const { return exec_.n_returned(); }
  const std::string& winning_index() const { return exec_.winning_index(); }
  bool from_plan_cache() const { return exec_.from_plan_cache(); }
  bool replanned() const { return exec_.replanned(); }

 private:
  friend class Shard;
  ShardCursor(const Shard& shard, query::ExprPtr expr,
              const query::ExecutorOptions& options, uint64_t limit);

  const Shard& shard_;
  query::PlanExecutor exec_;
  double exec_millis_ = 0.0;
  bool done_ = false;
};

/// One MongoDB shard server: a shard-local collection plus its index
/// catalog. Queries run against it through the same executor a standalone
/// mongod would use; the router fans out and merges.
class Shard {
 public:
  explicit Shard(int id) : id_(id) {}

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  int id() const { return id_; }

  storage::Collection& collection() { return collection_; }
  const storage::Collection& collection() const { return collection_; }
  index::IndexCatalog& catalog() { return catalog_; }
  const index::IndexCatalog& catalog() const { return catalog_; }

  /// Stores a document and maintains every index.
  Result<storage::RecordId> Insert(bson::Document doc);

  /// Removes a record and its index entries (chunk migration).
  Status Remove(storage::RecordId rid);

  /// Runs a query locally to completion, returning documents and
  /// explain-style stats. Plan choices are remembered per query shape in
  /// this shard's plan cache, as in mongod.
  query::ExecutionResult RunQuery(const query::ExprPtr& expr,
                                  const query::ExecutorOptions& options) const;

  /// Opens a resumable cursor over this shard's results for `expr`. A
  /// non-zero `limit` is pushed down to the executor (trial race target and
  /// stream length). Planning is lazy: the shard does no work until the
  /// first GetMore.
  std::unique_ptr<ShardCursor> OpenCursor(query::ExprPtr expr,
                                          const query::ExecutorOptions& options,
                                          uint64_t limit = 0) const;

  /// Executes `expr` to exhaustion with per-stage timing enabled and
  /// returns the explain slice of that execution (mongod's explain: the
  /// query runs once, and what ran is what is reported). Plan-cache state
  /// advances exactly as a normal query would advance it.
  ShardExplain Explain(const query::ExprPtr& expr,
                       query::ExecutorOptions options) const;

  uint64_t num_documents() const {
    return collection_.records().num_records();
  }

  const query::PlanCache& plan_cache() const { return plan_cache_; }

 private:
  // Cursors share the shard's plan cache, like getMore continuations share
  // mongod's.
  friend class ShardCursor;

  int id_;
  storage::Collection collection_;
  index::IndexCatalog catalog_;
  // Logically execution-state, not collection-state; mongod's cache is
  // likewise invisible to readers.
  mutable query::PlanCache plan_cache_;
};

}  // namespace stix::cluster

#endif  // STIX_CLUSTER_SHARD_H_
