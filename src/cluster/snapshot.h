#ifndef STIX_CLUSTER_SNAPSHOT_H_
#define STIX_CLUSTER_SNAPSHOT_H_

#include <memory>
#include <string>

#include "cluster/cluster.h"

namespace stix::cluster {

/// A cluster's sharding metadata, decoded from its BSON form: everything
/// needed to rebuild topology before any document arrives. Shared by the
/// snapshot format and the durable config journal (kConfigMeta records).
struct ClusterMeta {
  int num_shards = 0;
  ShardKeyPattern pattern;
  std::vector<Chunk> chunks;
  std::vector<ZoneRange> zones;
  std::vector<index::IndexDescriptor> secondary_indexes;
};

/// Encodes a cluster's sharding metadata (shard count, key pattern, chunk
/// table, zones, secondary index declarations) as one BSON document.
bson::Document ClusterMetadataDoc(const Cluster& cluster);

/// Inverse of ClusterMetadataDoc; Corruption on missing fields.
Result<ClusterMeta> ParseClusterMetadata(const bson::Document& meta);

/// Binary snapshot of a whole cluster: shard-key pattern, chunk table,
/// zones, index declarations and every shard's documents, written as
/// LZ-compressed, checksummed blocks of BSON. Restoring reproduces the
/// exact placement (no re-balancing, no re-routing), so a bulk load can be
/// paid once and reused across runs.
///
/// Format (little-endian):
///   magic "STIXSNP1" | u32 version | u32 meta_len | meta BSON |
///   per shard: u32 shard_id, u64 doc_count,
///     blocks: u32 raw_len, u32 comp_len, u64 fnv1a(comp), comp bytes;
///     a block with raw_len == 0 ends the shard.
Status SaveSnapshot(const Cluster& cluster, const std::string& path);

/// Rebuilds a cluster from a snapshot. `options` supplies runtime knobs
/// (seeds, executor/router settings, chunk size for *future* splits); the
/// shard count, shard key, chunks, zones and index set come from the file.
/// Fails with Corruption on format/checksum violations.
Result<std::unique_ptr<Cluster>> LoadSnapshot(const std::string& path,
                                              const ClusterOptions& options);

}  // namespace stix::cluster

#endif  // STIX_CLUSTER_SNAPSHOT_H_
