#ifndef STIX_CLUSTER_SNAPSHOT_H_
#define STIX_CLUSTER_SNAPSHOT_H_

#include <memory>
#include <string>

#include "cluster/cluster.h"

namespace stix::cluster {

/// Binary snapshot of a whole cluster: shard-key pattern, chunk table,
/// zones, index declarations and every shard's documents, written as
/// LZ-compressed, checksummed blocks of BSON. Restoring reproduces the
/// exact placement (no re-balancing, no re-routing), so a bulk load can be
/// paid once and reused across runs.
///
/// Format (little-endian):
///   magic "STIXSNP1" | u32 version | u32 meta_len | meta BSON |
///   per shard: u32 shard_id, u64 doc_count,
///     blocks: u32 raw_len, u32 comp_len, u64 fnv1a(comp), comp bytes;
///     a block with raw_len == 0 ends the shard.
Status SaveSnapshot(const Cluster& cluster, const std::string& path);

/// Rebuilds a cluster from a snapshot. `options` supplies runtime knobs
/// (seeds, executor/router settings, chunk size for *future* splits); the
/// shard count, shard key, chunks, zones and index set come from the file.
/// Fails with Corruption on format/checksum violations.
Result<std::unique_ptr<Cluster>> LoadSnapshot(const std::string& path,
                                              const ClusterOptions& options);

}  // namespace stix::cluster

#endif  // STIX_CLUSTER_SNAPSHOT_H_
