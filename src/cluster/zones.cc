#include "cluster/zones.h"

#include <algorithm>

#include "keystring/keystring.h"
#include "query/aggregate.h"

namespace stix::cluster {

int ZoneForKey(const std::vector<ZoneRange>& zones, const std::string& key) {
  const auto it = std::upper_bound(
      zones.begin(), zones.end(), key,
      [](const std::string& k, const ZoneRange& z) { return k < z.min; });
  if (it == zones.begin()) return -1;
  const ZoneRange& z = *std::prev(it);
  return key < z.max ? z.shard_id : -1;
}

bool ZonesCoverWholeSpace(const std::vector<ZoneRange>& zones) {
  if (zones.empty()) return false;
  if (zones.front().min != keystring::MinKey()) return false;
  if (zones.back().max != keystring::MaxKey()) return false;
  for (size_t i = 0; i < zones.size(); ++i) {
    if (zones[i].min >= zones[i].max) return false;
    if (i > 0 && zones[i - 1].max != zones[i].min) return false;
  }
  return true;
}

std::vector<bson::Value> BucketAutoBoundaries(
    const std::vector<std::unique_ptr<Shard>>& shards, const std::string& path,
    int num_buckets) {
  // Run the actual $bucketAuto aggregation stage over the zone-path values
  // (the paper's recipe, Section 4.2.4) and read each bucket's lower bound.
  std::vector<bson::Document> value_docs;
  for (const auto& shard : shards) {
    shard->collection().records().ForEach(
        [&](storage::RecordId, const bson::Document& doc) {
          const bson::Value* v = doc.GetPath(path);
          if (v == nullptr) return;
          bson::Document value_doc;
          value_doc.Append("v", *v);
          value_docs.push_back(std::move(value_doc));
        });
  }

  std::vector<bson::Value> boundaries;
  if (value_docs.empty() || num_buckets <= 1) return boundaries;
  const Result<std::vector<bson::Document>> buckets = query::RunPipeline(
      std::move(value_docs),
      query::Pipeline().BucketAuto("v", num_buckets));
  if (!buckets.ok()) return boundaries;
  for (size_t i = 1; i < buckets->size(); ++i) {
    const bson::Value* min = (*buckets)[i].GetPath("_id.min");
    if (min == nullptr) continue;
    if (boundaries.empty() || Compare(boundaries.back(), *min) < 0) {
      boundaries.push_back(*min);
    }
  }
  return boundaries;
}

}  // namespace stix::cluster
