#include "st/adaptive.h"

#include <algorithm>

#include "common/rng.h"
#include "keystring/keystring.h"

namespace stix::st {
namespace {

struct WeightedValue {
  bson::Value value;  // zone-path value (hilbertIndex or date)
  double weight;
};

}  // namespace

Result<std::vector<cluster::ZoneRange>> ComputeWorkloadAwareZones(
    const StStore& store, const std::vector<WorkloadQuery>& workload,
    const AdaptiveZoneOptions& options) {
  if (workload.empty()) {
    return Status::InvalidArgument("workload must not be empty");
  }
  const std::string zone_path = store.approach().zone_path();
  const int num_shards = store.cluster().num_shards();

  // Pre-translate the workload once; Matches() then gives each sampled
  // document its load weight.
  std::vector<std::pair<query::ExprPtr, double>> predicates;
  predicates.reserve(workload.size());
  for (const WorkloadQuery& wq : workload) {
    predicates.emplace_back(
        store.approach()
            .TranslateQuery(wq.rect, wq.t_begin_ms, wq.t_end_ms)
            .expr,
        wq.weight);
  }

  // Sample documents across shards (deterministic thinning).
  const uint64_t total_docs = store.cluster().total_documents();
  const double keep_probability =
      options.sample_limit == 0 || total_docs <= options.sample_limit
          ? 1.0
          : static_cast<double>(options.sample_limit) /
                static_cast<double>(total_docs);
  Rng rng(options.seed);

  std::vector<WeightedValue> samples;
  samples.reserve(std::min<uint64_t>(total_docs, options.sample_limit + 16));
  for (const auto& shard : store.cluster().shards()) {
    shard->collection().records().ForEach(
        [&](storage::RecordId, const bson::Document& doc) {
          if (keep_probability < 1.0 && !rng.NextBool(keep_probability)) {
            return;
          }
          const bson::Value* v = doc.GetPath(zone_path);
          if (v == nullptr) return;
          double weight = options.background_weight;
          for (const auto& [expr, query_weight] : predicates) {
            if (expr->Matches(doc)) weight += query_weight;
          }
          samples.push_back(WeightedValue{*v, weight});
        });
  }
  if (samples.empty()) {
    return Status::NotFound("no documents to derive zones from");
  }

  std::sort(samples.begin(), samples.end(),
            [](const WeightedValue& a, const WeightedValue& b) {
              return Compare(a.value, b.value) < 0;
            });
  double total_weight = 0.0;
  for (const WeightedValue& s : samples) total_weight += s.weight;

  // Walk the sorted samples once, cutting a boundary every time a shard's
  // fair share of weight has accumulated.
  std::vector<cluster::ZoneRange> zones;
  zones.reserve(num_shards);
  const double share = total_weight / num_shards;
  std::string prev_boundary = keystring::MinKey();
  double accumulated = 0.0;
  int shard = 0;
  for (size_t i = 0; i + 1 < samples.size() && shard + 1 < num_shards; ++i) {
    accumulated += samples[i].weight;
    if (accumulated < share * (shard + 1)) continue;
    // Cut between distinct values only, so zones stay disjoint.
    if (Compare(samples[i].value, samples[i + 1].value) == 0) continue;
    std::string boundary = keystring::Encode(samples[i + 1].value);
    if (boundary <= prev_boundary) continue;
    zones.push_back(cluster::ZoneRange{prev_boundary, boundary, shard++});
    prev_boundary = std::move(boundary);
  }
  zones.push_back(
      cluster::ZoneRange{prev_boundary, keystring::MaxKey(), shard});
  return zones;
}

Status ApplyWorkloadAwareZones(StStore* store,
                               const std::vector<WorkloadQuery>& workload,
                               const AdaptiveZoneOptions& options) {
  Result<std::vector<cluster::ZoneRange>> zones =
      ComputeWorkloadAwareZones(*store, workload, options);
  if (!zones.ok()) return zones.status();
  return store->cluster().SetZones(std::move(*zones));
}

}  // namespace stix::st
