#include "st/approach.h"

#include "common/stopwatch.h"

namespace stix::st {

const char* ApproachName(ApproachKind kind) {
  switch (kind) {
    case ApproachKind::kBslST:
      return "bslST";
    case ApproachKind::kBslTS:
      return "bslTS";
    case ApproachKind::kHil:
      return "hil";
    case ApproachKind::kHilStar:
      return "hil*";
  }
  return "?";
}

Approach::Approach(const ApproachConfig& config) : config_(config) {
  if (uses_hilbert()) {
    const geo::Rect domain = config_.kind == ApproachKind::kHilStar
                                 ? config_.dataset_mbr
                                 : geo::GlobeRect();
    hilbert_ = std::make_unique<geo::HilbertCurve>(config_.hilbert_order,
                                                   domain);
  }
}

cluster::ShardKeyPattern Approach::shard_key() const {
  if (uses_hilbert()) {
    return cluster::ShardKeyPattern({kHilbertField, kDateField},
                                    cluster::ShardingStrategy::kRange);
  }
  return cluster::ShardKeyPattern({kDateField},
                                  cluster::ShardingStrategy::kRange);
}

std::vector<index::IndexDescriptor> Approach::secondary_indexes() const {
  std::vector<index::IndexDescriptor> out;
  switch (config_.kind) {
    case ApproachKind::kBslST:
      out.emplace_back(
          "location_2dsphere_date_1",
          std::vector<index::IndexField>{
              {kLocationField, index::IndexFieldKind::k2dsphere},
              {kDateField, index::IndexFieldKind::kAscending}},
          config_.geohash_bits);
      break;
    case ApproachKind::kBslTS:
      out.emplace_back(
          "date_1_location_2dsphere",
          std::vector<index::IndexField>{
              {kDateField, index::IndexFieldKind::kAscending},
              {kLocationField, index::IndexFieldKind::k2dsphere}},
          config_.geohash_bits);
      break;
    case ApproachKind::kHil:
    case ApproachKind::kHilStar:
      // The shard-key compound index {hilbertIndex, date} is the
      // spatio-temporal index; nothing extra (paper A.3).
      break;
  }
  return out;
}

Status Approach::EnrichDocument(bson::Document* doc) const {
  if (!uses_hilbert()) return Status::OK();
  const bson::Value* loc = doc->Get(kLocationField);
  double lon, lat;
  if (loc == nullptr || !bson::ExtractGeoJsonPoint(*loc, &lon, &lat)) {
    return Status::InvalidArgument(
        "document has no GeoJSON point in 'location'");
  }
  doc->Set(kHilbertField,
           bson::Value::Int64(
               static_cast<int64_t>(hilbert_->PointToD(lon, lat))));
  return Status::OK();
}

TranslatedQuery Approach::TranslateQuery(const geo::Rect& rect,
                                         int64_t t_begin_ms,
                                         int64_t t_end_ms) const {
  return TranslateRegionQuery(query::MakeGeoWithinBox(kLocationField, rect),
                              geo::RectRegion(rect), t_begin_ms, t_end_ms);
}

TranslatedQuery Approach::TranslatePolygonQuery(const geo::Polygon& polygon,
                                                int64_t t_begin_ms,
                                                int64_t t_end_ms) const {
  return TranslateRegionQuery(
      query::MakeGeoWithinPolygon(kLocationField, polygon), polygon,
      t_begin_ms, t_end_ms);
}

TranslatedQuery Approach::TranslateRegionQuery(query::ExprPtr geo_predicate,
                                               const geo::Region& region,
                                               int64_t t_begin_ms,
                                               int64_t t_end_ms) const {
  TranslatedQuery out;
  std::vector<query::ExprPtr> conjuncts;
  conjuncts.push_back(std::move(geo_predicate));
  conjuncts.push_back(query::MakeRange(kDateField,
                                       bson::Value::DateTime(t_begin_ms),
                                       bson::Value::DateTime(t_end_ms)));

  if (uses_hilbert()) {
    Stopwatch cover_timer;
    const geo::Covering covering = geo::CoverRegion(*hilbert_, region);
    out.cover_millis = cover_timer.ElapsedMillis();

    // Consecutive cells become ranges; isolated cells are width-one entries
    // (the paper's $gte/$lte pairs plus $in, Section 4.2.2). The RangeSet
    // node keeps the identical semantics but matches by binary search — a
    // hil* covering over a small MBR can have thousands of arms.
    std::vector<query::RangeSetExpr::Range> ranges;
    ranges.reserve(covering.ranges.size());
    for (const geo::DRange& r : covering.ranges) {
      if (r.lo == r.hi) {
        ++out.num_singletons;
      } else {
        ++out.num_ranges;
      }
      ranges.push_back(query::RangeSetExpr::Range{
          bson::Value::Int64(static_cast<int64_t>(r.lo)),
          bson::Value::Int64(static_cast<int64_t>(r.hi))});
    }
    if (!ranges.empty()) {
      conjuncts.push_back(query::MakeRangeSet(kHilbertField,
                                              std::move(ranges)));
    }
  }

  out.expr = query::MakeAnd(std::move(conjuncts));
  return out;
}

std::string Approach::zone_path() const {
  return uses_hilbert() ? kHilbertField : kDateField;
}

}  // namespace stix::st
