#include "st/approach.h"

#include "common/metrics.h"
#include "common/stopwatch.h"

namespace stix::st {

size_t Approach::CacheKeyHash::operator()(const CacheKey& k) const {
  // FNV-1a over the raw bytes: the key is a POD of doubles/int64s compared
  // bitwise via ==, so hashing the bit patterns is consistent with it.
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](const void* p, size_t n) {
    const unsigned char* bytes = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
  };
  mix(&k.lo_lon, sizeof k.lo_lon);
  mix(&k.lo_lat, sizeof k.lo_lat);
  mix(&k.hi_lon, sizeof k.hi_lon);
  mix(&k.hi_lat, sizeof k.hi_lat);
  mix(&k.t_begin_ms, sizeof k.t_begin_ms);
  mix(&k.t_end_ms, sizeof k.t_end_ms);
  mix(&k.max_ranges, sizeof k.max_ranges);
  mix(&k.curve_kind, sizeof k.curve_kind);
  mix(&k.curve_gen, sizeof k.curve_gen);
  return static_cast<size_t>(h);
}

const char* ApproachName(ApproachKind kind) {
  switch (kind) {
    case ApproachKind::kBslST:
      return "bslST";
    case ApproachKind::kBslTS:
      return "bslTS";
    case ApproachKind::kHil:
      return "hil";
    case ApproachKind::kHilStar:
      return "hil*";
  }
  return "?";
}

Approach::Approach(const ApproachConfig& config) : config_(config) {
  if (uses_hilbert()) {
    const geo::Rect domain = config_.kind == ApproachKind::kHilStar
                                 ? config_.dataset_mbr
                                 : geo::GlobeRect();
    curve_ = geo::MakeCurve(config_.curve_kind, config_.hilbert_order, domain,
                            config_.curve_fit_sample);
  }
}

std::shared_ptr<const geo::Curve2D> Approach::curve() const {
  const std::lock_guard<std::mutex> lock(curve_mu_);
  return curve_;
}

uint64_t Approach::curve_generation() const {
  const std::lock_guard<std::mutex> lock(curve_mu_);
  return curve_generation_;
}

Status Approach::RefitCurve(const std::vector<geo::Point>& sample) {
  if (!uses_hilbert() || config_.curve_kind != geo::CurveKind::kEGeoHash) {
    return Status::InvalidArgument(
        "RefitCurve applies only to EntropyGeoHash curve approaches");
  }
  const geo::Rect domain = config_.kind == ApproachKind::kHilStar
                               ? config_.dataset_mbr
                               : geo::GlobeRect();
  std::shared_ptr<const geo::Curve2D> refit =
      geo::MakeCurve(config_.curve_kind, config_.hilbert_order, domain,
                     sample);
  const std::lock_guard<std::mutex> lock(curve_mu_);
  curve_ = std::move(refit);
  ++curve_generation_;
  return Status::OK();
}

cluster::ShardKeyPattern Approach::shard_key() const {
  if (uses_hilbert()) {
    return cluster::ShardKeyPattern({kHilbertField, kDateField},
                                    cluster::ShardingStrategy::kRange);
  }
  return cluster::ShardKeyPattern({kDateField},
                                  cluster::ShardingStrategy::kRange);
}

std::vector<index::IndexDescriptor> Approach::secondary_indexes() const {
  std::vector<index::IndexDescriptor> out;
  switch (config_.kind) {
    case ApproachKind::kBslST:
      out.emplace_back(
          "location_2dsphere_date_1",
          std::vector<index::IndexField>{
              {kLocationField, index::IndexFieldKind::k2dsphere},
              {kDateField, index::IndexFieldKind::kAscending}},
          config_.geohash_bits);
      break;
    case ApproachKind::kBslTS:
      out.emplace_back(
          "date_1_location_2dsphere",
          std::vector<index::IndexField>{
              {kDateField, index::IndexFieldKind::kAscending},
              {kLocationField, index::IndexFieldKind::k2dsphere}},
          config_.geohash_bits);
      break;
    case ApproachKind::kHil:
    case ApproachKind::kHilStar:
      // The shard-key compound index {hilbertIndex, date} is the
      // spatio-temporal index; nothing extra (paper A.3).
      break;
  }
  return out;
}

Status Approach::EnrichDocument(bson::Document* doc) const {
  if (!uses_hilbert()) return Status::OK();
  const bson::Value* loc = doc->Get(kLocationField);
  double lon, lat;
  if (loc == nullptr || !bson::ExtractGeoJsonPoint(*loc, &lon, &lat)) {
    return Status::InvalidArgument(
        "document has no GeoJSON point in 'location'");
  }
  doc->Set(kHilbertField,
           bson::Value::Int64(
               static_cast<int64_t>(curve()->PointToD(lon, lat))));
  return Status::OK();
}

TranslatedQuery Approach::TranslateQuery(const geo::Rect& rect,
                                         int64_t t_begin_ms, int64_t t_end_ms,
                                         size_t max_ranges) const {
  // Baselines have no covering, so the budget would only fragment their
  // cache entries.
  if (!uses_hilbert()) max_ranges = 0;
  // One atomic (curve, generation) snapshot: the covering below must be
  // computed against exactly the mapping the cache key names, or a refit
  // racing this translation could cache a new-mapping cover under an
  // old-generation key.
  std::shared_ptr<const geo::Curve2D> curve;
  uint64_t curve_gen = 0;
  if (uses_hilbert()) {
    const std::lock_guard<std::mutex> lock(curve_mu_);
    curve = curve_;
    curve_gen = curve_generation_;
  }
  // Normalize -0.0 so bitwise hashing agrees with value equality.
  const auto norm = [](double d) { return d == 0.0 ? 0.0 : d; };
  const CacheKey key{norm(rect.lo.lon),
                     norm(rect.lo.lat),
                     norm(rect.hi.lon),
                     norm(rect.hi.lat),
                     t_begin_ms,
                     t_end_ms,
                     static_cast<uint64_t>(max_ranges),
                     static_cast<uint32_t>(config_.curve_kind),
                     curve_gen};
  STIX_METRIC_COUNTER(cover_hits, "cover_cache.hits");
  STIX_METRIC_COUNTER(cover_misses, "cover_cache.misses");
  STIX_METRIC_COUNTER(cover_evictions, "cover_cache.evictions");
  STIX_METRIC_GAUGE(cover_size, "cover_cache.size");
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    const auto it = cover_cache_.find(key);
    if (it != cover_cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cover_hits.Increment();
      // Refresh recency: the hit entry moves to the front of the LRU list.
      cover_cache_lru_.splice(cover_cache_lru_.begin(), cover_cache_lru_,
                              it->second);
      TranslatedQuery out = it->second->second;  // shares the immutable expr
      out.cache_hit = true;
      out.cover_millis = 0.0;  // the covering was not recomputed
      return out;
    }
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  cover_misses.Increment();

  // Compute outside the lock: coverings can be expensive and concurrent
  // queries must not serialize on them. A racing duplicate insert is
  // harmless (same value, last writer wins).
  TranslatedQuery fresh = TranslateRegionQuery(
      query::MakeGeoWithinBox(kLocationField, rect), geo::RectRegion(rect),
      t_begin_ms, t_end_ms, max_ranges, curve.get());
  if (config_.cover_cache_capacity == 0) return fresh;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    const auto it = cover_cache_.find(key);
    if (it != cover_cache_.end()) {
      // A racing translation of the same key won; keep its entry.
      cover_cache_lru_.splice(cover_cache_lru_.begin(), cover_cache_lru_,
                              it->second);
    } else {
      cover_cache_lru_.emplace_front(key, fresh);
      cover_cache_[key] = cover_cache_lru_.begin();
      while (cover_cache_.size() > config_.cover_cache_capacity) {
        cover_cache_.erase(cover_cache_lru_.back().first);
        cover_cache_lru_.pop_back();
        cache_evictions_.fetch_add(1, std::memory_order_relaxed);
        cover_evictions.Increment();
      }
    }
    cover_size.Set(static_cast<int64_t>(cover_cache_.size()));
    cover_size.UpdateMax();
  }
  return fresh;
}

size_t Approach::cover_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cover_cache_.size();
}

void Approach::ClearCoverCache() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cover_cache_.clear();
  cover_cache_lru_.clear();
}

TranslatedQuery Approach::TranslatePolygonQuery(const geo::Polygon& polygon,
                                                int64_t t_begin_ms,
                                                int64_t t_end_ms) const {
  const std::shared_ptr<const geo::Curve2D> snapshot = curve();
  return TranslateRegionQuery(
      query::MakeGeoWithinPolygon(kLocationField, polygon), polygon,
      t_begin_ms, t_end_ms, /*max_ranges=*/0, snapshot.get());
}

TranslatedQuery Approach::TranslateRegionQuery(query::ExprPtr geo_predicate,
                                               const geo::Region& region,
                                               int64_t t_begin_ms,
                                               int64_t t_end_ms,
                                               size_t max_ranges,
                                               const geo::Curve2D* curve)
    const {
  TranslatedQuery out;
  std::vector<query::ExprPtr> conjuncts;
  conjuncts.push_back(std::move(geo_predicate));
  conjuncts.push_back(query::MakeRange(kDateField,
                                       bson::Value::DateTime(t_begin_ms),
                                       bson::Value::DateTime(t_end_ms)));

  if (uses_hilbert() && curve != nullptr) {
    // A capped covering is a superset of the exact one (both strategies'
    // budget contract), so results stay exact: the $geoWithin conjunct
    // re-checks every fetched point. num_ranges/num_singletons report what
    // was actually generated.
    geo::CoveringOptions cover_options;
    cover_options.max_ranges = max_ranges;
    out.cover_budget = max_ranges;
    // Per-curve covering counters surface which linearization serves
    // traffic in ServerStatus ("covering.by_curve.<name>").
    MetricsRegistry::Instance()
        .GetCounter(std::string("covering.by_curve.") + curve->name())
        .Increment();
    Stopwatch cover_timer;
    const geo::Covering covering =
        geo::CoverRegion(*curve, region, cover_options);
    out.cover_millis = cover_timer.ElapsedMillis();

    // Consecutive cells become ranges; isolated cells are width-one entries
    // (the paper's $gte/$lte pairs plus $in, Section 4.2.2). The RangeSet
    // node keeps the identical semantics but matches by binary search — a
    // hil* covering over a small MBR can have thousands of arms.
    std::vector<query::RangeSetExpr::Range> ranges;
    ranges.reserve(covering.ranges.size());
    for (const geo::DRange& r : covering.ranges) {
      if (r.lo == r.hi) {
        ++out.num_singletons;
      } else {
        ++out.num_ranges;
      }
      ranges.push_back(query::RangeSetExpr::Range{
          bson::Value::Int64(static_cast<int64_t>(r.lo)),
          bson::Value::Int64(static_cast<int64_t>(r.hi))});
    }
    if (!ranges.empty()) {
      conjuncts.push_back(query::MakeRangeSet(kHilbertField,
                                              std::move(ranges)));
    }
  }

  out.expr = query::MakeAnd(std::move(conjuncts));
  return out;
}

size_t Approach::PickCoverBudget(double est_fraction) const {
  if (!uses_hilbert() || !config_.adaptive_cover_budget) return 0;
  if (est_fraction < 0.0) return 0;  // unknown selectivity: stay exact
  if (est_fraction <= config_.coarse_cover_fraction) {
    STIX_METRIC_COUNTER(fine, "planner.cover_fine");
    fine.Increment();
    return 0;
  }
  STIX_METRIC_COUNTER(coarse, "planner.cover_coarse");
  coarse.Increment();
  return config_.coarse_cover_max_ranges;
}

std::string Approach::zone_path() const {
  return uses_hilbert() ? kHilbertField : kDateField;
}

}  // namespace stix::st
