#include "st/st_store.h"

#include <cstdio>
#include <sstream>

namespace stix::st {

std::string StExplain::ToJson() const {
  char millis[32];
  std::snprintf(millis, sizeof(millis), "%.3f", cover_millis);
  std::ostringstream out;
  out << "{\"approach\": \"" << query::JsonEscape(approach)
      << "\", \"covering\": {\"coverMillis\": " << millis
      << ", \"numRanges\": " << num_ranges
      << ", \"numSingletons\": " << num_singletons << ", \"cacheHit\": "
      << (cover_cache_hit ? "true" : "false")
      << "}, \"cluster\": " << cluster.ToJson() << "}";
  return out.str();
}

StStore::StStore(const StStoreOptions& options)
    : options_(options),
      approach_(options.approach),
      cluster_(options.cluster),
      id_generator_(options.cluster.seed ^ 0x1d5ULL) {}

Status StStore::Setup() {
  Status s = cluster_.ShardCollection(approach_.shard_key());
  if (!s.ok()) return s;
  for (const index::IndexDescriptor& desc : approach_.secondary_indexes()) {
    s = cluster_.CreateIndex(desc);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status StStore::Insert(bson::Document doc) {
  {
    const std::lock_guard<std::mutex> lock(insert_mu_);
    if (!doc.Has("_id")) {
      const uint32_t load_seconds = static_cast<uint32_t>(
          options_.load_clock_begin_ms / 1000 +
          static_cast<int64_t>(inserted_ /
                               static_cast<uint64_t>(
                                   options_.docs_per_id_second)));
      doc.Append("_id",
                 bson::Value::Id(id_generator_.Generate(load_seconds)));
    }
    ++inserted_;
  }
  const Status s = approach_.EnrichDocument(&doc);
  if (!s.ok()) return s;
  return cluster_.Insert(std::move(doc));
}

Status StStore::FinishLoad() {
  cluster_.Balance();
  return Status::OK();
}

Status StStore::ConfigureZones() {
  return cluster_.SetZonesByBucketAuto(approach_.zone_path());
}

StCursor::StCursor(TranslatedQuery translated,
                   std::unique_ptr<cluster::ClusterCursor> cursor)
    : translated_(std::move(translated)), cursor_(std::move(cursor)) {}

StQueryResult StCursor::Summary() const {
  StQueryResult out;
  out.cluster = cursor_->Summary();
  out.translated = translated_;
  return out;
}

StQueryResult StCursor::Drain() {
  StQueryResult out;
  out.cluster = cursor_->Drain();
  out.translated = translated_;
  return out;
}

namespace {

cluster::CursorOptions ToClusterCursorOptions(const StCursorOptions& o) {
  cluster::CursorOptions out;
  out.batch_size = o.batch_size;
  out.limit = o.limit;
  return out;
}

}  // namespace

StQueryResult StStore::Query(const geo::Rect& rect, int64_t t_begin_ms,
                             int64_t t_end_ms) const {
  StCursorOptions full_drain;
  full_drain.batch_size = 0;
  full_drain.limit = 0;
  return OpenQuery(rect, t_begin_ms, t_end_ms, full_drain).Drain();
}

StCursor StStore::OpenQuery(const geo::Rect& rect, int64_t t_begin_ms,
                            int64_t t_end_ms,
                            const StCursorOptions& cursor_options) const {
  TranslatedQuery translated =
      approach_.TranslateQuery(rect, t_begin_ms, t_end_ms);
  std::unique_ptr<cluster::ClusterCursor> cursor = cluster_.OpenCursor(
      translated.expr, ToClusterCursorOptions(cursor_options));
  return StCursor(std::move(translated), std::move(cursor));
}

StExplain StStore::Explain(const geo::Rect& rect, int64_t t_begin_ms,
                           int64_t t_end_ms,
                           query::ExplainVerbosity verbosity) const {
  const TranslatedQuery translated =
      approach_.TranslateQuery(rect, t_begin_ms, t_end_ms);
  StExplain explain;
  explain.approach = approach_.name();
  explain.cover_millis = translated.cover_millis;
  explain.num_ranges = translated.num_ranges;
  explain.num_singletons = translated.num_singletons;
  explain.cover_cache_hit = translated.cache_hit;
  explain.cluster = cluster_.Explain(translated.expr, verbosity);
  return explain;
}

Result<uint64_t> StStore::Delete(const geo::Rect& rect, int64_t t_begin_ms,
                                 int64_t t_end_ms) {
  const TranslatedQuery translated =
      approach_.TranslateQuery(rect, t_begin_ms, t_end_ms);
  return cluster_.Delete(translated.expr);
}

StQueryResult StStore::QueryPolygon(const geo::Polygon& polygon,
                                    int64_t t_begin_ms,
                                    int64_t t_end_ms) const {
  StCursorOptions full_drain;
  full_drain.batch_size = 0;
  full_drain.limit = 0;
  return OpenPolygonQuery(polygon, t_begin_ms, t_end_ms, full_drain).Drain();
}

StCursor StStore::OpenPolygonQuery(const geo::Polygon& polygon,
                                   int64_t t_begin_ms, int64_t t_end_ms,
                                   const StCursorOptions& cursor_options) const {
  TranslatedQuery translated =
      approach_.TranslatePolygonQuery(polygon, t_begin_ms, t_end_ms);
  std::unique_ptr<cluster::ClusterCursor> cursor = cluster_.OpenCursor(
      translated.expr, ToClusterCursorOptions(cursor_options));
  return StCursor(std::move(translated), std::move(cursor));
}

}  // namespace stix::st
