#include "st/st_store.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "bson/codec.h"
#include "common/metrics.h"

namespace stix::st {
namespace {

/// Resolves the bucket layout against the approach before anything is
/// constructed from it: the catalog's encoding and the executor's widening
/// must agree on whether points carry a hilbertIndex.
StStoreOptions ResolveOptions(StStoreOptions options) {
  if (options.bucket.has_value()) {
    const ApproachKind kind = options.approach.kind;
    options.bucket->use_hilbert = (kind == ApproachKind::kHil ||
                                   kind == ApproachKind::kHilStar);
    // The executor unpacks buckets behind every query; the balancer weighs
    // chunks by decoded point count instead of (uniformly small) bucket
    // document counts.
    options.cluster.exec.bucket_layout =
        std::make_shared<const storage::BucketLayout>(*options.bucket);
    options.cluster.balancer.weigh_by_points = true;
  }
  return options;
}

}  // namespace

std::string StExplain::ToJson() const {
  char millis[32];
  std::snprintf(millis, sizeof(millis), "%.3f", cover_millis);
  std::ostringstream out;
  out << "{\"approach\": \"" << query::JsonEscape(approach)
      << "\", \"curve\": \"" << query::JsonEscape(curve)
      << "\", \"covering\": {\"coverMillis\": " << millis
      << ", \"numRanges\": " << num_ranges
      << ", \"numSingletons\": " << num_singletons
      << ", \"coverBudget\": " << cover_budget << ", \"cacheHit\": "
      << (cover_cache_hit ? "true" : "false")
      << "}, \"cluster\": " << cluster.ToJson() << "}";
  return out.str();
}

StStore::StStore(const StStoreOptions& options)
    : StStore(ResolveOptions(options), nullptr) {}

StStore::StStore(StStoreOptions resolved,
                 std::unique_ptr<cluster::Cluster> cluster)
    : options_(std::move(resolved)),
      approach_(std::make_shared<const Approach>(options_.approach)),
      cluster_(cluster != nullptr
                   ? std::move(cluster)
                   : std::make_unique<cluster::Cluster>(options_.cluster)),
      id_generator_(options_.cluster.seed ^ 0x1d5ULL) {
  if (options_.bucket.has_value()) {
    catalog_ = std::make_unique<storage::BucketCatalog>(
        *options_.bucket, storage::BucketCatalogOptions{},
        [this](bson::Document bucket) {
          return cluster_->Insert(std::move(bucket));
        });
  }
}

Status StStore::OpenCatalogJournal(bool fresh) {
  const std::string& dir = options_.cluster.durability.data_dir;
  if (dir.empty() || catalog_ == nullptr) return Status::OK();
  Result<std::unique_ptr<storage::WriteAheadLog>> wal =
      storage::WriteAheadLog::Open(dir + "/catalog.wal",
                                   options_.cluster.durability.wal, fresh);
  if (!wal.ok()) return wal.status();
  journal_ = std::move(*wal);
  return Status::OK();
}

Status StStore::Setup() {
  Status s = cluster_->ShardCollection(approach_->shard_key());
  if (!s.ok()) return s;
  // Bucketed stores skip the per-point secondary indexes: stored documents
  // are buckets keyed by window start (and cell base), which the shard-key
  // index already serves; a 2dsphere index over compressed columns would
  // index nothing useful.
  if (bucketed()) return OpenCatalogJournal(/*fresh=*/true);
  for (const index::IndexDescriptor& desc : approach_->secondary_indexes()) {
    s = cluster_->CreateIndex(desc);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status StStore::Insert(bson::Document doc) {
  {
    const std::lock_guard<std::mutex> lock(insert_mu_);
    if (!doc.Has("_id")) {
      const uint32_t load_seconds = static_cast<uint32_t>(
          options_.load_clock_begin_ms / 1000 +
          static_cast<int64_t>(inserted_ /
                               static_cast<uint64_t>(
                                   options_.docs_per_id_second)));
      doc.Append("_id",
                 bson::Value::Id(id_generator_.Generate(load_seconds)));
    }
    ++inserted_;
  }
  // During a reshard the document must fit both layouts: the live approach
  // keys today's routing, the target approach keys the table it will land
  // in after the copy (EnrichDocument is a no-op for baselines).
  std::shared_ptr<const Approach> live, target;
  {
    const std::lock_guard<std::mutex> lock(approach_mu_);
    live = approach_;
    target = reshard_target_;
  }
  Status s = live->EnrichDocument(&doc);
  if (s.ok() && target != nullptr) s = target->EnrichDocument(&doc);
  if (!s.ok()) return s;
  if (catalog_ != nullptr) {
    if (journal_ == nullptr) return catalog_->Add(std::move(doc));
    // Durable bucketed path: the point must be on disk (catalog journal)
    // before it is acknowledged — it may sit in an open in-memory bucket
    // long past this call. journal_mu_ spans journal write AND catalog add
    // so a concurrent FlushBuckets cannot truncate the journal in between.
    const std::lock_guard<std::mutex> lock(journal_mu_);
    const Result<uint64_t> lsn = journal_->Append(
        storage::WalRecordType::kCatalogAdd, 0, bson::EncodeBson(doc));
    if (!lsn.ok()) return lsn.status();
    if (Result<uint64_t> c = journal_->Commit(); !c.ok()) return c.status();
    return catalog_->Add(std::move(doc), *lsn);
  }
  return cluster_->Insert(std::move(doc));
}

Status StStore::FinishLoad() {
  const Status s = FlushBuckets();
  if (!s.ok()) return s;
  cluster_->Balance();
  return Status::OK();
}

Status StStore::FlushBuckets() const {
  if (catalog_ == nullptr) return Status::OK();
  if (journal_ == nullptr) return catalog_->FlushAll();
  const std::lock_guard<std::mutex> lock(journal_mu_);
  if (Status s = catalog_->FlushAll(); !s.ok()) return s;
  // Every journaled point now lives in a flushed bucket, durable in some
  // shard's own WAL — once those are synced the catalog journal is
  // redundant and can be dropped. A dead journal (simulated crash) is left
  // alone so query paths keep working on the in-memory state.
  if (catalog_->points_buffered() != 0 || journal_->dead()) {
    return Status::OK();
  }
  if (Status s = cluster_->SyncWals(); !s.ok()) return s;
  return journal_->Truncate();
}

Status StStore::Checkpoint() {
  if (Status s = FlushBuckets(); !s.ok()) return s;
  return cluster_->Checkpoint();
}

Status StStore::ConfigureZones() {
  return cluster_->SetZonesByBucketAuto(approach().zone_path());
}

Result<std::unique_ptr<StStore>> StStore::Recover(
    const StStoreOptions& options) {
  StStoreOptions resolved = ResolveOptions(options);
  Result<std::unique_ptr<cluster::Cluster>> recovered =
      cluster::RecoverCluster(resolved.cluster);
  if (!recovered.ok()) return recovered.status();
  std::unique_ptr<StStore> store(
      new StStore(std::move(resolved), std::move(*recovered)));

  // Resume the _id load clock past everything that survived, and — on
  // bucketed layouts — collect the journal LSNs already covered by flushed
  // buckets sitting in the shards.
  uint64_t recovered_points = 0;
  std::unordered_set<uint64_t> covered;
  uint64_t max_covered_lsn = 0;
  for (const auto& shard : store->cluster_->shards()) {
    shard->collection().records().ForEach(
        [&](storage::RecordId, const bson::Document& doc) {
          if (!storage::IsBucketDocument(doc)) {
            ++recovered_points;
            return;
          }
          const Result<storage::BucketMeta> meta =
              storage::ParseBucketMeta(doc);
          if (meta.ok()) recovered_points += meta->num_points;
          const bson::Value* lsns = doc.Get(storage::kBucketWalLsnsField);
          if (lsns == nullptr || lsns->type() != bson::Type::kArray) return;
          for (const bson::Value& v : lsns->AsArray()) {
            if (v.type() == bson::Type::kInt64) {
              const uint64_t lsn = static_cast<uint64_t>(v.AsInt64());
              covered.insert(lsn);
              max_covered_lsn = std::max(max_covered_lsn, lsn);
            }
          }
        });
  }

  if (store->catalog_ != nullptr) {
    // Replay the catalog journal: acknowledged points that never reached a
    // flushed bucket re-enter the catalog under their original LSNs (the
    // journal still holds them — it only truncates once fully covered).
    const std::string journal_path =
        store->options_.cluster.durability.data_dir + "/catalog.wal";
    const Result<storage::WalScan> scan = storage::ReadWal(journal_path);
    if (!scan.ok()) return scan.status();
    uint64_t replayed = 0;
    for (const storage::WalRecord& record : scan->committed) {
      if (record.type != storage::WalRecordType::kCatalogAdd) {
        return Status::Corruption("unexpected record type in catalog journal");
      }
      if (covered.count(record.lsn) != 0) continue;
      Result<bson::Document> doc = bson::DecodeBson(record.payload);
      if (!doc.ok()) return doc.status();
      if (Status s = store->catalog_->Add(std::move(*doc), record.lsn);
          !s.ok()) {
        return s;
      }
      ++replayed;
    }
    recovered_points += replayed;
    STIX_METRIC_COUNTER(points, "recovery.catalog_points_replayed");
    points.Increment(replayed);
    if (Status s = store->OpenCatalogJournal(/*fresh=*/false); !s.ok()) {
      return s;
    }
    // The journal may have been truncated (every point covered) right
    // before the crash, which restarts its LSN numbering — but the flushed
    // bucket documents still reference the old LSNs in their wlsns arrays.
    // Lift the counter past everything they cover, or new journal records
    // would reuse covered LSNs and be skipped by the next recovery.
    store->journal_->EnsureLsnPast(max_covered_lsn);
  }

  store->inserted_ = recovered_points;
  return store;
}

StCursor::StCursor(TranslatedQuery translated,
                   std::unique_ptr<cluster::ClusterCursor> cursor)
    : translated_(std::move(translated)), cursor_(std::move(cursor)) {}

StQueryResult StCursor::Summary() const {
  StQueryResult out;
  out.cluster = cursor_->Summary();
  out.translated = translated_;
  return out;
}

StQueryResult StCursor::Drain() {
  StQueryResult out;
  out.cluster = cursor_->Drain();
  out.translated = translated_;
  return out;
}

namespace {

cluster::CursorOptions ToClusterCursorOptions(const StCursorOptions& o) {
  cluster::CursorOptions out;
  out.batch_size = o.batch_size;
  out.limit = o.limit;
  return out;
}

}  // namespace

StQueryResult StStore::Query(const geo::Rect& rect, int64_t t_begin_ms,
                             int64_t t_end_ms) const {
  StCursorOptions full_drain;
  full_drain.batch_size = 0;
  full_drain.limit = 0;
  return OpenQuery(rect, t_begin_ms, t_end_ms, full_drain).Drain();
}

size_t StStore::CoverBudgetFor(const Approach& ap, const geo::Rect& rect,
                               int64_t t_begin_ms, int64_t t_end_ms) const {
  if (!ap.uses_hilbert()) return 0;
  const double time_fraction =
      cluster_->EstimateFraction(kDateField, t_begin_ms, t_end_ms);
  if (time_fraction < 0.0) return ap.PickCoverBudget(-1.0);
  const geo::Rect domain = ap.curve()->grid().domain();
  geo::Rect clipped;
  clipped.lo.lon = std::max(rect.lo.lon, domain.lo.lon);
  clipped.lo.lat = std::max(rect.lo.lat, domain.lo.lat);
  clipped.hi.lon = std::min(rect.hi.lon, domain.hi.lon);
  clipped.hi.lat = std::min(rect.hi.lat, domain.hi.lat);
  const double domain_area = domain.AreaDeg2();
  const double spatial_fraction =
      domain_area > 0.0 ? clipped.AreaDeg2() / domain_area : 1.0;
  return ap.PickCoverBudget(time_fraction * spatial_fraction);
}

StCursor StStore::OpenQuery(const geo::Rect& rect, int64_t t_begin_ms,
                            int64_t t_end_ms,
                            const StCursorOptions& cursor_options) const {
  // Best effort: a failed flush (injected fault) leaves its points
  // buffered for a later retry; the query still sees everything flushed.
  (void)FlushBuckets();
  const std::shared_ptr<const Approach> ap = TranslationApproach();
  TranslatedQuery translated = ap->TranslateQuery(
      rect, t_begin_ms, t_end_ms,
      CoverBudgetFor(*ap, rect, t_begin_ms, t_end_ms));
  std::unique_ptr<cluster::ClusterCursor> cursor = cluster_->OpenCursor(
      translated.expr, ToClusterCursorOptions(cursor_options));
  return StCursor(std::move(translated), std::move(cursor));
}

StExplain StStore::Explain(const geo::Rect& rect, int64_t t_begin_ms,
                           int64_t t_end_ms,
                           query::ExplainVerbosity verbosity) const {
  (void)FlushBuckets();
  const std::shared_ptr<const Approach> ap = TranslationApproach();
  const TranslatedQuery translated = ap->TranslateQuery(
      rect, t_begin_ms, t_end_ms,
      CoverBudgetFor(*ap, rect, t_begin_ms, t_end_ms));
  StExplain explain;
  explain.approach = ap->name();
  if (const auto curve = ap->curve()) explain.curve = curve->name();
  explain.cover_millis = translated.cover_millis;
  explain.num_ranges = translated.num_ranges;
  explain.num_singletons = translated.num_singletons;
  explain.cover_cache_hit = translated.cache_hit;
  explain.cover_budget = translated.cover_budget;
  explain.cluster = cluster_->Explain(translated.expr, verbosity);
  return explain;
}

Result<uint64_t> StStore::Delete(const geo::Rect& rect, int64_t t_begin_ms,
                                 int64_t t_end_ms) {
  const Status s = FlushBuckets();
  if (!s.ok()) return s;
  const std::shared_ptr<const Approach> ap = TranslationApproach();
  const TranslatedQuery translated = ap->TranslateQuery(
      rect, t_begin_ms, t_end_ms,
      CoverBudgetFor(*ap, rect, t_begin_ms, t_end_ms));
  return cluster_->Delete(translated.expr);
}

StQueryResult StStore::QueryPolygon(const geo::Polygon& polygon,
                                    int64_t t_begin_ms,
                                    int64_t t_end_ms) const {
  StCursorOptions full_drain;
  full_drain.batch_size = 0;
  full_drain.limit = 0;
  return OpenPolygonQuery(polygon, t_begin_ms, t_end_ms, full_drain).Drain();
}

StCursor StStore::OpenPolygonQuery(const geo::Polygon& polygon,
                                   int64_t t_begin_ms, int64_t t_end_ms,
                                   const StCursorOptions& cursor_options) const {
  (void)FlushBuckets();
  TranslatedQuery translated =
      TranslationApproach()->TranslatePolygonQuery(polygon, t_begin_ms,
                                                   t_end_ms);
  std::unique_ptr<cluster::ClusterCursor> cursor = cluster_->OpenCursor(
      translated.expr, ToClusterCursorOptions(cursor_options));
  return StCursor(std::move(translated), std::move(cursor));
}

Status StStore::Reshard(ApproachKind to_kind) {
  if (bucketed()) {
    return Status::NotSupported("resharding a bucketed store");
  }
  if (durable()) {
    return Status::NotSupported("resharding a durable store");
  }

  // Build the target approach (and the transition translator) outside the
  // lock — Approach construction builds a Hilbert curve for hil*.
  ApproachConfig next_config = options_.approach;
  next_config.kind = to_kind;
  const auto next = std::make_shared<const Approach>(next_config);
  ApproachConfig bridge_config = options_.approach;
  bridge_config.kind = ApproachKind::kBslTS;
  const auto bridge = std::make_shared<const Approach>(bridge_config);

  {
    const std::lock_guard<std::mutex> lock(approach_mu_);
    if (reshard_target_ != nullptr) {
      return Status::AlreadyExists("a reshard is already in progress");
    }
    if (approach_->kind() == to_kind) {
      return Status::InvalidArgument("store already uses this approach");
    }
    if (approach_->shard_key().paths() == next->shard_key().paths()) {
      return Status::InvalidArgument(
          "new approach shares the current shard key");
    }
    // Install the transition state before the cluster starts migrating:
    // from here every insert is enriched for both layouts and every query
    // translates through the layout-agnostic bridge.
    reshard_target_ = next;
    reshard_translate_ = bridge;
  }

  // The cluster-side enrichment pass only needs to add what the target
  // layout requires and live dual-enriched inserts already carry; baselines
  // need nothing, and a document that already has its hilbertIndex must be
  // reported unmodified so the copier skips the rewrite.
  const cluster::Cluster::ReshardEnrichFn enrich =
      [next](bson::Document* doc) -> Result<bool> {
    if (!next->uses_hilbert()) return false;
    if (doc->Get(kHilbertField) != nullptr) return false;
    if (Status s = next->EnrichDocument(doc); !s.ok()) return s;
    return true;
  };

  const Status s =
      cluster_->Reshard(next->shard_key(), next->secondary_indexes(), enrich);

  const std::lock_guard<std::mutex> lock(approach_mu_);
  if (s.ok()) {
    retired_approaches_.push_back(approach_);
    approach_ = next;
    options_.approach.kind = to_kind;
    reshard_target_ = nullptr;
    reshard_translate_ = nullptr;
    return s;
  }
  // A failure after the routing flip leaves the cluster permanently
  // broadcasting with documents under either layout — keep the dual
  // enrichment and the bridge translator, which stay correct there. A
  // pre-flip failure unwound cleanly, so drop the transition state.
  if (!cluster_->resharding()) {
    reshard_target_ = nullptr;
    reshard_translate_ = nullptr;
  }
  return s;
}

std::optional<double> StStore::MinBucketDistanceM(geo::Point center,
                                                  int64_t t_begin_ms,
                                                  int64_t t_end_ms) const {
  if (catalog_ == nullptr) return std::nullopt;
  (void)FlushBuckets();
  const storage::BucketLayout& layout = *options_.bucket;

  // Bucket-level time window: stored documents carry window starts, so the
  // lower bound widens by window_ms - 1 (Router::RoutingExpr's rewrite,
  // phrased directly since this cursor streams raw buckets).
  query::ExprPtr expr = query::MakeAnd(
      {query::MakeCmp(layout.time_field, query::CmpOp::kGte,
                      bson::Value::DateTime(t_begin_ms - layout.window_ms + 1)),
       query::MakeCmp(layout.time_field, query::CmpOp::kLte,
                      bson::Value::DateTime(t_end_ms))});

  cluster::CursorOptions cursor_options;
  cursor_options.batch_size = 0;
  cursor_options.raw_buckets = true;
  std::unique_ptr<cluster::ClusterCursor> cursor =
      cluster_->OpenCursor(expr, cursor_options);

  std::optional<double> best;
  while (!cursor->exhausted()) {
    for (const bson::Document& doc : cursor->NextBatch()) {
      Result<storage::BucketMeta> meta = storage::ParseBucketMeta(doc);
      if (!meta.ok()) continue;  // non-bucket stragglers contribute nothing
      if (meta->max_ts < t_begin_ms || meta->min_ts > t_end_ms) continue;
      if (!meta->has_mbr) return 0.0;  // unknown extent: no useful bound
      const geo::Point closest{
          std::clamp(center.lon, meta->mbr.lo.lon, meta->mbr.hi.lon),
          std::clamp(center.lat, meta->mbr.lo.lat, meta->mbr.hi.lat)};
      const double d = geo::HaversineMeters(center, closest);
      if (!best.has_value() || d < *best) best = d;
      if (*best == 0.0) return best;  // cannot improve on zero
    }
  }
  return best;
}

}  // namespace stix::st
