#include "st/st_store.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

namespace stix::st {
namespace {

/// Resolves the bucket layout against the approach before anything is
/// constructed from it: the catalog's encoding and the executor's widening
/// must agree on whether points carry a hilbertIndex.
StStoreOptions ResolveOptions(StStoreOptions options) {
  if (options.bucket.has_value()) {
    const ApproachKind kind = options.approach.kind;
    options.bucket->use_hilbert = (kind == ApproachKind::kHil ||
                                   kind == ApproachKind::kHilStar);
    // The executor unpacks buckets behind every query; the balancer weighs
    // chunks by decoded point count instead of (uniformly small) bucket
    // document counts.
    options.cluster.exec.bucket_layout =
        std::make_shared<const storage::BucketLayout>(*options.bucket);
    options.cluster.balancer.weigh_by_points = true;
  }
  return options;
}

}  // namespace

std::string StExplain::ToJson() const {
  char millis[32];
  std::snprintf(millis, sizeof(millis), "%.3f", cover_millis);
  std::ostringstream out;
  out << "{\"approach\": \"" << query::JsonEscape(approach)
      << "\", \"covering\": {\"coverMillis\": " << millis
      << ", \"numRanges\": " << num_ranges
      << ", \"numSingletons\": " << num_singletons
      << ", \"coverBudget\": " << cover_budget << ", \"cacheHit\": "
      << (cover_cache_hit ? "true" : "false")
      << "}, \"cluster\": " << cluster.ToJson() << "}";
  return out.str();
}

StStore::StStore(const StStoreOptions& options)
    : options_(ResolveOptions(options)),
      approach_(options_.approach),
      cluster_(options_.cluster),
      id_generator_(options_.cluster.seed ^ 0x1d5ULL) {
  if (options_.bucket.has_value()) {
    catalog_ = std::make_unique<storage::BucketCatalog>(
        *options_.bucket, storage::BucketCatalogOptions{},
        [this](bson::Document bucket) {
          return cluster_.Insert(std::move(bucket));
        });
  }
}

Status StStore::Setup() {
  Status s = cluster_.ShardCollection(approach_.shard_key());
  if (!s.ok()) return s;
  // Bucketed stores skip the per-point secondary indexes: stored documents
  // are buckets keyed by window start (and cell base), which the shard-key
  // index already serves; a 2dsphere index over compressed columns would
  // index nothing useful.
  if (bucketed()) return Status::OK();
  for (const index::IndexDescriptor& desc : approach_.secondary_indexes()) {
    s = cluster_.CreateIndex(desc);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status StStore::Insert(bson::Document doc) {
  {
    const std::lock_guard<std::mutex> lock(insert_mu_);
    if (!doc.Has("_id")) {
      const uint32_t load_seconds = static_cast<uint32_t>(
          options_.load_clock_begin_ms / 1000 +
          static_cast<int64_t>(inserted_ /
                               static_cast<uint64_t>(
                                   options_.docs_per_id_second)));
      doc.Append("_id",
                 bson::Value::Id(id_generator_.Generate(load_seconds)));
    }
    ++inserted_;
  }
  const Status s = approach_.EnrichDocument(&doc);
  if (!s.ok()) return s;
  if (catalog_ != nullptr) return catalog_->Add(std::move(doc));
  return cluster_.Insert(std::move(doc));
}

Status StStore::FinishLoad() {
  const Status s = FlushBuckets();
  if (!s.ok()) return s;
  cluster_.Balance();
  return Status::OK();
}

Status StStore::FlushBuckets() const {
  if (catalog_ == nullptr) return Status::OK();
  return catalog_->FlushAll();
}

Status StStore::ConfigureZones() {
  return cluster_.SetZonesByBucketAuto(approach_.zone_path());
}

StCursor::StCursor(TranslatedQuery translated,
                   std::unique_ptr<cluster::ClusterCursor> cursor)
    : translated_(std::move(translated)), cursor_(std::move(cursor)) {}

StQueryResult StCursor::Summary() const {
  StQueryResult out;
  out.cluster = cursor_->Summary();
  out.translated = translated_;
  return out;
}

StQueryResult StCursor::Drain() {
  StQueryResult out;
  out.cluster = cursor_->Drain();
  out.translated = translated_;
  return out;
}

namespace {

cluster::CursorOptions ToClusterCursorOptions(const StCursorOptions& o) {
  cluster::CursorOptions out;
  out.batch_size = o.batch_size;
  out.limit = o.limit;
  return out;
}

}  // namespace

StQueryResult StStore::Query(const geo::Rect& rect, int64_t t_begin_ms,
                             int64_t t_end_ms) const {
  StCursorOptions full_drain;
  full_drain.batch_size = 0;
  full_drain.limit = 0;
  return OpenQuery(rect, t_begin_ms, t_end_ms, full_drain).Drain();
}

size_t StStore::CoverBudgetFor(const geo::Rect& rect, int64_t t_begin_ms,
                               int64_t t_end_ms) const {
  if (!approach_.uses_hilbert()) return 0;
  const double time_fraction =
      cluster_.EstimateFraction(kDateField, t_begin_ms, t_end_ms);
  if (time_fraction < 0.0) return approach_.PickCoverBudget(-1.0);
  const geo::Rect& domain = approach_.hilbert()->grid().domain();
  geo::Rect clipped;
  clipped.lo.lon = std::max(rect.lo.lon, domain.lo.lon);
  clipped.lo.lat = std::max(rect.lo.lat, domain.lo.lat);
  clipped.hi.lon = std::min(rect.hi.lon, domain.hi.lon);
  clipped.hi.lat = std::min(rect.hi.lat, domain.hi.lat);
  const double domain_area = domain.AreaDeg2();
  const double spatial_fraction =
      domain_area > 0.0 ? clipped.AreaDeg2() / domain_area : 1.0;
  return approach_.PickCoverBudget(time_fraction * spatial_fraction);
}

StCursor StStore::OpenQuery(const geo::Rect& rect, int64_t t_begin_ms,
                            int64_t t_end_ms,
                            const StCursorOptions& cursor_options) const {
  // Best effort: a failed flush (injected fault) leaves its points
  // buffered for a later retry; the query still sees everything flushed.
  (void)FlushBuckets();
  TranslatedQuery translated =
      approach_.TranslateQuery(rect, t_begin_ms, t_end_ms,
                               CoverBudgetFor(rect, t_begin_ms, t_end_ms));
  std::unique_ptr<cluster::ClusterCursor> cursor = cluster_.OpenCursor(
      translated.expr, ToClusterCursorOptions(cursor_options));
  return StCursor(std::move(translated), std::move(cursor));
}

StExplain StStore::Explain(const geo::Rect& rect, int64_t t_begin_ms,
                           int64_t t_end_ms,
                           query::ExplainVerbosity verbosity) const {
  (void)FlushBuckets();
  const TranslatedQuery translated =
      approach_.TranslateQuery(rect, t_begin_ms, t_end_ms,
                               CoverBudgetFor(rect, t_begin_ms, t_end_ms));
  StExplain explain;
  explain.approach = approach_.name();
  explain.cover_millis = translated.cover_millis;
  explain.num_ranges = translated.num_ranges;
  explain.num_singletons = translated.num_singletons;
  explain.cover_cache_hit = translated.cache_hit;
  explain.cover_budget = translated.cover_budget;
  explain.cluster = cluster_.Explain(translated.expr, verbosity);
  return explain;
}

Result<uint64_t> StStore::Delete(const geo::Rect& rect, int64_t t_begin_ms,
                                 int64_t t_end_ms) {
  const Status s = FlushBuckets();
  if (!s.ok()) return s;
  const TranslatedQuery translated =
      approach_.TranslateQuery(rect, t_begin_ms, t_end_ms,
                               CoverBudgetFor(rect, t_begin_ms, t_end_ms));
  return cluster_.Delete(translated.expr);
}

StQueryResult StStore::QueryPolygon(const geo::Polygon& polygon,
                                    int64_t t_begin_ms,
                                    int64_t t_end_ms) const {
  StCursorOptions full_drain;
  full_drain.batch_size = 0;
  full_drain.limit = 0;
  return OpenPolygonQuery(polygon, t_begin_ms, t_end_ms, full_drain).Drain();
}

StCursor StStore::OpenPolygonQuery(const geo::Polygon& polygon,
                                   int64_t t_begin_ms, int64_t t_end_ms,
                                   const StCursorOptions& cursor_options) const {
  (void)FlushBuckets();
  TranslatedQuery translated =
      approach_.TranslatePolygonQuery(polygon, t_begin_ms, t_end_ms);
  std::unique_ptr<cluster::ClusterCursor> cursor = cluster_.OpenCursor(
      translated.expr, ToClusterCursorOptions(cursor_options));
  return StCursor(std::move(translated), std::move(cursor));
}

std::optional<double> StStore::MinBucketDistanceM(geo::Point center,
                                                  int64_t t_begin_ms,
                                                  int64_t t_end_ms) const {
  if (catalog_ == nullptr) return std::nullopt;
  (void)FlushBuckets();
  const storage::BucketLayout& layout = *options_.bucket;

  // Bucket-level time window: stored documents carry window starts, so the
  // lower bound widens by window_ms - 1 (Router::RoutingExpr's rewrite,
  // phrased directly since this cursor streams raw buckets).
  query::ExprPtr expr = query::MakeAnd(
      {query::MakeCmp(layout.time_field, query::CmpOp::kGte,
                      bson::Value::DateTime(t_begin_ms - layout.window_ms + 1)),
       query::MakeCmp(layout.time_field, query::CmpOp::kLte,
                      bson::Value::DateTime(t_end_ms))});

  cluster::CursorOptions cursor_options;
  cursor_options.batch_size = 0;
  cursor_options.raw_buckets = true;
  std::unique_ptr<cluster::ClusterCursor> cursor =
      cluster_.OpenCursor(expr, cursor_options);

  std::optional<double> best;
  while (!cursor->exhausted()) {
    for (const bson::Document& doc : cursor->NextBatch()) {
      Result<storage::BucketMeta> meta = storage::ParseBucketMeta(doc);
      if (!meta.ok()) continue;  // non-bucket stragglers contribute nothing
      if (meta->max_ts < t_begin_ms || meta->min_ts > t_end_ms) continue;
      if (!meta->has_mbr) return 0.0;  // unknown extent: no useful bound
      const geo::Point closest{
          std::clamp(center.lon, meta->mbr.lo.lon, meta->mbr.hi.lon),
          std::clamp(center.lat, meta->mbr.lo.lat, meta->mbr.hi.lat)};
      const double d = geo::HaversineMeters(center, closest);
      if (!best.has_value() || d < *best) best = d;
      if (*best == 0.0) return best;  // cannot improve on zero
    }
  }
  return best;
}

}  // namespace stix::st
