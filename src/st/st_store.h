#ifndef STIX_ST_ST_STORE_H_
#define STIX_ST_ST_STORE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "bson/object_id.h"
#include "cluster/cluster.h"
#include "st/approach.h"
#include "storage/bucket_catalog.h"
#include "storage/wal.h"

namespace stix::st {

/// StStore configuration: an approach plus the cluster deployment.
struct StStoreOptions {
  ApproachConfig approach;
  cluster::ClusterOptions cluster;
  /// Bucketed time-series collection layout: when set, inserts buffer into
  /// a BucketCatalog and the cluster stores one compressed bucket document
  /// per (vehicle, time window) instead of one document per point. Queries
  /// answer identically to the row layout (the executor unpacks buckets
  /// behind a BUCKET_UNPACK stage); `use_hilbert` is derived from the
  /// approach, so leave it defaulted.
  std::optional<storage::BucketLayout> bucket;
  /// _id generation: the load clock starts here and advances one second per
  /// `docs_per_id_second` inserts — the driver-side ObjectId timestamps the
  /// paper's A.3 prefix-compression analysis depends on.
  int64_t load_clock_begin_ms = 1538352000000;  // 2018-10-01T00:00:00Z
  int docs_per_id_second = 128;
};

/// Result of one spatio-temporal query at cluster level.
struct StQueryResult {
  cluster::ClusterQueryResult cluster;
  TranslatedQuery translated;
};

/// Approach-aware explain: the cluster execution tree plus the translation
/// cost the cluster cannot see — which approach phrased the query, how long
/// the curve covering took, how wide it came out, and whether it was served
/// from the covering cache. The paper's Table 8 separates exactly this cost
/// from execution time.
struct StExplain {
  std::string approach;  ///< ApproachName of the translating approach.
  std::string curve;     ///< Curve2D::name() of the curve; "" for baselines.
  double cover_millis = 0.0;
  size_t num_ranges = 0;
  size_t num_singletons = 0;
  bool cover_cache_hit = false;
  /// Covering budget the translation ran under (0 = exact covering).
  size_t cover_budget = 0;
  cluster::ClusterExplain cluster;

  /// {"approach": .., "covering": {..}, "cluster": <ClusterExplain>}.
  std::string ToJson() const;
};

/// Cursor knobs for StStore::OpenQuery (the spatio-temporal face of
/// cluster::CursorOptions).
struct StCursorOptions {
  /// Documents per shard per getMore round; 0 = single unbounded round.
  size_t batch_size = 101;
  /// Total documents to produce; 0 = unlimited. Pushed down to every shard
  /// executor, which is what lets kNN probes stop at a candidate budget.
  uint64_t limit = 0;
};

/// A streaming spatio-temporal query: the approach's translated expression
/// driven through a cluster cursor. Batches are owned documents; Summary()
/// carries the paper's four metrics plus the covering-translation stats.
class StCursor {
 public:
  StCursor(StCursor&&) = default;
  StCursor& operator=(StCursor&&) = default;

  /// Next merged batch; empty means exhausted.
  std::vector<bson::Document> NextBatch() { return cursor_->NextBatch(); }

  bool exhausted() const { return cursor_->exhausted(); }

  /// Metrics so far (docs left empty — batches own the documents).
  StQueryResult Summary() const;

  /// Drains the remaining stream into a full StQueryResult (docs filled).
  StQueryResult Drain();

  const TranslatedQuery& translated() const { return translated_; }

 private:
  friend class StStore;
  StCursor(TranslatedQuery translated,
           std::unique_ptr<cluster::ClusterCursor> cursor);

  TranslatedQuery translated_;
  std::unique_ptr<cluster::ClusterCursor> cursor_;
};

/// The paper's system: a sharded document store set up for one of the four
/// approaches, exposing spatio-temporal load and query operations.
///
///   StStoreOptions opts;
///   opts.approach.kind = ApproachKind::kHil;
///   StStore store(opts);
///   store.Setup();
///   store.Insert(doc);            // doc has location + date fields
///   store.FinishLoad();
///   auto res = store.Query(rect, t0, t1);
class StStore {
 public:
  explicit StStore(const StStoreOptions& options);

  /// The live approach. The returned reference stays valid across a
  /// Reshard() (superseded approaches are retired, never destroyed), but
  /// names the store's layout only as of the call.
  const Approach& approach() const {
    const std::lock_guard<std::mutex> lock(approach_mu_);
    return *approach_;
  }
  cluster::Cluster& cluster() { return *cluster_; }
  const cluster::Cluster& cluster() const { return *cluster_; }

  /// The cluster's long-lived executor pool; every query fan-out reuses its
  /// warm threads (no per-query thread creation anywhere in the store).
  ThreadPool& exec_pool() const { return cluster_->exec_pool(); }

  /// Shards the collection and creates the approach's indexes. On a durable
  /// store (cluster.durability.data_dir set) this also attaches the
  /// per-shard WALs, the config journal and — for bucketed layouts — the
  /// catalog journal at `<data_dir>/catalog.wal`, all starting fresh.
  Status Setup();

  /// Reopens a durable store from its data directory after a crash or a
  /// clean shutdown: recovers the cluster (config journal, per-shard
  /// checkpoints + WAL replay, orphan sweep), then — for bucketed layouts —
  /// replays the catalog journal, re-buffering every acknowledged point
  /// that never reached a flushed bucket. `options` must match the ones the
  /// store was Setup() with (approach, layout, data_dir).
  static Result<std::unique_ptr<StStore>> Recover(
      const StStoreOptions& options);

  /// Durable stores: flushes buffered buckets, persists every shard's data
  /// as a checkpoint (truncating its WAL) and compacts the config journal.
  /// No-op (OK) otherwise.
  Status Checkpoint();

  /// True when writes are journaled (Setup saw a durability.data_dir).
  bool durable() const { return cluster_->durable(); }

  /// Adds _id (driver-style) and hilbertIndex (if applicable), then routes
  /// the insert.
  Status Insert(bson::Document doc);

  /// Final balancer pass after bulk load.
  Status FinishLoad();

  /// Applies the approach's zone configuration ($bucketAuto equi-count
  /// ranges on the zone path, one zone per shard) and migrates.
  Status ConfigureZones();

  /// Spatio-temporal range query: rectangle + closed time interval (millis).
  /// Implemented as OpenQuery + drain, so it is byte-identical to consuming
  /// the cursor yourself.
  StQueryResult Query(const geo::Rect& rect, int64_t t_begin_ms,
                      int64_t t_end_ms) const;

  /// Streaming variant of Query: returns a cursor over the same translated
  /// expression. The cursor borrows the cluster — consume it before
  /// mutating the store.
  StCursor OpenQuery(const geo::Rect& rect, int64_t t_begin_ms,
                     int64_t t_end_ms,
                     const StCursorOptions& cursor_options = {}) const;

  /// Structured explain of a spatio-temporal range query: translates the
  /// rect/time window through the approach (advancing the covering cache
  /// like a normal query), executes it once with per-stage timing, and
  /// returns the full tree with the translation cost attached.
  StExplain Explain(const geo::Rect& rect, int64_t t_begin_ms,
                    int64_t t_end_ms,
                    query::ExplainVerbosity verbosity =
                        query::ExplainVerbosity::kExecStats) const;

  /// Polygon + closed time interval — complex geometries over the same
  /// indexing/sharding machinery (paper future work, Section 6).
  StQueryResult QueryPolygon(const geo::Polygon& polygon, int64_t t_begin_ms,
                             int64_t t_end_ms) const;

  /// Streaming variant of QueryPolygon.
  StCursor OpenPolygonQuery(const geo::Polygon& polygon, int64_t t_begin_ms,
                            int64_t t_end_ms,
                            const StCursorOptions& cursor_options = {}) const;

  /// Deletes every document in the rectangle/time window (data retention:
  /// the motivating fleet operators age out old positions). Returns the
  /// number of documents removed.
  Result<uint64_t> Delete(const geo::Rect& rect, int64_t t_begin_ms,
                          int64_t t_end_ms);

  /// Live approach migration: reshards the populated cluster onto
  /// `to_kind`'s shard key (Cluster::Reshard — enrichment, new indexes,
  /// chunk-by-chunk copy) while queries and writers keep running, then
  /// swaps the store's approach. During the transition, inserts are
  /// enriched for both layouts and queries translate baseline-style
  /// (spatial + time predicates only — correct on either layout, at
  /// broadcast cost). The target must use a different shard key than the
  /// current approach (bsl* <-> hil*); same-key migrations return
  /// InvalidArgument, bucketed/durable stores NotSupported, and a second
  /// concurrent call AlreadyExists.
  Status Reshard(ApproachKind to_kind);

  /// True while a Reshard() is migrating data (queries broadcast).
  bool resharding() const {
    const std::lock_guard<std::mutex> lock(approach_mu_);
    return reshard_target_ != nullptr;
  }

  /// True when the store uses the bucketed collection layout.
  bool bucketed() const { return catalog_ != nullptr; }

  /// The write-path bucket catalog (nullptr for row stores). Exposed for
  /// tests and the fuzz harness, which flush explicitly around fail points.
  storage::BucketCatalog* bucket_catalog() const { return catalog_.get(); }

  /// Seals and flushes every buffered bucket so readers see all points.
  /// No-op (OK) for row stores. Query paths call this implicitly.
  Status FlushBuckets() const;

  /// Bucketed stores only: the smallest great-circle distance from `center`
  /// to any bucket MBR whose time extent overlaps the closed interval — a
  /// lower bound on the distance to any stored point there. Scans bucket
  /// metadata only (no column decompression). nullopt for row stores or
  /// when no bucket overlaps the window. kNN seeds its first ring from it.
  std::optional<double> MinBucketDistanceM(geo::Point center,
                                           int64_t t_begin_ms,
                                           int64_t t_end_ms) const;

 private:
  /// Recovery path: `cluster` was rebuilt by cluster::RecoverCluster;
  /// `resolved` already went through ResolveOptions.
  StStore(StStoreOptions resolved, std::unique_ptr<cluster::Cluster> cluster);

  /// Opens (or reopens) the catalog journal for a durable bucketed store;
  /// no-op for row layouts or non-durable stores.
  Status OpenCatalogJournal(bool fresh);

  /// Covering budget for one rect/time query (0 = exact covering): combines
  /// the cluster's histogram estimate of the time window's selectivity with
  /// the rect's area share of the curve domain (uniformity assumption —
  /// only steers coarse-vs-exact covering, never correctness) and lets the
  /// approach pick. Unknown selectivity (no histograms yet) stays exact.
  /// `ap` is the approach about to translate the query.
  size_t CoverBudgetFor(const Approach& ap, const geo::Rect& rect,
                        int64_t t_begin_ms, int64_t t_end_ms) const;

  /// The approach that should translate queries right now: the transition
  /// translator while a reshard is in flight, the live approach otherwise.
  std::shared_ptr<const Approach> TranslationApproach() const {
    const std::lock_guard<std::mutex> lock(approach_mu_);
    return reshard_translate_ != nullptr ? reshard_translate_ : approach_;
  }

  StStoreOptions options_;
  /// The live approach plus the reshard transition state, all under
  /// approach_mu_. Superseded approaches move to retired_approaches_ so
  /// references handed out by approach() never dangle.
  mutable std::mutex approach_mu_;
  std::shared_ptr<const Approach> approach_;
  /// Non-null while a Reshard() runs: the approach being migrated to
  /// (inserts enrich for it in addition to the live approach).
  std::shared_ptr<const Approach> reshard_target_;
  /// Non-null while a Reshard() runs: a baseline-config translator whose
  /// predicates (spatial + time only) are correct on either layout.
  std::shared_ptr<const Approach> reshard_translate_;
  std::vector<std::shared_ptr<const Approach>> retired_approaches_;
  /// Owned pointer (not a value) so Recover can hand over a cluster rebuilt
  /// by cluster::RecoverCluster — Cluster itself is not movable.
  std::unique_ptr<cluster::Cluster> cluster_;
  /// Buffers live inserts into open buckets; flush hands encoded bucket
  /// documents to cluster_->Insert. Declared after cluster_ (the flush
  /// callback captures it) and null for row stores.
  std::unique_ptr<storage::BucketCatalog> catalog_;
  /// Durable bucketed stores: every point is journaled here (kCatalogAdd)
  /// before it is acknowledged, closing the durability gap while the point
  /// sits in an open in-memory bucket. Truncated once every buffered point
  /// has reached a flushed bucket inside some shard's own WAL/checkpoint.
  std::unique_ptr<storage::WriteAheadLog> journal_;
  /// Orders (journal append+commit, catalog add) pairs against the
  /// flush-then-truncate sequence in FlushBuckets — without it a point
  /// could be journaled, buffered, and lost to a concurrent truncate.
  /// Nests outside the catalog mutex (and therefore outside shard locks).
  mutable std::mutex journal_mu_;
  // Guards the driver-side _id clock (id_generator_ + inserted_) so
  // concurrent writers draw unique ObjectIds; the cluster handles its own
  // locking downstream.
  std::mutex insert_mu_;
  bson::ObjectIdGenerator id_generator_;
  uint64_t inserted_ = 0;
};

}  // namespace stix::st

#endif  // STIX_ST_ST_STORE_H_
