#ifndef STIX_ST_ST_STORE_H_
#define STIX_ST_ST_STORE_H_

#include <memory>

#include "bson/object_id.h"
#include "cluster/cluster.h"
#include "st/approach.h"

namespace stix::st {

/// StStore configuration: an approach plus the cluster deployment.
struct StStoreOptions {
  ApproachConfig approach;
  cluster::ClusterOptions cluster;
  /// _id generation: the load clock starts here and advances one second per
  /// `docs_per_id_second` inserts — the driver-side ObjectId timestamps the
  /// paper's A.3 prefix-compression analysis depends on.
  int64_t load_clock_begin_ms = 1538352000000;  // 2018-10-01T00:00:00Z
  int docs_per_id_second = 128;
};

/// Result of one spatio-temporal query at cluster level.
struct StQueryResult {
  cluster::ClusterQueryResult cluster;
  TranslatedQuery translated;
};

/// The paper's system: a sharded document store set up for one of the four
/// approaches, exposing spatio-temporal load and query operations.
///
///   StStoreOptions opts;
///   opts.approach.kind = ApproachKind::kHil;
///   StStore store(opts);
///   store.Setup();
///   store.Insert(doc);            // doc has location + date fields
///   store.FinishLoad();
///   auto res = store.Query(rect, t0, t1);
class StStore {
 public:
  explicit StStore(const StStoreOptions& options);

  const Approach& approach() const { return approach_; }
  cluster::Cluster& cluster() { return cluster_; }
  const cluster::Cluster& cluster() const { return cluster_; }

  /// The cluster's long-lived executor pool; every query fan-out reuses its
  /// warm threads (no per-query thread creation anywhere in the store).
  ThreadPool& exec_pool() const { return cluster_.exec_pool(); }

  /// Shards the collection and creates the approach's indexes.
  Status Setup();

  /// Adds _id (driver-style) and hilbertIndex (if applicable), then routes
  /// the insert.
  Status Insert(bson::Document doc);

  /// Final balancer pass after bulk load.
  Status FinishLoad();

  /// Applies the approach's zone configuration ($bucketAuto equi-count
  /// ranges on the zone path, one zone per shard) and migrates.
  Status ConfigureZones();

  /// Spatio-temporal range query: rectangle + closed time interval (millis).
  StQueryResult Query(const geo::Rect& rect, int64_t t_begin_ms,
                      int64_t t_end_ms) const;

  /// Polygon + closed time interval — complex geometries over the same
  /// indexing/sharding machinery (paper future work, Section 6).
  StQueryResult QueryPolygon(const geo::Polygon& polygon, int64_t t_begin_ms,
                             int64_t t_end_ms) const;

  /// Deletes every document in the rectangle/time window (data retention:
  /// the motivating fleet operators age out old positions). Returns the
  /// number of documents removed.
  Result<uint64_t> Delete(const geo::Rect& rect, int64_t t_begin_ms,
                          int64_t t_end_ms);

 private:
  StStoreOptions options_;
  Approach approach_;
  cluster::Cluster cluster_;
  bson::ObjectIdGenerator id_generator_;
  uint64_t inserted_ = 0;
};

}  // namespace stix::st

#endif  // STIX_ST_ST_STORE_H_
