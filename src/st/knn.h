#ifndef STIX_ST_KNN_H_
#define STIX_ST_KNN_H_

#include <vector>

#include "st/st_store.h"

namespace stix::st {

/// k-nearest-neighbour search options.
struct KnnOptions {
  size_t k = 10;
  /// First search ring radius; doubles on each expansion.
  double initial_radius_m = 250.0;
  /// Give up (return what was found) after this many doublings.
  int max_expansions = 16;
};

/// One kNN answer: a matching document and its great-circle distance.
struct Neighbor {
  bson::Document doc;
  double distance_m = 0.0;
};

/// kNN outcome plus the cost of the expanding search.
struct KnnResult {
  std::vector<Neighbor> neighbors;  ///< Ascending distance, `<= k` entries.
  int expansions = 0;               ///< Radius doublings performed.
  int queries_issued = 0;
  uint64_t total_keys_examined = 0;
};

/// Finds the k documents nearest to `center` among those within the closed
/// time interval, by expanding-ring range queries over the store (the
/// classic space-filling-curve kNN recipe, here an extension on top of the
/// paper's range-query machinery):
/// a square of half-width r is queried; the answer is final once at least k
/// candidates lie within distance r (no point outside the square can be
/// closer). Otherwise r doubles.
KnnResult KnnQuery(const StStore& store, geo::Point center,
                   int64_t t_begin_ms, int64_t t_end_ms,
                   const KnnOptions& options = {});

}  // namespace stix::st

#endif  // STIX_ST_KNN_H_
