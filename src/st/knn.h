#ifndef STIX_ST_KNN_H_
#define STIX_ST_KNN_H_

#include <vector>

#include "st/st_store.h"

namespace stix::st {

/// k-nearest-neighbour search options.
struct KnnOptions {
  size_t k = 10;
  /// First search ring radius; doubles on each expansion.
  double initial_radius_m = 250.0;
  /// Give up (return what was found) after this many doublings.
  int max_expansions = 16;
  /// Documents pulled per shard per getMore while streaming a ring probe.
  size_t batch_size = 256;
  /// Bucketed stores only: seed the first ring radius from the distance to
  /// the nearest bucket MBR overlapping the time window (a metadata-only
  /// scan, no column decompression). Enlarging the first ring never skips a
  /// neighbour — no point can lie closer than its bucket's MBR — it only
  /// skips ring probes that provably return nothing. No-op on row stores.
  bool seed_from_buckets = true;
  /// Candidate budget per ring probe, pushed down the cursor stack as a
  /// limit: the probe's shard executors stop as soon as this many
  /// candidates have been produced. 0 (default) keeps the search exact; a
  /// non-zero budget makes it approximate — a ring that hits the budget may
  /// miss closer points it never pulled — in exchange for bounded per-probe
  /// work (the top-k early-termination the streaming stack exists for).
  uint64_t candidate_budget = 0;
};

/// One kNN answer: a matching document and its great-circle distance.
struct Neighbor {
  bson::Document doc;
  double distance_m = 0.0;
};

/// kNN outcome plus the cost of the expanding search.
struct KnnResult {
  std::vector<Neighbor> neighbors;  ///< Ascending distance, `<= k` entries.
  int expansions = 0;               ///< Radius doublings performed.
  int queries_issued = 0;
  uint64_t total_keys_examined = 0;
  /// Ring-probe documents that reached the merger across all rounds. The
  /// search streams each probe and keeps only the best k, so this bounds
  /// transient memory at k + one batch per shard regardless of ring size.
  uint64_t candidates_examined = 0;
};

/// Finds the k documents nearest to `center` among those within the closed
/// time interval, by expanding-ring range queries over the store (the
/// classic space-filling-curve kNN recipe, here an extension on top of the
/// paper's range-query machinery):
/// a square of half-width r is queried; the answer is final once at least k
/// candidates lie within distance r (no point outside the square can be
/// closer). Otherwise r doubles.
KnnResult KnnQuery(const StStore& store, geo::Point center,
                   int64_t t_begin_ms, int64_t t_end_ms,
                   const KnnOptions& options = {});

}  // namespace stix::st

#endif  // STIX_ST_KNN_H_
