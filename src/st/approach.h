#ifndef STIX_ST_APPROACH_H_
#define STIX_ST_APPROACH_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/chunk.h"
#include "geo/covering.h"
#include "geo/hilbert.h"
#include "index/index_descriptor.h"
#include "query/expression.h"

namespace stix::st {

/// Field names of the paper's document schema.
inline constexpr char kLocationField[] = "location";
inline constexpr char kDateField[] = "date";
inline constexpr char kHilbertField[] = "hilbertIndex";

/// The four evaluated methods (paper Section 5.1, "Methodology").
enum class ApproachKind {
  kBslST,    ///< Shard on {date}; compound index {location 2dsphere, date}.
  kBslTS,    ///< Shard on {date}; compound index {date, location 2dsphere}.
  kHil,      ///< hilbertIndex over the globe; shard {hilbertIndex, date}.
  kHilStar,  ///< hilbertIndex over the dataset MBR; shard {hilbertIndex, date}.
};

const char* ApproachName(ApproachKind kind);

/// Tunables shared by the approaches.
struct ApproachConfig {
  ApproachKind kind = ApproachKind::kHil;
  /// Hilbert curve bits per dimension (paper: 13, matching the 26 total bits
  /// of the 2dsphere GeoHash).
  int hilbert_order = 13;
  /// 2dsphere GeoHash precision in total bits (MongoDB default 26).
  int geohash_bits = 26;
  /// MBR of the data set; only consulted by kHilStar.
  geo::Rect dataset_mbr = geo::GlobeRect();
};

/// A spatio-temporal range query translated into the store's match language,
/// plus the cost of the curve-covering step (reported separately by the
/// paper's Table 8 and excluded from its execution-time figures).
struct TranslatedQuery {
  query::ExprPtr expr;
  double cover_millis = 0.0;  ///< Time spent in CoverRect (0 for baselines).
  size_t num_ranges = 0;      ///< Width->1 ranges in the $or.
  size_t num_singletons = 0;  ///< Cells that went into the $in.
};

/// Strategy object tying together everything one approach defines: how to
/// shard, which indexes to build, how to enrich documents, how to phrase
/// queries, and which field zones are keyed on (paper Section 4).
class Approach {
 public:
  explicit Approach(const ApproachConfig& config);

  const ApproachConfig& config() const { return config_; }
  ApproachKind kind() const { return config_.kind; }
  const char* name() const { return ApproachName(config_.kind); }
  bool uses_hilbert() const {
    return config_.kind == ApproachKind::kHil ||
           config_.kind == ApproachKind::kHilStar;
  }

  /// Shard key ({date} for baselines, {hilbertIndex, date} for Hilbert).
  cluster::ShardKeyPattern shard_key() const;

  /// Secondary indexes beyond the shard-key and _id indexes (the baselines'
  /// compound 2dsphere index; none for the Hilbert approaches).
  std::vector<index::IndexDescriptor> secondary_indexes() const;

  /// Adds the hilbertIndex field for Hilbert approaches; no-op otherwise.
  /// Fails if the location field is not a GeoJSON point.
  Status EnrichDocument(bson::Document* doc) const;

  /// Rect + closed time interval -> the approach's query document
  /// (baselines: $geoWithin + date range; Hilbert: plus the $or over
  /// covering ranges / $in over single cells — Section 4.2.2).
  TranslatedQuery TranslateQuery(const geo::Rect& rect, int64_t t_begin_ms,
                                 int64_t t_end_ms) const;

  /// Polygon variant (the paper's complex-geometry future-work item): same
  /// covering machinery, exact point-in-polygon refinement.
  TranslatedQuery TranslatePolygonQuery(const geo::Polygon& polygon,
                                        int64_t t_begin_ms,
                                        int64_t t_end_ms) const;

  /// Field zones are defined on ("date" / "hilbertIndex"), Section 4.x.3.
  std::string zone_path() const;

  /// The curve behind hilbertIndex (null for baselines).
  const geo::HilbertCurve* hilbert() const { return hilbert_.get(); }

 private:
  TranslatedQuery TranslateRegionQuery(query::ExprPtr geo_predicate,
                                       const geo::Region& region,
                                       int64_t t_begin_ms,
                                       int64_t t_end_ms) const;

  ApproachConfig config_;
  std::unique_ptr<geo::HilbertCurve> hilbert_;
};

}  // namespace stix::st

#endif  // STIX_ST_APPROACH_H_
